package exec

import (
	"sort"
	"strings"
	"testing"
)

// conformanceCase is one table-driven evaluation check in the spirit of the
// W3C SPARQL test suite: Turtle data, a query, and the expected solutions
// rendered canonically ("?v=<term>" pairs sorted within a row, rows
// sorted).
type conformanceCase struct {
	name  string
	data  string
	query string
	want  []string // canonical rows; nil means no solutions
}

// canonicalRows renders bindings canonically for comparison.
func canonicalRows(t *testing.T, data, query string) []string {
	t.Helper()
	got := runQuery(t, data, query)
	rows := make([]string, 0, len(got))
	for _, b := range got {
		parts := make([]string, 0, b.Len())
		for _, v := range b.Vars() {
			parts = append(parts, "?"+v+"="+b[v].String())
		}
		sort.Strings(parts)
		rows = append(rows, strings.Join(parts, " "))
	}
	sort.Strings(rows)
	return rows
}

const confData = `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s1 ex:p ex:o1 ; ex:q "1"^^xsd:integer .
ex:s2 ex:p ex:o2 ; ex:q "2"^^xsd:integer ; ex:label "two"@en .
ex:s3 ex:p ex:o1 .
`

func TestConformanceSuite(t *testing.T) {
	ex := func(l string) string { return "<http://example.org/" + l + ">" }
	intLit := func(s string) string {
		return `"` + s + `"^^<http://www.w3.org/2001/XMLSchema#integer>`
	}
	cases := []conformanceCase{
		{
			name: "basic match",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ex:o1 }`,
			want: []string{"?s=" + ex("s1"), "?s=" + ex("s3")},
		},
		{
			name: "join two patterns",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s ?n WHERE { ?s ex:p ex:o1 . ?s ex:q ?n }`,
			want: []string{"?n=" + intLit("1") + " ?s=" + ex("s1")},
		},
		{
			name: "optional keeps bare row",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s ?n WHERE { ?s ex:p ex:o1 OPTIONAL { ?s ex:q ?n } }`,
			want: []string{"?n=" + intLit("1") + " ?s=" + ex("s1"), "?s=" + ex("s3")},
		},
		{
			name: "filter bound",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ex:o1 OPTIONAL { ?s ex:q ?n } FILTER(!BOUND(?n)) }`,
			want: []string{"?s=" + ex("s3")},
		},
		{
			name: "union",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { { ?s ex:p ex:o2 } UNION { ?s ex:p ex:o1 . ?s ex:q ?n } }`,
			want: []string{"?s=" + ex("s1"), "?s=" + ex("s2")},
		},
		{
			name: "lang tag preserved",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?l WHERE { ?s ex:label ?l FILTER(LANG(?l) = "en") }`,
			want: []string{`?l="two"@en`},
		},
		{
			name: "numeric filter on typed literal",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:q ?n FILTER(?n > 1) }`,
			want: []string{"?s=" + ex("s2")},
		},
		{
			name: "bind arithmetic",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?m WHERE { ex:s1 ex:q ?n BIND(?n + 10 AS ?m) }`,
			want: []string{"?m=" + intLit("11")},
		},
		{
			name: "values restricts",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { VALUES ?s { ex:s2 ex:s3 } ?s ex:p ?o }`,
			want: []string{"?s=" + ex("s2"), "?s=" + ex("s3")},
		},
		{
			name: "minus removes compatible",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ?o MINUS { ?s ex:q ?n } }`,
			want: []string{"?s=" + ex("s3")},
		},
		{
			name: "distinct collapses",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT DISTINCT ?o WHERE { ?s ex:p ?o }`,
			want: []string{"?o=" + ex("o1"), "?o=" + ex("o2")},
		},
		{
			name: "order and limit",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?n WHERE { ?s ex:q ?n } ORDER BY DESC(?n) LIMIT 1`,
			want: []string{"?n=" + intLit("2")},
		},
		{
			name: "count group",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?o (COUNT(?s) AS ?c) WHERE { ?s ex:p ?o } GROUP BY ?o`,
			want: []string{
				"?c=" + intLit("1") + " ?o=" + ex("o2"),
				"?c=" + intLit("2") + " ?o=" + ex("o1"),
			},
		},
		{
			name: "if and coalesce in projection",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT (IF(BOUND(?n), "has", "none") AS ?flag) WHERE {
  ?s ex:p ex:o1 OPTIONAL { ?s ex:q ?n }
}`,
			want: []string{`?flag="has"`, `?flag="none"`},
		},
		{
			name: "nested subquery max",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE {
  ?s ex:q ?n .
  { SELECT (MAX(?m) AS ?n) WHERE { ?x ex:q ?m } }
}`,
			want: []string{"?s=" + ex("s2")},
		},
		{
			name: "str comparison of iri",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ?o FILTER(STRENDS(STR(?o), "o2")) }`,
			want: []string{"?s=" + ex("s2")},
		},
		{
			name: "sameterm vs equals for lang",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:label ?l FILTER(SAMETERM(?l, "two"@en)) }`,
			want: []string{"?s=" + ex("s2")},
		},
		{
			name: "in with iris",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ?o FILTER(?o IN (ex:o2)) }`,
			want: []string{"?s=" + ex("s2")},
		},
		{
			name: "empty result",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ex:nothing }`,
			want: nil,
		},
		{
			name: "offset skips",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?n WHERE { ?s ex:q ?n } ORDER BY ?n OFFSET 1`,
			want: []string{"?n=" + intLit("2")},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := canonicalRows(t, c.data, c.query)
			if len(got) != len(c.want) {
				t.Fatalf("rows = %d, want %d\ngot:  %v\nwant: %v", len(got), len(c.want), got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("row %d:\ngot:  %s\nwant: %s", i, got[i], c.want[i])
				}
			}
		})
	}
}

package faultinject

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Adversary is a deterministic hostile pod: an http.Handler serving the
// attack classes of the LTQP security analysis as real documents over HTTP,
// so the traversal defenses can be exercised end to end rather than
// unit-tested in isolation. Each attack lives under its own path prefix:
//
//	/adv/bomb/...   a link bomb: every document links to Fanout fresh
//	                documents, Depth levels deep (Fanout^Depth documents).
//	/adv/loop/...   a traversal loop: a ring of LoopLen documents whose
//	                links also spell the next hop with scheme/host case and
//	                default-port variants, so only normalized dedup
//	                terminates it.
//	/adv/spoof/...  cross-origin spoofing: documents asserting triples
//	                about IRIs of a victim origin (SpoofTarget) and linking
//	                into it — contained only by scope allowlists.
//	/adv/slow/...   a slow-loris document: valid Turtle trickled byte by
//	                byte, each chunk TrickleDelay apart.
//	/adv/big/...    an oversized document: OversizeBytes of valid Turtle.
//
// Every body is a pure function of (Seed, path), so runs are reproducible:
// same seed, same traversal, same documents. The zero value serves nothing;
// use NewAdversary for defaults sized for tests.
type Adversary struct {
	// Seed keys the deterministic content (entity names, triple values).
	Seed int64
	// Fanout and Depth shape the link bomb (Fanout links per document,
	// Depth generations).
	Fanout int
	Depth  int
	// LoopLen is the ring length of the loop attack.
	LoopLen int
	// SpoofTarget is the victim origin (e.g. "https://pod.example") whose
	// IRIs the spoof documents make claims about and link into.
	SpoofTarget string
	// TrickleDelay is the pause between single-byte writes of the
	// slow-loris body.
	TrickleDelay time.Duration
	// TrickleBytes is the slow-loris body length (the document never
	// finishes faster than TrickleBytes × TrickleDelay).
	TrickleBytes int
	// OversizeBytes is the minimum size of the oversized document.
	OversizeBytes int64
}

// Prefix is the path prefix all adversarial documents live under.
const Prefix = "/adv/"

// NewAdversary returns an adversary with test-sized defaults: a 20×3 link
// bomb (8420 documents), an 8-document loop, a 64 KiB oversized document
// and a 200-byte slow-loris body trickling at 20ms per byte.
func NewAdversary(seed int64) *Adversary {
	return &Adversary{
		Seed:          seed,
		Fanout:        20,
		Depth:         3,
		LoopLen:       8,
		TrickleDelay:  20 * time.Millisecond,
		TrickleBytes:  200,
		OversizeBytes: 64 << 10,
	}
}

// BombRoot returns the link-bomb entry URL on the given origin.
func (a *Adversary) BombRoot(origin string) string { return origin + Prefix + "bomb/d0" }

// LoopRoot returns the loop entry URL on the given origin.
func (a *Adversary) LoopRoot(origin string) string { return origin + Prefix + "loop/n0" }

// SpoofRoot returns the spoofing document URL on the given origin.
func (a *Adversary) SpoofRoot(origin string) string { return origin + Prefix + "spoof/doc" }

// SlowRoot returns the slow-loris document URL on the given origin.
func (a *Adversary) SlowRoot(origin string) string { return origin + Prefix + "slow/doc" }

// BigRoot returns the oversized document URL on the given origin.
func (a *Adversary) BigRoot(origin string) string { return origin + Prefix + "big/doc" }

// ServeHTTP implements http.Handler for paths under Prefix; anything else
// is 404.
func (a *Adversary) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rest, ok := strings.CutPrefix(r.URL.Path, Prefix)
	if !ok {
		http.NotFound(w, r)
		return
	}
	base := requestURL(r)
	origin := base[:len(base)-len(r.URL.Path)]
	kind, name, _ := strings.Cut(rest, "/")
	switch kind {
	case "bomb":
		a.serveBomb(w, origin, name)
	case "loop":
		a.serveLoop(w, origin, name)
	case "spoof":
		a.serveSpoof(w, origin)
	case "slow":
		a.serveSlow(w)
	case "big":
		a.serveBig(w, origin)
	default:
		http.NotFound(w, r)
	}
}

// turtle writes a complete Turtle body with the right content type.
func turtleBody(w http.ResponseWriter, body string) {
	w.Header().Set("Content-Type", "text/turtle")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(body))
}

const seeAlso = "<http://www.w3.org/2000/01/rdf-schema#seeAlso>"

// serveBomb serves one link-bomb node. Node names are d<generation>x<n>:
// every node below Depth links to Fanout children, each name derived
// deterministically so the tree is stable across runs.
func (a *Adversary) serveBomb(w http.ResponseWriter, origin, name string) {
	gen := 0
	if i := strings.IndexByte(name, 'x'); i > 0 {
		gen, _ = strconv.Atoi(name[1:i])
	}
	var b strings.Builder
	self := origin + Prefix + "bomb/" + name
	fmt.Fprintf(&b, "<%s> <%s#label> \"bomb %s %.4f\" .\n", self, origin, name, unitHash(a.Seed, self, 0))
	if gen < a.Depth {
		for i := 0; i < a.Fanout; i++ {
			child := fmt.Sprintf("%s%sbomb/d%dx%s-%d", origin, Prefix, gen+1, name, i)
			fmt.Fprintf(&b, "<%s> %s <%s> .\n", self, seeAlso, child)
		}
	}
	turtleBody(w, b.String())
}

// serveLoop serves one node of the loop ring. Each node links to the next
// ring member three times: verbatim, with HOST uppercased, and with the
// default port spelled out — aliases only normalized dedup collapses.
func (a *Adversary) serveLoop(w http.ResponseWriter, origin, name string) {
	n, _ := strconv.Atoi(strings.TrimPrefix(name, "n"))
	next := fmt.Sprintf("%s%sloop/n%d", origin, Prefix, (n+1)%max(a.LoopLen, 1))
	var b strings.Builder
	self := origin + Prefix + "loop/" + name
	fmt.Fprintf(&b, "<%s> %s <%s> .\n", self, seeAlso, next)
	for _, alias := range urlAliases(next) {
		fmt.Fprintf(&b, "<%s> %s <%s> .\n", self, seeAlso, alias)
	}
	turtleBody(w, b.String())
}

// urlAliases returns spellings of u that RFC 3986 normalization collapses
// back into u: uppercased scheme+host, and the default port made explicit.
func urlAliases(u string) []string {
	var out []string
	if rest, ok := strings.CutPrefix(u, "http://"); ok {
		host := rest
		if i := strings.IndexAny(rest, "/:"); i >= 0 {
			host = rest[:i]
		}
		out = append(out, "HTTP://"+strings.ToUpper(host)+rest[len(host):])
		if !strings.Contains(host, ":") {
			out = append(out, "http://"+host+":80"+strings.TrimPrefix(rest, host))
		}
	}
	if rest, ok := strings.CutPrefix(u, "https://"); ok {
		host := rest
		if i := strings.IndexAny(rest, "/:"); i >= 0 {
			host = rest[:i]
		}
		out = append(out, "HTTPS://"+strings.ToUpper(host)+rest[len(host):])
		if !strings.Contains(host, ":") {
			out = append(out, "https://"+host+":443"+strings.TrimPrefix(rest, host))
		}
	}
	return out
}

// serveSpoof serves a document asserting triples about the victim origin's
// IRIs — claims a trusting engine would ingest as if the victim had made
// them — plus traversal links into the victim.
func (a *Adversary) serveSpoof(w http.ResponseWriter, origin string) {
	victim := a.SpoofTarget
	if victim == "" {
		victim = "https://victim.invalid"
	}
	self := origin + Prefix + "spoof/doc"
	var b strings.Builder
	fmt.Fprintf(&b, "<%s/profile/card#me> <http://xmlns.com/foaf/0.1/name> \"Spoofed Name %.4f\" .\n",
		victim, unitHash(a.Seed, self, 0))
	fmt.Fprintf(&b, "<%s/profile/card#me> <http://www.w3.org/ns/pim/space#storage> <%s/> .\n", victim, origin)
	fmt.Fprintf(&b, "<%s> %s <%s/profile/card> .\n", self, seeAlso, victim)
	fmt.Fprintf(&b, "<%s> %s <%s/inbox/> .\n", self, seeAlso, victim)
	turtleBody(w, b.String())
}

// serveSlow trickles a valid Turtle body one byte at a time, flushing after
// each write — a server that never errors but never finishes either.
func (a *Adversary) serveSlow(w http.ResponseWriter) {
	body := make([]byte, 0, a.TrickleBytes)
	for len(body) < a.TrickleBytes {
		body = append(body, fmt.Sprintf("<urn:slow:%d> <urn:p> \"x\" .\n", len(body))...)
	}
	w.Header().Set("Content-Type", "text/turtle")
	w.WriteHeader(http.StatusOK)
	f, _ := w.(http.Flusher)
	for i := range body {
		if _, err := w.Write(body[i : i+1]); err != nil {
			return
		}
		if f != nil {
			f.Flush()
		}
		time.Sleep(a.TrickleDelay)
	}
}

// serveBig streams at least OversizeBytes of valid Turtle.
func (a *Adversary) serveBig(w http.ResponseWriter, origin string) {
	w.Header().Set("Content-Type", "text/turtle")
	w.WriteHeader(http.StatusOK)
	var written int64
	for i := 0; written < a.OversizeBytes; i++ {
		line := fmt.Sprintf("<%s/big/e%d> <%s/big/p> \"v%d %.6f\" .\n",
			origin, i, origin, i, unitHash(a.Seed, origin, i))
		n, err := w.Write([]byte(line))
		written += int64(n)
		if err != nil {
			return
		}
	}
}

package rdf

// Namespace IRIs of vocabularies used by the engine, the Solid ecosystem,
// and the SolidBench social-network dataset.
const (
	NSRDF   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	NSRDFS  = "http://www.w3.org/2000/01/rdf-schema#"
	NSXSD   = "http://www.w3.org/2001/XMLSchema#"
	NSFOAF  = "http://xmlns.com/foaf/0.1/"
	NSLDP   = "http://www.w3.org/ns/ldp#"
	NSPIM   = "http://www.w3.org/ns/pim/space#"
	NSSolid = "http://www.w3.org/ns/solid/terms#"
	NSACL   = "http://www.w3.org/ns/auth/acl#"
	NSVoID  = "http://rdfs.org/ns/void#"

	// NSSNVoc is the LDBC Social Network Benchmark vocabulary as republished
	// by SolidBench.
	NSSNVoc = "https://solidbench.linkeddatafragments.org/www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/"
	// NSSNTag is the SNB static tag namespace.
	NSSNTag = "https://solidbench.linkeddatafragments.org/www.ldbc.eu/ldbc_socialnet/1.0/tag/"
	// NSDBPedia is used by SNB for places and tag classes.
	NSDBPedia = "https://solidbench.linkeddatafragments.org/dbpedia.org/resource/"
)

// RDF / RDFS core terms.
const (
	RDFType       = NSRDF + "type"
	RDFFirst      = NSRDF + "first"
	RDFRest       = NSRDF + "rest"
	RDFNil        = NSRDF + "nil"
	RDFLangString = NSRDF + "langString"
	RDFSLabel     = NSRDFS + "label"
	RDFSSeeAlso   = NSRDFS + "seeAlso"
)

// XSD datatypes recognized by the expression evaluator.
const (
	XSDString             = NSXSD + "string"
	XSDBoolean            = NSXSD + "boolean"
	XSDInteger            = NSXSD + "integer"
	XSDLong               = NSXSD + "long"
	XSDInt                = NSXSD + "int"
	XSDShort              = NSXSD + "short"
	XSDByte               = NSXSD + "byte"
	XSDDecimal            = NSXSD + "decimal"
	XSDFloat              = NSXSD + "float"
	XSDDouble             = NSXSD + "double"
	XSDDateTime           = NSXSD + "dateTime"
	XSDDate               = NSXSD + "date"
	XSDNonNegativeInteger = NSXSD + "nonNegativeInteger"
)

// LDP (Linked Data Platform) terms used by Solid pods to expose document
// hierarchies (paper Listing 1).
const (
	LDPContainer      = NSLDP + "Container"
	LDPBasicContainer = NSLDP + "BasicContainer"
	LDPResource       = NSLDP + "Resource"
	LDPContains       = NSLDP + "contains"
)

// WebID / Solid profile terms (paper Listing 2).
const (
	PIMStorage           = NSPIM + "storage"
	FOAFName             = NSFOAF + "name"
	FOAFKnows            = NSFOAF + "knows"
	FOAFPerson           = NSFOAF + "Person"
	FOAFPrimaryTopic     = NSFOAF + "primaryTopic"
	SolidOIDCIssuer      = NSSolid + "oidcIssuer"
	SolidPublicTypeIndex = NSSolid + "publicTypeIndex"
)

// Solid Type Index terms (paper Listing 3).
const (
	SolidTypeIndex         = NSSolid + "TypeIndex"
	SolidListedDocument    = NSSolid + "ListedDocument"
	SolidUnlistedDocument  = NSSolid + "UnlistedDocument"
	SolidTypeRegistration  = NSSolid + "TypeRegistration"
	SolidForClass          = NSSolid + "forClass"
	SolidInstance          = NSSolid + "instance"
	SolidInstanceContainer = NSSolid + "instanceContainer"
)

// LDBC SNB vocabulary terms used by SolidBench data and the Discover query
// catalog.
const (
	SNVocPost             = NSSNVoc + "Post"
	SNVocComment          = NSSNVoc + "Comment"
	SNVocForum            = NSSNVoc + "Forum"
	SNVocPerson           = NSSNVoc + "Person"
	SNVocCity             = NSSNVoc + "City"
	SNVocCountry          = NSSNVoc + "Country"
	SNVocTag              = NSSNVoc + "Tag"
	SNVocTagClass         = NSSNVoc + "TagClass"
	SNVocID               = NSSNVoc + "id"
	SNVocFirstName        = NSSNVoc + "firstName"
	SNVocLastName         = NSSNVoc + "lastName"
	SNVocGender           = NSSNVoc + "gender"
	SNVocBirthday         = NSSNVoc + "birthday"
	SNVocEmail            = NSSNVoc + "email"
	SNVocSpeaks           = NSSNVoc + "speaks"
	SNVocBrowserUsed      = NSSNVoc + "browserUsed"
	SNVocLocationIP       = NSSNVoc + "locationIP"
	SNVocCreationDate     = NSSNVoc + "creationDate"
	SNVocContent          = NSSNVoc + "content"
	SNVocImageFile        = NSSNVoc + "imageFile"
	SNVocLanguage         = NSSNVoc + "language"
	SNVocHasCreator       = NSSNVoc + "hasCreator"
	SNVocHasMaliciousness = NSSNVoc + "hasMaliciousness"
	SNVocContainerOf      = NSSNVoc + "containerOf"
	SNVocHasMember        = NSSNVoc + "hasMember"
	SNVocHasModerator     = NSSNVoc + "hasModerator"
	SNVocTitle            = NSSNVoc + "title"
	SNVocHasTag           = NSSNVoc + "hasTag"
	SNVocHasInterest      = NSSNVoc + "hasInterest"
	SNVocIsLocatedIn      = NSSNVoc + "isLocatedIn"
	SNVocIsPartOf         = NSSNVoc + "isPartOf"
	SNVocKnows            = NSSNVoc + "knows"
	SNVocKnowsPerson      = NSSNVoc + "hasPerson"
	SNVocLikes            = NSSNVoc + "likes"
	SNVocHasPost          = NSSNVoc + "hasPost"
	SNVocHasComment       = NSSNVoc + "hasComment"
	SNVocReplyOf          = NSSNVoc + "replyOf"
	SNVocWorkAt           = NSSNVoc + "workAt"
	SNVocHasOrganisation  = NSSNVoc + "hasOrganisation"
	SNVocWorkFrom         = NSSNVoc + "workFrom"
	SNVocStudyAt          = NSSNVoc + "studyAt"
	SNVocClassYear        = NSSNVoc + "classYear"
)

// CommonPrefixes maps the prefix labels used across generated documents,
// example queries, and serializer output to their namespaces.
var CommonPrefixes = map[string]string{
	"rdf":   NSRDF,
	"rdfs":  NSRDFS,
	"xsd":   NSXSD,
	"foaf":  NSFOAF,
	"ldp":   NSLDP,
	"pim":   NSPIM,
	"solid": NSSolid,
	"acl":   NSACL,
	"void":  NSVoID,
	"snvoc": NSSNVoc,
}

// Command loadgen measures the multi-tenant serving subsystem under
// concurrent load: it self-hosts a SPARQL endpoint over a simulated Solid
// environment, replays the SolidBench Discover query mix from k concurrent
// clients, and reports throughput, latency percentiles, and the shared
// cache's counters.
//
//	loadgen --clients 16 --duration 10s
//	loadgen --clients 256 --compare --out bench/BENCH_$(date +%F)_loadgen.json
//
// With --compare it measures a no-shared-cache baseline first, then the
// same load with the shared document cache and singleflight dedup on, and
// reports the speedup. With --check it exits non-zero unless the run
// completed without errors, hit the shared cache, and kept the
// zero-duplicate-inflight-fetch invariant — the CI smoke configuration.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ltqp"
	"ltqp/internal/serve"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		clients     = fs.Int("clients", 16, "concurrent clients")
		tenants     = fs.Int("tenants", 16, "distinct tenant identities the clients rotate through")
		duration    = fs.Duration("duration", 10*time.Second, "measured wall clock per run")
		persons     = fs.Int("persons", 8, "pods in the simulated environment")
		seed        = fs.Int64("seed", 42, "environment generator seed")
		latency     = fs.Duration("latency", 2*time.Millisecond, "simulated pod network latency")
		queryMix    = fs.Int("query-mix", 8, "distinct Discover queries in rotation (max 32)")
		maxInflight = fs.Int("max-inflight", 4*runtime.GOMAXPROCS(0), "admission in-flight cap")
		tenantQuota = fs.Int("tenant-quota", 0, "per-tenant in-flight quota (0 = none)")
		compare     = fs.Bool("compare", false, "measure a no-shared-cache baseline first and report the speedup")
		check       = fs.Bool("check", false, "CI smoke: exit non-zero on errors, zero cache hits, or duplicate in-flight fetches")
		out         = fs.String("out", "", "write the JSON artifact to this file")
		heapProfile = fs.String("heap-profile", "", "after the measured run, capture /debug/pprof/heap to this file")
		metricsOut  = fs.String("metrics-out", "", "after the measured run, capture the /metrics exposition to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *queryMix < 1 {
		*queryMix = 1
	}
	if *queryMix > 32 {
		*queryMix = 32
	}
	if *tenants < 1 {
		*tenants = 1
	}

	fmt.Fprintf(stderr, "loadgen: building environment (%d pods)...\n", *persons)
	scfg := solidbench.DefaultConfig()
	scfg.Persons = *persons
	scfg.Seed = *seed
	env := simenv.New(scfg)
	defer env.Close()
	env.PodServer.Latency = *latency

	// The rotation covers the eight Discover shapes across variants —
	// the same mix the paper's demonstration runs.
	catalog := env.Dataset.Catalog()[:*queryMix]
	queries := make([]string, len(catalog))
	for i, q := range catalog {
		queries[i] = q.Text
	}

	report := serve.LoadReport{
		Generated: time.Now().UTC(),
		Kind:      "loadgen",
		Config: serve.LoadConfig{
			Clients: *clients, Tenants: *tenants,
			DurationSec: duration.Seconds(),
			Persons:     *persons,
			LatencyMS:   float64(latency.Microseconds()) / 1000,
			QueryMix:    len(queries),
			MaxInFlight: *maxInflight,
			TenantQuota: *tenantQuota,
		},
	}

	harness := harness{
		env: env, queries: queries,
		clients: *clients, tenants: *tenants, duration: *duration,
		maxInflight: *maxInflight, tenantQuota: *tenantQuota,
	}

	if *compare {
		fmt.Fprintf(stderr, "loadgen: baseline (no shared cache), %d clients for %s...\n", *clients, *duration)
		base := harness.run("baseline", false)
		report.Runs = append(report.Runs, base)
		fmt.Fprintf(stderr, "loadgen: baseline %.1f qps, p95 %.1fms\n", base.QPS, base.P95MS)
	}

	fmt.Fprintf(stderr, "loadgen: shared cache + singleflight, %d clients for %s...\n", *clients, *duration)
	sharedRun := harness.run("shared", true)
	report.Runs = append(report.Runs, sharedRun)
	fmt.Fprintf(stderr, "loadgen: shared %.1f qps, p95 %.1fms, hit ratio %.0f%%, %d dedups, peak query mem %d bytes\n",
		sharedRun.QPS, sharedRun.P95MS, sharedRun.Cache.HitRatio()*100, sharedRun.Cache.Dedups, sharedRun.PeakMemBytes)

	if *heapProfile != "" || *metricsOut != "" {
		if err := harness.captureDebug(*heapProfile, *metricsOut); err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return 1
		}
	}

	if *compare && report.Runs[0].QPS > 0 {
		report.SpeedupVsBaseline = sharedRun.QPS / report.Runs[0].QPS
		fmt.Fprintf(stderr, "loadgen: speedup %.1fx\n", report.SpeedupVsBaseline)
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(report)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return 1
		}
		fenc := json.NewEncoder(f)
		fenc.SetIndent("", "  ")
		fenc.Encode(report)
		f.Close()
	}

	if *check {
		switch {
		case sharedRun.Errors > 0:
			fmt.Fprintf(stderr, "loadgen: CHECK FAILED: %d errors\n", sharedRun.Errors)
			return 1
		case sharedRun.Completed == 0:
			fmt.Fprintln(stderr, "loadgen: CHECK FAILED: no queries completed")
			return 1
		case sharedRun.Cache.Hits == 0:
			fmt.Fprintln(stderr, "loadgen: CHECK FAILED: shared cache never hit")
			return 1
		case sharedRun.Cache.DuplicateInflight != 0:
			fmt.Fprintf(stderr, "loadgen: CHECK FAILED: %d duplicate in-flight fetches\n", sharedRun.Cache.DuplicateInflight)
			return 1
		}
		fmt.Fprintln(stderr, "loadgen: check ok")
	}
	return 0
}

// harness drives one measured configuration against a fresh endpoint.
type harness struct {
	env      *simenv.Env
	queries  []string
	clients  int
	tenants  int
	duration time.Duration

	maxInflight int
	tenantQuota int

	// lastObs is the measured run's observer, kept so the post-run debug
	// capture (--heap-profile / --metrics-out) can serve its endpoints.
	lastObs *ltqp.Observer
}

func (h *harness) run(label string, withSharedCache bool) serve.LoadRun {
	// Each run gets its own observer so the resource ledger attributes
	// every query's memory; span recording stays off under load.
	observer := ltqp.NewObserver()
	observer.TraceQueries = false
	h.lastObs = observer
	cfg := ltqp.Config{Client: h.env.Client(), Lenient: true, Obs: observer}
	serving := Servingish{}
	var shared *serve.SharedCache
	if withSharedCache {
		shared = serve.NewSharedCache(serve.SharedCacheOptions{})
		cfg.SharedCache = shared
	}
	admission := serve.NewAdmission(serve.AdmissionOptions{
		MaxInFlight: h.maxInflight,
		QueueDepth:  h.clients * 2,
		TenantQuota: h.tenantQuota,
		RetryAfter:  100 * time.Millisecond,
	})
	serving.shared = shared
	serving.admission = admission

	engine := ltqp.New(cfg)
	srv := httptest.NewServer(serving.handler(engine))
	defer srv.Close()

	h.env.PodServer.ResetRequestCount()

	ctx, cancel := context.WithTimeout(context.Background(), h.duration)
	defer cancel()

	var (
		completed atomic.Int64
		rejected  atomic.Int64
		errors    atomic.Int64
		latMu     sync.Mutex
		latencies []float64
	)
	var wg sync.WaitGroup
	for c := 0; c < h.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c%h.tenants)
			client := &http.Client{}
			i := c // stagger the rotation so clients don't move in lockstep
			for ctx.Err() == nil {
				q := h.queries[i%len(h.queries)]
				i++
				start := time.Now()
				status, retryAfter, err := doQuery(ctx, client, srv.URL, q, tenant)
				switch {
				case err != nil:
					if ctx.Err() != nil {
						return // cut off mid-request by the deadline
					}
					errors.Add(1)
				case status == http.StatusOK:
					completed.Add(1)
					ms := float64(time.Since(start).Microseconds()) / 1000
					latMu.Lock()
					latencies = append(latencies, ms)
					latMu.Unlock()
				case status == http.StatusTooManyRequests:
					rejected.Add(1)
					select {
					case <-time.After(retryAfter):
					case <-ctx.Done():
						return
					}
				default:
					errors.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	run := serve.LoadRun{
		Label:          label,
		Completed:      completed.Load(),
		Rejected:       rejected.Load(),
		Errors:         errors.Load(),
		QPS:            float64(completed.Load()) / h.duration.Seconds(),
		PodRequests:    h.env.PodServer.RequestCount(),
		PodNotModified: h.env.PodServer.NotModifiedCount(),
	}
	if shared != nil {
		run.Cache = shared.Stats()
	}
	run.PeakMemBytes = observer.Resources.MaxPeak()
	sort.Float64s(latencies)
	run.P50MS = percentile(latencies, 50)
	run.P95MS = percentile(latencies, 95)
	run.P99MS = percentile(latencies, 99)
	if len(latencies) > 0 {
		var sum float64
		for _, v := range latencies {
			sum += v
		}
		run.MeanMS = sum / float64(len(latencies))
	}
	return run
}

// captureDebug serves the measured run's observability endpoints on a
// loopback server and captures /debug/pprof/heap and /metrics to files —
// the CI smoke job's artifacts.
func (h *harness) captureDebug(heapPath, metricsPath string) error {
	mux := http.NewServeMux()
	h.lastObs.Register(mux)
	mux.Handle("/debug/pprof/heap", pprof.Handler("heap"))
	srv := httptest.NewServer(mux)
	defer srv.Close()
	capture := func(path, out string) error {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		return os.WriteFile(out, body, 0o644)
	}
	if heapPath != "" {
		if err := capture("/debug/pprof/heap", heapPath); err != nil {
			return fmt.Errorf("heap profile: %w", err)
		}
	}
	if metricsPath != "" {
		if err := capture("/metrics", metricsPath); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	return nil
}

// doQuery issues one SPARQL Protocol GET, returning the status and any
// Retry-After hint on 429.
func doQuery(ctx context.Context, client *http.Client, base, query, tenant string) (status int, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/sparql?query="+url.QueryEscape(query), nil)
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("X-API-Key", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	retryAfter = 50 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	if retryAfter > 200*time.Millisecond {
		retryAfter = 200 * time.Millisecond // keep the harness responsive
	}
	return resp.StatusCode, retryAfter, nil
}

// percentile returns the p-th percentile of sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Servingish is the loadgen-local handler wrapper: admission + tenant
// bucketing around the plain SPARQL handler, mirroring cmd/sparql-endpoint
// without importing its main package.
type Servingish struct {
	shared    *serve.SharedCache
	admission *serve.Admission
}

func (s Servingish) handler(engine *ltqp.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant := serve.TenantFromRequest(r)
		if s.admission != nil {
			release, err := s.admission.Admit(r.Context(), tenant)
			if err != nil {
				var rej *serve.RejectionError
				if errors.As(err, &rej) {
					w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(rej.RetryAfter.Seconds()))))
					http.Error(w, "too many requests", http.StatusTooManyRequests)
					return
				}
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			defer release()
		}
		query := r.URL.Query().Get("query")
		if query == "" {
			http.Error(w, "missing query", http.StatusBadRequest)
			return
		}
		res, err := engine.Query(r.Context(), query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		n := 0
		for range res.Results {
			n++
		}
		if err := res.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"results\":%d}\n", n)
	})
}

package obs

import (
	"context"
	"testing"
)

// BenchmarkStartSpanUntraced measures the opt-out cost the hot paths pay
// when tracing is off: one context lookup, no allocation.
func BenchmarkStartSpanUntraced(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "deref")
		sp.End()
	}
}

// BenchmarkStartSpanTraced measures the per-span cost with tracing on.
func BenchmarkStartSpanTraced(b *testing.B) {
	ctx, _ := NewTrace(context.Background(), "query")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "deref")
		sp.End()
	}
}

// BenchmarkTraceOff is the tracing subsystem's opt-out acceptance gate:
// everything a hot path touches when tracing is disabled — starting a span
// on an untraced context, rendering its (empty) traceparent and trace id,
// recording an exemplar with no trace id, and offering an outcome to a nil
// trace store — must cost 0 allocs/op.
func BenchmarkTraceOff(b *testing.B) {
	ctx := context.Background()
	h := NewRegistry().Histogram("x", "", DefaultLatencyBuckets)
	var store *TraceStore
	var log *ServerSpanLog
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "deref")
		if tp := sp.Traceparent(); tp != "" {
			b.Fatal("untraced span rendered a traceparent")
		}
		h.ObserveExemplar(0.003, sp.TraceIDString())
		store.Offer(TraceOutcome{Duration: 1}, nil)
		log.Record(ServerSpan{})
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("x", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("x", "", DefaultLatencyBuckets)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}

func BenchmarkNilMetricsChain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		On(nil).DocumentsFetched.Inc()
	}
}

// BenchmarkEventPublishNilBus measures what instrumented code pays when the
// engine carries no event bus at all: a nil check. Must stay 0 allocs/op.
func BenchmarkEventPublishNilBus(b *testing.B) {
	var bus *Bus
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Kind: EventResultEmitted, Row: i})
	}
}

// BenchmarkEventPublishNoSubscriber measures the opt-out cost with a bus
// attached but nobody listening — the common production configuration: one
// atomic load. Must stay 0 allocs/op (the acceptance gate for the event
// instrumentation on the query hot path).
func BenchmarkEventPublishNoSubscriber(b *testing.B) {
	bus := NewBus()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Kind: EventResultEmitted, Row: i})
	}
}

// BenchmarkEmitterNoSubscriber measures the same opt-out through the
// per-query Emitter wrapper core/deref/exec actually hold.
func BenchmarkEmitterNoSubscriber(b *testing.B) {
	e := NewBus().ForQuery(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Emit(Event{Kind: EventLinkDiscovered, URL: "http://pod/a", Via: "http://pod/b"})
	}
}

// BenchmarkEventPublishOneSubscriber measures the opt-in cost: one attached
// subscriber with a buffer large enough that nothing drops.
func BenchmarkEventPublishOneSubscriber(b *testing.B) {
	bus := NewBus()
	s := bus.Subscribe(1024)
	defer s.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range s.C {
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Kind: EventResultEmitted, Row: i})
	}
	b.StopTimer()
	s.Close()
	close(s.ch)
	<-done
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ltqp/internal/obs"
)

// Admission defaults.
const (
	DefaultMaxInFlight = 16
	DefaultQueueDepth  = 64
	DefaultRetryAfter  = time.Second
)

// AdmissionOptions configures an Admission controller.
type AdmissionOptions struct {
	// MaxInFlight caps queries executing at once across all tenants
	// (default DefaultMaxInFlight).
	MaxInFlight int
	// QueueDepth caps queries waiting for an execution slot (default
	// DefaultQueueDepth). A full queue rejects with ErrOverloaded.
	QueueDepth int
	// TenantQuota caps in-flight queries per tenant; 0 disables per-tenant
	// limits. A tenant at quota queues even when global slots are free, so
	// one aggressive client cannot monopolize the process.
	TenantQuota int
	// RetryAfter is the hint attached to rejections (default
	// DefaultRetryAfter), surfaced as the 429 Retry-After header.
	RetryAfter time.Duration
	// Obs, when non-nil, receives admitted/rejected counters and the queue
	// depth gauge. Events, when non-nil, receives query_admitted /
	// query_rejected events.
	Obs    *obs.Metrics
	Events *obs.Bus
}

// RejectionError is returned when a query cannot be admitted. HTTP servers
// translate it to 429 Too Many Requests with a Retry-After header.
type RejectionError struct {
	Reason     string // "queue_full", "draining"
	RetryAfter time.Duration
}

func (e *RejectionError) Error() string {
	return fmt.Sprintf("query rejected: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// ErrOverloaded is the sentinel matched by errors.Is for any rejection.
var ErrOverloaded = errors.New("server overloaded")

// Is makes every RejectionError match ErrOverloaded.
func (e *RejectionError) Is(target error) bool { return target == ErrOverloaded }

// Admission is the query admission controller: a global in-flight cap, a
// bounded wait queue, and per-tenant concurrency quotas with round-robin
// dispatch across waiting tenants so no tenant is starved by a flood from
// another. Safe for concurrent use.
type Admission struct {
	maxInFlight int
	queueDepth  int
	tenantQuota int
	retryAfter  time.Duration
	obs         *obs.Metrics
	events      *obs.Bus

	nAdmitted, nRejected atomic.Int64

	mu       sync.Mutex
	inFlight int
	byTenant map[string]int
	// waiting holds per-tenant FIFO queues; order is the round-robin ring
	// of tenants that currently have waiters.
	waiting map[string][]*waiter
	queued  int
	order   []string
	next    int // round-robin cursor into order
	// draining refuses new work while letting admitted queries finish.
	draining bool
	// idle is closed when draining and inFlight reaches zero.
	idle chan struct{}
}

// waiter is one queued admission request.
type waiter struct {
	tenant string
	ready  chan struct{} // closed by dispatch when a slot is granted
	// granted distinguishes a dispatch grant from a caller abandoning the
	// wait (context cancellation); guarded by Admission.mu.
	granted bool
}

// NewAdmission builds an admission controller.
func NewAdmission(o AdmissionOptions) *Admission {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = DefaultMaxInFlight
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	} else if o.QueueDepth == 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	return &Admission{
		maxInFlight: o.MaxInFlight,
		queueDepth:  o.QueueDepth,
		tenantQuota: o.TenantQuota,
		retryAfter:  o.RetryAfter,
		obs:         o.Obs,
		events:      o.Events,
		byTenant:    map[string]int{},
		waiting:     map[string][]*waiter{},
	}
}

// QueueDepthNone as AdmissionOptions.QueueDepth yields a queue of zero
// slots: reject immediately whenever all in-flight slots are busy.
const QueueDepthNone = -1

// Admit blocks until the query may run, then returns a release function the
// caller must invoke exactly once when the query finishes. It fails with a
// *RejectionError (matching ErrOverloaded) when the wait queue is full or
// the controller is draining, and with ctx.Err() when the caller gives up
// while queued.
func (a *Admission) Admit(ctx context.Context, tenant string) (release func(), err error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, a.reject(ctx, tenant, "draining")
	}
	if a.grantableLocked(tenant) {
		a.grantLocked(tenant)
		a.mu.Unlock()
		a.admitted(ctx, tenant, false)
		return func() { a.release(tenant) }, nil
	}
	if a.queued >= a.queueDepth {
		a.mu.Unlock()
		return nil, a.reject(ctx, tenant, "queue_full")
	}
	w := &waiter{tenant: tenant, ready: make(chan struct{})}
	if len(a.waiting[tenant]) == 0 {
		a.order = append(a.order, tenant)
	}
	a.waiting[tenant] = append(a.waiting[tenant], w)
	a.queued++
	obs.On(a.obs).AdmissionQueueDepth.Set(int64(a.queued))
	a.mu.Unlock()

	select {
	case <-w.ready:
		a.mu.Lock()
		granted := w.granted
		a.mu.Unlock()
		if !granted {
			// Woken by Drain flushing the queue, not by a slot grant.
			return nil, a.reject(ctx, tenant, "draining")
		}
		a.admitted(ctx, tenant, true)
		return func() { a.release(tenant) }, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Dispatch raced our cancellation and already granted the
			// slot; hand it back.
			a.mu.Unlock()
			a.release(tenant)
			return nil, ctx.Err()
		}
		a.removeWaiterLocked(w)
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// grantableLocked reports whether tenant could start a query right now.
func (a *Admission) grantableLocked(tenant string) bool {
	if a.inFlight >= a.maxInFlight {
		return false
	}
	if a.tenantQuota > 0 && a.byTenant[tenant] >= a.tenantQuota {
		return false
	}
	// Queued waiters go first: a newcomer must not jump the queue.
	return a.queued == 0
}

// grantLocked commits a slot to tenant.
func (a *Admission) grantLocked(tenant string) {
	a.inFlight++
	a.byTenant[tenant]++
}

// release returns tenant's slot and dispatches waiters.
func (a *Admission) release(tenant string) {
	a.mu.Lock()
	a.inFlight--
	if a.byTenant[tenant] <= 1 {
		delete(a.byTenant, tenant)
	} else {
		a.byTenant[tenant]--
	}
	a.dispatchLocked()
	if a.draining && a.inFlight == 0 && a.idle != nil {
		close(a.idle)
		a.idle = nil
	}
	a.mu.Unlock()
}

// dispatchLocked hands free slots to queued waiters, visiting tenants
// round-robin so each tenant with waiters gets one grant per pass
// regardless of queue lengths. Caller holds a.mu.
func (a *Admission) dispatchLocked() {
	for a.inFlight < a.maxInFlight && len(a.order) > 0 {
		granted := false
		// One full ring pass: the first tenant under quota wins the slot.
		for scanned := 0; scanned < len(a.order); scanned++ {
			if a.next >= len(a.order) {
				a.next = 0
			}
			tenant := a.order[a.next]
			if a.tenantQuota > 0 && a.byTenant[tenant] >= a.tenantQuota {
				a.next++
				continue
			}
			q := a.waiting[tenant]
			w := q[0]
			if len(q) == 1 {
				delete(a.waiting, tenant)
				a.order = append(a.order[:a.next], a.order[a.next+1:]...)
				// a.next now indexes the following tenant; no advance.
			} else {
				a.waiting[tenant] = q[1:]
				a.next++
			}
			a.queued--
			a.grantLocked(tenant)
			w.granted = true
			close(w.ready)
			granted = true
			break
		}
		if !granted {
			break // every waiting tenant is at quota
		}
	}
	obs.On(a.obs).AdmissionQueueDepth.Set(int64(a.queued))
}

// removeWaiterLocked drops an abandoned waiter. Caller holds a.mu.
func (a *Admission) removeWaiterLocked(w *waiter) {
	q := a.waiting[w.tenant]
	for i, other := range q {
		if other == w {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(a.waiting, w.tenant)
		for i, t := range a.order {
			if t == w.tenant {
				a.order = append(a.order[:i], a.order[i+1:]...)
				if a.next > i {
					a.next--
				}
				break
			}
		}
	} else {
		a.waiting[w.tenant] = q
	}
	a.queued--
	obs.On(a.obs).AdmissionQueueDepth.Set(int64(a.queued))
}

// reject accounts and constructs a rejection.
func (a *Admission) reject(ctx context.Context, tenant, reason string) error {
	a.nRejected.Add(1)
	obs.On(a.obs).QueriesRejected.Inc()
	if a.events.Active() {
		a.events.Publish(obs.Event{Kind: obs.EventQueryRejected, Tenant: tenant,
			Reason: reason, Query: obs.QueryIDFromContext(ctx)})
	}
	return &RejectionError{Reason: reason, RetryAfter: a.retryAfter}
}

// admitted accounts a grant.
func (a *Admission) admitted(ctx context.Context, tenant string, queued bool) {
	a.nAdmitted.Add(1)
	obs.On(a.obs).QueriesAdmitted.Inc()
	if a.events.Active() {
		detail := "immediate"
		if queued {
			detail = "queued"
		}
		a.events.Publish(obs.Event{Kind: obs.EventQueryAdmitted, Tenant: tenant,
			Detail: detail, Query: obs.QueryIDFromContext(ctx)})
	}
}

// RetryAfter returns the hint attached to this controller's rejections.
func (a *Admission) RetryAfter() time.Duration { return a.retryAfter }

// Admitted returns the cumulative number of granted admissions.
func (a *Admission) Admitted() int64 { return a.nAdmitted.Load() }

// Rejected returns the cumulative number of rejections.
func (a *Admission) Rejected() int64 { return a.nRejected.Load() }

// InFlight returns the number of queries currently executing.
func (a *Admission) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight
}

// Queued returns the number of queries waiting for a slot.
func (a *Admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// Drain switches the controller to draining: every subsequent Admit is
// rejected, queued waiters are rejected immediately, and Drain blocks until
// in-flight queries release their slots or ctx expires. Used for graceful
// shutdown: stop taking work, finish what was admitted.
func (a *Admission) Drain(ctx context.Context) error {
	a.mu.Lock()
	if !a.draining {
		a.draining = true
		// Flush the queue: waiters learn immediately instead of waiting
		// for slots that will never be granted to them.
		for _, q := range a.waiting {
			for _, w := range q {
				close(w.ready)
			}
		}
		a.waiting = map[string][]*waiter{}
		a.order = nil
		a.next = 0
		a.queued = 0
		obs.On(a.obs).AdmissionQueueDepth.Set(0)
	}
	var idle chan struct{}
	if a.inFlight > 0 {
		if a.idle == nil {
			a.idle = make(chan struct{})
		}
		idle = a.idle
	}
	a.mu.Unlock()
	if idle == nil {
		return nil
	}
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package obs

import (
	"sync"
	"time"
)

// ServerSpan is one pod-side request span recorded by podserver: the
// server half of a dereference, joined to the client trace by the
// traceparent header the dereferencer injected. DelayMS separates the
// configured/simulated latency (podserver Latency, bandwidth shaping)
// from real handler work.
type ServerSpan struct {
	TraceID  string    `json:"trace_id,omitempty"`
	ParentID string    `json:"parent_id,omitempty"` // client span that made the request
	SpanID   string    `json:"span_id"`
	URL      string    `json:"url"`
	Start    time.Time `json:"start"`
	DurMS    float64   `json:"duration_ms"`
	DelayMS  float64   `json:"delay_ms,omitempty"`
	Status   int       `json:"status"`
	Bytes    int64     `json:"bytes,omitempty"`
}

// ServerSpanLog is a bounded ring of server spans, safe for concurrent use
// and on a nil receiver (a server without a log records nothing).
type ServerSpanLog struct {
	mu    sync.Mutex
	cap   int
	spans []ServerSpan
	total int64
}

// DefaultServerSpanCapacity bounds a log built with capacity <= 0.
const DefaultServerSpanCapacity = 4096

// NewServerSpanLog returns a log holding at most capacity spans
// (DefaultServerSpanCapacity when <= 0).
func NewServerSpanLog(capacity int) *ServerSpanLog {
	if capacity <= 0 {
		capacity = DefaultServerSpanCapacity
	}
	return &ServerSpanLog{cap: capacity}
}

// Record appends a span, evicting the oldest beyond capacity.
func (l *ServerSpanLog) Record(sp ServerSpan) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	l.spans = append(l.spans, sp)
	if len(l.spans) > l.cap {
		copy(l.spans, l.spans[1:])
		l.spans = l.spans[:l.cap]
	}
}

// Spans returns a snapshot of the retained spans, oldest first.
func (l *ServerSpanLog) Spans() []ServerSpan {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]ServerSpan, len(l.spans))
	copy(out, l.spans)
	return out
}

// ByTrace returns the retained spans carrying the given trace ID.
func (l *ServerSpanLog) ByTrace(traceID string) []ServerSpan {
	if l == nil || traceID == "" {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []ServerSpan
	for _, sp := range l.spans {
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// Len returns the number of retained spans.
func (l *ServerSpanLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}

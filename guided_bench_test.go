package ltqp_test

import (
	"context"
	"encoding/json"
	"os"
	"sort"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

// The guided-queue experiment (EXPERIMENTS.md E20): on the solidbench
// Discover mix, relevance-prioritized traversal must deliver the exact
// same result multiset as FIFO while dereferencing fewer documents before
// the final result arrives — the queue reorders work so result-bearing
// documents are fetched early, it never changes what is reachable.
//
// With LTQP_GUIDED_ARTIFACT set, the per-query comparison is written as a
// JSON artifact (the bench/BENCH_*_guided.json files).

type guidedRow struct {
	Query              string  `json:"query"`
	Policy             string  `json:"policy"`
	Results            int     `json:"results"`
	Requests           int     `json:"requests"`
	DocsBeforeFirstRes int     `json:"docs_before_first_result"`
	DocsBeforeLastRes  int     `json:"docs_before_last_result"`
	TTFRMillis         float64 `json:"ttfr_ms"`
	TotalMillis        float64 `json:"total_ms"`
}

// runPolicy executes one query under a queue policy and measures how many
// dereferences began before the last result was delivered — the work the
// queue discipline actually gates (total fetches are identical for any
// complete traversal).
func runPolicy(t *testing.T, env *simenv.Env, q solidbench.Query, policy string) (guidedRow, []string) {
	t.Helper()
	engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true, QueuePolicy: policy})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	start := time.Now()
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		t.Fatalf("%s/%s: %v", q.Name, policy, err)
	}
	var rows []string
	for b := range res.Results {
		rows = append(rows, ltqp.BindingJSON(b))
	}
	total := time.Since(start)
	if err := res.Err(); err != nil {
		t.Fatalf("%s/%s: %v", q.Name, policy, err)
	}
	sort.Strings(rows)

	rec := res.Metrics()
	row := guidedRow{
		Query:       q.Name,
		Policy:      policy,
		Results:     len(rows),
		Requests:    res.Stats().Requests,
		TotalMillis: float64(total.Microseconds()) / 1000,
	}
	if ttfr, ok := rec.TimeToFirstResult(); ok {
		row.TTFRMillis = float64(ttfr.Microseconds()) / 1000
	}
	times := rec.ResultTimes()
	if len(times) > 0 {
		firstResult := rec.Epoch().Add(times[0])
		lastResult := rec.Epoch().Add(times[len(times)-1])
		for _, req := range rec.Requests() {
			if req.Start.Before(firstResult) {
				row.DocsBeforeFirstRes++
			}
			if req.Start.Before(lastResult) {
				row.DocsBeforeLastRes++
			}
		}
	}
	return row, rows
}

func TestGuidedVsFIFODereferenceBench(t *testing.T) {
	if testing.Short() {
		t.Skip("guided-vs-FIFO bench skipped in -short mode")
	}
	cfg := solidbench.DefaultConfig()
	cfg.Persons = 10
	env := simenv.New(cfg)
	t.Cleanup(env.Close)
	// A few milliseconds of pod latency keeps the link queue populated, so
	// pop order — not worker scheduling races — decides fetch order; with
	// an instant server the queue drains as fast as it fills and every
	// policy degenerates to discovery order.
	env.PodServer.Latency = 3 * time.Millisecond

	queries := []solidbench.Query{
		env.Dataset.Discover(1, 2),
		env.Dataset.Discover(2, 1),
		env.Dataset.Discover(4, 3),
		env.Dataset.Discover(6, 5),
		env.Dataset.Discover(8, 5),
	}

	var artifact []guidedRow
	fifoDocs, guidedDocs := 0, 0
	for _, q := range queries {
		fifoRow, fifoRows := runPolicy(t, env, q, "fifo")
		guidedRow, guidedRows := runPolicy(t, env, q, "guided")
		if len(fifoRows) == 0 {
			t.Fatalf("%s: FIFO found no results", q.Name)
		}
		// Identical result multisets — the permutation property end to end.
		if len(fifoRows) != len(guidedRows) {
			t.Errorf("%s: fifo %d results, guided %d", q.Name, len(fifoRows), len(guidedRows))
		} else {
			for i := range fifoRows {
				if fifoRows[i] != guidedRows[i] {
					t.Errorf("%s: result %d differs:\n fifo   %s\n guided %s",
						q.Name, i, fifoRows[i], guidedRows[i])
					break
				}
			}
		}
		if fifoRow.Requests != guidedRow.Requests {
			t.Errorf("%s: queue policy changed total fetches: fifo %d, guided %d",
				q.Name, fifoRow.Requests, guidedRow.Requests)
		}
		t.Logf("%-16s fifo: %3d docs before last result (of %3d) | guided: %3d (of %3d)",
			q.Name, fifoRow.DocsBeforeLastRes, fifoRow.Requests,
			guidedRow.DocsBeforeLastRes, guidedRow.Requests)
		fifoDocs += fifoRow.DocsBeforeLastRes
		guidedDocs += guidedRow.DocsBeforeLastRes
		artifact = append(artifact, fifoRow, guidedRow)
	}
	if guidedDocs > fifoDocs {
		t.Errorf("guided dereferenced %d docs before completing the mix, FIFO %d — prioritization should not lose",
			guidedDocs, fifoDocs)
	}
	t.Logf("mix total: fifo %d docs before last result, guided %d", fifoDocs, guidedDocs)

	if path := os.Getenv("LTQP_GUIDED_ARTIFACT"); path != "" {
		out, err := json.MarshalIndent(map[string]interface{}{
			"experiment":        "E20 guided-vs-fifo dereference counts",
			"persons":           cfg.Persons,
			"fifo_docs_total":   fifoDocs,
			"guided_docs_total": guidedDocs,
			"rows":              artifact,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
}

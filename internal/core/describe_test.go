package core

import (
	"context"
	"testing"
	"time"

	"ltqp/internal/rdf"
	"ltqp/internal/solidbench"
)

func TestDescribeConstantResource(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	webID := env.Dataset.WebID(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	triples, err := e.Describe(ctx, "DESCRIBE <"+webID+">", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) == 0 {
		t.Fatal("empty description")
	}
	me := rdf.NewIRI(webID)
	hasName := false
	for _, tr := range triples {
		if tr.S != me && !tr.S.IsBlank() {
			t.Errorf("CBD must only contain the resource's triples, got subject %v", tr.S)
		}
		if tr.P.Value == rdf.FOAFName {
			hasName = true
		}
	}
	if !hasName {
		t.Error("description lacks foaf:name")
	}
}

func TestDescribeWithWhere(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	v := solidbench.NewVocab(env.Dataset.Config.Host)
	webID := env.Dataset.WebID(1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	triples, err := e.Describe(ctx, `
PREFIX snvoc: <`+v.NS()+`>
DESCRIBE ?m WHERE { ?m snvoc:hasCreator <`+webID+`> }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) == 0 {
		t.Fatal("no description for the person's messages")
	}
	// Every subject must be a message with the right creator.
	creators := map[rdf.Term]bool{}
	for _, tr := range triples {
		if tr.P == v.P("hasCreator") {
			creators[tr.O] = true
		}
	}
	if len(creators) != 1 || !creators[rdf.NewIRI(webID)] {
		t.Errorf("creators = %v", creators)
	}
}

func TestDescribeRequiresDescribeForm(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	_, err := e.Describe(context.Background(), "SELECT ?x WHERE { ?x ?p <"+env.Dataset.WebID(0)+"> }", nil)
	if err == nil {
		t.Error("SELECT passed to Describe should error")
	}
}

package plan

import (
	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
)

// CountSource exposes current cardinalities of triple patterns. The
// growing store implements it (store.CountNow).
type CountSource interface {
	CountNow(pattern rdf.Triple) int
}

// OptimizeWithCounts reorders join chains like Optimize, but scores
// pattern operands by their *observed* cardinality in the source instead
// of the zero-knowledge syntactic heuristics: smaller current extensions
// run first. This powers the engine's adaptive re-planning — the future-
// work direction the paper points to (§5, adaptive query planning [29]),
// where the plan is revised once traversal has discovered enough data to
// estimate selectivities.
//
// Connectivity is still respected (no avoidable Cartesian products), and
// non-pattern operands keep their zero-knowledge scores.
func (p *Planner) OptimizeWithCounts(op algebra.Operator, counts CountSource) algebra.Operator {
	saved := p.counts
	p.counts = counts
	defer func() { p.counts = saved }()
	return p.Optimize(op)
}

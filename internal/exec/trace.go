package exec

import (
	"context"
	"time"

	"ltqp/internal/obs"
	"ltqp/internal/rdf"
)

// traced wraps an operator's stream in an obs span — and, when the owning
// query's event stream has an audience, a stage_started/stage_finished
// event pair — so traced executions record per-stage timings and row counts
// (the join/iterator stages of a query's span tree). With no trace on the
// context and no event subscriber this is a context lookup plus one atomic
// load: the inner stream is returned untouched, so unobserved queries pay
// nothing per solution.
func traced(ctx context.Context, env *Env, name string, attrs []obs.Attr, inner func(context.Context) Stream) Stream {
	ctx, sp := obs.StartSpan(ctx, name, attrs...)
	s := inner(ctx)
	ev := env.Events
	if sp == nil && !ev.Active() {
		return s
	}
	ev.Emit(obs.Event{Kind: obs.EventStageStarted, Stage: name, Detail: attrDetail(attrs)})
	start := time.Now()
	out := make(chan rdf.Binding, chanCap)
	go func() {
		defer close(out)
		rows := 0
		for b := range s {
			if !send(ctx, out, b) {
				break
			}
			rows++
		}
		sp.SetAttr(obs.Int("rows", rows))
		sp.End()
		ev.Emit(obs.Event{Kind: obs.EventStageFinished, Stage: name, Rows: rows,
			DurationUS: time.Since(start).Microseconds(), Detail: attrDetail(attrs)})
	}()
	return out
}

// attrDetail pulls the operator description out of span attributes for
// event annotation.
func attrDetail(attrs []obs.Attr) string {
	for _, a := range attrs {
		if a.Key == "op" {
			return a.Value
		}
	}
	return ""
}

// opAttrs abbreviates an operator description for span annotation.
func opAttrs(desc string) []obs.Attr {
	if len(desc) > 80 {
		desc = desc[:77] + "..."
	}
	return []obs.Attr{obs.Str("op", desc)}
}

package obs

import (
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/) support for the
// span layer: every traced query gets a 128-bit trace ID and each span a
// 64-bit span ID, carried across HTTP hops in the `traceparent` header.
// internal/deref injects the header on every dereference attempt and
// internal/podserver extracts it, so client and server spans of one query
// share a trace ID and can be merged into a single DAG afterwards.

// TraceparentHeader is the canonical header name (the spec requires
// lowercase on the wire; net/http canonicalizes on read either way).
const TraceparentHeader = "traceparent"

// TraceID is a W3C trace-id: 16 bytes, rendered as 32 lowercase hex digits.
// The all-zero value is invalid on the wire and means "untraced" here.
type TraceID [16]byte

// SpanID is a W3C parent-id/span-id: 8 bytes, 16 lowercase hex digits.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// FlagSampled is the sampled bit of the trace-flags octet.
const FlagSampled byte = 0x01

// Traceparent is a parsed traceparent header (version 00 fields; future
// versions are accepted on parse and downgraded to these fields).
type Traceparent struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Sampled reports whether the sampled flag is set.
func (tp Traceparent) Sampled() bool { return tp.Flags&FlagSampled != 0 }

// String renders the header value in version-00 form.
func (tp Traceparent) String() string {
	return FormatTraceparent(tp.TraceID, tp.SpanID, tp.Flags)
}

// FormatTraceparent renders `00-<trace-id>-<parent-id>-<flags>`.
func FormatTraceparent(tid TraceID, sid SpanID, flags byte) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], tid[:])
	b[35] = '-'
	hex.Encode(b[36:52], sid[:])
	b[52] = '-'
	hex.Encode(b[53:55], []byte{flags})
	return string(b[:])
}

// ParseTraceparent parses a traceparent header value, enforcing the W3C
// grammar strictly: lowercase hex only, exact field widths, nonzero
// trace-id and parent-id, version ff rejected. A version above 00 is
// accepted when followed by `-`-separated extra content (forward
// compatibility), with only the version-00 fields retained.
func ParseTraceparent(s string) (Traceparent, bool) {
	var tp Traceparent
	if len(s) < 55 {
		return tp, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tp, false
	}
	if !isLowerHex(s[0:2]) || s[0:2] == "ff" {
		return tp, false
	}
	if len(s) > 55 {
		// Version 00 is exactly 55 bytes; future versions may append
		// `-`-prefixed fields.
		if s[0:2] == "00" || s[55] != '-' {
			return tp, false
		}
	}
	if !isLowerHex(s[3:35]) || !isLowerHex(s[36:52]) || !isLowerHex(s[53:55]) {
		return tp, false
	}
	hex.Decode(tp.TraceID[:], []byte(s[3:35]))
	hex.Decode(tp.SpanID[:], []byte(s[36:52]))
	var fb [1]byte
	hex.Decode(fb[:], []byte(s[53:55]))
	tp.Flags = fb[0]
	if tp.TraceID.IsZero() || tp.SpanID.IsZero() {
		return Traceparent{}, false
	}
	return tp, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewTraceID returns a random nonzero trace ID. Uses math/rand/v2's
// runtime-seeded generator: allocation-free and safe for concurrent use;
// trace IDs are correlation keys, not secrets.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[0:8], rand.Uint64())
		binary.BigEndian.PutUint64(t[8:16], rand.Uint64())
	}
	return t
}

// NewSpanID returns a random nonzero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], rand.Uint64())
	}
	return s
}

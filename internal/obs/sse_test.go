package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseOpen connects to the stream and consumes the opening comment, so the
// caller knows the handler's subscription is attached before publishing.
func sseOpen(t *testing.T, url string) (*bufio.Reader, func()) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type = %s", ct)
	}
	r := bufio.NewReader(resp.Body)
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": ltqp event stream, schema") {
		t.Fatalf("opening comment = %q, %v", line, err)
	}
	if blank, err := r.ReadString('\n'); err != nil || blank != "\n" {
		t.Fatalf("opening frame terminator = %q, %v", blank, err)
	}
	return r, func() { resp.Body.Close() }
}

// sseNextEvent reads frames until the next event, skipping comments.
func sseNextEvent(t *testing.T, r *bufio.Reader) (kind string, ev Event) {
	t.Helper()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad data frame %q: %v", line, err)
			}
			return kind, ev
		}
	}
}

func TestEventStreamServesEvents(t *testing.T) {
	bus := NewBus()
	stream := NewEventStream(bus)
	srv := httptest.NewServer(stream)
	defer srv.Close()

	r, done := sseOpen(t, srv.URL)
	defer done()

	bus.Publish(Event{Kind: EventQueryStarted, Query: 1, Detail: "SELECT"})
	bus.Publish(Event{Kind: EventResultEmitted, Query: 1, Row: 1})

	kind, ev := sseNextEvent(t, r)
	if kind != "query_started" || ev.Query != 1 || ev.Detail != "SELECT" {
		t.Errorf("first frame = %s %+v", kind, ev)
	}
	kind, ev = sseNextEvent(t, r)
	if kind != "result_emitted" || ev.Row != 1 {
		t.Errorf("second frame = %s %+v", kind, ev)
	}

	// Shutdown ends the stream with a closing comment.
	stream.Shutdown()
	stream.Shutdown() // idempotent
	sawClosing := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		if strings.HasPrefix(line, ": closing") {
			sawClosing = true
		}
	}
	if !sawClosing {
		t.Error("no closing comment after Shutdown")
	}
}

func TestEventStreamQueryFilter(t *testing.T) {
	bus := NewBus()
	stream := NewEventStream(bus)
	srv := httptest.NewServer(stream)
	defer srv.Close()
	defer stream.Shutdown()

	r, done := sseOpen(t, srv.URL+"?id=2")
	defer done()

	bus.Publish(Event{Kind: EventQueryStarted, Query: 1})
	bus.Publish(Event{Kind: EventQueryStarted, Query: 2})

	_, ev := sseNextEvent(t, r)
	if ev.Query != 2 {
		t.Errorf("filtered stream delivered query %d", ev.Query)
	}
}

func TestEventStreamRejectsBadID(t *testing.T) {
	stream := NewEventStream(NewBus())
	srv := httptest.NewServer(stream)
	defer srv.Close()
	for _, id := range []string{"abc", "-1", "0"} {
		resp, err := http.Get(srv.URL + "?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("id=%s status = %d", id, resp.StatusCode)
		}
	}
}

func TestEventStreamKeepalive(t *testing.T) {
	bus := NewBus()
	stream := NewEventStream(bus)
	stream.KeepAlive = 10 * time.Millisecond
	srv := httptest.NewServer(stream)
	defer srv.Close()
	defer stream.Shutdown()

	r, done := sseOpen(t, srv.URL)
	defer done()

	deadline := time.After(2 * time.Second)
	got := make(chan string, 1)
	go func() {
		line, err := r.ReadString('\n')
		if err == nil {
			got <- line
		}
	}()
	select {
	case line := <-got:
		if !strings.HasPrefix(line, ": keepalive") {
			t.Errorf("idle stream sent %q, want keepalive comment", line)
		}
	case <-deadline:
		t.Fatal("no keepalive within 2s")
	}
}

// TestEventStreamClientDisconnect: cancelling the request context returns
// from ServeHTTP promptly and detaches the subscription.
func TestEventStreamClientDisconnect(t *testing.T) {
	bus := NewBus()
	stream := NewEventStream(bus)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/debug/events", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		stream.ServeHTTP(httptest.NewRecorder(), req)
	}()
	// Wait until the handler has subscribed, then disconnect.
	for i := 0; i < 200 && bus.nsubs.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if bus.nsubs.Load() != 1 {
		t.Fatal("handler never subscribed")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
	if n := bus.nsubs.Load(); n != 0 {
		t.Errorf("subscription leaked: nsubs = %d", n)
	}
}

// TestEventStreamDisabled: with no bus there is nothing to stream.
func TestEventStreamDisabled(t *testing.T) {
	stream := NewEventStream(nil)
	srv := httptest.NewServer(stream)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

package rdf

import "sort"

// Provenance rides through the binding pipeline as reserved pseudo-variables:
// a solution that used a triple from document D carries the entry
// "\x00" + D  ->  IRI(D). The NUL first byte can never appear in a parsed
// SPARQL variable name, so provenance entries are invisible to expression
// evaluation (which looks variables up by real name) and are filtered from
// Vars. Because the value is a pure function of the key, provenance entries
// are always Merge-compatible: a join naturally accumulates the union of the
// source documents of both sides — exactly the per-result provenance set.
//
// Nothing in this file runs unless an execution opts in (the provenance
// sink annotates pattern matches); provenance-free bindings pay only a
// one-byte prefix check in Vars.
const provMark = '\x00'

// IsProvVar reports whether a binding key is a provenance pseudo-variable
// rather than a real query variable.
func IsProvVar(name string) bool {
	return len(name) > 0 && name[0] == provMark
}

// ProvKey returns the pseudo-variable key under which doc is recorded as a
// source document. The vectorized executor uses it to rebuild provenance
// entries when a batch's provenance column is decoded back into bindings.
func ProvKey(doc string) string { return string(provMark) + doc }

// SourceIDs returns the dictionary IDs of the solution's source documents,
// interning them as needed. The vectorized executor uses it to lift binding
// provenance into a batch's provenance column; nil when the binding carries
// none.
func (b Binding) SourceIDs(d *Dict) []TermID {
	var out []TermID
	for k, v := range b {
		if IsProvVar(k) {
			out = append(out, d.Intern(v))
		}
	}
	return out
}

// WithSource returns a binding that additionally records doc as a source
// document of this solution. The receiver is unchanged; when doc is already
// recorded the receiver is returned as-is.
func (b Binding) WithSource(doc Term) Binding {
	key := string(provMark) + doc.Value
	if _, ok := b[key]; ok {
		return b
	}
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	c[key] = doc
	return c
}

// Sources returns the solution's source document IRIs in sorted order, or
// nil when the binding carries no provenance.
func (b Binding) Sources() []string {
	var out []string
	for k, v := range b {
		if IsProvVar(k) {
			out = append(out, v.Value)
		}
	}
	sort.Strings(out)
	return out
}

// HasSources reports whether the binding carries any provenance.
func (b Binding) HasSources() bool {
	for k := range b {
		if IsProvVar(k) {
			return true
		}
	}
	return false
}

// WithoutProv returns the binding stripped of provenance entries; the
// receiver itself is returned when it carries none.
func (b Binding) WithoutProv() Binding {
	n := 0
	for k := range b {
		if IsProvVar(k) {
			n++
		}
	}
	if n == 0 {
		return b
	}
	c := make(Binding, len(b)-n)
	for k, v := range b {
		if !IsProvVar(k) {
			c[k] = v
		}
	}
	return c
}

// WithProvFrom returns a binding carrying b's entries plus the provenance
// entries of src (used by operators like projection and grouping that build
// fresh bindings but must not lose the input rows' provenance). The receiver
// is returned unchanged when src carries none that b lacks.
func (b Binding) WithProvFrom(src Binding) Binding {
	var c Binding
	for k, v := range src {
		if !IsProvVar(k) {
			continue
		}
		if _, ok := b[k]; ok {
			continue
		}
		if c == nil {
			c = make(Binding, len(b)+1)
			for bk, bv := range b {
				c[bk] = bv
			}
		}
		c[k] = v
	}
	if c == nil {
		return b
	}
	return c
}

package podserver

import (
	"net/http"
	"testing"
	"time"

	"ltqp/internal/solid"
)

func TestResponsesCarryValidators(t *testing.T) {
	_, ts, pod := newTestServer(t)
	resp, body := get(t, ts.Client(), pod.IRI("profile/card"), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("missing or weak ETag: %q", etag)
	}
	lm := resp.Header.Get("Last-Modified")
	if _, err := http.ParseTime(lm); err != nil {
		t.Fatalf("unparseable Last-Modified %q: %v", lm, err)
	}
	if body == "" {
		t.Fatal("empty body")
	}
	// Same body → same strong validator on a second request.
	resp2, _ := get(t, ts.Client(), pod.IRI("profile/card"), nil)
	if resp2.Header.Get("ETag") != etag {
		t.Fatalf("ETag not stable: %q then %q", etag, resp2.Header.Get("ETag"))
	}
}

func TestIfNoneMatchRevalidation(t *testing.T) {
	ps, ts, pod := newTestServer(t)
	resp, _ := get(t, ts.Client(), pod.IRI("profile/card"), nil)
	etag := resp.Header.Get("ETag")

	resp, body := get(t, ts.Client(), pod.IRI("profile/card"), map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: status = %d, want 304", resp.StatusCode)
	}
	if body != "" {
		t.Fatalf("304 must carry no body, got %d bytes", len(body))
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatal("304 must echo the validator")
	}
	if ps.NotModifiedCount() != 1 {
		t.Fatalf("NotModifiedCount = %d, want 1", ps.NotModifiedCount())
	}

	// A non-matching tag gets the full document.
	resp, body = get(t, ts.Client(), pod.IRI("profile/card"), map[string]string{"If-None-Match": `"deadbeef"`})
	if resp.StatusCode != http.StatusOK || body == "" {
		t.Fatalf("stale If-None-Match: status = %d, body %d bytes", resp.StatusCode, len(body))
	}

	// Weak-comparison: W/-prefixed candidate still matches.
	resp, _ = get(t, ts.Client(), pod.IRI("profile/card"), map[string]string{"If-None-Match": "W/" + etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("weak If-None-Match: status = %d, want 304", resp.StatusCode)
	}
}

func TestIfModifiedSinceRevalidation(t *testing.T) {
	_, ts, pod := newTestServer(t)
	resp, _ := get(t, ts.Client(), pod.IRI("profile/card"), nil)
	lm := resp.Header.Get("Last-Modified")

	resp, _ = get(t, ts.Client(), pod.IRI("profile/card"), map[string]string{"If-Modified-Since": lm})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-Modified-Since at mod time: status = %d, want 304", resp.StatusCode)
	}

	old := time.Now().Add(-24 * time.Hour).UTC().Format(http.TimeFormat)
	resp, body := get(t, ts.Client(), pod.IRI("profile/card"), map[string]string{"If-Modified-Since": old})
	if resp.StatusCode != http.StatusOK || body == "" {
		t.Fatalf("stale If-Modified-Since: status = %d, body %d bytes", resp.StatusCode, len(body))
	}

	// If-None-Match wins over If-Modified-Since (RFC 9110 §13.1).
	resp, _ = get(t, ts.Client(), pod.IRI("profile/card"), map[string]string{
		"If-None-Match": `"deadbeef"`, "If-Modified-Since": lm,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("If-None-Match must take precedence: status = %d, want 200", resp.StatusCode)
	}
}

func TestRebaseRecomputesETags(t *testing.T) {
	ps := New()
	ps.AddDocument("http://old.example/d", "<http://old.example/d#s> <http://x/p> <http://x/o>.", solid.PublicAccess)
	ps.mu.RLock()
	before := ps.docs["http://old.example/d"].etag
	ps.mu.RUnlock()
	ps.Rebase("http://old.example", "http://new.example")
	ps.mu.RLock()
	after, ok := ps.docs["http://new.example/d"]
	ps.mu.RUnlock()
	if !ok {
		t.Fatal("document not rebased")
	}
	if after.etag == before {
		t.Fatal("body changed but ETag did not")
	}
	if after.etag != etagFor(after.turtle) {
		t.Fatal("rebased ETag does not validate the rebased body")
	}
}

package exec

import (
	"context"
	"math/rand"
	"testing"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

// FuzzBatchSelection drives fuzzer-shaped batches through the vectorized
// operators: the fuzzer controls the row count, the cell contents, the
// selection vector (empty, full, single-row, sparse, out-of-order — raw
// bytes, deduplicated to keep the at-most-once invariant), and which
// operator runs. Every execution is checked against the row-at-a-time
// reference on the flattened input, so the target is a differential oracle,
// not just a crash hunt.
func FuzzBatchSelection(f *testing.F) {
	f.Add(int64(1), uint16(0), []byte{}, uint8(0))             // empty batch
	f.Add(int64(2), uint16(1), []byte{0}, uint8(1))            // single row
	f.Add(int64(3), uint16(40), []byte{}, uint8(2))            // empty selection
	f.Add(int64(4), uint16(40), []byte{5, 2, 9, 30}, uint8(3)) // out of order
	f.Add(int64(5), uint16(300), []byte{1, 1, 7, 200, 200, 13}, uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, selBytes []byte, opSel uint8) {
		n := int(nRaw) % (batchCap + 1)
		rig := newPropRig(seed)
		r := rand.New(rand.NewSource(seed))

		schema := []string{"a", "b", "c"}
		b := getBatch(schema, false)
		for c := range b.cols {
			col := b.cols[c]
			for i := 0; i < n; i++ {
				if r.Intn(5) == 0 {
					col = append(col, rdf.NoTerm)
				} else {
					col = append(col, rig.pool[r.Intn(len(rig.pool))])
				}
			}
			b.cols[c] = col
		}
		b.n = n
		if len(selBytes) > 0 || n == 0 {
			// Raw fuzzer bytes become the selection vector: arbitrary order,
			// arbitrary sparsity, duplicates dropped (a physical row is live
			// at most once).
			sel := b.selSlab()
			seen := make(map[int32]bool, len(selBytes))
			for _, raw := range selBytes {
				if n == 0 {
					break
				}
				idx := int32(int(raw) % n)
				if !seen[idx] {
					seen[idx] = true
					sel = append(sel, idx)
				}
			}
			b.sel = sel
		}

		ctx := context.Background()
		rig.env.Workers = 1 + int(opSel)%4
		input := []*Batch{b}
		rows := rig.flatten(input)
		values := algebra.Values{Variables: schema, Rows: rows}

		var want, got []string
		switch opSel % 4 {
		case 0: // FILTER
			expr := sparql.ExprCall{Func: "CONTAINS", Args: []sparql.Expression{
				sparql.ExprCall{Func: "STR", Args: []sparql.Expression{sparql.ExprVar{Name: "a"}}},
				sparql.ExprTerm{Term: rdf.NewLiteral("e")},
			}}
			want = canon(schema, collect(Eval(ctx, algebra.Filter{Input: values, Expr: expr}, rig.ref)))
			got = canon(schema, collect(batchesToRows(ctx, rig.env,
				batchFilter(ctx, rig.env, expr, streamOf(input)))))
		case 1: // BIND
			expr := sparql.ExprCall{Func: "STRLEN", Args: []sparql.Expression{
				sparql.ExprCall{Func: "STR", Args: []sparql.Expression{sparql.ExprVar{Name: "b"}}}}}
			ext := append(append([]string{}, schema...), "z")
			want = canon(ext, collect(Eval(ctx, algebra.Extend{Input: values, Var: "z", Expr: expr}, rig.ref)))
			got = canon(ext, collect(batchesToRows(ctx, rig.env,
				batchExtend(ctx, rig.env, "z", expr, streamOf(input)))))
		case 2: // DISTINCT
			want = canon(schema, collect(Eval(ctx, algebra.Distinct{Input: values}, rig.ref)))
			got = canon(schema, collect(batchesToRows(ctx, rig.env,
				batchDedup(ctx, rig.env, schema, true, streamOf(input)))))
		default: // self-JOIN (all variables shared)
			join := algebra.Join{Left: values, Right: values}
			want = canon(schema, collect(Eval(ctx, join, rig.ref)))
			got = canon(schema, collect(batchesToRows(ctx, rig.env,
				batchJoin(ctx, rig.env, join.Vars(), algebra.SharedVars(values, values),
					streamOf(input), streamOf(input)))))
		}
		if len(got) != len(want) {
			t.Fatalf("op %d: %d solutions, reference %d", opSel%4, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("op %d: solution %d differs\ngot:  %s\nwant: %s", opSel%4, i, got[i], want[i])
			}
		}
		putBatch(b)
	})
}

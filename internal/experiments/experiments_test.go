package experiments

import (
	"context"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/baseline"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
	"ltqp/internal/sparql"
)

func newEnv(t *testing.T) *simenv.Env {
	t.Helper()
	env := simenv.New(solidbench.SmallConfig())
	t.Cleanup(env.Close)
	return env
}

func ctxWithTimeout(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func TestE1AndGroundTruth(t *testing.T) {
	env := newEnv(t)
	run, err := E1CLIDiscover(ctxWithTimeout(t), env)
	if err != nil {
		t.Fatal(err)
	}
	if run.Results == 0 || run.Requests == 0 {
		t.Errorf("run = %+v", run)
	}
	if !run.HasTTFR || run.TTFR <= 0 || run.TTFR > run.Total {
		t.Errorf("TTFR = %v of %v", run.TTFR, run.Total)
	}
}

func TestE3SinglePodInvariant(t *testing.T) {
	env := newEnv(t)
	run, wf, err := E3WaterfallSinglePod(ctxWithTimeout(t), env)
	if err != nil {
		t.Fatal(err)
	}
	if run.PodsTouched != 1 {
		t.Errorf("pods = %d", run.PodsTouched)
	}
	if wf == "" {
		t.Error("empty waterfall")
	}
	// Discover 1's traversal has the Fig. 4 structure: card → type index
	// → containers → documents = depth >= 3.
	if run.MaxDepth < 3 {
		t.Errorf("depth = %d", run.MaxDepth)
	}
}

func TestE4MultiPodInvariant(t *testing.T) {
	env := newEnv(t)
	run, _, err := E4WaterfallMultiPod(ctxWithTimeout(t), env)
	if err != nil {
		t.Fatal(err)
	}
	if run.PodsTouched < 2 {
		t.Errorf("pods = %d, want multi-pod", run.PodsTouched)
	}
	if run.MaxDepth <= 3 {
		t.Errorf("multi-pod depth = %d, should exceed single-pod chains", run.MaxDepth)
	}
}

func TestE5ShapeWithinPaperBounds(t *testing.T) {
	cfg := solidbench.DefaultConfig()
	cfg.Persons = 8
	env := simenv.New(cfg)
	defer env.Close()
	shape := E5DatasetStats(env)
	if shape.FilesPerPod < shape.PaperFilesPerPod/2 || shape.FilesPerPod > shape.PaperFilesPerPod*2 {
		t.Errorf("files/pod = %.1f vs paper %.1f", shape.FilesPerPod, shape.PaperFilesPerPod)
	}
	if shape.TriplesPerPod < shape.PaperTriplesPP/2 || shape.TriplesPerPod > shape.PaperTriplesPP*2 {
		t.Errorf("triples/pod = %.1f vs paper %.1f", shape.TriplesPerPod, shape.PaperTriplesPP)
	}
}

func TestE6AllShapesAnswer(t *testing.T) {
	env := newEnv(t)
	runs, err := E6TTFR(ctxWithTimeout(t), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 8 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		if r.Results == 0 && r.Query != "Discover 4.1" {
			// Tiny environments can make some aggregations empty; all
			// other shapes must answer.
			t.Errorf("%s: no results", r.Query)
		}
	}
}

func TestE7Catalog37(t *testing.T) {
	env := newEnv(t)
	n, err := E7Catalog(env)
	if err != nil || n != 37 {
		t.Errorf("catalog = %d, %v", n, err)
	}
}

func TestE8AblationShape(t *testing.T) {
	env := newEnv(t)
	rows, err := E8ExtractorAblation(ctxWithTimeout(t), env, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	if byName["solid-no-ldp"].Requests >= byName["ldp-only"].Requests {
		t.Errorf("guided (%d) should beat LDP walk (%d)",
			byName["solid-no-ldp"].Requests, byName["ldp-only"].Requests)
	}
	if byName["ldp-only"].Requests >= byName["call"].Requests {
		t.Errorf("LDP walk (%d) should beat blind (%d)",
			byName["ldp-only"].Requests, byName["call"].Requests)
	}
	if byName["solid-no-ldp"].Results != byName["solid"].Results {
		t.Errorf("guided lost results: %d vs %d",
			byName["solid-no-ldp"].Results, byName["solid"].Results)
	}
}

func TestE9OracleAgreesOnSinglePod(t *testing.T) {
	env := newEnv(t)
	cmp, err := E9Centralized(ctxWithTimeout(t), env, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Discover 1 is answerable entirely from the person's own pod, so
	// traversal is complete and must agree with the oracle.
	if cmp.Traversal.Results != cmp.OracleCount {
		t.Errorf("traversal %d vs oracle %d", cmp.Traversal.Results, cmp.OracleCount)
	}
	if cmp.IngestedTrpl == 0 {
		t.Error("oracle ingested nothing")
	}
}

func TestE10AuthGap(t *testing.T) {
	cmp, err := E10Auth(ctxWithTimeout(t), 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.AuthedResults <= cmp.AnonResults {
		t.Errorf("anon=%d authed=%d", cmp.AnonResults, cmp.AuthedResults)
	}
}

func TestGroundTruthHelpers(t *testing.T) {
	env := newEnv(t)
	if n := GroundTruth(env, 1, 1); n <= 0 {
		t.Errorf("shape 1 ground truth = %d", n)
	}
	if n := GroundTruth(env, 6, 1); n <= 0 {
		t.Errorf("shape 6 ground truth = %d", n)
	}
	if n := GroundTruth(env, 5, 1); n != -1 {
		t.Errorf("unsupported shape = %d, want -1", n)
	}
	// Traversal of Discover 1 finds exactly the ground truth.
	run, err := RunCatalogQuery(ctxWithTimeout(t), env, env.Dataset.Discover(1, 1), ltqp.Config{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Results != GroundTruth(env, 1, 1) {
		t.Errorf("results = %d, ground truth = %d", run.Results, GroundTruth(env, 1, 1))
	}
}

// TestTraversalSoundnessAgainstOracle is the whole-stack correctness
// property of LTQP: whatever the traversal engine answers must be a subset
// of the complete answer an omniscient engine computes over ALL pod data
// (traversal sees only the reachable subweb, so it may return fewer
// results — never wrong ones). Checked for every Discover shape.
func TestTraversalSoundnessAgainstOracle(t *testing.T) {
	env := newEnv(t)
	ctx := ctxWithTimeout(t)
	st := baseline.CentralizedStore(env.Pods)

	for shape := 1; shape <= 8; shape++ {
		q := env.Dataset.Discover(shape, 1)

		oracle, err := baseline.RunQuery(ctx, st, q.Text)
		if err != nil {
			t.Fatalf("shape %d oracle: %v", shape, err)
		}
		parsed, err := sparql.ParseQuery(q.Text)
		if err != nil {
			t.Fatal(err)
		}
		vars := parsed.ProjectedVars()
		complete := map[string]int{}
		for _, b := range oracle {
			complete[b.Key(vars)]++
		}

		engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true})
		res, err := engine.Query(ctx, q.Text)
		if err != nil {
			t.Fatal(err)
		}
		unsound := 0
		n := 0
		for b := range res.Results {
			n++
			k := b.Key(vars)
			if complete[k] == 0 {
				unsound++
				if unsound <= 3 {
					t.Errorf("shape %d: traversal produced a solution the oracle does not have: %v", shape, b)
				}
			} else {
				complete[k]--
			}
		}
		if n > len(oracle) {
			t.Errorf("shape %d: traversal produced %d solutions, oracle only %d", shape, n, len(oracle))
		}
	}
}

// TestComplexQueriesRunAndAreSound runs the complex workload end to end:
// each query must finish, and SELECT results must be a subset of the
// oracle's complete answer.
func TestComplexQueriesRunAndAreSound(t *testing.T) {
	env := newEnv(t)
	ctx := ctxWithTimeout(t)
	st := baseline.CentralizedStore(env.Pods)
	for _, q := range env.Dataset.ComplexQueries() {
		oracle, err := baseline.RunQuery(ctx, st, q.Text)
		if err != nil {
			t.Fatalf("%s oracle: %v", q.Name, err)
		}
		run, err := RunCatalogQuery(ctx, env, q, ltqp.Config{Lenient: true})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		// LIMIT queries may differ row-wise under ordering ties; only the
		// cardinality bound holds universally.
		if run.Results > len(oracle) {
			t.Errorf("%s: traversal %d > oracle %d", q.Name, run.Results, len(oracle))
		}
		t.Logf("%s: %d results (oracle %d) in %v over %d requests",
			q.Name, run.Results, len(oracle), run.Total, run.Requests)
	}
}

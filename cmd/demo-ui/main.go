// Command demo-ui serves the Web-based demonstration interface of the
// paper's §4 (Fig. 3): a page with a query dropdown preloaded with the 37
// default SolidBench queries, a free-form SPARQL editor, datasource (seed)
// selection, simulated Solid login, and a live result list that fills as
// the engine streams solutions — with the request waterfall (Figs. 4/5)
// shown next to it.
//
// The simulated pod environment runs in the same process; queries execute
// server-side and stream to the browser over server-sent events.
//
//	demo-ui --addr localhost:8095 --persons 16
package main

import (
	"context"
	"flag"
	"fmt"
	"html/template"
	"net/http"
	"os"
	"strconv"
	"time"

	"ltqp"
	"ltqp/internal/obs"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

var page = template.Must(template.New("page").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><title>Link Traversal SPARQL over Solid</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2em; max-width: 72em; }
textarea { width: 100%; height: 14em; font-family: monospace; font-size: 13px; }
select, input[type=text] { width: 100%; padding: 4px; }
.row { display: flex; gap: 2em; } .col { flex: 1; }
#results li { font-family: monospace; font-size: 12px; margin: 2px 0; }
#status { color: #555; margin: 0.5em 0; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto; font-size: 11px; }
button { padding: 6px 16px; font-size: 15px; }
</style></head><body>
<h1>Comunica-style Link Traversal — Go engine</h1>
<p>Using the <b>solid-default</b> configuration over {{.Pods}} simulated Solid pods
({{.Triples}} triples in {{.Files}} RDF files).</p>
<div class="row"><div class="col">
<label>Solid authentication:</label>
<select id="auth"><option value="">(anonymous)</option>
{{range .Agents}}<option value="{{.WebID}}">{{.Name}} &lt;{{.WebID}}&gt;</option>{{end}}
</select>
<label>Choose datasources (seed URLs, optional — defaults to IRIs in the query):</label>
<input type="text" id="seeds" placeholder="https://... (space separated)">
<label>Link extraction strategy:</label>
<select id="strategy">
<option value="solid">solid-default (profile + type index + LDP + cMatch)</option>
<option value="solid-no-ldp">type-index-guided (no blind container walks)</option>
<option value="ldp-only">LDP walk only</option>
<option value="cmatch">cMatch only</option>
</select>
<label>Type or pick a query:</label>
<select id="pick" onchange="pickQuery()"><option value="">(custom)</option>
{{range $i, $q := .Queries}}<option value="{{$i}}">[SolidBench] {{$q.Name}}</option>{{end}}
</select>
<textarea id="query"></textarea>
<p><button onclick="execute()">Execute query</button> <span id="status"></span></p>
<h3>Query results:</h3><ol id="results"></ol>
</div><div class="col">
<h3>Resource waterfall:</h3>
<pre id="waterfall">(run a query)</pre>
<h3>Traversal activity:</h3>
<pre id="traversal">(run a query)</pre>
</div></div>
<script>
const queries = {{.QueryTexts}};
function pickQuery() {
  const i = document.getElementById('pick').value;
  if (i !== '') document.getElementById('query').value = queries[i];
}
let source = null;
function execute() {
  if (source) source.close();
  const q = encodeURIComponent(document.getElementById('query').value);
  const seeds = encodeURIComponent(document.getElementById('seeds').value);
  const auth = encodeURIComponent(document.getElementById('auth').value);
  const strategy = encodeURIComponent(document.getElementById('strategy').value);
  document.getElementById('results').innerHTML = '';
  document.getElementById('traversal').textContent = '';
  document.getElementById('status').textContent = 'running…';
  const started = performance.now();
  let n = 0;
  source = new EventSource('/query?q='+q+'&seeds='+seeds+'&auth='+auth+'&strategy='+strategy);
  source.addEventListener('result', e => {
    n++;
    const li = document.createElement('li');
    li.textContent = e.data;
    document.getElementById('results').appendChild(li);
    document.getElementById('status').textContent =
      n + ' results in ' + ((performance.now()-started)/1000).toFixed(1) + 's';
  });
  source.addEventListener('waterfall', e => {
    document.getElementById('waterfall').textContent = JSON.parse(e.data);
  });
  source.addEventListener('traversal', e => {
    const pre = document.getElementById('traversal');
    const lines = pre.textContent === '' ? [] : pre.textContent.split('\n');
    lines.push(e.data);
    while (lines.length > 200) lines.shift();
    pre.textContent = lines.join('\n');
  });
  source.addEventListener('done', e => {
    document.getElementById('status').textContent =
      n + ' results in ' + ((performance.now()-started)/1000).toFixed(1) + 's — done';
    source.close();
  });
  source.addEventListener('error', e => {
    if (e.data) document.getElementById('status').textContent = 'error: ' + e.data;
    source.close();
  });
}
pickQuery();
</script></body></html>`))

type agentInfo struct {
	Name  string
	WebID string
}

func main() {
	var (
		addr    = flag.String("addr", "localhost:8095", "listen address")
		persons = flag.Int("persons", 16, "pods in the simulated environment")
		seed    = flag.Int64("seed", 42, "generator seed")
		latency = flag.Duration("latency", 2*time.Millisecond, "simulated pod latency")
	)
	flag.Parse()

	cfg := solidbench.DefaultConfig()
	cfg.Persons = *persons
	cfg.Seed = *seed
	env := simenv.New(cfg)
	defer env.Close()
	env.PodServer.Latency = *latency
	stats := env.Stats()
	catalog := env.Dataset.Catalog()

	var agents []agentInfo
	for i, p := range env.Dataset.Persons {
		agents = append(agents, agentInfo{
			Name:  p.FirstName + " " + p.LastName,
			WebID: env.Dataset.WebID(i),
		})
	}
	texts := make([]string, len(catalog))
	for i, q := range catalog {
		texts[i] = q.Text
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		err := page.Execute(w, map[string]interface{}{
			"Pods": stats.Pods, "Triples": stats.Triples, "Files": stats.Files,
			"Queries": catalog, "QueryTexts": texts, "Agents": agents,
		})
		if err != nil {
			http.Error(w, err.Error(), 500)
		}
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		serveQuery(w, r, env)
	})

	fmt.Fprintf(os.Stderr, "demo UI on http://%s (simulated pods at %s)\n", *addr, env.Server.URL)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "demo-ui:", err)
		os.Exit(1)
	}
}

// serveQuery runs one query and streams results as server-sent events,
// interleaved with live traversal activity from the engine event bus. The
// stream sends periodic `: keepalive` comments so proxies keep the
// connection open, and stops promptly when the browser disconnects.
func serveQuery(w http.ResponseWriter, r *http.Request, env *simenv.Env) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", 500)
		return
	}
	emit := func(event, data string) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}

	bus := ltqp.NewEventBus()
	cfg := ltqp.Config{Client: env.Client(), Lenient: true, Events: bus}
	if webid := r.URL.Query().Get("auth"); webid != "" {
		cfg.Auth = &ltqp.Credentials{WebID: webid, Token: "sig:" + webid}
	}
	switch r.URL.Query().Get("strategy") {
	case "solid-no-ldp":
		cfg.Strategy = ltqp.StrategySolidNoLDP
	case "ldp-only":
		cfg.Strategy = ltqp.StrategyLDPOnly
	case "cmatch":
		cfg.Strategy = ltqp.StrategyCMatch
	}
	engine := ltqp.New(cfg)

	var seeds []string
	for _, s := range splitFields(r.URL.Query().Get("seeds")) {
		seeds = append(seeds, s)
	}
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Minute)
	defer cancel()
	res, err := engine.QueryWithSeeds(ctx, r.URL.Query().Get("q"), seeds)
	if err != nil {
		emit("error", err.Error())
		return
	}

	// Follow this query's engine events so the browser can show traversal
	// activity (dereferences, queued links, retries) next to the results.
	sub := bus.SubscribeQuery(res.ID(), 1024)
	defer sub.Close()

	keepalive := time.NewTicker(obs.DefaultKeepAlive)
	defer keepalive.Stop()

	results := res.Results
	for results != nil {
		select {
		case <-r.Context().Done():
			// Browser went away: stop streaming immediately; cancelling
			// ctx aborts the traversal behind us.
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case ev := <-sub.C:
			if line := traversalLine(ev); line != "" {
				emit("traversal", line)
			}
		case b, ok := <-results:
			if !ok {
				results = nil
				continue
			}
			emit("result", ltqp.BindingJSON(b))
		}
	}
	// The engine emits query_finished before closing the result channel, so
	// the tail of the event stream is already buffered: drain it.
	sub.Close()
	for _, ev := range sub.Drain() {
		if line := traversalLine(ev); line != "" {
			emit("traversal", line)
		}
	}

	emit("waterfall", strconv.Quote(res.Metrics().Waterfall(50)))
	if err := res.Err(); err != nil {
		emit("error", err.Error())
		return
	}
	emit("done", "ok")
}

// traversalLine renders one engine event as a compact line for the UI's
// traversal pane; events that would only add noise return "".
func traversalLine(ev ltqp.Event) string {
	switch ev.Kind {
	case obs.EventDocumentDereferenced:
		if ev.Err != "" {
			return fmt.Sprintf("deref FAIL %s: %s", ev.URL, ev.Err)
		}
		return fmt.Sprintf("deref %s [%d] %d triples in %.1fms",
			ev.URL, ev.Status, ev.Triples, float64(ev.DurationUS)/1000)
	case obs.EventLinkQueued:
		return fmt.Sprintf("queue %s (%s, depth %d)", ev.URL, ev.Extractor, ev.Depth)
	case obs.EventRetryScheduled:
		return fmt.Sprintf("retry #%d %s in %.0fms: %s",
			ev.Attempt, ev.URL, float64(ev.DelayUS)/1000, ev.Err)
	case obs.EventQueryFinished:
		return fmt.Sprintf("finished: %d results in %.1fms", ev.Rows, float64(ev.DurationUS)/1000)
	}
	return ""
}

// splitFields splits on whitespace and commas.
func splitFields(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == ',' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

package rdf

import (
	"sort"
	"strings"
)

// Binding is a SPARQL solution mapping: a partial function from variable
// names to RDF terms. Bindings flow through the iterator pipeline; they are
// treated as immutable — operators extend them via Extend/Merge, which copy.
type Binding map[string]Term

// NewBinding returns an empty binding.
func NewBinding() Binding { return Binding{} }

// Get returns the term bound to the variable name, if any.
func (b Binding) Get(name string) (Term, bool) {
	t, ok := b[name]
	return t, ok
}

// Has reports whether the variable is bound.
func (b Binding) Has(name string) bool {
	_, ok := b[name]
	return ok
}

// Len returns the number of bound variables.
func (b Binding) Len() int { return len(b) }

// Copy returns an independent copy of the binding.
func (b Binding) Copy() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Extend returns a copy of b with name bound to t. If name is already bound
// to a different term it returns (nil, false): the solutions are
// incompatible.
func (b Binding) Extend(name string, t Term) (Binding, bool) {
	if old, ok := b[name]; ok {
		if old == t {
			return b, true
		}
		return nil, false
	}
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	c[name] = t
	return c, true
}

// Merge returns the union of two bindings if they are compatible (agree on
// all shared variables), per the SPARQL join semantics.
func (b Binding) Merge(o Binding) (Binding, bool) {
	// Iterate over the smaller map.
	small, large := b, o
	if len(small) > len(large) {
		small, large = large, small
	}
	for k, v := range small {
		if w, ok := large[k]; ok && w != v {
			return nil, false
		}
	}
	c := make(Binding, len(b)+len(o))
	for k, v := range large {
		c[k] = v
	}
	for k, v := range small {
		c[k] = v
	}
	return c, true
}

// Compatible reports whether the two bindings agree on all shared variables.
func (b Binding) Compatible(o Binding) bool {
	small, large := b, o
	if len(small) > len(large) {
		small, large = large, small
	}
	for k, v := range small {
		if w, ok := large[k]; ok && w != v {
			return false
		}
	}
	return true
}

// MatchPattern attempts to unify the pattern with the ground triple under
// binding b, returning the extended binding. Pattern positions that are
// constants must equal the data; variable positions extend the binding.
func (b Binding) MatchPattern(pattern, data Triple) (Binding, bool) {
	out := b
	pos := [3][2]Term{{pattern.S, data.S}, {pattern.P, data.P}, {pattern.O, data.O}}
	for _, pd := range pos {
		pat, dat := pd[0], pd[1]
		if pat.Kind == TermVar {
			var ok bool
			out, ok = out.Extend(pat.Value, dat)
			if !ok {
				return nil, false
			}
		} else if pat != dat {
			return nil, false
		}
	}
	return out, true
}

// Key returns a canonical string key for the binding restricted to the given
// variables (in the given order), used by DISTINCT and grouping. Unbound
// variables contribute a fixed sentinel.
func (b Binding) Key(vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		if t, ok := b[v]; ok {
			sb.WriteString(t.String())
		} else {
			sb.WriteString("UNDEF")
		}
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// Project returns a copy of b restricted to the given variables.
func (b Binding) Project(vars []string) Binding {
	c := make(Binding, len(vars))
	for _, v := range vars {
		if t, ok := b[v]; ok {
			c[v] = t
		}
	}
	return c
}

// Vars returns the bound variable names in sorted order. Provenance
// pseudo-variables (see prov.go) are not variables and are excluded.
func (b Binding) Vars() []string {
	vars := make([]string, 0, len(b))
	for k := range b {
		if IsProvVar(k) {
			continue
		}
		vars = append(vars, k)
	}
	sort.Strings(vars)
	return vars
}

// String renders the binding like {?x -> <iri>, ?y -> "lit"} with variables
// sorted, for stable test output.
func (b Binding) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range b.Vars() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('?')
		sb.WriteString(v)
		sb.WriteString(" -> ")
		sb.WriteString(b[v].String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// Equal reports whether two bindings bind exactly the same variables to the
// same terms.
func (b Binding) Equal(o Binding) bool {
	if len(b) != len(o) {
		return false
	}
	for k, v := range b {
		if w, ok := o[k]; !ok || w != v {
			return false
		}
	}
	return true
}

package sparql

import (
	"strings"
	"testing"

	"ltqp/internal/rdf"
)

func mustParseQuery(t *testing.T, q string) *Query {
	t.Helper()
	parsed, err := ParseQuery(q)
	if err != nil {
		t.Fatalf("ParseQuery error: %v\nquery:\n%s", err, q)
	}
	return parsed
}

// firstBGP digs the first BGP out of the WHERE clause.
func firstBGP(t *testing.T, q *Query) BGP {
	t.Helper()
	for _, e := range q.Where.Elements {
		if b, ok := e.(BGP); ok {
			return b
		}
	}
	t.Fatal("no BGP in WHERE")
	return BGP{}
}

func TestParseDiscover6_5(t *testing.T) {
	// The query shown in the paper's Fig. 2 / Fig. 3 (Discover 6.5):
	// forums containing messages by a given creator.
	q := mustParseQuery(t, `
PREFIX snvoc: <https://solidbench.linkeddatafragments.org/www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/>
SELECT DISTINCT ?forumId ?forumTitle WHERE {
  ?message snvoc:hasCreator <https://solidbench.linkeddatafragments.org/pods/00000006597069767117/profile/card#me>.
  ?forum snvoc:containerOf ?message;
    snvoc:id ?forumId;
    snvoc:title ?forumTitle.
}`)
	if q.Form != FormSelect || !q.Distinct {
		t.Error("expected SELECT DISTINCT")
	}
	if got := q.ProjectedVars(); len(got) != 2 || got[0] != "forumId" || got[1] != "forumTitle" {
		t.Errorf("projection = %v", got)
	}
	bgp := firstBGP(t, q)
	if len(bgp.Patterns) != 4 {
		t.Fatalf("patterns = %d, want 4", len(bgp.Patterns))
	}
	// First pattern has the pinned creator IRI object.
	tr, ok := bgp.Patterns[0].IsSimple()
	if !ok {
		t.Fatal("pattern 0 should be a simple predicate")
	}
	if tr.P != rdf.NewIRI(rdf.SNVocHasCreator) {
		t.Errorf("predicate = %v", tr.P)
	}
	if !strings.HasSuffix(tr.O.Value, "profile/card#me") {
		t.Errorf("object = %v", tr.O)
	}
	// Predicate-object list shares the ?forum subject.
	for i := 1; i < 4; i++ {
		tr, _ := bgp.Patterns[i].IsSimple()
		if tr.S != rdf.NewVar("forum") {
			t.Errorf("pattern %d subject = %v, want ?forum", i, tr.S)
		}
	}
	// Seed derivation finds the creator document.
	seeds := q.MentionedIRIs()
	if len(seeds) != 1 || !strings.HasSuffix(seeds[0], "/profile/card") {
		t.Errorf("MentionedIRIs = %v", seeds)
	}
}

func TestParseDiscover1_5(t *testing.T) {
	// The paper's Fig. 4 query (Discover 1.5): all posts by a person.
	q := mustParseQuery(t, `
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX snvoc: <https://solidbench.linkeddatafragments.org/www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/>
SELECT ?messageId ?messageCreationDate ?messageContent WHERE {
  ?message snvoc:hasCreator <https://solidbench.linkeddatafragments.org/pods/00000006597069767117/profile/card#me>;
    rdf:type snvoc:Post;
    snvoc:content ?messageContent;
    snvoc:creationDate ?messageCreationDate;
    snvoc:id ?messageId.
}`)
	bgp := firstBGP(t, q)
	if len(bgp.Patterns) != 5 {
		t.Fatalf("patterns = %d, want 5", len(bgp.Patterns))
	}
	tr, _ := bgp.Patterns[1].IsSimple()
	if tr.P.Value != rdf.RDFType || tr.O != rdf.NewIRI(rdf.SNVocPost) {
		t.Errorf("type pattern = %v", tr)
	}
}

func TestParseDiscover8_5WithPaths(t *testing.T) {
	// The paper's Fig. 5 query (Discover 8.5): posts by authors of messages
	// a person likes — uses an alternative property path and blank nodes.
	q := mustParseQuery(t, `
PREFIX snvoc: <https://solidbench.linkeddatafragments.org/www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/>
SELECT DISTINCT ?creator ?messageContent WHERE {
  <https://solidbench.linkeddatafragments.org/pods/00000006597069767117/profile/card#me> snvoc:likes _:g_0.
  _:g_0 (snvoc:hasPost|snvoc:hasComment) ?message.
  ?message snvoc:hasCreator ?creator.
  ?otherMessage snvoc:hasCreator ?creator;
    snvoc:content ?messageContent.
}`)
	bgp := firstBGP(t, q)
	if len(bgp.Patterns) != 5 {
		t.Fatalf("patterns = %d, want 5: %#v", len(bgp.Patterns), bgp.Patterns)
	}
	// Blank node labels become scoped blanks shared across patterns.
	tr0, _ := bgp.Patterns[0].IsSimple()
	if !tr0.O.IsBlank() {
		t.Errorf("likes object should be a blank node: %v", tr0.O)
	}
	if bgp.Patterns[1].S != tr0.O {
		t.Error("blank node should be shared between patterns")
	}
	alt, ok := bgp.Patterns[1].Path.(PathAlternative)
	if !ok {
		t.Fatalf("expected alternative path, got %T", bgp.Patterns[1].Path)
	}
	if len(alt.Parts) != 2 {
		t.Fatalf("alternative arity = %d", len(alt.Parts))
	}
	if p0 := alt.Parts[0].(PathIRI); p0.IRI != rdf.SNVocHasPost {
		t.Errorf("alt[0] = %v", p0)
	}
}

func TestParsePathForms(t *testing.T) {
	q := mustParseQuery(t, `
PREFIX ex: <http://example.org/>
SELECT ?x ?y WHERE {
  ?x ex:a/ex:b ?y.
  ?x ^ex:c ?z.
  ?x ex:d+ ?w.
  ?x ex:e* ?v.
  ?x ex:f? ?u.
  ?x (ex:g|^ex:h)/ex:i ?s.
  ?x !(ex:j|^ex:k) ?r.
  ?x a ex:Class.
}`)
	bgp := firstBGP(t, q)
	if len(bgp.Patterns) != 8 {
		t.Fatalf("patterns = %d", len(bgp.Patterns))
	}
	if _, ok := bgp.Patterns[0].Path.(PathSequence); !ok {
		t.Errorf("pattern 0: %T", bgp.Patterns[0].Path)
	}
	if _, ok := bgp.Patterns[1].Path.(PathInverse); !ok {
		t.Errorf("pattern 1: %T", bgp.Patterns[1].Path)
	}
	if _, ok := bgp.Patterns[2].Path.(PathOneOrMore); !ok {
		t.Errorf("pattern 2: %T", bgp.Patterns[2].Path)
	}
	if _, ok := bgp.Patterns[3].Path.(PathZeroOrMore); !ok {
		t.Errorf("pattern 3: %T", bgp.Patterns[3].Path)
	}
	if _, ok := bgp.Patterns[4].Path.(PathZeroOrOne); !ok {
		t.Errorf("pattern 4: %T", bgp.Patterns[4].Path)
	}
	seq, ok := bgp.Patterns[5].Path.(PathSequence)
	if !ok {
		t.Fatalf("pattern 5: %T", bgp.Patterns[5].Path)
	}
	if _, ok := seq.Parts[0].(PathAlternative); !ok {
		t.Errorf("pattern 5 part 0: %T", seq.Parts[0])
	}
	neg, ok := bgp.Patterns[6].Path.(PathNegated)
	if !ok || len(neg.Forward) != 1 || len(neg.Inverse) != 1 {
		t.Errorf("pattern 6: %#v", bgp.Patterns[6].Path)
	}
	if tr, ok := bgp.Patterns[7].IsSimple(); !ok || tr.P.Value != rdf.RDFType {
		t.Errorf("pattern 7 should be rdf:type")
	}
}

func TestParseOptionalUnionFilterBind(t *testing.T) {
	q := mustParseQuery(t, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p ?name ?nick WHERE {
  ?p foaf:name ?name.
  OPTIONAL { ?p foaf:nick ?nick. }
  { ?p a foaf:Person } UNION { ?p a foaf:Agent }
  FILTER(?name != "ignore" && STRLEN(?name) > 2)
  BIND(UCASE(?name) AS ?upper)
}`)
	var haveOpt, haveUnion, haveFilter, haveBind bool
	for _, e := range q.Where.Elements {
		switch x := e.(type) {
		case OptionalPattern:
			haveOpt = true
		case UnionPattern:
			haveUnion = true
		case FilterPattern:
			haveFilter = true
			if _, ok := x.Expr.(ExprBinary); !ok {
				t.Errorf("filter expr = %T", x.Expr)
			}
		case BindPattern:
			haveBind = true
			if x.Var != "upper" {
				t.Errorf("bind var = %s", x.Var)
			}
		}
	}
	if !haveOpt || !haveUnion || !haveFilter || !haveBind {
		t.Errorf("opt=%v union=%v filter=%v bind=%v", haveOpt, haveUnion, haveFilter, haveBind)
	}
}

func TestParseNestedUnion(t *testing.T) {
	q := mustParseQuery(t, `
PREFIX ex: <http://example.org/>
SELECT * WHERE {
  { ?x ex:a ?y } UNION { ?x ex:b ?y } UNION { ?x ex:c ?y }
}`)
	u, ok := q.Where.Elements[0].(UnionPattern)
	if !ok {
		t.Fatalf("got %T", q.Where.Elements[0])
	}
	if _, ok := u.Left.(UnionPattern); !ok {
		t.Errorf("left-associated union expected, left = %T", u.Left)
	}
}

func TestParseSolutionModifiers(t *testing.T) {
	q := mustParseQuery(t, `
PREFIX ex: <http://example.org/>
SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x ex:p ?y }
GROUP BY ?x
HAVING(COUNT(?y) > 2)
ORDER BY DESC(?n) ?x
LIMIT 10 OFFSET 5`)
	if len(q.GroupBy) != 1 || q.GroupBy[0].Var != "x" {
		t.Errorf("GroupBy = %#v", q.GroupBy)
	}
	if len(q.Having) != 1 {
		t.Errorf("Having = %#v", q.Having)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("OrderBy = %#v", q.OrderBy)
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Errorf("Limit/Offset = %d/%d", q.Limit, q.Offset)
	}
	if q.Projection[1].Expr == nil {
		t.Error("projection expression missing")
	}
	call, ok := q.Projection[1].Expr.(ExprCall)
	if !ok || call.Func != "COUNT" || !call.IsAggregate() {
		t.Errorf("aggregate = %#v", q.Projection[1].Expr)
	}
}

func TestParseValuesBlocks(t *testing.T) {
	q := mustParseQuery(t, `
PREFIX ex: <http://example.org/>
SELECT * WHERE {
  VALUES ?x { ex:a ex:b }
  VALUES (?y ?z) { (1 "one") (UNDEF "two") }
  ?x ex:p ?y.
}`)
	var blocks []ValuesPattern
	for _, e := range q.Where.Elements {
		if v, ok := e.(ValuesPattern); ok {
			blocks = append(blocks, v)
		}
	}
	if len(blocks) != 2 {
		t.Fatalf("values blocks = %d", len(blocks))
	}
	if len(blocks[0].Rows) != 2 || blocks[0].Rows[0]["x"] != rdf.NewIRI("http://example.org/a") {
		t.Errorf("block 0 = %#v", blocks[0])
	}
	if blocks[1].Rows[1].Has("y") {
		t.Error("UNDEF cell should be unbound")
	}
	if blocks[1].Rows[1]["z"] != rdf.NewLiteral("two") {
		t.Errorf("row 1 z = %v", blocks[1].Rows[1]["z"])
	}
}

func TestParseTrailingValues(t *testing.T) {
	q := mustParseQuery(t, `
SELECT ?x WHERE { ?x ?p ?o } VALUES ?x { <http://a> }`)
	if q.Values == nil || len(q.Values.Rows) != 1 {
		t.Fatalf("trailing VALUES = %#v", q.Values)
	}
}

func TestParseSubSelect(t *testing.T) {
	q := mustParseQuery(t, `
PREFIX ex: <http://example.org/>
SELECT ?x ?cnt WHERE {
  ?x a ex:Thing.
  { SELECT ?x (COUNT(*) AS ?cnt) WHERE { ?x ex:p ?y } GROUP BY ?x }
}`)
	var sub *SubSelect
	for _, e := range q.Where.Elements {
		if s, ok := e.(SubSelect); ok {
			sub = &s
		}
	}
	if sub == nil {
		t.Fatal("no subselect found")
	}
	if len(sub.Query.GroupBy) != 1 {
		t.Errorf("subselect GroupBy = %#v", sub.Query.GroupBy)
	}
	if !sub.Query.Projection[1].Expr.(ExprCall).Star {
		t.Error("COUNT(*) Star flag missing")
	}
}

func TestParseAskConstructDescribe(t *testing.T) {
	ask := mustParseQuery(t, `ASK { ?x ?p ?o }`)
	if ask.Form != FormAsk {
		t.Error("ASK form")
	}
	c := mustParseQuery(t, `
PREFIX ex: <http://example.org/>
CONSTRUCT { ?x ex:q ?y } WHERE { ?x ex:p ?y }`)
	if c.Form != FormConstruct || len(c.Template) != 1 {
		t.Errorf("construct = %#v", c.Template)
	}
	cw := mustParseQuery(t, `PREFIX ex: <http://example.org/>
CONSTRUCT WHERE { ?x ex:p ?y }`)
	if len(cw.Template) != 1 {
		t.Error("CONSTRUCT WHERE shorthand failed")
	}
	d := mustParseQuery(t, `DESCRIBE <http://example.org/a>`)
	if d.Form != FormDescribe || len(d.Describe) != 1 {
		t.Errorf("describe = %#v", d.Describe)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	q := mustParseQuery(t, `SELECT ?x WHERE { ?x ?p ?o FILTER(1 + 2 * 3 = 7 || false) }`)
	var filter FilterPattern
	for _, e := range q.Where.Elements {
		if f, ok := e.(FilterPattern); ok {
			filter = f
		}
	}
	or, ok := filter.Expr.(ExprBinary)
	if !ok || or.Op != "||" {
		t.Fatalf("top = %#v", filter.Expr)
	}
	eq := or.L.(ExprBinary)
	if eq.Op != "=" {
		t.Fatalf("eq = %#v", eq)
	}
	add := eq.L.(ExprBinary)
	if add.Op != "+" {
		t.Fatalf("add = %#v", add)
	}
	if mul := add.R.(ExprBinary); mul.Op != "*" {
		t.Errorf("mul = %#v", mul)
	}
}

func TestParseBuiltinsAndCasts(t *testing.T) {
	q := mustParseQuery(t, `
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?x WHERE {
  ?x ?p ?y
  FILTER(REGEX(STR(?y), "^a.*b$", "i"))
  FILTER(xsd:integer(?y) >= 5)
  FILTER(?y IN (1, 2, 3))
  FILTER(NOT EXISTS { ?x a ?c })
  FILTER(IF(BOUND(?y), CONTAINS(LCASE(STR(?y)), "x"), COALESCE(?y, "d") = "d"))
}`)
	nfilters := 0
	for _, e := range q.Where.Elements {
		if _, ok := e.(FilterPattern); ok {
			nfilters++
		}
	}
	if nfilters != 5 {
		t.Errorf("filters = %d, want 5", nfilters)
	}
}

func TestParseGroupConcatSeparator(t *testing.T) {
	q := mustParseQuery(t, `
SELECT (GROUP_CONCAT(DISTINCT ?n; SEPARATOR=", ") AS ?names) WHERE { ?x ?p ?n }`)
	call := q.Projection[0].Expr.(ExprCall)
	if !call.Distinct || call.Sep != ", " {
		t.Errorf("group_concat = %#v", call)
	}
}

func TestParseBlankNodePropertyListInPattern(t *testing.T) {
	q := mustParseQuery(t, `
PREFIX ex: <http://example.org/>
SELECT ?n WHERE {
  ?x ex:knows [ ex:name ?n ; ex:age 30 ].
  ( ?a ?b ) ex:coords ?pt.
}`)
	bgps := 0
	total := 0
	for _, e := range q.Where.Elements {
		if b, ok := e.(BGP); ok {
			bgps++
			total += len(b.Patterns)
		}
	}
	// knows + name + age + 4 list triples + coords = 8
	if total != 8 {
		t.Errorf("total patterns = %d, want 8", total)
	}
}

func TestParseVariablePredicate(t *testing.T) {
	q := mustParseQuery(t, `SELECT * WHERE { ?s ?p ?o }`)
	bgp := firstBGP(t, q)
	pv, ok := bgp.Patterns[0].Path.(PathVar)
	if !ok || pv.Name != "p" {
		t.Fatalf("path = %#v", bgp.Patterns[0].Path)
	}
	if got := q.ProjectedVars(); len(got) != 3 {
		t.Errorf("SELECT * vars = %v", got)
	}
}

func TestParseGraphClause(t *testing.T) {
	q := mustParseQuery(t, `SELECT * WHERE { GRAPH ?g { ?s ?p ?o } }`)
	g, ok := q.Where.Elements[0].(GraphGraphPattern)
	if !ok || !g.Graph.IsVar() {
		t.Fatalf("graph = %#v", q.Where.Elements[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, query string }{
		{"empty", ``},
		{"bad keyword", `FROB ?x WHERE {}`},
		{"no projection", `SELECT WHERE { ?x ?p ?o }`},
		{"unclosed group", `SELECT ?x WHERE { ?x ?p ?o`},
		{"undeclared prefix", `SELECT ?x WHERE { ?x ex:p ?o }`},
		{"service", `SELECT ?x WHERE { SERVICE <http://e> { ?x ?p ?o } }`},
		{"trailing garbage", `SELECT ?x WHERE { ?x ?p ?o } nonsense`},
		{"bad filter", `SELECT ?x WHERE { ?x ?p ?o FILTER() }`},
		{"values arity", `SELECT * WHERE { VALUES (?x { (1) } }`},
		{"as missing var", `SELECT (1 AS 2) WHERE {}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseQuery(c.query); err == nil {
				t.Errorf("expected parse error for:\n%s", c.query)
			}
		})
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q := mustParseQuery(t, `select distinct ?x where { ?x ?p ?o } limit 3`)
	if !q.Distinct || q.Limit != 3 {
		t.Error("lowercase keywords should parse")
	}
}

func TestHasAggregates(t *testing.T) {
	q := mustParseQuery(t, `SELECT (SUM(?x) + 1 AS ?s) WHERE { ?a ?b ?x }`)
	if !HasAggregates(q.Projection[0].Expr) {
		t.Error("aggregate not detected")
	}
	q2 := mustParseQuery(t, `SELECT (STRLEN(?x) AS ?s) WHERE { ?a ?b ?x }`)
	if HasAggregates(q2.Projection[0].Expr) {
		t.Error("false aggregate detection")
	}
}

func TestMentionedIRIsSkipsVocabulary(t *testing.T) {
	// Predicates must not become seeds; subjects/objects must.
	q := mustParseQuery(t, `
PREFIX snvoc: <https://solidbench.linkeddatafragments.org/www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/>
SELECT ?m WHERE {
  ?m snvoc:hasCreator <https://pods.example/u1/profile/card#me>.
  ?m a snvoc:Post.
}`)
	seeds := q.MentionedIRIs()
	// The class IRI snvoc:Post (object of rdf:type) is vocabulary and must
	// not become a seed; only the WebID document qualifies.
	if len(seeds) != 1 || seeds[0] != "https://pods.example/u1/profile/card" {
		t.Errorf("seeds = %v", seeds)
	}
}

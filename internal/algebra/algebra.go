// Package algebra defines the logical query algebra of the engine and the
// translation from the parsed SPARQL AST into algebra operator trees, per
// the SPARQL 1.1 semantics (group graph patterns translate to joins and
// left-joins, filters scope over their group, property paths are rewritten
// into joins/unions where possible).
//
// The algebra deliberately distinguishes monotonic operators — which the
// executor evaluates incrementally while traversal still adds triples — from
// blocking operators (ordering, grouping, MINUS, bare-row emission of
// left-joins) that gate on source completion. This mirrors the paper's
// "pipelined implementations of all monotonic SPARQL operators".
package algebra

import (
	"fmt"
	"sort"

	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

// Operator is a node of the logical plan.
type Operator interface {
	isOperator()
	// Vars returns the set of variables this operator may bind.
	Vars() []string
}

// Unit produces exactly one empty binding; it is the join identity.
type Unit struct{}

// Pattern is a single triple pattern scan against the growing source.
// When Graph is non-zero, the pattern additionally constrains (constant)
// or binds (variable) the *document* each matching triple was dereferenced
// from — the traversal engine's provenance semantics for GRAPH clauses.
type Pattern struct {
	Triple rdf.Triple
	Graph  rdf.Term
}

// PathPattern is a property-path pattern that could not be rewritten into
// joins/unions (transitive closures and negated sets). It is evaluated by a
// dedicated physical operator.
type PathPattern struct {
	S, O rdf.Term
	Path sparql.Path
}

// Join is the natural join of two operand streams (symmetric, incremental).
type Join struct{ Left, Right Operator }

// LeftJoin is SPARQL OPTIONAL: all left solutions, extended by compatible
// right solutions satisfying the filters when any exist.
type LeftJoin struct {
	Left, Right Operator
	Filters     []sparql.Expression
}

// Union is the SPARQL UNION of two streams.
type Union struct{ Left, Right Operator }

// Minus is SPARQL MINUS (blocking).
type Minus struct{ Left, Right Operator }

// Filter keeps solutions whose expression evaluates to a true effective
// boolean value.
type Filter struct {
	Input Operator
	Expr  sparql.Expression
}

// Extend is BIND: evaluates an expression and binds it to a fresh variable.
type Extend struct {
	Input Operator
	Var   string
	Expr  sparql.Expression
}

// Values produces an inline table of solutions.
type Values struct {
	Variables []string
	Rows      []rdf.Binding
}

// Project restricts solutions to the given variables, evaluating expression
// projections ((expr AS ?v)) first.
type Project struct {
	Input Operator
	Items []sparql.SelectItem // empty means keep all (SELECT *)
}

// Distinct removes duplicate solutions.
type Distinct struct{ Input Operator }

// Reduced permits (but does not require) duplicate removal; the executor
// drops consecutive duplicates.
type Reduced struct{ Input Operator }

// OrderBy sorts solutions (blocking).
type OrderBy struct {
	Input Operator
	Conds []sparql.OrderCondition
}

// Slice applies OFFSET/LIMIT. Limit < 0 means unlimited.
type Slice struct {
	Input         Operator
	Offset, Limit int
}

// Group evaluates GROUP BY + aggregate projections + HAVING (blocking).
type Group struct {
	Input  Operator
	By     []sparql.GroupCondition
	Items  []sparql.SelectItem // projection incl. aggregate expressions
	Having []sparql.Expression
}

func (Unit) isOperator()        {}
func (Pattern) isOperator()     {}
func (PathPattern) isOperator() {}
func (Join) isOperator()        {}
func (LeftJoin) isOperator()    {}
func (Union) isOperator()       {}
func (Minus) isOperator()       {}
func (Filter) isOperator()      {}
func (Extend) isOperator()      {}
func (Values) isOperator()      {}
func (Project) isOperator()     {}
func (Distinct) isOperator()    {}
func (Reduced) isOperator()     {}
func (OrderBy) isOperator()     {}
func (Slice) isOperator()       {}
func (Group) isOperator()       {}

// sortedVars converts a set to a sorted slice.
func sortedVars(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Vars implementations.

// Vars returns no variables for Unit.
func (Unit) Vars() []string { return nil }

// Vars returns the variables of the triple pattern, including a variable
// graph term.
func (p Pattern) Vars() []string {
	vars := p.Triple.Vars()
	if p.Graph.IsVar() {
		seen := false
		for _, v := range vars {
			if v == p.Graph.Value {
				seen = true
			}
		}
		if !seen {
			vars = append(vars, p.Graph.Value)
		}
	}
	return vars
}

// Vars returns the endpoint variables of the path pattern.
func (p PathPattern) Vars() []string {
	set := map[string]bool{}
	if p.S.IsVar() {
		set[p.S.Value] = true
	}
	if p.O.IsVar() {
		set[p.O.Value] = true
	}
	return sortedVars(set)
}

func union2(a, b Operator) []string {
	set := map[string]bool{}
	for _, v := range a.Vars() {
		set[v] = true
	}
	for _, v := range b.Vars() {
		set[v] = true
	}
	return sortedVars(set)
}

// Vars returns the union of both operand variable sets.
func (j Join) Vars() []string { return union2(j.Left, j.Right) }

// Vars returns the union of both operand variable sets.
func (j LeftJoin) Vars() []string { return union2(j.Left, j.Right) }

// Vars returns the union of both operand variable sets.
func (u Union) Vars() []string { return union2(u.Left, u.Right) }

// Vars returns the left operand's variables (MINUS never adds bindings).
func (m Minus) Vars() []string { return m.Left.Vars() }

// Vars returns the input's variables.
func (f Filter) Vars() []string { return f.Input.Vars() }

// Vars returns the input's variables plus the bound variable.
func (e Extend) Vars() []string {
	set := map[string]bool{e.Var: true}
	for _, v := range e.Input.Vars() {
		set[v] = true
	}
	return sortedVars(set)
}

// Vars returns the table's variables.
func (v Values) Vars() []string { return append([]string(nil), v.Variables...) }

// Vars returns the projected variables.
func (p Project) Vars() []string {
	if len(p.Items) == 0 {
		return p.Input.Vars()
	}
	out := make([]string, len(p.Items))
	for i, it := range p.Items {
		out[i] = it.Var
	}
	return out
}

// Vars returns the input's variables.
func (d Distinct) Vars() []string { return d.Input.Vars() }

// Vars returns the input's variables.
func (r Reduced) Vars() []string { return r.Input.Vars() }

// Vars returns the input's variables.
func (o OrderBy) Vars() []string { return o.Input.Vars() }

// Vars returns the input's variables.
func (s Slice) Vars() []string { return s.Input.Vars() }

// Vars returns group keys plus aggregate output variables.
func (g Group) Vars() []string {
	set := map[string]bool{}
	for _, c := range g.By {
		if c.Var != "" {
			set[c.Var] = true
		}
	}
	for _, it := range g.Items {
		set[it.Var] = true
	}
	return sortedVars(set)
}

// SharedVars returns the variables common to both operators, sorted.
func SharedVars(a, b Operator) []string {
	set := map[string]bool{}
	for _, v := range a.Vars() {
		set[v] = true
	}
	var out []string
	for _, v := range b.Vars() {
		if set[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// String renders a compact plan tree for debugging and plan tests.
func String(op Operator) string {
	switch x := op.(type) {
	case Unit:
		return "unit"
	case Pattern:
		if !x.Graph.IsZero() {
			return fmt.Sprintf("pattern(%s @ %s)", x.Triple, x.Graph)
		}
		return fmt.Sprintf("pattern(%s)", x.Triple)
	case PathPattern:
		return fmt.Sprintf("path(%s ~ %s)", x.S, x.O)
	case Join:
		return fmt.Sprintf("join(%s, %s)", String(x.Left), String(x.Right))
	case LeftJoin:
		return fmt.Sprintf("leftjoin(%s, %s)", String(x.Left), String(x.Right))
	case Union:
		return fmt.Sprintf("union(%s, %s)", String(x.Left), String(x.Right))
	case Minus:
		return fmt.Sprintf("minus(%s, %s)", String(x.Left), String(x.Right))
	case Filter:
		return fmt.Sprintf("filter(%s)", String(x.Input))
	case Extend:
		return fmt.Sprintf("extend(?%s, %s)", x.Var, String(x.Input))
	case Values:
		return fmt.Sprintf("values(%d rows)", len(x.Rows))
	case Project:
		return fmt.Sprintf("project(%v, %s)", x.Vars(), String(x.Input))
	case Distinct:
		return fmt.Sprintf("distinct(%s)", String(x.Input))
	case Reduced:
		return fmt.Sprintf("reduced(%s)", String(x.Input))
	case OrderBy:
		return fmt.Sprintf("orderby(%s)", String(x.Input))
	case Slice:
		return fmt.Sprintf("slice(%d, %d, %s)", x.Offset, x.Limit, String(x.Input))
	case Group:
		return fmt.Sprintf("group(%s)", String(x.Input))
	default:
		return fmt.Sprintf("%T", op)
	}
}

package core

import (
	"fmt"
	"sync"
	"time"

	"ltqp/internal/linkqueue"
	"ltqp/internal/metrics"
)

// Limit kinds, as they appear in TraversalLimitError, degradation reports,
// limit_tripped events and the ltqp_traversal_limit_trips_total metric.
const (
	// LimitDocsPerOrigin fires when an origin has served its full
	// document budget and traversal tries to fetch another from it.
	LimitDocsPerOrigin = "max-docs-per-origin"
	// LimitBytesPerOrigin fires when an origin's served bytes crossed its
	// budget; further fetches from it are refused.
	LimitBytesPerOrigin = "max-bytes-per-origin"
	// LimitScope fires when a discovered link leaves the traversal
	// allowlist (the subweb the query is scoped to).
	LimitScope = "scope"
	// LimitFanout fires when one document proposes more links than the
	// per-document fanout cap — the link-bomb signature.
	LimitFanout = "fanout"
	// LimitQueueCap fires when the queue has accepted the maximum total
	// number of distinct links for one traversal.
	LimitQueueCap = "queue-cap"
	// LimitDocBytes fires when a response body exceeds the per-document
	// byte cap (an oversized-document attack, surfaced via deref).
	LimitDocBytes = "doc-bytes"
	// LimitSlowBody fires when a response body trickles in slower than
	// the body timeout allows (a slow-loris pod, surfaced via deref).
	LimitSlowBody = "slow-body"
)

// Limits configures the traversal defenses — the budgets and scopes that
// keep an unguarded open-web traversal from being steered into link bombs,
// loops, hostile origins, or resource exhaustion (the attack classes of the
// LTQP security-vulnerabilities analysis). The zero value disables every
// defense (the closed simulated environment needs none).
type Limits struct {
	// MaxDocsPerOrigin caps successful dereferences per origin
	// (scheme://host, default ports normalized); 0 = unbounded.
	MaxDocsPerOrigin int
	// MaxBytesPerOrigin caps body bytes read per origin; 0 = unbounded.
	MaxBytesPerOrigin int64
	// MaxInFlightPerOrigin bounds concurrent dereferences per origin, so
	// one slow (or slow-loris) host cannot absorb the whole global
	// concurrency budget; 0 = no per-origin bound.
	MaxInFlightPerOrigin int
	// MaxLinksPerDoc caps how many links one document may contribute to
	// the queue; the rest are pruned (link-bomb containment); 0 = unbounded.
	MaxLinksPerDoc int
	// MaxQueuedLinks caps the total distinct links one traversal will
	// ever accept; 0 = unbounded.
	MaxQueuedLinks int
	// Allowlist restricts traversal to URLs matching any of these
	// prefixes (compared on normalized URLs). Empty means unrestricted
	// unless ScopeToSeeds is set. Seeds are always in scope.
	Allowlist []string
	// ScopeToSeeds restricts traversal to the origins of the seed URLs —
	// the "subweb of the seeds" scope a pod owner would declare.
	ScopeToSeeds bool
	// MaxDocBytes caps one response body's size in bytes (0 = the
	// dereferencer's 64 MiB default).
	MaxDocBytes int64
	// BodyTimeout bounds how long one response body may take to arrive in
	// full; a slower (slow-loris) transfer is aborted. 0 = no bound beyond
	// the per-attempt retry timeout.
	BodyTimeout time.Duration
}

// Enabled reports whether any defense is configured.
func (l Limits) Enabled() bool {
	return l.MaxDocsPerOrigin > 0 || l.MaxBytesPerOrigin > 0 ||
		l.MaxInFlightPerOrigin > 0 || l.MaxLinksPerDoc > 0 ||
		l.MaxQueuedLinks > 0 || len(l.Allowlist) > 0 || l.ScopeToSeeds ||
		l.MaxDocBytes > 0 || l.BodyTimeout > 0
}

// TraversalLimitError is the typed failure of a non-lenient traversal that
// hit a defense limit. Lenient traversals never fail on limits — they
// contain the trip and report it through Degradation().LimitTrips.
type TraversalLimitError struct {
	Trip metrics.LimitTrip
}

// Error implements error.
func (e *TraversalLimitError) Error() string {
	return fmt.Sprintf("core: traversal limit %s", e.Trip)
}

// limitGuard enforces Limits for one traversal. It tracks per-origin
// document/byte/in-flight accounting, evaluates the scope allowlist, and
// deduplicates trip reporting (each (kind, subject) pair is reported once,
// or every link out of a bombed document would flood the event stream).
type limitGuard struct {
	limits      Limits
	seedOrigins map[string]bool
	allow       []string // normalized allowlist prefixes

	mu       sync.Mutex
	docs     map[string]int
	bytes    map[string]int64
	inflight map[string]chan struct{}
	reported map[string]bool
	trips    []metrics.LimitTrip
}

// newLimitGuard builds the guard; nil when no defense is configured, and
// every method no-ops on a nil receiver.
func newLimitGuard(limits Limits, seeds []string) *limitGuard {
	if !limits.Enabled() {
		return nil
	}
	g := &limitGuard{
		limits:      limits,
		seedOrigins: map[string]bool{},
		docs:        map[string]int{},
		bytes:       map[string]int64{},
		inflight:    map[string]chan struct{}{},
		reported:    map[string]bool{},
	}
	for _, s := range seeds {
		g.seedOrigins[linkqueue.Origin(s)] = true
	}
	for _, p := range limits.Allowlist {
		g.allow = append(g.allow, linkqueue.Normalize(p))
	}
	return g
}

// inScope reports whether a link URL is inside the traversal allowlist.
// With no allowlist and no seed scoping, everything is in scope.
func (g *limitGuard) inScope(url string) bool {
	if g == nil || (len(g.allow) == 0 && !g.limits.ScopeToSeeds) {
		return true
	}
	n := linkqueue.Normalize(url)
	if g.limits.ScopeToSeeds && g.seedOrigins[linkqueue.Origin(url)] {
		return true
	}
	for _, p := range g.allow {
		if len(n) >= len(p) && n[:len(p)] == p {
			return true
		}
	}
	return false
}

// record registers a trip, deduplicated on (kind, subject): the first
// occurrence is returned for reporting, repeats return nil.
func (g *limitGuard) record(kind, origin, url string, limit, observed int64) *metrics.LimitTrip {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	key := kind + "\x00" + origin
	if origin == "" {
		key = kind + "\x00" + url
	}
	if g.reported[key] {
		return nil
	}
	g.reported[key] = true
	t := metrics.LimitTrip{Kind: kind, Origin: origin, URL: url, Limit: limit, Observed: observed}
	g.trips = append(g.trips, t)
	return &t
}

// admitFetch checks an origin's document and byte budgets before a fetch is
// dispatched. Admitted fetches are counted immediately (so concurrent
// workers cannot jointly overshoot); a refusal returns the trip to report
// (nil if this origin's refusal was already reported).
func (g *limitGuard) admitFetch(url string) (ok bool, trip *metrics.LimitTrip) {
	if g == nil {
		return true, nil
	}
	origin := linkqueue.Origin(url)
	g.mu.Lock()
	if g.limits.MaxDocsPerOrigin > 0 && g.docs[origin] >= g.limits.MaxDocsPerOrigin {
		observed := int64(g.docs[origin] + 1)
		g.mu.Unlock()
		return false, g.record(LimitDocsPerOrigin, origin, url, int64(g.limits.MaxDocsPerOrigin), observed)
	}
	if g.limits.MaxBytesPerOrigin > 0 && g.bytes[origin] >= g.limits.MaxBytesPerOrigin {
		observed := g.bytes[origin]
		g.mu.Unlock()
		return false, g.record(LimitBytesPerOrigin, origin, url, g.limits.MaxBytesPerOrigin, observed)
	}
	g.docs[origin]++
	g.mu.Unlock()
	return true, nil
}

// addBytes accounts a fetched document's body against its origin budget.
func (g *limitGuard) addBytes(url string, n int64) {
	if g == nil || g.limits.MaxBytesPerOrigin <= 0 {
		return
	}
	origin := linkqueue.Origin(url)
	g.mu.Lock()
	g.bytes[origin] += n
	g.mu.Unlock()
}

// originSlot returns the in-flight semaphore of a URL's origin (nil when
// per-origin concurrency is unbounded).
func (g *limitGuard) originSlot(url string) chan struct{} {
	if g == nil || g.limits.MaxInFlightPerOrigin <= 0 {
		return nil
	}
	origin := linkqueue.Origin(url)
	g.mu.Lock()
	defer g.mu.Unlock()
	sem, ok := g.inflight[origin]
	if !ok {
		sem = make(chan struct{}, g.limits.MaxInFlightPerOrigin)
		g.inflight[origin] = sem
	}
	return sem
}

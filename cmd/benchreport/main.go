// Command benchreport runs the full experiment suite (DESIGN.md E1–E10)
// against a freshly built simulated Solid environment and prints the
// paper-vs-measured tables recorded in EXPERIMENTS.md.
//
//	benchreport --persons 16 --latency 2ms
//
// With --parse-bench it instead converts `go test -bench` output on stdin
// into a JSON benchmark report on stdout (the BENCH_<date>.json files of
// `make bench` that seed the performance trajectory):
//
//	go test -bench . -benchmem ./internal/store | benchreport --parse-bench
//
// With --replay-journal it analyzes an engine event journal (written by
// `ltqp-sparql --journal out.jsonl`) offline, reconstructing each query's
// timeline from the recorded timestamps: per-phase wall clock, time to
// first result, the dereference concurrency profile, and the slowest
// documents:
//
//	benchreport --replay-journal out.jsonl [--top 10]
//
// With --trace it renders critical-path latency attribution — the chains of
// dependent dereferences that gated time-to-first-result and total latency —
// from either a kept-trace export (/debug/traces/<id> JSON) or a journal:
//
//	benchreport --trace trace.json
//	benchreport --trace out.jsonl --top 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ltqp/internal/experiments"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

func main() {
	var (
		persons    = flag.Int("persons", 16, "pods in the simulated environment")
		seed       = flag.Int64("seed", 42, "generator seed")
		latency    = flag.Duration("latency", 2*time.Millisecond, "simulated network latency")
		waterfall  = flag.Bool("waterfalls", false, "print the full E3/E4 waterfalls")
		parseBench = flag.Bool("parse-bench", false, "parse `go test -bench` output from stdin into JSON on stdout")
		replay     = flag.String("replay-journal", "", "analyze an engine event journal (JSONL) offline and print the reconstructed timeline")
		traceIn    = flag.String("trace", "", "render critical-path latency attribution from a trace export (/debug/traces/<id> JSON) or an engine journal (JSONL); - reads stdin")
		topN       = flag.Int("top", 10, "with --replay-journal/--trace, how many slowest entries to report per query / queries to report")
		loadFile   = flag.String("loadgen", "", "render a cmd/loadgen artifact (bench/BENCH_*_loadgen.json) as a table")
	)
	flag.Parse()

	if *loadFile != "" {
		if err := renderLoadReport(*loadFile, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}

	if *parseBench {
		if err := writeBenchJSON(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if *replay != "" {
		if err := replayJournal(*replay, *topN, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if *traceIn != "" {
		if err := renderTraces(*traceIn, *topN, 60, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}

	cfg := solidbench.DefaultConfig()
	cfg.Persons = *persons
	cfg.Seed = *seed
	fmt.Fprintf(os.Stderr, "building environment (%d pods)...\n", cfg.Persons)
	env := simenv.New(cfg)
	defer env.Close()
	env.PodServer.Latency = *latency

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()

	fail := func(exp string, err error) {
		fmt.Fprintf(os.Stderr, "benchreport: %s: %v\n", exp, err)
		os.Exit(1)
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }

	// E5 first: the environment itself.
	shape := experiments.E5DatasetStats(env)
	fmt.Printf("## E5 — Dataset shape (paper §4.2: 1,531 pods / 158,233 files / 3,556,159 triples)\n\n")
	fmt.Printf("| metric | paper (per pod) | measured (per pod) | this run (absolute) |\n|---|---|---|---|\n")
	fmt.Printf("| RDF files | %.1f | %.1f | %d |\n", shape.PaperFilesPerPod, shape.FilesPerPod, shape.Files)
	fmt.Printf("| triples   | %.1f | %.1f | %d |\n\n", shape.PaperTriplesPP, shape.TriplesPerPod, shape.Triples)

	// E7: the catalog.
	n, err := experiments.E7Catalog(env)
	if err != nil {
		fail("E7", err)
	}
	fmt.Printf("## E7 — Default query catalog\n\npaper: 37 default queries; measured: %d queries, all parse and plan\n\n", n)

	// E1/E2: Discover 6.5 end to end (Figs. 2–3).
	run, err := experiments.E1CLIDiscover(ctx, env)
	if err != nil {
		fail("E1", err)
	}
	fmt.Printf("## E1/E2 — Discover 6.5 (paper Fig. 2/3: 27 results in 3.8 s on the hosted demo)\n\n")
	fmt.Printf("| metric | measured |\n|---|---|\n")
	fmt.Printf("| results | %d |\n| total (ms) | %s |\n| first result (ms) | %s |\n| HTTP requests | %d |\n| pods touched | %d |\n\n",
		run.Results, ms(run.Total), ms(run.TTFR), run.Requests, run.PodsTouched)

	// E3: Fig. 4.
	run3, wf3, err := experiments.E3WaterfallSinglePod(ctx, env)
	if err != nil {
		fail("E3", err)
	}
	fmt.Printf("## E3 — Discover 1.5 waterfall (paper Fig. 4: single pod, dependent + parallel requests)\n\n")
	fmt.Printf("| metric | measured |\n|---|---|\n")
	fmt.Printf("| results | %d |\n| requests | %d |\n| max dependency depth | %d |\n| max parallel | %d |\n| pods touched | %d |\n\n",
		run3.Results, run3.Requests, run3.MaxDepth, run3.MaxParallel, run3.PodsTouched)
	if *waterfall {
		fmt.Println("```\n" + wf3 + "```")
	}

	// E4: Fig. 5.
	run4, wf4, err := experiments.E4WaterfallMultiPod(ctx, env)
	if err != nil {
		fail("E4", err)
	}
	fmt.Printf("## E4 — Discover 8.5 waterfall (paper Fig. 5: traversal across multiple pods)\n\n")
	fmt.Printf("| metric | measured |\n|---|---|\n")
	fmt.Printf("| results | %d |\n| requests | %d |\n| max dependency depth | %d |\n| max parallel | %d |\n| pods touched | %d |\n\n",
		run4.Results, run4.Requests, run4.MaxDepth, run4.MaxParallel, run4.PodsTouched)
	if *waterfall {
		fmt.Println("```\n" + wf4 + "```")
	}

	// E6: TTFR across the discover shapes.
	runs, err := experiments.E6TTFR(ctx, env)
	if err != nil {
		fail("E6", err)
	}
	fmt.Printf("## E6 — Time to first result (paper claim: first results < 1 s; non-complex queries in seconds)\n\n")
	fmt.Printf("| query | results | first result (ms) | total (ms) | requests |\n|---|---|---|---|---|\n")
	for _, r := range runs {
		ttfr := "-"
		if r.HasTTFR {
			ttfr = ms(r.TTFR)
		}
		fmt.Printf("| %s | %d | %s | %s | %d |\n", r.Query, r.Results, ttfr, ms(r.Total), r.Requests)
	}
	fmt.Println()

	// E8: extractor ablation.
	rows, err := experiments.E8ExtractorAblation(ctx, env, 1)
	if err != nil {
		fail("E8", err)
	}
	fmt.Printf("## E8 — Link extraction ablation on Discover 1.1 ([14] shape: Solid-aware beats blind traversal)\n\n")
	fmt.Printf("| strategy | results | requests | total (ms) |\n|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %d | %d | %s |\n", r.Strategy, r.Results, r.Requests, ms(r.Total))
	}
	fmt.Println()

	// E9: traversal vs oracle.
	cmp, err := experiments.E9Centralized(ctx, env, 1)
	if err != nil {
		fail("E9", err)
	}
	fmt.Printf("## E9 — Traversal vs centralized oracle on Discover 1.1\n\n")
	fmt.Printf("| system | results | prep | query (ms) |\n|---|---|---|---|\n")
	fmt.Printf("| link traversal (no index) | %d | none | %s |\n", cmp.Traversal.Results, ms(cmp.Traversal.Total))
	fmt.Printf("| centralized oracle | %d | ingest %d triples in %s ms | %s |\n\n",
		cmp.OracleCount, cmp.IngestedTrpl, ms(cmp.IngestTime), ms(cmp.OracleTime))

	// E10: authenticated querying.
	auth, err := experiments.E10Auth(ctx, 6, *seed)
	if err != nil {
		fail("E10", err)
	}
	fmt.Printf("## E10 — Authenticated querying (paper §3: query on behalf of the logged-in user)\n\n")
	fmt.Printf("| agent | results |\n|---|---|\n| anonymous | %d |\n| pod owner | %d |\n\n",
		auth.AnonResults, auth.AuthedResults)

	fmt.Println("all experiments completed.")
}

package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTrackerLifecycle(t *testing.T) {
	tr := NewQueryTracker(2)
	r1 := tr.Start(0, "SELECT 1", []string{"http://x/a"}, nil)
	r2 := tr.Start(0, "SELECT 2", nil, nil)
	if len(tr.InFlight()) != 2 {
		t.Fatalf("in-flight = %d", len(tr.InFlight()))
	}
	r1.AddResult()
	r1.AddResult()
	tr.Finish(r1, nil)
	tr.Finish(r2, errors.New("boom"))
	if len(tr.InFlight()) != 0 {
		t.Fatal("in-flight not drained")
	}
	recent := tr.Recent()
	if len(recent) != 2 || recent[0].ID != r2.ID {
		t.Fatalf("recent order wrong: %+v", recent)
	}
	if recent[0].Err() != "boom" || recent[1].Results() != 2 || !recent[1].Done() {
		t.Fatalf("outcomes wrong: err=%q results=%d", recent[0].Err(), recent[1].Results())
	}
	// Capacity bound: a third finished query evicts the oldest.
	r3 := tr.Start(0, "SELECT 3", nil, nil)
	tr.Finish(r3, nil)
	if got := len(tr.Recent()); got != 2 {
		t.Fatalf("recent = %d, want capacity 2", got)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *QueryTracker
	rec := tr.Start(0, "q", nil, nil)
	rec.AddResult()
	tr.Finish(rec, nil)
	if tr.InFlight() != nil || tr.Recent() != nil {
		t.Fatal("nil tracker must return nil slices")
	}
}

func TestExpositionEndpoints(t *testing.T) {
	o := NewObserver()
	o.Metrics.QueriesStarted.Inc()
	ctx, trace := NewTrace(context.Background(), "query", Str("query", "SELECT ?x WHERE {}"))
	_, sp := StartSpan(ctx, "deref", Str("url", "http://x/a"))
	sp.End()
	trace.End()
	rec := o.Tracker.Start(0, "SELECT ?x WHERE {}", []string{"http://x/a"}, trace)
	rec.AddResult()
	o.Tracker.Finish(rec, nil)

	mux := http.NewServeMux()
	o.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ct, body := get("/metrics")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics: %d %s", code, ct)
	}
	if !strings.Contains(body, "ltqp_queries_total 1") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	code, _, body = get("/healthz")
	if code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: %d %s", code, body)
	}

	code, ct, body = get("/debug/queries")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/queries: %d %s", code, ct)
	}
	var payload struct {
		InFlight []json.RawMessage `json:"in_flight"`
		Recent   []struct {
			Query   string    `json:"query"`
			Results int       `json:"results"`
			Done    bool      `json:"done"`
			Trace   *SpanJSON `json:"trace"`
		} `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("queries JSON: %v\n%s", err, body)
	}
	if len(payload.Recent) != 1 || payload.Recent[0].Results != 1 || !payload.Recent[0].Done {
		t.Fatalf("recent = %+v", payload.Recent)
	}
	if payload.Recent[0].Trace == nil || payload.Recent[0].Trace.Name != "query" {
		t.Fatalf("trace missing: %+v", payload.Recent[0].Trace)
	}

	// ?trace=0 omits span trees.
	_, _, body = get("/debug/queries?trace=0")
	if strings.Contains(body, `"trace"`) {
		t.Fatalf("trace=0 still has trees:\n%s", body)
	}

	// Tree rendering of one query. IDs come from the process-wide
	// correlation counter, so address the record by its actual id.
	code, ct, body = get(fmt.Sprintf("/debug/queries?format=tree&id=%d", rec.ID))
	if code != 200 || !strings.HasPrefix(ct, "text/plain") || !strings.Contains(body, "deref") {
		t.Fatalf("tree: %d %s %q", code, ct, body)
	}
	code, _, _ = get("/debug/queries?format=tree&id=999")
	if code != 404 {
		t.Fatalf("unknown id = %d, want 404", code)
	}
}

// TestTopologyEndpoint drives /debug/topology through its three shapes:
// the index listing, the per-query JSON graph, and the Graphviz DOT render.
func TestTopologyEndpoint(t *testing.T) {
	o := NewObserver()
	rec := o.Tracker.Start(0, "SELECT ?x WHERE {}", []string{"http://x/a"}, nil)
	topo := NewTopology(time.Now())
	topo.Seed("http://x/a")
	topo.Document("http://x/a", 0, 200, 4, 300, time.Now(), time.Millisecond)
	topo.Link("http://x/a", "http://x/b", "ldp-container", "ldp-container", EdgeFollowed)
	topo.Result(0, []string{"http://x/a"})
	rec.AttachTopology(topo)
	rec.SetContributions([]DocMatches{{Document: "http://x/a", Matches: 2}})
	o.Tracker.Finish(rec, nil)

	// A query without topology must not appear in the index.
	bare := o.Tracker.Start(0, "SELECT ?y WHERE {}", nil, nil)
	o.Tracker.Finish(bare, nil)

	mux := http.NewServeMux()
	o.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ct, body := get("/debug/topology")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/topology: %d %s", code, ct)
	}
	var index struct {
		Schema  int `json:"schema"`
		Queries []struct {
			ID       int64 `json:"id"`
			Topology struct {
				Documents int `json:"documents"`
				Links     int `json:"links"`
			} `json:"topology"`
		} `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &index); err != nil {
		t.Fatalf("index JSON: %v\n%s", err, body)
	}
	if index.Schema != TraceSchemaVersion || len(index.Queries) != 1 {
		t.Fatalf("index = %+v", index)
	}
	if index.Queries[0].Topology.Documents != 1 || index.Queries[0].Topology.Links != 2 {
		t.Fatalf("summary = %+v", index.Queries[0])
	}

	code, ct, body = get(fmt.Sprintf("/debug/topology?id=%d", rec.ID))
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("per-query: %d %s", code, ct)
	}
	var full struct {
		Topology TopologyJSON `json:"topology"`
	}
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatalf("topology JSON: %v\n%s", err, body)
	}
	if len(full.Topology.Nodes) != 1 || len(full.Topology.Edges) != 2 || len(full.Topology.Results) != 1 {
		t.Fatalf("full topology = %+v", full.Topology)
	}

	code, ct, body = get(fmt.Sprintf("/debug/topology?id=%d&format=dot", rec.ID))
	if code != 200 || !strings.HasPrefix(ct, "text/vnd.graphviz") {
		t.Fatalf("dot: %d %s", code, ct)
	}
	if !strings.Contains(body, "digraph traversal") {
		t.Fatalf("dot body:\n%s", body)
	}

	if code, _, _ = get("/debug/topology?id=99999"); code != 404 {
		t.Errorf("unknown id = %d, want 404", code)
	}
	if code, _, _ = get(fmt.Sprintf("/debug/topology?id=%d", bare.ID)); code != 404 {
		t.Errorf("topology-less query = %d, want 404", code)
	}

	// /debug/queries embeds the topology summary and contributions.
	_, _, body = get("/debug/queries")
	if !strings.Contains(body, `"contributions"`) || !strings.Contains(body, `"topology"`) {
		t.Errorf("/debug/queries lacks explain fields:\n%s", body)
	}
}

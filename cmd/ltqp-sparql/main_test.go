package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ltqp/internal/faultinject"
	"ltqp/internal/obs"
	"ltqp/internal/podserver"
	"ltqp/internal/solidbench"
)

// startEnv serves a small simulated environment on a real listener that
// the CLI (which uses http.DefaultClient) can reach.
func startEnv(t *testing.T) (*solidbench.Dataset, func()) {
	t.Helper()
	ps := podserver.New()
	ts := httptest.NewServer(ps)
	cfg := solidbench.SmallConfig()
	cfg.Host = ts.URL
	ds := solidbench.Generate(cfg)
	for _, p := range ds.BuildPods() {
		ps.AddPod(p)
	}
	return ds, ts.Close
}

func TestCLIRunsDiscoverQuery(t *testing.T) {
	ds, stop := startEnv(t)
	defer stop()
	q := ds.Discover(1, 1)

	var stdout, stderr strings.Builder
	code := run([]string{"--stats", q.Text}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("no output, stderr:\n%s", stderr.String())
	}
	// Each stdout line is one JSON binding (paper Fig. 2 format).
	var obj map[string]string
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("line 0 not JSON: %v\n%s", err, lines[0])
	}
	if _, ok := obj["messageId"]; !ok {
		t.Errorf("missing messageId in %v", obj)
	}
	if !strings.Contains(stderr.String(), "results in") {
		t.Errorf("missing stats: %s", stderr.String())
	}
}

func TestCLIExplicitSeedAndWaterfall(t *testing.T) {
	ds, stop := startEnv(t)
	defer stop()
	q := ds.Discover(6, 1)
	seed := ds.PodBase(q.Person) + "profile/card"

	var stdout, stderr strings.Builder
	code := run([]string{"--waterfall", seed, q.Text}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "requests") {
		t.Errorf("waterfall missing:\n%s", stderr.String())
	}
}

func TestCLIFormats(t *testing.T) {
	ds, stop := startEnv(t)
	defer stop()
	q := ds.Discover(5, 1) // distinct IPs: small result

	for _, format := range []string{"json", "csv", "tsv"} {
		var stdout, stderr strings.Builder
		code := run([]string{"--format", format, q.Text}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("format %s: exit %d, %s", format, code, stderr.String())
		}
		out := stdout.String()
		switch format {
		case "json":
			if !strings.Contains(out, `"vars"`) {
				t.Errorf("json output = %s", out)
			}
		case "csv":
			if !strings.HasPrefix(out, "locationIp") {
				t.Errorf("csv output = %s", out)
			}
		case "tsv":
			if !strings.HasPrefix(out, "?locationIp") {
				t.Errorf("tsv output = %s", out)
			}
		}
	}
}

func TestCLIQueryFile(t *testing.T) {
	ds, stop := startEnv(t)
	defer stop()
	q := ds.Discover(2, 1)
	dir := t.TempDir()
	file := filepath.Join(dir, "q.rq")
	if err := os.WriteFile(file, []byte(q.Text), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	code := run([]string{"--query-file", file}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, %s", code, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Error("no results via query file")
	}
}

func TestCLIPlan(t *testing.T) {
	ds, stop := startEnv(t)
	defer stop()
	q := ds.Discover(1, 1)
	var stdout, stderr strings.Builder
	if code := run([]string{"--plan", q.Text}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "plan: ") || !strings.Contains(stderr.String(), "pattern(") {
		t.Errorf("plan output missing:\n%s", stderr.String())
	}
}

// TestCLIExplainAndProvenance runs a query with --explain and --provenance:
// the report file must contain a versioned topology with nodes and edges,
// and every emitted ndjson row must carry a non-empty "_sources" list.
func TestCLIExplainAndProvenance(t *testing.T) {
	ds, stop := startEnv(t)
	defer stop()
	q := ds.Discover(1, 1)
	dir := t.TempDir()
	explainPath := filepath.Join(dir, "explain.json")
	dotPath := filepath.Join(dir, "topology.dot")

	var stdout, stderr strings.Builder
	code := run([]string{"--explain", explainPath, "--explain-dot", dotPath, "--provenance", q.Text}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}

	data, err := os.ReadFile(explainPath)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Schema        int `json:"schema"`
		Contributions []struct {
			Document string `json:"document"`
			Matches  int    `json:"matches"`
		} `json:"contributions"`
		Topology struct {
			Nodes []struct {
				URL string `json:"url"`
			} `json:"nodes"`
			Edges []struct {
				Extractor string `json:"extractor"`
				Status    string `json:"status"`
			} `json:"edges"`
			Results []struct {
				Sources []string `json:"sources"`
			} `json:"results"`
		} `json:"topology"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("explain report not JSON: %v\n%s", err, data)
	}
	if report.Schema != 1 {
		t.Errorf("explain schema = %d, want 1", report.Schema)
	}
	if len(report.Topology.Nodes) == 0 || len(report.Topology.Edges) == 0 {
		t.Errorf("topology empty: %d nodes, %d edges", len(report.Topology.Nodes), len(report.Topology.Edges))
	}
	if len(report.Contributions) == 0 {
		t.Error("no provenance contributions in report")
	}
	if len(report.Topology.Results) == 0 {
		t.Error("no result events in topology timeline")
	}

	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph traversal") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}

	rows := 0
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if line == "" {
			continue
		}
		rows++
		var obj map[string]interface{}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("result row not JSON: %v\n%s", err, line)
		}
		srcs, ok := obj["_sources"].([]interface{})
		if !ok || len(srcs) == 0 {
			t.Errorf("row lacks _sources: %s", line)
		}
	}
	if rows == 0 {
		t.Fatal("no results")
	}
}

func TestCLIErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no query", nil},
		{"bad strategy", []string{"--strategy", "bogus", "SELECT ?x WHERE { ?x ?p ?o }"}},
		{"bad format", []string{"--format", "xml", "SELECT ?x WHERE { ?x ?p <http://127.0.0.1:1/x> }"}},
		{"parse error", []string{"NOT A QUERY"}},
		{"missing query file", []string{"--query-file", "/nonexistent/q.rq"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if code := run(c.args, &stdout, &stderr); code == 0 {
				t.Errorf("expected failure, stdout: %s", stdout.String())
			}
		})
	}
}

func TestCLIAdaptiveAndDepthFlags(t *testing.T) {
	ds, stop := startEnv(t)
	defer stop()
	q := ds.Discover(1, 1)
	var stdout, stderr strings.Builder
	code := run([]string{"--adaptive", "--max-depth", "6", "--cache", "500", q.Text}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Error("no results with adaptive+depth+cache flags")
	}
}

// TestCLIRetriesThroughFaults runs the CLI against a pod server that
// answers 30% of requests with 503 (bounded per URL): the resilience flags
// must carry the query through, and --stats must report the degradation.
func TestCLIRetriesThroughFaults(t *testing.T) {
	ps := podserver.New()
	inj := faultinject.New(21, faultinject.Rule{
		Probability:     0.3,
		Kind:            faultinject.Status,
		Status:          503,
		MaxFaultsPerURL: 2,
	})
	ts := httptest.NewServer(inj.Middleware(ps))
	defer ts.Close()
	cfg := solidbench.SmallConfig()
	cfg.Host = ts.URL
	ds := solidbench.Generate(cfg)
	for _, p := range ds.BuildPods() {
		ps.AddPod(p)
	}
	q := ds.Discover(1, 1)

	var stdout, stderr strings.Builder
	code := run([]string{"--stats", "--max-retries", "3", "--retry-base", "1ms", q.Text}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
	if inj.FaultCount() == 0 {
		t.Fatal("no faults injected")
	}
	if stdout.Len() == 0 {
		t.Error("no results despite retries")
	}
	if !strings.Contains(stderr.String(), "degraded:") {
		t.Errorf("stats output lacks degradation line:\n%s", stderr.String())
	}
}

// TestCLITraceExport runs a query with --trace and asserts the emitted
// JSON span tree's dereference spans equal the waterfall rows reported by
// --stats ("N HTTP requests"), the acceptance contract of the flag.
func TestCLITraceExport(t *testing.T) {
	ds, stop := startEnv(t)
	defer stop()
	q := ds.Discover(1, 1)
	tracePath := filepath.Join(t.TempDir(), "trace.json")

	var stdout, stderr strings.Builder
	code := run([]string{"--stats", "--trace", tracePath, q.Text}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	type span struct {
		Name     string `json:"name"`
		DurUS    int64  `json:"duration_us"`
		Duration string `json:"duration"`
		Children []span `json:"children"`
	}
	var envelope struct {
		Schema int  `json:"schema"`
		Root   span `json:"root"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, data)
	}
	if envelope.Schema != 1 {
		t.Fatalf("trace schema = %d, want 1", envelope.Schema)
	}
	root := envelope.Root
	if root.Name != "query" {
		t.Fatalf("root span = %q", root.Name)
	}
	if root.Duration == "" {
		t.Error("root span lacks human-readable duration")
	}
	count := func(name string) int {
		n := 0
		var walk func(span)
		walk = func(s span) {
			if s.Name == name {
				n++
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(root)
		return n
	}
	for _, stage := range []string{"parse", "plan", "traverse", "exec"} {
		if count(stage) != 1 {
			t.Errorf("stage %q spans = %d, want 1", stage, count(stage))
		}
	}

	// --stats prints "N HTTP requests (M failed)"; deref spans must equal N.
	var requests int
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.Contains(line, "HTTP requests") {
			fmt.Sscanf(line, "%d HTTP requests", &requests)
		}
	}
	if requests == 0 {
		t.Fatalf("no request count in stats:\n%s", stderr.String())
	}
	if got := count("deref"); got != requests {
		t.Errorf("deref spans = %d, waterfall rows = %d", got, requests)
	}
}

// TestCLICacheStats asserts --stats surfaces document cache hit/miss
// counters when --cache is enabled.
func TestCLICacheStats(t *testing.T) {
	ds, stop := startEnv(t)
	defer stop()
	q := ds.Discover(1, 1)

	var stdout, stderr strings.Builder
	code := run([]string{"--stats", "--cache", "128", q.Text}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "document cache:") || !strings.Contains(out, "misses") {
		t.Errorf("stats output lacks cache line:\n%s", out)
	}
}

// TestCLIJournalAndLog asserts --journal writes a complete, replayable
// JSONL journal while --log narrates the run as structured records on
// stderr, both fed by the same event bus.
func TestCLIJournalAndLog(t *testing.T) {
	ds, stop := startEnv(t)
	defer stop()
	q := ds.Discover(1, 1)
	journalPath := filepath.Join(t.TempDir(), "run.jsonl")

	var stdout, stderr strings.Builder
	code := run([]string{"--journal", journalPath, "--log", "json", "--log-level", "info", q.Text}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
	results := len(strings.Split(strings.TrimSpace(stdout.String()), "\n"))
	if results == 0 {
		t.Fatal("no results")
	}

	// The journal replays to the same result count the CLI printed.
	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	summary, err := obs.ReadJournal(f)
	if err != nil {
		t.Fatalf("journal does not replay: %v", err)
	}
	if !summary.HasFooter || len(summary.Queries) != 1 {
		t.Fatalf("journal summary = %+v", summary)
	}
	if got := summary.Queries[0].Results; got != results {
		t.Errorf("journal results = %d, CLI printed %d", got, results)
	}

	// The log narrates the lifecycle with the query correlation id.
	logOut := stderr.String()
	for _, want := range []string{`"msg":"query started"`, `"msg":"query finished"`, `"query_id":`} {
		if !strings.Contains(logOut, want) {
			t.Errorf("log missing %q:\n%s", want, logOut)
		}
	}

	// Bad flag values are rejected up front.
	if code := run([]string{"--log", "xml", q.Text}, &stdout, &stderr); code != 2 {
		t.Errorf("bad --log exit = %d, want 2", code)
	}
	if code := run([]string{"--log", "text", "--log-level", "loud", q.Text}, &stdout, &stderr); code != 2 {
		t.Errorf("bad --log-level exit = %d, want 2", code)
	}
}

package sparql

import "testing"

const benchQuery = `
PREFIX snvoc: <https://solidbench.linkeddatafragments.org/www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/>
SELECT DISTINCT ?creator ?messageContent WHERE {
  <https://solidbench.linkeddatafragments.org/pods/00000006597069767117/profile/card#me> snvoc:likes _:g_0.
  _:g_0 (snvoc:hasPost|snvoc:hasComment) ?message.
  ?message snvoc:hasCreator ?creator.
  ?otherMessage snvoc:hasCreator ?creator;
    snvoc:content ?messageContent.
  FILTER(STRLEN(?messageContent) > 3 && ?creator != <https://x.example/card#me>)
  OPTIONAL { ?message snvoc:creationDate ?d }
} ORDER BY ?creator LIMIT 100`

func BenchmarkParseQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLexQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lexAll(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

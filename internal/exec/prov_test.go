package exec

import (
	"context"
	"reflect"
	"testing"

	"ltqp/internal/algebra"
	"ltqp/internal/plan"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
)

// provStore builds a closed store whose three patterns each come from a
// different document, so join provenance is fully predictable.
func provStore() *store.Store {
	s := store.New()
	m := rdf.NewIRI("http://example.org/m1")
	s.Add(rdf.NewTriple(m, rdf.NewIRI("http://v/hasCreator"), rdf.NewIRI("http://example.org/alice")), rdf.NewIRI("http://pod/a.ttl"))
	s.Add(rdf.NewTriple(m, rdf.NewIRI("http://v/content"), rdf.NewLiteral("hello")), rdf.NewIRI("http://pod/b.ttl"))
	s.Add(rdf.NewTriple(m, rdf.NewIRI("http://v/id"), rdf.Long(1)), rdf.NewIRI("http://pod/c.ttl"))
	s.Close()
	return s
}

func testPlan(t *testing.T, query string) algebra.Operator {
	t.Helper()
	q, err := sparql.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan.New(nil).Optimize(op)
}

const provQuery = `
SELECT ?m ?c ?id WHERE {
  ?m <http://v/hasCreator> <http://example.org/alice> .
  ?m <http://v/content> ?c .
  ?m <http://v/id> ?id .
}`

// TestJoinProvenanceExact pins the tentpole contract: a solution joined
// from triples of three documents carries exactly those three documents.
func TestJoinProvenanceExact(t *testing.T) {
	s := provStore()
	env := NewEnv(s)
	env.Prov = NewProv()

	var rows []rdf.Binding
	for b := range Eval(context.Background(), testPlan(t, provQuery), env) {
		rows = append(rows, b)
	}
	if len(rows) != 1 {
		t.Fatalf("results = %d, want 1", len(rows))
	}
	want := []string{"http://pod/a.ttl", "http://pod/b.ttl", "http://pod/c.ttl"}
	if got := rows[0].Sources(); !reflect.DeepEqual(got, want) {
		t.Errorf("sources = %v, want %v", got, want)
	}
	// Projection kept the real variables too.
	if got := rows[0].Vars(); !reflect.DeepEqual(got, []string{"c", "id", "m"}) {
		t.Errorf("vars = %v", got)
	}

	// The sink tallied one match per document.
	contrib := env.Prov.Contributions()
	if len(contrib) != 3 {
		t.Fatalf("contributions = %+v", contrib)
	}
	for _, c := range contrib {
		if c.Matches != 1 {
			t.Errorf("contribution %s = %d matches, want 1", c.Document, c.Matches)
		}
	}
}

// TestProvenanceDisabled pins the opt-out: with a nil sink no solution
// carries sources.
func TestProvenanceDisabled(t *testing.T) {
	s := provStore()
	env := NewEnv(s) // env.Prov stays nil
	for b := range Eval(context.Background(), testPlan(t, provQuery), env) {
		if b.HasSources() {
			t.Errorf("provenance-disabled run produced sources: %v", b.Sources())
		}
	}
}

// TestAggregateProvenanceUnion: an aggregate row descends from every row of
// its group, so its provenance is the union of theirs.
func TestAggregateProvenanceUnion(t *testing.T) {
	s := store.New()
	creator := rdf.NewIRI("http://example.org/alice")
	p := rdf.NewIRI("http://v/hasCreator")
	s.Add(rdf.NewTriple(rdf.NewIRI("http://example.org/m1"), p, creator), rdf.NewIRI("http://pod/a.ttl"))
	s.Add(rdf.NewTriple(rdf.NewIRI("http://example.org/m2"), p, creator), rdf.NewIRI("http://pod/b.ttl"))
	s.Close()

	env := NewEnv(s)
	env.Prov = NewProv()
	op := testPlan(t, `
SELECT ?creator (COUNT(?m) AS ?n) WHERE {
  ?m <http://v/hasCreator> ?creator .
} GROUP BY ?creator`)

	var rows []rdf.Binding
	for b := range Eval(context.Background(), op, env) {
		rows = append(rows, b)
	}
	if len(rows) != 1 {
		t.Fatalf("groups = %d, want 1", len(rows))
	}
	want := []string{"http://pod/a.ttl", "http://pod/b.ttl"}
	if got := rows[0].Sources(); !reflect.DeepEqual(got, want) {
		t.Errorf("aggregate sources = %v, want %v", got, want)
	}
}

// TestMinusIgnoresProvenance: provenance pseudo-variables must not create
// spurious domain overlap between MINUS operands.
func TestMinusIgnoresProvenance(t *testing.T) {
	s := store.New()
	s.Add(rdf.NewTriple(rdf.NewIRI("http://example.org/m1"), rdf.NewIRI("http://v/id"), rdf.Long(1)), rdf.NewIRI("http://pod/a.ttl"))
	s.Add(rdf.NewTriple(rdf.NewIRI("http://example.org/other"), rdf.NewIRI("http://v/tag"), rdf.NewLiteral("x")), rdf.NewIRI("http://pod/a.ttl"))
	s.Close()

	env := NewEnv(s)
	env.Prov = NewProv()
	// Disjoint domains (?m/?id vs ?o/?t): MINUS must keep every left row
	// even though both sides carry the same provenance pseudo-variable.
	op := testPlan(t, `
SELECT ?m WHERE {
  ?m <http://v/id> ?id .
  MINUS { ?o <http://v/tag> ?t . }
}`)
	n := 0
	for range Eval(context.Background(), op, env) {
		n++
	}
	if n != 1 {
		t.Errorf("MINUS with disjoint domains dropped rows: %d results, want 1", n)
	}
}

// BenchmarkStarJoinProvenance measures the provenance-enabled pipeline;
// compare against BenchmarkStarJoinPipeline (the disabled path) for the
// opt-in cost. The disabled path itself must not regress: it performs the
// same allocations as before the provenance layer existed.
func BenchmarkStarJoinProvenance(b *testing.B) {
	s := benchStore(2000)
	op := benchPlan(b, `
SELECT ?m ?c ?id WHERE {
  ?m <http://v/hasCreator> <http://example.org/u3> .
  ?m <http://v/content> ?c .
  ?m <http://v/id> ?id .
}`)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := NewEnv(s)
		env.Prov = NewProv()
		n := 0
		for range Eval(ctx, op, env) {
			n++
		}
		if n != 100 {
			b.Fatalf("results = %d", n)
		}
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ltqp/internal/resource"
	"ltqp/internal/serve"
)

// renderLoadReport pretty-prints a cmd/loadgen artifact.
func renderLoadReport(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Kind != "loadgen" {
		return fmt.Errorf("%s: kind %q, want \"loadgen\"", path, rep.Kind)
	}

	c := rep.Config
	fmt.Fprintf(w, "## Load run — %s\n\n", rep.Generated.Format("2006-01-02 15:04 MST"))
	fmt.Fprintf(w, "%d clients over %d tenants, %.0fs per run, %d pods, %.1fms pod latency, %d-query mix, max in-flight %d",
		c.Clients, c.Tenants, c.DurationSec, c.Persons, c.LatencyMS, c.QueryMix, c.MaxInFlight)
	if c.TenantQuota > 0 {
		fmt.Fprintf(w, ", tenant quota %d", c.TenantQuota)
	}
	fmt.Fprintf(w, "\n\n")

	fmt.Fprintf(w, "| run | qps | p50 ms | p95 ms | p99 ms | completed | rejected | errors | pod reqs | 304s | hit ratio | dedups | dup-inflight | peak mem |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rep.Runs {
		hitRatio := "-"
		dedups := "-"
		dup := "-"
		if r.Cache.Hits+r.Cache.Misses > 0 {
			hitRatio = fmt.Sprintf("%.1f%%", r.Cache.HitRatio()*100)
			dedups = fmt.Sprintf("%d", r.Cache.Dedups)
			dup = fmt.Sprintf("%d", r.Cache.DuplicateInflight)
		}
		peak := "-"
		if r.PeakMemBytes > 0 {
			peak = resource.FormatBytes(r.PeakMemBytes)
		}
		fmt.Fprintf(w, "| %s | %.1f | %.1f | %.1f | %.1f | %d | %d | %d | %d | %d | %s | %s | %s | %s |\n",
			r.Label, r.QPS, r.P50MS, r.P95MS, r.P99MS,
			r.Completed, r.Rejected, r.Errors,
			r.PodRequests, r.PodNotModified, hitRatio, dedups, dup, peak)
	}
	if rep.SpeedupVsBaseline > 0 {
		fmt.Fprintf(w, "\nShared-cache speedup vs baseline: **%.1fx** throughput.\n", rep.SpeedupVsBaseline)
	}
	return nil
}

// Package store provides the engine's internal triple source: a concurrent,
// append-only, indexed triple store that grows while link traversal is
// running and supports *live* pattern iterators.
//
// A live iterator first streams all currently known matches of a triple
// pattern and then blocks until either new matching triples arrive or the
// store is closed (traversal finished). This is what allows the query
// pipeline to start producing results while documents are still being
// dereferenced, as described in the paper's architecture (Fig. 1).
//
// Internally the store is dictionary-encoded: every term is interned in an
// engine-scoped rdf.Dict, triples are stored and deduplicated as 12-byte
// rdf.IDTriple values, and the pattern indexes are keyed by integer TermIDs
// (plus uint64 composite keys for the two-constant (s,p) and (p,o) shapes).
// The hot ingest and match paths therefore hash and compare small integers
// instead of lexical strings; terms are decoded back to rdf.Term only at
// the iterator emission boundary.
package store

import (
	"context"
	"sync"

	"ltqp/internal/rdf"
	"ltqp/internal/resource"
)

// Store is the growing internal triple source. The zero value is not usable;
// construct with New or NewWithDict.
//
// Triples are deduplicated set-wise (the source is the union of all
// dereferenced documents), while provenance (which document contributed a
// triple first) is retained for link extraction and diagnostics.
type Store struct {
	mu   sync.Mutex
	cond *sync.Cond

	// dict is the term dictionary all IDs below refer to. It may be shared
	// with the parser and document cache of the owning engine.
	dict *rdf.Dict

	triples []rdf.IDTriple
	sources []rdf.TermID // sources[i] is the document triples[i] came from
	seen    map[rdf.IDTriple]int32

	bySubject   map[rdf.TermID][]int32
	byPredicate map[rdf.TermID][]int32
	byObject    map[rdf.TermID][]int32
	// Composite two-constant indexes: star joins overwhelmingly probe the
	// (?s, p, o) and (s, p, ?o) shapes, which these answer exactly instead
	// of filtering a one-constant candidate list. They are built lazily on
	// the first probe of their shape (nil until then), so pure ingest never
	// pays their per-triple cost; once built they are maintained on every
	// add.
	bySP map[uint64][]int32
	byPO map[uint64][]int32

	closed    bool
	documents map[string]bool // document IRIs ingested

	// ledger, when set, is charged resource.Store bytes for every distinct
	// triple and index posting this store retains on behalf of its query.
	// Store memory is released only when the query ends (the store is
	// query-local and append-only), so charges are never released here.
	ledger *resource.Ledger
}

// Estimated retained bytes per distinct triple: the 12-byte IDTriple, its
// 4-byte source entry, the seen-map entry (~28 bytes of key+value+bucket
// overhead), and one 4-byte posting in each of the three single-constant
// indexes. Composite (SP/PO) postings are charged separately when those
// indexes exist.
const (
	bytesPerTriple           = 12 + 4 + 28 + 3*4
	bytesPerCompositePosting = 4
)

// New returns an empty open store with its own private term dictionary.
func New() *Store {
	return NewWithDict(rdf.NewDict())
}

// NewWithDict returns an empty open store interning into the given
// dictionary. An engine shares one dictionary between its parser, document
// cache, and the per-query stores, so repeated documents intern to the same
// IDs across queries.
func NewWithDict(dict *rdf.Dict) *Store {
	s := &Store{
		dict:        dict,
		seen:        make(map[rdf.IDTriple]int32),
		bySubject:   make(map[rdf.TermID][]int32),
		byPredicate: make(map[rdf.TermID][]int32),
		byObject:    make(map[rdf.TermID][]int32),
		documents:   make(map[string]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Dict returns the store's term dictionary.
func (s *Store) Dict() *rdf.Dict { return s.dict }

// SetLedger attaches the owning query's resource ledger. Call before
// ingest starts; a nil ledger (the default) keeps accounting off.
func (s *Store) SetLedger(l *resource.Ledger) {
	s.mu.Lock()
	s.ledger = l
	s.mu.Unlock()
}

// Add inserts one triple attributed to the given source document. It
// reports whether the triple was new. Adding to a closed store is a no-op
// returning false.
func (s *Store) Add(t rdf.Triple, source rdf.Term) bool {
	// Intern outside the store lock: interning takes the dictionary's
	// stripe locks and must not extend the critical section that blocks
	// live iterators.
	it := s.dict.InternTriple(t)
	src := s.dict.Intern(source)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if !s.addLocked(it, src) {
		return false
	}
	s.cond.Broadcast()
	return true
}

// addLocked inserts one interned triple. Caller holds s.mu.
func (s *Store) addLocked(t rdf.IDTriple, src rdf.TermID) bool {
	if _, dup := s.seen[t]; dup {
		return false
	}
	i := int32(len(s.triples))
	s.seen[t] = i
	s.triples = append(s.triples, t)
	s.sources = append(s.sources, src)
	s.bySubject[t.S] = append(s.bySubject[t.S], i)
	s.byPredicate[t.P] = append(s.byPredicate[t.P], i)
	s.byObject[t.O] = append(s.byObject[t.O], i)
	charge := int64(bytesPerTriple)
	if s.bySP != nil {
		s.bySP[t.SP()] = append(s.bySP[t.SP()], i)
		charge += bytesPerCompositePosting
	}
	if s.byPO != nil {
		s.byPO[t.PO()] = append(s.byPO[t.PO()], i)
		charge += bytesPerCompositePosting
	}
	s.ledger.Charge(resource.Store, charge)
	return true
}

// AddDocument ingests all triples of a dereferenced document and reports
// how many were new. It also records the document IRI. The whole document
// is interned outside the store lock and inserted under one lock
// acquisition with a single iterator wakeup, so ingest cost per document is
// one critical section, not one per triple.
func (s *Store) AddDocument(docIRI string, triples []rdf.Triple) int {
	src := s.dict.Intern(rdf.NewIRI(docIRI))
	ids := make([]rdf.IDTriple, len(triples))
	for i, t := range triples {
		ids[i] = s.dict.InternTriple(t)
	}
	n := 0
	s.mu.Lock()
	if !s.closed {
		for _, it := range ids {
			if s.addLocked(it, src) {
				n++
			}
		}
		if n > 0 {
			s.cond.Broadcast()
		}
	}
	s.documents[docIRI] = true
	s.mu.Unlock()
	return n
}

// Close marks the store complete: no further triples will arrive. All
// blocked iterators drain their remaining matches and then terminate.
// Close is idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
}

// Closed reports whether the store has been closed.
func (s *Store) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Len returns the number of distinct triples currently in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.triples)
}

// DocumentCount returns the number of documents ingested so far.
func (s *Store) DocumentCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.documents)
}

// Source returns the document a ground triple was first contributed by.
func (s *Store) Source(t rdf.Triple) (rdf.Term, bool) {
	it, ok := s.dict.LookupTriple(t)
	if !ok {
		return rdf.Term{}, false
	}
	s.mu.Lock()
	i, ok := s.seen[it]
	var src rdf.TermID
	if ok {
		src = s.sources[i]
	}
	s.mu.Unlock()
	if !ok {
		return rdf.Term{}, false
	}
	return s.dict.Decode(src), true
}

// idPattern is a compiled triple pattern: each position is either a
// constant TermID or a variable slot. Repeated variables (e.g. ?x :p ?x)
// compile to equality constraints between positions.
type idPattern struct {
	id    [3]rdf.TermID // constant ID per position (NoTerm for undef constants)
	isVar [3]bool       // position is a wildcard
	// sameAs[i] >= 0 requires position i to equal position sameAs[i]
	// (repeated variable).
	sameAs [3]int8
}

// compilePattern interns the constant positions of a pattern. Interning
// (rather than looking up) keeps live semantics: a constant term that has
// not been seen yet receives its final ID now, so the pattern starts
// matching the moment traversal contributes the term.
func (s *Store) compilePattern(pattern rdf.Triple) idPattern {
	var p idPattern
	p.sameAs = [3]int8{-1, -1, -1}
	pos := [3]rdf.Term{pattern.S, pattern.P, pattern.O}
	for i, t := range pos {
		if t.Kind == rdf.TermVar {
			p.isVar[i] = true
			for j := 0; j < i; j++ {
				if pos[j].Kind == rdf.TermVar && pos[j].Value == t.Value {
					p.sameAs[i] = int8(j)
					break
				}
			}
			continue
		}
		// Undef compiles to NoTerm, which no ground triple position carries
		// unless the data itself holds an undef term — preserving the
		// pre-dictionary semantics of undef-as-constant.
		p.id[i] = s.dict.Intern(t)
	}
	return p
}

// matches reports whether the compiled pattern matches an ID triple.
func (p *idPattern) matches(t rdf.IDTriple) bool {
	ids := [3]rdf.TermID{t.S, t.P, t.O}
	for i := 0; i < 3; i++ {
		if p.isVar[i] {
			if j := p.sameAs[i]; j >= 0 && ids[i] != ids[j] {
				return false
			}
			continue
		}
		if ids[i] != p.id[i] {
			return false
		}
	}
	return true
}

// fullScan reports whether the pattern has no constant position.
func (p *idPattern) fullScan() bool {
	for i := 0; i < 3; i++ {
		if !p.isVar[i] {
			// An undef "constant" is not indexable (its ID is NoTerm, which
			// is never indexed), but it also matches nothing; the full-scan
			// path handles it like the pre-dictionary store did.
			if p.id[i] == rdf.NoTerm {
				continue
			}
			return false
		}
	}
	return true
}

// candidates returns the index list to scan for a compiled pattern,
// choosing the most selective available index. Caller holds s.mu.
func (s *Store) candidates(p *idPattern) []int32 {
	constS := !p.isVar[0] && p.id[0] != rdf.NoTerm
	constP := !p.isVar[1] && p.id[1] != rdf.NoTerm
	constO := !p.isVar[2] && p.id[2] != rdf.NoTerm
	switch {
	case constS && constP:
		if s.bySP == nil {
			s.bySP = make(map[uint64][]int32, len(s.triples))
			for i, t := range s.triples {
				s.bySP[t.SP()] = append(s.bySP[t.SP()], int32(i))
			}
			s.ledger.Charge(resource.Store, int64(len(s.triples))*bytesPerCompositePosting)
		}
		return s.bySP[uint64(p.id[0])<<32|uint64(p.id[1])]
	case constP && constO:
		if s.byPO == nil {
			s.byPO = make(map[uint64][]int32, len(s.triples))
			for i, t := range s.triples {
				s.byPO[t.PO()] = append(s.byPO[t.PO()], int32(i))
			}
			s.ledger.Charge(resource.Store, int64(len(s.triples))*bytesPerCompositePosting)
		}
		return s.byPO[uint64(p.id[1])<<32|uint64(p.id[2])]
	case constS:
		return s.bySubject[p.id[0]]
	case constO:
		return s.byObject[p.id[2]]
	case constP:
		return s.byPredicate[p.id[1]]
	default:
		return nil // full scan
	}
}

// MatchNow returns a snapshot of all current matches of the pattern.
func (s *Store) MatchNow(pattern rdf.Triple) []rdf.Triple {
	p := s.compilePattern(pattern)
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []rdf.Triple
	if p.fullScan() {
		for _, t := range s.triples {
			if p.matches(t) {
				out = append(out, s.dict.DecodeTriple(t))
			}
		}
		return out
	}
	for _, i := range s.candidates(&p) {
		if t := s.triples[i]; p.matches(t) {
			out = append(out, s.dict.DecodeTriple(t))
		}
	}
	return out
}

// CountNow returns the number of current matches of the pattern. It is used
// by cardinality-estimating planners and tests.
func (s *Store) CountNow(pattern rdf.Triple) int {
	p := s.compilePattern(pattern)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	if p.fullScan() {
		for _, t := range s.triples {
			if p.matches(t) {
				n++
			}
		}
		return n
	}
	for _, i := range s.candidates(&p) {
		if p.matches(s.triples[i]) {
			n++
		}
	}
	return n
}

// Match returns a live iterator over current and future matches of the
// pattern. The iterator terminates once the store is closed and all matches
// are drained, or when the iterator itself is closed.
func (s *Store) Match(pattern rdf.Triple) *Iterator {
	p := s.compilePattern(pattern)
	return &Iterator{store: s, pattern: p, scan: p.fullScan()}
}

// Iterator is a live triple-pattern iterator. It is not safe for concurrent
// use by multiple goroutines; each pipeline operator owns its iterators.
type Iterator struct {
	store   *Store
	pattern idPattern
	// next is the cursor: an index into the candidate list (or the triples
	// slice for full scans) of the next entry to examine.
	next   int
	scan   bool
	closed bool
	mu     sync.Mutex
}

// Next blocks until a new matching triple is available and returns it, or
// returns ok=false when the store closed (and matches are exhausted), the
// iterator was closed, or the context was cancelled.
func (it *Iterator) Next(ctx context.Context) (rdf.Triple, bool) {
	s := it.store

	// Wake the wait loop when the context is cancelled. We register a
	// broadcast goroutine lazily per Next call only when we actually need
	// to block, to keep the fast path allocation-free.
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if it.isClosed() || ctx.Err() != nil {
			return rdf.Triple{}, false
		}
		if t, ok := it.scanLocked(); ok {
			return s.dict.DecodeTriple(t), true
		}
		if s.closed {
			return rdf.Triple{}, false
		}
		// Block until new triples arrive or the store closes. A helper
		// goroutine turns context cancellation into a broadcast.
		stop := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			case <-stop:
			}
		}()
		s.cond.Wait()
		close(stop)
	}
}

// TryNext returns the next available match without blocking.
func (it *Iterator) TryNext() (rdf.Triple, bool) {
	s := it.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if it.isClosed() {
		return rdf.Triple{}, false
	}
	t, ok := it.scanLocked()
	if !ok {
		return rdf.Triple{}, false
	}
	return s.dict.DecodeTriple(t), true
}

// Done reports whether the iterator can produce no further results without
// blocking AND the store is closed — i.e. the stream has truly ended.
func (it *Iterator) Done() bool {
	it.store.mu.Lock()
	defer it.store.mu.Unlock()
	if it.isClosed() {
		return true
	}
	if !it.store.closed {
		return false
	}
	// Peek: are there unscanned matches left?
	save := it.next
	_, ok := it.scanLocked()
	it.next = save
	return !ok
}

// scanLocked advances the cursor to the next match. Caller holds store.mu.
func (it *Iterator) scanLocked() (rdf.IDTriple, bool) {
	t, _, ok := it.scanLockedIdx()
	return t, ok
}

// Close releases the iterator; pending and future Next calls return false.
func (it *Iterator) Close() {
	it.mu.Lock()
	it.closed = true
	it.mu.Unlock()
	it.store.mu.Lock()
	it.store.cond.Broadcast()
	it.store.mu.Unlock()
}

func (it *Iterator) isClosed() bool {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.closed
}

// Snapshot returns a copy of all triples currently in the store, in
// insertion order. Used by blocking operators and the centralized baseline.
func (s *Store) Snapshot() []rdf.Triple {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]rdf.Triple, len(s.triples))
	for i, t := range s.triples {
		out[i] = s.dict.DecodeTriple(t)
	}
	return out
}

// WaitClosed blocks until the store is closed or the context is cancelled.
// Blocking operators (ORDER BY, OPTIONAL, aggregation) use it to gate their
// final emission on traversal quiescence.
func (s *Store) WaitClosed(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed {
		if err := ctx.Err(); err != nil {
			return err
		}
		stop := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			case <-stop:
			}
		}()
		s.cond.Wait()
		close(stop)
	}
	return nil
}

package simenv

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"ltqp/internal/solidbench"
)

func TestEnvironmentServesPods(t *testing.T) {
	env := New(solidbench.SmallConfig())
	defer env.Close()

	// IRIs are minted under the live server origin.
	if !strings.HasPrefix(env.Dataset.Config.Host, "http://127.0.0.1") {
		t.Errorf("host = %s", env.Dataset.Config.Host)
	}
	if len(env.Pods) != len(env.Dataset.Persons) {
		t.Errorf("pods = %d, persons = %d", len(env.Pods), len(env.Dataset.Persons))
	}

	// Every pod's profile dereferences.
	resp, err := env.Client().Get(env.Dataset.PodBase(0) + "profile/card")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "pim:storage") {
		t.Errorf("profile body:\n%s", string(body))
	}
}

func TestCredentialsFor(t *testing.T) {
	env := New(solidbench.SmallConfig())
	defer env.Close()
	creds := env.CredentialsFor(2)
	if creds.WebID != env.Dataset.WebID(2) {
		t.Errorf("WebID = %s", creds.WebID)
	}
	if !strings.HasPrefix(creds.Token, "sig:") {
		t.Errorf("token = %s", creds.Token)
	}
}

func TestStats(t *testing.T) {
	env := New(solidbench.SmallConfig())
	defer env.Close()
	s := env.Stats()
	if s.Pods != 6 || s.Files == 0 || s.Triples == 0 {
		t.Errorf("stats = %+v", s)
	}
}

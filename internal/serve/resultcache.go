package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ltqp/internal/obs"
)

// DefaultResultCacheEntries bounds the result cache when no capacity is
// given.
const DefaultResultCacheEntries = 256

// ResultKey identifies one cacheable query execution: the normalized query
// text, the sorted seed set, and the shared cache's invalidation epoch at
// execution time. Bumping the epoch (POST /admin/invalidate) therefore
// invalidates cached results together with cached documents.
func ResultKey(query string, seeds []string, epoch uint64) string {
	norm := normalizeQuery(query)
	s := append([]string(nil), seeds...)
	sort.Strings(s)
	h := sha256.New()
	fmt.Fprintf(h, "%d\x00%s\x00", epoch, norm)
	for _, seed := range s {
		h.Write([]byte(seed))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// normalizeQuery collapses whitespace runs so trivially reformatted queries
// share a cache entry. It deliberately does not parse: queries differing in
// more than whitespace are distinct keys even when semantically equal.
func normalizeQuery(q string) string {
	return strings.Join(strings.Fields(q), " ")
}

// ResultCache memoizes completed query results keyed by ResultKey, LRU-
// bounded by entry count. Values are opaque to the cache (the endpoint
// stores its serialized response); callers must treat them as immutable.
// Safe for concurrent use.
type ResultCache struct {
	capacity int
	obs      *obs.Metrics

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List

	hits, misses atomic.Int64
}

type resultEntry struct {
	key   string
	value any
}

// NewResultCache builds a result cache holding up to capacity entries
// (DefaultResultCacheEntries when capacity <= 0).
func NewResultCache(capacity int, m *obs.Metrics) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultResultCacheEntries
	}
	return &ResultCache{
		capacity: capacity,
		obs:      m,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
	}
}

// Get returns the cached value for key, if present.
func (c *ResultCache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	var value any
	if ok {
		c.lru.MoveToFront(el)
		value = el.Value.(*resultEntry).value
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		obs.On(c.obs).ResultCacheMisses.Inc()
		return nil, false
	}
	c.hits.Add(1)
	obs.On(c.obs).ResultCacheHits.Inc()
	return value, true
}

// Put stores value under key, evicting the least recently used entry past
// capacity.
func (c *ResultCache) Put(key string, value any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*resultEntry).value = value
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&resultEntry{key: key, value: value})
	for c.lru.Len() > c.capacity {
		last := c.lru.Back()
		delete(c.entries, last.Value.(*resultEntry).key)
		c.lru.Remove(last)
	}
}

// Len returns the number of cached results.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns cumulative (hits, misses).
func (c *ResultCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

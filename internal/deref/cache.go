package deref

import (
	"container/list"
	"sync"

	"ltqp/internal/rdf"
)

// Cache is a bounded LRU document cache shared across queries of one
// engine. The paper's demo runs in a browser whose HTTP disk cache serves
// repeated document fetches (the "(disk cache)" entries in Fig. 4's
// waterfall); this reproduces that behaviour for repeated queries over the
// same pods.
//
// Entries are keyed by document URL *and* the requesting agent's WebID:
// access-controlled documents must never leak across identities.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent

	hits, misses int
}

type cacheEntry struct {
	key      string
	finalURL string
	// triples are shared read-only with all consumers.
	triples []rdf.Triple
	bytes   int64
}

// NewCache returns a cache bounded to capacity documents (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, entries: map[string]*list.Element{}, lru: list.New()}
}

// cacheKey builds the identity-scoped key.
func cacheKey(url string, auth *Credentials) string {
	if auth == nil {
		return url
	}
	return url + "\x00" + auth.WebID
}

// get returns a cached parse result.
func (c *Cache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores a parse result, evicting the least recently used entry when
// over capacity.
func (c *Cache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		c.lru.MoveToFront(el)
		el.Value = e
		return
	}
	c.entries[e.key] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached documents.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns hit/miss counters.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

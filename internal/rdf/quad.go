package rdf

import "strings"

// Triple is an RDF triple. Pattern triples may contain variables in any
// position; data triples must be ground (no variables, no undef terms).
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from its components.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples-like syntax (without trailing dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// IsGround reports whether the triple contains no variables or undef terms,
// i.e. it is a data triple rather than a pattern.
func (t Triple) IsGround() bool {
	for _, x := range [3]Term{t.S, t.P, t.O} {
		if x.Kind == TermVar || x.Kind == TermUndef {
			return false
		}
	}
	return true
}

// Vars returns the distinct variable names appearing in the triple, in
// subject-predicate-object order.
func (t Triple) Vars() []string {
	var vars []string
	seen := map[string]bool{}
	for _, x := range [3]Term{t.S, t.P, t.O} {
		if x.Kind == TermVar && !seen[x.Value] {
			seen[x.Value] = true
			vars = append(vars, x.Value)
		}
	}
	return vars
}

// Matches reports whether the ground triple data matches the pattern t,
// treating variables in t as wildcards. Repeated variables must bind to
// identical terms (e.g. ?x :p ?x).
func (t Triple) Matches(data Triple) bool {
	var bound [3]struct {
		name string
		term Term
	}
	n := 0
	check := func(pat, dat Term) bool {
		if pat.Kind == TermVar {
			for i := 0; i < n; i++ {
				if bound[i].name == pat.Value {
					return bound[i].term == dat
				}
			}
			bound[n].name = pat.Value
			bound[n].term = dat
			n++
			return true
		}
		return pat == dat
	}
	return check(t.S, data.S) && check(t.P, data.P) && check(t.O, data.O)
}

// Bind substitutes variables in the pattern with their values from b,
// leaving unbound variables in place.
func (t Triple) Bind(b Binding) Triple {
	sub := func(x Term) Term {
		if x.Kind == TermVar {
			if v, ok := b.Get(x.Value); ok {
				return v
			}
		}
		return x
	}
	return Triple{S: sub(t.S), P: sub(t.P), O: sub(t.O)}
}

// Quad is a triple plus the graph (document) it was found in. In the
// traversal engine the graph records the document IRI a triple was
// dereferenced from, which drives link extraction and provenance.
type Quad struct {
	Triple
	G Term
}

// NewQuad builds a quad from its components.
func NewQuad(s, p, o, g Term) Quad { return Quad{Triple: Triple{S: s, P: p, O: o}, G: g} }

// String renders the quad in N-Quads-like syntax (without trailing dot).
func (q Quad) String() string {
	if q.G.IsZero() {
		return q.Triple.String()
	}
	return q.Triple.String() + " " + q.G.String()
}

// Graph is an in-memory set of triples with insertion order preserved. It is
// the simple (non-concurrent) dataset used by parsers, the pod builder and
// tests; the engine's growing source lives in internal/store.
type Graph struct {
	triples []Triple
	index   map[Triple]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[Triple]struct{})}
}

// Add inserts a triple if not already present; it reports whether the triple
// was new.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.index[t]; ok {
		return false
	}
	g.index[t] = struct{}{}
	g.triples = append(g.triples, t)
	return true
}

// AddAll inserts all triples from ts.
func (g *Graph) AddAll(ts []Triple) {
	for _, t := range ts {
		g.Add(t)
	}
}

// Has reports whether the graph contains the ground triple t.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.index[t]
	return ok
}

// Len returns the number of distinct triples in the graph.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns the triples in insertion order. The returned slice is
// shared; callers must not modify it.
func (g *Graph) Triples() []Triple { return g.triples }

// Match returns all triples matching the pattern (variables are wildcards).
func (g *Graph) Match(pattern Triple) []Triple {
	var out []Triple
	for _, t := range g.triples {
		if pattern.Matches(t) {
			out = append(out, t)
		}
	}
	return out
}

// Objects returns the objects of all triples with the given subject and
// predicate.
func (g *Graph) Objects(s, p Term) []Term {
	var out []Term
	for _, t := range g.triples {
		if t.S == s && t.P == p {
			out = append(out, t.O)
		}
	}
	return out
}

// FirstObject returns the first object for (s, p), or a zero Term.
func (g *Graph) FirstObject(s, p Term) Term {
	for _, t := range g.triples {
		if t.S == s && t.P == p {
			return t.O
		}
	}
	return Term{}
}

// Subjects returns the distinct subjects of triples with the given predicate
// and object.
func (g *Graph) Subjects(p, o Term) []Term {
	var out []Term
	seen := map[Term]bool{}
	for _, t := range g.triples {
		if t.P == p && t.O == o && !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
	}
	return out
}

// IsA reports whether the graph asserts rdf:type class for subject s.
func (g *Graph) IsA(s Term, class string) bool {
	for _, t := range g.triples {
		if t.S == s && t.P.Value == RDFType && t.P.Kind == TermIRI &&
			t.O.Kind == TermIRI && t.O.Value == class {
			return true
		}
	}
	return false
}

// StripFragment returns the IRI without its fragment component; non-IRI
// terms are returned unchanged. Traversal dereferences documents, so
// fragment identifiers (e.g. WebID #me) must be stripped before fetching.
func StripFragment(t Term) Term {
	if t.Kind != TermIRI {
		return t
	}
	if i := strings.IndexByte(t.Value, '#'); i >= 0 {
		return NewIRI(t.Value[:i])
	}
	return t
}

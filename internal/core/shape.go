package core

import (
	"ltqp/internal/extract"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

// ShapeOf derives the query shape used by query-driven link extractors:
// the constant predicates of all patterns (including those inside property
// paths), the classes of rdf:type patterns, and all constant subject/object
// IRIs.
func ShapeOf(q *sparql.Query) *extract.QueryShape {
	shape := &extract.QueryShape{
		Predicates: map[string]bool{},
		Classes:    map[string]bool{},
		IRIs:       map[string]bool{},
	}
	var walkPath func(p sparql.Path)
	walkPath = func(p sparql.Path) {
		switch x := p.(type) {
		case sparql.PathIRI:
			// rdf:type is handled through the Classes set: a triple
			// (x rdf:type C) only matches a class pattern when C is a
			// query class, so putting rdf:type in Predicates would make
			// cMatch follow every typed resource.
			if x.IRI != rdf.RDFType {
				shape.Predicates[x.IRI] = true
			}
		case sparql.PathInverse:
			walkPath(x.Path)
		case sparql.PathSequence:
			for _, part := range x.Parts {
				walkPath(part)
			}
		case sparql.PathAlternative:
			for _, part := range x.Parts {
				walkPath(part)
			}
		case sparql.PathZeroOrMore:
			walkPath(x.Path)
		case sparql.PathOneOrMore:
			walkPath(x.Path)
		case sparql.PathZeroOrOne:
			walkPath(x.Path)
		case sparql.PathNegated:
			// Negated sets exclude predicates; they contribute nothing.
		}
	}
	addTerm := func(t rdf.Term) {
		if t.Kind == rdf.TermIRI {
			shape.IRIs[t.Value] = true
		}
	}
	var walk func(p sparql.GraphPattern)
	walk = func(p sparql.GraphPattern) {
		switch x := p.(type) {
		case sparql.BGP:
			for _, tp := range x.Patterns {
				walkPath(tp.Path)
				addTerm(tp.S)
				addTerm(tp.O)
				if pi, ok := tp.Path.(sparql.PathIRI); ok && pi.IRI == rdf.RDFType && tp.O.Kind == rdf.TermIRI {
					shape.Classes[tp.O.Value] = true
				}
			}
		case sparql.GroupPattern:
			for _, e := range x.Elements {
				walk(e)
			}
		case sparql.OptionalPattern:
			walk(x.Pattern)
		case sparql.UnionPattern:
			walk(x.Left)
			walk(x.Right)
		case sparql.MinusPattern:
			walk(x.Pattern)
		case sparql.GraphGraphPattern:
			walk(x.Pattern)
		case sparql.SubSelect:
			if x.Query.Where != nil {
				walk(*x.Query.Where)
			}
		case sparql.FilterPattern:
			walkExpr(x.Expr, walk)
		}
	}
	if q.Where != nil {
		walk(*q.Where)
	}
	return shape
}

// walkExpr descends into EXISTS patterns inside filter expressions.
func walkExpr(e sparql.Expression, walk func(sparql.GraphPattern)) {
	switch x := e.(type) {
	case sparql.ExprExists:
		walk(x.Pattern)
	case sparql.ExprBinary:
		walkExpr(x.L, walk)
		walkExpr(x.R, walk)
	case sparql.ExprUnary:
		walkExpr(x.X, walk)
	case sparql.ExprCall:
		for _, a := range x.Args {
			walkExpr(a, walk)
		}
	case sparql.ExprIn:
		walkExpr(x.X, walk)
		for _, a := range x.List {
			walkExpr(a, walk)
		}
	}
}

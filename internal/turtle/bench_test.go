package turtle

import (
	"strings"
	"testing"

	"ltqp/internal/rdf"
)

// benchDoc is a realistic pod document: a date-fragmented posts file.
var benchDoc = func() string {
	var sb strings.Builder
	sb.WriteString("@prefix snvoc: <https://example.org/vocabulary/> .\n")
	sb.WriteString("@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n")
	for i := 0; i < 50; i++ {
		sb.WriteString("<#post")
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(">")
		sb.WriteString(` a snvoc:Post;
  snvoc:id "137438953572"^^xsd:long;
  snvoc:hasCreator <https://example.org/pods/1/profile/card#me>;
  snvoc:creationDate "2010-10-12T08:30:00.000Z"^^xsd:dateTime;
  snvoc:content "About the world of music and photos from yesterday.";
  snvoc:browserUsed "Firefox";
  snvoc:locationIP "31.41.59.26";
  snvoc:isLocatedIn <https://example.org/dbpedia.org/resource/Belgium>.
`)
	}
	return sb.String()
}()

func BenchmarkParseDocument(b *testing.B) {
	b.SetBytes(int64(len(benchDoc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchDoc, Options{Base: "https://example.org/pods/1/posts/2010-10-12"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteDocument(b *testing.B) {
	triples, err := Parse(benchDoc, Options{Base: "https://example.org/doc"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Write(triples, WriteOptions{Prefixes: rdf.CommonPrefixes})
	}
}

func BenchmarkWriteNTriples(b *testing.B) {
	triples, err := Parse(benchDoc, Options{Base: "https://example.org/doc"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WriteNTriples(triples)
	}
}

// FuzzParse feeds arbitrary inputs to the Turtle parser: it must never
// panic, and anything it accepts must re-serialize and re-parse to the
// same triple count.
func FuzzParse(f *testing.F) {
	f.Add(`<http://a> <http://p> <http://b> .`)
	f.Add(`@prefix ex: <http://example.org/> . ex:a ex:p "lit"@en, 3.14, true .`)
	f.Add(`<s> <p> ( 1 2 3 ) .`)
	f.Add(`[] <p> [ <q> "x" ] .`)
	f.Add("<http://a> <http://p> \"\"\"long\nstring\"\"\" .")
	f.Add(`@base <http://b/> . <rel> <p> <#frag> .`)
	f.Fuzz(func(t *testing.T, input string) {
		triples, err := Parse(input, Options{Base: "http://fuzz.example/doc"})
		if err != nil {
			return // rejected input is fine
		}
		out := Write(triples, WriteOptions{})
		reparsed, err := Parse(out, Options{})
		if err != nil {
			t.Fatalf("accepted input did not round-trip: %v\ninput: %q\nout: %q", err, input, out)
		}
		// Round-trip preserves the triple *set* size (duplicates collapse).
		set := map[string]bool{}
		for _, tr := range triples {
			set[tr.String()] = true
		}
		reset := map[string]bool{}
		for _, tr := range reparsed {
			reset[tr.String()] = true
		}
		if len(set) != len(reset) {
			t.Fatalf("triple set changed: %d vs %d\ninput: %q", len(set), len(reset), input)
		}
	})
}

package ltqp

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ltqp/internal/obs"
)

// waitZero polls a gauge until it reaches zero (traversal teardown — where
// abandoned queue links are subtracted — can trail the results channel
// closing by a moment).
func waitZero(t *testing.T, name string, g *obs.Gauge) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Value() != 0 {
		if time.Now().After(deadline) {
			t.Errorf("%s = %d, want 0", name, g.Value())
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// drainAll runs a query to completion and returns its result count.
func drainAll(t *testing.T, engine *Engine, query string) (*Result, int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := engine.Query(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range res.Results {
		n++
	}
	return res, n
}

// TestObserverMetricsMatchRecorder is the core consistency contract of the
// observability subsystem: the process-level registry's counters and the
// ltqp_deref_duration_seconds histogram must agree with the per-query
// recorder (the source of --stats and the waterfall).
func TestObserverMetricsMatchRecorder(t *testing.T) {
	env := testEnv(t)
	observer := NewObserver()
	engine := New(Config{Client: env.Client(), Lenient: true, Obs: observer, CacheDocuments: 256})
	q := env.Dataset.Discover(1, 1)

	res1, n1 := drainAll(t, engine, q.Text)
	s1 := res1.Stats()
	res2, n2 := drainAll(t, engine, q.Text)
	s2 := res2.Stats()

	m := observer.Metrics
	if got := m.QueriesStarted.Value(); got != 2 {
		t.Errorf("queries_total = %d, want 2", got)
	}
	if got := m.QueriesSucceeded.Value(); got != 2 {
		t.Errorf("queries_succeeded_total = %d, want 2", got)
	}
	if got := m.QueriesInFlight.Value(); got != 0 {
		t.Errorf("queries_in_flight = %d, want 0", got)
	}
	if got := m.ResultsEmitted.Value(); got != int64(n1+n2) {
		t.Errorf("results_total = %d, want %d", got, n1+n2)
	}

	// The dereference histogram's count equals the successful requests
	// (network + cache) both runs saw — the "--stats document count".
	wantDocs := int64((s1.Requests - s1.Failed) + (s2.Requests - s2.Failed))
	if got := m.DerefDuration.Count(); got != wantDocs {
		t.Errorf("deref_duration_seconds count = %d, want %d", got, wantDocs)
	}

	// Run 2 was served from the document cache.
	if s2.CacheHits == 0 {
		t.Error("second run should have per-run cache hits in Stats")
	}
	hits, misses, enabled := res2.CacheStats()
	if !enabled || hits == 0 {
		t.Errorf("engine cache stats = %d/%d enabled=%t", hits, misses, enabled)
	}
	if got := m.CacheHits.Value(); got != int64(s1.CacheHits+s2.CacheHits) {
		t.Errorf("cache_hits_total = %d, want %d", got, s1.CacheHits+s2.CacheHits)
	}
	if m.DocumentsFetched.Value() == 0 || m.TriplesParsed.Value() == 0 {
		t.Error("documents/triples counters not incremented")
	}
	waitZero(t, "link_queue_depth", m.LinkQueueDepth)
	if m.LinksQueued.Value() == 0 {
		t.Error("links_queued_total not incremented")
	}

	// Prometheus exposition carries the required families.
	var b strings.Builder
	if err := observer.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"ltqp_queries_total 2",
		"ltqp_documents_fetched_total",
		"ltqp_cache_hits_total",
		fmt.Sprintf("ltqp_deref_duration_seconds_count %d", wantDocs),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTraceMatchesWaterfall asserts the acceptance contract of --trace:
// the span tree's dereference spans equal the metrics waterfall rows of
// the same run, and the tree covers parse → plan → traverse → exec.
func TestTraceMatchesWaterfall(t *testing.T) {
	env := testEnv(t)
	engine := New(Config{Client: env.Client(), Lenient: true, Trace: true})
	q := env.Dataset.Discover(1, 1)
	res, _ := drainAll(t, engine, q.Text)

	trace := res.Trace()
	if trace == nil {
		t.Fatal("no trace despite Config.Trace")
	}
	root := trace.Root()
	for _, stage := range []string{"parse", "plan", "traverse", "exec"} {
		if root.Count(stage) != 1 {
			t.Errorf("span %q count = %d, want 1", stage, root.Count(stage))
		}
	}
	rows := len(res.Metrics().Requests())
	if got := root.Count("deref"); got != rows {
		t.Errorf("deref spans = %d, waterfall rows = %d", got, rows)
	}
	if got := root.Count("document"); got == 0 {
		t.Error("no document spans")
	}
	if root.Count("scan") == 0 {
		t.Error("no iterator-stage spans under exec")
	}

	// The JSON export round-trips and preserves the deref count.
	data, err := trace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var envelope obs.TraceJSON
	if err := json.Unmarshal(data, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Schema != obs.TraceSchemaVersion {
		t.Errorf("trace schema = %d, want %d", envelope.Schema, obs.TraceSchemaVersion)
	}
	count := 0
	var walk func(obs.SpanJSON)
	walk = func(s obs.SpanJSON) {
		if s.Name == "deref" {
			count++
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(envelope.Root)
	if count != rows {
		t.Errorf("JSON deref spans = %d, want %d", count, rows)
	}
}

// TestUntracedQueryHasNoTrace pins the opt-out: without Config.Trace or an
// observer, executions carry no span tree.
func TestUntracedQueryHasNoTrace(t *testing.T) {
	env := testEnv(t)
	engine := New(Config{Client: env.Client(), Lenient: true})
	q := env.Dataset.Discover(1, 1)
	res, _ := drainAll(t, engine, q.Text)
	if res.Trace() != nil {
		t.Fatal("trace recorded without opt-in")
	}
	if _, _, enabled := res.CacheStats(); enabled {
		t.Fatal("cache stats enabled without a cache")
	}
}

// TestConcurrentQueriesAggregateCleanly runs N parallel queries against
// one engine (exercised under -race by make verify) and asserts that the
// registry counters sum correctly across queries and that each query's
// span tree is self-contained — its dereference spans match its own
// recorder, with no spans leaking between concurrent traces.
func TestConcurrentQueriesAggregateCleanly(t *testing.T) {
	env := testEnv(t)
	observer := NewObserver()
	engine := New(Config{Client: env.Client(), Lenient: true, Obs: observer})

	const n = 8
	type outcome struct {
		results int
		rows    int
		deref   int
		stats   int // successful requests
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := env.Dataset.Discover(1+i%4, 1)
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			res, err := engine.Query(ctx, q.Text)
			if err != nil {
				t.Error(err)
				return
			}
			count := 0
			for range res.Results {
				count++
			}
			s := res.Stats()
			outcomes[i] = outcome{
				results: count,
				rows:    len(res.Metrics().Requests()),
				deref:   res.Trace().Root().Count("deref"),
				stats:   s.Requests - s.Failed,
			}
		}(i)
	}
	wg.Wait()

	var totalResults, totalDocs int
	for i, o := range outcomes {
		if o.deref != o.rows {
			t.Errorf("query %d: %d deref spans vs %d waterfall rows (span trees interleaved?)", i, o.deref, o.rows)
		}
		totalResults += o.results
		totalDocs += o.stats
	}
	m := observer.Metrics
	if got := m.QueriesStarted.Value(); got != n {
		t.Errorf("queries_total = %d, want %d", got, n)
	}
	if got := m.QueriesSucceeded.Value(); got != n {
		t.Errorf("queries_succeeded_total = %d, want %d", got, n)
	}
	if got := m.ResultsEmitted.Value(); got != int64(totalResults) {
		t.Errorf("results_total = %d, want %d", got, totalResults)
	}
	if got := m.DerefDuration.Count(); got != int64(totalDocs) {
		t.Errorf("deref histogram count = %d, want %d", got, totalDocs)
	}
	if got := m.QueriesInFlight.Value(); got != 0 {
		t.Errorf("queries_in_flight = %d, want 0", got)
	}
	waitZero(t, "link_queue_depth", m.LinkQueueDepth)
	// Every query is tracked in recent, none in flight.
	if got := len(observer.Tracker.Recent()); got != n {
		t.Errorf("tracker recent = %d, want %d", got, n)
	}
	if got := len(observer.Tracker.InFlight()); got != 0 {
		t.Errorf("tracker in-flight = %d, want 0", got)
	}
}

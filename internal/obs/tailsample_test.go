package obs

import (
	"fmt"
	"testing"
	"time"
)

func outcome(id string, dur time.Duration) TraceOutcome {
	return TraceOutcome{TraceID: id, Duration: dur, Results: 1}
}

func TestTailSampleAlwaysKeepReasons(t *testing.T) {
	s := NewTraceStore(TraceStoreOptions{Seed: 1, SampleRate: -1})
	cases := []struct {
		name   string
		o      TraceOutcome
		reason string
	}{
		{"budget", TraceOutcome{TraceID: "b", BudgetExceeded: true, Err: "budget"}, "budget"},
		{"error", TraceOutcome{TraceID: "e", Err: "boom"}, "error"},
		{"degraded", TraceOutcome{TraceID: "d", Degraded: true}, "degraded"},
	}
	for _, c := range cases {
		kept, reason := s.Offer(c.o, nil)
		if !kept || reason != c.reason {
			t.Errorf("%s: kept=%v reason=%q, want kept with %q", c.name, kept, reason, c.reason)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if got := s.Get("e"); got == nil || got.KeepReason != "error" {
		t.Errorf("Get(e) = %+v", got)
	}
}

func TestTailSampleFillOnlyOnKeep(t *testing.T) {
	s := NewTraceStore(TraceStoreOptions{Seed: 1, SampleRate: -1})
	fills := 0
	fill := func(r *TraceRecord) { fills++; r.Requests = []RequestJSON{{URL: "x"}} }
	if kept, _ := s.Offer(outcome("fast", time.Millisecond), fill); kept {
		t.Fatal("healthy fast query kept with sampling disabled")
	}
	if fills != 0 {
		t.Fatal("fill invoked for a dropped trace")
	}
	if kept, _ := s.Offer(TraceOutcome{TraceID: "err", Err: "x"}, fill); !kept {
		t.Fatal("error outcome dropped")
	}
	if fills != 1 {
		t.Fatalf("fill invocations = %d, want 1", fills)
	}
	if rec := s.Get("err"); rec == nil || len(rec.Requests) != 1 {
		t.Fatal("fill result not visible on the kept record")
	}
}

// TestTailSampleKeepsSlowUnderBurst reproduces the acceptance scenario: a
// 256-query burst of fast healthy queries plus one calibrated-slow query.
// The slow one must survive with reason "slow" while at least 90% of the
// fast ones are dropped.
func TestTailSampleKeepsSlowUnderBurst(t *testing.T) {
	s := NewTraceStore(TraceStoreOptions{Seed: 42, Capacity: 512})
	fastKept := 0
	for i := 0; i < 256; i++ {
		// Healthy latencies jitter around 10ms — well inside p95*factor.
		d := 10*time.Millisecond + time.Duration(i%8)*time.Millisecond
		if kept, reason := s.Offer(outcome(fmt.Sprintf("fast-%d", i), d), nil); kept {
			if reason != "sampled" {
				t.Fatalf("fast query %d kept with reason %q", i, reason)
			}
			fastKept++
		}
	}
	kept, reason := s.Offer(outcome("calibrated-slow", 500*time.Millisecond), nil)
	if !kept || reason != "slow" {
		t.Fatalf("slow query: kept=%v reason=%q, want kept as slow", kept, reason)
	}
	if rec := s.Get("calibrated-slow"); rec == nil || rec.KeepReason != "slow" {
		t.Fatal("slow trace not retrievable from the store")
	}
	if max := 256 / 10; fastKept > max {
		t.Errorf("fast keeps = %d (> %d): tail sampling must drop >= 90%% of healthy traffic", fastKept, max)
	}
	if s.Seen() != 257 {
		t.Errorf("Seen = %d, want 257", s.Seen())
	}
}

func TestTailSampleRingEviction(t *testing.T) {
	s := NewTraceStore(TraceStoreOptions{Seed: 1, Capacity: 4, SampleRate: -1})
	for i := 0; i < 10; i++ {
		s.Offer(TraceOutcome{TraceID: fmt.Sprintf("t%d", i), Err: "x"}, nil)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", s.Len())
	}
	keptIDs := s.Kept()
	if keptIDs[0].TraceID != "t9" || keptIDs[3].TraceID != "t6" {
		t.Errorf("Kept order wrong: %s .. %s, want newest first t9 .. t6", keptIDs[0].TraceID, keptIDs[3].TraceID)
	}
	if s.Get("t0") != nil {
		t.Error("evicted trace still retrievable")
	}
}

func TestTailSampleNilStore(t *testing.T) {
	var s *TraceStore
	if kept, _ := s.Offer(TraceOutcome{Err: "x"}, nil); kept {
		t.Error("nil store kept a trace")
	}
	if s.Kept() != nil || s.Get("x") != nil || s.Len() != 0 || s.Seen() != 0 {
		t.Error("nil store accessors must be inert")
	}
}

func TestTailSampleMetricsCounters(t *testing.T) {
	m := NewMetrics(NewRegistry())
	s := NewTraceStore(TraceStoreOptions{Seed: 1, SampleRate: -1, Metrics: m})
	s.Offer(TraceOutcome{TraceID: "a", Err: "x"}, nil)
	s.Offer(outcome("b", time.Millisecond), nil)
	if got := m.TracesKept.With("error").Value(); got != 1 {
		t.Errorf("kept counter = %v, want 1", got)
	}
	if got := m.TracesDropped.Value(); got != 1 {
		t.Errorf("dropped counter = %v, want 1", got)
	}
}

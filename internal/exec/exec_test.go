package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"ltqp/internal/algebra"
	"ltqp/internal/plan"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
	"ltqp/internal/turtle"
)

// runQuery evaluates a query over a closed store seeded with the given
// Turtle data and returns all solutions.
func runQuery(t *testing.T, data, query string) []rdf.Binding {
	t.Helper()
	src := store.New()
	triples, err := turtle.Parse(data, turtle.Options{Base: "http://example.org/doc"})
	if err != nil {
		t.Fatalf("data parse: %v", err)
	}
	src.AddDocument("http://example.org/doc", triples)
	src.Close()
	return runQueryOn(t, src, query)
}

func runQueryOn(t *testing.T, src *store.Store, query string) []rdf.Binding {
	t.Helper()
	q, err := sparql.ParseQuery(query)
	if err != nil {
		t.Fatalf("query parse: %v", err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	op = plan.New(nil).Optimize(op)
	env := NewEnv(src)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var out []rdf.Binding
	for b := range Eval(ctx, op, env) {
		out = append(out, b)
	}
	if ctx.Err() != nil {
		t.Fatal("query timed out (pipeline deadlock?)")
	}
	return out
}

// sortedValues extracts and sorts the string renderings of a variable.
func sortedValues(bs []rdf.Binding, v string) []string {
	var out []string
	for _, b := range bs {
		if t, ok := b.Get(v); ok {
			out = append(out, t.String())
		} else {
			out = append(out, "UNBOUND")
		}
	}
	sort.Strings(out)
	return out
}

const peopleData = `
@prefix ex: <http://example.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
ex:alice a foaf:Person ; foaf:name "Alice" ; foaf:knows ex:bob, ex:carol ; ex:age 30 .
ex:bob a foaf:Person ; foaf:name "Bob" ; foaf:knows ex:carol ; ex:age 25 .
ex:carol a foaf:Person ; foaf:name "Carol" ; ex:age 35 .
ex:dave a foaf:Person ; foaf:name "Dave" ; ex:age 25 ; foaf:nick "d" .
`

func TestBGPJoin(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?n1 ?n2 WHERE {
  ?p1 foaf:knows ?p2 .
  ?p1 foaf:name ?n1 .
  ?p2 foaf:name ?n2 .
}`)
	if len(got) != 3 {
		t.Fatalf("solutions = %d, want 3: %v", len(got), got)
	}
	pairs := map[string]bool{}
	for _, b := range got {
		pairs[b["n1"].Value+"-"+b["n2"].Value] = true
	}
	for _, want := range []string{"Alice-Bob", "Alice-Carol", "Bob-Carol"} {
		if !pairs[want] {
			t.Errorf("missing pair %s (have %v)", want, pairs)
		}
	}
}

func TestFilterComparisons(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE {
  ?p foaf:name ?name ; ex:age ?age .
  FILTER(?age >= 30)
}`)
	if vals := sortedValues(got, "name"); len(vals) != 2 || vals[0] != `"Alice"` || vals[1] != `"Carol"` {
		t.Errorf("names = %v", vals)
	}
}

func TestOptional(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name ?nick WHERE {
  ?p foaf:name ?name .
  OPTIONAL { ?p foaf:nick ?nick }
}`)
	if len(got) != 4 {
		t.Fatalf("solutions = %d, want 4", len(got))
	}
	withNick := 0
	for _, b := range got {
		if b.Has("nick") {
			withNick++
			if b["name"].Value != "Dave" {
				t.Errorf("unexpected nick for %v", b)
			}
		}
	}
	if withNick != 1 {
		t.Errorf("withNick = %d", withNick)
	}
}

func TestOptionalWithInnerFilter(t *testing.T) {
	// The filter inside OPTIONAL conditions the join, not the outer rows.
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name ?oage WHERE {
  ?p foaf:name ?name ; ex:age ?age .
  OPTIONAL { ?p foaf:knows ?o . ?o ex:age ?oage . FILTER(?oage > ?age) }
}`)
	// Alice knows Bob(25) and Carol(35): only Carol passes -> 1 extended row.
	// Bob knows Carol(35>25) -> extended. Carol, Dave -> bare.
	if len(got) != 4 {
		t.Fatalf("solutions = %d, want 4: %v", len(got), got)
	}
	extended := 0
	for _, b := range got {
		if b.Has("oage") {
			extended++
		}
	}
	if extended != 2 {
		t.Errorf("extended = %d, want 2", extended)
	}
}

func TestUnionDistinct(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT DISTINCT ?x WHERE {
  { ex:alice foaf:knows ?x } UNION { ex:bob foaf:knows ?x }
}`)
	if vals := sortedValues(got, "x"); len(vals) != 2 {
		t.Errorf("distinct union = %v", vals)
	}
}

func TestMinus(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p WHERE {
  ?p a foaf:Person .
  MINUS { ?x foaf:knows ?p }
}`)
	// Alice and Dave are never known by anyone.
	vals := sortedValues(got, "p")
	if len(vals) != 2 || !strings.Contains(vals[0], "alice") || !strings.Contains(vals[1], "dave") {
		t.Errorf("minus = %v", vals)
	}
}

func TestBindAndExpr(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name ?double WHERE {
  ?p foaf:name ?name ; ex:age ?age .
  BIND(?age * 2 AS ?double)
  FILTER(?double = 50)
}`)
	if len(got) != 2 {
		t.Fatalf("solutions = %d, want 2 (Bob and Dave)", len(got))
	}
}

func TestValuesJoin(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE {
  VALUES ?p { ex:alice ex:carol }
  ?p foaf:name ?name .
}`)
	if vals := sortedValues(got, "name"); len(vals) != 2 || vals[0] != `"Alice"` {
		t.Errorf("values join = %v", vals)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE { ?p foaf:name ?name ; ex:age ?age }
ORDER BY DESC(?age) ?name
LIMIT 2 OFFSET 1`)
	if len(got) != 2 {
		t.Fatalf("solutions = %d", len(got))
	}
	// Ages: Carol 35, Alice 30, Bob 25, Dave 25. Offset 1 → Alice, Bob.
	if got[0]["name"].Value != "Alice" || got[1]["name"].Value != "Bob" {
		t.Errorf("order = %v, %v", got[0], got[1])
	}
}

func TestAggregates(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?age (COUNT(?p) AS ?n) WHERE {
  ?p ex:age ?age .
} GROUP BY ?age ORDER BY ?age`)
	if len(got) != 3 {
		t.Fatalf("groups = %d: %v", len(got), got)
	}
	// age 25 → 2 people.
	if got[0]["age"].Value != "25" || got[0]["n"].Value != "2" {
		t.Errorf("group 0 = %v", got[0])
	}
}

func TestAggregateFunctions(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
SELECT (COUNT(*) AS ?n) (SUM(?age) AS ?sum) (AVG(?age) AS ?avg)
       (MIN(?age) AS ?min) (MAX(?age) AS ?max) WHERE {
  ?p ex:age ?age .
}`)
	if len(got) != 1 {
		t.Fatalf("groups = %d", len(got))
	}
	b := got[0]
	if b["n"].Value != "4" || b["sum"].Value != "115" || b["min"].Value != "25" || b["max"].Value != "35" {
		t.Errorf("aggregates = %v", b)
	}
	if avg, err := b["avg"].Float(); err != nil || avg != 28.75 {
		t.Errorf("avg = %v (%v)", b["avg"], err)
	}
}

func TestHaving(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
SELECT ?age WHERE { ?p ex:age ?age } GROUP BY ?age HAVING(COUNT(?p) > 1)`)
	if len(got) != 1 || got[0]["age"].Value != "25" {
		t.Errorf("having = %v", got)
	}
}

func TestGroupConcatAndSample(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT (GROUP_CONCAT(?name; SEPARATOR="|") AS ?all) (SAMPLE(?name) AS ?one) WHERE {
  ?p foaf:name ?name .
}`)
	if len(got) != 1 {
		t.Fatalf("groups = %d", len(got))
	}
	parts := strings.Split(got[0]["all"].Value, "|")
	if len(parts) != 4 {
		t.Errorf("group_concat = %q", got[0]["all"].Value)
	}
	if !got[0].Has("one") {
		t.Error("sample missing")
	}
}

func TestCountEmptyGroup(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
SELECT (COUNT(?p) AS ?n) WHERE { ?p ex:nonexistent ?x }`)
	if len(got) != 1 || got[0]["n"].Value != "0" {
		t.Errorf("count over empty = %v", got)
	}
}

func TestPropertyPathAlternative(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT DISTINCT ?v WHERE {
  ex:dave (foaf:name|foaf:nick) ?v .
}`)
	if vals := sortedValues(got, "v"); len(vals) != 2 {
		t.Errorf("alternative = %v", vals)
	}
}

func TestPropertyPathSequence(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT DISTINCT ?n WHERE { ex:alice foaf:knows/foaf:name ?n }`)
	if vals := sortedValues(got, "n"); len(vals) != 2 || vals[0] != `"Bob"` || vals[1] != `"Carol"` {
		t.Errorf("sequence = %v", vals)
	}
}

func TestPropertyPathInverse(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?who WHERE { ex:carol ^foaf:knows ?who }`)
	if vals := sortedValues(got, "who"); len(vals) != 2 {
		t.Errorf("inverse = %v", vals)
	}
}

func TestPropertyPathTransitive(t *testing.T) {
	data := `
@prefix ex: <http://example.org/> .
ex:a ex:next ex:b . ex:b ex:next ex:c . ex:c ex:next ex:d .
`
	got := runQuery(t, data, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ex:a ex:next+ ?x }`)
	if vals := sortedValues(got, "x"); len(vals) != 3 {
		t.Errorf("oneOrMore = %v", vals)
	}
	got = runQuery(t, data, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ex:a ex:next* ?x }`)
	if vals := sortedValues(got, "x"); len(vals) != 4 {
		t.Errorf("zeroOrMore = %v (should include ex:a)", vals)
	}
	// Reverse direction: which nodes reach d?
	got = runQuery(t, data, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ?x ex:next+ ex:d }`)
	if vals := sortedValues(got, "x"); len(vals) != 3 {
		t.Errorf("reverse oneOrMore = %v", vals)
	}
}

func TestPropertyPathZeroOrOne(t *testing.T) {
	data := `
@prefix ex: <http://example.org/> .
ex:a ex:next ex:b . ex:b ex:next ex:c .
`
	got := runQuery(t, data, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ex:a ex:next? ?x }`)
	if vals := sortedValues(got, "x"); len(vals) != 2 {
		t.Errorf("zeroOrOne = %v", vals)
	}
}

func TestNegatedPropertySet(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT DISTINCT ?o WHERE { ex:dave !(rdf:type|foaf:name) ?o }`)
	// dave has type, name, age, nick → age + nick remain.
	if vals := sortedValues(got, "o"); len(vals) != 2 {
		t.Errorf("negated = %v", vals)
	}
}

func TestExistsNotExists(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE {
  ?p foaf:name ?name .
  FILTER EXISTS { ?p foaf:knows ?x }
}`)
	if vals := sortedValues(got, "name"); len(vals) != 2 {
		t.Errorf("exists = %v", vals)
	}
	got = runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE {
  ?p foaf:name ?name .
  FILTER NOT EXISTS { ?p foaf:knows ?x }
}`)
	if vals := sortedValues(got, "name"); len(vals) != 2 {
		t.Errorf("not exists = %v", vals)
	}
}

func TestSubSelect(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name ?cnt WHERE {
  ?p foaf:name ?name .
  { SELECT ?p (COUNT(?x) AS ?cnt) WHERE { ?p foaf:knows ?x } GROUP BY ?p }
}`)
	if len(got) != 2 {
		t.Fatalf("subselect join = %v", got)
	}
	counts := map[string]string{}
	for _, b := range got {
		counts[b["name"].Value] = b["cnt"].Value
	}
	if counts["Alice"] != "2" || counts["Bob"] != "1" {
		t.Errorf("counts = %v", counts)
	}
}

func TestProjectionExpression(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT (UCASE(?name) AS ?u) WHERE { ex:alice foaf:name ?name }`)
	if len(got) != 1 || got[0]["u"].Value != "ALICE" {
		t.Errorf("projection expr = %v", got)
	}
}

func TestSelectStarKeepsAllVars(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT * WHERE { ?p foaf:nick ?nick }`)
	if len(got) != 1 || !got[0].Has("p") || !got[0].Has("nick") {
		t.Errorf("select * = %v", got)
	}
}

func TestAskViaLimit(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
ASK { ?p foaf:nick "d" }`)
	if len(got) != 1 {
		t.Errorf("ask true = %v", got)
	}
	got = runQuery(t, peopleData, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
ASK { ?p foaf:nick "nope" }`)
	if len(got) != 0 {
		t.Errorf("ask false = %v", got)
	}
}

func TestBlankNodeInQueryActsAsVariable(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE {
  _:someone foaf:knows ?q .
  ?q foaf:name ?name .
}`)
	if vals := sortedValues(got, "name"); len(vals) != 3 {
		t.Errorf("blank node patterns = %v", vals)
	}
}

func TestPipelineOverGrowingStore(t *testing.T) {
	// The defining behaviour of the engine: results stream out while the
	// source is still growing, and the first result arrives before the
	// source closes.
	src := store.New()
	ex := "http://example.org/"
	add := func(s, p, o string) {
		src.Add(rdf.NewTriple(rdf.NewIRI(ex+s), rdf.NewIRI(ex+p), rdf.NewIRI(ex+o)), rdf.NewIRI(ex+"doc"))
	}
	add("m1", "hasCreator", "me")
	add("f1", "containerOf", "m1")

	q, err := sparql.ParseQuery(`
PREFIX ex: <http://example.org/>
SELECT ?f WHERE { ?m ex:hasCreator ex:me . ?f ex:containerOf ?m . }`)
	if err != nil {
		t.Fatal(err)
	}
	op, _ := algebra.Translate(q)
	env := NewEnv(src)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	results := Eval(ctx, op, env)

	// First result must arrive while the store is still open.
	select {
	case b := <-results:
		if b["f"] != rdf.NewIRI(ex+"f1") {
			t.Errorf("first = %v", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result before store close: pipeline is not incremental")
	}

	// Feed more matching data; it must flow through the same pipeline.
	add("m2", "hasCreator", "me")
	add("f2", "containerOf", "m2")
	select {
	case b := <-results:
		if b["f"] != rdf.NewIRI(ex+"f2") {
			t.Errorf("second = %v", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live addition did not produce a result")
	}

	src.Close()
	if _, ok := <-results; ok {
		t.Error("stream should close after store closes")
	}
}

func TestLimitCancelsUpstream(t *testing.T) {
	// LIMIT must terminate the query even though the store never closes.
	src := store.New()
	ex := "http://example.org/"
	for i := 0; i < 10; i++ {
		src.Add(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("%ss%d", ex, i)), rdf.NewIRI(ex+"p"), rdf.NewIRI(ex+"o")), rdf.NewIRI(ex+"doc"))
	}
	q, _ := sparql.ParseQuery(`PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ex:o } LIMIT 3`)
	op, _ := algebra.Translate(q)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var n int
	for range Eval(ctx, op, NewEnv(src)) {
		n++
	}
	if ctx.Err() != nil {
		t.Fatal("LIMIT did not terminate against an open store")
	}
	if n != 3 {
		t.Errorf("results = %d, want 3", n)
	}
}

func TestOptionalBareRowsWaitForCompletion(t *testing.T) {
	// Bare rows of OPTIONAL must not be emitted before the source closes —
	// a late match could still arrive.
	src := store.New()
	ex := "http://example.org/"
	src.Add(rdf.NewTriple(rdf.NewIRI(ex+"a"), rdf.NewIRI(ex+"name"), rdf.NewLiteral("A")), rdf.NewIRI(ex+"doc"))
	q, _ := sparql.ParseQuery(`PREFIX ex: <http://example.org/>
SELECT ?name ?nick WHERE { ?p ex:name ?name OPTIONAL { ?p ex:nick ?nick } }`)
	op, _ := algebra.Translate(q)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	results := Eval(ctx, op, NewEnv(src))

	select {
	case b := <-results:
		t.Fatalf("premature emission: %v", b)
	case <-time.After(50 * time.Millisecond):
	}
	// The nick arrives late; the left row must join, not appear bare.
	src.Add(rdf.NewTriple(rdf.NewIRI(ex+"a"), rdf.NewIRI(ex+"nick"), rdf.NewLiteral("nick-a")), rdf.NewIRI(ex+"doc"))
	src.Close()
	var all []rdf.Binding
	for b := range results {
		all = append(all, b)
	}
	if len(all) != 1 || all[0]["nick"].Value != "nick-a" {
		t.Errorf("results = %v", all)
	}
}

func TestDistinctStreamsIncrementally(t *testing.T) {
	src := store.New()
	ex := "http://example.org/"
	src.Add(rdf.NewTriple(rdf.NewIRI(ex+"s"), rdf.NewIRI(ex+"p"), rdf.NewLiteral("v")), rdf.NewIRI(ex+"d1"))
	q, _ := sparql.ParseQuery(`PREFIX ex: <http://example.org/>
SELECT DISTINCT ?o WHERE { ?s ex:p ?o }`)
	op, _ := algebra.Translate(q)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	results := Eval(ctx, op, NewEnv(src))
	select {
	case b := <-results:
		if b["o"].Value != "v" {
			t.Errorf("got %v", b)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("DISTINCT blocked the pipeline")
	}
	src.Close()
}

func TestCartesianProductJoin(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?a ?b WHERE { ex:alice foaf:name ?a . ex:bob foaf:name ?b . }`)
	if len(got) != 1 || got[0]["a"].Value != "Alice" || got[0]["b"].Value != "Bob" {
		t.Errorf("cartesian = %v", got)
	}
}

func TestReduced(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
SELECT REDUCED ?o WHERE { ?s ex:age ?o }`)
	if len(got) == 0 || len(got) > 4 {
		t.Errorf("reduced = %d rows", len(got))
	}
}

func TestVariablePredicateQuery(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
SELECT ?p ?o WHERE { ex:dave ?p ?o }`)
	if len(got) != 4 {
		t.Errorf("var predicate = %d rows", len(got))
	}
}

func TestInExpression(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE { ?p foaf:name ?name FILTER(?name IN ("Alice", "Bob")) }`)
	if len(got) != 2 {
		t.Errorf("IN = %v", got)
	}
	got = runQuery(t, peopleData, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE { ?p foaf:name ?name FILTER(?name NOT IN ("Alice", "Bob")) }`)
	if len(got) != 2 {
		t.Errorf("NOT IN = %v", got)
	}
}

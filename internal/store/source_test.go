package store

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ltqp/internal/rdf"
)

func TestSourceAttribution(t *testing.T) {
	s := New()
	tr := rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewIRI("http://x/o"))
	if _, ok := s.Source(tr); ok {
		t.Fatal("Source found an unknown triple")
	}
	s.Add(tr, rdf.NewIRI("http://pod/first.ttl"))
	src, ok := s.Source(tr)
	if !ok || src.Value != "http://pod/first.ttl" {
		t.Fatalf("Source = %v, %v", src, ok)
	}
}

// TestSourceFirstWriterWins: a duplicate triple from a second document must
// not steal attribution — the solution's provenance names the document that
// actually contributed the triple to the store.
func TestSourceFirstWriterWins(t *testing.T) {
	s := New()
	tr := rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewIRI("http://x/o"))
	if !s.Add(tr, rdf.NewIRI("http://pod/first.ttl")) {
		t.Fatal("first Add rejected")
	}
	if s.Add(tr, rdf.NewIRI("http://pod/second.ttl")) {
		t.Fatal("duplicate Add accepted")
	}
	src, ok := s.Source(tr)
	if !ok || src.Value != "http://pod/first.ttl" {
		t.Fatalf("attribution stolen by duplicate: %v", src)
	}
}

// TestSourceConcurrent hammers Add, Match and Source from many goroutines
// (run under -race): every attributed source must be one of the documents
// that actually inserted the triple, and duplicates across workers must
// resolve to a single stable attribution.
func TestSourceConcurrent(t *testing.T) {
	s := New()
	const workers = 8
	const triplesPerWorker = 200
	p := rdf.NewIRI("http://x/p")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			doc := rdf.NewIRI(fmt.Sprintf("http://pod/doc%d.ttl", w))
			for i := 0; i < triplesPerWorker; i++ {
				// Half the key space is shared across workers, forcing
				// duplicate insertions under contention.
				tr := rdf.NewTriple(
					rdf.NewIRI(fmt.Sprintf("http://x/s%d", i%(triplesPerWorker/2))),
					p,
					rdf.NewIRI(fmt.Sprintf("http://x/o%d", i)),
				)
				s.Add(tr, doc)
				if src, ok := s.Source(tr); !ok || src.Value == "" {
					t.Errorf("triple lost its source under concurrency")
					return
				}
			}
		}(w)
	}
	// A reader drains a live iterator while writers insert.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		it := s.Match(rdf.NewTriple(rdf.NewVar("s"), p, rdf.NewVar("o")))
		defer it.Close()
		for {
			tr, ok := it.Next(context.Background())
			if !ok {
				return
			}
			if src, ok := s.Source(tr); !ok || src.Value == "" {
				t.Error("matched triple has no source")
				return
			}
		}
	}()
	wg.Wait()
	s.Close()
	<-readerDone

	// Attribution is stable after the dust settles: re-query every triple.
	for _, tr := range s.MatchNow(rdf.NewTriple(rdf.NewVar("s"), p, rdf.NewVar("o"))) {
		src, ok := s.Source(tr)
		if !ok {
			t.Fatalf("no source for stored triple %v", tr)
		}
		if src.Kind != rdf.TermIRI {
			t.Fatalf("source is not an IRI: %v", src)
		}
	}
}

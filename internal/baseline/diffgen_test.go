package baseline

import (
	"fmt"
	"math/rand"
	"strings"

	"ltqp/internal/solidbench"
)

// diffGen deterministically generates SELECT queries over a SolidBench
// dataset for differential testing: every generated query must produce the
// exact same solution multiset on the live traversal engine (seeded with
// every document) and on the centralized oracle store.
//
// Generated queries are restricted to a sublanguage where the two systems
// are observationally equivalent:
//
//   - Every subject variable of every group is anchored by a pattern that
//     can only bind IRIs (rdf:type Post/Comment/Person, or snvoc:hasCreator,
//     or a fixed WebID subject). The dataset's only blank nodes are its
//     "likes" reification nodes, and blank node labels legitimately differ
//     between the two systems (the traversal parser scopes labels per
//     document), so queries must never bind one.
//   - No LIMIT/OFFSET: results compare as multisets (ORDER BY is allowed —
//     it cannot change the multiset, only the order, which the comparison
//     discards anyway).
//   - Aggregates are restricted to the order-insensitive folds over exact
//     values: COUNT, MIN/MAX, and SUM over the dataset's integer ids.
//     SAMPLE and GROUP_CONCAT depend on encounter order and would diff
//     spuriously between the two systems.
//   - Groups use BGPs, OPTIONAL, FILTER, UNION, MINUS (always sharing the
//     anchored subject variable), GROUP BY, ORDER BY, and property paths
//     (anchored snvoc:knows+ closures and replyOf/hasCreator sequences) —
//     the constructs the vectorized executor rewrites or bridges.
type diffGen struct {
	r  *rand.Rand
	ds *solidbench.Dataset
	ns string
}

func newDiffGen(seed int64, ds *solidbench.Dataset) *diffGen {
	v := solidbench.Vocab{Host: ds.Config.Host}
	return &diffGen{r: rand.New(rand.NewSource(seed)), ds: ds, ns: v.NS()}
}

func (g *diffGen) prefix() string {
	return fmt.Sprintf("PREFIX snvoc: <%s>\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n", g.ns)
}

func (g *diffGen) person() string {
	return "<" + g.ds.WebID(g.r.Intn(g.ds.Config.Persons)) + ">"
}

// pick returns a random size-n subset (order preserved) of options.
func (g *diffGen) pick(options []string, n int) []string {
	idx := g.r.Perm(len(options))[:n]
	chosen := make(map[int]bool, n)
	for _, i := range idx {
		chosen[i] = true
	}
	out := make([]string, 0, n)
	for i, o := range options {
		if chosen[i] {
			out = append(out, o)
		}
	}
	return out
}

// messageAttrs are predicates of post/comment resources paired with the
// variable each binds.
var messageAttrs = []string{"content", "creationDate", "browserUsed", "locationIP", "id"}

// personAttrs are predicates of person profiles.
var personAttrs = []string{"firstName", "lastName", "gender", "browserUsed", "locationIP"}

// messageStar generates an anchored star BGP about ?m and returns the
// pattern text plus the attribute variables it binds.
func (g *diffGen) messageStar(mv string) (string, []string) {
	n := 1 + g.r.Intn(3)
	attrs := g.pick(messageAttrs, n)
	var b strings.Builder
	fmt.Fprintf(&b, "  ?%s snvoc:hasCreator %s .\n", mv, g.person())
	if g.r.Intn(2) == 0 {
		kind := "Post"
		if g.r.Intn(2) == 0 {
			kind = "Comment"
		}
		fmt.Fprintf(&b, "  ?%s rdf:type snvoc:%s .\n", mv, kind)
	}
	vars := make([]string, 0, n)
	for _, a := range attrs {
		v := mv + "_" + a
		fmt.Fprintf(&b, "  ?%s snvoc:%s ?%s .\n", mv, a, v)
		vars = append(vars, v)
	}
	return b.String(), vars
}

// personStar generates an anchored star BGP about ?p.
func (g *diffGen) personStar(pv string) (string, []string) {
	n := 1 + g.r.Intn(3)
	attrs := g.pick(personAttrs, n)
	var b strings.Builder
	fmt.Fprintf(&b, "  ?%s rdf:type snvoc:Person .\n", pv)
	vars := make([]string, 0, n)
	for _, a := range attrs {
		v := pv + "_" + a
		fmt.Fprintf(&b, "  ?%s snvoc:%s ?%s .\n", pv, a, v)
		vars = append(vars, v)
	}
	return b.String(), vars
}

// Next returns the next generated query.
func (g *diffGen) Next() string {
	distinct := ""
	if g.r.Intn(3) == 0 {
		distinct = "DISTINCT "
	}
	switch g.r.Intn(10) {
	case 0: // Message star, possibly projecting the message IRI too.
		body, vars := g.messageStar("m")
		proj := "?" + strings.Join(vars, " ?")
		if g.r.Intn(2) == 0 {
			proj = "?m " + proj
		}
		return fmt.Sprintf("%sSELECT %s%s WHERE {\n%s}", g.prefix(), distinct, proj, body)
	case 1: // Person profile star over all pods.
		body, vars := g.personStar("p")
		return fmt.Sprintf("%sSELECT %s?%s WHERE {\n%s}",
			g.prefix(), distinct, strings.Join(vars, " ?"), body)
	case 2: // Friend join: fixed person -> knows -> friend attribute.
		attr := personAttrs[g.r.Intn(len(personAttrs))]
		return fmt.Sprintf(`%sSELECT %s?f ?v WHERE {
  %s snvoc:knows ?f .
  ?f snvoc:%s ?v .
}`, g.prefix(), distinct, g.person(), attr)
	case 3: // OPTIONAL: posts with content, optionally an image sibling.
		return fmt.Sprintf(`%sSELECT %s?m ?d ?img WHERE {
  ?m snvoc:hasCreator %s .
  ?m snvoc:creationDate ?d .
  OPTIONAL { ?m snvoc:imageFile ?img . }
}`, g.prefix(), distinct, g.person())
	case 4: // FILTER on a string attribute.
		body, vars := g.messageStar("m")
		v := vars[g.r.Intn(len(vars))]
		needle := []string{"a", "e", "1", "0", "co"}[g.r.Intn(5)]
		return fmt.Sprintf("%sSELECT %s?%s WHERE {\n%s  FILTER(CONTAINS(STR(?%s), %q))\n}",
			g.prefix(), distinct, strings.Join(vars, " ?"), body, v, needle)
	case 5: // UNION of two creators' messages.
		attr := messageAttrs[g.r.Intn(len(messageAttrs))]
		return fmt.Sprintf(`%sSELECT %s?v WHERE {
  { ?m snvoc:hasCreator %s . ?m snvoc:%s ?v . }
  UNION
  { ?m snvoc:hasCreator %s . ?m snvoc:%s ?v . }
}`, g.prefix(), distinct, g.person(), attr, g.person(), attr)
	case 6: // ORDER BY over a message star (multiset unchanged by order).
		body, vars := g.messageStar("m")
		ov := vars[g.r.Intn(len(vars))]
		desc := ""
		if g.r.Intn(2) == 0 {
			desc = "DESC"
		}
		return fmt.Sprintf("%sSELECT %s?%s WHERE {\n%s} ORDER BY %s(?%s)",
			g.prefix(), distinct, strings.Join(vars, " ?"), body, desc, ov)
	case 7: // GROUP BY creator with order-insensitive aggregates.
		agg := [...]string{
			"(COUNT(?m) AS ?n)",
			"(COUNT(DISTINCT ?m) AS ?n)",
			"(SUM(?id) AS ?total)",
			"(MIN(?d) AS ?lo) (MAX(?d) AS ?hi)",
			"(COUNT(*) AS ?n)",
		}[g.r.Intn(5)]
		return fmt.Sprintf(`%sSELECT ?c %s WHERE {
  ?m snvoc:hasCreator ?c .
  ?m snvoc:id ?id .
  ?m snvoc:creationDate ?d .
} GROUP BY ?c`, g.prefix(), agg)
	case 8: // MINUS, sharing the anchored subject variable ?m.
		excl := [...]string{
			"?m rdf:type snvoc:Comment .",
			"?m snvoc:imageFile ?img .",
			fmt.Sprintf("?m snvoc:browserUsed ?b . FILTER(CONTAINS(STR(?b), %q))", "e"),
		}[g.r.Intn(3)]
		return fmt.Sprintf(`%sSELECT %s?m ?d WHERE {
  ?m snvoc:hasCreator %s .
  ?m snvoc:creationDate ?d .
  MINUS { %s }
}`, g.prefix(), distinct, g.person(), excl)
	default: // Property paths: anchored knows closure or a sequence path.
		if g.r.Intn(2) == 0 {
			attr := personAttrs[g.r.Intn(len(personAttrs))]
			return fmt.Sprintf(`%sSELECT %s?f ?v WHERE {
  %s snvoc:knows+ ?f .
  ?f snvoc:%s ?v .
}`, g.prefix(), distinct, g.person(), attr)
		}
		attr := personAttrs[g.r.Intn(len(personAttrs))]
		return fmt.Sprintf(`%sSELECT %s?v WHERE {
  ?cm snvoc:replyOf/snvoc:hasCreator ?p .
  ?p snvoc:%s ?v .
}`, g.prefix(), distinct, attr)
	}
}

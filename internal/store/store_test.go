package store

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ltqp/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }

func tp(s, p, o string) rdf.Triple {
	return rdf.NewTriple(iri(s), iri(p), iri(o))
}

var doc = rdf.NewIRI("http://example.org/doc1")

func TestAddDedup(t *testing.T) {
	s := New()
	if !s.Add(tp("a", "p", "b"), doc) {
		t.Error("first add should be new")
	}
	if s.Add(tp("a", "p", "b"), doc) {
		t.Error("duplicate add should report false")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	src, ok := s.Source(tp("a", "p", "b"))
	if !ok || src != doc {
		t.Errorf("Source = %v, %v", src, ok)
	}
	if _, ok := s.Source(tp("x", "p", "y")); ok {
		t.Error("Source of absent triple should report false")
	}
}

func TestAddAfterClose(t *testing.T) {
	s := New()
	s.Close()
	if s.Add(tp("a", "p", "b"), doc) {
		t.Error("add after close should be rejected")
	}
	if !s.Closed() {
		t.Error("Closed() should be true")
	}
	s.Close() // idempotent
}

func TestAddDocument(t *testing.T) {
	s := New()
	n := s.AddDocument("http://example.org/doc1", []rdf.Triple{
		tp("a", "p", "b"), tp("a", "p", "c"), tp("a", "p", "b"),
	})
	if n != 2 {
		t.Errorf("new triples = %d, want 2", n)
	}
	if s.DocumentCount() != 1 {
		t.Errorf("DocumentCount = %d", s.DocumentCount())
	}
}

func TestMatchNowIndexSelection(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Add(tp(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i%3)), doc)
		s.Add(tp(fmt.Sprintf("s%d", i), "q", "fixed"), doc)
	}
	// By subject.
	if got := s.MatchNow(rdf.NewTriple(iri("s3"), rdf.NewVar("p"), rdf.NewVar("o"))); len(got) != 2 {
		t.Errorf("by-subject match = %d", len(got))
	}
	// By object.
	if got := s.MatchNow(rdf.NewTriple(rdf.NewVar("s"), rdf.NewVar("p"), iri("fixed"))); len(got) != 10 {
		t.Errorf("by-object match = %d", len(got))
	}
	// By predicate.
	if got := s.MatchNow(rdf.NewTriple(rdf.NewVar("s"), iri("p"), rdf.NewVar("o"))); len(got) != 10 {
		t.Errorf("by-predicate match = %d", len(got))
	}
	// Full scan.
	if got := s.MatchNow(rdf.NewTriple(rdf.NewVar("s"), rdf.NewVar("p"), rdf.NewVar("o"))); len(got) != 20 {
		t.Errorf("full scan = %d", len(got))
	}
	// Count.
	if got := s.CountNow(rdf.NewTriple(rdf.NewVar("s"), iri("q"), rdf.NewVar("o"))); got != 10 {
		t.Errorf("CountNow = %d", got)
	}
}

func TestLiveIteratorDrainsThenBlocks(t *testing.T) {
	s := New()
	s.Add(tp("a", "p", "b"), doc)
	it := s.Match(rdf.NewTriple(rdf.NewVar("s"), iri("p"), rdf.NewVar("o")))
	defer it.Close()
	ctx := context.Background()

	got, ok := it.Next(ctx)
	if !ok || got != tp("a", "p", "b") {
		t.Fatalf("first Next = %v, %v", got, ok)
	}

	// Add from another goroutine while Next blocks.
	done := make(chan rdf.Triple)
	go func() {
		tr, ok := it.Next(ctx)
		if !ok {
			close(done)
			return
		}
		done <- tr
	}()
	time.Sleep(20 * time.Millisecond)
	s.Add(tp("c", "p", "d"), doc)
	select {
	case tr := <-done:
		if tr != tp("c", "p", "d") {
			t.Errorf("live triple = %v", tr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("iterator did not observe live addition")
	}

	// Closing the store ends the stream.
	go s.Close()
	if _, ok := it.Next(ctx); ok {
		t.Error("Next after close+drain should report false")
	}
}

func TestIteratorIgnoresNonMatching(t *testing.T) {
	s := New()
	it := s.Match(rdf.NewTriple(rdf.NewVar("s"), iri("wanted"), rdf.NewVar("o")))
	defer it.Close()
	s.Add(tp("a", "other", "b"), doc)
	s.Add(tp("a", "wanted", "b"), doc)
	s.Close()
	var got []rdf.Triple
	for {
		tr, ok := it.Next(context.Background())
		if !ok {
			break
		}
		got = append(got, tr)
	}
	if len(got) != 1 || got[0] != tp("a", "wanted", "b") {
		t.Errorf("got %v", got)
	}
}

func TestIteratorContextCancel(t *testing.T) {
	s := New()
	it := s.Match(rdf.NewTriple(rdf.NewVar("s"), rdf.NewVar("p"), rdf.NewVar("o")))
	defer it.Close()
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan bool)
	go func() {
		_, ok := it.Next(ctx)
		res <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case ok := <-res:
		if ok {
			t.Error("cancelled Next should report false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not observe cancellation")
	}
}

func TestIteratorClose(t *testing.T) {
	s := New()
	it := s.Match(rdf.NewTriple(rdf.NewVar("s"), rdf.NewVar("p"), rdf.NewVar("o")))
	res := make(chan bool)
	go func() {
		_, ok := it.Next(context.Background())
		res <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	it.Close()
	select {
	case ok := <-res:
		if ok {
			t.Error("closed iterator should report false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not observe iterator close")
	}
	if !it.Done() {
		t.Error("closed iterator should be Done")
	}
}

func TestTryNextAndDone(t *testing.T) {
	s := New()
	it := s.Match(rdf.NewTriple(rdf.NewVar("s"), iri("p"), rdf.NewVar("o")))
	defer it.Close()
	if _, ok := it.TryNext(); ok {
		t.Error("TryNext on empty store should be false")
	}
	if it.Done() {
		t.Error("open store: iterator is not Done even when drained")
	}
	s.Add(tp("a", "p", "b"), doc)
	if tr, ok := it.TryNext(); !ok || tr != tp("a", "p", "b") {
		t.Errorf("TryNext = %v, %v", tr, ok)
	}
	s.Close()
	if !it.Done() {
		t.Error("closed+drained iterator should be Done")
	}
}

func TestDoneDoesNotConsume(t *testing.T) {
	s := New()
	s.Add(tp("a", "p", "b"), doc)
	s.Close()
	it := s.Match(rdf.NewTriple(rdf.NewVar("s"), iri("p"), rdf.NewVar("o")))
	defer it.Close()
	if it.Done() {
		t.Error("iterator with pending match should not be Done")
	}
	// The peek inside Done must not consume the match.
	if tr, ok := it.TryNext(); !ok || tr != tp("a", "p", "b") {
		t.Errorf("TryNext after Done peek = %v, %v", tr, ok)
	}
}

func TestWaitClosed(t *testing.T) {
	s := New()
	done := make(chan error)
	go func() { done <- s.WaitClosed(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("WaitClosed = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitClosed did not return after Close")
	}

	s2 := New()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { done <- s2.WaitClosed(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("WaitClosed on cancel should return the context error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitClosed did not observe cancellation")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	s := New()
	const producers, perProducer = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				s.Add(tp(fmt.Sprintf("s%d-%d", p, i), "p", "o"), doc)
			}
		}(p)
	}
	var consumed int
	var cwg sync.WaitGroup
	var mu sync.Mutex
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			it := s.Match(rdf.NewTriple(rdf.NewVar("s"), iri("p"), rdf.NewVar("o")))
			defer it.Close()
			n := 0
			for {
				_, ok := it.Next(context.Background())
				if !ok {
					break
				}
				n++
			}
			mu.Lock()
			consumed += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	s.Close()
	cwg.Wait()
	if want := producers * perProducer * 3; consumed != want {
		t.Errorf("consumed = %d, want %d", consumed, want)
	}
	if s.Len() != producers*perProducer {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := New()
	s.Add(tp("a", "p", "b"), doc)
	snap := s.Snapshot()
	s.Add(tp("c", "p", "d"), doc)
	if len(snap) != 1 {
		t.Errorf("snapshot should not grow: %d", len(snap))
	}
}

func TestMatchNowEqualsIteratorDrain(t *testing.T) {
	// Property: for a closed store, MatchNow and iterator drain agree.
	f := func(seed int64) bool {
		s := New()
		r := seed
		next := func(n int64) int64 {
			r = r*6364136223846793005 + 1442695040888963407
			v := r % n
			if v < 0 {
				v = -v
			}
			return v
		}
		for i := 0; i < 100; i++ {
			s.Add(tp(
				fmt.Sprintf("s%d", next(10)),
				fmt.Sprintf("p%d", next(4)),
				fmt.Sprintf("o%d", next(6)),
			), doc)
		}
		s.Close()
		pattern := rdf.NewTriple(rdf.NewVar("s"), iri(fmt.Sprintf("p%d", next(4))), rdf.NewVar("o"))
		want := s.MatchNow(pattern)
		it := s.Match(pattern)
		defer it.Close()
		var got []rdf.Triple
		for {
			tr, ok := it.Next(context.Background())
			if !ok {
				break
			}
			got = append(got, tr)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

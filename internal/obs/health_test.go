package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHealthCheckerNilAlwaysOK(t *testing.T) {
	var h *HealthChecker
	if st := h.Check(time.Now()); st.Status != "ok" {
		t.Errorf("nil checker status = %s", st.Status)
	}
	h = &HealthChecker{} // no metrics attached
	if st := h.Check(time.Now()); st.Status != "ok" {
		t.Errorf("metric-less checker status = %s", st.Status)
	}
}

// TestHealthDegradedAndRecovery drives the sliding window: a burst of
// dereference failures flips the verdict to degraded, and once the burst
// ages out of the window the verdict returns to ok — all against the same
// ever-growing cumulative counters.
func TestHealthDegradedAndRecovery(t *testing.T) {
	m := NewMetrics(NewRegistry())
	h := &HealthChecker{Metrics: m, Threshold: 0.5, Window: time.Minute}
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)

	// Healthy baseline: fetches succeed.
	m.DocumentsFetched.Add(10)
	if st := h.Check(t0); st.Status != "ok" {
		t.Fatalf("baseline status = %+v", st)
	}

	// A failure burst inside the window: 8 failures vs 2 successes = 0.8.
	m.FetchFailures.Add(8)
	m.DocumentsFetched.Add(2)
	st := h.Check(t0.Add(10 * time.Second))
	if st.Status != "degraded" {
		t.Fatalf("burst status = %+v", st)
	}
	if st.WindowFailures != 8 || st.WindowAttempts != 10 || st.FailureRatio != 0.8 {
		t.Errorf("window deltas = %+v", st)
	}

	// Two minutes later with no further failures the burst has aged out.
	st = h.Check(t0.Add(2 * time.Minute))
	if st.Status != "ok" || st.WindowFailures != 0 {
		t.Errorf("recovered status = %+v", st)
	}

	// Exactly at the threshold is still ok (degraded requires ratio > threshold).
	m.FetchFailures.Add(1)
	m.DocumentsFetched.Add(1)
	st = h.Check(t0.Add(2*time.Minute + time.Second))
	if st.FailureRatio != 0.5 || st.Status != "ok" {
		t.Errorf("at-threshold status = %+v", st)
	}
}

// TestHealthCheckHandlerAlways200: degraded is an operational warning, not
// an outage — the probe stays HTTP 200 and the JSON body carries the
// distinction.
func TestHealthCheckHandlerAlways200(t *testing.T) {
	m := NewMetrics(NewRegistry())
	h := &HealthChecker{Metrics: m, Threshold: 0.5, Window: time.Minute}
	srv := httptest.NewServer(HealthCheckHandler(h))
	defer srv.Close()

	get := func() HealthStatus {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var st HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	if st := get(); st.Status != "ok" {
		t.Errorf("healthy body = %+v", st)
	}
	m.FetchFailures.Add(9)
	m.DocumentsFetched.Add(1)
	if st := get(); st.Status != "degraded" {
		t.Errorf("degraded body = %+v", st)
	}
}

// TestStampBuildInfo: the build-info gauge and uptime appear in the
// Prometheus exposition.
func TestStampBuildInfo(t *testing.T) {
	r := NewRegistry()
	StampBuildInfo(r, "v1.2.3", time.Now().Add(-2*time.Second))
	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()
	if !strings.Contains(text, `ltqp_build_info{version="v1.2.3"`) ||
		!strings.Contains(text, `go_version="go`) {
		t.Errorf("exposition missing build info:\n%s", text)
	}
	if !strings.Contains(text, "ltqp_uptime_seconds") {
		t.Errorf("exposition missing uptime:\n%s", text)
	}
	// Empty version defaults to "dev" (replacing the previous registration).
	StampBuildInfo(r, "", time.Now())
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `version="dev"`) {
		t.Errorf("empty version not defaulted:\n%s", b.String())
	}
}

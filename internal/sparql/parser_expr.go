package sparql

import (
	"strings"

	"ltqp/internal/rdf"
)

// builtinNames lists the builtin function keywords the expression parser
// recognizes when they are followed by an argument list.
var builtinNames = map[string]bool{
	"STR": true, "LANG": true, "LANGMATCHES": true, "DATATYPE": true,
	"BOUND": true, "IRI": true, "URI": true, "BNODE": true,
	"RAND": true, "ABS": true, "CEIL": true, "FLOOR": true, "ROUND": true,
	"CONCAT": true, "STRLEN": true, "UCASE": true, "LCASE": true,
	"ENCODE_FOR_URI": true, "CONTAINS": true, "STRSTARTS": true,
	"STRENDS": true, "STRBEFORE": true, "STRAFTER": true,
	"YEAR": true, "MONTH": true, "DAY": true, "HOURS": true,
	"MINUTES": true, "SECONDS": true, "TIMEZONE": true, "TZ": true,
	"NOW": true, "UUID": true, "STRUUID": true,
	"MD5": true, "SHA1": true, "SHA256": true, "SHA384": true, "SHA512": true,
	"COALESCE": true, "IF": true, "STRLANG": true, "STRDT": true,
	"SAMETERM": true, "ISIRI": true, "ISURI": true, "ISBLANK": true,
	"ISLITERAL": true, "ISNUMERIC": true, "REGEX": true, "SUBSTR": true,
	"REPLACE": true,
	"COUNT":   true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
	"SAMPLE": true, "GROUP_CONCAT": true,
}

// isBuiltinName reports whether the word is a recognized builtin.
func isBuiltinName(word string) bool {
	return builtinNames[strings.ToUpper(word)]
}

// parseExpression parses a full expression (lowest precedence: ||).
func (p *qparser) parseExpression() (Expression, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: "||", L: left, R: right}
	}
	return left, nil
}

func (p *qparser) parseAnd() (Expression, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.isPunct("&&") {
		p.advance()
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: "&&", L: left, R: right}
	}
	return left, nil
}

func (p *qparser) parseRelational() (Expression, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "!=", "<", ">", "<=", ">=":
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return ExprBinary{Op: t.text, L: left, R: right}, nil
		}
	}
	if p.isKeyword("IN") {
		p.advance()
		list, err := p.parseExpressionList()
		if err != nil {
			return nil, err
		}
		return ExprIn{X: left, List: list}, nil
	}
	if p.isKeyword("NOT") {
		p.advance()
		if err := p.expectKeyword("IN"); err != nil {
			return nil, err
		}
		list, err := p.parseExpressionList()
		if err != nil {
			return nil, err
		}
		return ExprIn{Not: true, X: left, List: list}, nil
	}
	return left, nil
}

func (p *qparser) parseExpressionList() ([]Expression, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var list []Expression
	if p.acceptPunct(")") {
		return list, nil
	}
	for {
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return list, nil
}

func (p *qparser) parseAdditive() (Expression, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-") {
			p.advance()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = ExprBinary{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *qparser) parseMultiplicative() (Expression, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokPunct && (t.text == "*" || t.text == "/") {
			p.advance()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = ExprBinary{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *qparser) parseUnary() (Expression, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "!":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return ExprUnary{Op: "!", X: x}, nil
		case "-", "+":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return ExprUnary{Op: t.text, X: x}, nil
		}
	}
	return p.parsePrimaryExpression()
}

// parsePrimaryExpression parses terms, variables, calls, and groups.
func (p *qparser) parsePrimaryExpression() (Expression, error) {
	t := p.cur()
	switch t.kind {
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokVar:
		p.advance()
		return ExprVar{Name: t.text}, nil
	case tokKeyword:
		upper := strings.ToUpper(t.text)
		switch upper {
		case "EXISTS":
			p.advance()
			pat, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			return ExprExists{Pattern: pat}, nil
		case "NOT":
			p.advance()
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			pat, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			return ExprExists{Not: true, Pattern: pat}, nil
		case "TRUE":
			p.advance()
			return ExprTerm{Term: rdf.Boolean(true)}, nil
		case "FALSE":
			p.advance()
			return ExprTerm{Term: rdf.Boolean(false)}, nil
		}
		if builtinNames[upper] {
			p.advance()
			return p.parseCallArgs(upper)
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokIRI, tokPName:
		// IRI, or IRI function call (e.g. xsd:integer(?x)).
		term, err := p.parseGraphTerm()
		if err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			call, err := p.parseCallArgs(term.Value)
			if err != nil {
				return nil, err
			}
			return call, nil
		}
		return ExprTerm{Term: term}, nil
	case tokString, tokInteger, tokDecimal, tokDouble:
		term, err := p.parseGraphTerm()
		if err != nil {
			return nil, err
		}
		return ExprTerm{Term: term}, nil
	case tokBlank:
		p.advance()
		return ExprTerm{Term: rdf.NewBlank("q." + t.text)}, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

// parseCallArgs parses the argument list of a builtin or IRI function call.
// The function keyword has already been consumed.
func (p *qparser) parseCallArgs(fn string) (Expression, error) {
	call := ExprCall{Func: fn}
	// NOW() style zero-arg calls still need parens.
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.acceptKeyword("DISTINCT") {
		call.Distinct = true
	}
	if p.acceptPunct("*") {
		call.Star = true
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.acceptPunct(")") {
		return call, nil
	}
	for {
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, e)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	// GROUP_CONCAT(...; SEPARATOR="...").
	if p.acceptPunct(";") {
		if err := p.expectKeyword("SEPARATOR"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		sep := p.cur()
		if sep.kind != tokString {
			return nil, p.errf("expected string SEPARATOR, got %s", sep)
		}
		call.Sep = sep.text
		p.advance()
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return call, nil
}

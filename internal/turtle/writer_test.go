package turtle

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"ltqp/internal/rdf"
)

func TestWriteGrouping(t *testing.T) {
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
	triples := []rdf.Triple{
		{S: ex("s"), P: rdf.NewIRI(rdf.RDFType), O: ex("T")},
		{S: ex("s"), P: ex("p"), O: rdf.NewLiteral("v1")},
		{S: ex("s"), P: ex("p"), O: rdf.NewLiteral("v2")},
		{S: ex("other"), P: ex("q"), O: rdf.Integer(5)},
	}
	out := Write(triples, WriteOptions{Prefixes: map[string]string{"ex": "http://example.org/"}})
	if !strings.Contains(out, "ex:s a ex:T") {
		t.Errorf("rdf:type should render as 'a':\n%s", out)
	}
	if !strings.Contains(out, `ex:p "v1", "v2"`) {
		t.Errorf("object list should be comma-grouped:\n%s", out)
	}
	if !strings.Contains(out, "@prefix ex: <http://example.org/>.") {
		t.Errorf("used prefix should be declared:\n%s", out)
	}
	if strings.Contains(out, "@prefix foaf") {
		t.Errorf("unused prefixes must not be declared:\n%s", out)
	}
}

func TestWriteRelativeIRIs(t *testing.T) {
	base := "https://pod.example/alice/"
	triples := []rdf.Triple{
		{S: rdf.NewIRI(base), P: rdf.NewIRI(rdf.LDPContains), O: rdf.NewIRI(base + "posts/")},
	}
	out := Write(triples, WriteOptions{Base: base, Prefixes: map[string]string{"ldp": rdf.NSLDP}})
	if !strings.Contains(out, "<> ldp:contains <posts/>.") {
		t.Errorf("relativization failed:\n%s", out)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	// Property: parsing the serialized form yields the same triple set.
	gen := func(v []reflect.Value, r *rand.Rand) {
		n := 1 + r.Intn(20)
		ts := make([]rdf.Triple, 0, n)
		terms := []rdf.Term{
			rdf.NewIRI("http://example.org/a"),
			rdf.NewIRI("http://example.org/b#frag"),
			rdf.NewLiteral("plain \"text\"\nline"),
			rdf.NewLangLiteral("hello", "en"),
			rdf.Integer(42),
			rdf.Double(2.5),
			rdf.Boolean(true),
			rdf.NewTypedLiteral("2010-10-12", rdf.XSDDate),
			rdf.NewBlank("b1"),
		}
		preds := []rdf.Term{
			rdf.NewIRI("http://example.org/p"),
			rdf.NewIRI(rdf.RDFType),
			rdf.NewIRI(rdf.FOAFKnows),
		}
		subjects := []rdf.Term{
			rdf.NewIRI("http://example.org/s1"),
			rdf.NewIRI("http://example.org/s2"),
			rdf.NewBlank("bs"),
		}
		for i := 0; i < n; i++ {
			ts = append(ts, rdf.Triple{
				S: subjects[r.Intn(len(subjects))],
				P: preds[r.Intn(len(preds))],
				O: terms[r.Intn(len(terms))],
			})
		}
		v[0] = reflect.ValueOf(ts)
	}
	f := func(ts []rdf.Triple) bool {
		out := Write(ts, WriteOptions{Prefixes: rdf.CommonPrefixes})
		parsed, err := Parse(out, Options{})
		if err != nil {
			t.Logf("parse error: %v\n%s", err, out)
			return false
		}
		return sameTripleSet(ts, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Values: gen}); err != nil {
		t.Error(err)
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	ts := []rdf.Triple{
		{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewLangLiteral("x", "en")},
		{S: rdf.NewBlank("b"), P: rdf.NewIRI("http://p"), O: rdf.Long(7)},
	}
	out := WriteNTriples(ts)
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("want 2 lines, got %d:\n%s", lines, out)
	}
	parsed, err := Parse(out, Options{})
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !sameTripleSet(ts, parsed) {
		t.Errorf("round trip mismatch:\n%v\n%v", ts, parsed)
	}
}

func TestWriteNQuads(t *testing.T) {
	qs := []rdf.Quad{
		rdf.NewQuad(rdf.NewIRI("http://a"), rdf.NewIRI("http://p"), rdf.NewLiteral("x"), rdf.NewIRI("http://g")),
		rdf.NewQuad(rdf.NewIRI("http://a"), rdf.NewIRI("http://p"), rdf.NewLiteral("y"), rdf.Term{}),
	}
	out := WriteNQuads(qs)
	want := "<http://a> <http://p> \"x\" <http://g> .\n<http://a> <http://p> \"y\" .\n"
	if out != want {
		t.Errorf("WriteNQuads = %q, want %q", out, want)
	}
}

func TestEscapeIRIInWriter(t *testing.T) {
	ts := []rdf.Triple{{
		S: rdf.NewIRI("http://example.org/with space"),
		P: rdf.NewIRI("http://p"),
		O: rdf.NewIRI("http://b"),
	}}
	out := Write(ts, WriteOptions{})
	if strings.Contains(out, "<http://example.org/with space>") {
		t.Errorf("space must be escaped:\n%s", out)
	}
	if !strings.Contains(out, "%20") {
		t.Errorf("expected %%20 escape:\n%s", out)
	}
}

func TestValidLocalPart(t *testing.T) {
	if !validLocalPart("abc-d_e.f") {
		t.Error("simple local part should be valid")
	}
	if validLocalPart("a/b") || validLocalPart(".a") || validLocalPart("a.") {
		t.Error("slashes and edge dots are not valid unescaped local parts")
	}
	if !validLocalPart("") {
		t.Error("empty local part is valid (prefix:)")
	}
}

func sameTripleSet(a, b []rdf.Triple) bool {
	key := func(ts []rdf.Triple) []string {
		ks := make([]string, 0, len(ts))
		seen := map[string]bool{}
		for _, t := range ts {
			k := t.String()
			if !seen[k] {
				seen[k] = true
				ks = append(ks, k)
			}
		}
		sort.Strings(ks)
		return ks
	}
	ka, kb := key(a), key(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func TestValidUTF8Helper(t *testing.T) {
	if !validUTF8("héllo") || validUTF8(string([]byte{0xff, 0xfe})) {
		t.Error("validUTF8 misbehaves")
	}
}

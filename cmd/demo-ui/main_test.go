package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

func newUIEnv(t *testing.T) *simenv.Env {
	t.Helper()
	env := simenv.New(solidbench.SmallConfig())
	t.Cleanup(env.Close)
	return env
}

func TestServeQueryStreamsSSE(t *testing.T) {
	env := newUIEnv(t)
	q := env.Dataset.Discover(1, 1)

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveQuery(w, r, env)
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query?q=" + url.QueryEscape(q.Text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type = %s", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "event: result") {
		t.Errorf("no result events:\n%s", truncate(text, 500))
	}
	if !strings.Contains(text, "event: waterfall") {
		t.Errorf("no waterfall event:\n%s", truncate(text, 500))
	}
	if !strings.Contains(text, "event: done") {
		t.Errorf("no done event:\n%s", truncate(text, 500))
	}
	if !strings.Contains(text, "messageId") {
		t.Errorf("results lack bindings:\n%s", truncate(text, 500))
	}
}

func TestServeQueryReportsErrors(t *testing.T) {
	env := newUIEnv(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveQuery(w, r, env)
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?q=" + url.QueryEscape("NOT SPARQL"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "event: error") {
		t.Errorf("no error event:\n%s", string(body))
	}
}

func TestServeQueryWithAuth(t *testing.T) {
	cfg := solidbench.SmallConfig()
	cfg.PrivateFraction = 0.9
	env := simenv.New(cfg)
	defer env.Close()
	q := env.Dataset.Discover(1, 1)
	webID := env.Dataset.WebID(q.Person)

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveQuery(w, r, env)
	}))
	defer srv.Close()

	count := func(auth string) int {
		u := srv.URL + "/query?q=" + url.QueryEscape(q.Text)
		if auth != "" {
			u += "&auth=" + url.QueryEscape(auth)
		}
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return strings.Count(string(body), "event: result")
	}
	anon := count("")
	authed := count(webID)
	if authed <= anon {
		t.Errorf("authenticated UI query should see more: anon=%d authed=%d", anon, authed)
	}
}

func TestPageTemplateRenders(t *testing.T) {
	env := newUIEnv(t)
	stats := env.Stats()
	catalog := env.Dataset.Catalog()
	texts := make([]string, len(catalog))
	for i, q := range catalog {
		texts[i] = q.Text
	}
	var sb strings.Builder
	err := page.Execute(&sb, map[string]interface{}{
		"Pods": stats.Pods, "Triples": stats.Triples, "Files": stats.Files,
		"Queries": catalog, "QueryTexts": texts,
		"Agents": []agentInfo{{Name: "A", WebID: "https://x/#me"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	html := sb.String()
	if !strings.Contains(html, "[SolidBench] Discover 1.1") {
		t.Error("catalog dropdown missing")
	}
	if !strings.Contains(html, "Execute query") {
		t.Error("execute button missing")
	}
}

func TestSplitFields(t *testing.T) {
	got := splitFields(" a,b  c\nd ")
	if len(got) != 4 || got[0] != "a" || got[3] != "d" {
		t.Errorf("splitFields = %v", got)
	}
	if got := splitFields(""); len(got) != 0 {
		t.Errorf("empty = %v", got)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func TestServeQueryStrategyParam(t *testing.T) {
	env := newUIEnv(t)
	q := env.Dataset.Discover(1, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveQuery(w, r, env)
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?strategy=solid-no-ldp&q=" + url.QueryEscape(q.Text))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "event: done") {
		t.Errorf("strategy run did not finish:\n%s", truncate(string(body), 300))
	}
	if !strings.Contains(string(body), "event: result") {
		t.Error("strategy run produced no results")
	}
}

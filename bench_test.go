// Benchmarks reproducing every figure and quantitative claim of the
// paper's demonstration (see DESIGN.md E1–E10 and EXPERIMENTS.md for the
// paper-vs-measured record):
//
//	E1/Fig.2  BenchmarkFig2CLIDiscover6_5       — CLI execution of Discover 6.5
//	E2/Fig.3  BenchmarkFig3WebUIDiscover6_5     — result count + wall time + TTFR
//	E3/Fig.4  BenchmarkFig4WaterfallDiscover1_5 — single-pod request waterfall
//	E4/Fig.5  BenchmarkFig5WaterfallDiscover8_5 — multi-pod request waterfall
//	E5/§4.2   BenchmarkDatasetStats             — environment shape vs paper
//	E6/§1,5   BenchmarkTimeToFirstResult        — "first results < 1 s"
//	E7/§4.2   BenchmarkQueryCatalog             — the 37 default queries
//	E8/[14]   BenchmarkExtractorAblation        — Solid-aware vs blind traversal
//	E9/§1     BenchmarkBaselineCentralized      — traversal vs prior-index oracle
//	E10/§3    BenchmarkAuthenticatedQuery       — querying on behalf of a WebID
//
// Custom metrics reported per op: results, http_reqs, ttfr_ms, pods.
// Run with: go test -bench=. -benchmem
package ltqp_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/baseline"
	"ltqp/internal/experiments"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

// benchEnv lazily builds one shared simulated environment for all
// benchmarks (building pods is expensive and must stay out of timings).
var (
	benchEnvOnce sync.Once
	benchEnvVal  *simenv.Env
)

func benchEnv(b *testing.B) *simenv.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		cfg := solidbench.DefaultConfig()
		cfg.Persons = 12
		benchEnvVal = simenv.New(cfg)
	})
	return benchEnvVal
}

// report attaches the engine's domain metrics to the benchmark.
func report(b *testing.B, run experiments.QueryRun) {
	b.ReportMetric(float64(run.Results), "results")
	b.ReportMetric(float64(run.Requests), "http_reqs")
	b.ReportMetric(float64(run.PodsTouched), "pods")
	if run.HasTTFR {
		b.ReportMetric(float64(run.TTFR.Microseconds())/1000, "ttfr_ms")
	}
}

// BenchmarkFig2CLIDiscover6_5 reproduces the paper's Fig. 2: executing the
// Discover 6.5 query (forums of a creator) end to end, streaming JSON
// bindings, exactly as cmd/ltqp-sparql does.
func BenchmarkFig2CLIDiscover6_5(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	var last experiments.QueryRun
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := experiments.E1CLIDiscover(ctx, env)
		if err != nil {
			b.Fatal(err)
		}
		if run.Results == 0 {
			b.Fatal("no results")
		}
		last = run
	}
	report(b, last)
}

// BenchmarkFig3WebUIDiscover6_5 reproduces the paper's Fig. 3 measurement:
// the hosted demo returned 27 results in 3.8 s for Discover 6.5; here the
// same query shape runs against the simulated environment and reports
// result count, wall time, and time to first result.
func BenchmarkFig3WebUIDiscover6_5(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	q := env.Dataset.Discover(6, 5)
	var last experiments.QueryRun
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunCatalogQuery(ctx, env, q, ltqp.Config{Lenient: true})
		if err != nil {
			b.Fatal(err)
		}
		last = run
	}
	report(b, last)
}

// BenchmarkFig4WaterfallDiscover1_5 reproduces Fig. 4: Discover 1.5
// targets a single pod; the waterfall shows seed → profile → type index →
// containers → date-fragmented post documents, with parallel fetches.
func BenchmarkFig4WaterfallDiscover1_5(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	var last experiments.QueryRun
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, _, err := experiments.E3WaterfallSinglePod(ctx, env)
		if err != nil {
			b.Fatal(err)
		}
		if run.PodsTouched != 1 {
			b.Fatalf("single-pod query touched %d pods", run.PodsTouched)
		}
		last = run
	}
	report(b, last)
	b.ReportMetric(float64(last.MaxDepth), "depth")
	b.ReportMetric(float64(last.MaxParallel), "parallel")
}

// BenchmarkFig5WaterfallDiscover8_5 reproduces Fig. 5: Discover 8.5
// traverses multiple pods (likes → authors → their messages) without any
// user interaction.
func BenchmarkFig5WaterfallDiscover8_5(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	var last experiments.QueryRun
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, _, err := experiments.E4WaterfallMultiPod(ctx, env)
		if err != nil {
			b.Fatal(err)
		}
		if run.PodsTouched < 2 {
			b.Fatalf("multi-pod query touched %d pods", run.PodsTouched)
		}
		last = run
	}
	report(b, last)
	b.ReportMetric(float64(last.MaxDepth), "depth")
}

// BenchmarkDatasetStats reproduces §4.2's environment description: the
// paper hosts 1,531 pods with 3,556,159 triples across 158,233 files
// (≈103 files and ≈2,323 triples per pod). The generator must match that
// per-pod shape at any scale; the benchmark measures generation +
// fragmentation throughput and reports the ratios.
func BenchmarkDatasetStats(b *testing.B) {
	cfg := solidbench.DefaultConfig()
	cfg.Persons = 12
	var shape experiments.DatasetShape
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := solidbench.Generate(cfg)
		stats := solidbench.ComputeStats(ds.BuildPods())
		shape = experiments.DatasetShape{
			Pods: stats.Pods, Files: stats.Files, Triples: stats.Triples,
			FilesPerPod:   float64(stats.Files) / float64(stats.Pods),
			TriplesPerPod: float64(stats.Triples) / float64(stats.Pods),
		}
	}
	paperFiles := float64(solidbench.PaperStats.Files) / float64(solidbench.PaperStats.Pods)
	paperTriples := float64(solidbench.PaperStats.Triples) / float64(solidbench.PaperStats.Pods)
	if shape.FilesPerPod < paperFiles/2 || shape.FilesPerPod > paperFiles*2 {
		b.Fatalf("files/pod = %.1f, paper = %.1f", shape.FilesPerPod, paperFiles)
	}
	b.ReportMetric(shape.FilesPerPod, "files/pod")
	b.ReportMetric(shape.TriplesPerPod, "triples/pod")
	b.ReportMetric(paperFiles, "paper_files/pod")
	b.ReportMetric(paperTriples, "paper_triples/pod")
}

// BenchmarkTimeToFirstResult measures the paper's headline claim (§1, §5):
// "non-complex queries can be completed in the order of seconds, with
// first results showing up in less than a second" — TTFR and total time
// across all eight Discover shapes.
func BenchmarkTimeToFirstResult(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	var worstTTFR time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := experiments.E6TTFR(ctx, env)
		if err != nil {
			b.Fatal(err)
		}
		worstTTFR = 0
		for _, r := range runs {
			if r.HasTTFR && r.TTFR > worstTTFR {
				worstTTFR = r.TTFR
			}
		}
	}
	b.ReportMetric(float64(worstTTFR.Microseconds())/1000, "worst_ttfr_ms")
	if worstTTFR > time.Second {
		b.Logf("warning: worst TTFR %v exceeds the paper's 1 s claim", worstTTFR)
	}
}

// BenchmarkQueryCatalog reproduces §4.2's "37 default queries": all
// catalog queries must parse and translate; the benchmark measures the
// parse+plan pipeline over the whole catalog.
func BenchmarkQueryCatalog(b *testing.B) {
	env := benchEnv(b)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		n, err = experiments.E7Catalog(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	if n != 37 {
		b.Fatalf("catalog = %d queries, want 37", n)
	}
	b.ReportMetric(float64(n), "queries")
}

// BenchmarkExtractorAblation reproduces the request-count comparison
// behind the paper's approach ([14]): Solid-aware link extraction
// (type-index-guided) answers Discover 1 with far fewer HTTP requests than
// blind cAll traversal, with LDP-walking in between.
func BenchmarkExtractorAblation(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	var rows []experiments.AblationRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E8ExtractorAblation(ctx, env, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	byName := map[string]experiments.AblationRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
		b.Logf("%-14s results=%d requests=%d time=%v", r.Strategy, r.Results, r.Requests, r.Total)
	}
	// The paper-shape assertions: guided < walk < blind.
	guided, walk, blind := byName["solid-no-ldp"], byName["ldp-only"], byName["call"]
	if guided.Requests >= walk.Requests {
		b.Errorf("type-index-guided (%d reqs) should beat LDP walk (%d reqs)", guided.Requests, walk.Requests)
	}
	if walk.Requests >= blind.Requests {
		b.Errorf("LDP walk (%d reqs) should beat blind cAll (%d reqs)", walk.Requests, blind.Requests)
	}
	if guided.Results != walk.Results {
		b.Errorf("guided traversal lost results: %d vs %d", guided.Results, walk.Results)
	}
	b.ReportMetric(float64(guided.Requests), "reqs_guided")
	b.ReportMetric(float64(walk.Requests), "reqs_ldp")
	b.ReportMetric(float64(blind.Requests), "reqs_call")
}

// BenchmarkBaselineCentralized reproduces the paper's positioning against
// index-based systems (§1): the oracle answers faster per query but
// requires accumulating all pod data upfront (and the trust that implies);
// traversal pays per-query HTTP cost and needs no prior index.
func BenchmarkBaselineCentralized(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	var cmp experiments.OracleComparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.E9Centralized(ctx, env, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cmp.Traversal.Results != cmp.OracleCount {
		b.Errorf("traversal found %d, oracle %d (single-pod query should agree)",
			cmp.Traversal.Results, cmp.OracleCount)
	}
	b.ReportMetric(float64(cmp.Traversal.Total.Microseconds())/1000, "traversal_ms")
	b.ReportMetric(float64(cmp.OracleTime.Microseconds())/1000, "oracle_query_ms")
	b.ReportMetric(float64(cmp.IngestTime.Microseconds())/1000, "oracle_ingest_ms")
}

// BenchmarkAuthenticatedQuery reproduces §3's authenticated querying: the
// engine executing on behalf of the pod owner sees more data than an
// anonymous run over the same access-controlled environment.
func BenchmarkAuthenticatedQuery(b *testing.B) {
	ctx := context.Background()
	var cmp experiments.AuthComparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.E10Auth(ctx, 6, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cmp.AuthedResults <= cmp.AnonResults {
		b.Errorf("auth should reveal more: anon=%d authed=%d", cmp.AnonResults, cmp.AuthedResults)
	}
	b.ReportMetric(float64(cmp.AnonResults), "anon_results")
	b.ReportMetric(float64(cmp.AuthedResults), "authed_results")
}

// BenchmarkOracleQueryOnly isolates the oracle's per-query cost over the
// pre-built centralized store (the lower bound traversal is compared to).
func BenchmarkOracleQueryOnly(b *testing.B) {
	env := benchEnv(b)
	st := baseline.CentralizedStore(env.Pods)
	q := env.Dataset.Discover(1, 1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := baseline.RunQuery(ctx, st, q.Text)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkAdaptiveReplanning measures the engine's adaptive re-planning
// extension (the paper's §5 future-work direction) against the static
// zero-knowledge plan on Discover 6 — a query whose selectivities are
// unknowable upfront.
func BenchmarkAdaptiveReplanning(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	q := env.Dataset.Discover(6, 1)
	var static, adaptive experiments.QueryRun
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		static, err = experiments.RunCatalogQuery(ctx, env, q, ltqp.Config{Lenient: true})
		if err != nil {
			b.Fatal(err)
		}
		adaptive, err = experiments.RunCatalogQuery(ctx, env, q, ltqp.Config{Lenient: true, Adaptive: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if static.Results != adaptive.Results {
		b.Errorf("adaptive changed results: %d vs %d", static.Results, adaptive.Results)
	}
	b.ReportMetric(float64(static.Total.Microseconds())/1000, "static_ms")
	b.ReportMetric(float64(adaptive.Total.Microseconds())/1000, "adaptive_ms")
}

// BenchmarkPriorityQueue compares FIFO and priority link queues on time to
// first result — the link-queue enhancement direction the paper cites [34].
func BenchmarkPriorityQueue(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	q := env.Dataset.Discover(1, 2)
	var fifo, prio experiments.QueryRun
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		fifo, err = experiments.RunCatalogQuery(ctx, env, q, ltqp.Config{Lenient: true})
		if err != nil {
			b.Fatal(err)
		}
		prio, err = experiments.RunCatalogQuery(ctx, env, q, ltqp.Config{Lenient: true, PrioritizedQueue: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if fifo.Results != prio.Results {
		b.Errorf("queue discipline changed results: %d vs %d", fifo.Results, prio.Results)
	}
	b.ReportMetric(float64(fifo.TTFR.Microseconds())/1000, "fifo_ttfr_ms")
	b.ReportMetric(float64(prio.TTFR.Microseconds())/1000, "prio_ttfr_ms")
}

// BenchmarkDocumentCache reproduces the "(disk cache)" rows of the paper's
// Fig. 4: with the engine-level document cache, a repeated query is served
// almost entirely without network traffic.
func BenchmarkDocumentCache(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	q := env.Dataset.Discover(1, 3)
	engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true, CacheDocuments: 10000})
	// Warm.
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		b.Fatal(err)
	}
	for range res.Results {
	}
	b.ResetTimer()
	var cached, total int
	for i := 0; i < b.N; i++ {
		res, err := engine.Query(ctx, q.Text)
		if err != nil {
			b.Fatal(err)
		}
		for range res.Results {
		}
		cached, total = 0, 0
		for _, r := range res.Metrics().Requests() {
			total++
			if r.Cached {
				cached++
			}
		}
	}
	b.ReportMetric(float64(cached), "cached_reqs")
	b.ReportMetric(float64(total), "total_reqs")
	if cached == 0 {
		b.Error("no cached requests on the warm run")
	}
}

// BenchmarkComplexWorkload runs the complex query class (multi-pod joins
// with OPTIONAL/aggregation/ordering) — the frontier the paper's §5 points
// at.
func BenchmarkComplexWorkload(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	queries := env.Dataset.ComplexQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			run, err := experiments.RunCatalogQuery(ctx, env, q, ltqp.Config{Lenient: true})
			if err != nil {
				b.Fatalf("%s: %v", q.Name, err)
			}
			if run.Results == 0 {
				b.Fatalf("%s: no results", q.Name)
			}
		}
	}
	b.ReportMetric(float64(len(queries)), "queries/op")
}

// BenchmarkScaleSweep measures how query cost grows with environment size
// — the dimension separating the paper's hosted 1,531-pod deployment from
// laptop-scale runs. Single-pod queries (Discover 1) should stay flat as
// pods are added; the multi-pod Discover 8 grows with the reachable
// subweb.
func BenchmarkScaleSweep(b *testing.B) {
	for _, persons := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("pods=%d", persons), func(b *testing.B) {
			cfg := solidbench.DefaultConfig()
			cfg.Persons = persons
			env := simenv.New(cfg)
			defer env.Close()
			ctx := context.Background()
			var single, multi experiments.QueryRun
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				single, err = experiments.RunCatalogQuery(ctx, env, env.Dataset.Discover(1, 1), ltqp.Config{Lenient: true})
				if err != nil {
					b.Fatal(err)
				}
				multi, err = experiments.RunCatalogQuery(ctx, env, env.Dataset.Discover(8, 1), ltqp.Config{Lenient: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(single.Requests), "d1_reqs")
			b.ReportMetric(float64(multi.Requests), "d8_reqs")
			b.ReportMetric(float64(multi.PodsTouched), "d8_pods")
		})
	}
}

package obs

import (
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"ltqp/internal/metrics"
)

// Tail-based trace sampling: the keep/drop decision for a trace is made
// when the query *ends*, once its outcome is known — unlike head sampling,
// which must commit before knowing whether the trace will be interesting.
// Under loadgen-scale traffic this keeps the slow tail, every error,
// every budget abort and every degraded run, while dropping the healthy
// bulk, so /debug/traces always holds the traces worth reading at a
// bounded memory cost.
//
// The heavy trace payload (span tree, request timeline, critical path) is
// materialized lazily via the Offer callback only when the trace is kept;
// a dropped trace costs one mutex round and a few comparisons.

// Tail-sampling defaults. A query is "slow" when its latency exceeds the
// moving SlowQuantile of the recent window times SlowFactor — the factor
// keeps ordinary p95 noise out (a plain p95 cut would keep ~5% of healthy
// traffic by construction).
const (
	DefaultTraceCapacity   = 64
	DefaultTraceSampleRate = 0.02
	DefaultSlowQuantile    = 0.95
	DefaultSlowFactor      = 2.0

	slowWindowSize = 256
	slowMinWindow  = 32
)

// TraceOutcome is everything the keep decision needs about a finished
// query — cheap scalar facts only; the expensive payload comes later via
// the fill callback.
type TraceOutcome struct {
	TraceID  string
	QueryID  int64
	Query    string
	Tenant   string
	Start    time.Time
	Duration time.Duration
	TTFR     time.Duration // zero when no result was produced
	Results  int
	Err      string
	// Degraded marks a lenient run that lost documents or absorbed
	// retries; BudgetExceeded marks a resource-ledger abort.
	Degraded       bool
	BudgetExceeded bool
}

// TraceRecord is one kept trace: the outcome plus the materialized payload.
// It is immutable once stored and safe to serve concurrently.
type TraceRecord struct {
	TraceID        string        `json:"trace_id"`
	QueryID        int64         `json:"query_id"`
	Query          string        `json:"query,omitempty"`
	Tenant         string        `json:"tenant,omitempty"`
	Start          time.Time     `json:"start"`
	DurationMS     float64       `json:"duration_ms"`
	TTFRMS         float64       `json:"ttfr_ms,omitempty"`
	Results        int           `json:"results"`
	Err            string        `json:"error,omitempty"`
	Degraded       bool          `json:"degraded,omitempty"`
	BudgetExceeded bool          `json:"budget_exceeded,omitempty"`
	KeepReason     string        `json:"keep_reason"`
	Root           *SpanJSON     `json:"root,omitempty"`
	Requests       []RequestJSON `json:"requests,omitempty"`
	// ServerSpans carries pod-side spans when the exporter could reach the
	// server's span log (same-process harnesses, the trace-smoke artifact)
	// — the merged client+server DAG in one document.
	ServerSpans  []ServerSpan `json:"server_spans,omitempty"`
	CriticalPath *CritPath    `json:"critical_path,omitempty"`
}

// RequestJSON is the wire shape of one recorded dereference inside a kept
// trace, offsets relative to the query's recorder epoch.
type RequestJSON struct {
	URL      string  `json:"url"`
	Parent   string  `json:"parent,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	StartMS  float64 `json:"start_ms"`
	DurMS    float64 `json:"duration_ms"`
	ServerMS float64 `json:"server_ms,omitempty"`
	Status   int     `json:"status,omitempty"`
	Bytes    int64   `json:"bytes,omitempty"`
	Cached   bool    `json:"cached,omitempty"`
	Attempt  int     `json:"attempt,omitempty"`
	Err      string  `json:"error,omitempty"`
}

// RequestsJSON converts recorded requests to their kept-trace wire shape.
func RequestsJSON(reqs []metrics.Request, epoch time.Time) []RequestJSON {
	out := make([]RequestJSON, 0, len(reqs))
	for _, q := range reqs {
		out = append(out, RequestJSON{
			URL:      q.URL,
			Parent:   q.Parent,
			Reason:   q.Reason,
			StartMS:  durMS(q.Start.Sub(epoch)),
			DurMS:    durMS(q.Duration()),
			ServerMS: durMS(q.Server),
			Status:   q.Status,
			Bytes:    q.Bytes,
			Cached:   q.Cached,
			Attempt:  q.Attempt,
			Err:      q.Err,
		})
	}
	return out
}

func durMS(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(d.Microseconds()) / 1000
}

// TraceStoreOptions configure a TraceStore. Zero values take the defaults
// above; a negative SampleRate disables probabilistic keeps entirely.
type TraceStoreOptions struct {
	Capacity     int
	SampleRate   float64
	SlowQuantile float64
	SlowFactor   float64
	// Seed makes the probabilistic sampler deterministic in tests; 0 seeds
	// randomly.
	Seed uint64
	// Metrics, when set, counts keeps by reason (ltqp_traces_kept_total)
	// and drops (ltqp_traces_dropped_total).
	Metrics *Metrics
}

// TraceStore is a bounded ring of tail-sampled traces. All methods are
// safe on a nil receiver and for concurrent use.
type TraceStore struct {
	capacity int
	rate     float64
	quantile float64
	factor   float64

	kept    *CounterVec
	dropped *Counter

	mu     sync.Mutex
	rng    *rand.Rand
	window [slowWindowSize]float64 // recent query durations, seconds
	wi, wn int
	ring   []*TraceRecord // kept traces, oldest first
	seen   int64
}

// NewTraceStore builds a store with the given options.
func NewTraceStore(o TraceStoreOptions) *TraceStore {
	s := &TraceStore{
		capacity: o.Capacity,
		rate:     o.SampleRate,
		quantile: o.SlowQuantile,
		factor:   o.SlowFactor,
	}
	if s.capacity <= 0 {
		s.capacity = DefaultTraceCapacity
	}
	switch {
	case s.rate < 0:
		s.rate = 0
	case s.rate == 0:
		s.rate = DefaultTraceSampleRate
	}
	if s.quantile <= 0 || s.quantile >= 1 {
		s.quantile = DefaultSlowQuantile
	}
	if s.factor <= 0 {
		s.factor = DefaultSlowFactor
	}
	seed := o.Seed
	if seed == 0 {
		seed = rand.Uint64()
	}
	s.rng = rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	if m := o.Metrics; m != nil {
		s.kept = m.TracesKept
		s.dropped = m.TracesDropped
	}
	return s
}

// Offer submits a finished query for the keep decision. When the trace is
// kept, fill (if non-nil) is called exactly once to materialize the heavy
// payload on the record before it becomes visible; dropped traces never
// invoke fill. Returns whether the trace was kept and the keep reason
// ("error", "budget", "degraded", "slow" or "sampled").
func (s *TraceStore) Offer(o TraceOutcome, fill func(*TraceRecord)) (bool, string) {
	if s == nil {
		return false, ""
	}
	secs := o.Duration.Seconds()
	s.mu.Lock()
	var reason string
	switch {
	case o.BudgetExceeded:
		reason = "budget"
	case o.Err != "":
		reason = "error"
	case o.Degraded:
		reason = "degraded"
	default:
		if thr, ok := s.slowThresholdLocked(); ok && secs >= thr {
			reason = "slow"
		} else if s.rate > 0 && s.rng.Float64() < s.rate {
			reason = "sampled"
		}
	}
	// Every outcome — kept or not — feeds the moving latency window the
	// slow threshold is computed from.
	s.window[s.wi] = secs
	s.wi = (s.wi + 1) % slowWindowSize
	if s.wn < slowWindowSize {
		s.wn++
	}
	s.seen++
	s.mu.Unlock()

	if reason == "" {
		s.dropped.Inc()
		return false, ""
	}
	rec := &TraceRecord{
		TraceID:        o.TraceID,
		QueryID:        o.QueryID,
		Query:          o.Query,
		Tenant:         o.Tenant,
		Start:          o.Start,
		DurationMS:     durMS(o.Duration),
		TTFRMS:         durMS(o.TTFR),
		Results:        o.Results,
		Err:            o.Err,
		Degraded:       o.Degraded,
		BudgetExceeded: o.BudgetExceeded,
		KeepReason:     reason,
	}
	if fill != nil {
		fill(rec)
	}
	s.mu.Lock()
	s.ring = append(s.ring, rec)
	if len(s.ring) > s.capacity {
		// Drop the oldest; copy to avoid retaining evicted records via the
		// backing array.
		copy(s.ring, s.ring[1:])
		s.ring = s.ring[:s.capacity]
	}
	s.mu.Unlock()
	s.kept.With(reason).Inc()
	return true, reason
}

// slowThresholdLocked returns the current "slow" cut in seconds, or false
// during warmup (fewer than slowMinWindow completed queries): with no
// baseline yet, nothing can meaningfully be called slow.
func (s *TraceStore) slowThresholdLocked() (float64, bool) {
	if s.wn < slowMinWindow {
		return 0, false
	}
	buf := make([]float64, s.wn)
	copy(buf, s.window[:s.wn])
	sort.Float64s(buf)
	idx := int(s.quantile * float64(len(buf)))
	if idx >= len(buf) {
		idx = len(buf) - 1
	}
	return buf[idx] * s.factor, true
}

// Kept returns the kept traces, newest first.
func (s *TraceStore) Kept() []*TraceRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*TraceRecord, len(s.ring))
	for i, r := range s.ring {
		out[len(s.ring)-1-i] = r
	}
	return out
}

// Get returns the kept trace with the given trace ID, or nil.
func (s *TraceStore) Get(traceID string) *TraceRecord {
	if s == nil || traceID == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Newest match wins (IDs are unique in practice; retries of Offer are not).
	for i := len(s.ring) - 1; i >= 0; i-- {
		if s.ring[i].TraceID == traceID {
			return s.ring[i]
		}
	}
	return nil
}

// Len returns the number of kept traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// Seen returns the total number of offered traces.
func (s *TraceStore) Seen() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

package serve

import "time"

// LoadReport is the artifact written by cmd/loadgen (bench/BENCH_*_loadgen
// .json): one multi-client load run — or a baseline-vs-shared-cache pair —
// against a self-hosted endpoint, with throughput, latency percentiles, and
// the serving subsystem's counters. cmd/benchreport renders it with
// --loadgen.
type LoadReport struct {
	Generated time.Time  `json:"generated"`
	Kind      string     `json:"kind"` // always "loadgen"
	Config    LoadConfig `json:"config"`
	Runs      []LoadRun  `json:"runs"`
	// SpeedupVsBaseline is shared-cache QPS / baseline QPS when the report
	// holds a --compare pair (0 otherwise).
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// LoadConfig records the harness parameters a run was taken under.
type LoadConfig struct {
	Clients     int     `json:"clients"`
	Tenants     int     `json:"tenants"`
	DurationSec float64 `json:"duration_sec"`
	Persons     int     `json:"persons"`
	LatencyMS   float64 `json:"latency_ms"`
	QueryMix    int     `json:"query_mix"` // distinct queries in rotation
	MaxInFlight int     `json:"max_in_flight"`
	TenantQuota int     `json:"tenant_quota"`
}

// LoadRun is one measured configuration.
type LoadRun struct {
	// Label names the configuration: "baseline" (no shared cache) or
	// "shared" (shared cache + singleflight).
	Label string `json:"label"`
	// QPS is completed queries per second of wall clock.
	QPS       float64 `json:"qps"`
	Completed int64   `json:"completed"`
	Rejected  int64   `json:"rejected"` // 429s absorbed by client backoff
	Errors    int64   `json:"errors"`
	// Latency percentiles over completed queries, milliseconds.
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	// PodRequests / PodNotModified count origin traffic during the run.
	PodRequests    int64 `json:"pod_requests"`
	PodNotModified int64 `json:"pod_not_modified"`
	// Cache snapshots the shared cache after the run (zero for baseline);
	// Cache.DuplicateInflight proves the singleflight invariant held.
	Cache CacheStats `json:"cache"`
	// PeakMemBytes is the largest per-query resource-ledger high-water mark
	// observed across the run's queries (0 when the endpoint ran without
	// accounting).
	PeakMemBytes int64 `json:"peak_mem_bytes,omitempty"`
}

// Package experiments implements the reproduction of every figure and
// quantitative claim of the paper's demonstration (see DESIGN.md, E1–E10).
// Each experiment runs against the simulated Solid environment and returns
// structured measurements; bench_test.go turns them into benchmark series
// and cmd/benchreport prints the paper-vs-measured tables recorded in
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"time"

	"ltqp"
	"ltqp/internal/baseline"
	"ltqp/internal/rdf"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
	"ltqp/internal/sparql"
)

// QueryRun is the outcome of one traversal query execution.
type QueryRun struct {
	Query        string
	Results      int
	Total        time.Duration
	TTFR         time.Duration
	HasTTFR      bool
	Requests     int
	Failed       int
	Triples      int
	MaxDepth     int
	MaxParallel  int
	PodsTouched  int
	StoreTriples int
}

// RunCatalogQuery executes a catalog query over the environment with the
// given engine configuration (Client is filled in automatically).
func RunCatalogQuery(ctx context.Context, env *simenv.Env, q solidbench.Query, cfg ltqp.Config) (QueryRun, error) {
	cfg.Client = env.Client()
	engine := ltqp.New(cfg)
	start := time.Now()
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		return QueryRun{}, err
	}
	run := QueryRun{Query: q.Name}
	for range res.Results {
		run.Results++
	}
	run.Total = time.Since(start)
	if err := res.Err(); err != nil {
		return run, err
	}
	if ttfr, ok := res.Metrics().TimeToFirstResult(); ok {
		run.TTFR, run.HasTTFR = ttfr, true
	}
	s := res.Stats()
	run.Requests = s.Requests
	run.Failed = s.Failed
	run.Triples = s.TotalTriples
	run.MaxDepth = s.MaxDepth
	run.MaxParallel = s.MaxParallel
	run.PodsTouched = res.Metrics().PodsTouched()
	return run, nil
}

// E1CLIDiscover runs the Fig. 2 scenario: Discover 6 (forums of a creator)
// executed end to end, streaming JSON bindings.
func E1CLIDiscover(ctx context.Context, env *simenv.Env) (QueryRun, error) {
	return RunCatalogQuery(ctx, env, env.Dataset.Discover(6, 5), ltqp.Config{Lenient: true})
}

// E3WaterfallSinglePod runs Discover 1.5 (Fig. 4) and returns the run plus
// the rendered waterfall.
func E3WaterfallSinglePod(ctx context.Context, env *simenv.Env) (QueryRun, string, error) {
	q := env.Dataset.Discover(1, 5)
	engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true})
	start := time.Now()
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		return QueryRun{}, "", err
	}
	run := QueryRun{Query: q.Name}
	for range res.Results {
		run.Results++
	}
	run.Total = time.Since(start)
	if ttfr, ok := res.Metrics().TimeToFirstResult(); ok {
		run.TTFR, run.HasTTFR = ttfr, true
	}
	s := res.Stats()
	run.Requests, run.MaxDepth, run.MaxParallel = s.Requests, s.MaxDepth, s.MaxParallel
	run.PodsTouched = res.Metrics().PodsTouched()
	return run, res.Metrics().Waterfall(60), nil
}

// E4WaterfallMultiPod runs Discover 8.5 (Fig. 5): traversal across pods.
func E4WaterfallMultiPod(ctx context.Context, env *simenv.Env) (QueryRun, string, error) {
	q := env.Dataset.Discover(8, 5)
	engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true})
	start := time.Now()
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		return QueryRun{}, "", err
	}
	run := QueryRun{Query: q.Name}
	for range res.Results {
		run.Results++
	}
	run.Total = time.Since(start)
	if ttfr, ok := res.Metrics().TimeToFirstResult(); ok {
		run.TTFR, run.HasTTFR = ttfr, true
	}
	s := res.Stats()
	run.Requests, run.MaxDepth, run.MaxParallel = s.Requests, s.MaxDepth, s.MaxParallel
	run.PodsTouched = res.Metrics().PodsTouched()
	return run, res.Metrics().Waterfall(60), nil
}

// DatasetShape compares the generated environment with the paper's
// reported deployment (§4.2): per-pod file and triple ratios.
type DatasetShape struct {
	Pods, Files, Triples             int
	FilesPerPod, TriplesPerPod       float64
	PaperFilesPerPod, PaperTriplesPP float64
}

// E5DatasetStats measures the environment shape.
func E5DatasetStats(env *simenv.Env) DatasetShape {
	s := env.Stats()
	return DatasetShape{
		Pods: s.Pods, Files: s.Files, Triples: s.Triples,
		FilesPerPod:      float64(s.Files) / float64(s.Pods),
		TriplesPerPod:    float64(s.Triples) / float64(s.Pods),
		PaperFilesPerPod: float64(solidbench.PaperStats.Files) / float64(solidbench.PaperStats.Pods),
		PaperTriplesPP:   float64(solidbench.PaperStats.Triples) / float64(solidbench.PaperStats.Pods),
	}
}

// E6TTFR runs every Discover shape (variant 1) and reports time to first
// result and total time — the "first results < 1 s, non-complex queries in
// seconds" claim.
func E6TTFR(ctx context.Context, env *simenv.Env) ([]QueryRun, error) {
	var out []QueryRun
	for shape := 1; shape <= 8; shape++ {
		run, err := RunCatalogQuery(ctx, env, env.Dataset.Discover(shape, 1), ltqp.Config{Lenient: true})
		if err != nil {
			return out, fmt.Errorf("discover %d: %w", shape, err)
		}
		out = append(out, run)
	}
	return out, nil
}

// E7Catalog verifies the 37 default queries all parse and plan.
func E7Catalog(env *simenv.Env) (int, error) {
	catalog := env.Dataset.Catalog()
	for _, q := range catalog {
		if _, err := sparql.ParseQuery(q.Text); err != nil {
			return 0, fmt.Errorf("%s: %w", q.Name, err)
		}
	}
	return len(catalog), nil
}

// AblationRow is one strategy's cost on one query.
type AblationRow struct {
	Strategy string
	QueryRun
}

// E8ExtractorAblation compares link extraction strategies on a Discover
// query: the Solid-aware configurations should need far fewer requests
// than blind cAll traversal while still answering.
func E8ExtractorAblation(ctx context.Context, env *simenv.Env, shape int) ([]AblationRow, error) {
	var out []AblationRow
	strategies := []ltqp.Strategy{
		ltqp.StrategySolid,
		ltqp.StrategySolidNoLDP,
		ltqp.StrategyLDPOnly,
		ltqp.StrategyCMatch,
		ltqp.StrategyCAll,
	}
	q := env.Dataset.Discover(shape, 1)
	for _, s := range strategies {
		cfg := ltqp.Config{Lenient: true, Strategy: s}
		if s == ltqp.StrategyCAll {
			// Exhaustive traversal is capped like any sane deployment.
			cfg.MaxDocuments = 2000
		}
		run, err := RunCatalogQuery(ctx, env, q, cfg)
		if err != nil {
			return out, fmt.Errorf("strategy %s: %w", s, err)
		}
		out = append(out, AblationRow{Strategy: s.String(), QueryRun: run})
	}
	return out, nil
}

// OracleComparison contrasts traversal with the centralized baseline.
type OracleComparison struct {
	Traversal    QueryRun
	OracleCount  int
	IngestTime   time.Duration
	OracleTime   time.Duration
	IngestedTrpl int
}

// E9Centralized runs a Discover query both ways: link traversal (no prior
// index, pays HTTP) vs the oracle (full ingest upfront, instant queries).
func E9Centralized(ctx context.Context, env *simenv.Env, shape int) (OracleComparison, error) {
	var cmp OracleComparison
	run, err := RunCatalogQuery(ctx, env, env.Dataset.Discover(shape, 1), ltqp.Config{Lenient: true})
	if err != nil {
		return cmp, err
	}
	cmp.Traversal = run

	ingestStart := time.Now()
	st := baseline.CentralizedStore(env.Pods)
	cmp.IngestTime = time.Since(ingestStart)
	cmp.IngestedTrpl = st.Len()

	queryStart := time.Now()
	results, err := baseline.RunQuery(ctx, st, env.Dataset.Discover(shape, 1).Text)
	if err != nil {
		return cmp, err
	}
	cmp.OracleTime = time.Since(queryStart)
	cmp.OracleCount = len(results)
	return cmp, nil
}

// AuthComparison contrasts anonymous and authenticated runs over an
// access-controlled environment.
type AuthComparison struct {
	AnonResults   int
	AuthedResults int
	AnonDenied    int
}

// E10Auth builds an environment with private post documents and runs
// Discover 1 anonymously and on behalf of the owner.
func E10Auth(ctx context.Context, persons int, seed int64) (AuthComparison, error) {
	cfg := solidbench.SmallConfig()
	cfg.Persons = persons
	cfg.Seed = seed
	cfg.PrivateFraction = 0.8
	env := simenv.New(cfg)
	defer env.Close()
	q := env.Dataset.Discover(1, 1)

	var cmp AuthComparison
	anon, err := RunCatalogQuery(ctx, env, q, ltqp.Config{Lenient: true})
	if err != nil {
		return cmp, err
	}
	cmp.AnonResults = anon.Results
	cmp.AnonDenied = anon.Failed

	authed, err := RunCatalogQuery(ctx, env, q, ltqp.Config{
		Lenient: true,
		Auth:    env.CredentialsFor(q.Person),
	})
	if err != nil {
		return cmp, err
	}
	cmp.AuthedResults = authed.Results
	return cmp, nil
}

// GroundTruth counts the expected complete answer of a Discover shape for
// the environment (what an omniscient engine would return).
func GroundTruth(env *simenv.Env, shape, variant int) int {
	q := env.Dataset.Discover(shape, variant)
	ds := env.Dataset
	switch shape {
	case 1:
		n := 0
		for _, p := range ds.Posts {
			if p.Creator == q.Person && p.Image == "" {
				n++
			}
		}
		return n
	case 6:
		forums := map[int64]bool{}
		for fi, f := range ds.Forums {
			for _, pi := range f.Posts {
				if ds.Posts[pi].Creator == q.Person {
					forums[ds.Forums[fi].ID] = true
					break
				}
			}
		}
		return len(forums)
	default:
		return -1
	}
}

// Binding re-exports for convenience of report printing.
type Binding = rdf.Binding

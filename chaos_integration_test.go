package ltqp_test

// Chaos integration tests: the engine runs a SolidBench Discover query
// end-to-end while the network misbehaves. With transient faults (injected
// 503s, latency) the retry layer must make the result set identical to the
// fault-free run; with permanent faults, lenient mode must return partial
// results and report exactly which documents were lost — degradation is
// observable, never silent.

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/faultinject"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

// bindingKeys canonicalizes a result set for comparison.
func bindingKeys(bs []ltqp.Binding, vars []string) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Key(vars)
	}
	return out
}

// runQuery drains a query started against the given client and returns the
// results plus the finished Result for metrics inspection.
func runQuery(t *testing.T, cfg ltqp.Config, query string) ([]ltqp.Binding, *ltqp.Result) {
	t.Helper()
	engine := ltqp.New(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := engine.Query(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	var all []ltqp.Binding
	for b := range res.Results {
		all = append(all, b)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return all, res
}

// TestChaosRetryPreservesResults runs Discover 1.1 fault-free, then again
// with ~20% of requests answered 503 (plus added latency) — bounded per URL
// so every document eventually succeeds. The retry path alone (leniency
// off) must reproduce the identical result set.
func TestChaosRetryPreservesResults(t *testing.T) {
	cfg := solidbench.SmallConfig()
	env := simenv.New(cfg)
	defer env.Close()
	q := env.Dataset.Discover(1, 1)

	baseline, baseRes := runQuery(t, ltqp.Config{Client: env.Client(), Lenient: true}, q.Text)
	if len(baseline) == 0 {
		t.Fatal("fault-free run returned no results")
	}

	inj := faultinject.New(1234, faultinject.Rule{
		Probability:     0.2,
		Kind:            faultinject.Status,
		Status:          503,
		Latency:         time.Millisecond,
		MaxFaultsPerURL: 2,
	})
	chaosCfg := ltqp.Config{
		Client:  inj.Client(env.Client()),
		Lenient: true,
		Retry: &ltqp.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
			Seed:        1,
		},
	}
	chaos, res := runQuery(t, chaosCfg, q.Text)

	if inj.FaultCount() == 0 {
		t.Fatal("no faults injected; the chaos run proved nothing")
	}
	vars := res.Vars
	ltqp.SortBindings(chaos, vars)
	ltqp.SortBindings(baseline, vars)
	got, want := bindingKeys(chaos, vars), bindingKeys(baseline, vars)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("chaos results differ from fault-free run:\nchaos: %v\nbaseline: %v", got, want)
	}

	if res.Stats().Retries == 0 {
		t.Error("no retries recorded despite injected 503s")
	}
	// Every injected fault was transient, so the chaos run must lose
	// exactly the documents the fault-free run also lost (vocabulary
	// IRIs that 404 regardless) — nothing more.
	baseFailed := map[string]bool{}
	for _, u := range baseRes.Degradation().FailedDocuments {
		baseFailed[u] = true
	}
	for _, u := range res.Degradation().FailedDocuments {
		if !baseFailed[u] {
			t.Errorf("transient faults permanently took out %s", u)
		}
	}
}

// TestChaosLenientDegradation makes every post document permanently fail
// (500s from the pod server itself, via middleware) and runs the same query
// leniently: the query completes with partial results, and the degradation
// report names exactly the documents the faults took out.
func TestChaosLenientDegradation(t *testing.T) {
	inj := faultinject.New(99, faultinject.Rule{
		Pattern:     "/posts/",
		Probability: 1,
		Kind:        faultinject.Status,
		Status:      500,
	})
	cfg := solidbench.SmallConfig()
	env := simenv.NewWith(cfg, func(h http.Handler) http.Handler { return inj.Middleware(h) })
	defer env.Close()
	q := env.Dataset.Discover(1, 1)

	// The query asks for the person's posts; with every post file down it
	// must still complete — with fewer results than the data holds.
	full := 0
	for _, p := range env.Dataset.Posts {
		if p.Creator == q.Person && p.Image == "" {
			full++
		}
	}
	if full == 0 {
		t.Fatal("dataset has no qualifying posts; query proves nothing")
	}

	results, res := runQuery(t, ltqp.Config{
		Client:  env.Client(),
		Lenient: true,
		Retry: &ltqp.RetryPolicy{
			MaxAttempts: 2,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
		},
	}, q.Text)

	if len(results) >= full {
		t.Errorf("results = %d, want fewer than the fault-free %d", len(results), full)
	}

	deg := res.Degradation()
	if len(deg.FailedDocuments) == 0 {
		t.Fatal("lenient run lost documents but reported none")
	}
	// The failure report is accurate: its /posts/ entries are exactly
	// the distinct URLs the injector faulted, no more, no fewer. (The
	// report may additionally name vocabulary IRIs that 404 even in
	// fault-free runs.)
	faulted := map[string]bool{}
	for _, ev := range inj.Events() {
		faulted[ev.URL] = true
	}
	failedPosts := map[string]bool{}
	for _, u := range deg.FailedDocuments {
		if strings.Contains(u, "/posts/") {
			failedPosts[u] = true
		}
	}
	if len(failedPosts) != len(faulted) {
		t.Errorf("degradation reports %d failed post documents, injector faulted %d distinct URLs",
			len(failedPosts), len(faulted))
	}
	for u := range faulted {
		if !failedPosts[u] {
			t.Errorf("faulted document %s missing from the degradation report", u)
		}
	}
	if s := res.Stats(); s.FailedDocuments != len(deg.FailedDocuments) {
		t.Errorf("Stats.FailedDocuments = %d, Degradation = %d", s.FailedDocuments, len(deg.FailedDocuments))
	}
}

// TestChaosDeterministicSchedules reruns the same chaos query twice
// against one environment with same-seeded injectors and asserts the two
// fault schedules are identical — the property that makes chaos failures
// reproducible. (The fault decision hashes the full URL, so the runs share
// an environment to keep the ephemeral test port constant.)
func TestChaosDeterministicSchedules(t *testing.T) {
	cfg := solidbench.SmallConfig()
	env := simenv.New(cfg)
	defer env.Close()
	q := env.Dataset.Discover(1, 1)

	schedule := func() []faultinject.Event {
		inj := faultinject.New(7, faultinject.Rule{
			Probability:     0.2,
			Kind:            faultinject.Status,
			Status:          503,
			MaxFaultsPerURL: 2,
		})
		runQuery(t, ltqp.Config{
			Client:  inj.Client(env.Client()),
			Lenient: true,
			Retry:   &ltqp.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		}, q.Text)
		return inj.Events()
	}

	a, b := schedule(), schedule()
	if len(a) == 0 {
		t.Fatal("no faults injected")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

package sparql

import (
	"fmt"
	"strings"

	"ltqp/internal/rdf"
)

// ParseQuery parses a SPARQL query string into its AST.
func ParseQuery(input string) (*Query, error) {
	toks, err := lexAll(input)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks, prefixes: map[string]string{}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// qparser is the recursive-descent parser state.
type qparser struct {
	toks     []token
	pos      int
	base     string
	prefixes map[string]string
	bnodeN   int
}

func (p *qparser) cur() token  { return p.toks[p.pos] }
func (p *qparser) advance()    { p.pos++ }
func (p *qparser) peek() token { return p.toks[p.pos] }

func (p *qparser) peekAt(off int) token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+off]
}

func (p *qparser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sparql: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// isKeyword reports whether the current token is the given case-insensitive
// keyword.
func (p *qparser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && strings.EqualFold(t.text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *qparser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *qparser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.cur())
	}
	return nil
}

// isPunct reports whether the current token is the given punctuation.
func (p *qparser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

// acceptPunct consumes the punctuation if present.
func (p *qparser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

// expectPunct consumes the punctuation or errors.
func (p *qparser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %s", s, p.cur())
	}
	return nil
}

// freshBlank mints a parser-scoped blank node, used for anonymous nodes in
// patterns (which act as non-projectable variables).
func (p *qparser) freshBlank() rdf.Term {
	p.bnodeN++
	return rdf.NewBlank(fmt.Sprintf("q.genid%d", p.bnodeN))
}

// expandPName expands "prefix:local" using declared prefixes.
func (p *qparser) expandPName(pname string) (string, error) {
	i := strings.IndexByte(pname, ':')
	ns, ok := p.prefixes[pname[:i]]
	if !ok {
		return "", p.errf("undeclared prefix %q", pname[:i])
	}
	return ns + pname[i+1:], nil
}

// parseQuery parses Prologue + query form + final VALUES.
func (p *qparser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1, Prefixes: p.prefixes}
	// Prologue.
	for {
		switch {
		case p.isKeyword("PREFIX"):
			p.advance()
			t := p.cur()
			if t.kind != tokPName || !strings.HasSuffix(t.text, ":") {
				return nil, p.errf("expected prefix declaration, got %s", t)
			}
			label := strings.TrimSuffix(t.text, ":")
			p.advance()
			iri := p.cur()
			if iri.kind != tokIRI {
				return nil, p.errf("expected IRI in PREFIX, got %s", iri)
			}
			p.prefixes[label] = rdf.ResolveIRI(p.base, iri.text)
			p.advance()
		case p.isKeyword("BASE"):
			p.advance()
			iri := p.cur()
			if iri.kind != tokIRI {
				return nil, p.errf("expected IRI in BASE, got %s", iri)
			}
			p.base = iri.text
			q.Base = p.base
			p.advance()
		default:
			goto form
		}
	}
form:
	switch {
	case p.isKeyword("SELECT"):
		if err := p.parseSelect(q); err != nil {
			return nil, err
		}
	case p.isKeyword("ASK"):
		p.advance()
		q.Form = FormAsk
		if err := p.parseDatasetClauses(q); err != nil {
			return nil, err
		}
		where, err := p.parseWhereClause()
		if err != nil {
			return nil, err
		}
		q.Where = where
		if err := p.parseSolutionModifiers(q); err != nil {
			return nil, err
		}
	case p.isKeyword("CONSTRUCT"):
		if err := p.parseConstruct(q); err != nil {
			return nil, err
		}
	case p.isKeyword("DESCRIBE"):
		if err := p.parseDescribe(q); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected SELECT, ASK, CONSTRUCT or DESCRIBE, got %s", p.cur())
	}
	// Trailing VALUES clause.
	if p.isKeyword("VALUES") {
		v, err := p.parseValues()
		if err != nil {
			return nil, err
		}
		q.Values = &v
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input: %s", p.cur())
	}
	return q, nil
}

// parseSelect parses the SELECT form.
func (p *qparser) parseSelect(q *Query) error {
	p.advance() // SELECT
	q.Form = FormSelect
	if p.acceptKeyword("DISTINCT") {
		q.Distinct = true
	} else if p.acceptKeyword("REDUCED") {
		q.Reduced = true
	}
	if p.acceptPunct("*") {
		// SELECT * — empty projection.
	} else {
		for {
			t := p.cur()
			if t.kind == tokVar {
				q.Projection = append(q.Projection, SelectItem{Var: t.text})
				p.advance()
			} else if p.isPunct("(") {
				p.advance()
				expr, err := p.parseExpression()
				if err != nil {
					return err
				}
				if err := p.expectKeyword("AS"); err != nil {
					return err
				}
				v := p.cur()
				if v.kind != tokVar {
					return p.errf("expected variable after AS, got %s", v)
				}
				p.advance()
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.Projection = append(q.Projection, SelectItem{Var: v.text, Expr: expr})
			} else {
				break
			}
		}
		if len(q.Projection) == 0 {
			return p.errf("SELECT requires at least one variable or *")
		}
	}
	if err := p.parseDatasetClauses(q); err != nil {
		return err
	}
	where, err := p.parseWhereClause()
	if err != nil {
		return err
	}
	q.Where = where
	return p.parseSolutionModifiers(q)
}

// parseConstruct parses CONSTRUCT { template } WHERE { ... } and the
// abbreviated CONSTRUCT WHERE { bgp } form.
func (p *qparser) parseConstruct(q *Query) error {
	p.advance() // CONSTRUCT
	q.Form = FormConstruct
	if p.isPunct("{") {
		p.advance()
		tmpl, err := p.parseTriplesBlock()
		if err != nil {
			return err
		}
		q.Template = tmpl
		if err := p.expectPunct("}"); err != nil {
			return err
		}
		if err := p.parseDatasetClauses(q); err != nil {
			return err
		}
		where, err := p.parseWhereClause()
		if err != nil {
			return err
		}
		q.Where = where
	} else {
		// CONSTRUCT WHERE { pattern } — template is the pattern itself.
		if err := p.expectKeyword("WHERE"); err != nil {
			return err
		}
		if err := p.expectPunct("{"); err != nil {
			return err
		}
		tmpl, err := p.parseTriplesBlock()
		if err != nil {
			return err
		}
		if err := p.expectPunct("}"); err != nil {
			return err
		}
		q.Template = tmpl
		q.Where = &GroupPattern{Elements: []GraphPattern{BGP{Patterns: tmpl}}}
	}
	return p.parseSolutionModifiers(q)
}

// parseDescribe parses DESCRIBE (var|iri)+ WHERE? { ... }.
func (p *qparser) parseDescribe(q *Query) error {
	p.advance()
	q.Form = FormDescribe
	if p.acceptPunct("*") {
		// DESCRIBE * — all pattern variables.
	} else {
		for {
			t := p.cur()
			switch t.kind {
			case tokVar:
				q.Describe = append(q.Describe, rdf.NewVar(t.text))
				p.advance()
				continue
			case tokIRI:
				q.Describe = append(q.Describe, rdf.NewIRI(rdf.ResolveIRI(p.base, t.text)))
				p.advance()
				continue
			case tokPName:
				iri, err := p.expandPName(t.text)
				if err != nil {
					return err
				}
				q.Describe = append(q.Describe, rdf.NewIRI(iri))
				p.advance()
				continue
			}
			break
		}
		if len(q.Describe) == 0 {
			return p.errf("DESCRIBE requires at least one resource")
		}
	}
	if err := p.parseDatasetClauses(q); err != nil {
		return err
	}
	if p.isPunct("{") || p.isKeyword("WHERE") {
		where, err := p.parseWhereClause()
		if err != nil {
			return err
		}
		q.Where = where
	} else {
		q.Where = &GroupPattern{}
	}
	return p.parseSolutionModifiers(q)
}

// parseDatasetClauses parses (FROM NAMED? IRI)* into q.From.
func (p *qparser) parseDatasetClauses(q *Query) error {
	for p.isKeyword("FROM") {
		p.advance()
		p.acceptKeyword("NAMED")
		t, err := p.parseVarOrIRI()
		if err != nil {
			return err
		}
		if t.Kind != rdf.TermIRI {
			return p.errf("expected IRI in FROM clause")
		}
		q.From = append(q.From, t.Value)
	}
	return nil
}

// parseWhereClause parses WHERE? GroupGraphPattern.
func (p *qparser) parseWhereClause() (*GroupPattern, error) {
	p.acceptKeyword("WHERE")
	gp, err := p.parseGroupGraphPattern()
	if err != nil {
		return nil, err
	}
	if g, ok := gp.(GroupPattern); ok {
		return &g, nil
	}
	return &GroupPattern{Elements: []GraphPattern{gp}}, nil
}

// parseSolutionModifiers parses GROUP BY, HAVING, ORDER BY, LIMIT, OFFSET.
func (p *qparser) parseSolutionModifiers(q *Query) error {
	if p.isKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			t := p.cur()
			if t.kind == tokVar {
				q.GroupBy = append(q.GroupBy, GroupCondition{Var: t.text})
				p.advance()
				continue
			}
			if p.isPunct("(") {
				p.advance()
				expr, err := p.parseExpression()
				if err != nil {
					return err
				}
				gc := GroupCondition{Expr: expr}
				if p.acceptKeyword("AS") {
					v := p.cur()
					if v.kind != tokVar {
						return p.errf("expected variable after AS")
					}
					gc.Var = v.text
					p.advance()
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.GroupBy = append(q.GroupBy, gc)
				continue
			}
			break
		}
		if len(q.GroupBy) == 0 {
			return p.errf("GROUP BY requires at least one condition")
		}
	}
	if p.isKeyword("HAVING") {
		p.advance()
		for p.isPunct("(") {
			p.advance()
			expr, err := p.parseExpression()
			if err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			q.Having = append(q.Having, expr)
		}
		if len(q.Having) == 0 {
			return p.errf("HAVING requires at least one constraint")
		}
	}
	if p.isKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			switch {
			case p.isKeyword("ASC"), p.isKeyword("DESC"):
				desc := p.isKeyword("DESC")
				p.advance()
				if err := p.expectPunct("("); err != nil {
					return err
				}
				expr, err := p.parseExpression()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderCondition{Expr: expr, Desc: desc})
				continue
			case p.cur().kind == tokVar:
				q.OrderBy = append(q.OrderBy, OrderCondition{Expr: ExprVar{Name: p.cur().text}})
				p.advance()
				continue
			case p.isPunct("("):
				p.advance()
				expr, err := p.parseExpression()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderCondition{Expr: expr})
				continue
			case p.cur().kind == tokKeyword && isBuiltinName(p.cur().text):
				expr, err := p.parsePrimaryExpression()
				if err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderCondition{Expr: expr})
				continue
			}
			break
		}
		if len(q.OrderBy) == 0 {
			return p.errf("ORDER BY requires at least one condition")
		}
	}
	// LIMIT and OFFSET in either order.
	for {
		switch {
		case p.isKeyword("LIMIT"):
			p.advance()
			n, err := p.parseNonNegInt()
			if err != nil {
				return err
			}
			q.Limit = n
		case p.isKeyword("OFFSET"):
			p.advance()
			n, err := p.parseNonNegInt()
			if err != nil {
				return err
			}
			q.Offset = n
		default:
			return nil
		}
	}
}

func (p *qparser) parseNonNegInt() (int, error) {
	t := p.cur()
	if t.kind != tokInteger {
		return 0, p.errf("expected integer, got %s", t)
	}
	p.advance()
	n := 0
	for _, c := range t.text {
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// parseGroupGraphPattern parses `{ ... }` including subselects.
func (p *qparser) parseGroupGraphPattern() (GraphPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	if p.isKeyword("SELECT") {
		sub := &Query{Limit: -1, Prefixes: p.prefixes}
		if err := p.parseSelect(sub); err != nil {
			return nil, err
		}
		if p.isKeyword("VALUES") {
			v, err := p.parseValues()
			if err != nil {
				return nil, err
			}
			sub.Values = &v
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return SubSelect{Query: sub}, nil
	}
	group := GroupPattern{}
	for {
		if p.isPunct("}") {
			p.advance()
			return group, nil
		}
		switch {
		case p.isKeyword("OPTIONAL"):
			p.advance()
			inner, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			group.Elements = append(group.Elements, OptionalPattern{Pattern: inner})
		case p.isKeyword("MINUS"):
			p.advance()
			inner, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			group.Elements = append(group.Elements, MinusPattern{Pattern: inner})
		case p.isKeyword("FILTER"):
			p.advance()
			expr, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			group.Elements = append(group.Elements, FilterPattern{Expr: expr})
		case p.isKeyword("BIND"):
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			expr, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			v := p.cur()
			if v.kind != tokVar {
				return nil, p.errf("expected variable after AS, got %s", v)
			}
			p.advance()
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			group.Elements = append(group.Elements, BindPattern{Expr: expr, Var: v.text})
		case p.isKeyword("VALUES"):
			v, err := p.parseValues()
			if err != nil {
				return nil, err
			}
			group.Elements = append(group.Elements, v)
		case p.isKeyword("GRAPH"):
			p.advance()
			g, err := p.parseVarOrIRI()
			if err != nil {
				return nil, err
			}
			inner, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			group.Elements = append(group.Elements, GraphGraphPattern{Graph: g, Pattern: inner})
		case p.isKeyword("SERVICE"):
			return nil, p.errf("SERVICE (federation) is not supported by the traversal engine")
		case p.isPunct("{"):
			first, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			for p.isKeyword("UNION") {
				p.advance()
				right, err := p.parseGroupGraphPattern()
				if err != nil {
					return nil, err
				}
				first = UnionPattern{Left: first, Right: right}
			}
			group.Elements = append(group.Elements, first)
		default:
			bgp, err := p.parseTriplesBlock()
			if err != nil {
				return nil, err
			}
			if len(bgp) > 0 {
				group.Elements = append(group.Elements, BGP{Patterns: bgp})
			} else {
				return nil, p.errf("unexpected token %s in group graph pattern", p.cur())
			}
		}
		p.acceptPunct(".")
	}
}

// parseConstraint parses a FILTER constraint: parenthesized expression or
// builtin call.
func (p *qparser) parseConstraint() (Expression, error) {
	if p.isPunct("(") {
		p.advance()
		expr, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return expr, nil
	}
	return p.parsePrimaryExpression()
}

// parseVarOrIRI parses a variable or IRI term.
func (p *qparser) parseVarOrIRI() (rdf.Term, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.advance()
		return rdf.NewVar(t.text), nil
	case tokIRI:
		p.advance()
		return rdf.NewIRI(rdf.ResolveIRI(p.base, t.text)), nil
	case tokPName:
		iri, err := p.expandPName(t.text)
		if err != nil {
			return rdf.Term{}, err
		}
		p.advance()
		return rdf.NewIRI(iri), nil
	}
	return rdf.Term{}, p.errf("expected variable or IRI, got %s", t)
}

// parseValues parses a VALUES data block.
func (p *qparser) parseValues() (ValuesPattern, error) {
	p.advance() // VALUES
	v := ValuesPattern{}
	multi := false
	if p.acceptPunct("(") {
		multi = true
		for p.cur().kind == tokVar {
			v.Vars = append(v.Vars, p.cur().text)
			p.advance()
		}
		if err := p.expectPunct(")"); err != nil {
			return v, err
		}
	} else {
		t := p.cur()
		if t.kind != tokVar {
			return v, p.errf("expected variable in VALUES, got %s", t)
		}
		v.Vars = []string{t.text}
		p.advance()
	}
	if err := p.expectPunct("{"); err != nil {
		return v, err
	}
	for !p.isPunct("}") {
		row := rdf.NewBinding()
		if multi {
			if err := p.expectPunct("("); err != nil {
				return v, err
			}
			for i := 0; i < len(v.Vars); i++ {
				term, undef, err := p.parseDataValue()
				if err != nil {
					return v, err
				}
				if !undef {
					row[v.Vars[i]] = term
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return v, err
			}
		} else {
			term, undef, err := p.parseDataValue()
			if err != nil {
				return v, err
			}
			if !undef {
				row[v.Vars[0]] = term
			}
		}
		v.Rows = append(v.Rows, row)
	}
	p.advance() // '}'
	return v, nil
}

// parseDataValue parses one VALUES cell: an IRI, literal, or UNDEF.
func (p *qparser) parseDataValue() (rdf.Term, bool, error) {
	if p.isKeyword("UNDEF") {
		p.advance()
		return rdf.Term{}, true, nil
	}
	term, err := p.parseGraphTerm()
	if err != nil {
		return rdf.Term{}, false, err
	}
	return term, false, nil
}

// parseGraphTerm parses a constant term: IRI, literal, boolean, number.
func (p *qparser) parseGraphTerm() (rdf.Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIRI:
		p.advance()
		return rdf.NewIRI(rdf.ResolveIRI(p.base, t.text)), nil
	case tokPName:
		iri, err := p.expandPName(t.text)
		if err != nil {
			return rdf.Term{}, err
		}
		p.advance()
		return rdf.NewIRI(iri), nil
	case tokString:
		p.advance()
		return p.parseLiteralTail(t.text)
	case tokInteger:
		p.advance()
		return rdf.NewTypedLiteral(t.text, rdf.XSDInteger), nil
	case tokDecimal:
		p.advance()
		return rdf.NewTypedLiteral(t.text, rdf.XSDDecimal), nil
	case tokDouble:
		p.advance()
		return rdf.NewTypedLiteral(t.text, rdf.XSDDouble), nil
	case tokKeyword:
		if strings.EqualFold(t.text, "true") {
			p.advance()
			return rdf.Boolean(true), nil
		}
		if strings.EqualFold(t.text, "false") {
			p.advance()
			return rdf.Boolean(false), nil
		}
	case tokPunct:
		if t.text == "-" || t.text == "+" {
			// Signed numeric literal.
			sign := t.text
			p.advance()
			n := p.cur()
			switch n.kind {
			case tokInteger:
				p.advance()
				return rdf.NewTypedLiteral(sign+n.text, rdf.XSDInteger), nil
			case tokDecimal:
				p.advance()
				return rdf.NewTypedLiteral(sign+n.text, rdf.XSDDecimal), nil
			case tokDouble:
				p.advance()
				return rdf.NewTypedLiteral(sign+n.text, rdf.XSDDouble), nil
			}
			return rdf.Term{}, p.errf("expected number after %q", sign)
		}
	}
	return rdf.Term{}, p.errf("expected RDF term, got %s", t)
}

// parseLiteralTail attaches @lang or ^^datatype to a scanned string.
func (p *qparser) parseLiteralTail(lex string) (rdf.Term, error) {
	t := p.cur()
	if t.kind == tokLangTag {
		p.advance()
		return rdf.NewLangLiteral(lex, t.text), nil
	}
	if t.kind == tokPunct && t.text == "^^" {
		p.advance()
		dt := p.cur()
		switch dt.kind {
		case tokIRI:
			p.advance()
			return rdf.NewTypedLiteral(lex, rdf.ResolveIRI(p.base, dt.text)), nil
		case tokPName:
			iri, err := p.expandPName(dt.text)
			if err != nil {
				return rdf.Term{}, err
			}
			p.advance()
			return rdf.NewTypedLiteral(lex, iri), nil
		}
		return rdf.Term{}, p.errf("expected datatype IRI after ^^")
	}
	return rdf.NewLiteral(lex), nil
}

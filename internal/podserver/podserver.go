// Package podserver serves simulated Solid pods over real HTTP. It
// reproduces the environment of the paper's demonstration scenario: a host
// exposing many pods under /pods/<id>/, each a hierarchy of Turtle
// documents with LDP container listings, WebID profiles, and type indexes.
// Document-level access control is enforced from bearer WebID credentials,
// and an artificial network latency can be injected so that resource
// waterfalls (Figs. 4 and 5) exhibit realistic request timing.
package podserver

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ltqp/internal/solid"
)

// TokenFor returns the simulated identity provider's bearer token for a
// WebID. The dereferencer presents it; the server verifies it. This stands
// in for the Solid-OIDC flow of the paper's demo ("Log in").
func TokenFor(webID string) string { return "sig:" + webID }

// servedDoc is a fully rendered document ready to serve.
type servedDoc struct {
	turtle string
	access solid.Access
}

// Server hosts a set of materialized pods.
type Server struct {
	mu   sync.RWMutex
	docs map[string]servedDoc // absolute URL (no fragment) → doc

	// Latency is added to every response, simulating network RTT.
	Latency time.Duration
	// BytesPerSecond, when > 0, adds size-proportional delay.
	BytesPerSecond int64

	requests atomic.Int64
}

// New returns an empty server.
func New() *Server {
	return &Server{docs: map[string]servedDoc{}}
}

// AddPod materializes the pod (containers included) and registers all its
// documents.
func (s *Server) AddPod(p *solid.Pod) {
	docs := p.Materialize()
	s.mu.Lock()
	defer s.mu.Unlock()
	for path, d := range docs {
		s.docs[p.IRI(path)] = servedDoc{turtle: p.Turtle(d), access: d.Access}
	}
}

// AddDocument registers one standalone document by absolute URL.
func (s *Server) AddDocument(url, turtleBody string, access solid.Access) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[url] = servedDoc{turtle: turtleBody, access: access}
}

// DocumentCount returns the number of registered documents.
func (s *Server) DocumentCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// RequestCount returns the number of HTTP requests served.
func (s *Server) RequestCount() int64 { return s.requests.Load() }

// ResetRequestCount zeroes the request counter (benchmarks).
func (s *Server) ResetRequestCount() { s.requests.Store(0) }

// Rebase rewrites all registered document URLs and bodies from one base URL
// prefix to another. The simulated environment builds pods under a
// placeholder origin; once the HTTP test server assigns a real port, Rebase
// moves the content there so that all intra-pod links dereference.
func (s *Server) Rebase(oldPrefix, newPrefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]servedDoc, len(s.docs))
	for u, d := range s.docs {
		nu := strings.Replace(u, oldPrefix, newPrefix, 1)
		d.turtle = strings.ReplaceAll(d.turtle, oldPrefix, newPrefix)
		out[nu] = d
	}
	s.docs = out
}

// ServeHTTP implements http.Handler with Solid-ish behaviour: Turtle
// responses, 401/403 for protected documents, 404 otherwise.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	docURL := requestURL(r)
	s.mu.RLock()
	d, ok := s.docs[docURL]
	s.mu.RUnlock()
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	if !d.access.Public {
		webID, authorized := s.authorize(r, d.access)
		if webID == "" {
			w.Header().Set("WWW-Authenticate", `Bearer realm="solid"`)
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		if !authorized {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
	}
	if s.BytesPerSecond > 0 {
		time.Sleep(time.Duration(int64(len(d.turtle)) * int64(time.Second) / s.BytesPerSecond))
	}
	w.Header().Set("Content-Type", "text/turtle")
	w.Header().Set("Link", `<http://www.w3.org/ns/ldp#Resource>; rel="type"`)
	if r.Method == http.MethodHead {
		return
	}
	fmt.Fprint(w, d.turtle)
}

// authorize extracts and verifies the caller's WebID, then checks the ACL.
func (s *Server) authorize(r *http.Request, access solid.Access) (webID string, ok bool) {
	auth := r.Header.Get("Authorization")
	if !strings.HasPrefix(auth, "Bearer ") {
		return "", false
	}
	token := strings.TrimPrefix(auth, "Bearer ")
	claimed := r.Header.Get("X-WebID")
	if claimed == "" || TokenFor(claimed) != token {
		return "", false
	}
	for _, agent := range access.Agents {
		if agent == claimed {
			return claimed, true
		}
	}
	return claimed, false
}

// requestURL reconstructs the absolute document URL of a request.
func requestURL(r *http.Request) string {
	scheme := "http"
	if r.TLS != nil {
		scheme = "https"
	}
	u := url.URL{Scheme: scheme, Host: r.Host, Path: r.URL.Path}
	return u.String()
}

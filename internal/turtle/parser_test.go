package turtle

import (
	"strings"
	"testing"

	"ltqp/internal/rdf"
)

func mustParse(t *testing.T, input string, opts Options) []rdf.Triple {
	t.Helper()
	ts, err := Parse(input, opts)
	if err != nil {
		t.Fatalf("Parse error: %v\ninput:\n%s", err, input)
	}
	return ts
}

func TestParseSimpleTriple(t *testing.T) {
	ts := mustParse(t, `<http://a> <http://p> <http://b> .`, Options{})
	if len(ts) != 1 {
		t.Fatalf("got %d triples", len(ts))
	}
	want := rdf.NewTriple(rdf.NewIRI("http://a"), rdf.NewIRI("http://p"), rdf.NewIRI("http://b"))
	if ts[0] != want {
		t.Errorf("triple = %v, want %v", ts[0], want)
	}
}

func TestParsePrefixes(t *testing.T) {
	input := `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
PREFIX ex: <http://example.org/>
ex:alice foaf:name "Alice" ; foaf:knows ex:bob .
`
	ts := mustParse(t, input, Options{})
	if len(ts) != 2 {
		t.Fatalf("got %d triples: %v", len(ts), ts)
	}
	if ts[0].P != rdf.NewIRI(rdf.FOAFName) || ts[0].O != rdf.NewLiteral("Alice") {
		t.Errorf("triple 0 = %v", ts[0])
	}
	if ts[1].O != rdf.NewIRI("http://example.org/bob") {
		t.Errorf("triple 1 = %v", ts[1])
	}
}

func TestParsePaperListing1(t *testing.T) {
	// The LDP container from the paper (Listing 1), with its typo fixed.
	input := `
PREFIX ldp: <http://www.w3.org/ns/ldp#>
<> a ldp:Container, ldp:BasicContainer, ldp:Resource;
  ldp:contains <file.ttl>, <posts/>, <profile/>.
<file.ttl> a ldp:Resource.
<posts/> a ldp:Container, ldp:BasicContainer, ldp:Resource.
<profile/> a ldp:Container, ldp:BasicContainer, ldp:Resource.
`
	base := "https://pod.example/"
	ts := mustParse(t, input, Options{Base: base})
	g := rdf.NewGraph()
	g.AddAll(ts)
	if !g.IsA(rdf.NewIRI(base), rdf.LDPBasicContainer) {
		t.Error("root should be a BasicContainer")
	}
	contains := g.Objects(rdf.NewIRI(base), rdf.NewIRI(rdf.LDPContains))
	if len(contains) != 3 {
		t.Fatalf("contains = %v", contains)
	}
	if contains[1] != rdf.NewIRI(base+"posts/") {
		t.Errorf("relative IRI resolution: %v", contains[1])
	}
}

func TestParsePaperListing2WebID(t *testing.T) {
	input := `
PREFIX pim: <http://www.w3.org/ns/pim/space#>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX solid: <http://www.w3.org/ns/solid/terms#>
<#me> foaf:name "Zulma";
  pim:storage </>;
  solid:oidcIssuer <https://solidcommunity.net/>;
  solid:publicTypeIndex </publicTypeIndex.ttl>.
`
	base := "https://pod.example/profile/card"
	ts := mustParse(t, input, Options{Base: base})
	g := rdf.NewGraph()
	g.AddAll(ts)
	me := rdf.NewIRI(base + "#me")
	if got := g.FirstObject(me, rdf.NewIRI(rdf.PIMStorage)); got != rdf.NewIRI("https://pod.example/") {
		t.Errorf("storage = %v", got)
	}
	if got := g.FirstObject(me, rdf.NewIRI(rdf.SolidPublicTypeIndex)); got != rdf.NewIRI("https://pod.example/publicTypeIndex.ttl") {
		t.Errorf("typeindex = %v", got)
	}
	if got := g.FirstObject(me, rdf.NewIRI(rdf.FOAFName)); got != rdf.NewLiteral("Zulma") {
		t.Errorf("name = %v", got)
	}
}

func TestParsePaperListing3TypeIndex(t *testing.T) {
	input := `
PREFIX solid: <http://www.w3.org/ns/solid/terms#>
<> a solid:TypeIndex ;
   a solid:ListedDocument.
<#ab09fd> a solid:TypeRegistration;
  solid:forClass <http://example.org/Post>;
  solid:instance <./posts.ttl>.
<#bq1r5e> a solid:TypeRegistration;
  solid:forClass <http://example.org/Comment>;
  solid:instanceContainer <./comments/>.
`
	base := "https://pod.example/publicTypeIndex.ttl"
	ts := mustParse(t, input, Options{Base: base})
	g := rdf.NewGraph()
	g.AddAll(ts)
	regs := g.Subjects(rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.SolidTypeRegistration))
	if len(regs) != 2 {
		t.Fatalf("registrations = %v", regs)
	}
	post := rdf.NewIRI(base + "#ab09fd")
	if got := g.FirstObject(post, rdf.NewIRI(rdf.SolidInstance)); got != rdf.NewIRI("https://pod.example/posts.ttl") {
		t.Errorf("instance = %v", got)
	}
}

func TestParseLiterals(t *testing.T) {
	input := `
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix ex: <http://example.org/> .
ex:s ex:str "plain";
   ex:lang "hallo"@NL-be;
   ex:typed "42"^^xsd:long;
   ex:typed2 "x"^^<http://example.org/dt>;
   ex:int 42;
   ex:neg -7;
   ex:dec 3.14;
   ex:dbl 1.2e3;
   ex:t true;
   ex:f false;
   ex:esc "a\"b\nc\\dé";
   ex:long """multi
line "quoted" string""";
   ex:sq 'single';
   ex:empty "".
`
	ts := mustParse(t, input, Options{})
	byPred := map[string]rdf.Term{}
	for _, tt := range ts {
		byPred[tt.P.Value] = tt.O
	}
	ex := "http://example.org/"
	cases := map[string]rdf.Term{
		ex + "str":    rdf.NewLiteral("plain"),
		ex + "lang":   rdf.NewLangLiteral("hallo", "nl-be"),
		ex + "typed":  rdf.Long(42),
		ex + "typed2": rdf.NewTypedLiteral("x", "http://example.org/dt"),
		ex + "int":    rdf.NewTypedLiteral("42", rdf.XSDInteger),
		ex + "neg":    rdf.NewTypedLiteral("-7", rdf.XSDInteger),
		ex + "dec":    rdf.NewTypedLiteral("3.14", rdf.XSDDecimal),
		ex + "dbl":    rdf.NewTypedLiteral("1.2e3", rdf.XSDDouble),
		ex + "t":      rdf.Boolean(true),
		ex + "f":      rdf.Boolean(false),
		ex + "esc":    rdf.NewLiteral("a\"b\nc\\dé"),
		ex + "long":   rdf.NewLiteral("multi\nline \"quoted\" string"),
		ex + "sq":     rdf.NewLiteral("single"),
		ex + "empty":  rdf.NewLiteral(""),
	}
	for p, want := range cases {
		if got, ok := byPred[p]; !ok || got != want {
			t.Errorf("object of <%s> = %v, want %v", p, got, want)
		}
	}
}

func TestParseBlankNodes(t *testing.T) {
	input := `
@prefix ex: <http://example.org/> .
_:a ex:p _:b .
ex:s ex:q [ ex:r "nested"; ex:r2 [ ex:r3 ex:o ] ] .
[] ex:standalone "x" .
`
	ts := mustParse(t, input, Options{BlankPrefix: "d1."})
	if len(ts) != 6 {
		t.Fatalf("got %d triples: %v", len(ts), ts)
	}
	if ts[0].S != rdf.NewBlank("d1.a") || ts[0].O != rdf.NewBlank("d1.b") {
		t.Errorf("labelled blanks should carry prefix: %v", ts[0])
	}
	// All blank labels must carry the prefix.
	for _, tt := range ts {
		for _, term := range []rdf.Term{tt.S, tt.O} {
			if term.IsBlank() && !strings.HasPrefix(term.Value, "d1.") {
				t.Errorf("blank %v lacks prefix", term)
			}
		}
	}
}

func TestParseCollections(t *testing.T) {
	input := `
@prefix ex: <http://example.org/> .
ex:s ex:list (ex:a "b" 3) .
ex:s ex:emptyList () .
`
	ts := mustParse(t, input, Options{})
	g := rdf.NewGraph()
	g.AddAll(ts)
	head := g.FirstObject(rdf.NewIRI("http://example.org/s"), rdf.NewIRI("http://example.org/list"))
	if !head.IsBlank() {
		t.Fatalf("list head = %v", head)
	}
	var items []rdf.Term
	cur := head
	for cur != rdf.NewIRI(rdf.RDFNil) {
		items = append(items, g.FirstObject(cur, rdf.NewIRI(rdf.RDFFirst)))
		cur = g.FirstObject(cur, rdf.NewIRI(rdf.RDFRest))
		if cur.IsZero() {
			t.Fatal("broken rdf:rest chain")
		}
	}
	if len(items) != 3 || items[0] != rdf.NewIRI("http://example.org/a") ||
		items[1] != rdf.NewLiteral("b") || items[2] != rdf.NewTypedLiteral("3", rdf.XSDInteger) {
		t.Errorf("items = %v", items)
	}
	empty := g.FirstObject(rdf.NewIRI("http://example.org/s"), rdf.NewIRI("http://example.org/emptyList"))
	if empty != rdf.NewIRI(rdf.RDFNil) {
		t.Errorf("empty list = %v, want rdf:nil", empty)
	}
}

func TestParseComments(t *testing.T) {
	input := `
# leading comment
<http://a> <http://p> <http://b> . # trailing comment
# only a comment line
<http://a> <http://p> "with # not a comment" .
`
	ts := mustParse(t, input, Options{})
	if len(ts) != 2 {
		t.Fatalf("got %d triples", len(ts))
	}
	if ts[1].O != rdf.NewLiteral("with # not a comment") {
		t.Errorf("hash inside string was treated as comment: %v", ts[1].O)
	}
}

func TestParseBaseDirective(t *testing.T) {
	input := `
@base <https://pod.example/dir/> .
<doc> <#p> <../other> .
BASE <https://pod2.example/>
<x> <p> <y> .
`
	ts := mustParse(t, input, Options{})
	if ts[0].S != rdf.NewIRI("https://pod.example/dir/doc") {
		t.Errorf("subject = %v", ts[0].S)
	}
	if ts[0].O != rdf.NewIRI("https://pod.example/other") {
		t.Errorf("object = %v", ts[0].O)
	}
	if ts[1].S != rdf.NewIRI("https://pod2.example/x") {
		t.Errorf("after BASE redefine, subject = %v", ts[1].S)
	}
}

func TestParsePNLocalEscapes(t *testing.T) {
	input := `
@prefix ex: <http://example.org/> .
ex:with\-dash ex:p ex:dotted.name .
`
	ts := mustParse(t, input, Options{})
	if ts[0].S != rdf.NewIRI("http://example.org/with-dash") {
		t.Errorf("escaped local = %v", ts[0].S)
	}
	if ts[0].O != rdf.NewIRI("http://example.org/dotted.name") {
		t.Errorf("dotted local = %v", ts[0].O)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, input string }{
		{"unterminated iri", `<http://a <http://p> <http://b> .`},
		{"missing dot", `<http://a> <http://p> <http://b>`},
		{"undeclared prefix", `ex:a ex:p ex:b .`},
		{"unterminated string", `<http://a> <http://p> "abc .`},
		{"bad escape", `<http://a> <http://p> "a\qb" .`},
		{"unknown directive", `@foo <http://x> .`},
		{"bad number", `<http://a> <http://p> +. .`},
		{"unterminated collection", `<http://a> <http://p> (<http://b> .`},
		{"whitespace in iri", "<http://a b> <http://p> <http://c> ."},
		{"eof in object", `<http://a> <http://p>`},
		{"empty lang", `<http://a> <http://p> "x"@ .`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.input, Options{}); err == nil {
				t.Errorf("expected error for %q", c.input)
			} else if !strings.Contains(err.Error(), "turtle: line") {
				t.Errorf("error should carry position: %v", err)
			}
		})
	}
}

func TestParseTrailingSemicolons(t *testing.T) {
	input := `<http://a> <http://p> <http://b>; ; .`
	ts := mustParse(t, input, Options{})
	if len(ts) != 1 {
		t.Errorf("got %d triples", len(ts))
	}
}

func TestParseUnicodeEscapesInIRI(t *testing.T) {
	ts := mustParse(t, `<http://ex.org/é> <http://p> <http://b> .`, Options{})
	if ts[0].S != rdf.NewIRI("http://ex.org/é") {
		t.Errorf("subject = %v", ts[0].S)
	}
}

func TestParseAKeywordOnlyAsPredicate(t *testing.T) {
	// 'a' must not be confused with a prefixed name starting with a.
	input := `
@prefix a: <http://example.org/a/> .
a:x a a:Class .
`
	ts := mustParse(t, input, Options{})
	if ts[0].P != rdf.NewIRI(rdf.RDFType) {
		t.Errorf("predicate = %v, want rdf:type", ts[0].P)
	}
	if ts[0].S != rdf.NewIRI("http://example.org/a/x") {
		t.Errorf("subject = %v", ts[0].S)
	}
}

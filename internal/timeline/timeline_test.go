package timeline

import (
	"strings"
	"testing"
	"time"
)

func TestRenderEmpty(t *testing.T) {
	if got := Render(nil, Options{}); got != "" {
		t.Errorf("empty rows must render empty, got %q", got)
	}
}

func TestRenderBasics(t *testing.T) {
	rows := []Row{
		{Label: "http://x/a.ttl", Status: "200", Bytes: 100, Start: 0, End: 10 * time.Millisecond, Note: "seed"},
		{Label: "http://x/b.ttl", Status: "200", Bytes: 200, Start: 10 * time.Millisecond, End: 20 * time.Millisecond},
	}
	out := Render(rows, Options{Width: 40})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "document") || !strings.Contains(lines[0], "timeline") {
		t.Errorf("header line wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "http://x/a.ttl") || !strings.Contains(lines[1], "seed") {
		t.Errorf("row 1 missing label or note: %q", lines[1])
	}
	if !strings.Contains(lines[1], "|===") {
		t.Errorf("bar must start with '|' and fill with '=': %q", lines[1])
	}
	// b starts when a ends: its bar must begin around the middle.
	aStart := strings.IndexByte(lines[1], '[')
	bBar := lines[2][aStart:]
	if strings.IndexByte(bBar, '|') < 15 {
		t.Errorf("second bar not offset on the shared axis: %q", lines[2])
	}
}

func TestRenderMarkUsesHashFill(t *testing.T) {
	rows := []Row{
		{Label: "a", Status: "200", Start: 0, End: 10 * time.Millisecond, Mark: true},
		{Label: "b", Status: "200", Start: 0, End: 10 * time.Millisecond},
	}
	out := Render(rows, Options{Width: 30, NoHeader: true})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "#") || strings.Contains(lines[0], "=") {
		t.Errorf("marked row must fill with '#': %q", lines[0])
	}
	if !strings.Contains(lines[1], "=") || strings.Contains(lines[1], "#") {
		t.Errorf("unmarked row must fill with '=': %q", lines[1])
	}
}

func TestRenderNoHeader(t *testing.T) {
	rows := []Row{{Label: "a", Start: 0, End: time.Millisecond}}
	if out := Render(rows, Options{NoHeader: true}); strings.Contains(out, "document") {
		t.Errorf("NoHeader must suppress the header: %q", out)
	}
}

func TestRenderRebasesOnEarliestStart(t *testing.T) {
	// All offsets shifted by 1h: the chart must re-base, not scale to 1h.
	base := time.Hour
	rows := []Row{
		{Label: "a", Start: base, End: base + 10*time.Millisecond},
		{Label: "b", Start: base + 10*time.Millisecond, End: base + 20*time.Millisecond},
	}
	out := Render(rows, Options{Width: 40, NoHeader: true})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "|=") {
		t.Errorf("first bar must span from the left after re-basing: %q", lines[0])
	}
}

func TestShorten(t *testing.T) {
	if got := Shorten("short", 10); got != "short" {
		t.Errorf("Shorten must keep short labels: %q", got)
	}
	long := "http://example.org/pods/00000/profile/card"
	got := Shorten(long, 20)
	if !strings.HasPrefix(got, "…") || !strings.HasSuffix(got, "profile/card") {
		t.Errorf("Shorten must keep the tail behind an ellipsis: %q", got)
	}
}

package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBusNilSafety(t *testing.T) {
	var b *Bus
	if b.Active() {
		t.Fatal("nil bus must be inactive")
	}
	b.Publish(Event{Kind: EventQueryStarted}) // must not panic
	if s := b.Subscribe(4); s != nil {
		t.Fatal("nil bus must return nil subscription")
	}
	var s *Subscription
	s.Close()
	if s.Dropped() != 0 || s.Drain() != nil {
		t.Fatal("nil subscription must no-op")
	}
	var e *Emitter
	if e.Active() {
		t.Fatal("nil emitter must be inactive")
	}
	e.Emit(Event{Kind: EventResultEmitted}) // must not panic
	if b.ForQuery(7) != nil {
		t.Fatal("nil bus must yield nil emitter")
	}
}

func TestBusPublishWithoutSubscribersIsDropped(t *testing.T) {
	b := NewBus()
	b.Publish(Event{Kind: EventQueryStarted})
	s := b.Subscribe(4)
	defer s.Close()
	select {
	case ev := <-s.C:
		t.Fatalf("unexpected event %v published before subscribe", ev.Kind)
	default:
	}
}

func TestBusOrderedDelivery(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(64)
	defer s.Close()
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: EventResultEmitted, Row: i})
	}
	var prev uint64
	for i := 0; i < 10; i++ {
		ev := <-s.C
		if ev.Seq <= prev {
			t.Fatalf("sequence not increasing: %d after %d", ev.Seq, prev)
		}
		if ev.Row != i {
			t.Fatalf("row %d arrived out of order (want %d)", ev.Row, i)
		}
		if ev.Time.IsZero() {
			t.Fatal("publish must stamp a time")
		}
		prev = ev.Seq
	}
}

func TestBusQueryFilter(t *testing.T) {
	b := NewBus()
	all := b.Subscribe(16)
	only2 := b.SubscribeQuery(2, 16)
	defer all.Close()
	defer only2.Close()
	b.Publish(Event{Kind: EventQueryStarted, Query: 1})
	b.Publish(Event{Kind: EventQueryStarted, Query: 2})
	if ev := <-only2.C; ev.Query != 2 {
		t.Fatalf("filtered subscription got query %d", ev.Query)
	}
	select {
	case ev := <-only2.C:
		t.Fatalf("filtered subscription got extra event for query %d", ev.Query)
	default:
	}
	if ev := <-all.C; ev.Query != 1 {
		t.Fatalf("unfiltered subscription got query %d first", ev.Query)
	}
}

func TestBusFullBufferDropsAndCounts(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(2)
	defer s.Close()
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: EventLinkDiscovered})
	}
	if got := s.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if got := len(s.Drain()); got != 2 {
		t.Fatalf("buffered = %d, want 2", got)
	}
}

func TestSubscriptionCloseDetachesAndDrains(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(8)
	b.Publish(Event{Kind: EventQueryStarted})
	b.Publish(Event{Kind: EventQueryFinished})
	s.Close()
	s.Close() // idempotent
	if b.Active() {
		t.Fatal("bus still active after last unsubscribe")
	}
	b.Publish(Event{Kind: EventResultEmitted}) // must not reach s
	tail := s.Drain()
	if len(tail) != 2 || tail[0].Kind != EventQueryStarted || tail[1].Kind != EventQueryFinished {
		t.Fatalf("drained tail = %+v", tail)
	}
}

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(q int64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish(Event{Kind: EventLinkQueued, Query: q})
			}
		}(int64(g))
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := b.Subscribe(32)
			defer s.Close()
			for {
				select {
				case <-s.C:
				case <-stop:
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publishers blocked — publish must never stall")
	}
}

func TestEmitterStampsQueryID(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(4)
	defer s.Close()
	b.ForQuery(42).Emit(Event{Kind: EventResultEmitted})
	if ev := <-s.C; ev.Query != 42 {
		t.Fatalf("query = %d, want 42", ev.Query)
	}
}

func TestQueryIDContext(t *testing.T) {
	ctx := context.Background()
	if QueryIDFromContext(ctx) != 0 {
		t.Fatal("empty context must carry no query id")
	}
	ctx = ContextWithQueryID(ctx, 9)
	if got := QueryIDFromContext(ctx); got != 9 {
		t.Fatalf("query id = %d, want 9", got)
	}
	if ContextWithQueryID(context.Background(), 0) != context.Background() {
		t.Fatal("zero id must not wrap the context")
	}
	a, b := NextQueryID(), NextQueryID()
	if b != a+1 {
		t.Fatalf("ids not monotonic: %d then %d", a, b)
	}
}

func TestEventKindsMatchesConstants(t *testing.T) {
	want := map[EventKind]bool{
		EventQueryStarted: true, EventStageStarted: true, EventStageFinished: true,
		EventMorselProcessed:      true,
		EventDocumentDereferenced: true, EventLinkDiscovered: true, EventLinkQueued: true,
		EventLinkPruned: true, EventRetryScheduled: true, EventResultEmitted: true,
		EventQueryFinished: true,
		EventCacheHit:      true, EventCacheRevalidated: true, EventCacheEvicted: true,
		EventQueryAdmitted: true, EventQueryRejected: true,
		EventLimitTripped:     true,
		EventResourceSnapshot: true,
	}
	if len(EventKinds) != len(want) {
		t.Fatalf("EventKinds has %d entries, want %d", len(EventKinds), len(want))
	}
	seen := map[EventKind]bool{}
	for _, k := range EventKinds {
		if !want[k] {
			t.Fatalf("unexpected kind %q", k)
		}
		if seen[k] {
			t.Fatalf("duplicate kind %q", k)
		}
		seen[k] = true
	}
}

// TestBusManySubscribersSeeSameOrder pins the total order: every subscriber
// observes events in the same ascending-Seq order.
func TestBusManySubscribersSeeSameOrder(t *testing.T) {
	b := NewBus()
	subs := make([]*Subscription, 3)
	for i := range subs {
		subs[i] = b.Subscribe(128)
	}
	for i := 0; i < 50; i++ {
		b.Publish(Event{Kind: EventLinkDiscovered, URL: fmt.Sprintf("http://x/%d", i)})
	}
	var first []uint64
	for i, s := range subs {
		s.Close()
		var seqs []uint64
		for _, ev := range s.Drain() {
			seqs = append(seqs, ev.Seq)
		}
		if len(seqs) != 50 {
			t.Fatalf("sub %d saw %d events", i, len(seqs))
		}
		if first == nil {
			first = seqs
			continue
		}
		for j := range seqs {
			if seqs[j] != first[j] {
				t.Fatalf("sub %d diverges at %d: %d vs %d", i, j, seqs[j], first[j])
			}
		}
	}
}

package store

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ltqp/internal/rdf"
)

// raceTriple builds a correlated triple: subject, predicate, and object all
// carry the same index, so any torn read (a triple assembled from two
// different inserts) is detectable by checking the correlation.
func raceTriple(i int) rdf.Triple {
	return rdf.NewTriple(
		rdf.NewIRI(fmt.Sprintf("http://example.org/s/%d", i)),
		rdf.NewIRI(fmt.Sprintf("http://example.org/p/%d", i%7)),
		rdf.NewLiteral(fmt.Sprintf("o %d %d", i, i%7)),
	)
}

// checkCorrelated fails the test if t is not one of the triples raceTriple
// can produce — i.e. if an iterator or snapshot observed a torn triple.
func checkCorrelated(t *testing.T, tr rdf.Triple) {
	t.Helper()
	var i, p int
	if _, err := fmt.Sscanf(tr.S.Value, "http://example.org/s/%d", &i); err != nil {
		t.Errorf("torn or foreign subject %q", tr.S.Value)
		return
	}
	if _, err := fmt.Sscanf(tr.P.Value, "http://example.org/p/%d", &p); err != nil {
		t.Errorf("torn or foreign predicate %q", tr.P.Value)
		return
	}
	if p != i%7 {
		t.Errorf("torn triple: subject %d with predicate stripe %d", i, p)
	}
	if want := fmt.Sprintf("o %d %d", i, i%7); tr.O.Value != want {
		t.Errorf("torn triple: subject %d with object %q", i, tr.O.Value)
	}
}

// TestStoreConcurrentAddMatchIterate is the ID-keyed store's -race stress
// test: writers Add and AddDocument concurrently with readers running
// MatchNow, Source, and a live Iterator that drains the full stream. Every
// observed triple must be internally consistent (never torn) and the final
// state must contain exactly the distinct triples written.
func TestStoreConcurrentAddMatchIterate(t *testing.T) {
	const (
		writers       = 4
		perWriter     = 400
		docWriters    = 2
		docsPerWriter = 20
		perDoc        = 25
	)
	s := New()

	// Live iterator over everything, started before any writes.
	all := s.Match(rdf.NewTriple(rdf.NewVar("s"), rdf.NewVar("p"), rdf.NewVar("o")))
	iterDone := make(chan int)
	go func() {
		n := 0
		for {
			tr, ok := all.Next(context.Background())
			if !ok {
				break
			}
			checkCorrelated(t, tr)
			n++
		}
		iterDone <- n
	}()

	// A second live iterator on a single predicate stripe.
	stripe := s.Match(rdf.NewTriple(rdf.NewVar("s"), rdf.NewIRI("http://example.org/p/3"), rdf.NewVar("o")))
	stripeDone := make(chan int)
	go func() {
		n := 0
		for {
			tr, ok := stripe.Next(context.Background())
			if !ok {
				break
			}
			checkCorrelated(t, tr)
			if tr.P.Value != "http://example.org/p/3" {
				t.Errorf("stripe iterator leaked predicate %q", tr.P.Value)
			}
			n++
		}
		stripeDone <- n
	}()

	var wg sync.WaitGroup
	src := rdf.NewIRI("http://example.org/doc/add")
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Overlapping ranges across writers: dedup races included.
				s.Add(raceTriple((w*perWriter+i)%(writers*perWriter/2)), src)
			}
		}(w)
	}
	for w := 0; w < docWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for d := 0; d < docsPerWriter; d++ {
				base := 10000 + (w*docsPerWriter+d)*perDoc
				batch := make([]rdf.Triple, perDoc)
				for i := range batch {
					batch[i] = raceTriple(base + i)
				}
				s.AddDocument(fmt.Sprintf("http://example.org/doc/%d/%d", w, d), batch)
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pat := rdf.NewTriple(rdf.NewVar("s"), rdf.NewIRI(fmt.Sprintf("http://example.org/p/%d", i%7)), rdf.NewVar("o"))
				for _, tr := range s.MatchNow(pat) {
					checkCorrelated(t, tr)
				}
				tr := raceTriple(i % 100)
				if srcTerm, ok := s.Source(tr); ok && srcTerm.IsZero() {
					t.Errorf("Source returned ok with zero term for %s", tr)
				}
				_ = s.CountNow(pat)
			}
		}(r)
	}
	wg.Wait()
	s.Close()

	gotAll := <-iterDone
	gotStripe := <-stripeDone

	distinct := writers * perWriter / 2
	docTriples := docWriters * docsPerWriter * perDoc
	wantAll := distinct + docTriples
	if gotAll != wantAll {
		t.Errorf("live iterator saw %d triples, want %d", gotAll, wantAll)
	}
	if s.Len() != wantAll {
		t.Errorf("Len = %d, want %d", s.Len(), wantAll)
	}
	wantStripe := 0
	for i := 0; i < distinct; i++ {
		if i%7 == 3 {
			wantStripe++
		}
	}
	for i := 0; i < docTriples; i++ {
		if (10000+i)%7 == 3 {
			wantStripe++
		}
	}
	if gotStripe != wantStripe {
		t.Errorf("stripe iterator saw %d triples, want %d", gotStripe, wantStripe)
	}
	// Every distinct triple resolves via Source and carries a stable ID.
	d := s.Dict()
	for i := 0; i < 50; i++ {
		tr := raceTriple(i)
		if _, ok := s.Source(tr); !ok {
			t.Errorf("Source lost triple %d", i)
		}
		it, ok := d.LookupTriple(tr)
		if !ok {
			t.Errorf("dictionary lost triple %d", i)
			continue
		}
		if d.DecodeTriple(it) != tr {
			t.Errorf("unstable IDs for triple %d", i)
		}
	}
}

// TestStoreIteratorNeverTornUnderIngest drives a snapshotting reader
// (Snapshot) against heavy document ingest and checks that every snapshot is
// prefix-consistent: correlated triples only, monotonically growing.
func TestStoreIteratorNeverTornUnderIngest(t *testing.T) {
	s := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for d := 0; ; d++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]rdf.Triple, 10)
			for i := range batch {
				batch[i] = raceTriple(d*10 + i)
			}
			s.AddDocument(fmt.Sprintf("http://example.org/ingest/%d", d), batch)
		}
	}()
	prev := 0
	for i := 0; i < 100; i++ {
		snap := s.Snapshot()
		if len(snap) < prev {
			t.Fatalf("snapshot shrank: %d -> %d", prev, len(snap))
		}
		prev = len(snap)
		for _, tr := range snap {
			checkCorrelated(t, tr)
		}
	}
	close(stop)
	wg.Wait()
	s.Close()
}

// Authenticated querying: Solid pods hold *permissioned* data, and the
// engine can execute queries on behalf of a logged-in user (paper §3:
// "users can log into the query engine using their Solid WebID, after
// which the query engine will execute queries on their behalf across all
// data the user can access").
//
// This example builds an environment in which most post documents are
// readable only by their owner and the owner's friends, then runs the same
// query three times: anonymously, as a stranger, and as the pod owner.
//
//	go run ./examples/authenticated
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ltqp"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

func main() {
	cfg := solidbench.DefaultConfig()
	cfg.Persons = 8
	cfg.PrivateFraction = 0.8 // 80% of post documents behind ACLs
	env := simenv.New(cfg)
	defer env.Close()

	query := env.Dataset.Discover(1, 1) // all posts of a person
	owner := query.Person

	// Find a genuine stranger: someone the owner is not friends with
	// (private documents are shared with friends).
	stranger := -1
	for cand := range env.Dataset.Persons {
		if cand == owner {
			continue
		}
		isFriend := false
		for _, f := range env.Dataset.Persons[owner].Friends {
			if f == cand {
				isFriend = true
			}
		}
		if !isFriend {
			stranger = cand
			break
		}
	}
	if stranger < 0 {
		log.Fatal("everyone is friends with everyone; increase Persons")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	run := func(label string, auth *ltqp.Credentials) {
		engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true, Auth: auth})
		res, err := engine.Query(ctx, query.Text)
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for range res.Results {
			n++
		}
		denied := 0
		for _, r := range res.Metrics().Requests() {
			if r.Status == 401 || r.Status == 403 {
				denied++
			}
		}
		fmt.Printf("%-28s %3d results  (%d requests denied by access control)\n",
			label, n, denied)
	}

	fmt.Printf("query: all posts of %s %s\n\n",
		env.Dataset.Persons[owner].FirstName, env.Dataset.Persons[owner].LastName)
	run("anonymous:", nil)
	run("logged in as a stranger:", env.CredentialsFor(stranger))
	run("logged in as the owner:", env.CredentialsFor(owner))

	fmt.Println("\nThe traversal engine passes the user's WebID credentials with every")
	fmt.Println("dereference; pods enforce per-document ACLs, so the same query sees a")
	fmt.Println("different subweb depending on who is asking.")
}

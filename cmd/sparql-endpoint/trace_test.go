package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// TestTraceHeaderAndDebugTraces covers the endpoint half of the tracing
// pipeline: ?trace=1 returns the query's trace id in X-Trace-Id, the
// /debug/queries row links to /debug/traces/<id>, and the kept trace is
// retrievable there as JSON and as an ASCII waterfall. The query targets a
// missing document so the lenient run is degraded — a guaranteed tail-
// sampling keep, independent of timing.
func TestTraceHeaderAndDebugTraces(t *testing.T) {
	srv, env, _ := newObservedEndpoint(t)
	q := fmt.Sprintf("SELECT ?f WHERE { <%s/pods/nonexistent/missing.ttl#x> <http://v/p> ?f . }",
		env.Server.URL)

	resp, err := http.Get(srv.URL + "/sparql?trace=1&query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", traceID)
	}

	// The /debug/queries row carries the id and the /debug/traces link.
	resp, err = http.Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var dbg struct {
		Recent []struct {
			TraceID  string `json:"trace_id"`
			TraceURL string `json:"trace_url"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dbg.Recent) != 1 || dbg.Recent[0].TraceID != traceID {
		t.Fatalf("debug/queries trace id = %+v, want %s", dbg.Recent, traceID)
	}
	if want := "/debug/traces/" + traceID; dbg.Recent[0].TraceURL != want {
		t.Errorf("trace_url = %q, want %q", dbg.Recent[0].TraceURL, want)
	}

	// The listing includes the kept trace...
	resp, err = http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Schema int   `json:"schema"`
		Seen   int64 `json:"seen"`
		Traces []struct {
			TraceID    string `json:"trace_id"`
			KeepReason string `json:"keep_reason"`
			URL        string `json:"url"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Seen != 1 || len(list.Traces) != 1 {
		t.Fatalf("traces list = %+v", list)
	}
	if list.Traces[0].TraceID != traceID || list.Traces[0].KeepReason != "degraded" {
		t.Errorf("kept trace = %+v, want %s kept as degraded", list.Traces[0], traceID)
	}

	// ...and the per-trace document resolves with the full payload.
	resp, err = http.Get(srv.URL + dbg.Recent[0].TraceURL)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		TraceID  string `json:"trace_id"`
		Degraded bool   `json:"degraded"`
		Root     *struct {
			Name string `json:"name"`
		} `json:"root"`
		Requests []struct {
			URL string `json:"url"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rec.TraceID != traceID || !rec.Degraded {
		t.Errorf("trace record = %+v", rec)
	}
	if rec.Root == nil || rec.Root.Name != "query" {
		t.Errorf("trace record missing root span: %+v", rec.Root)
	}
	if len(rec.Requests) == 0 {
		t.Error("trace record carries no request timeline")
	}

	// The waterfall view renders.
	resp, err = http.Get(srv.URL + dbg.Recent[0].TraceURL + "?format=waterfall")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "trace "+traceID) {
		t.Errorf("waterfall output = %q", body)
	}

	// Unknown ids 404.
	resp, err = http.Get(srv.URL + "/debug/traces/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id status = %d, want 404", resp.StatusCode)
	}
}

// TestTraceHeaderOmittedByDefault: without ?trace=1 the header is absent.
func TestTraceHeaderOmittedByDefault(t *testing.T) {
	srv, env, _ := newObservedEndpoint(t)
	q := env.Dataset.Discover(1, 1)
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(q.Text))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Errorf("X-Trace-Id = %q without ?trace=1", got)
	}
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmitReleaseBasics(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInFlight: 2})
	r1, err := a.Admit(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Admit(context.Background(), "t2")
	if err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 2 {
		t.Fatalf("in flight = %d", a.InFlight())
	}
	r1()
	r2()
	if a.InFlight() != 0 {
		t.Fatalf("in flight after release = %d", a.InFlight())
	}
}

func TestQueueFullRejectsWithRetryAfter(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInFlight: 1, QueueDepth: QueueDepthNone, RetryAfter: 7 * time.Second})
	release, err := a.Admit(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	_, err = a.Admit(context.Background(), "t2")
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want RejectionError", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("rejections must match ErrOverloaded")
	}
	if rej.Reason != "queue_full" || rej.RetryAfter != 7*time.Second {
		t.Fatalf("rejection = %+v", rej)
	}
}

func TestQueuedWaiterRunsAfterRelease(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInFlight: 1, QueueDepth: 4})
	r1, _ := a.Admit(context.Background(), "t1")

	admitted := make(chan func(), 1)
	go func() {
		r2, err := a.Admit(context.Background(), "t2")
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- r2
	}()

	// The waiter must be queued, not admitted.
	deadline := time.After(2 * time.Second)
	for a.Queued() == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	r1()
	select {
	case r2 := <-admitted:
		r2()
	case <-deadline:
		t.Fatal("queued waiter never admitted after release")
	}
}

func TestTenantQuotaQueuesEvenWithFreeSlots(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInFlight: 8, QueueDepth: 8, TenantQuota: 1})
	r1, err := a.Admit(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	// Same tenant at quota: must queue despite 7 free global slots.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.Admit(ctx, "hog"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-quota admit: err = %v, want deadline", err)
	}
	// A different tenant sails through.
	r2, err := a.Admit(context.Background(), "other")
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r2()
}

// TestAdmissionFairness floods the controller from one aggressive tenant
// and a set of modest ones; every tenant's queries must complete — no
// starvation — and the aggressor must not hold more slots than its quota.
func TestAdmissionFairness(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInFlight: 4, QueueDepth: 256, TenantQuota: 2})

	const modestTenants = 4
	const modestQueries = 8
	const aggressorQueries = 64

	var wg sync.WaitGroup
	var completed sync.Map // tenant → *atomic.Int64
	run := func(tenant string, n int) {
		counter := &atomic.Int64{}
		completed.Store(tenant, counter)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				release, err := a.Admit(context.Background(), tenant)
				if err != nil {
					t.Error(tenant, err)
					return
				}
				time.Sleep(time.Millisecond)
				release()
				counter.Add(1)
			}()
		}
	}
	run("aggressor", aggressorQueries)
	for i := 0; i < modestTenants; i++ {
		run(fmt.Sprintf("modest%d", i), modestQueries)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fairness test did not complete — some tenant starved")
	}

	completed.Range(func(k, v any) bool {
		tenant, n := k.(string), v.(*atomic.Int64).Load()
		want := int64(modestQueries)
		if tenant == "aggressor" {
			want = aggressorQueries
		}
		if n != want {
			t.Errorf("tenant %s completed %d/%d queries", tenant, n, want)
		}
		return true
	})
}

func TestCancelWhileQueuedLeavesNoLeak(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInFlight: 1, QueueDepth: 4})
	r1, _ := a.Admit(context.Background(), "t1")

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Admit(ctx, "t2")
		errc <- err
	}()
	deadline := time.After(2 * time.Second)
	for a.Queued() == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if a.Queued() != 0 {
		t.Fatalf("queued = %d after abandoned wait", a.Queued())
	}
	r1()
	// The abandoned waiter must not have consumed the freed slot.
	r3, err := a.Admit(context.Background(), "t3")
	if err != nil {
		t.Fatal(err)
	}
	r3()
}

// TestDrainWithFullQueue: draining must reject every queued waiter
// immediately, refuse new work, and return once in-flight queries release.
func TestDrainWithFullQueue(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInFlight: 1, QueueDepth: 8})
	release, _ := a.Admit(context.Background(), "t0")

	const queued = 8
	var rejections atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := a.Admit(context.Background(), fmt.Sprintf("t%d", i%3+1))
			if errors.Is(err, ErrOverloaded) {
				rejections.Add(1)
			} else if err == nil {
				t.Error("waiter admitted during drain")
			}
		}(i)
	}
	deadline := time.After(5 * time.Second)
	for a.Queued() < queued {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d waiters queued", a.Queued(), queued)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	drained := make(chan error, 1)
	go func() { drained <- a.Drain(context.Background()) }()

	wg.Wait() // every queued waiter must be flushed with a rejection
	if got := rejections.Load(); got != queued {
		t.Fatalf("rejections = %d, want %d", got, queued)
	}

	// Drain must still be waiting on the in-flight query.
	select {
	case <-drained:
		t.Fatal("Drain returned while a query was in flight")
	case <-time.After(20 * time.Millisecond):
	}

	// New work is refused while draining.
	if _, err := a.Admit(context.Background(), "late"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit during drain: err = %v", err)
	}

	release()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not return after last release")
	}
}

func TestDrainTimesOutOnStuckQuery(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInFlight: 1})
	release, _ := a.Admit(context.Background(), "t")
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
}

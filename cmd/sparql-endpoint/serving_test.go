package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/obs"
	"ltqp/internal/serve"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

// newServingEndpoint builds an endpoint with the full serving subsystem
// attached, returning the pieces tests need to poke.
func newServingEndpoint(t *testing.T, s Serving) (*httptest.Server, *simenv.Env, *ltqp.Observer) {
	t.Helper()
	env := simenv.New(solidbench.SmallConfig())
	t.Cleanup(env.Close)
	observer := ltqp.NewObserver()
	cfg := ltqp.Config{Client: env.Client(), Lenient: true, Obs: observer}
	if s.Shared != nil {
		cfg.SharedCache = s.Shared
	}
	observer.Health.Serving = servingHealth(observer, s)
	h := NewServingHandler(ltqp.New(cfg), 2*time.Minute, s)
	srv := httptest.NewServer(buildMux(h, observer))
	t.Cleanup(srv.Close)
	return srv, env, observer
}

// TestOverloadRejectsWith429WhileInFlightCompletes is the acceptance-
// criteria integration test: with one execution slot and no queue, a slow
// in-flight query forces concurrent requests into 429 + Retry-After — and
// the in-flight query still completes successfully.
func TestOverloadRejectsWith429WhileInFlightCompletes(t *testing.T) {
	shared := serve.NewSharedCache(serve.SharedCacheOptions{})
	admission := serve.NewAdmission(serve.AdmissionOptions{
		MaxInFlight: 1, QueueDepth: serve.QueueDepthNone, RetryAfter: 3 * time.Second,
	})
	srv, env, _ := newServingEndpoint(t, Serving{Shared: shared, Admission: admission})
	// Slow the pods down so the first query reliably holds its slot while
	// the rejected burst arrives.
	env.PodServer.Latency = 30 * time.Millisecond
	q := env.Dataset.Discover(1, 1)
	target := srv.URL + "/sparql?query=" + url.QueryEscape(q.Text)

	type outcome struct {
		status     int
		retryAfter string
		body       string
	}
	const clients = 6
	results := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(target)
			if err != nil {
				t.Error(err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results[i] = outcome{resp.StatusCode, resp.Header.Get("Retry-After"), string(body)}
		}(i)
	}
	wg.Wait()

	var ok, rejected int
	for _, r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
			var parsed struct {
				Results struct {
					Bindings []map[string]any `json:"bindings"`
				} `json:"results"`
			}
			if err := json.Unmarshal([]byte(r.body), &parsed); err != nil {
				t.Errorf("winner's body is not results JSON: %v", err)
			} else if len(parsed.Results.Bindings) == 0 {
				t.Error("in-flight query completed with no bindings")
			}
		case http.StatusTooManyRequests:
			rejected++
			secs, err := strconv.Atoi(r.retryAfter)
			if err != nil || secs < 1 {
				t.Errorf("429 without usable Retry-After: %q", r.retryAfter)
			}
		default:
			t.Errorf("unexpected status %d: %s", r.status, r.body)
		}
	}
	if ok == 0 {
		t.Fatal("no query completed despite admission")
	}
	if rejected == 0 {
		t.Fatal("no query was rejected despite a single slot and zero queue")
	}
}

// TestSharedCacheServesRepeatQueries proves cross-query sharing: the second
// identical query is answered from the shared document cache (hits > 0) and
// issues no new pod fetches.
func TestSharedCacheServesRepeatQueries(t *testing.T) {
	shared := serve.NewSharedCache(serve.SharedCacheOptions{})
	srv, env, _ := newServingEndpoint(t, Serving{Shared: shared})
	q := env.Dataset.Discover(1, 1)
	target := srv.URL + "/sparql?query=" + url.QueryEscape(q.Text)

	fetch := func() {
		resp, err := http.Get(target)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	fetch()
	requestsAfterFirst := env.PodServer.RequestCount()
	st := shared.Stats()
	if st.Misses == 0 {
		t.Fatal("first query should have missed the shared cache")
	}
	fetch()
	// Successful documents are all served from the shared cache; only
	// failed dereferences (cache-ineligible 404s etc.) may refetch.
	failedFirstRun := requestsAfterFirst - int64(st.Documents)
	if extra := env.PodServer.RequestCount() - requestsAfterFirst; extra > failedFirstRun {
		t.Fatalf("second query issued %d new pod requests, want at most the %d failed ones",
			extra, failedFirstRun)
	}
	st = shared.Stats()
	if st.Hits == 0 {
		t.Fatal("second query should have hit the shared cache")
	}
	if st.DuplicateInflight != 0 {
		t.Fatalf("duplicate in-flight fetches: %d", st.DuplicateInflight)
	}
}

// TestAdminInvalidateBumpsEpochAndRevalidates: POST /admin/invalidate must
// bump the epoch; the next query revalidates documents (304s, no duplicate
// parse) instead of serving possibly-stale cache entries.
func TestAdminInvalidateBumpsEpochAndRevalidates(t *testing.T) {
	shared := serve.NewSharedCache(serve.SharedCacheOptions{})
	srv, env, _ := newServingEndpoint(t, Serving{Shared: shared})
	q := env.Dataset.Discover(1, 1)
	target := srv.URL + "/sparql?query=" + url.QueryEscape(q.Text)

	resp, err := http.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Post(srv.URL+"/admin/invalidate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var bump struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if bump.Epoch != 1 || shared.Epoch() != 1 {
		t.Fatalf("epoch = %d/%d, want 1", bump.Epoch, shared.Epoch())
	}

	resp, err = http.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	st := shared.Stats()
	if st.Revalidations == 0 || st.NotModified == 0 {
		t.Fatalf("post-invalidate query did not revalidate: %+v", st)
	}
	if env.PodServer.NotModifiedCount() == 0 {
		t.Fatal("pod server answered no 304s")
	}
}

// TestResultCacheHitSkipsEngine: an identical repeated SELECT is served
// from the result cache without reaching the engine at all.
func TestResultCacheHitSkipsEngine(t *testing.T) {
	shared := serve.NewSharedCache(serve.SharedCacheOptions{})
	srv, env, observer := newServingEndpoint(t, Serving{
		Shared: shared, ResultCache: serve.NewResultCache(16, nil),
	})
	q := env.Dataset.Discover(1, 1)
	target := srv.URL + "/sparql?query=" + url.QueryEscape(q.Text)

	get := func() (*http.Response, string) {
		resp, err := http.Get(target)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}
	_, first := get()
	started := observer.Metrics.QueriesStarted.Value()
	resp, second := get()
	if resp.Header.Get("X-Result-Cache") != "hit" {
		t.Fatal("repeat query missed the result cache")
	}
	if second != first {
		t.Fatal("cached response differs from the original")
	}
	if observer.Metrics.QueriesStarted.Value() != started {
		t.Fatal("result-cache hit still started an engine query")
	}

	// Epoch bump must invalidate the cached result.
	shared.Invalidate()
	resp, _ = get()
	if resp.Header.Get("X-Result-Cache") == "hit" {
		t.Fatal("result cache served across an epoch bump")
	}
}

// TestHealthzReportsServing: /healthz carries the serving section with a
// hit ratio once traffic has flowed.
func TestHealthzReportsServing(t *testing.T) {
	shared := serve.NewSharedCache(serve.SharedCacheOptions{})
	admission := serve.NewAdmission(serve.AdmissionOptions{MaxInFlight: 4})
	srv, env, _ := newServingEndpoint(t, Serving{Shared: shared, Admission: admission})
	q := env.Dataset.Discover(1, 1)
	target := srv.URL + "/sparql?query=" + url.QueryEscape(q.Text)
	for i := 0; i < 2; i++ {
		resp, err := http.Get(target)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st obs.HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Serving == nil {
		t.Fatal("healthz missing serving section")
	}
	if st.Serving.CacheHits == 0 || st.Serving.CacheHitRatio <= 0 {
		t.Fatalf("no cache hits surfaced: %+v", st.Serving)
	}
	if st.Serving.CacheBytes == 0 || st.Serving.CacheDocuments == 0 {
		t.Fatalf("no occupancy surfaced: %+v", st.Serving)
	}
	if st.Serving.Admitted == 0 {
		t.Fatalf("admission counters not surfaced: %+v", st.Serving)
	}
}

// TestTenantAppearsInDebugQueries: queries carry their tenant (API key
// bucket) into /debug/queries.
func TestTenantAppearsInDebugQueries(t *testing.T) {
	shared := serve.NewSharedCache(serve.SharedCacheOptions{})
	admission := serve.NewAdmission(serve.AdmissionOptions{MaxInFlight: 4})
	srv, env, _ := newServingEndpoint(t, Serving{Shared: shared, Admission: admission})
	q := env.Dataset.Discover(1, 1)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/sparql?query="+url.QueryEscape(q.Text), nil)
	req.Header.Set("X-API-Key", "alice-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/debug/queries?trace=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Recent []struct {
			Tenant string `json:"tenant"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range payload.Recent {
		if r.Tenant == "key:alice-key" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tenant not in /debug/queries: %+v", payload.Recent)
	}
}

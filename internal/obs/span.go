// Package obs is the engine-wide observability subsystem: structured
// tracing (per-query span trees carried through context.Context), a
// process-level metrics registry (atomic counters, gauges and fixed-bucket
// histograms with Prometheus text exposition), and live HTTP exposition
// endpoints (/metrics, /healthz, /debug/queries).
//
// The paper's demo is itself an observability artifact — Fig. 4's request
// waterfall and live result streaming exist so users can *see* traversal
// behave. This package extends that idea from one query to a whole process:
// where internal/metrics records the HTTP timeline of a single execution,
// obs aggregates counters across every query an engine serves and records
// *where* each query spent its time (parse → plan → per-document
// dereference attempts → link extraction → join/iterator stages).
//
// Tracing is opt-out cheap: when no trace is attached to the context,
// StartSpan performs a single context lookup and returns a nil *Span whose
// methods are all no-ops, so uninstrumented hot paths pay nothing.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", value)} }

// Int64 builds an int64 attribute.
func Int64(key string, value int64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", value)} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: fmt.Sprintf("%t", value)} }

// Span is one timed operation in a query's trace tree. Spans are created
// with StartSpan and closed with End; children may be created concurrently
// (parallel dereferences under one traversal span). All methods are safe on
// a nil receiver, which is how untraced executions skip the bookkeeping.
type Span struct {
	name  string
	start time.Time

	// W3C trace context: every span of one query shares traceID; spanID is
	// unique per span and parentID links the tree. Zero IDs mean the span
	// was created outside a trace (never happens via StartSpan, which
	// returns nil instead). Immutable after creation, so unguarded.
	traceID  TraceID
	spanID   SpanID
	parentID SpanID

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// spanKey carries the current parent span through a context.
type spanKeyType struct{}

var spanKey spanKeyType

// ContextWithSpan returns a context carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFromContext returns the current span, or nil when the context is
// untraced.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a child span under the context's current span. When the
// context carries no span (tracing disabled), it returns the context
// unchanged and a nil *Span — one interface lookup, no allocation.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := newSpan(name, attrs...)
	child.traceID = parent.traceID
	child.parentID = parent.spanID
	child.spanID = NewSpanID()
	parent.mu.Lock()
	parent.children = append(parent.children, child)
	parent.mu.Unlock()
	return ContextWithSpan(ctx, child), child
}

func newSpan(name string, attrs ...Attr) *Span {
	return &Span{name: name, start: time.Now(), attrs: attrs}
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr appends an annotation to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// TraceID returns the span's trace ID (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns the span's ID (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// ParentID returns the parent span's ID (zero on nil or root spans of a
// trace with no remote parent).
func (s *Span) ParentID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.parentID
}

// TraceIDString returns the hex trace ID, or "" on a nil or untraced span —
// the form metrics exemplars and log correlation want, at zero cost when
// tracing is off.
func (s *Span) TraceIDString() string {
	if s == nil || s.traceID.IsZero() {
		return ""
	}
	return s.traceID.String()
}

// Traceparent renders the outbound traceparent header value for requests
// made under this span, with the sampled flag set. Returns "" on a nil or
// untraced span, so callers can inject unconditionally:
//
//	if tp := span.Traceparent(); tp != "" { req.Header.Set(...) }
func (s *Span) Traceparent() string {
	if s == nil || s.traceID.IsZero() {
		return ""
	}
	return FormatTraceparent(s.traceID, s.spanID, FlagSampled)
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's wall time; for an unfinished span, the time
// elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Children returns a snapshot of the span's children in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Attrs returns a snapshot of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Attr returns the value of the first attribute with the given key.
func (s *Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs() {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Walk visits the span and every descendant depth-first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children() {
		c.Walk(fn)
	}
}

// Count returns the number of descendant spans (including s) whose name
// matches.
func (s *Span) Count(name string) int {
	n := 0
	s.Walk(func(sp *Span) {
		if sp.name == name {
			n++
		}
	})
	return n
}

// TraceSchemaVersion identifies the trace export JSON layout. Bump it when
// the shape of TraceJSON/SpanJSON changes incompatibly, so downstream
// tooling can reject traces it does not understand.
const TraceSchemaVersion = 1

// TraceJSON is the versioned envelope of an exported trace.
type TraceJSON struct {
	Schema  int      `json:"schema"`
	TraceID string   `json:"trace_id,omitempty"`
	Root    SpanJSON `json:"root"`
}

// SpanJSON is the JSON shape of an exported span. Durations appear twice:
// numerically in microseconds for tooling, and as a human-readable string
// (time.Duration formatting) for eyeballing raw exports.
type SpanJSON struct {
	Name     string     `json:"name"`
	SpanID   string     `json:"span_id,omitempty"`
	ParentID string     `json:"parent_id,omitempty"`
	StartUS  int64      `json:"start_us"` // offset from the trace root, µs
	DurUS    int64      `json:"duration_us"`
	Duration string     `json:"duration"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []SpanJSON `json:"children,omitempty"`
}

func (s *Span) toJSON(epoch time.Time) SpanJSON {
	d := s.Duration()
	out := SpanJSON{
		Name:     s.name,
		StartUS:  s.start.Sub(epoch).Microseconds(),
		DurUS:    d.Microseconds(),
		Duration: d.Round(time.Microsecond).String(),
		Attrs:    s.Attrs(),
	}
	if !s.spanID.IsZero() {
		out.SpanID = s.spanID.String()
	}
	if !s.parentID.IsZero() {
		out.ParentID = s.parentID.String()
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, c.toJSON(epoch))
	}
	return out
}

// Trace is one query's span tree. Create it with NewTrace, attach it to the
// execution context, and export it with JSON or Tree after the query ends.
type Trace struct {
	root *Span
}

// NewTrace creates a trace rooted at a span with the given name and returns
// a context carrying that root, ready for StartSpan calls downstream.
func NewTrace(ctx context.Context, rootName string, attrs ...Attr) (context.Context, *Trace) {
	root := newSpan(rootName, attrs...)
	root.traceID = NewTraceID()
	root.spanID = NewSpanID()
	return ContextWithSpan(ctx, root), &Trace{root: root}
}

// NewTraceWithParent creates a trace that continues an incoming W3C trace
// context (e.g. extracted from a traceparent header): the root span joins
// the caller's trace ID and records the remote span as its parent.
func NewTraceWithParent(ctx context.Context, rootName string, parent Traceparent, attrs ...Attr) (context.Context, *Trace) {
	root := newSpan(rootName, attrs...)
	root.traceID = parent.TraceID
	root.parentID = parent.SpanID
	root.spanID = NewSpanID()
	if root.traceID.IsZero() {
		root.traceID = NewTraceID()
	}
	return ContextWithSpan(ctx, root), &Trace{root: root}
}

// ID returns the trace's hex trace ID ("" on nil).
func (t *Trace) ID() string { return t.Root().TraceIDString() }

// Snapshot exports the span tree as its JSON shape (offsets relative to the
// root's start), for embedding in larger documents such as kept
// TraceRecords. Returns nil on a nil trace.
func (t *Trace) Snapshot() *SpanJSON {
	if t == nil || t.root == nil {
		return nil
	}
	sj := t.root.toJSON(t.root.start)
	return &sj
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// End closes the root span.
func (t *Trace) End() { t.Root().End() }

// JSON exports the trace as an indented, versioned JSON document:
// {"schema": 1, "root": {...span tree...}}.
func (t *Trace) JSON() ([]byte, error) {
	if t == nil || t.root == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(TraceJSON{Schema: TraceSchemaVersion, TraceID: t.ID(), Root: t.root.toJSON(t.root.start)}, "", "  ")
}

// Tree renders the trace as a human-readable indented tree:
//
//	query 12.3ms query="SELECT ..."
//	├─ parse 0.1ms
//	├─ traverse 11.0ms
//	│  ├─ document 2.1ms url=https://...
//	...
func (t *Trace) Tree() string {
	if t == nil || t.root == nil {
		return "(no trace)\n"
	}
	var b strings.Builder
	writeTree(&b, t.root, "", true, true)
	return b.String()
}

func writeTree(b *strings.Builder, s *Span, prefix string, isLast, isRoot bool) {
	line := prefix
	childPrefix := prefix
	if !isRoot {
		if isLast {
			line += "└─ "
			childPrefix += "   "
		} else {
			line += "├─ "
			childPrefix += "│  "
		}
	}
	b.WriteString(line)
	b.WriteString(s.Name())
	fmt.Fprintf(b, " %.1fms", float64(s.Duration().Microseconds())/1000)
	attrs := s.Attrs()
	// Stable attr order for readable, diffable output.
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	for _, a := range attrs {
		v := a.Value
		if len(v) > 60 {
			v = v[:57] + "..."
		}
		fmt.Fprintf(b, " %s=%s", a.Key, v)
	}
	b.WriteByte('\n')
	children := s.Children()
	for i, c := range children {
		writeTree(b, c, childPrefix, i == len(children)-1, false)
	}
}

package solidbench

import (
	"fmt"
	"strings"
)

// Query is one catalog entry of the demonstration UI's query dropdown.
type Query struct {
	// Name is the display name, e.g. "Discover 6.5".
	Name string
	// Text is the SPARQL query.
	Text string
	// Person is the dataset person index the query is about.
	Person int
	// MultiPod indicates the query is expected to traverse several pods
	// (like Discover 8.5 in the paper's Fig. 5).
	MultiPod bool
}

// discoverTemplate builds one of the eight SolidBench "Discover" query
// shapes for a person.
func (d *Dataset) discoverTemplate(shape int, person int) string {
	v := NewVocab(d.Config.Host)
	prefix := fmt.Sprintf("PREFIX snvoc: <%s>\n", v.NS())
	me := "<" + d.WebID(person) + ">"
	switch shape {
	case 1: // All posts of a person.
		return prefix + fmt.Sprintf(`PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?messageId ?messageCreationDate ?messageContent WHERE {
  ?message snvoc:hasCreator %s;
    rdf:type snvoc:Post;
    snvoc:content ?messageContent;
    snvoc:creationDate ?messageCreationDate;
    snvoc:id ?messageId.
}`, me)
	case 2: // All messages (posts and comments) of a person.
		return prefix + fmt.Sprintf(`SELECT ?messageId ?messageCreationDate ?messageContent WHERE {
  ?message snvoc:hasCreator %s;
    snvoc:content ?messageContent;
    snvoc:creationDate ?messageCreationDate;
    snvoc:id ?messageId.
}`, me)
	case 3: // Top tags in posts of a person.
		return prefix + fmt.Sprintf(`SELECT ?tag (COUNT(?message) AS ?messages) WHERE {
  ?message snvoc:hasCreator %s;
    snvoc:hasTag ?tag.
} GROUP BY ?tag ORDER BY DESC(?messages) ?tag`, me)
	case 4: // Top locations in comments of a person.
		return prefix + fmt.Sprintf(`PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?location (COUNT(?message) AS ?messages) WHERE {
  ?message snvoc:hasCreator %s;
    rdf:type snvoc:Comment;
    snvoc:isLocatedIn ?location.
} GROUP BY ?location ORDER BY DESC(?messages) ?location`, me)
	case 5: // All IPs a person has messaged from.
		return prefix + fmt.Sprintf(`SELECT DISTINCT ?locationIp WHERE {
  ?message snvoc:hasCreator %s;
    snvoc:locationIP ?locationIp.
}`, me)
	case 6: // Forums a person has messaged in (the paper's Fig. 2/3 query).
		return prefix + fmt.Sprintf(`SELECT DISTINCT ?forumId ?forumTitle WHERE {
  ?message snvoc:hasCreator %s.
  ?forum snvoc:containerOf ?message;
    snvoc:id ?forumId;
    snvoc:title ?forumTitle.
}`, me)
	case 7: // Moderators of forums a person has messaged in.
		return prefix + fmt.Sprintf(`SELECT DISTINCT ?forumTitle ?moderator WHERE {
  ?message snvoc:hasCreator %s.
  ?forum snvoc:containerOf ?message;
    snvoc:title ?forumTitle;
    snvoc:hasModerator ?moderator.
}`, me)
	case 8: // Messages by creators of messages the person likes (Fig. 5).
		return prefix + fmt.Sprintf(`SELECT DISTINCT ?creator ?messageContent WHERE {
  %s snvoc:likes _:g_0.
  _:g_0 (snvoc:hasPost|snvoc:hasComment) ?message.
  ?message snvoc:hasCreator ?creator.
  ?otherMessage snvoc:hasCreator ?creator;
    snvoc:content ?messageContent.
}`, me)
	default:
		panic(fmt.Sprintf("solidbench: unknown discover shape %d", shape))
	}
}

// Discover returns the query "Discover <shape>.<variant>", where variant
// selects a person (1-based), mirroring SolidBench's naming: Discover 1.5
// is shape 1 instantiated for the fifth seed person.
func (d *Dataset) Discover(shape, variant int) Query {
	person := d.variantPerson(variant)
	return Query{
		Name:     fmt.Sprintf("Discover %d.%d", shape, variant),
		Text:     d.discoverTemplate(shape, person),
		Person:   person,
		MultiPod: shape == 8,
	}
}

// variantPerson maps a 1-based variant number to a person index spread
// deterministically across the dataset.
func (d *Dataset) variantPerson(variant int) int {
	if len(d.Persons) == 0 {
		return 0
	}
	step := len(d.Persons)/6 + 1
	return (variant * step) % len(d.Persons)
}

// Catalog returns the demonstration UI's default query set. Like the
// paper's deployment it offers 37 queries: the eight Discover shapes in
// four person variants each, plus five short queries.
func (d *Dataset) Catalog() []Query {
	var out []Query
	for shape := 1; shape <= 8; shape++ {
		for variant := 1; variant <= 4; variant++ {
			out = append(out, d.Discover(shape, variant))
		}
	}
	v := NewVocab(d.Config.Host)
	prefix := fmt.Sprintf("PREFIX snvoc: <%s>\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\n", v.NS())
	p0 := d.variantPerson(1)
	p1 := d.variantPerson(2)
	short := []Query{
		{
			Name:   "Short 1: profile of a person",
			Person: p0,
			Text: prefix + fmt.Sprintf(`SELECT ?firstName ?lastName ?birthday WHERE {
  <%s> snvoc:firstName ?firstName;
    snvoc:lastName ?lastName;
    snvoc:birthday ?birthday.
}`, d.WebID(p0)),
		},
		{
			Name:   "Short 2: friends of a person",
			Person: p0,
			Text: prefix + fmt.Sprintf(`SELECT DISTINCT ?friend ?name WHERE {
  <%s> foaf:knows ?friend.
  OPTIONAL { ?friend foaf:name ?name }
}`, d.WebID(p0)),
		},
		{
			Name:     "Short 3: friends of friends",
			Person:   p1,
			MultiPod: true,
			Text: prefix + fmt.Sprintf(`SELECT DISTINCT ?fof WHERE {
  <%s> foaf:knows/foaf:knows ?fof.
  FILTER(?fof != <%s>)
}`, d.WebID(p1), d.WebID(p1)),
		},
		{
			Name:   "Short 4: recent posts of a person",
			Person: p1,
			Text: prefix + fmt.Sprintf(`PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?message ?date WHERE {
  ?message snvoc:hasCreator <%s>;
    snvoc:creationDate ?date.
} ORDER BY DESC(?date) LIMIT 10`, d.WebID(p1)),
		},
		{
			Name:   "Short 5: does the person use an image post",
			Person: p0,
			Text: prefix + fmt.Sprintf(`ASK {
  ?message snvoc:hasCreator <%s>;
    snvoc:imageFile ?file.
}`, d.WebID(p0)),
		},
	}
	return append(out, short...)
}

// FindQuery returns the catalog query with the given name.
func (d *Dataset) FindQuery(name string) (Query, bool) {
	for _, q := range d.Catalog() {
		if strings.EqualFold(q.Name, name) {
			return q, true
		}
	}
	return Query{}, false
}

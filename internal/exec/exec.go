// Package exec implements the physical, pipelined execution of logical
// plans over the growing triple source. Operators are goroutines connected
// by channels; monotonic operators (pattern scans, symmetric hash joins,
// unions, filters, binds, distinct, projections) emit solutions
// incrementally while traversal is still dereferencing documents, which is
// what lets first results appear long before the link queue drains.
// Blocking operators (ORDER BY, GROUP BY, MINUS, the bare-row phase of
// OPTIONAL, transitive property paths, EXISTS filters) gate on completion
// of their inputs.
package exec

import (
	"context"
	"sort"
	"strconv"
	"sync"

	"ltqp/internal/algebra"
	"ltqp/internal/obs"
	"ltqp/internal/rdf"
	"ltqp/internal/resource"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
)

// chanCap is the buffer size of inter-operator channels.
const chanCap = 64

// Stream is a channel of solution bindings produced by an operator.
type Stream <-chan rdf.Binding

// Env carries the evaluation environment shared by all operators of one
// query execution.
type Env struct {
	// Store is the growing triple source fed by traversal.
	Store *store.Store
	// NowFunc returns the evaluation time for NOW(); fixed per query.
	Now func() rdf.Term
	// Prov, when non-nil, makes pattern scans annotate every solution with
	// the source document of the matched triple, so results carry the set
	// of documents whose triples joined to produce them. Nil (the default)
	// disables provenance at zero cost.
	Prov *Prov
	// Events, when non-nil, publishes per-operator stage_started and
	// stage_finished events (with row counts) to the owning query's event
	// stream while a subscriber is attached. Nil or audience-less events
	// cost one atomic load per operator, nothing per solution.
	Events *obs.Emitter
	// Workers is the morsel worker-pool size for parallel join probes and
	// grouping; 0 means GOMAXPROCS.
	Workers int
	// NoVectorize pins the whole execution to the row-at-a-time operators.
	// The differential oracle and the property-test reference side set it,
	// so the batch pipeline is always measured against the row semantics.
	NoVectorize bool
	// Ledger, when non-nil, is charged (under resource.Exec) for the
	// memory execution retains: batch slab capacity in flight, join and
	// grouping arenas, and rows buffered by blocking operators. Nil
	// disables accounting at zero cost.
	Ledger *resource.Ledger

	// dict is the engine term dictionary (shared with Store); hash-keyed
	// operators (join, DISTINCT, OPTIONAL bookkeeping) key on packed term
	// IDs from it instead of rendering lexical strings.
	dict *rdf.Dict

	mu     sync.Mutex
	bnodeN int
	randN  uint64
}

// NewEnv returns an environment over the given source with a fixed NOW()
// value.
func NewEnv(src *store.Store) *Env {
	now := rdf.NewTypedLiteral("2024-03-25T00:00:00Z", rdf.XSDDateTime)
	return &Env{Store: src, Now: func() rdf.Term { return now }, dict: src.Dict(), randN: 0x9E3779B97F4A7C15}
}

// freshBNode mints a unique blank node for BNODE().
func (e *Env) freshBNode() rdf.Term {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bnodeN++
	return rdf.NewBlank("e.b" + strconv.Itoa(e.bnodeN))
}

// nextRand returns a deterministic pseudo-random float in [0,1) for RAND().
func (e *Env) nextRand() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.randN ^= e.randN << 13
	e.randN ^= e.randN >> 7
	e.randN ^= e.randN << 17
	return float64(e.randN>>11) / float64(1<<53)
}

// Eval evaluates a logical operator into a stream of bindings. The stream
// closes when the operator is exhausted or the context is cancelled.
//
// Operators with a vectorized implementation run on the batch pipeline
// (EvalBatch) and are decoded back into bindings at this boundary; the
// row-at-a-time implementations below remain both the fallback for
// non-vectorizable operators and the reference semantics the batch
// operators are tested against.
func Eval(ctx context.Context, op algebra.Operator, env *Env) Stream {
	if !env.NoVectorize && vectorizableOp(op) {
		return batchesToRows(ctx, env, EvalBatch(ctx, op, env))
	}
	switch x := op.(type) {
	case algebra.Unit:
		return evalUnit(ctx)
	case algebra.Pattern:
		return traced(ctx, env, "scan", opAttrs(algebra.String(x)), func(ctx context.Context) Stream {
			return evalPattern(ctx, x, env)
		})
	case algebra.PathPattern:
		return traced(ctx, env, "path", opAttrs(algebra.String(x)), func(ctx context.Context) Stream {
			return evalPathPattern(ctx, x, env)
		})
	case algebra.Join:
		return traced(ctx, env, "join", nil, func(ctx context.Context) Stream {
			return evalJoin(ctx, x, env)
		})
	case algebra.LeftJoin:
		return traced(ctx, env, "leftjoin", nil, func(ctx context.Context) Stream {
			return evalLeftJoin(ctx, x, env)
		})
	case algebra.Union:
		return traced(ctx, env, "union", nil, func(ctx context.Context) Stream {
			return evalUnion(ctx, x, env)
		})
	case algebra.Minus:
		return traced(ctx, env, "minus", nil, func(ctx context.Context) Stream {
			return evalMinus(ctx, x, env)
		})
	case algebra.Filter:
		return evalFilter(ctx, x, env)
	case algebra.Extend:
		return evalExtend(ctx, x, env)
	case algebra.Values:
		return evalValues(ctx, x)
	case algebra.Project:
		return evalProject(ctx, x, env)
	case algebra.Distinct:
		return traced(ctx, env, "distinct", nil, func(ctx context.Context) Stream {
			return evalDistinct(ctx, x, env)
		})
	case algebra.Reduced:
		return evalReduced(ctx, x, env)
	case algebra.OrderBy:
		return traced(ctx, env, "orderby", nil, func(ctx context.Context) Stream {
			return evalOrderBy(ctx, x, env)
		})
	case algebra.Slice:
		return evalSlice(ctx, x, env)
	case algebra.Group:
		return traced(ctx, env, "group", nil, func(ctx context.Context) Stream {
			if !env.NoVectorize && vectorizableGroup(x) {
				return evalGroupBatch(ctx, x, env)
			}
			return evalGroup(ctx, x, env)
		})
	default:
		// Unknown operator: empty stream.
		out := make(chan rdf.Binding)
		close(out)
		return out
	}
}

// send delivers b unless the context is cancelled; it reports success.
func send(ctx context.Context, out chan<- rdf.Binding, b rdf.Binding) bool {
	select {
	case out <- b:
		return true
	case <-ctx.Done():
		return false
	}
}

// drain collects an entire stream (used by blocking operators).
// chargeBuffered bills the environment's ledger (resource.Exec) for rows a
// blocking operator has materialized — an estimated map-plus-entries
// footprint per binding. It returns the charged amount, which the caller
// releases when the buffer is dropped. Nil env or ledger charges nothing.
func (e *Env) chargeBuffered(rows []rdf.Binding) int64 {
	if e == nil || e.Ledger == nil || len(rows) == 0 {
		return 0
	}
	var n int64
	for _, b := range rows {
		n += 64 + int64(len(b))*96
	}
	e.Ledger.Charge(resource.Exec, n)
	return n
}

func drain(ctx context.Context, in Stream) []rdf.Binding {
	var all []rdf.Binding
	for {
		select {
		case b, ok := <-in:
			if !ok {
				return all
			}
			all = append(all, b)
		case <-ctx.Done():
			// Let the upstream goroutines observe cancellation themselves;
			// consume nothing further.
			return all
		}
	}
}

func evalUnit(ctx context.Context) Stream {
	out := make(chan rdf.Binding, 1)
	go func() {
		defer close(out)
		send(ctx, out, rdf.NewBinding())
	}()
	return out
}

func evalPattern(ctx context.Context, p algebra.Pattern, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	go func() {
		defer close(out)
		it := env.Store.Match(p.Triple)
		defer it.Close()
		for {
			t, ok := it.Next(ctx)
			if !ok {
				return
			}
			b, ok := rdf.NewBinding().MatchPattern(p.Triple, t)
			if !ok {
				continue
			}
			b, ok = applyGraphConstraint(env, p.Graph, t, b)
			if !ok {
				continue
			}
			if env.Prov != nil {
				b = env.Prov.Annotate(env.Store, b, t)
			}
			if !send(ctx, out, b) {
				return
			}
		}
	}()
	return out
}

// applyGraphConstraint enforces a GRAPH term against the provenance of a
// matched triple: a constant graph must equal the source document, a
// variable graph binds to it.
func applyGraphConstraint(env *Env, graph rdf.Term, t rdf.Triple, b rdf.Binding) (rdf.Binding, bool) {
	if graph.IsZero() {
		return b, true
	}
	src, ok := env.Store.Source(t)
	if !ok {
		return nil, false
	}
	if graph.IsVar() {
		return b.Extend(graph.Value, src)
	}
	if graph != src {
		return nil, false
	}
	return b, true
}

func evalValues(ctx context.Context, v algebra.Values) Stream {
	out := make(chan rdf.Binding, chanCap)
	go func() {
		defer close(out)
		for _, row := range v.Rows {
			if !send(ctx, out, row.Copy()) {
				return
			}
		}
	}()
	return out
}

// joinState is one side of a symmetric hash join: solutions that bind all
// shared variables live in exact buckets; solutions leaving some shared
// variable unbound (possible below OPTIONAL/VALUES) are probed linearly.
type joinState struct {
	shared  []string
	keyer   idKeyer
	exact   map[idKey][]rdf.Binding
	partial []rdf.Binding
}

func newJoinState(shared []string, env *Env) *joinState {
	return &joinState{
		shared: shared,
		keyer:  newIDKeyer(env.dict, shared),
		exact:  map[idKey][]rdf.Binding{},
	}
}

// insert stores b and returns the candidate matches from the other side.
func (s *joinState) insert(b rdf.Binding, other *joinState) []rdf.Binding {
	full := true
	for _, v := range s.shared {
		if !b.Has(v) {
			full = false
			break
		}
	}
	var candidates []rdf.Binding
	if full {
		key := s.keyer.key(b)
		s.exact[key] = append(s.exact[key], b)
		candidates = append(candidates, other.exact[key]...)
		candidates = append(candidates, other.partial...)
	} else {
		s.partial = append(s.partial, b)
		for _, bucket := range other.exact {
			candidates = append(candidates, bucket...)
		}
		candidates = append(candidates, other.partial...)
	}
	return candidates
}

func evalJoin(ctx context.Context, j algebra.Join, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	shared := algebra.SharedVars(j.Left, j.Right)
	left := Eval(ctx, j.Left, env)
	right := Eval(ctx, j.Right, env)
	go func() {
		defer close(out)
		ls, rs := newJoinState(shared, env), newJoinState(shared, env)
		l, r := left, right
		for l != nil || r != nil {
			var b rdf.Binding
			var ok bool
			var mine, other *joinState
			select {
			case b, ok = <-l:
				if !ok {
					l = nil
					continue
				}
				mine, other = ls, rs
			case b, ok = <-r:
				if !ok {
					r = nil
					continue
				}
				mine, other = rs, ls
			case <-ctx.Done():
				return
			}
			for _, cand := range mine.insert(b, other) {
				if merged, ok := b.Merge(cand); ok {
					if !send(ctx, out, merged) {
						return
					}
				}
			}
		}
	}()
	return out
}

func evalLeftJoin(ctx context.Context, j algebra.LeftJoin, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	shared := algebra.SharedVars(j.Left, j.Right)
	left := Eval(ctx, j.Left, env)
	right := Eval(ctx, j.Right, env)
	go func() {
		defer close(out)
		var lefts []rdf.Binding
		ls, rs := newJoinState(shared, env), newJoinState(shared, env)
		// A left solution is identified by its key over the left-side
		// variable set; once any extension of it is emitted, its bare row
		// is suppressed.
		matched := map[idKey]bool{}
		allVarsL := j.Left.Vars()
		leftKeyer := newIDKeyer(env.dict, allVarsL)

		conditionOK := func(merged rdf.Binding) bool {
			for _, f := range j.Filters {
				v, err := evalExpr(env, f, merged)
				if err != nil {
					return false
				}
				ok, err := v.EffectiveBooleanValue()
				if err != nil || !ok {
					return false
				}
			}
			return true
		}

		l, r := left, right
		for l != nil || r != nil {
			var b rdf.Binding
			var ok bool
			var fromLeft bool
			select {
			case b, ok = <-l:
				if !ok {
					l = nil
					continue
				}
				fromLeft = true
			case b, ok = <-r:
				if !ok {
					r = nil
					continue
				}
			case <-ctx.Done():
				return
			}
			if fromLeft {
				lefts = append(lefts, b)
				for _, cand := range ls.insert(b, rs) {
					if merged, ok := b.Merge(cand); ok && conditionOK(merged) {
						matched[leftKeyer.key(b)] = true
						if !send(ctx, out, merged) {
							return
						}
					}
				}
			} else {
				for _, cand := range rs.insert(b, ls) {
					if merged, ok := cand.Merge(b); ok && conditionOK(merged) {
						matched[leftKeyer.key(cand)] = true
						if !send(ctx, out, merged) {
							return
						}
					}
				}
			}
		}
		// Emit bare left rows that never joined.
		for _, b := range lefts {
			if !matched[leftKeyer.key(b)] {
				if !send(ctx, out, b) {
					return
				}
			}
		}
	}()
	return out
}

func evalUnion(ctx context.Context, u algebra.Union, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	var wg sync.WaitGroup
	forward := func(in Stream) {
		defer wg.Done()
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				if !send(ctx, out, b) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}
	wg.Add(2)
	go forward(Eval(ctx, u.Left, env))
	go forward(Eval(ctx, u.Right, env))
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

func evalMinus(ctx context.Context, m algebra.Minus, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	go func() {
		defer close(out)
		lefts := drain(ctx, Eval(ctx, m.Left, env))
		rights := drain(ctx, Eval(ctx, m.Right, env))
		if ctx.Err() != nil {
			return
		}
		for _, l := range lefts {
			excluded := false
			for _, r := range rights {
				// MINUS removes l when some r is compatible AND shares at
				// least one bound variable with l (SPARQL §8.3.3).
				// Provenance pseudo-variables are not part of the solution
				// domain and must not create spurious overlap.
				sharesDom := false
				for v := range r {
					if rdf.IsProvVar(v) {
						continue
					}
					if l.Has(v) {
						sharesDom = true
						break
					}
				}
				if sharesDom && l.Compatible(r) {
					excluded = true
					break
				}
			}
			if !excluded {
				if !send(ctx, out, l) {
					return
				}
			}
		}
	}()
	return out
}

func evalFilter(ctx context.Context, f algebra.Filter, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	in := Eval(ctx, f.Input, env)
	blocking := exprContainsExists(f.Expr)
	go func() {
		defer close(out)
		emit := func(b rdf.Binding) bool {
			v, err := evalExpr(env, f.Expr, b)
			if err != nil {
				return true // type error: drop binding, keep stream
			}
			ok, err := v.EffectiveBooleanValue()
			if err != nil || !ok {
				return true
			}
			return send(ctx, out, b)
		}
		if blocking {
			// EXISTS / NOT EXISTS are non-monotonic: gate evaluation on a
			// complete source so their answer cannot be invalidated by
			// later-arriving triples.
			all := drain(ctx, in)
			if env.Store.WaitClosed(ctx) != nil {
				return
			}
			for _, b := range all {
				if !emit(b) {
					return
				}
			}
			return
		}
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				if !emit(b) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// exprContainsExists reports whether the expression contains EXISTS.
func exprContainsExists(e sparql.Expression) bool {
	switch x := e.(type) {
	case sparql.ExprExists:
		return true
	case sparql.ExprBinary:
		return exprContainsExists(x.L) || exprContainsExists(x.R)
	case sparql.ExprUnary:
		return exprContainsExists(x.X)
	case sparql.ExprCall:
		for _, a := range x.Args {
			if exprContainsExists(a) {
				return true
			}
		}
	case sparql.ExprIn:
		if exprContainsExists(x.X) {
			return true
		}
		for _, a := range x.List {
			if exprContainsExists(a) {
				return true
			}
		}
	}
	return false
}

func evalExtend(ctx context.Context, e algebra.Extend, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	in := Eval(ctx, e.Input, env)
	go func() {
		defer close(out)
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				v, err := evalExpr(env, e.Expr, b)
				if err == nil {
					if ext, ok := b.Extend(e.Var, v); ok {
						b = ext
					} else {
						continue // conflicting rebind: drop
					}
				}
				// On evaluation error the variable stays unbound (SPARQL
				// BIND semantics) and the solution is kept.
				if !send(ctx, out, b) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

func evalProject(ctx context.Context, p algebra.Project, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	in := Eval(ctx, p.Input, env)
	go func() {
		defer close(out)
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				res := b
				if len(p.Items) > 0 {
					res = rdf.NewBinding()
					for _, item := range p.Items {
						if item.Expr == nil {
							if t, ok := b.Get(item.Var); ok {
								res[item.Var] = t
							}
							continue
						}
						if v, err := evalExpr(env, item.Expr, b); err == nil {
							res[item.Var] = v
						}
					}
					if env.Prov != nil {
						// Projection narrows variables, not provenance.
						res = res.WithProvFrom(b)
					}
				}
				if !send(ctx, out, res) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

func evalDistinct(ctx context.Context, d algebra.Distinct, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	in := Eval(ctx, d.Input, env)
	vars := d.Input.Vars()
	keyer := newIDKeyer(env.dict, vars)
	go func() {
		defer close(out)
		seen := map[idKey]bool{}
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				key := keyer.key(b)
				if seen[key] {
					continue
				}
				seen[key] = true
				if !send(ctx, out, b) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

func evalReduced(ctx context.Context, r algebra.Reduced, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	in := Eval(ctx, r.Input, env)
	vars := r.Input.Vars()
	keyer := newIDKeyer(env.dict, vars)
	go func() {
		defer close(out)
		var last idKey
		first := true
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				key := keyer.key(b)
				if !first && key == last {
					continue
				}
				first = false
				last = key
				if !send(ctx, out, b) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

func evalOrderBy(ctx context.Context, o algebra.OrderBy, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	in := Eval(ctx, o.Input, env)
	go func() {
		defer close(out)
		all := drain(ctx, in)
		charged := env.chargeBuffered(all)
		defer func() { env.Ledger.Release(resource.Exec, charged) }()
		if ctx.Err() != nil {
			return
		}
		sort.SliceStable(all, func(i, j int) bool {
			for _, c := range o.Conds {
				vi, erri := evalExpr(env, c.Expr, all[i])
				vj, errj := evalExpr(env, c.Expr, all[j])
				// Errors/unbound sort first (SPARQL: unbound < everything).
				if erri != nil {
					vi = rdf.Term{}
				}
				if errj != nil {
					vj = rdf.Term{}
				}
				cmp := orderCompare(vi, vj)
				if cmp == 0 {
					continue
				}
				if c.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		for _, b := range all {
			if !send(ctx, out, b) {
				return
			}
		}
	}()
	return out
}

func evalSlice(ctx context.Context, s algebra.Slice, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	// A satisfied LIMIT cancels its upstream, which aborts pattern
	// iterators and, through the facade, the traversal itself.
	inCtx, cancel := context.WithCancel(ctx)
	in := Eval(inCtx, s.Input, env)
	go func() {
		defer close(out)
		defer cancel()
		skipped, emitted := 0, 0
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				if skipped < s.Offset {
					skipped++
					continue
				}
				if s.Limit >= 0 && emitted >= s.Limit {
					return
				}
				if !send(ctx, out, b) {
					return
				}
				emitted++
				if s.Limit >= 0 && emitted >= s.Limit {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

package solid

import (
	"strings"
	"testing"

	"ltqp/internal/rdf"
	"ltqp/internal/turtle"
)

const base = "https://host.example/pods/alice/"

func TestWebIDAndPaths(t *testing.T) {
	p := NewPod("https://host.example/pods/alice") // no trailing slash
	if p.Base != base {
		t.Errorf("Base = %s", p.Base)
	}
	if p.WebID() != base+"profile/card#me" {
		t.Errorf("WebID = %s", p.WebID())
	}
	if p.ProfileDocument() != base+"profile/card" {
		t.Errorf("ProfileDocument = %s", p.ProfileDocument())
	}
	if p.IRI("posts/x") != base+"posts/x" {
		t.Errorf("IRI = %s", p.IRI("posts/x"))
	}
}

func TestBuildProfile(t *testing.T) {
	p := NewPod(base)
	p.BuildProfile(ProfileInfo{
		Name:        "Alice",
		KnowsWebIDs: []string{"https://host.example/pods/bob/profile/card#me"},
	})
	d := p.Documents["profile/card"]
	if d == nil {
		t.Fatal("profile document missing")
	}
	me := rdf.NewIRI(p.WebID())
	g := d.Graph
	if got := g.FirstObject(me, rdf.NewIRI(rdf.FOAFName)); got != rdf.NewLiteral("Alice") {
		t.Errorf("name = %v", got)
	}
	if got := g.FirstObject(me, rdf.NewIRI(rdf.PIMStorage)); got != rdf.NewIRI(base) {
		t.Errorf("storage = %v", got)
	}
	if got := g.FirstObject(me, rdf.NewIRI(rdf.SolidPublicTypeIndex)); got != rdf.NewIRI(p.TypeIndexDocument()) {
		t.Errorf("type index link = %v", got)
	}
	if got := g.Objects(me, rdf.NewIRI(rdf.FOAFKnows)); len(got) != 1 {
		t.Errorf("knows = %v", got)
	}
}

func TestBuildTypeIndex(t *testing.T) {
	p := NewPod(base)
	p.BuildTypeIndex([]TypeRegistration{
		{Class: "http://ex/Post", Instance: "posts.ttl"},
		{Class: "http://ex/Comment", InstanceContainer: "comments/"},
	})
	d := p.Documents["settings/publicTypeIndex"]
	if d == nil {
		t.Fatal("type index missing")
	}
	g := d.Graph
	regs := g.Subjects(rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.SolidTypeRegistration))
	if len(regs) != 2 {
		t.Fatalf("registrations = %v", regs)
	}
	if got := g.FirstObject(regs[0], rdf.NewIRI(rdf.SolidInstance)); got != rdf.NewIRI(base+"posts.ttl") {
		t.Errorf("instance = %v", got)
	}
	if got := g.FirstObject(regs[1], rdf.NewIRI(rdf.SolidInstanceContainer)); got != rdf.NewIRI(base+"comments/") {
		t.Errorf("container = %v", got)
	}
}

func TestMaterializeContainers(t *testing.T) {
	p := NewPod(base)
	p.Add("profile/card", rdf.NewGraph())
	p.Add("posts/2010-01-01", rdf.NewGraph())
	p.Add("posts/2010-01-02", rdf.NewGraph())
	p.Add("deep/a/b/doc", rdf.NewGraph())
	all := p.Materialize()

	// Expect containers: "", profile/, posts/, deep/, deep/a/, deep/a/b/.
	for _, dir := range []string{"", "profile/", "posts/", "deep/", "deep/a/", "deep/a/b/"} {
		d, ok := all[dir]
		if !ok {
			t.Errorf("missing container %q", dir)
			continue
		}
		self := rdf.NewIRI(p.IRI(dir))
		if !d.Graph.IsA(self, rdf.LDPBasicContainer) {
			t.Errorf("container %q lacks BasicContainer type", dir)
		}
	}
	// Root contains its direct children only.
	root := all[""]
	members := root.Graph.Objects(rdf.NewIRI(base), rdf.NewIRI(rdf.LDPContains))
	if len(members) != 3 { // profile/, posts/, deep/
		t.Errorf("root members = %v", members)
	}
	// posts/ contains the two documents.
	posts := all["posts/"]
	if got := posts.Graph.Objects(rdf.NewIRI(base+"posts/"), rdf.NewIRI(rdf.LDPContains)); len(got) != 2 {
		t.Errorf("posts members = %v", got)
	}
	// Non-container docs are typed ldp:Resource in their parent.
	if !posts.Graph.IsA(rdf.NewIRI(base+"posts/2010-01-01"), rdf.LDPResource) {
		t.Error("member resource type missing")
	}
}

func TestMaterializeDoesNotMutatePod(t *testing.T) {
	p := NewPod(base)
	p.Add("doc", rdf.NewGraph())
	_ = p.Materialize()
	if len(p.Documents) != 1 {
		t.Errorf("Materialize mutated Documents: %d", len(p.Documents))
	}
}

func TestTurtleOutputRoundTrips(t *testing.T) {
	p := NewPod(base)
	p.BuildProfile(ProfileInfo{Name: "Alice"})
	all := p.Materialize()
	for path, d := range all {
		body := p.Turtle(d)
		triples, err := turtle.Parse(body, turtle.Options{Base: p.IRI(path)})
		if err != nil {
			t.Fatalf("document %q does not re-parse: %v\n%s", path, err, body)
		}
		if len(triples) != d.Graph.Len() {
			t.Errorf("document %q: %d triples serialized, %d parsed", path, d.Graph.Len(), len(triples))
		}
	}
}

func TestAccessRules(t *testing.T) {
	p := NewPod(base)
	d := p.AddPrivate("secret", rdf.NewGraph(), "https://a.example/#me")
	if d.Access.Public {
		t.Error("private doc marked public")
	}
	if len(d.Access.Agents) != 1 {
		t.Errorf("agents = %v", d.Access.Agents)
	}
	pub := p.Add("open", rdf.NewGraph())
	if !pub.Access.Public {
		t.Error("default should be public")
	}
}

func TestTripleCount(t *testing.T) {
	p := NewPod(base)
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("http://a"), rdf.NewIRI("http://p"), rdf.NewIRI("http://b")))
	g.Add(rdf.NewTriple(rdf.NewIRI("http://a"), rdf.NewIRI("http://p"), rdf.NewIRI("http://c")))
	p.Add("d1", g)
	if p.TripleCount() != 2 {
		t.Errorf("TripleCount = %d", p.TripleCount())
	}
}

func TestProfileListing2Shape(t *testing.T) {
	// The serialized profile should look like the paper's Listing 2.
	p := NewPod(base)
	p.BuildProfile(ProfileInfo{Name: "Zulma", OIDCIssuer: "https://solidcommunity.net/"})
	body := p.Turtle(p.Documents["profile/card"])
	for _, want := range []string{"foaf:name \"Zulma\"", "pim:storage", "solid:oidcIssuer", "solid:publicTypeIndex"} {
		if !strings.Contains(body, want) {
			t.Errorf("profile missing %q:\n%s", want, body)
		}
	}
}

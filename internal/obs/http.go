package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"ltqp/internal/resource"
)

// MetricsHandler serves the registry in Prometheus text exposition format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// HealthHandler serves a trivial liveness probe.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"time\":%q}\n", time.Now().UTC().Format(time.RFC3339Nano))
	})
}

// querySummaryJSON is the /debug/queries wire format for one query.
type querySummaryJSON struct {
	ID int64 `json:"id"`
	// Tenant is the quota bucket (API key / client address) the query was
	// admitted under; empty for untracked callers (library use, CLI).
	Tenant     string    `json:"tenant,omitempty"`
	Query      string    `json:"query"`
	Seeds      []string  `json:"seeds,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Results    int       `json:"results"`
	Done       bool      `json:"done"`
	Err        string    `json:"error,omitempty"`
	// TraceID is the query's W3C trace ID; TraceURL links to its kept record
	// under /debug/traces (404 when tail sampling dropped it).
	TraceID  string    `json:"trace_id,omitempty"`
	TraceURL string    `json:"trace_url,omitempty"`
	Trace    *SpanJSON `json:"trace,omitempty"`
	// Topology summarizes the traversal graph when explain recording was on.
	Topology *topoSummaryJSON `json:"topology,omitempty"`
	// Contributions tallies pattern matches per source document when
	// provenance was on.
	Contributions []DocMatches `json:"contributions,omitempty"`
	// MemPeakBytes / MemTopLayer surface the resource ledger: the query's
	// memory high-water mark and its dominant cost driver (deref, store,
	// exec or serve). Zero/empty when the query ran without accounting.
	MemPeakBytes int64  `json:"mem_peak_bytes,omitempty"`
	MemTopLayer  string `json:"mem_top_layer,omitempty"`
}

// topoSummaryJSON is the compact traversal-topology summary embedded in
// query listings; the full graph is served by /debug/topology?id=N.
type topoSummaryJSON struct {
	Documents int `json:"documents"`
	Links     int `json:"links"`
	Results   int `json:"results"`
}

func summarize(r *QueryRecord, withTrace bool) querySummaryJSON {
	out := querySummaryJSON{
		ID:            r.ID,
		Tenant:        r.Tenant(),
		Query:         r.Query,
		Seeds:         r.Seeds,
		Start:         r.Start,
		DurationMS:    float64(r.Duration().Microseconds()) / 1000,
		Results:       r.Results(),
		Done:          r.Done(),
		Err:           r.Err(),
		Contributions: r.Contributions(),
	}
	if topo := r.Topology(); topo != nil {
		out.Topology = &topoSummaryJSON{Documents: topo.Documents(), Links: topo.Links(), Results: topo.Results()}
	}
	if lg := r.Ledger(); lg != nil {
		out.MemPeakBytes = lg.Peak()
		if snap := lg.Snapshot(); snap != nil {
			out.MemTopLayer = snap.TopLayer
		}
	}
	if r.Trace != nil {
		if tid := r.Trace.ID(); tid != "" {
			out.TraceID = tid
			out.TraceURL = "/debug/traces/" + tid
		}
	}
	if withTrace && r.Trace != nil && r.Trace.Root() != nil {
		root := r.Trace.Root()
		sj := root.toJSON(root.Start())
		out.Trace = &sj
	}
	return out
}

// QueriesHandler serves in-flight and recent query summaries as JSON.
// Span trees are included per query; ?trace=0 omits them, and
// ?id=N&format=tree renders one query's span tree as indented text.
func QueriesHandler(t *QueryTracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "tree" {
			serveTree(w, req, t)
			return
		}
		withTrace := req.URL.Query().Get("trace") != "0"
		var payload struct {
			Schema   int                `json:"schema"`
			InFlight []querySummaryJSON `json:"in_flight"`
			Recent   []querySummaryJSON `json:"recent"`
		}
		payload.Schema = TraceSchemaVersion
		payload.InFlight = []querySummaryJSON{}
		payload.Recent = []querySummaryJSON{}
		for _, r := range t.InFlight() {
			payload.InFlight = append(payload.InFlight, summarize(r, withTrace))
		}
		for _, r := range t.Recent() {
			payload.Recent = append(payload.Recent, summarize(r, withTrace))
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
}

func serveTree(w http.ResponseWriter, req *http.Request, t *QueryTracker) {
	var id int64
	fmt.Sscanf(req.URL.Query().Get("id"), "%d", &id)
	for _, r := range append(t.InFlight(), t.Recent()...) {
		if r.ID == id {
			if r.Trace == nil {
				http.Error(w, "query has no trace", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, r.Trace.Tree())
			return
		}
	}
	http.Error(w, "unknown query id", http.StatusNotFound)
}

// TopologyHandler serves recorded traversal topologies. Without parameters
// it lists queries that carry a topology (id + summary); ?id=N returns the
// query's full topology JSON, and ?id=N&format=dot renders it as a Graphviz
// digraph (Content-Type text/vnd.graphviz).
func TopologyHandler(t *QueryTracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		idParam := req.URL.Query().Get("id")
		if idParam == "" {
			type entry struct {
				ID       int64           `json:"id"`
				Query    string          `json:"query"`
				Done     bool            `json:"done"`
				Topology topoSummaryJSON `json:"topology"`
			}
			entries := []entry{}
			for _, r := range append(t.InFlight(), t.Recent()...) {
				topo := r.Topology()
				if topo == nil {
					continue
				}
				entries = append(entries, entry{
					ID:       r.ID,
					Query:    r.Query,
					Done:     r.Done(),
					Topology: topoSummaryJSON{Documents: topo.Documents(), Links: topo.Links(), Results: topo.Results()},
				})
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(map[string]interface{}{"schema": TraceSchemaVersion, "queries": entries})
			return
		}
		var id int64
		fmt.Sscanf(idParam, "%d", &id)
		for _, r := range append(t.InFlight(), t.Recent()...) {
			if r.ID != id {
				continue
			}
			topo := r.Topology()
			if topo == nil {
				http.Error(w, "query has no recorded topology", http.StatusNotFound)
				return
			}
			if req.URL.Query().Get("format") == "dot" {
				w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
				fmt.Fprint(w, topo.DOT())
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(map[string]interface{}{"schema": TraceSchemaVersion, "id": id, "topology": topo.Snapshot()})
			return
		}
		http.Error(w, "unknown query id", http.StatusNotFound)
	})
}

// ResourcesHandler serves the resource-ledger view: in-flight queries
// ranked by current ledger spend (largest first, full per-layer breakdown
// each), recently finished queries' peaks, and the per-tenant rollups.
func ResourcesHandler(t *QueryTracker, tenants *resource.TenantLedger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		type entry struct {
			Query  string             `json:"query"`
			Done   bool               `json:"done"`
			Ledger *resource.Snapshot `json:"ledger"`
		}
		var payload struct {
			Schema   int                    `json:"schema"`
			InFlight []entry                `json:"in_flight"`
			Recent   []entry                `json:"recent"`
			Tenants  []resource.TenantUsage `json:"tenants"`
		}
		payload.Schema = TraceSchemaVersion
		payload.InFlight = []entry{}
		payload.Recent = []entry{}
		for _, r := range t.InFlight() {
			if snap := r.Ledger().Snapshot(); snap != nil {
				payload.InFlight = append(payload.InFlight, entry{Query: r.Query, Ledger: snap})
			}
		}
		// Rank in-flight queries by live spend, largest first.
		sort.SliceStable(payload.InFlight, func(i, j int) bool {
			return payload.InFlight[i].Ledger.Current > payload.InFlight[j].Ledger.Current
		})
		for _, r := range t.Recent() {
			if snap := r.Ledger().Snapshot(); snap != nil {
				payload.Recent = append(payload.Recent, entry{Query: r.Query, Done: r.Done(), Ledger: snap})
			}
		}
		payload.Tenants = tenants.Snapshot()
		if payload.Tenants == nil {
			payload.Tenants = []resource.TenantUsage{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
}

// Register mounts the observer's exposition endpoints on mux:
// /metrics (Prometheus text), /healthz (ok/degraded), /debug/queries,
// /debug/topology, /debug/resources (per-query memory ledgers), and
// /debug/events (live SSE event feed).
func (o *Observer) Register(mux *http.ServeMux) {
	if o == nil || mux == nil {
		return
	}
	mux.Handle("/metrics", MetricsHandler(o.Registry))
	if o.Health != nil {
		mux.Handle("/healthz", HealthCheckHandler(o.Health))
	} else {
		mux.Handle("/healthz", HealthHandler())
	}
	mux.Handle("/debug/queries", QueriesHandler(o.Tracker))
	mux.Handle("/debug/topology", TopologyHandler(o.Tracker))
	mux.Handle("/debug/resources", ResourcesHandler(o.Tracker, o.Resources))
	if o.Traces != nil {
		mux.Handle("/debug/traces", TracesHandler(o.Traces))
		mux.Handle("/debug/traces/", TracesHandler(o.Traces))
	}
	if o.Stream != nil {
		mux.Handle("/debug/events", o.Stream)
	}
}

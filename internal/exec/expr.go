package exec

import (
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/sha512"
	"encoding/hex"
	"fmt"
	"math"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"sync"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

// errTypeError is the base of SPARQL expression type errors; filters treat
// them as "drop this solution", BIND leaves the variable unbound.
func typeErrf(format string, args ...interface{}) error {
	return fmt.Errorf("type error: "+format, args...)
}

// evalExpr evaluates an expression under a binding.
func evalExpr(env *Env, e sparql.Expression, b rdf.Binding) (rdf.Term, error) {
	switch x := e.(type) {
	case sparql.ExprTerm:
		return x.Term, nil
	case sparql.ExprVar:
		if t, ok := b.Get(x.Name); ok {
			return t, nil
		}
		return rdf.Term{}, typeErrf("unbound variable ?%s", x.Name)
	case sparql.ExprBinary:
		return evalBinary(env, x, b)
	case sparql.ExprUnary:
		return evalUnary(env, x, b)
	case sparql.ExprIn:
		return evalIn(env, x, b)
	case sparql.ExprExists:
		return evalExists(env, x, b)
	case sparql.ExprCall:
		return evalCall(env, x, b)
	default:
		return rdf.Term{}, typeErrf("unsupported expression %T", e)
	}
}

func evalBinary(env *Env, x sparql.ExprBinary, b rdf.Binding) (rdf.Term, error) {
	switch x.Op {
	case "||", "&&":
		return evalLogical(env, x, b)
	}
	l, lerr := evalExpr(env, x.L, b)
	if lerr != nil {
		return rdf.Term{}, lerr
	}
	r, rerr := evalExpr(env, x.R, b)
	if rerr != nil {
		return rdf.Term{}, rerr
	}
	switch x.Op {
	case "=", "!=":
		eq, err := termsEqual(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		if x.Op == "!=" {
			eq = !eq
		}
		return rdf.Boolean(eq), nil
	case "<", ">", "<=", ">=":
		cmp, err := compareValues(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		var res bool
		switch x.Op {
		case "<":
			res = cmp < 0
		case ">":
			res = cmp > 0
		case "<=":
			res = cmp <= 0
		case ">=":
			res = cmp >= 0
		}
		return rdf.Boolean(res), nil
	case "+", "-", "*", "/":
		return arith(x.Op, l, r)
	}
	return rdf.Term{}, typeErrf("unknown operator %q", x.Op)
}

// evalLogical implements SPARQL's three-valued || and && (errors behave as
// "unknown": true||error = true, false&&error = false, otherwise error).
func evalLogical(env *Env, x sparql.ExprBinary, b rdf.Binding) (rdf.Term, error) {
	lv, lerr := evalExpr(env, x.L, b)
	var lb bool
	if lerr == nil {
		var err error
		lb, err = lv.EffectiveBooleanValue()
		if err != nil {
			lerr = err
		}
	}
	rv, rerr := evalExpr(env, x.R, b)
	var rb bool
	if rerr == nil {
		var err error
		rb, err = rv.EffectiveBooleanValue()
		if err != nil {
			rerr = err
		}
	}
	if x.Op == "||" {
		switch {
		case lerr == nil && lb, rerr == nil && rb:
			return rdf.Boolean(true), nil
		case lerr == nil && rerr == nil:
			return rdf.Boolean(false), nil
		default:
			return rdf.Term{}, typeErrf("error in ||")
		}
	}
	switch {
	case lerr == nil && !lb, rerr == nil && !rb:
		return rdf.Boolean(false), nil
	case lerr == nil && rerr == nil:
		return rdf.Boolean(true), nil
	default:
		return rdf.Term{}, typeErrf("error in &&")
	}
}

func evalUnary(env *Env, x sparql.ExprUnary, b rdf.Binding) (rdf.Term, error) {
	v, err := evalExpr(env, x.X, b)
	if err != nil {
		return rdf.Term{}, err
	}
	switch x.Op {
	case "!":
		ebv, err := v.EffectiveBooleanValue()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Boolean(!ebv), nil
	case "-":
		return arith("-", rdf.Integer(0), v)
	case "+":
		if !v.IsNumeric() {
			return rdf.Term{}, typeErrf("unary + on non-numeric %s", v)
		}
		return v, nil
	}
	return rdf.Term{}, typeErrf("unknown unary %q", x.Op)
}

func evalIn(env *Env, x sparql.ExprIn, b rdf.Binding) (rdf.Term, error) {
	v, err := evalExpr(env, x.X, b)
	if err != nil {
		return rdf.Term{}, err
	}
	found := false
	var firstErr error
	for _, item := range x.List {
		iv, err := evalExpr(env, item, b)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if eq, err := termsEqual(v, iv); err == nil && eq {
			found = true
			break
		}
	}
	if !found && firstErr != nil {
		return rdf.Term{}, firstErr
	}
	if x.Not {
		found = !found
	}
	return rdf.Boolean(found), nil
}

// evalExists evaluates EXISTS { pattern } by substituting the current
// binding into the pattern and probing the (complete) source snapshot.
func evalExists(env *Env, x sparql.ExprExists, b rdf.Binding) (rdf.Term, error) {
	op, err := algebra.Translate(&sparql.Query{
		Form:  sparql.FormSelect,
		Where: toGroup(x.Pattern),
		Limit: 1,
	})
	if err != nil {
		return rdf.Term{}, typeErrf("EXISTS: %v", err)
	}
	op = substituteOp(op, b)
	found := existsInSnapshot(env, op, b)
	if x.Not {
		found = !found
	}
	return rdf.Boolean(found), nil
}

func toGroup(p sparql.GraphPattern) *sparql.GroupPattern {
	if g, ok := p.(sparql.GroupPattern); ok {
		return &g
	}
	return &sparql.GroupPattern{Elements: []sparql.GraphPattern{p}}
}

// substituteOp replaces bound variables with their values in pattern scans.
func substituteOp(op algebra.Operator, b rdf.Binding) algebra.Operator {
	switch x := op.(type) {
	case algebra.Pattern:
		graph := x.Graph
		if graph.IsVar() {
			if v, ok := b.Get(graph.Value); ok {
				graph = v
			}
		}
		return algebra.Pattern{Triple: x.Triple.Bind(b), Graph: graph}
	case algebra.PathPattern:
		sub := func(t rdf.Term) rdf.Term {
			if t.IsVar() {
				if v, ok := b.Get(t.Value); ok {
					return v
				}
			}
			return t
		}
		return algebra.PathPattern{S: sub(x.S), O: sub(x.O), Path: x.Path}
	case algebra.Join:
		return algebra.Join{Left: substituteOp(x.Left, b), Right: substituteOp(x.Right, b)}
	case algebra.LeftJoin:
		return algebra.LeftJoin{Left: substituteOp(x.Left, b), Right: substituteOp(x.Right, b), Filters: x.Filters}
	case algebra.Union:
		return algebra.Union{Left: substituteOp(x.Left, b), Right: substituteOp(x.Right, b)}
	case algebra.Minus:
		return algebra.Minus{Left: substituteOp(x.Left, b), Right: substituteOp(x.Right, b)}
	case algebra.Filter:
		return algebra.Filter{Input: substituteOp(x.Input, b), Expr: x.Expr}
	case algebra.Extend:
		return algebra.Extend{Input: substituteOp(x.Input, b), Var: x.Var, Expr: x.Expr}
	case algebra.Slice:
		return algebra.Slice{Input: substituteOp(x.Input, b), Offset: x.Offset, Limit: x.Limit}
	case algebra.Project:
		return algebra.Project{Input: substituteOp(x.Input, b), Items: x.Items}
	case algebra.Distinct:
		return algebra.Distinct{Input: substituteOp(x.Input, b)}
	default:
		return op
	}
}

// existsInSnapshot runs the substituted pattern against the current store
// contents. Filters that gate on EXISTS already waited for store closure,
// so the snapshot is complete when it matters.
func existsInSnapshot(env *Env, op algebra.Operator, b rdf.Binding) bool {
	return snapshotHasSolution(env, op)
}

// builtin regexp cache; patterns in queries are static.
var (
	regexCacheMu sync.Mutex
	regexCache   = map[string]*regexp.Regexp{}
)

func compiledRegex(pattern, flags string) (*regexp.Regexp, error) {
	key := flags + "\x00" + pattern
	regexCacheMu.Lock()
	re, ok := regexCache[key]
	regexCacheMu.Unlock()
	if ok {
		return re, nil
	}
	goPattern := pattern
	if strings.Contains(flags, "i") {
		goPattern = "(?i)" + goPattern
	}
	if strings.Contains(flags, "s") {
		goPattern = "(?s)" + goPattern
	}
	if strings.Contains(flags, "m") {
		goPattern = "(?m)" + goPattern
	}
	re, err := regexp.Compile(goPattern)
	if err != nil {
		return nil, typeErrf("invalid REGEX pattern: %v", err)
	}
	regexCacheMu.Lock()
	regexCache[key] = re
	regexCacheMu.Unlock()
	return re, nil
}

// evalCall dispatches builtin and cast function calls.
func evalCall(env *Env, x sparql.ExprCall, b rdf.Binding) (rdf.Term, error) {
	// Lazy-argument builtins first.
	switch x.Func {
	case "BOUND":
		if len(x.Args) != 1 {
			return rdf.Term{}, typeErrf("BOUND takes 1 argument")
		}
		v, ok := x.Args[0].(sparql.ExprVar)
		if !ok {
			return rdf.Term{}, typeErrf("BOUND requires a variable")
		}
		return rdf.Boolean(b.Has(v.Name)), nil
	case "COALESCE":
		for _, a := range x.Args {
			if v, err := evalExpr(env, a, b); err == nil {
				return v, nil
			}
		}
		return rdf.Term{}, typeErrf("COALESCE: all arguments errored")
	case "IF":
		if len(x.Args) != 3 {
			return rdf.Term{}, typeErrf("IF takes 3 arguments")
		}
		c, err := evalExpr(env, x.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		cv, err := c.EffectiveBooleanValue()
		if err != nil {
			return rdf.Term{}, err
		}
		if cv {
			return evalExpr(env, x.Args[1], b)
		}
		return evalExpr(env, x.Args[2], b)
	case "NOW":
		return env.Now(), nil
	case "RAND":
		return rdf.Double(env.nextRand()), nil
	case "BNODE":
		return env.freshBNode(), nil
	case "UUID":
		return rdf.NewIRI("urn:uuid:" + pseudoUUID(env)), nil
	case "STRUUID":
		return rdf.NewLiteral(pseudoUUID(env)), nil
	}

	// Eager builtins: evaluate all arguments.
	args := make([]rdf.Term, len(x.Args))
	for i, a := range x.Args {
		v, err := evalExpr(env, a, b)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = v
	}
	return evalEagerCall(env, x.Func, args)
}

func pseudoUUID(env *Env) string {
	v := uint64(env.nextRand() * float64(1<<63))
	w := uint64(env.nextRand() * float64(1<<63))
	return fmt.Sprintf("%08x-%04x-4%03x-8%03x-%012x",
		uint32(v), uint16(v>>32), uint16(v>>48)&0xfff, uint16(w)&0xfff, w>>16&0xffffffffffff)
}

// evalEagerCall implements builtins whose arguments are all evaluated.
func evalEagerCall(env *Env, fn string, args []rdf.Term) (rdf.Term, error) {
	need := func(n int) error {
		if len(args) != n {
			return typeErrf("%s takes %d argument(s), got %d", fn, n, len(args))
		}
		return nil
	}
	str := func(t rdf.Term) (string, error) {
		if t.Kind == rdf.TermLiteral {
			return t.Value, nil
		}
		if t.Kind == rdf.TermIRI {
			return t.Value, nil
		}
		return "", typeErrf("%s requires a string, got %s", fn, t)
	}
	strLit := func(t rdf.Term) (rdf.Term, string, error) {
		if t.Kind != rdf.TermLiteral || (t.Datatype != "" && t.Datatype != rdf.XSDString) {
			return rdf.Term{}, "", typeErrf("%s requires a string literal, got %s", fn, t)
		}
		return t, t.Value, nil
	}
	// rebuild re-wraps a derived string with the language of the source.
	rebuild := func(src rdf.Term, s string) rdf.Term {
		if src.Language != "" {
			return rdf.NewLangLiteral(s, src.Language)
		}
		return rdf.NewLiteral(s)
	}

	switch fn {
	case "STR":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		switch args[0].Kind {
		case rdf.TermIRI, rdf.TermLiteral:
			return rdf.NewLiteral(args[0].Value), nil
		}
		return rdf.Term{}, typeErrf("STR of %s", args[0])
	case "LANG":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		if args[0].Kind != rdf.TermLiteral {
			return rdf.Term{}, typeErrf("LANG of non-literal")
		}
		return rdf.NewLiteral(args[0].Language), nil
	case "LANGMATCHES":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		tag := strings.ToLower(args[0].Value)
		rng := strings.ToLower(args[1].Value)
		if rng == "*" {
			return rdf.Boolean(tag != ""), nil
		}
		return rdf.Boolean(tag == rng || strings.HasPrefix(tag, rng+"-")), nil
	case "DATATYPE":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		if args[0].Kind != rdf.TermLiteral {
			return rdf.Term{}, typeErrf("DATATYPE of non-literal")
		}
		return rdf.NewIRI(args[0].DatatypeIRI()), nil
	case "IRI", "URI":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		s, err := str(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(s), nil
	case "STRLEN":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		_, s, err := strLit(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Integer(int64(len([]rune(s)))), nil
	case "UCASE", "LCASE":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		src, s, err := strLit(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		if fn == "UCASE" {
			return rebuild(src, strings.ToUpper(s)), nil
		}
		return rebuild(src, strings.ToLower(s)), nil
	case "CONCAT":
		var sb strings.Builder
		lang := ""
		first := true
		for _, a := range args {
			src, s, err := strLit(a)
			if err != nil {
				return rdf.Term{}, err
			}
			if first {
				lang = src.Language
				first = false
			} else if lang != src.Language {
				lang = ""
			}
			sb.WriteString(s)
		}
		if lang != "" {
			return rdf.NewLangLiteral(sb.String(), lang), nil
		}
		return rdf.NewLiteral(sb.String()), nil
	case "CONTAINS", "STRSTARTS", "STRENDS", "STRBEFORE", "STRAFTER":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		src, s1, err := strLit(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		_, s2, err := strLit(args[1])
		if err != nil {
			return rdf.Term{}, err
		}
		switch fn {
		case "CONTAINS":
			return rdf.Boolean(strings.Contains(s1, s2)), nil
		case "STRSTARTS":
			return rdf.Boolean(strings.HasPrefix(s1, s2)), nil
		case "STRENDS":
			return rdf.Boolean(strings.HasSuffix(s1, s2)), nil
		case "STRBEFORE":
			if i := strings.Index(s1, s2); i >= 0 {
				return rebuild(src, s1[:i]), nil
			}
			return rdf.NewLiteral(""), nil
		default: // STRAFTER
			if i := strings.Index(s1, s2); i >= 0 {
				return rebuild(src, s1[i+len(s2):]), nil
			}
			return rdf.NewLiteral(""), nil
		}
	case "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return rdf.Term{}, typeErrf("SUBSTR takes 2 or 3 arguments")
		}
		src, s, err := strLit(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		start, err := args[1].Int()
		if err != nil {
			return rdf.Term{}, err
		}
		runes := []rune(s)
		// SPARQL positions are 1-based.
		from := int(start) - 1
		if from < 0 {
			from = 0
		}
		if from > len(runes) {
			from = len(runes)
		}
		to := len(runes)
		if len(args) == 3 {
			n, err := args[2].Int()
			if err != nil {
				return rdf.Term{}, err
			}
			to = from + int(n)
			if to > len(runes) {
				to = len(runes)
			}
			if to < from {
				to = from
			}
		}
		return rebuild(src, string(runes[from:to])), nil
	case "REPLACE":
		if len(args) != 3 && len(args) != 4 {
			return rdf.Term{}, typeErrf("REPLACE takes 3 or 4 arguments")
		}
		src, s, err := strLit(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		flags := ""
		if len(args) == 4 {
			flags = args[3].Value
		}
		re, err := compiledRegex(args[1].Value, flags)
		if err != nil {
			return rdf.Term{}, err
		}
		repl := strings.ReplaceAll(args[2].Value, "$", "$$")
		repl = strings.ReplaceAll(repl, "$$0", "${0}")
		// Support $1..$9 backreferences per XPath syntax.
		for i := 1; i <= 9; i++ {
			repl = strings.ReplaceAll(repl, fmt.Sprintf("$$%d", i), fmt.Sprintf("${%d}", i))
		}
		return rebuild(src, re.ReplaceAllString(s, repl)), nil
	case "REGEX":
		if len(args) != 2 && len(args) != 3 {
			return rdf.Term{}, typeErrf("REGEX takes 2 or 3 arguments")
		}
		_, s, err := strLit(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		flags := ""
		if len(args) == 3 {
			flags = args[2].Value
		}
		re, err := compiledRegex(args[1].Value, flags)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Boolean(re.MatchString(s)), nil
	case "ENCODE_FOR_URI":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		_, s, err := strLit(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(url.PathEscape(s)), nil
	case "ABS", "CEIL", "FLOOR", "ROUND":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		if !args[0].IsNumeric() {
			return rdf.Term{}, typeErrf("%s of non-numeric", fn)
		}
		if args[0].IsIntegral() && fn != "ABS" {
			return args[0], nil
		}
		f, err := args[0].Float()
		if err != nil {
			return rdf.Term{}, err
		}
		switch fn {
		case "ABS":
			f = math.Abs(f)
			if args[0].IsIntegral() {
				return rdf.NewTypedLiteral(strconv.FormatInt(int64(f), 10), args[0].Datatype), nil
			}
		case "CEIL":
			f = math.Ceil(f)
		case "FLOOR":
			f = math.Floor(f)
		case "ROUND":
			f = math.Floor(f + 0.5)
		}
		return rdf.NewTypedLiteral(formatNumeric(f, args[0].Datatype), args[0].Datatype), nil
	case "YEAR", "MONTH", "DAY", "HOURS", "MINUTES", "SECONDS":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		tv, err := args[0].Time()
		if err != nil {
			return rdf.Term{}, typeErrf("%s of non-dateTime: %v", fn, err)
		}
		switch fn {
		case "YEAR":
			return rdf.Integer(int64(tv.Year())), nil
		case "MONTH":
			return rdf.Integer(int64(tv.Month())), nil
		case "DAY":
			return rdf.Integer(int64(tv.Day())), nil
		case "HOURS":
			return rdf.Integer(int64(tv.Hour())), nil
		case "MINUTES":
			return rdf.Integer(int64(tv.Minute())), nil
		default:
			return rdf.Integer(int64(tv.Second())), nil
		}
	case "TZ":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		tv, err := args[0].Time()
		if err != nil {
			return rdf.Term{}, err
		}
		_, off := tv.Zone()
		if off == 0 {
			return rdf.NewLiteral("Z"), nil
		}
		sign := "+"
		if off < 0 {
			sign = "-"
			off = -off
		}
		return rdf.NewLiteral(fmt.Sprintf("%s%02d:%02d", sign, off/3600, off%3600/60)), nil
	case "MD5", "SHA1", "SHA256", "SHA384", "SHA512":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		_, s, err := strLit(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		var sum []byte
		switch fn {
		case "MD5":
			h := md5.Sum([]byte(s))
			sum = h[:]
		case "SHA1":
			h := sha1.Sum([]byte(s))
			sum = h[:]
		case "SHA256":
			h := sha256.Sum256([]byte(s))
			sum = h[:]
		case "SHA384":
			h := sha512.Sum384([]byte(s))
			sum = h[:]
		default:
			h := sha512.Sum512([]byte(s))
			sum = h[:]
		}
		return rdf.NewLiteral(hex.EncodeToString(sum)), nil
	case "SAMETERM":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		return rdf.Boolean(args[0] == args[1]), nil
	case "ISIRI", "ISURI":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return rdf.Boolean(args[0].IsIRI()), nil
	case "ISBLANK":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return rdf.Boolean(args[0].IsBlank()), nil
	case "ISLITERAL":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return rdf.Boolean(args[0].IsLiteral()), nil
	case "ISNUMERIC":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return rdf.Boolean(args[0].IsNumeric()), nil
	case "STRLANG":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLangLiteral(args[0].Value, args[1].Value), nil
	case "STRDT":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		if !args[1].IsIRI() {
			return rdf.Term{}, typeErrf("STRDT datatype must be an IRI")
		}
		return rdf.NewTypedLiteral(args[0].Value, args[1].Value), nil
	}

	// XSD constructor casts, called by IRI.
	if strings.HasPrefix(fn, rdf.NSXSD) {
		return evalCast(fn, args)
	}
	return rdf.Term{}, typeErrf("unknown function %s", fn)
}

// formatNumeric renders a float in a form valid for the datatype.
func formatNumeric(f float64, datatype string) string {
	switch datatype {
	case rdf.XSDInteger, rdf.XSDLong, rdf.XSDInt, rdf.XSDShort, rdf.XSDByte, rdf.XSDNonNegativeInteger:
		return strconv.FormatInt(int64(f), 10)
	default:
		s := strconv.FormatFloat(f, 'g', -1, 64)
		return s
	}
}

// evalCast implements XSD constructor functions (xsd:integer(?x) etc.).
func evalCast(datatype string, args []rdf.Term) (rdf.Term, error) {
	if len(args) != 1 {
		return rdf.Term{}, typeErrf("cast takes 1 argument")
	}
	v := args[0]
	lex := v.Value
	if v.Kind == rdf.TermIRI && datatype != rdf.XSDString {
		return rdf.Term{}, typeErrf("cannot cast IRI to %s", datatype)
	}
	switch datatype {
	case rdf.XSDString:
		return rdf.NewLiteral(lex), nil
	case rdf.XSDBoolean:
		if v.IsNumeric() {
			f, err := v.Float()
			if err != nil {
				return rdf.Term{}, err
			}
			return rdf.Boolean(f != 0), nil
		}
		bv, err := v.Bool()
		if err != nil {
			return rdf.Term{}, typeErrf("cannot cast %q to boolean", lex)
		}
		return rdf.Boolean(bv), nil
	case rdf.XSDInteger, rdf.XSDLong, rdf.XSDInt, rdf.XSDShort, rdf.XSDByte, rdf.XSDNonNegativeInteger:
		f, err := strconv.ParseFloat(strings.TrimSpace(lex), 64)
		if err != nil {
			if bv, berr := v.Bool(); berr == nil && v.Datatype == rdf.XSDBoolean {
				if bv {
					return rdf.NewTypedLiteral("1", datatype), nil
				}
				return rdf.NewTypedLiteral("0", datatype), nil
			}
			return rdf.Term{}, typeErrf("cannot cast %q to integer", lex)
		}
		return rdf.NewTypedLiteral(strconv.FormatInt(int64(f), 10), datatype), nil
	case rdf.XSDDecimal, rdf.XSDFloat, rdf.XSDDouble:
		f, err := strconv.ParseFloat(strings.TrimSpace(lex), 64)
		if err != nil {
			return rdf.Term{}, typeErrf("cannot cast %q to %s", lex, datatype)
		}
		return rdf.NewTypedLiteral(strconv.FormatFloat(f, 'g', -1, 64), datatype), nil
	case rdf.XSDDateTime, rdf.XSDDate:
		if _, err := rdf.NewTypedLiteral(lex, rdf.XSDDateTime).Time(); err != nil {
			return rdf.Term{}, typeErrf("cannot cast %q to dateTime", lex)
		}
		return rdf.NewTypedLiteral(lex, datatype), nil
	}
	return rdf.Term{}, typeErrf("unsupported cast to %s", datatype)
}

// arith implements numeric arithmetic with type promotion.
func arith(op string, l, r rdf.Term) (rdf.Term, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return rdf.Term{}, typeErrf("arithmetic on non-numeric operands %s %s %s", l, op, r)
	}
	// Integer arithmetic stays integral except division.
	if l.IsIntegral() && r.IsIntegral() && op != "/" {
		a, err := l.Int()
		if err != nil {
			return rdf.Term{}, err
		}
		b, err := r.Int()
		if err != nil {
			return rdf.Term{}, err
		}
		var v int64
		switch op {
		case "+":
			v = a + b
		case "-":
			v = a - b
		case "*":
			v = a * b
		}
		return rdf.Integer(v), nil
	}
	a, err := l.Float()
	if err != nil {
		return rdf.Term{}, err
	}
	b, err := r.Float()
	if err != nil {
		return rdf.Term{}, err
	}
	var v float64
	switch op {
	case "+":
		v = a + b
	case "-":
		v = a - b
	case "*":
		v = a * b
	case "/":
		if b == 0 {
			return rdf.Term{}, typeErrf("division by zero")
		}
		v = a / b
	}
	dt := rdf.XSDDecimal
	if l.Datatype == rdf.XSDDouble || r.Datatype == rdf.XSDDouble ||
		l.Datatype == rdf.XSDFloat || r.Datatype == rdf.XSDFloat {
		dt = rdf.XSDDouble
	}
	return rdf.NewTypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), dt), nil
}

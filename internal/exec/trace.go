package exec

import (
	"context"

	"ltqp/internal/obs"
	"ltqp/internal/rdf"
)

// traced wraps an operator's stream in an obs span so traced executions
// record per-stage timings and row counts (the join/iterator stages of a
// query's span tree). With no trace on the context this is a single
// context lookup: the inner stream is returned untouched, so untraced
// queries pay nothing per solution.
func traced(ctx context.Context, name string, attrs []obs.Attr, inner func(context.Context) Stream) Stream {
	ctx, sp := obs.StartSpan(ctx, name, attrs...)
	s := inner(ctx)
	if sp == nil {
		return s
	}
	out := make(chan rdf.Binding, chanCap)
	go func() {
		defer close(out)
		rows := 0
		for b := range s {
			if !send(ctx, out, b) {
				break
			}
			rows++
		}
		sp.SetAttr(obs.Int("rows", rows))
		sp.End()
	}()
	return out
}

// opAttrs abbreviates an operator description for span annotation.
func opAttrs(desc string) []obs.Attr {
	if len(desc) > 80 {
		desc = desc[:77] + "..."
	}
	return []obs.Attr{obs.Str("op", desc)}
}

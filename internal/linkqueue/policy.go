package linkqueue

import "fmt"

// Policy names a link-queue discipline. The zero value selects FIFO — the
// paper's breadth-first baseline and the oracle the guided queue is
// differentially tested against.
type Policy string

const (
	// PolicyFIFO is breadth-first traversal (the Comunica default).
	PolicyFIFO Policy = "fifo"
	// PolicyReason ranks links by their discovery reason only (type-index
	// before blind container walks) — the pre-guided priority queue.
	PolicyReason Policy = "reason"
	// PolicyGuided scores links by query relevance (constant-IRI mentions,
	// discovery reason, source-document productivity) with per-origin
	// round-robin fairness.
	PolicyGuided Policy = "guided"
)

// ParsePolicy validates a policy name; "" means PolicyFIFO.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "", PolicyFIFO:
		return PolicyFIFO, nil
	case PolicyReason:
		return PolicyReason, nil
	case PolicyGuided:
		return PolicyGuided, nil
	default:
		return "", fmt.Errorf("linkqueue: unknown queue policy %q (want fifo, reason or guided)", s)
	}
}

// New builds an empty queue under the policy. The relevance is used only by
// PolicyGuided (nil disables its mention boost).
func (p Policy) New(rel *Relevance) Queue {
	switch p {
	case PolicyReason:
		return NewPriority(nil)
	case PolicyGuided:
		return NewGuided(rel)
	default:
		return NewFIFO()
	}
}

package exec

import (
	"context"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

// evalPathPattern evaluates transitive/negated property paths. These are
// non-monotonic in the presence of a growing source only in the sense that
// their full closure keeps extending, so — like other blocking operators —
// evaluation gates on source completion and then computes the closure over
// the final snapshot.
func evalPathPattern(ctx context.Context, p algebra.PathPattern, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	go func() {
		defer close(out)
		if env.Store.WaitClosed(ctx) != nil {
			return
		}
		for _, b := range evalPathSnapshot(env, p) {
			if !send(ctx, out, b) {
				return
			}
		}
	}()
	return out
}

// evalPathSnapshot computes the solutions of a path pattern over the
// current store contents.
func evalPathSnapshot(env *Env, p algebra.PathPattern) []rdf.Binding {
	var out []rdf.Binding
	emit := func(s, o rdf.Term) {
		b := rdf.NewBinding()
		ok := true
		if p.S.IsVar() {
			b, ok = b.Extend(p.S.Value, s)
			if !ok {
				return
			}
		} else if p.S != s {
			return
		}
		if p.O.IsVar() {
			b, ok = b.Extend(p.O.Value, o)
			if !ok {
				return
			}
		} else if p.O != o {
			return
		}
		out = append(out, b)
	}

	switch {
	case !p.S.IsVar():
		for _, o := range pathReachable(env, p.Path, p.S) {
			emit(p.S, o)
		}
	case !p.O.IsVar():
		for _, s := range pathReachable(env, invertPath(p.Path), p.O) {
			emit(s, p.O)
		}
	default:
		// Both endpoints variable: evaluate from every candidate start
		// node in the snapshot.
		for _, n := range snapshotNodes(env) {
			for _, o := range pathReachable(env, p.Path, n) {
				emit(n, o)
			}
		}
	}
	// Deduplicate (closures can reach a node along multiple routes).
	seen := map[string]bool{}
	dedup := out[:0]
	vars := []string{}
	if p.S.IsVar() {
		vars = append(vars, p.S.Value)
	}
	if p.O.IsVar() {
		vars = append(vars, p.O.Value)
	}
	for _, b := range out {
		k := b.Key(vars)
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, b)
		}
	}
	return dedup
}

// snapshotNodes returns all distinct subject and object terms currently in
// the store.
func snapshotNodes(env *Env) []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	for _, t := range env.Store.Snapshot() {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		if !seen[t.O] {
			seen[t.O] = true
			out = append(out, t.O)
		}
	}
	return out
}

// pathReachable returns the set of terms reachable from start via the path.
func pathReachable(env *Env, path sparql.Path, start rdf.Term) []rdf.Term {
	switch x := path.(type) {
	case sparql.PathZeroOrMore:
		return closure(env, x.Path, start, true)
	case sparql.PathOneOrMore:
		return closure(env, x.Path, start, false)
	case sparql.PathZeroOrOne:
		res := []rdf.Term{start}
		seen := map[rdf.Term]bool{start: true}
		for _, o := range pathStep(env, x.Path, start) {
			if !seen[o] {
				seen[o] = true
				res = append(res, o)
			}
		}
		return res
	default:
		return pathStep(env, path, start)
	}
}

// closure computes the (zero-or-more / one-or-more) transitive closure of
// the inner path from start via BFS.
func closure(env *Env, inner sparql.Path, start rdf.Term, includeZero bool) []rdf.Term {
	visited := map[rdf.Term]bool{}
	var order []rdf.Term
	frontier := []rdf.Term{start}
	if includeZero {
		visited[start] = true
		order = append(order, start)
	}
	for len(frontier) > 0 {
		var next []rdf.Term
		for _, n := range frontier {
			for _, o := range pathStep(env, inner, n) {
				if !visited[o] {
					visited[o] = true
					order = append(order, o)
					next = append(next, o)
				}
			}
		}
		frontier = next
	}
	return order
}

// pathStep enumerates one-step successors of node via the path.
func pathStep(env *Env, path sparql.Path, node rdf.Term) []rdf.Term {
	switch x := path.(type) {
	case sparql.PathIRI:
		var out []rdf.Term
		for _, t := range env.Store.MatchNow(rdf.NewTriple(node, rdf.NewIRI(x.IRI), rdf.NewVar("o"))) {
			out = append(out, t.O)
		}
		return out
	case sparql.PathVar:
		var out []rdf.Term
		for _, t := range env.Store.MatchNow(rdf.NewTriple(node, rdf.NewVar("p"), rdf.NewVar("o"))) {
			out = append(out, t.O)
		}
		return out
	case sparql.PathInverse:
		switch inner := x.Path.(type) {
		case sparql.PathIRI:
			var out []rdf.Term
			for _, t := range env.Store.MatchNow(rdf.NewTriple(rdf.NewVar("s"), rdf.NewIRI(inner.IRI), node)) {
				out = append(out, t.S)
			}
			return out
		case sparql.PathVar:
			var out []rdf.Term
			for _, t := range env.Store.MatchNow(rdf.NewTriple(rdf.NewVar("s"), rdf.NewVar("p"), node)) {
				out = append(out, t.S)
			}
			return out
		default:
			// Push the inversion down to the leaves, where the two cases
			// above terminate the recursion.
			return pathReachable(env, invertPath(inner), node)
		}
	case sparql.PathSequence:
		frontier := []rdf.Term{node}
		for _, part := range x.Parts {
			seen := map[rdf.Term]bool{}
			var next []rdf.Term
			for _, n := range frontier {
				for _, o := range pathReachable(env, part, n) {
					if !seen[o] {
						seen[o] = true
						next = append(next, o)
					}
				}
			}
			frontier = next
		}
		return frontier
	case sparql.PathAlternative:
		seen := map[rdf.Term]bool{}
		var out []rdf.Term
		for _, part := range x.Parts {
			for _, o := range pathReachable(env, part, node) {
				if !seen[o] {
					seen[o] = true
					out = append(out, o)
				}
			}
		}
		return out
	case sparql.PathZeroOrMore, sparql.PathOneOrMore, sparql.PathZeroOrOne:
		return pathReachable(env, path, node)
	case sparql.PathNegated:
		var out []rdf.Term
		if len(x.Forward) > 0 || len(x.Inverse) == 0 {
			forbidden := map[string]bool{}
			for _, iri := range x.Forward {
				forbidden[iri] = true
			}
			for _, t := range env.Store.MatchNow(rdf.NewTriple(node, rdf.NewVar("p"), rdf.NewVar("o"))) {
				if t.P.Kind == rdf.TermIRI && !forbidden[t.P.Value] {
					out = append(out, t.O)
				}
			}
		}
		if len(x.Inverse) > 0 {
			forbidden := map[string]bool{}
			for _, iri := range x.Inverse {
				forbidden[iri] = true
			}
			for _, t := range env.Store.MatchNow(rdf.NewTriple(rdf.NewVar("s"), rdf.NewVar("p"), node)) {
				if t.P.Kind == rdf.TermIRI && !forbidden[t.P.Value] {
					out = append(out, t.S)
				}
			}
		}
		return out
	default:
		return nil
	}
}

// invertPath syntactically inverts a path: reachable(inv(p), o) = the set
// of s with (s, p, o).
func invertPath(path sparql.Path) sparql.Path {
	switch x := path.(type) {
	case sparql.PathIRI:
		return sparql.PathInverse{Path: x}
	case sparql.PathVar:
		return sparql.PathInverse{Path: x}
	case sparql.PathInverse:
		return x.Path
	case sparql.PathSequence:
		parts := make([]sparql.Path, len(x.Parts))
		for i, p := range x.Parts {
			parts[len(x.Parts)-1-i] = invertPath(p)
		}
		return sparql.PathSequence{Parts: parts}
	case sparql.PathAlternative:
		parts := make([]sparql.Path, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = invertPath(p)
		}
		return sparql.PathAlternative{Parts: parts}
	case sparql.PathZeroOrMore:
		return sparql.PathZeroOrMore{Path: invertPath(x.Path)}
	case sparql.PathOneOrMore:
		return sparql.PathOneOrMore{Path: invertPath(x.Path)}
	case sparql.PathZeroOrOne:
		return sparql.PathZeroOrOne{Path: invertPath(x.Path)}
	case sparql.PathNegated:
		return sparql.PathNegated{Forward: x.Inverse, Inverse: x.Forward}
	default:
		return path
	}
}

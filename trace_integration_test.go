package ltqp_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/obs"
	"ltqp/internal/podserver"
	"ltqp/internal/solid"
)

// traceEnv serves the explain tests' three-document chain a.ttl → b.ttl →
// c.ttl with injected per-request latency and a server-side span log, so
// the client and server halves of the distributed trace can be joined.
func traceEnv(t *testing.T, latency time.Duration) (base string, engine *ltqp.Engine, ps *podserver.Server, cleanup func()) {
	t.Helper()
	ps = podserver.New()
	ps.Latency = latency
	ps.Spans = obs.NewServerSpanLog(0)
	srv := httptest.NewServer(ps)
	base = srv.URL
	ps.AddDocument(base+"/a.ttl", fmt.Sprintf(
		"<%s/a.ttl#alice> <http://v/friend> <%s/b.ttl#bob>.", base, base), solid.PublicAccess)
	ps.AddDocument(base+"/b.ttl", fmt.Sprintf(
		"<%s/b.ttl#bob> <http://v/post> <%s/c.ttl#p1>.", base, base), solid.PublicAccess)
	ps.AddDocument(base+"/c.ttl", fmt.Sprintf(
		"<%s/c.ttl#p1> <http://v/title> \"hello\".", base), solid.PublicAccess)
	engine = ltqp.New(ltqp.Config{
		Client:   srv.Client(),
		Strategy: ltqp.StrategyCMatch,
		Explain:  true,
		Trace:    true,
	})
	return base, engine, ps, srv.Close
}

// TestCriticalPathThreeHop is the tentpole acceptance test: a three-hop
// dependent dereference chain under injected latency must yield a critical
// path in Result.Explain() naming the exact chain that gated the first
// result, with a server-side share absorbed from Server-Timing.
func TestCriticalPathThreeHop(t *testing.T) {
	base, engine, _, done := traceEnv(t, 5*time.Millisecond)
	defer done()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.Query(ctx, explainQuery(base))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range res.Results {
		n++
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("results = %d, want 1", n)
	}

	report := res.Explain()
	if report == nil || report.CriticalPath == nil {
		t.Fatal("Explain() carries no critical path")
	}
	cp := report.CriticalPath
	wantChain := []string{base + "/a.ttl", base + "/b.ttl", base + "/c.ttl"}
	if got := cp.FirstResultURLs(); !reflect.DeepEqual(got, wantChain) {
		t.Errorf("first-result chain = %v, want %v", got, wantChain)
	}
	if cp.TTFRMS <= 0 {
		t.Errorf("TTFR = %v, want > 0", cp.TTFRMS)
	}
	// Three dependent fetches, each at least the injected 5ms.
	if cp.GatingMS < 15 {
		t.Errorf("gating = %.1fms, want >= 15 (3 serialized 5ms fetches)", cp.GatingMS)
	}
	// Server-Timing attribution: the injected latency is server-side delay,
	// so the server share must dominate the chain.
	if cp.ServerMS < 15 {
		t.Errorf("server share = %.1fms, want >= 15 (Server-Timing absorbed)", cp.ServerMS)
	}
	if cp.ServerMS > cp.GatingMS {
		t.Errorf("server share %.1f exceeds gating %.1f", cp.ServerMS, cp.GatingMS)
	}
	// The same analysis reaches the raw recorder: every chain hop carries
	// its server share.
	for _, q := range res.Metrics().Requests() {
		if q.Server <= 0 {
			t.Errorf("request %s absorbed no Server-Timing", q.URL)
		}
	}
}

// TestTraceSmokeThreeHop joins the client and server halves of the trace:
// the query's trace ID propagates via traceparent to every pod request, the
// pod's span log records one server span per dereference, and the counts
// agree with --stats' document count. With LTQP_TRACE_ARTIFACT set, the
// merged trace is exported as JSON (the CI trace-smoke artifact).
func TestTraceSmokeThreeHop(t *testing.T) {
	base, engine, ps, done := traceEnv(t, 2*time.Millisecond)
	defer done()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.Query(ctx, explainQuery(base))
	if err != nil {
		t.Fatal(err)
	}
	for range res.Results {
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}

	traceID := res.TraceID()
	if len(traceID) != 32 {
		t.Fatalf("TraceID() = %q, want 32 hex chars", traceID)
	}
	docs := res.Stats().Requests
	if docs != 3 {
		t.Fatalf("stats requests = %d, want 3", docs)
	}

	// Client side: one "document" span per dereferenced document, all under
	// the query's trace ID.
	root := res.Trace().Root()
	if root == nil {
		t.Fatal("no trace recorded")
	}
	clientDocs := root.Count("document")
	if clientDocs != docs {
		t.Errorf("client document spans = %d, want %d", clientDocs, docs)
	}
	docSpans := 0
	root.Walk(func(sp *obs.Span) {
		if sp.Name() == "document" {
			docSpans++
			if sp.TraceID().String() != traceID {
				t.Errorf("document span carries trace %s, want %s", sp.TraceID(), traceID)
			}
		}
	})

	// Server side: the pod recorded exactly one span per request, joined to
	// the same trace via the propagated traceparent header.
	serverSpans := ps.Spans.ByTrace(traceID)
	if len(serverSpans) != docs {
		t.Fatalf("server spans for trace = %d, want %d (all %d recorded)",
			len(serverSpans), docs, ps.Spans.Len())
	}
	for _, sp := range serverSpans {
		if sp.ParentID == "" || sp.SpanID == "" {
			t.Errorf("server span %s missing ids: %+v", sp.URL, sp)
		}
		if sp.Status != 200 {
			t.Errorf("server span %s status = %d", sp.URL, sp.Status)
		}
		if sp.DelayMS < 1 {
			t.Errorf("server span %s delay = %.2fms, want >= 1 (injected latency)", sp.URL, sp.DelayMS)
		}
	}

	if path := os.Getenv("LTQP_TRACE_ARTIFACT"); path != "" {
		rec := obs.TraceRecord{
			TraceID:      traceID,
			Query:        "trace-smoke three-hop",
			Start:        res.Metrics().Epoch(),
			Results:      1,
			KeepReason:   "smoke",
			Root:         res.Trace().Snapshot(),
			Requests:     obs.RequestsJSON(res.Metrics().Requests(), res.Metrics().Epoch()),
			ServerSpans:  serverSpans,
			CriticalPath: res.Explain().CriticalPath,
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("trace artifact written to %s (%d bytes)", path, len(data))
	}
}

// Command sparql-endpoint exposes the link-traversal engine through the
// SPARQL 1.1 Protocol, so any SPARQL client can query Decentralized
// Knowledge Graphs without knowing about traversal: a query arrives over
// HTTP, the engine traverses the relevant Solid pods live, and the results
// return in the negotiated standard format (SPARQL Results JSON, CSV, TSV;
// Turtle or N-Triples for CONSTRUCT/DESCRIBE).
//
//	sparql-endpoint --addr localhost:8096
//	curl 'http://localhost:8096/sparql?query=SELECT...' \
//	     -H 'Accept: application/sparql-results+json'
//
// With --simulate the endpoint also hosts an in-process simulated Solid
// environment to traverse (handy for demos); otherwise it dereferences
// whatever the queries point at.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ltqp"
	"ltqp/internal/obs"
	"ltqp/internal/results"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
	"ltqp/internal/sparql"
	"ltqp/internal/turtle"
)

// version identifies the build in ltqp_build_info (override with
// -ldflags "-X main.version=v1.2.3").
var version = "dev"

func main() {
	var (
		addr      = flag.String("addr", "localhost:8096", "listen address")
		debugAddr = flag.String("debug-addr", "", "extra listener for net/http/pprof + observability endpoints (e.g. localhost:6060)")
		simulate  = flag.Bool("simulate", false, "host a simulated Solid environment in-process")
		persons   = flag.Int("persons", 16, "pods for --simulate")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-query timeout")
		cacheDocs = flag.Int("cache", 1024, "engine-wide document cache size (0 disables)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight queries")
		logFormat = flag.String("log", "", "enable structured logging to stderr: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		degraded  = flag.Float64("degraded-threshold", obs.DefaultDegradedThreshold, "recent deref failure ratio above which /healthz reports degraded")
	)
	flag.Parse()

	observer := ltqp.NewObserver()
	observer.Health.Threshold = *degraded
	obs.StampBuildInfo(observer.Registry, version, time.Now())
	if *logFormat != "" {
		logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sparql-endpoint:", err)
			os.Exit(2)
		}
		eventLog := obs.LogEvents(logger, observer.Events)
		defer eventLog.Close()
	}
	// Explain makes every query record its traversal topology and result
	// provenance, served live on /debug/topology and in /debug/queries.
	cfg := ltqp.Config{Lenient: true, Obs: observer, CacheDocuments: *cacheDocs, Explain: true}
	var env *simenv.Env
	if *simulate {
		scfg := solidbench.DefaultConfig()
		scfg.Persons = *persons
		env = simenv.New(scfg)
		cfg.Client = env.Client()
		q := env.Dataset.Discover(1, 1)
		fmt.Fprintf(os.Stderr, "simulated pods at %s\nexample query name: %s\n", env.Server.URL, q.Name)
	}

	h := NewHandler(ltqp.New(cfg), *timeout)
	mux := buildMux(h, observer)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// Long-lived /debug/events feeds would otherwise hold Shutdown open for
	// the full drain budget; close them as soon as draining starts.
	srv.RegisterOnShutdown(observer.Stream.Shutdown)

	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		observer.Register(dmux)
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/debug/pprof/\n", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "sparql-endpoint: debug:", err)
			}
		}()
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// drain in-flight queries within the --drain budget, then close the
	// simulated environment.
	stop, stopCancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopCancel()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "SPARQL endpoint on http://%s/sparql (metrics on /metrics, health on /healthz, queries on /debug/queries, traversal graphs on /debug/topology, live events on /debug/events)\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	exit := 0
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "sparql-endpoint:", err)
			exit = 1
		}
	case <-stop.Done():
		fmt.Fprintln(os.Stderr, "sparql-endpoint: shutting down, draining in-flight queries...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "sparql-endpoint: shutdown:", err)
			exit = 1
		}
		if debugSrv != nil {
			debugSrv.Shutdown(shutdownCtx)
		}
		cancel()
	}
	if env != nil {
		env.Close()
	}
	os.Exit(exit)
}

// buildMux assembles the endpoint's HTTP surface: the SPARQL protocol on
// /sparql plus the observer's endpoints (/metrics, /healthz, /debug/queries,
// /debug/topology, /debug/events).
func buildMux(h *Handler, observer *ltqp.Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/sparql", h)
	observer.Register(mux)
	return mux
}

// Handler implements the SPARQL 1.1 Protocol over the traversal engine.
type Handler struct {
	engine  *ltqp.Engine
	timeout time.Duration
}

// NewHandler builds a protocol handler around an engine.
func NewHandler(engine *ltqp.Engine, timeout time.Duration) *Handler {
	return &Handler{engine: engine, timeout: timeout}
}

// ServeHTTP handles SPARQL Protocol query operations (GET with ?query=,
// POST with form or application/sparql-query body).
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	query, err := extractQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.timeout)
	defer cancel()

	parsed, err := sparql.ParseQuery(query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	accept := r.Header.Get("Accept")
	switch parsed.Form {
	case sparql.FormAsk:
		ok, err := h.engine.Ask(ctx, query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		results.WriteBooleanJSON(w, ok)

	case sparql.FormConstruct, sparql.FormDescribe:
		var triples []ltqp.Triple
		if parsed.Form == sparql.FormConstruct {
			triples, err = h.engine.Construct(ctx, query)
		} else {
			triples, err = h.engine.Describe(ctx, query)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if strings.Contains(accept, "application/n-triples") {
			w.Header().Set("Content-Type", "application/n-triples")
			io.WriteString(w, turtle.WriteNTriples(triples))
			return
		}
		w.Header().Set("Content-Type", "text/turtle")
		io.WriteString(w, turtle.Write(triples, turtle.WriteOptions{Prefixes: ltqp.CommonPrefixes()}))

	default: // SELECT
		res, err := h.engine.Query(ctx, query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var all []ltqp.Binding
		for b := range res.Results {
			all = append(all, b)
		}
		if err := res.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		switch {
		case strings.Contains(accept, "text/csv"):
			w.Header().Set("Content-Type", "text/csv")
			results.WriteCSV(w, res.Vars, all)
		case strings.Contains(accept, "text/tab-separated-values"):
			w.Header().Set("Content-Type", "text/tab-separated-values")
			results.WriteTSV(w, res.Vars, all)
		default:
			w.Header().Set("Content-Type", "application/sparql-results+json")
			results.WriteJSON(w, res.Vars, all)
		}
	}
}

// extractQuery pulls the query string out of a protocol request.
func extractQuery(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", fmt.Errorf("missing query parameter")
		}
		return q, nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				return "", err
			}
			return string(body), nil
		}
		if err := r.ParseForm(); err != nil {
			return "", err
		}
		q := r.PostForm.Get("query")
		if q == "" {
			return "", fmt.Errorf("missing query form field")
		}
		return q, nil
	default:
		return "", fmt.Errorf("method %s not allowed", r.Method)
	}
}

// Package deref implements the dereferencer of the traversal engine: it
// fetches a document URL over HTTP with RDF content negotiation, parses the
// response into triples, and reports request metrics. Authentication is
// supported by attaching the querying agent's WebID as a bearer credential,
// which the simulated Solid pod servers verify against per-document access
// control lists — reproducing the paper's "execute queries on behalf of the
// logged-in user" behaviour with a simulated Solid-OIDC flow.
package deref

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"ltqp/internal/metrics"
	"ltqp/internal/rdf"
	"ltqp/internal/turtle"
)

// AcceptHeader is the RDF content negotiation header sent with every
// dereference.
const AcceptHeader = "text/turtle;q=1.0, application/n-triples;q=0.9, */*;q=0.1"

// maxBodyBytes caps response bodies to guard against hostile documents.
const maxBodyBytes = 64 << 20

// Credentials identifies the agent on whose behalf the engine queries.
type Credentials struct {
	// WebID is the agent's WebID IRI.
	WebID string
	// Token is the bearer token proving control of the WebID. The
	// simulated identity provider issues Token == WebID signatures; real
	// deployments would carry a DPoP-bound access token here.
	Token string
}

// Result is a successful dereference.
type Result struct {
	// URL is the requested document URL; FinalURL the post-redirect URL.
	URL      string
	FinalURL string
	// Triples are the parsed statements, with relative IRIs resolved
	// against the final URL and blank nodes scoped to this document.
	Triples []rdf.Triple
	Status  int
	Bytes   int64
}

// Dereferencer fetches and parses RDF documents.
type Dereferencer struct {
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Auth, when non-nil, is attached to every request.
	Auth *Credentials
	// Recorder, when non-nil, receives request metrics.
	Recorder *metrics.Recorder
	// Cache, when non-nil, serves repeated dereferences of a document
	// without touching the network (Fig. 4's "(disk cache)" behaviour).
	Cache *Cache
	// UserAgent is sent as the User-Agent header.
	UserAgent string

	// docCounter scopes blank node labels per dereferenced document.
	docCounter atomic.Int64
}

// Dereference fetches one document and parses it. Failures (transport,
// status, parse) return an error; the metrics recorder captures the event
// either way.
func (d *Dereferencer) Dereference(ctx context.Context, url, parent, reason string) (*Result, error) {
	client := d.Client
	if client == nil {
		client = http.DefaultClient
	}
	ev := metrics.Request{URL: url, Parent: parent, Reason: reason, Start: time.Now()}
	record := func() {
		ev.End = time.Now()
		if d.Recorder != nil {
			d.Recorder.Record(ev)
		}
	}

	if d.Cache != nil {
		if entry, ok := d.Cache.get(cacheKey(url, d.Auth)); ok {
			ev.Status = http.StatusOK
			ev.Bytes = entry.bytes
			ev.Triples = len(entry.triples)
			ev.Cached = true
			record()
			return &Result{URL: url, FinalURL: entry.finalURL, Triples: entry.triples,
				Status: http.StatusOK, Bytes: entry.bytes}, nil
		}
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		ev.Err = err.Error()
		record()
		return nil, fmt.Errorf("deref: %w", err)
	}
	req.Header.Set("Accept", AcceptHeader)
	if d.UserAgent != "" {
		req.Header.Set("User-Agent", d.UserAgent)
	}
	if d.Auth != nil {
		req.Header.Set("Authorization", "Bearer "+d.Auth.Token)
		req.Header.Set("X-WebID", d.Auth.WebID)
	}

	resp, err := client.Do(req)
	if err != nil {
		ev.Err = err.Error()
		record()
		return nil, fmt.Errorf("deref %s: %w", url, err)
	}
	defer resp.Body.Close()
	ev.Status = resp.StatusCode

	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		ev.Err = err.Error()
		record()
		return nil, fmt.Errorf("deref %s: reading body: %w", url, err)
	}
	ev.Bytes = int64(len(body))

	if resp.StatusCode != http.StatusOK {
		ev.Err = fmt.Sprintf("status %d", resp.StatusCode)
		record()
		return nil, fmt.Errorf("deref %s: status %d", url, resp.StatusCode)
	}

	finalURL := url
	if resp.Request != nil && resp.Request.URL != nil {
		finalURL = resp.Request.URL.String()
	}

	ctype := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ctype, ';'); i >= 0 {
		ctype = ctype[:i]
	}
	ctype = strings.TrimSpace(strings.ToLower(ctype))
	switch ctype {
	case "", "text/turtle", "application/n-triples", "text/n3", "application/trig":
		// Parse below; N-Triples is a Turtle subset.
	default:
		ev.Err = "unsupported content type " + ctype
		record()
		return nil, fmt.Errorf("deref %s: unsupported content type %q", url, ctype)
	}

	triples, err := turtle.Parse(string(body), turtle.Options{
		Base:        finalURL,
		BlankPrefix: fmt.Sprintf("d%d.", d.docCounter.Add(1)),
	})
	if err != nil {
		ev.Err = err.Error()
		record()
		return nil, fmt.Errorf("deref %s: %w", url, err)
	}
	ev.Triples = len(triples)
	record()
	if d.Cache != nil {
		d.Cache.put(&cacheEntry{
			key:      cacheKey(url, d.Auth),
			finalURL: finalURL,
			triples:  triples,
			bytes:    ev.Bytes,
		})
	}
	return &Result{URL: url, FinalURL: finalURL, Triples: triples, Status: resp.StatusCode, Bytes: ev.Bytes}, nil
}

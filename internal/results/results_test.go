package results

import (
	"encoding/json"
	"strings"
	"testing"

	"ltqp/internal/rdf"
)

var testVars = []string{"s", "v"}

var testBindings = []rdf.Binding{
	{"s": rdf.NewIRI("http://example.org/a"), "v": rdf.Integer(42)},
	{"s": rdf.NewBlank("b0"), "v": rdf.NewLangLiteral("hoi", "nl")},
	{"s": rdf.NewIRI("http://example.org/c")}, // v unbound
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, testVars, testBindings); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]map[string]string `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, sb.String())
	}
	if len(parsed.Head.Vars) != 2 || len(parsed.Results.Bindings) != 3 {
		t.Fatalf("shape = %+v", parsed)
	}
	row0 := parsed.Results.Bindings[0]
	if row0["s"]["type"] != "uri" || row0["s"]["value"] != "http://example.org/a" {
		t.Errorf("row0 s = %v", row0["s"])
	}
	if row0["v"]["type"] != "literal" || row0["v"]["datatype"] != rdf.XSDInteger {
		t.Errorf("row0 v = %v", row0["v"])
	}
	row1 := parsed.Results.Bindings[1]
	if row1["s"]["type"] != "bnode" {
		t.Errorf("row1 s = %v", row1["s"])
	}
	if row1["v"]["xml:lang"] != "nl" {
		t.Errorf("row1 v = %v", row1["v"])
	}
	if _, ok := parsed.Results.Bindings[2]["v"]; ok {
		t.Error("unbound variable must be absent from the row")
	}
}

func TestWriteBooleanJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteBooleanJSON(&sb, true); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Boolean bool `json:"boolean"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil || !parsed.Boolean {
		t.Errorf("boolean JSON = %q (%v)", sb.String(), err)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	bindings := []rdf.Binding{
		{"s": rdf.NewLiteral(`with,comma and "quote"`), "v": rdf.Integer(1)},
	}
	if err := WriteCSV(&sb, testVars, bindings); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "s,v" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `"with,comma and ""quote""",1` {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteTSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteTSV(&sb, testVars, testBindings[:1]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "?s\t?v" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "<http://example.org/a>") ||
		!strings.Contains(lines[1], `"42"^^<`+rdf.XSDInteger+`>`) {
		t.Errorf("row = %q", lines[1])
	}
}

func TestStreamNDJSON(t *testing.T) {
	ch := make(chan rdf.Binding, 3)
	for _, b := range testBindings {
		ch <- b
	}
	close(ch)
	var sb strings.Builder
	n, err := StreamNDJSON(&sb, testVars, ch)
	if err != nil || n != 3 {
		t.Fatalf("n = %d, err = %v", n, err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Each line is standalone JSON in the paper's Fig. 2 format.
	var obj map[string]string
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("line 0: %v", err)
	}
	if obj["v"] != `"42"^^`+rdf.XSDInteger {
		t.Errorf("v = %q", obj["v"])
	}
}

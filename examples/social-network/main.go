// Social-network walkthrough: the decentralized social application
// scenario that motivates the paper — people, posts, comments, and likes
// spread over personal data pods — queried live with link traversal.
//
// The example runs the paper's two demonstration queries plus a friend
// recommendation query, and prints for each the streamed results, the
// time to first result (the paper's headline usability claim), and how
// many pods the traversal reached.
//
//	go run ./examples/social-network
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ltqp"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

func main() {
	cfg := solidbench.DefaultConfig()
	cfg.Persons = 12
	env := simenv.New(cfg)
	defer env.Close()
	env.PodServer.Latency = 2 * time.Millisecond // simulate network RTT

	engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Scenario 1 — Discover 1.5 (paper Fig. 4): all posts of one person.
	// A single-pod query: traversal stays within the person's pod.
	runQuery(ctx, engine, env.Dataset.Discover(1, 5), 5)

	// Scenario 2 — Discover 8.5 (paper Fig. 5): messages by the authors
	// of messages this person likes. A multi-pod query: traversal hops
	// from the person's likes to the authors' pods automatically.
	runQuery(ctx, engine, env.Dataset.Discover(8, 5), 5)

	// Scenario 3 — friend-of-a-friend discovery across WebID profiles.
	person := env.Dataset.Discover(1, 2).Person
	fof := solidbench.Query{
		Name:     "Friends of friends",
		MultiPod: true,
		Text: fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT DISTINCT ?friend ?name WHERE {
  <%s> foaf:knows/foaf:knows ?friend.
  ?friend foaf:name ?name.
  FILTER(?friend != <%s>)
}`, env.Dataset.WebID(person), env.Dataset.WebID(person)),
	}
	runQuery(ctx, engine, fof, 8)
}

func runQuery(ctx context.Context, engine *ltqp.Engine, q solidbench.Query, show int) {
	fmt.Printf("== %s ==\n", q.Name)
	start := time.Now()
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	var first time.Duration
	for b := range res.Results {
		if n == 0 {
			first = time.Since(start)
		}
		n++
		if n <= show {
			fmt.Printf("   %s\n", ltqp.BindingJSON(b))
		}
	}
	if n > show {
		fmt.Printf("   ... and %d more\n", n-show)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   -> %d results; first after %s, all after %s; %d requests across %d pods\n\n",
		n, first.Round(time.Millisecond), time.Since(start).Round(time.Millisecond),
		res.Stats().Requests, res.Metrics().PodsTouched())
}

package exec

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
)

// Property-based suite pinning every vectorized operator to the
// row-at-a-time reference semantics: for randomly generated batches with
// random selection vectors (nil, ordered-sparse, out-of-order, reversed,
// empty, single-row), each batch operator must produce the same solution
// multiset as the row operator run over the flattened input — across worker
// counts, so morsel scheduling can never change results.

type propRig struct {
	r    *rand.Rand
	env  *Env // vectorized side; Workers swept per run
	ref  *Env // reference side, pinned to the row path
	pool []rdf.TermID
}

func newPropRig(seed int64) *propRig {
	s := store.New()
	env := NewEnv(s)
	ref := NewEnv(s)
	ref.NoVectorize = true
	rig := &propRig{r: rand.New(rand.NewSource(seed)), env: env, ref: ref}
	d := s.Dict()
	for i := 0; i < 8; i++ {
		rig.pool = append(rig.pool, d.Intern(rdf.NewIRI(fmt.Sprintf("http://example.org/e%d", i))))
	}
	for _, lex := range []string{"alpha", "beta", "code", "e1", "zero"} {
		rig.pool = append(rig.pool, d.Intern(rdf.NewLiteral(lex)))
	}
	for i := 0; i < 6; i++ {
		rig.pool = append(rig.pool, d.Intern(rdf.NewTypedLiteral(strconv.Itoa(i), rdf.XSDInteger)))
	}
	return rig
}

// randBatch builds a batch over vars with n in [lo, hi] physical rows,
// random NoTerm holes, and a random selection-vector shape.
func (p *propRig) randBatch(vars []string, lo, hi int) *Batch {
	n := lo + p.r.Intn(hi-lo+1)
	b := getBatch(vars, false)
	for c := range b.cols {
		col := b.cols[c]
		for i := 0; i < n; i++ {
			if p.r.Intn(5) == 0 {
				col = append(col, rdf.NoTerm)
			} else {
				col = append(col, p.pool[p.r.Intn(len(p.pool))])
			}
		}
		b.cols[c] = col
	}
	b.n = n
	switch p.r.Intn(6) {
	case 0: // nil: all rows live
	case 1: // ordered sparse subset
		sel := b.selSlab()
		for i := 0; i < n; i++ {
			if p.r.Intn(3) > 0 {
				sel = append(sel, int32(i))
			}
		}
		b.sel = sel
	case 2: // out-of-order permutation of a subset
		perm := p.r.Perm(n)
		k := p.r.Intn(n + 1)
		b.sel = append(b.selSlab(), int32sOf(perm[:k])...)
	case 3: // fully reversed order
		sel := b.selSlab()
		for i := n - 1; i >= 0; i-- {
			sel = append(sel, int32(i))
		}
		b.sel = sel
	case 4: // empty selection
		b.sel = b.selSlab()
	default: // single row
		if n > 0 {
			b.sel = append(b.selSlab(), int32(p.r.Intn(n)))
		}
	}
	return b
}

func int32sOf(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}

// cloneBatch deep-copies a batch so one copy can be consumed by an operator
// while the original is flattened for the reference side.
func cloneBatch(b *Batch) *Batch {
	nb := getBatch(b.vars, false)
	for c := range b.cols {
		nb.cols[c] = append(nb.cols[c], b.cols[c]...)
	}
	nb.n = b.n
	if b.sel != nil {
		nb.sel = append(nb.selSlab(), b.sel...)
	}
	return nb
}

func streamOf(batches []*Batch) BatchStream {
	out := make(chan *Batch, len(batches)+1)
	for _, b := range batches {
		out <- cloneBatch(b)
	}
	close(out)
	return out
}

// flatten decodes the batches into the reference side's input rows.
func (p *propRig) flatten(batches []*Batch) []rdf.Binding {
	var rows []rdf.Binding
	for b := range batchesToRows(context.Background(), p.env, streamOf(batches)) {
		rows = append(rows, b)
	}
	return rows
}

// canon renders a solution multiset canonically over a fixed variable list.
func canon(vars []string, rows []rdf.Binding) []string {
	out := make([]string, 0, len(rows))
	for _, b := range rows {
		parts := make([]string, 0, len(vars))
		for _, v := range vars {
			if t, ok := b[v]; ok {
				parts = append(parts, "?"+v+"="+t.String())
			} else {
				parts = append(parts, "?"+v+"=UNDEF")
			}
		}
		out = append(out, strings.Join(parts, " "))
	}
	sort.Strings(out)
	return out
}

func collect(in Stream) []rdf.Binding {
	var rows []rdf.Binding
	for b := range in {
		rows = append(rows, b)
	}
	return rows
}

// checkOp runs the vectorized operator (given a fresh input stream factory)
// across worker counts and requires each run to equal the reference
// multiset.
func checkOp(t *testing.T, rig *propRig, workers []int, name string, allVars []string, want []string,
	vectorized func() BatchStream) {
	t.Helper()
	for _, w := range workers {
		rig.env.Workers = w
		got := canon(allVars, collect(batchesToRows(context.Background(), rig.env, vectorized())))
		if len(got) != len(want) {
			t.Fatalf("%s workers=%d: %d solutions, reference %d\ngot:  %v\nwant: %v",
				name, w, len(got), len(want), sample(got), sample(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s workers=%d: solution %d differs\ngot:  %s\nwant: %s", name, w, i, got[i], want[i])
			}
		}
	}
}

func sample(rows []string) []string {
	if len(rows) > 6 {
		return rows[:6]
	}
	return rows
}

// randExprOver builds a random FILTER/BIND expression over the schema.
func (p *propRig) randExprOver(vars []string) sparql.Expression {
	v := func() sparql.Expression { return sparql.ExprVar{Name: vars[p.r.Intn(len(vars))]} }
	switch p.r.Intn(6) {
	case 0:
		return sparql.ExprCall{Func: "CONTAINS", Args: []sparql.Expression{
			sparql.ExprCall{Func: "STR", Args: []sparql.Expression{v()}},
			sparql.ExprTerm{Term: rdf.NewLiteral([]string{"a", "e", "1", "co"}[p.r.Intn(4)])},
		}}
	case 1:
		return sparql.ExprBinary{Op: "=", L: v(), R: v()}
	case 2:
		return sparql.ExprCall{Func: "BOUND", Args: []sparql.Expression{v()}}
	case 3:
		return sparql.ExprBinary{Op: ">", L: v(),
			R: sparql.ExprTerm{Term: rdf.NewTypedLiteral(strconv.Itoa(p.r.Intn(5)), rdf.XSDInteger)}}
	case 4:
		return sparql.ExprUnary{Op: "!", X: sparql.ExprCall{Func: "BOUND", Args: []sparql.Expression{v()}}}
	default:
		return sparql.ExprCall{Func: "STRLEN", Args: []sparql.Expression{
			sparql.ExprCall{Func: "STR", Args: []sparql.Expression{v()}}}}
	}
}

// testBatchOpsOnce drives one random instance of every vectorized operator
// against the reference semantics, with batch sizes in [lo, hi].
func testBatchOpsOnce(t *testing.T, seed int64, lo, hi, maxBatches int, workers []int) {
	rig := newPropRig(seed)
	ctx := context.Background()

	schemaL := []string{"a", "b", "c"}
	schemaR := []string{"b", "c", "d"}
	mkBatches := func(vars []string) []*Batch {
		bs := make([]*Batch, 1+rig.r.Intn(maxBatches))
		for i := range bs {
			bs[i] = rig.randBatch(vars, lo, hi)
		}
		return bs
	}
	left := mkBatches(schemaL)
	right := mkBatches(schemaR)
	leftRows := rig.flatten(left)
	rightRows := rig.flatten(right)
	valuesL := algebra.Values{Variables: schemaL, Rows: leftRows}
	valuesR := algebra.Values{Variables: schemaR, Rows: rightRows}

	// FILTER.
	fexpr := rig.randExprOver(schemaL)
	want := canon(schemaL, collect(Eval(ctx, algebra.Filter{Input: valuesL, Expr: fexpr}, rig.ref)))
	checkOp(t, rig, workers, "filter", schemaL, want, func() BatchStream {
		return batchFilter(ctx, rig.env, fexpr, streamOf(left))
	})

	// BIND onto a fresh variable and onto an existing one.
	bexpr := rig.randExprOver(schemaL)
	extVars := append(append([]string{}, schemaL...), "z")
	want = canon(extVars, collect(Eval(ctx, algebra.Extend{Input: valuesL, Var: "z", Expr: bexpr}, rig.ref)))
	checkOp(t, rig, workers, "bind-fresh", extVars, want, func() BatchStream {
		return batchExtend(ctx, rig.env, "z", bexpr, streamOf(left))
	})
	want = canon(schemaL, collect(Eval(ctx, algebra.Extend{Input: valuesL, Var: "c", Expr: bexpr}, rig.ref)))
	checkOp(t, rig, workers, "bind-existing", schemaL, want, func() BatchStream {
		return batchExtend(ctx, rig.env, "c", bexpr, streamOf(left))
	})

	// DISTINCT.
	want = canon(schemaL, collect(Eval(ctx, algebra.Distinct{Input: valuesL}, rig.ref)))
	checkOp(t, rig, workers, "distinct", schemaL, want, func() BatchStream {
		return batchDedup(ctx, rig.env, schemaL, true, streamOf(left))
	})

	// UNION of the two schemas.
	unionVars := algebra.Union{Left: valuesL, Right: valuesR}.Vars()
	want = canon(unionVars, collect(Eval(ctx, algebra.Union{Left: valuesL, Right: valuesR}, rig.ref)))
	checkOp(t, rig, workers, "union", unionVars, want, func() BatchStream {
		return batchUnion(ctx, streamOf(left), streamOf(right))
	})

	// JOIN on the shared variables (NoTerm holes exercise the partial-row
	// linear-probe path on both sides).
	join := algebra.Join{Left: valuesL, Right: valuesR}
	outVars := join.Vars()
	shared := algebra.SharedVars(valuesL, valuesR)
	want = canon(outVars, collect(Eval(ctx, join, rig.ref)))
	checkOp(t, rig, workers, "join", outVars, want, func() BatchStream {
		return batchJoin(ctx, rig.env, outVars, shared, streamOf(left), streamOf(right))
	})

	for _, b := range append(left, right...) {
		putBatch(b)
	}
}

// TestBatchOpsMatchRowSemantics sweeps small random batches (where
// selection-vector shapes dominate) over many seeds.
func TestBatchOpsMatchRowSemantics(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			testBatchOpsOnce(t, seed, 0, 40, 3, []int{1, 2, 3, 8})
		})
	}
}

// TestBatchOpsMatchRowSemanticsLargeBatches uses batches above
// morselMinRows so join probes actually run morsel-parallel — worker
// scheduling must still never change the multiset.
func TestBatchOpsMatchRowSemanticsLargeBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("large-batch property sweep")
	}
	for seed := int64(100); seed < 102; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			testBatchOpsOnce(t, seed, morselMinRows, morselMinRows+128, 1, []int{1, 8})
		})
	}
}

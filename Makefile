GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

# Tier-1: the gate every change must keep green.
test: build
	$(GO) test ./...

# Pre-merge verification: vet plus the full suite (including the chaos
# integration tests) under the race detector — the engine is heavily
# concurrent and must stay race-clean.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# Performance trajectory: run the micro-benchmarks and archive them as a
# dated JSON report (see cmd/benchreport --parse-bench). Compare two
# reports to catch regressions, e.g. the <5% tracing-overhead budget.
BENCH_PKGS ?= ./internal/store ./internal/turtle ./internal/sparql ./internal/obs ./internal/exec
BENCH_OUT  ?= BENCH_$(shell date +%Y-%m-%d).json

bench: build
	$(GO) test -bench . -benchmem -run '^$$' $(BENCH_PKGS) \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchreport --parse-bench > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

package baseline

import (
	"context"
	"testing"
	"time"

	"ltqp/internal/solidbench"
)

func TestCentralizedStoreAnswersDiscover(t *testing.T) {
	ds := solidbench.Generate(solidbench.SmallConfig())
	pods := ds.BuildPods()
	st := CentralizedStore(pods)
	if st.Len() == 0 {
		t.Fatal("empty centralized store")
	}
	if !st.Closed() {
		t.Fatal("store must be closed")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	q := ds.Discover(1, 1)
	results, err := RunQuery(ctx, st, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle sees everything: exactly the person's non-image posts.
	want := 0
	for _, p := range ds.Posts {
		if p.Creator == q.Person && p.Image == "" {
			want++
		}
	}
	if len(results) != want {
		t.Errorf("oracle results = %d, want %d", len(results), want)
	}
}

func TestOracleIsCompleteSupersetOfTraversal(t *testing.T) {
	// Discover 6 over the oracle must return at least as many distinct
	// forums as any traversal can find (traversal sees a reachable
	// subweb).
	ds := solidbench.Generate(solidbench.SmallConfig())
	st := CentralizedStore(ds.BuildPods())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	q := ds.Discover(6, 1)
	results, err := RunQuery(ctx, st, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: all forums containing a message by the person.
	want := map[int64]bool{}
	for fi, f := range ds.Forums {
		for _, pi := range f.Posts {
			if ds.Posts[pi].Creator == q.Person {
				want[ds.Forums[fi].ID] = true
				break
			}
		}
	}
	got := map[string]bool{}
	for _, b := range results {
		got[b["forumId"].Value] = true
	}
	if len(got) != len(want) {
		t.Errorf("oracle forums = %d, want %d", len(got), len(want))
	}
}

func TestRunQueryParseError(t *testing.T) {
	ds := solidbench.Generate(solidbench.SmallConfig())
	st := CentralizedStore(ds.BuildPods())
	if _, err := RunQuery(context.Background(), st, "NOT SPARQL"); err == nil {
		t.Error("parse error expected")
	}
}

// Package resource implements the per-query resource ledger: an
// atomically-updated accountant that every allocation-heavy layer of the
// engine charges as it retains memory on behalf of one query — dereference
// (bytes fetched and parsed-document bytes retained), store (ID-triples and
// index postings added by this query's traversal), exec (live batch slabs,
// join/group arena bytes, buffered result rows) and serve (shared-cache
// bytes pinned by this query).
//
// The ledger follows the nil-receiver discipline of internal/obs: a nil
// *Ledger is a valid no-op accountant, so the hot path costs nothing when
// no ledger is attached (BenchmarkLedgerOff: 0 allocs/op, a few ns). When a
// budget is set, the first charge that pushes the total over it latches the
// exceeded state exactly once and invokes the OnExceeded callback with a
// typed *BudgetExceededError carrying the full per-layer breakdown — the
// engine uses that to cancel the one offending query gracefully instead of
// letting the process OOM.
//
// The package deliberately depends only on the standard library so that
// internal/obs, internal/deref, internal/store, internal/exec and
// internal/serve can all import it without cycles.
package resource

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Category identifies which engine layer a charge is attributed to.
type Category uint8

const (
	// Deref: network bytes fetched and parsed-document bytes retained by
	// this query's traversal.
	Deref Category = iota
	// Store: ID-triples and index postings the traversal added to the
	// query-local store.
	Store
	// Exec: live batch slabs checked out of the pool, join/group arena
	// bytes, and buffered result rows.
	Exec
	// Serve: shared-cache bytes pinned on behalf of this query (documents
	// served from the process-wide cache rather than fetched).
	Serve
	// NumCategories bounds the per-category arrays.
	NumCategories
)

// categoryNames indexes Category → stable wire name (used in snapshots,
// metrics and the /debug/resources ranking).
var categoryNames = [NumCategories]string{"deref", "store", "exec", "serve"}

// String returns the stable lowercase layer name.
func (c Category) String() string {
	if c < NumCategories {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// Ledger tracks one query's memory spend: current (live) bytes, high-water
// peaks, and cumulative charged bytes, per category and in total. All
// methods are safe for concurrent use and safe on a nil receiver (no-ops).
type Ledger struct {
	queryID int64
	tenant  string
	budget  int64 // bytes; 0 = unlimited

	// onExceed fires exactly once, from whichever goroutine's Charge first
	// crosses the budget. Set before the ledger is shared.
	onExceed func(*BudgetExceededError)

	cur     [NumCategories]atomic.Int64
	peak    [NumCategories]atomic.Int64
	charged [NumCategories]atomic.Int64

	total     atomic.Int64
	peakTotal atomic.Int64
	exceeded  atomic.Bool
}

// New builds a ledger for one query. budget is in bytes; 0 disables
// enforcement (the ledger still accounts).
func New(queryID int64, tenant string, budget int64) *Ledger {
	return &Ledger{queryID: queryID, tenant: tenant, budget: budget}
}

// OnExceeded installs the budget-crossing callback. It must be set before
// the ledger is handed to concurrent chargers; the callback runs on the
// charging goroutine, exactly once per ledger.
func (l *Ledger) OnExceeded(fn func(*BudgetExceededError)) {
	if l != nil {
		l.onExceed = fn
	}
}

// raise CAS-lifts *p to at least v (the lock-free high-water update).
func raise(p *atomic.Int64, v int64) {
	for {
		old := p.Load()
		if v <= old || p.CompareAndSwap(old, v) {
			return
		}
	}
}

// Charge records n bytes newly retained by cat. Crossing a configured
// budget latches the exceeded state and fires OnExceeded with the full
// breakdown; accounting continues afterwards so the final snapshot reflects
// everything the query touched before cancellation took effect.
func (l *Ledger) Charge(cat Category, n int64) {
	if l == nil || n <= 0 {
		return
	}
	l.charged[cat].Add(n)
	c := l.cur[cat].Add(n)
	raise(&l.peak[cat], c)
	t := l.total.Add(n)
	raise(&l.peakTotal, t)
	if l.budget > 0 && t > l.budget && l.exceeded.CompareAndSwap(false, true) {
		if fn := l.onExceed; fn != nil {
			fn(&BudgetExceededError{Budget: l.budget, Attempted: t, Breakdown: l.Snapshot()})
		}
	}
}

// Release returns n bytes previously charged to cat (the memory is no
// longer live for this query). Peaks and cumulative charges are unaffected.
func (l *Ledger) Release(cat Category, n int64) {
	if l == nil || n <= 0 {
		return
	}
	l.cur[cat].Add(-n)
	l.total.Add(-n)
}

// QueryID returns the owning query's id (0 on nil).
func (l *Ledger) QueryID() int64 {
	if l == nil {
		return 0
	}
	return l.queryID
}

// Tenant returns the owning tenant ("" on nil).
func (l *Ledger) Tenant() string {
	if l == nil {
		return ""
	}
	return l.tenant
}

// Budget returns the byte budget (0 = unlimited, or nil).
func (l *Ledger) Budget() int64 {
	if l == nil {
		return 0
	}
	return l.budget
}

// Current returns the live bytes across all categories.
func (l *Ledger) Current() int64 {
	if l == nil {
		return 0
	}
	return l.total.Load()
}

// Peak returns the total high-water mark.
func (l *Ledger) Peak() int64 {
	if l == nil {
		return 0
	}
	return l.peakTotal.Load()
}

// Charged returns the cumulative bytes ever charged (never decremented).
func (l *Ledger) Charged() int64 {
	if l == nil {
		return 0
	}
	var sum int64
	for i := range l.charged {
		sum += l.charged[i].Load()
	}
	return sum
}

// CurrentBy returns the live bytes charged to one category.
func (l *Ledger) CurrentBy(cat Category) int64 {
	if l == nil || cat >= NumCategories {
		return 0
	}
	return l.cur[cat].Load()
}

// PeakBy returns one category's high-water mark.
func (l *Ledger) PeakBy(cat Category) int64 {
	if l == nil || cat >= NumCategories {
		return 0
	}
	return l.peak[cat].Load()
}

// ChargedBy returns one category's cumulative charged bytes.
func (l *Ledger) ChargedBy(cat Category) int64 {
	if l == nil || cat >= NumCategories {
		return 0
	}
	return l.charged[cat].Load()
}

// Exceeded reports whether the budget has been crossed.
func (l *Ledger) Exceeded() bool {
	return l != nil && l.exceeded.Load()
}

// LayerUsage is one category's slice of a Snapshot.
type LayerUsage struct {
	Layer   string `json:"layer"`
	Current int64  `json:"current_bytes"`
	Peak    int64  `json:"peak_bytes"`
	Charged int64  `json:"charged_bytes"`
}

// Snapshot is a point-in-time copy of a ledger, JSON-ready for the
// resource_snapshot event, /debug/resources, and Explain().
type Snapshot struct {
	QueryID  int64  `json:"query_id"`
	Tenant   string `json:"tenant,omitempty"`
	Budget   int64  `json:"budget_bytes,omitempty"`
	Current  int64  `json:"current_bytes"`
	Peak     int64  `json:"peak_bytes"`
	Charged  int64  `json:"charged_bytes"`
	Exceeded bool   `json:"exceeded,omitempty"`
	// TopLayer is the category with the largest peak — the query's
	// dominant cost driver.
	TopLayer string       `json:"top_layer,omitempty"`
	Layers   []LayerUsage `json:"layers,omitempty"`
}

// Snapshot copies the ledger's counters. Individual category loads are
// atomic; the snapshot as a whole is a consistent-enough view for
// observability (charges may land between loads). Returns nil on nil.
func (l *Ledger) Snapshot() *Snapshot {
	if l == nil {
		return nil
	}
	s := &Snapshot{
		QueryID:  l.queryID,
		Tenant:   l.tenant,
		Budget:   l.budget,
		Current:  l.total.Load(),
		Peak:     l.peakTotal.Load(),
		Exceeded: l.exceeded.Load(),
	}
	var topPeak int64
	for c := Category(0); c < NumCategories; c++ {
		u := LayerUsage{
			Layer:   c.String(),
			Current: l.cur[c].Load(),
			Peak:    l.peak[c].Load(),
			Charged: l.charged[c].Load(),
		}
		s.Charged += u.Charged
		if u.Charged == 0 && u.Peak == 0 {
			continue
		}
		s.Layers = append(s.Layers, u)
		if u.Peak > topPeak {
			topPeak = u.Peak
			s.TopLayer = u.Layer
		}
	}
	return s
}

// BreakdownString renders the per-layer peaks compactly, e.g.
// "store 1.5MiB, deref 640.0KiB, exec 128.0KiB" (largest first).
func (s *Snapshot) BreakdownString() string {
	if s == nil || len(s.Layers) == 0 {
		return ""
	}
	layers := make([]LayerUsage, len(s.Layers))
	copy(layers, s.Layers)
	sort.SliceStable(layers, func(i, j int) bool { return layers[i].Peak > layers[j].Peak })
	var b strings.Builder
	for i, u := range layers {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", u.Layer, FormatBytes(u.Peak))
	}
	return b.String()
}

// BudgetExceededError reports a query cancelled for crossing its memory
// budget. Breakdown carries the ledger state at the moment of crossing —
// the degradation report explaining where the memory went.
type BudgetExceededError struct {
	// Budget is the configured per-query limit in bytes.
	Budget int64
	// Attempted is the total that crossed the limit.
	Attempted int64
	// Breakdown is the full ledger snapshot at the crossing point.
	Breakdown *Snapshot
}

// Error renders the budget, the attempted total, and the per-layer
// breakdown so a failed query's error message alone explains the spend.
func (e *BudgetExceededError) Error() string {
	msg := fmt.Sprintf("query memory budget exceeded: %s needed, budget %s",
		FormatBytes(e.Attempted), FormatBytes(e.Budget))
	if bd := e.Breakdown.BreakdownString(); bd != "" {
		msg += " (" + bd + ")"
	}
	return msg
}

// FormatBytes renders a byte count in binary units ("1.5MiB").
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// ---------------------------------------------------------------------------
// Per-tenant rollups

// TenantUsage is one tenant's accumulated spend across finished queries.
type TenantUsage struct {
	Tenant string `json:"tenant"`
	// Queries is how many ledgers were rolled up for this tenant.
	Queries int64 `json:"queries"`
	// Charged is the cumulative bytes charged across those queries.
	Charged int64 `json:"charged_bytes"`
	// MaxPeak is the largest single-query high-water mark seen.
	MaxPeak int64 `json:"max_peak_bytes"`
	// Exceeded counts queries cancelled for crossing their budget.
	Exceeded int64 `json:"budget_exceeded"`
}

// TenantLedger aggregates finished queries' ledgers per tenant — the
// process-lifetime rollup behind ltqp_tenant_mem_charged_bytes_total and
// the tenants section of /debug/resources. Nil-safe like Ledger.
type TenantLedger struct {
	mu      sync.Mutex
	tenants map[string]*TenantUsage
}

// NewTenantLedger builds an empty rollup.
func NewTenantLedger() *TenantLedger {
	return &TenantLedger{tenants: map[string]*TenantUsage{}}
}

// Record folds one finished query's ledger into its tenant's totals.
// An empty tenant rolls up under "default".
func (t *TenantLedger) Record(l *Ledger) {
	if t == nil || l == nil {
		return
	}
	tenant := l.Tenant()
	if tenant == "" {
		tenant = "default"
	}
	charged, peak := l.Charged(), l.Peak()
	t.mu.Lock()
	defer t.mu.Unlock()
	u := t.tenants[tenant]
	if u == nil {
		u = &TenantUsage{Tenant: tenant}
		t.tenants[tenant] = u
	}
	u.Queries++
	u.Charged += charged
	if peak > u.MaxPeak {
		u.MaxPeak = peak
	}
	if l.Exceeded() {
		u.Exceeded++
	}
}

// Snapshot returns every tenant's usage, largest cumulative spend first.
func (t *TenantLedger) Snapshot() []TenantUsage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TenantUsage, 0, len(t.tenants))
	for _, u := range t.tenants {
		out = append(out, *u)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Charged != out[j].Charged {
			return out[i].Charged > out[j].Charged
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// MaxPeak returns the largest single-query high-water mark across all
// tenants (loadgen's peak_mem column).
func (t *TenantLedger) MaxPeak() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var max int64
	for _, u := range t.tenants {
		if u.MaxPeak > max {
			max = u.MaxPeak
		}
	}
	return max
}

// ---------------------------------------------------------------------------
// Context plumbing

type ctxKey struct{}

// ContextWith attaches a ledger to a context, so layers reached only
// through ctx (rather than explicit wiring) can still charge.
func ContextWith(ctx context.Context, l *Ledger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, l)
}

// FromContext returns the ledger attached to ctx, or nil (a valid no-op
// ledger) when none is.
func FromContext(ctx context.Context) *Ledger {
	l, _ := ctx.Value(ctxKey{}).(*Ledger)
	return l
}

package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// EventSchemaVersion identifies the engine event wire layout (the JSON shape
// of Event, the event-kind vocabulary, and the journal envelope records).
// Bump it when any of those change incompatibly, so journal readers and SSE
// consumers can reject streams they do not understand. The vocabulary is
// pinned by a golden-file test (testdata/event_vocab.golden): renaming an
// event kind or a field is a deliberate, reviewed act.
const EventSchemaVersion = 1

// EventKind names one kind of engine occurrence.
type EventKind string

// The event vocabulary, in the rough order a query produces them. One query
// emits exactly one query_started and one query_finished; everything between
// carries the same Query correlation id.
const (
	// EventQueryStarted opens a query: Detail is the compacted query text,
	// Seeds the traversal seed URLs.
	EventQueryStarted EventKind = "query_started"
	// EventStageStarted marks a pipeline stage beginning: the core phases
	// (parse, plan, traverse, exec) and, while a subscriber is attached,
	// the per-operator iterator stages (scan, join, ...) with Detail
	// describing the operator.
	EventStageStarted EventKind = "stage_started"
	// EventStageFinished closes a stage with its wall time; iterator
	// stages also carry the number of rows they produced.
	EventStageFinished EventKind = "stage_finished"
	// EventMorselProcessed records one batch forwarded by a vectorized
	// operator stage: Stage names the operator, Rows the batch's live row
	// count, Row the batch ordinal within the stage. Only emitted while a
	// subscriber is attached. (Additive to schema 1.)
	EventMorselProcessed EventKind = "morsel_processed"
	// EventDocumentDereferenced records one completed dereference — URL,
	// status, triple/byte counts and wall time on success, Err on failure.
	EventDocumentDereferenced EventKind = "document_dereferenced"
	// EventLinkDiscovered records a link an extractor found in a document
	// (URL discovered in Via by Extractor).
	EventLinkDiscovered EventKind = "link_discovered"
	// EventLinkQueued records a discovered link accepted by the link queue.
	EventLinkQueued EventKind = "link_queued"
	// EventLinkPruned records a discovered link not followed; Detail names
	// why (duplicate, depth-pruned, self).
	EventLinkPruned EventKind = "link_pruned"
	// EventRetryScheduled records a transient dereference failure about to
	// be retried after DelayUS.
	EventRetryScheduled EventKind = "retry_scheduled"
	// EventResultEmitted records one solution delivered to the client; Row
	// is the 1-based result number.
	EventResultEmitted EventKind = "result_emitted"
	// EventQueryFinished closes a query with its total result count, wall
	// time, and error if any.
	EventQueryFinished EventKind = "query_finished"
	// EventCacheHit records a dereference served fresh from the shared
	// document cache without a network request. (Additive to schema 1.)
	EventCacheHit EventKind = "cache_hit"
	// EventCacheRevalidated records a stale shared-cache entry refreshed by
	// a conditional request; Status 304 means the cached parse was kept,
	// 200 that the document changed and was re-parsed. (Additive.)
	EventCacheRevalidated EventKind = "cache_revalidated"
	// EventCacheEvicted records a document evicted from the shared cache
	// under its byte budget. (Additive.)
	EventCacheEvicted EventKind = "cache_evicted"
	// EventQueryAdmitted records a query passing admission control; Tenant
	// names the quota bucket it was charged to. (Additive.)
	EventQueryAdmitted EventKind = "query_admitted"
	// EventQueryRejected records a query turned away by admission control
	// (429 + Retry-After); Detail names why — queue full, tenant quota,
	// draining. (Additive.)
	EventQueryRejected EventKind = "query_rejected"
	// EventLimitTripped records a traversal defense firing: a per-origin
	// document/byte budget, the traversal scope allowlist, a per-document
	// fanout cap, or the total queued-links cap. URL names the link (or
	// origin) that tripped it, Reason the limit kind, and Detail the
	// limit-vs-observed accounting.
	EventLimitTripped EventKind = "limit_tripped"
	// EventResourceSnapshot records a query's resource-ledger state:
	// MemBytes the live bytes at snapshot time, MemPeak the high-water
	// mark, Detail the per-layer breakdown (largest spender first). Emitted
	// at query finish and when a memory budget is crossed; Err carries the
	// budget-exceeded message in the latter case. (Additive to schema 1.)
	EventResourceSnapshot EventKind = "resource_snapshot"
)

// EventKinds lists the full vocabulary in emission order.
var EventKinds = []EventKind{
	EventQueryStarted, EventStageStarted, EventStageFinished,
	EventMorselProcessed,
	EventDocumentDereferenced, EventLinkDiscovered, EventLinkQueued,
	EventLinkPruned, EventRetryScheduled, EventResultEmitted,
	EventQueryFinished,
	EventCacheHit, EventCacheRevalidated, EventCacheEvicted,
	EventQueryAdmitted, EventQueryRejected,
	EventLimitTripped,
	EventResourceSnapshot,
}

// Event is one engine occurrence. Seq is a process-wide total order (replay
// tooling sorts on it); Query correlates every event of one execution.
// Unused fields are zero and omitted from JSON.
type Event struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Kind  EventKind `json:"kind"`
	Query int64     `json:"query,omitempty"`

	Stage      string   `json:"stage,omitempty"`
	URL        string   `json:"url,omitempty"`
	Via        string   `json:"via,omitempty"`
	Extractor  string   `json:"extractor,omitempty"`
	Reason     string   `json:"reason,omitempty"`
	Seeds      []string `json:"seeds,omitempty"`
	Status     int      `json:"status,omitempty"`
	Depth      int      `json:"depth,omitempty"`
	Attempt    int      `json:"attempt,omitempty"`
	Triples    int      `json:"triples,omitempty"`
	Bytes      int64    `json:"bytes,omitempty"`
	Row        int      `json:"row,omitempty"`
	Rows       int      `json:"rows,omitempty"`
	DurationUS int64    `json:"duration_us,omitempty"`
	DelayUS    int64    `json:"delay_us,omitempty"`
	Detail     string   `json:"detail,omitempty"`
	Tenant     string   `json:"tenant,omitempty"`
	Err        string   `json:"error,omitempty"`
	// MemBytes / MemPeak carry a resource_snapshot's live and high-water
	// byte counts. (Additive to schema 1.)
	MemBytes int64 `json:"mem_bytes,omitempty"`
	MemPeak  int64 `json:"mem_peak,omitempty"`
	// Score carries a link_queued link's queue-policy score when the
	// traversal runs a ranking discipline. (Additive to schema 1.)
	Score float64 `json:"score,omitempty"`
}

// Bus fans engine events out to subscribers. Publishing is bounded and
// non-blocking: each subscriber owns a buffered channel, and an event that
// does not fit is dropped for that subscriber (counted, never stalls the
// engine). With no subscriber attached, Publish is a nil check plus one
// atomic load and performs zero allocations — the query hot path pays
// nothing for carrying a bus (benchmarked in bench_test.go).
//
// All methods are safe on a nil *Bus, which is how engines built without
// Config.Events skip event construction entirely.
type Bus struct {
	seq   atomic.Uint64
	nsubs atomic.Int32

	mu   sync.Mutex // guards subs, drops and orders delivery
	subs []*Subscription
	// drops, when set via CountDrops, mirrors every named subscriber's
	// drop count into ltqp_events_dropped_total{subscriber=...} so journal
	// and SSE lossiness is visible on /metrics instead of silent.
	drops *CounterVec
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Active reports whether at least one subscriber is attached. Instrumented
// code uses it to skip building expensive event payloads.
func (b *Bus) Active() bool { return b != nil && b.nsubs.Load() > 0 }

// Publish stamps the event with a sequence number and time and delivers it
// to every matching subscriber without blocking. No-op without subscribers.
func (b *Bus) Publish(ev Event) {
	if !b.Active() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) == 0 {
		return
	}
	ev.Seq = b.seq.Add(1)
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	for _, s := range b.subs {
		if s.query != 0 && s.query != ev.Query {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			s.dropCtr.Inc() // nil-safe; set for named subscribers
		}
	}
}

// CountDrops mirrors per-subscriber drop counts into vec (one child per
// subscriber name). Already-attached named subscribers are wired
// retroactively; anonymous subscriptions are not counted.
func (b *Bus) CountDrops(vec *CounterVec) {
	if b == nil || vec == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drops = vec
	for _, s := range b.subs {
		if s.name != "" && s.dropCtr == nil {
			s.dropCtr = vec.With(s.name)
		}
	}
}

// DropCount sums the events dropped so far across the currently-attached
// subscribers with the given name.
func (b *Bus) DropCount(name string) uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var n uint64
	for _, s := range b.subs {
		if s.name == name {
			n += s.dropped.Load()
		}
	}
	return n
}

// Subscribe attaches a subscriber receiving every event, with the given
// channel buffer (minimum 1; 0 selects a 256-event default). Close the
// subscription when done.
func (b *Bus) Subscribe(buffer int) *Subscription {
	return b.subscribe("", 0, buffer)
}

// SubscribeQuery attaches a subscriber receiving only events of the given
// query correlation id (0 subscribes to all queries).
func (b *Bus) SubscribeQuery(queryID int64, buffer int) *Subscription {
	return b.subscribe("", queryID, buffer)
}

// SubscribeNamed attaches a named subscriber ("journal", "sse", "slog",
// ...). Drops for named subscribers roll up per name into the counter vec
// installed by CountDrops, in addition to the per-subscription tally.
func (b *Bus) SubscribeNamed(name string, queryID int64, buffer int) *Subscription {
	return b.subscribe(name, queryID, buffer)
}

func (b *Bus) subscribe(name string, queryID int64, buffer int) *Subscription {
	if b == nil {
		return nil
	}
	if buffer <= 0 {
		buffer = 256
	}
	s := &Subscription{bus: b, name: name, query: queryID, ch: make(chan Event, buffer)}
	s.C = s.ch
	b.mu.Lock()
	if name != "" && b.drops != nil {
		s.dropCtr = b.drops.With(name)
	}
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	b.nsubs.Add(1)
	return s
}

// Subscription is one attached event consumer. Read events from C; the
// channel is never closed by the bus — consumers select on C alongside
// their own cancellation signal, and call Close to detach.
type Subscription struct {
	// C delivers this subscriber's events in publish order.
	C <-chan Event

	bus     *Bus
	name    string
	query   int64
	ch      chan Event
	dropped atomic.Uint64
	dropCtr *Counter // named-subscriber rollup child, nil when uncounted
	closed  atomic.Bool
}

// Name returns the subscriber name given at SubscribeNamed ("" otherwise).
func (s *Subscription) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Dropped reports how many events were discarded because this subscriber's
// buffer was full.
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close detaches the subscription from the bus. Events already buffered on
// C remain readable (use Drain to collect them); no further events arrive.
// Safe to call multiple times and on nil.
func (s *Subscription) Close() {
	if s == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	b := s.bus
	b.mu.Lock()
	for i, x := range b.subs {
		if x == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
	b.nsubs.Add(-1)
}

// Drain returns the events still buffered on the subscription without
// blocking. Call after Close to collect the tail.
func (s *Subscription) Drain() []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for {
		select {
		case ev := <-s.ch:
			out = append(out, ev)
		default:
			return out
		}
	}
}

// nextQueryID hands out process-wide query correlation ids.
var nextQueryID atomic.Int64

// NextQueryID returns a fresh query correlation id. The engine stamps one
// per execution; the query tracker, event stream, logs and journal all share
// it, so one query can be followed across every surface.
func NextQueryID() int64 { return nextQueryID.Add(1) }

// queryIDKey carries the current query id through a context.
type queryIDKeyType struct{}

var queryIDKey queryIDKeyType

// ContextWithQueryID returns a context carrying the query correlation id.
func ContextWithQueryID(ctx context.Context, id int64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, queryIDKey, id)
}

// QueryIDFromContext returns the context's query correlation id (0 when the
// context carries none).
func QueryIDFromContext(ctx context.Context) int64 {
	id, _ := ctx.Value(queryIDKey).(int64)
	return id
}

// tenantKey carries the requesting tenant through a context.
type tenantKeyType struct{}

var tenantKey tenantKeyType

// ContextWithTenant returns a context carrying the tenant identity a query
// is charged to (API key or client address); the query tracker stamps it on
// the execution's /debug/queries record.
func ContextWithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey, tenant)
}

// TenantFromContext returns the context's tenant identity ("" when none).
func TenantFromContext(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey).(string)
	return t
}

// Emitter binds a Bus to one query's correlation id, so instrumented code
// deep in the engine (dereferencer, link queue, iterator stages) publishes
// correlated events without threading the id itself. A nil *Emitter no-ops
// every method at zero cost, mirroring the nil-span and nil-metrics idiom.
type Emitter struct {
	bus   *Bus
	query int64
}

// ForQuery returns an emitter stamping events with the query id, or nil
// when the bus is nil (events disabled).
func (b *Bus) ForQuery(id int64) *Emitter {
	if b == nil {
		return nil
	}
	return &Emitter{bus: b, query: id}
}

// Active reports whether emitted events currently have an audience.
func (e *Emitter) Active() bool { return e != nil && e.bus.Active() }

// Emit stamps the event with the emitter's query id and publishes it.
func (e *Emitter) Emit(ev Event) {
	if e == nil {
		return
	}
	ev.Query = e.query
	e.bus.Publish(ev)
}

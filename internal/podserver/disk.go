package podserver

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ltqp/internal/solid"
)

// manifestEntry describes one stored document in the on-disk layout.
type manifestEntry struct {
	// URL is the absolute document URL.
	URL string `json:"url"`
	// File is the manifest-relative path of the Turtle file.
	File string `json:"file"`
	// Public marks world-readable documents.
	Public bool `json:"public"`
	// Agents lists WebIDs with read access when not public.
	Agents []string `json:"agents,omitempty"`
}

// manifest is the on-disk dataset descriptor written by SaveDir.
type manifest struct {
	// Host is the origin the documents were generated for; servers
	// rebase it to their own origin at load time.
	Host      string          `json:"host"`
	Documents []manifestEntry `json:"documents"`
}

// SaveDir writes all materialized pods as a directory of Turtle files plus
// a manifest.json, the storage format of cmd/solidbench-gen. host is the
// origin the pod URLs were minted under.
func SaveDir(dir, host string, pods []*solid.Pod) error {
	m := manifest{Host: host}
	for _, p := range pods {
		for path, d := range p.Materialize() {
			file := urlToFile(p.IRI(path), host)
			full := filepath.Join(dir, filepath.FromSlash(file))
			if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
				return fmt.Errorf("podserver: %w", err)
			}
			if err := os.WriteFile(full, []byte(p.Turtle(d)), 0o644); err != nil {
				return fmt.Errorf("podserver: %w", err)
			}
			m.Documents = append(m.Documents, manifestEntry{
				URL:    p.IRI(path),
				File:   file,
				Public: d.Access.Public,
				Agents: d.Access.Agents,
			})
		}
	}
	sort.Slice(m.Documents, func(i, j int) bool { return m.Documents[i].URL < m.Documents[j].URL })
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("podserver: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

// urlToFile maps a document URL to a file path under the dataset dir.
// Containers map to <dir>/.container.ttl, plain documents get a .ttl
// suffix.
func urlToFile(url, host string) string {
	rel := strings.TrimPrefix(url, strings.TrimSuffix(host, "/"))
	rel = strings.TrimPrefix(rel, "/")
	if rel == "" || strings.HasSuffix(rel, "/") {
		return rel + ".container.ttl"
	}
	return rel + ".ttl"
}

// LoadDir loads a dataset written by SaveDir into the server, rebasing all
// URLs (and document bodies) from the stored host to newHost. It returns
// the stored host for reference.
func (s *Server) LoadDir(dir, newHost string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return "", fmt.Errorf("podserver: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return "", fmt.Errorf("podserver: manifest: %w", err)
	}
	oldHost := strings.TrimSuffix(m.Host, "/")
	newHost = strings.TrimSuffix(newHost, "/")
	for _, e := range m.Documents {
		body, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(e.File)))
		if err != nil {
			return "", fmt.Errorf("podserver: %w", err)
		}
		url := e.URL
		text := string(body)
		if newHost != "" && newHost != oldHost {
			url = strings.Replace(url, oldHost, newHost, 1)
			text = strings.ReplaceAll(text, oldHost, newHost)
		}
		agents := e.Agents
		if newHost != "" && newHost != oldHost {
			for i, a := range agents {
				agents[i] = strings.Replace(a, oldHost, newHost, 1)
			}
		}
		s.AddDocument(url, text, solid.Access{Public: e.Public, Agents: agents})
	}
	return m.Host, nil
}

package baseline

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/rdf"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

// diffConfig is the environment the differential harness runs against:
// small enough that 50 traversal queries finish quickly, rich enough that
// every generated query shape has data to match.
func diffConfig() solidbench.Config {
	cfg := solidbench.SmallConfig()
	cfg.Persons = 4
	cfg.PostsPerPerson = 8
	cfg.PostDateBuckets = 4
	cfg.CommentsPerPerson = 6
	cfg.CommentDateBuckets = 3
	cfg.AlbumsPerPerson = 1
	cfg.LikesPerPerson = 4
	cfg.NoiseFilesPerPod = 1
	return cfg
}

// canonicalBindingRows renders a solution multiset canonically: one string
// per solution ("?v=<term>" pairs in projection order), the whole multiset
// sorted. Two engines agree iff the slices are equal.
func canonicalBindingRows(t *testing.T, vars []string, bindings []rdf.Binding) []string {
	t.Helper()
	rows := make([]string, 0, len(bindings))
	for _, b := range bindings {
		parts := make([]string, 0, len(vars))
		for _, v := range vars {
			term, ok := b[v]
			if !ok {
				parts = append(parts, "?"+v+"=UNDEF")
				continue
			}
			if term.Kind == rdf.TermBlank {
				// Blank labels are system-specific; a generated query that
				// binds one is a bug in the generator, not the engines.
				t.Fatalf("generated query bound blank node %s to ?%s", term, v)
			}
			parts = append(parts, "?"+v+"="+term.String())
		}
		rows = append(rows, strings.Join(parts, " "))
	}
	sort.Strings(rows)
	return rows
}

// TestDifferentialTraversalVsCentralized is the engine's differential test
// harness: ~50 deterministically generated SELECT queries (anchored star
// BGPs, OPTIONAL, FILTER, UNION, DISTINCT — the paper's demonstration query
// shapes) each run through BOTH
//
//   - the live traversal engine (public ltqp API) over an in-process Solid
//     environment, seeded with every document so traversal reaches the
//     whole dataset, and
//   - the centralized oracle: CentralizedStore + RunQuery over the same
//     pods,
//
// asserting the solution multisets are identical. This pins the traversal
// pipeline (dereference → parse → dictionary-interned store → symmetric
// hash joins) against the direct evaluation path end to end; any
// value-vs-identity bug, lost triple, or duplicated solution in either path
// shows up as a multiset diff.
func TestDifferentialTraversalVsCentralized(t *testing.T) {
	// The tier-1 run keeps a fast 50-query subset; `make differential`
	// sets LTQP_DIFF_QUERIES=150 for the full sweep over the widened
	// grammar (ORDER BY, GROUP BY/aggregates, MINUS, property paths).
	queries := 50
	if s := os.Getenv("LTQP_DIFF_QUERIES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("invalid LTQP_DIFF_QUERIES=%q", s)
		}
		queries = n
	}

	env := simenv.New(diffConfig())
	defer env.Close()

	// The oracle: everything accumulated up front.
	oracle := CentralizedStore(env.Pods)

	// Seeds: every document of every pod, so the traversal store converges
	// to exactly the oracle's triple set.
	var seeds []string
	for _, p := range env.Pods {
		for path := range p.Materialize() {
			seeds = append(seeds, p.IRI(path))
		}
	}
	sort.Strings(seeds)

	engine := ltqp.New(ltqp.Config{
		Client:         env.Client(),
		Lenient:        true, // vocabulary/tag IRIs in the environment 404
		CacheDocuments: len(seeds) + 16,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	gen := newDiffGen(1, env.Dataset)
	totalRows := 0
	for i := 0; i < queries; i++ {
		query := gen.Next()
		t.Run(fmt.Sprintf("q%02d", i), func(t *testing.T) {
			res, err := engine.QueryWithSeeds(ctx, query, seeds)
			if err != nil {
				t.Fatalf("traversal query failed: %v\nquery:\n%s", err, query)
			}
			var live []rdf.Binding
			for b := range res.Results {
				live = append(live, b)
			}
			if err := res.Err(); err != nil {
				t.Fatalf("traversal failed: %v\nquery:\n%s", err, query)
			}

			want, err := RunQuery(ctx, oracle, query)
			if err != nil {
				t.Fatalf("oracle query failed: %v\nquery:\n%s", err, query)
			}

			liveRows := canonicalBindingRows(t, res.Vars, live)
			wantRows := canonicalBindingRows(t, res.Vars, want)
			if len(liveRows) != len(wantRows) {
				t.Fatalf("traversal returned %d solutions, oracle %d\nquery:\n%s\ntraversal: %v\noracle: %v",
					len(liveRows), len(wantRows), query, sample(liveRows), sample(wantRows))
			}
			for j := range liveRows {
				if liveRows[j] != wantRows[j] {
					t.Fatalf("solution %d differs\nquery:\n%s\ntraversal: %s\noracle:    %s",
						j, query, liveRows[j], wantRows[j])
				}
			}
			totalRows += len(liveRows)
		})
	}
	if totalRows == 0 {
		t.Fatal("differential suite produced zero solutions overall; generator is vacuous")
	}
	t.Logf("differential harness: %d queries, %d total solutions compared", queries, totalRows)
}

// sample truncates a row list for error messages.
func sample(rows []string) []string {
	if len(rows) > 8 {
		return rows[:8]
	}
	return rows
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ltqp/internal/timeline"
)

// /debug/traces — the tail-sampled trace store's exposition endpoint.
//
//	GET /debug/traces              list kept traces (newest first)
//	GET /debug/traces/<trace-id>   one kept trace, full JSON
//	GET /debug/traces/<trace-id>?format=waterfall
//	                               ASCII waterfall with the critical path
//	                               highlighted, plus the gating chains
//
// The per-trace waterfall marks critical-path rows with '#' fill so the
// gating dereference chain stands out among concurrent fetches.

// traceSummaryJSON is the /debug/traces listing shape for one kept trace.
type traceSummaryJSON struct {
	TraceID        string    `json:"trace_id"`
	QueryID        int64     `json:"query_id"`
	Query          string    `json:"query,omitempty"`
	Tenant         string    `json:"tenant,omitempty"`
	Start          time.Time `json:"start"`
	DurationMS     float64   `json:"duration_ms"`
	TTFRMS         float64   `json:"ttfr_ms,omitempty"`
	Results        int       `json:"results"`
	Err            string    `json:"error,omitempty"`
	Degraded       bool      `json:"degraded,omitempty"`
	BudgetExceeded bool      `json:"budget_exceeded,omitempty"`
	KeepReason     string    `json:"keep_reason"`
	Requests       int       `json:"requests"`
	URL            string    `json:"url"`
}

// TracesHandler serves the tail-sampled trace store. Mount it on both
// "/debug/traces" and "/debug/traces/" so per-trace paths resolve.
func TracesHandler(s *TraceStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := strings.Trim(strings.TrimPrefix(req.URL.Path, "/debug/traces"), "/")
		if id == "" {
			serveTraceList(w, s)
			return
		}
		rec := s.Get(id)
		if rec == nil {
			http.Error(w, "trace not kept (tail sampling drops healthy fast queries)", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "waterfall" {
			width := 60
			if n, err := strconv.Atoi(req.URL.Query().Get("width")); err == nil && n > 0 {
				width = n
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, RenderTraceWaterfall(rec, width))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rec)
	})
}

func serveTraceList(w http.ResponseWriter, s *TraceStore) {
	var payload struct {
		Schema int                `json:"schema"`
		Seen   int64              `json:"seen"`
		Kept   int                `json:"kept"`
		Traces []traceSummaryJSON `json:"traces"`
	}
	payload.Schema = TraceSchemaVersion
	payload.Seen = s.Seen()
	payload.Traces = []traceSummaryJSON{}
	for _, r := range s.Kept() {
		payload.Traces = append(payload.Traces, traceSummaryJSON{
			TraceID:        r.TraceID,
			QueryID:        r.QueryID,
			Query:          r.Query,
			Tenant:         r.Tenant,
			Start:          r.Start,
			DurationMS:     r.DurationMS,
			TTFRMS:         r.TTFRMS,
			Results:        r.Results,
			Err:            r.Err,
			Degraded:       r.Degraded,
			BudgetExceeded: r.BudgetExceeded,
			KeepReason:     r.KeepReason,
			Requests:       len(r.Requests),
			URL:            "/debug/traces/" + r.TraceID,
		})
	}
	payload.Kept = len(payload.Traces)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload)
}

// RenderTraceWaterfall draws a kept trace as an ASCII waterfall — one bar
// per recorded dereference, '#'-filled for fetches on the first-result
// critical path — followed by the gating-chain charts.
func RenderTraceWaterfall(rec *TraceRecord, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s — %d requests, %.1fms", rec.TraceID, len(rec.Requests), rec.DurationMS)
	if rec.TTFRMS > 0 {
		fmt.Fprintf(&b, ", TTFR %.1fms", rec.TTFRMS)
	}
	fmt.Fprintf(&b, " (kept: %s)\n", rec.KeepReason)
	mark := map[string]bool{}
	for _, u := range rec.CriticalPath.FirstResultURLs() {
		mark[u] = true
	}
	rows := make([]timeline.Row, 0, len(rec.Requests))
	for _, q := range rec.Requests {
		status := fmt.Sprintf("%d", q.Status)
		if q.Err != "" {
			status = "ERR"
		}
		if q.Cached {
			status = "cache"
		}
		note := q.Reason
		if q.Attempt > 1 {
			note += fmt.Sprintf(" (retry %d)", q.Attempt-1)
		}
		if q.ServerMS > 0 {
			note += fmt.Sprintf(" (server %.1fms)", q.ServerMS)
		}
		rows = append(rows, timeline.Row{
			Label:  q.URL,
			Status: status,
			Bytes:  q.Bytes,
			Start:  time.Duration(q.StartMS * float64(time.Millisecond)),
			End:    time.Duration((q.StartMS + q.DurMS) * float64(time.Millisecond)),
			Note:   strings.TrimSpace(note),
			Mark:   mark[q.URL],
		})
	}
	b.WriteString(timeline.Render(rows, timeline.Options{Width: width}))
	if rec.CriticalPath != nil {
		b.WriteString(rec.CriticalPath.Render(width))
	}
	return b.String()
}

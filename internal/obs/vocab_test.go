package obs

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestEventVocabularyGolden pins the event wire vocabulary — the schema
// version, the full set of event-kind names, and the JSON field names of
// Event — against testdata/event_vocab.golden. Journals and SSE feeds are
// consumed by external tooling, so renaming any of these is a deliberate,
// reviewed act: update the golden file AND bump EventSchemaVersion when the
// change is incompatible.
func TestEventVocabularyGolden(t *testing.T) {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %d\n\nkinds:\n", EventSchemaVersion)
	for _, k := range EventKinds {
		fmt.Fprintf(&b, "%s\n", k)
	}
	b.WriteString("\nfields:\n")
	et := reflect.TypeOf(Event{})
	for i := 0; i < et.NumField(); i++ {
		tag := et.Field(i).Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name == "" || name == "-" {
			t.Fatalf("Event field %s has no JSON name", et.Field(i).Name)
		}
		fmt.Fprintf(&b, "%s\n", name)
	}

	want, err := os.ReadFile("testdata/event_vocab.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(want) {
		t.Errorf("event vocabulary drifted from testdata/event_vocab.golden.\n"+
			"got:\n%s\nwant:\n%s", got, want)
	}
}

package obs

import (
	"fmt"
	"strings"
	"time"

	"ltqp/internal/metrics"
	"ltqp/internal/timeline"
)

// Critical-path analysis over a query's dereference DAG. LTQP latency is
// dominated by chains of *dependent* dereferences — document B can only be
// fetched after document A revealed the link — so neither aggregate
// histograms nor the flat waterfall say which fetches actually gated
// time-to-first-result. This file walks the recorded parent links backwards
// from the gating document to a seed and attributes TTFR and total
// traversal latency to that chain, splitting each hop into server cost
// (from Server-Timing) and network/client cost.

// CPStep is one dereference on a critical path, seed first.
type CPStep struct {
	URL    string `json:"url"`
	Reason string `json:"reason,omitempty"`
	// StartMS/DurMS position the fetch relative to the query's recorder
	// epoch; ServerMS is the server-reported share of DurMS.
	StartMS  float64 `json:"start_ms"`
	DurMS    float64 `json:"duration_ms"`
	ServerMS float64 `json:"server_ms,omitempty"`
	Status   int     `json:"status,omitempty"`
	Cached   bool    `json:"cached,omitempty"`
}

// CritPath attributes a query's latency to its gating dereference chains.
type CritPath struct {
	// TTFRMS is the time to first result (0 when none was produced).
	TTFRMS float64 `json:"ttfr_ms,omitempty"`
	// TotalMS is the end of the last dereference relative to the epoch.
	TotalMS float64 `json:"total_ms"`
	// FirstResultChain is the dependent fetch chain (seed → ... → gating
	// document) that gated the first result.
	FirstResultChain []CPStep `json:"first_result_chain,omitempty"`
	// LongestChain is the chain ending at the last-finishing dereference —
	// what gated total traversal time.
	LongestChain []CPStep `json:"longest_chain,omitempty"`
	// GatingMS sums FirstResultChain fetch durations: the serialized
	// dereference time on the path to the first result. ServerMS is the
	// server-reported share of it.
	GatingMS float64 `json:"gating_ms,omitempty"`
	ServerMS float64 `json:"server_ms,omitempty"`
}

// ComputeCritPath derives the critical path from a query's recorded
// requests. resultTimes are result-delivery offsets from epoch (the
// recorder's ResultTimes); firstSources, when known, names the documents
// that produced the first result (provenance from the topology recorder) —
// without it the gating document falls back to the latest-finishing
// successful fetch before the first result.
func ComputeCritPath(reqs []metrics.Request, epoch time.Time, resultTimes []time.Duration, firstSources []string) *CritPath {
	if len(reqs) == 0 {
		return nil
	}
	// Resolve each URL to its defining request: the first successful fetch
	// (when its content became available to the traversal), else the last
	// attempt (for failed documents on the longest chain).
	best := map[string]metrics.Request{}
	for _, q := range reqs {
		cur, ok := best[q.URL]
		switch {
		case !ok:
			best[q.URL] = q
		case requestOK(q) && !requestOK(cur):
			best[q.URL] = q
		case requestOK(q) && requestOK(cur):
			if q.End.Before(cur.End) { // earliest successful completion
				best[q.URL] = q
			}
		case !requestOK(q) && !requestOK(cur):
			if q.End.After(cur.End) { // latest failed attempt
				best[q.URL] = q
			}
		}
	}
	cp := &CritPath{}
	var lastEnd time.Time
	var lastURL string
	for _, q := range reqs {
		if q.End.After(lastEnd) {
			lastEnd = q.End
			lastURL = q.URL
		}
	}
	cp.TotalMS = durMS(lastEnd.Sub(epoch))
	if len(resultTimes) > 0 {
		cp.TTFRMS = durMS(resultTimes[0])
	}

	// Gating document for the first result: the latest-finishing of the
	// documents that produced it, or — without provenance — the
	// latest-finishing successful fetch that completed before the result.
	var gate string
	if len(resultTimes) > 0 {
		var gateEnd time.Time
		if len(firstSources) > 0 {
			for _, u := range firstSources {
				if q, ok := best[u]; ok && q.End.After(gateEnd) {
					gate, gateEnd = u, q.End
				}
			}
		} else {
			cutoff := epoch.Add(resultTimes[0])
			for u, q := range best {
				if requestOK(q) && !q.End.After(cutoff) && q.End.After(gateEnd) {
					gate, gateEnd = u, q.End
				}
			}
		}
	}
	if gate != "" {
		cp.FirstResultChain = chainSteps(best, gate, epoch)
		for _, s := range cp.FirstResultChain {
			cp.GatingMS += s.DurMS
			cp.ServerMS += s.ServerMS
		}
	}
	if lastURL != "" {
		cp.LongestChain = chainSteps(best, lastURL, epoch)
	}
	return cp
}

func requestOK(q metrics.Request) bool {
	return q.Err == "" && (q.Cached || (q.Status > 0 && q.Status < 400))
}

// chainSteps walks parent links from url back to a seed and returns the
// chain seed-first. A missing parent truncates the chain; a cycle (possible
// with adversarial cross-linking) terminates it.
func chainSteps(best map[string]metrics.Request, url string, epoch time.Time) []CPStep {
	var rev []CPStep
	seen := map[string]bool{}
	for url != "" && !seen[url] {
		seen[url] = true
		q, ok := best[url]
		if !ok {
			break
		}
		rev = append(rev, CPStep{
			URL:      q.URL,
			Reason:   q.Reason,
			StartMS:  durMS(q.Start.Sub(epoch)),
			DurMS:    durMS(q.Duration()),
			ServerMS: durMS(q.Server),
			Status:   q.Status,
			Cached:   q.Cached,
		})
		url = q.Parent
	}
	// Reverse to seed-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// URLs returns the chain's URLs in order.
func chainURLs(chain []CPStep) []string {
	out := make([]string, len(chain))
	for i, s := range chain {
		out[i] = s.URL
	}
	return out
}

// FirstResultURLs returns the URLs of the first-result chain, seed first.
func (cp *CritPath) FirstResultURLs() []string {
	if cp == nil {
		return nil
	}
	return chainURLs(cp.FirstResultChain)
}

// Render draws the critical path as highlighted timeline charts.
func (cp *CritPath) Render(width int) string {
	if cp == nil || (len(cp.FirstResultChain) == 0 && len(cp.LongestChain) == 0) {
		return "(no critical path)\n"
	}
	var b strings.Builder
	if len(cp.FirstResultChain) > 0 {
		fmt.Fprintf(&b, "critical path to first result — TTFR %.1fms, chain fetch %.1fms (server %.1fms):\n",
			cp.TTFRMS, cp.GatingMS, cp.ServerMS)
		b.WriteString(timeline.Render(stepRows(cp.FirstResultChain), timeline.Options{Width: width}))
	}
	if len(cp.LongestChain) > 0 && !sameChain(cp.FirstResultChain, cp.LongestChain) {
		fmt.Fprintf(&b, "longest dereference chain — gates total %.1fms:\n", cp.TotalMS)
		b.WriteString(timeline.Render(stepRows(cp.LongestChain), timeline.Options{Width: width}))
	}
	return b.String()
}

func stepRows(chain []CPStep) []timeline.Row {
	rows := make([]timeline.Row, 0, len(chain))
	for _, s := range chain {
		status := fmt.Sprintf("%d", s.Status)
		if s.Cached {
			status = "cache"
		}
		note := s.Reason
		if s.ServerMS > 0 {
			note += fmt.Sprintf(" (server %.1fms)", s.ServerMS)
		}
		rows = append(rows, timeline.Row{
			Label:  s.URL,
			Status: status,
			Start:  time.Duration(s.StartMS * float64(time.Millisecond)),
			End:    time.Duration((s.StartMS + s.DurMS) * float64(time.Millisecond)),
			Note:   strings.TrimSpace(note),
			Mark:   true,
		})
	}
	return rows
}

func sameChain(a, b []CPStep) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].URL != b[i].URL {
			return false
		}
	}
	return true
}

package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartSpanUntracedIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything", Str("k", "v"))
	if sp != nil {
		t.Fatal("expected nil span on untraced context")
	}
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan must return the context unchanged")
	}
	// All nil-span methods must be safe.
	sp.End()
	sp.SetAttr(Int("n", 1))
	if sp.Name() != "" || sp.Duration() != 0 || sp.Children() != nil || sp.Attrs() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	sp.Walk(func(*Span) { t.Fatal("nil walk must not visit") })
}

func TestTraceTreeStructure(t *testing.T) {
	ctx, trace := NewTrace(context.Background(), "query", Str("query", "SELECT *"))
	pctx, parse := StartSpan(ctx, "parse")
	parse.End()
	if pctx == ctx {
		t.Fatal("traced StartSpan must derive a new context")
	}
	tctx, trav := StartSpan(ctx, "traverse")
	_, doc := StartSpan(tctx, "document", Str("url", "http://x/a"))
	_, d1 := StartSpan(ContextWithSpan(ctx, doc), "deref", Int("attempt", 1))
	d1.End()
	doc.End()
	trav.End()
	trace.End()

	root := trace.Root()
	if root.Name() != "query" {
		t.Fatalf("root = %s", root.Name())
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "parse" || kids[1].Name() != "traverse" {
		t.Fatalf("children = %v", kids)
	}
	if got := root.Count("deref"); got != 1 {
		t.Fatalf("deref count = %d", got)
	}
	if v, ok := root.Attr("query"); !ok || v != "SELECT *" {
		t.Fatalf("attr = %q %v", v, ok)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	ctx, trace := NewTrace(context.Background(), "query")
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(ctx, "document")
			sp.SetAttr(Bool("done", true))
			sp.End()
		}()
	}
	wg.Wait()
	if n := trace.Root().Count("document"); n != 50 {
		t.Fatalf("children = %d, want 50", n)
	}
}

func TestTraceJSONAndTree(t *testing.T) {
	ctx, trace := NewTrace(context.Background(), "query")
	_, sp := StartSpan(ctx, "parse", Str("lang", "sparql"))
	time.Sleep(time.Millisecond)
	sp.End()
	trace.End()

	data, err := trace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var envelope TraceJSON
	if err := json.Unmarshal(data, &envelope); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, data)
	}
	if envelope.Schema != TraceSchemaVersion {
		t.Fatalf("schema = %d, want %d", envelope.Schema, TraceSchemaVersion)
	}
	decoded := envelope.Root
	if decoded.Name != "query" || len(decoded.Children) != 1 || decoded.Children[0].Name != "parse" {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Children[0].DurUS <= 0 {
		t.Fatal("child duration missing")
	}
	if decoded.Children[0].Duration == "" {
		t.Fatal("child human-readable duration missing")
	}

	tree := trace.Tree()
	if !strings.Contains(tree, "query") || !strings.Contains(tree, "└─ parse") {
		t.Fatalf("tree = %q", tree)
	}
	if !strings.Contains(tree, "lang=sparql") {
		t.Fatalf("tree missing attrs: %q", tree)
	}
}

func TestNilTraceExports(t *testing.T) {
	var trace *Trace
	data, err := trace.JSON()
	if err != nil || string(data) != "null" {
		t.Fatalf("nil trace JSON = %s, %v", data, err)
	}
	if trace.Tree() != "(no trace)\n" {
		t.Fatalf("nil tree = %q", trace.Tree())
	}
	trace.End()
}

package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"ltqp/internal/extract"
	"ltqp/internal/rdf"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
	"ltqp/internal/sparql"
)

// newTestEnv builds a small simulated Solid environment.
func newTestEnv(t testing.TB) *simenv.Env {
	t.Helper()
	env := simenv.New(solidbench.SmallConfig())
	t.Cleanup(env.Close)
	return env
}

func newTestEngine(env *simenv.Env) *Engine {
	return New(Options{Client: env.Client(), Lenient: true})
}

func TestDiscover1PostsOfPerson(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	q := env.Dataset.Discover(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, x, err := e.Select(ctx, q.Text, nil)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	// Expected: every non-image post by the person.
	want := 0
	for _, p := range env.Dataset.Posts {
		if p.Creator == q.Person && p.Image == "" {
			want++
		}
	}
	if len(results) != want {
		t.Errorf("results = %d, want %d", len(results), want)
	}
	for _, b := range results {
		if !b.Has("messageId") || !b.Has("messageContent") || !b.Has("messageCreationDate") {
			t.Errorf("incomplete binding: %v", b)
		}
	}
	// Seeds were derived from the query (the person's WebID document).
	if len(x.Seeds) != 1 || !strings.Contains(x.Seeds[0], "/profile/card") {
		t.Errorf("seeds = %v", x.Seeds)
	}
	// Traversal stayed within (mostly) one pod.
	if pods := x.Recorder.PodsTouched(); pods != 1 {
		t.Errorf("pods touched = %d, want 1 (single-pod query)", pods)
	}
}

func TestDiscover6ForumsOfPerson(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	q := env.Dataset.Discover(6, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, _, err := e.Select(ctx, q.Text, nil)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	// Soundness: every reported forum must really contain a message by the
	// person. Completeness over the reachable subweb: at least the forums
	// in the person's own pod that contain their messages must be found
	// (traversal may legitimately also reach friends' walls the person
	// posted on, via hasCreator links — that is the point of LTQP).
	validForums := map[string]bool{} // forumId → contains a post by person
	ownForums := map[string]bool{}
	for fi, f := range env.Dataset.Forums {
		for _, pi := range f.Posts {
			if env.Dataset.Posts[pi].Creator == q.Person {
				id := rdf.Long(env.Dataset.Forums[fi].ID).Value
				validForums[id] = true
				if f.Moderator == q.Person {
					ownForums[id] = true
				}
				break
			}
		}
	}
	gotForums := map[string]bool{}
	for _, b := range results {
		id := b["forumId"].Value
		gotForums[id] = true
		if !validForums[id] {
			t.Errorf("unsound result: forum %s has no message by the person", id)
		}
		if !strings.Contains(b["forumTitle"].Value, "of") {
			t.Errorf("odd title %v", b["forumTitle"])
		}
	}
	for id := range ownForums {
		if !gotForums[id] {
			t.Errorf("own-pod forum %s not found", id)
		}
	}
}

func TestDiscover8TraversesMultiplePods(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	q := env.Dataset.Discover(8, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	results, x, err := e.Select(ctx, q.Text, nil)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(results) == 0 {
		t.Error("Discover 8 should produce results")
	}
	if pods := x.Recorder.PodsTouched(); pods < 2 {
		t.Errorf("pods touched = %d, want >= 2 (multi-pod traversal, Fig. 5)", pods)
	}
}

func TestFirstResultBeforeTraversalCompletes(t *testing.T) {
	// The headline claim: first results arrive while the link queue is
	// still being processed.
	env := newTestEnv(t)
	env.PodServer.Latency = 5 * time.Millisecond
	e := newTestEngine(env)
	q := env.Dataset.Discover(2, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	x, err := e.Query(ctx, q.Text, nil)
	if err != nil {
		t.Fatal(err)
	}
	var first rdf.Binding
	for b := range x.Results {
		if first == nil {
			first = b
			break
		}
	}
	if first == nil {
		t.Fatal("no results")
	}
	reqsAtFirst := len(x.Recorder.Requests())
	for range x.Results {
	}
	reqsAtEnd := len(x.Recorder.Requests())
	if reqsAtFirst >= reqsAtEnd {
		t.Errorf("first result only after all %d requests (at %d); pipeline not incremental",
			reqsAtEnd, reqsAtFirst)
	}
	if ttfr, ok := x.Recorder.TimeToFirstResult(); !ok || ttfr <= 0 {
		t.Errorf("TTFR = %v, %v", ttfr, ok)
	}
}

func TestExplicitSeedsOverrideDerived(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	q := env.Dataset.Discover(1, 1)
	seed := env.Dataset.PodBase(q.Person) + "profile/card"
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	x, err := e.Query(ctx, q.Text, []string{seed})
	if err != nil {
		t.Fatal(err)
	}
	for range x.Results {
	}
	if len(x.Seeds) != 1 || x.Seeds[0] != seed {
		t.Errorf("seeds = %v", x.Seeds)
	}
}

func TestNoSeedsError(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	_, err := e.Query(context.Background(), `SELECT ?s WHERE { ?s ?p ?o }`, nil)
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("err = %v, want seed error", err)
	}
}

func TestAskQuery(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	q := env.Dataset.Catalog()[36] // Short 5: ASK for image posts
	if !strings.HasPrefix(q.Name, "Short 5") {
		t.Fatalf("catalog order changed: %s", q.Name)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ok, err := e.Ask(ctx, q.Text, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: does the person have an image post?
	want := false
	for _, p := range env.Dataset.Posts {
		if p.Creator == q.Person && p.Image != "" {
			want = true
		}
	}
	if ok != want {
		t.Errorf("ASK = %v, want %v", ok, want)
	}
}

func TestConstructQuery(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	q := env.Dataset.Discover(1, 1)
	v := solidbench.NewVocab(env.Dataset.Config.Host)
	construct := strings.Replace(q.Text,
		"SELECT ?messageId ?messageCreationDate ?messageContent WHERE",
		"CONSTRUCT { ?message <"+v.NS()+"content> ?messageContent } WHERE", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	triples, err := e.Construct(ctx, construct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) == 0 {
		t.Error("CONSTRUCT produced no triples")
	}
	for _, tr := range triples {
		if !tr.IsGround() {
			t.Errorf("non-ground construct triple: %v", tr)
		}
	}
}

func TestLenientToleratesDeadLinks(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	// Tag and place IRIs resolve to 404 on the simulated host; lenient
	// traversal must still answer.
	q := env.Dataset.Discover(3, 1) // tags query reaches tag IRIs via cMatch
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, x, err := e.Select(ctx, q.Text, nil)
	if err != nil {
		t.Fatalf("lenient Select failed: %v", err)
	}
	stats := x.Recorder.Stats()
	if stats.Failed == 0 {
		t.Log("note: no failed requests observed (tag IRIs may not have been traversed)")
	}
}

func TestNonLenientFailsOnDeadSeed(t *testing.T) {
	env := newTestEnv(t)
	e := New(Options{Client: env.Client(), Lenient: false})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _, err := e.Select(ctx, `SELECT ?o WHERE { <`+env.Server.URL+`/pods/nope/profile/card#me> ?p ?o }`, nil)
	if err == nil {
		t.Error("non-lenient query over a 404 seed should fail")
	}
}

func TestMaxDocumentsCap(t *testing.T) {
	env := newTestEnv(t)
	e := New(Options{Client: env.Client(), Lenient: true, MaxDocuments: 3})
	q := env.Dataset.Discover(2, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, x, err := e.Select(ctx, q.Text, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(x.Recorder.Requests()); got > 3 {
		t.Errorf("requests = %d, want <= 3", got)
	}
}

func TestAuthenticatedQuerySeesPrivateDocuments(t *testing.T) {
	cfg := solidbench.SmallConfig()
	cfg.PrivateFraction = 0.99 // almost all post documents are private
	env := simenv.New(cfg)
	defer env.Close()
	q := env.Dataset.Discover(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Anonymous engine: post documents are behind 401s.
	anon := New(Options{Client: env.Client(), Lenient: true})
	anonResults, _, err := anon.Select(ctx, q.Text, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Authenticated as the person: full access.
	authed := New(Options{Client: env.Client(), Lenient: true, Auth: env.CredentialsFor(q.Person)})
	authedResults, _, err := authed.Select(ctx, q.Text, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(authedResults) <= len(anonResults) {
		t.Errorf("auth should reveal more results: anon=%d authed=%d",
			len(anonResults), len(authedResults))
	}
}

func TestWrongCredentialsAreForbidden(t *testing.T) {
	cfg := solidbench.SmallConfig()
	cfg.PrivateFraction = 0.99
	env := simenv.New(cfg)
	defer env.Close()
	q := env.Dataset.Discover(1, 1)
	// A non-friend's credentials must not unlock the person's documents.
	stranger := (q.Person + 3) % len(env.Dataset.Persons)
	isFriend := false
	for _, f := range env.Dataset.Persons[q.Person].Friends {
		if f == stranger {
			isFriend = true
		}
	}
	if isFriend {
		t.Skip("picked a friend; small graph too dense")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	e := New(Options{Client: env.Client(), Lenient: true, Auth: env.CredentialsFor(stranger)})
	_, x, err := e.Select(ctx, q.Text, nil)
	if err != nil {
		t.Fatal(err)
	}
	forbidden := 0
	for _, r := range x.Recorder.Requests() {
		if r.Status == 403 {
			forbidden++
		}
	}
	if forbidden == 0 {
		t.Error("expected 403s for the stranger's credentials")
	}
}

func TestShapeOf(t *testing.T) {
	q, err := sparql.ParseQuery(`
PREFIX snvoc: <https://x.invalid/vocab/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?m WHERE {
  ?m rdf:type snvoc:Post.
  ?m snvoc:hasCreator <https://pod.invalid/profile/card#me>.
  ?m (snvoc:hasPost|snvoc:hasComment) ?x.
  OPTIONAL { ?m snvoc:content ?c }
}`)
	if err != nil {
		t.Fatal(err)
	}
	shape := ShapeOf(q)
	for _, p := range []string{"hasCreator", "hasPost", "hasComment", "content"} {
		if !shape.Predicates["https://x.invalid/vocab/"+p] {
			t.Errorf("missing predicate %s", p)
		}
	}
	if !shape.Classes["https://x.invalid/vocab/Post"] {
		t.Error("missing class Post")
	}
	if !shape.IRIs["https://pod.invalid/profile/card#me"] {
		t.Error("missing IRI")
	}
}

func TestExtractorConfigurationLDPOnly(t *testing.T) {
	env := newTestEnv(t)
	e := New(Options{
		Client:  env.Client(),
		Lenient: true,
		Extractors: func(shape *extract.QueryShape) []extract.Extractor {
			return []extract.Extractor{extract.SolidProfile{}, extract.LDPContainer{}}
		},
	})
	q := env.Dataset.Discover(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, _, err := e.Select(ctx, q.Text, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Error("LDP-only traversal should still find the pod's posts")
	}
}

func TestMaxDepthBoundsTraversal(t *testing.T) {
	env := newTestEnv(t)
	q := env.Dataset.Discover(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	requestsAt := func(depth int) int {
		e := New(Options{Client: env.Client(), Lenient: true, MaxDepth: depth})
		_, x, err := e.Select(ctx, q.Text, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range x.Recorder.Requests() {
			_ = r
		}
		return len(x.Recorder.Requests())
	}
	d1 := requestsAt(1) // seed + its direct links only
	d3 := requestsAt(3)
	unbounded := requestsAt(0)
	if d1 >= d3 {
		t.Errorf("depth 1 (%d reqs) should fetch less than depth 3 (%d)", d1, d3)
	}
	if d3 > unbounded {
		t.Errorf("depth 3 (%d) exceeds unbounded (%d)", d3, unbounded)
	}
}

func TestGraphBindsDocumentProvenance(t *testing.T) {
	env := newTestEnv(t)
	e := newTestEngine(env)
	v := solidbench.NewVocab(env.Dataset.Config.Host)
	webID := env.Dataset.WebID(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// GRAPH ?g binds each message to the document it was dereferenced from.
	results, _, err := e.Select(ctx, `
PREFIX snvoc: <`+v.NS()+`>
SELECT ?m ?g WHERE {
  GRAPH ?g { ?m snvoc:hasCreator <`+webID+`> }
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no provenance results")
	}
	pod := env.Dataset.PodBase(0)
	for _, b := range results {
		g := b["g"]
		if !g.IsIRI() || !strings.HasPrefix(g.Value, pod) {
			t.Errorf("provenance = %v, want a document under %s", g, pod)
		}
		// The message fragment must live in its provenance document.
		if !strings.HasPrefix(b["m"].Value, g.Value) {
			t.Errorf("message %v not in document %v", b["m"], g)
		}
	}

	// A constant GRAPH term restricts to that document.
	doc := rdf.StripFragment(rdf.NewIRI(results[0]["m"].Value)).Value
	restricted, _, err := e.Select(ctx, `
PREFIX snvoc: <`+v.NS()+`>
SELECT ?m WHERE {
  GRAPH <`+doc+`> { ?m snvoc:hasCreator <`+webID+`> }
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(restricted) == 0 || len(restricted) >= len(results) {
		t.Errorf("restricted = %d of %d", len(restricted), len(results))
	}
	for _, b := range restricted {
		if !strings.HasPrefix(b["m"].Value, doc) {
			t.Errorf("message %v outside %s", b["m"], doc)
		}
	}
}

func TestContextCancellationMidTraversal(t *testing.T) {
	env := newTestEnv(t)
	env.PodServer.Latency = 20 * time.Millisecond // slow enough to cancel mid-flight
	e := newTestEngine(env)
	q := env.Dataset.Discover(8, 1)
	ctx, cancel := context.WithCancel(context.Background())
	x, err := e.Query(ctx, q.Text, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel shortly after traversal starts.
	time.Sleep(50 * time.Millisecond)
	cancel()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-x.Results:
			if !ok {
				return // stream closed promptly after cancellation
			}
		case <-deadline:
			t.Fatal("Results did not close after context cancellation")
		}
	}
}

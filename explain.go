package ltqp

import (
	"ltqp/internal/algebra"
	"ltqp/internal/core"
)

// algebraString renders the optimized logical plan of an execution.
func algebraString(x *core.Execution) string {
	return algebra.String(x.Plan)
}

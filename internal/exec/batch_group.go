package exec

import (
	"context"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/resource"
	"ltqp/internal/sparql"
)

// Vectorized GROUP BY. Grouping is blocking either way (a group over a
// still-growing source would be retractable), so the win here is what
// happens after the drain: rows stay dictionary-encoded in a columnar
// arena, group keys hash over TermIDs, and the per-partition aggregation
// runs morsel-parallel — workers own disjoint hash partitions, so no group
// is ever touched by two workers and same-input runs produce the same
// groups regardless of worker count.

// groupParts is the fixed partition count. It is independent of the worker
// count on purpose: the row→partition mapping, and hence each partition's
// group set, never changes when the pool is resized.
const groupParts = 64

// vectorizableGroup reports whether a Group can run on the columnar path:
// variable-only keys, no HAVING, and aggregates that are order-insensitive
// folds of a plain variable (or COUNT(*)). Everything else falls back to
// the row implementation.
func vectorizableGroup(g algebra.Group) bool {
	if len(g.Having) > 0 {
		return false
	}
	for _, c := range g.By {
		if c.Expr != nil || c.Var == "" {
			return false
		}
	}
	for _, item := range g.Items {
		if item.Expr == nil {
			continue
		}
		call, ok := item.Expr.(sparql.ExprCall)
		if !ok || !call.IsAggregate() {
			return false
		}
		switch call.Func {
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
		default:
			// SAMPLE and GROUP_CONCAT depend on encounter order, which the
			// parallel path does not preserve.
			return false
		}
		if call.Star {
			if call.Distinct {
				return false // COUNT(DISTINCT *) keys whole rows
			}
			continue
		}
		if len(call.Args) != 1 {
			return false
		}
		if _, ok := call.Args[0].(sparql.ExprVar); !ok {
			return false
		}
	}
	return true
}

// hashIDKey mixes an idKey into a partition index.
func hashIDKey(k idKey) uint64 {
	h := k.packed*0x9E3779B97F4A7C15 + 0x85EBCA6B
	h ^= h >> 33
	for i := 0; i < len(k.rest); i++ {
		h = h*1099511628211 ^ uint64(k.rest[i])
	}
	h ^= h >> 29
	return h
}

// evalGroupBatch drains the vectorized input into a columnar arena and
// aggregates it partition-parallel, emitting result bindings (grouping is
// the pipeline's decode boundary: only group keys and aggregate results
// become terms).
func evalGroupBatch(ctx context.Context, g algebra.Group, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	in := EvalBatch(ctx, g.Input, env)

	keyVars := make([]string, len(g.By))
	for i, c := range g.By {
		keyVars[i] = c.Var
	}
	arenaVars := append([]string{}, keyVars...)
	colOf := func(v string) int {
		for i, w := range arenaVars {
			if w == v {
				return i
			}
		}
		arenaVars = append(arenaVars, v)
		return len(arenaVars) - 1
	}
	items := make([]aggItem, 0, len(g.Items))
	for _, item := range g.Items {
		if item.Expr == nil {
			continue
		}
		call := item.Expr.(sparql.ExprCall)
		ai := aggItem{col: -1, call: call}
		if !call.Star {
			ai.col = colOf(call.Args[0].(sparql.ExprVar).Name)
		}
		items = append(items, ai)
	}
	itemVars := make([]string, 0, len(items))
	for _, item := range g.Items {
		if item.Expr != nil {
			itemVars = append(itemVars, item.Var)
		}
	}

	go func() {
		defer close(out)
		withProv := env.Prov != nil

		// Phase 1: drain the input into the arena.
		cols := make([][]rdf.TermID, len(arenaVars))
		var prov [][]rdf.TermID
		var cmap []int
		var forVars []string
		n := 0
		for b := range in {
			if ctx.Err() != nil {
				putBatch(b)
				continue
			}
			if !sameVars(forVars, b.vars) {
				forVars = b.vars
				cmap = schemaMap(b.vars, arenaVars)
			}
			for i := 0; i < b.Len(); i++ {
				r := b.Row(i)
				for c, j := range cmap {
					if j >= 0 {
						cols[c] = append(cols[c], b.cols[j][r])
					} else {
						cols[c] = append(cols[c], rdf.NoTerm)
					}
				}
				if withProv {
					if b.prov != nil {
						prov = append(prov, b.prov[r])
					} else {
						prov = append(prov, nil)
					}
				}
				n++
			}
			putBatch(b)
		}
		if ctx.Err() != nil {
			return
		}

		// The drained arena plus the per-row key/partition slabs of phase 2
		// are retained until the groups are emitted; charge them now and
		// release when the operator finishes. ~20 bytes covers the idKey,
		// partition byte and posting per row.
		if env.Ledger != nil && n > 0 {
			arenaBytes := int64(n) * (int64(len(arenaVars))*termIDBytes + 20)
			if withProv {
				arenaBytes += int64(n) * provRefBytes
			}
			env.Ledger.Charge(resource.Exec, arenaBytes)
			defer env.Ledger.Release(resource.Exec, arenaBytes)
		}

		// Phase 2: key and partition every row, morsel-parallel.
		keys := make([]idKey, n)
		parts := make([]uint8, n)
		runMorsels(env, n, func(_, lo, hi int) {
			ids := make([]rdf.TermID, len(keyVars))
			for i := lo; i < hi; i++ {
				for k := range keyVars {
					ids[k] = cols[k][i]
				}
				keys[i] = idKeyOf(ids)
				parts[i] = uint8(hashIDKey(keys[i]) % groupParts)
			}
		})
		byPart := make([][]int32, groupParts)
		for i := 0; i < n; i++ {
			byPart[parts[i]] = append(byPart[parts[i]], int32(i))
		}

		// Phase 3: aggregate, one worker per disjoint partition set.
		type grp struct {
			first int32
			rows  []int32
		}
		type partResult struct {
			order  []idKey
			groups map[idKey]*grp
			out    []rdf.Binding
		}
		results := make([]partResult, groupParts)
		aggregatePart := func(p int) {
			rows := byPart[p]
			if len(rows) == 0 {
				return
			}
			pr := &results[p]
			pr.groups = map[idKey]*grp{}
			for _, r := range rows {
				k := keys[r]
				gr, ok := pr.groups[k]
				if !ok {
					gr = &grp{first: r}
					pr.groups[k] = gr
					pr.order = append(pr.order, k)
				}
				gr.rows = append(gr.rows, r)
			}
			var values []rdf.Term
			var seen map[rdf.TermID]bool
			for _, k := range pr.order {
				gr := pr.groups[k]
				result := rdf.NewBinding()
				for c, v := range keyVars {
					if id := cols[c][gr.first]; id != rdf.NoTerm {
						result[v] = env.dict.Decode(id)
					}
				}
				if withProv {
					for _, r := range gr.rows {
						for _, src := range prov[r] {
							t := env.dict.Decode(src)
							result[rdf.ProvKey(t.Value)] = t
						}
					}
				}
				ii := 0
				for _, item := range g.Items {
					if item.Expr == nil {
						continue
					}
					ai := items[ii]
					name := itemVars[ii]
					ii++
					if ai.call.Func == "COUNT" {
						result[name] = countAgg(ai, cols, gr.rows, &seen)
						continue
					}
					values = values[:0]
					if ai.call.Distinct {
						if seen == nil {
							seen = map[rdf.TermID]bool{}
						} else {
							clear(seen)
						}
					}
					for _, r := range gr.rows {
						id := cols[ai.col][r]
						if id == rdf.NoTerm {
							continue
						}
						if ai.call.Distinct {
							if seen[id] {
								continue
							}
							seen[id] = true
						}
						values = append(values, env.dict.Decode(id))
					}
					if v, err := aggCompute(ai.call, values); err == nil {
						result[name] = v
					}
				}
				pr.out = append(pr.out, result)
			}
		}
		workers := env.workerCount()
		if workers > groupParts {
			workers = groupParts
		}
		if n < morselMinRows {
			workers = 1
		}
		if workers <= 1 {
			for p := 0; p < groupParts; p++ {
				aggregatePart(p)
			}
		} else {
			done := make(chan struct{})
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer func() { done <- struct{}{} }()
					for p := w; p < groupParts; p += workers {
						aggregatePart(p)
					}
				}(w)
			}
			for w := 0; w < workers; w++ {
				<-done
			}
		}

		emitted := false
		for p := 0; p < groupParts; p++ {
			for _, b := range results[p].out {
				emitted = true
				if !send(ctx, out, b) {
					return
				}
			}
		}
		// Implicit single group for aggregate queries without GROUP BY over
		// an empty input (COUNT() = 0 etc.), as on the row path.
		if !emitted && n == 0 && len(g.By) == 0 {
			result := rdf.NewBinding()
			ii := 0
			for _, item := range g.Items {
				if item.Expr == nil {
					continue
				}
				if v, err := aggCompute(items[ii].call, nil); err == nil {
					result[item.Var] = v
				}
				ii++
			}
			send(ctx, out, result)
		}
	}()
	return out
}

// aggItem pairs an aggregate call with the arena column it reads (-1 for
// COUNT(*)).
type aggItem struct {
	col  int
	call sparql.ExprCall
}

// countAgg computes COUNT over a group without decoding a single term:
// COUNT(*) is the row count, COUNT(?v) the bound count, COUNT(DISTINCT ?v)
// the distinct bound count.
func countAgg(ai aggItem, cols [][]rdf.TermID, rows []int32, seen *map[rdf.TermID]bool) rdf.Term {
	if ai.call.Star {
		return rdf.Integer(int64(len(rows)))
	}
	n := 0
	if ai.call.Distinct {
		if *seen == nil {
			*seen = map[rdf.TermID]bool{}
		} else {
			clear(*seen)
		}
		for _, r := range rows {
			if id := cols[ai.col][r]; id != rdf.NoTerm && !(*seen)[id] {
				(*seen)[id] = true
				n++
			}
		}
		return rdf.Integer(int64(n))
	}
	for _, r := range rows {
		if cols[ai.col][r] != rdf.NoTerm {
			n++
		}
	}
	return rdf.Integer(int64(n))
}

// Custom traversal strategies: the engine is modular — link extraction
// strategies and link-queue disciplines are plug-and-play, mirroring
// Comunica's configuration system that the paper highlights ("modules can
// be enabled or disabled using a plug-and-play configuration system for
// the flexible combination of techniques during experimentation").
//
// This example runs one Discover query under every built-in strategy and
// prints the cost/completeness trade-off, then shows the priority link
// queue reordering traversal.
//
//	go run ./examples/custom-strategy
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ltqp"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

func main() {
	cfg := solidbench.DefaultConfig()
	cfg.Persons = 10
	env := simenv.New(cfg)
	defer env.Close()

	query := env.Dataset.Discover(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	fmt.Printf("query: %s\n\n", query.Name)
	fmt.Printf("%-14s %8s %9s %10s   %s\n", "strategy", "results", "requests", "time", "notes")

	for _, s := range []struct {
		strategy ltqp.Strategy
		maxDocs  int
		note     string
	}{
		{ltqp.StrategySolid, 0, "paper default: Solid-aware + cMatch + LDP"},
		{ltqp.StrategySolidNoLDP, 0, "type-index-guided only (skips noise/)"},
		{ltqp.StrategyLDPOnly, 0, "blind container walk of the pod"},
		{ltqp.StrategyCMatch, 0, "query-driven only: cannot bootstrap from a profile"},
		{ltqp.StrategyCAll, 3000, "follow everything (capped!)"},
	} {
		engine := ltqp.New(ltqp.Config{
			Client:       env.Client(),
			Lenient:      true,
			Strategy:     s.strategy,
			MaxDocuments: s.maxDocs,
		})
		start := time.Now()
		res, err := engine.Query(ctx, query.Text)
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for range res.Results {
			n++
		}
		fmt.Printf("%-14s %8d %9d %10s   %s\n",
			s.strategy, n, res.Stats().Requests,
			time.Since(start).Round(time.Millisecond), s.note)
	}

	// The priority queue schedules type-index links before blind container
	// members, an enhancement direction the paper cites [34].
	fmt.Println("\nwith the priority link queue (type-index links first):")
	engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true, PrioritizedQueue: true})
	start := time.Now()
	res, err := engine.Query(ctx, query.Text)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	var first time.Duration
	for range res.Results {
		if n == 0 {
			first = time.Since(start)
		}
		n++
	}
	fmt.Printf("%d results; first after %s, all after %s\n",
		n, first.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
}

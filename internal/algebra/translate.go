package algebra

import (
	"fmt"

	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

// Translate converts a parsed query into a logical operator tree, applying
// the SPARQL group-graph-pattern translation rules and the solution
// modifier stack (Group → OrderBy → Project → Distinct → Slice).
func Translate(q *sparql.Query) (Operator, error) {
	t := &translator{}
	var op Operator = Unit{}
	if q.Where != nil {
		var err error
		op, err = t.group(*q.Where)
		if err != nil {
			return nil, err
		}
	}
	if q.Values != nil {
		op = joinOp(op, Values{Variables: q.Values.Vars, Rows: q.Values.Rows})
	}

	needsGroup := len(q.GroupBy) > 0 || len(q.Having) > 0
	for _, item := range q.Projection {
		if item.Expr != nil && sparql.HasAggregates(item.Expr) {
			needsGroup = true
		}
	}
	for _, oc := range q.OrderBy {
		if sparql.HasAggregates(oc.Expr) {
			return nil, fmt.Errorf("algebra: aggregates in ORDER BY are not supported; project the aggregate and order by its alias")
		}
	}

	if needsGroup {
		op = Group{Input: op, By: q.GroupBy, Items: q.Projection, Having: q.Having}
		if len(q.OrderBy) > 0 {
			op = OrderBy{Input: op, Conds: q.OrderBy}
		}
		if len(q.Projection) > 0 {
			// Group already computed the projection values; restrict to the
			// projected names.
			items := make([]sparql.SelectItem, len(q.Projection))
			for i, it := range q.Projection {
				items[i] = sparql.SelectItem{Var: it.Var}
			}
			op = Project{Input: op, Items: items}
		}
	} else {
		if len(q.OrderBy) > 0 {
			op = OrderBy{Input: op, Conds: q.OrderBy}
		}
		if len(q.Projection) > 0 {
			op = Project{Input: op, Items: q.Projection}
		}
	}

	switch {
	case q.Distinct:
		op = Distinct{Input: op}
	case q.Reduced:
		op = Reduced{Input: op}
	}
	limit := q.Limit
	if q.Form == sparql.FormAsk {
		limit = 1
	}
	if q.Offset > 0 || limit >= 0 {
		op = Slice{Input: op, Offset: q.Offset, Limit: limit}
	}
	return op, nil
}

// translator holds fresh-variable state for path rewriting, and the
// enclosing GRAPH term while translating a GRAPH group.
type translator struct {
	fresh int
	graph rdf.Term
}

// freshVar mints an internal variable; the "  " prefix cannot clash with
// user variables since the grammar forbids spaces in names.
func (t *translator) freshVar() rdf.Term {
	t.fresh++
	return rdf.NewVar(fmt.Sprintf("__path%d", t.fresh))
}

// joinOp joins two operators, eliding the Unit identity.
func joinOp(l, r Operator) Operator {
	if _, ok := l.(Unit); ok {
		return r
	}
	if _, ok := r.(Unit); ok {
		return l
	}
	return Join{Left: l, Right: r}
}

// group translates a group graph pattern: elements join in order, filters
// scope over the whole group.
func (t *translator) group(g sparql.GroupPattern) (Operator, error) {
	var op Operator = Unit{}
	var filters []sparql.Expression
	for _, el := range g.Elements {
		switch x := el.(type) {
		case sparql.BGP:
			b, err := t.bgp(x)
			if err != nil {
				return nil, err
			}
			op = joinOp(op, b)
		case sparql.FilterPattern:
			filters = append(filters, x.Expr)
		case sparql.OptionalPattern:
			inner, innerFilters, err := t.optionalBody(x.Pattern)
			if err != nil {
				return nil, err
			}
			op = LeftJoin{Left: op, Right: inner, Filters: innerFilters}
		case sparql.MinusPattern:
			inner, err := t.pattern(x.Pattern)
			if err != nil {
				return nil, err
			}
			op = Minus{Left: op, Right: inner}
		case sparql.BindPattern:
			op = Extend{Input: op, Var: x.Var, Expr: x.Expr}
		case sparql.ValuesPattern:
			op = joinOp(op, Values{Variables: x.Vars, Rows: x.Rows})
		case sparql.UnionPattern:
			u, err := t.pattern(x)
			if err != nil {
				return nil, err
			}
			op = joinOp(op, u)
		case sparql.GraphGraphPattern:
			// The traversal source is the union of all dereferenced
			// documents, and every triple's provenance (the document it
			// was dereferenced from) is retained: GRAPH constrains or
			// binds that provenance.
			saved := t.graph
			t.graph = x.Graph
			inner, err := t.pattern(x.Pattern)
			t.graph = saved
			if err != nil {
				return nil, err
			}
			op = joinOp(op, inner)
		case sparql.SubSelect:
			sub, err := Translate(x.Query)
			if err != nil {
				return nil, err
			}
			op = joinOp(op, sub)
		case sparql.GroupPattern:
			inner, err := t.group(x)
			if err != nil {
				return nil, err
			}
			op = joinOp(op, inner)
		default:
			return nil, fmt.Errorf("algebra: unsupported pattern %T", el)
		}
	}
	for _, f := range filters {
		op = Filter{Input: op, Expr: f}
	}
	return op, nil
}

// optionalBody translates the body of an OPTIONAL. Top-level filters of the
// optional group become part of the left-join condition, per the SPARQL
// semantics.
func (t *translator) optionalBody(p sparql.GraphPattern) (Operator, []sparql.Expression, error) {
	g, ok := p.(sparql.GroupPattern)
	if !ok {
		op, err := t.pattern(p)
		return op, nil, err
	}
	var filters []sparql.Expression
	rest := sparql.GroupPattern{}
	for _, el := range g.Elements {
		if f, isFilter := el.(sparql.FilterPattern); isFilter {
			filters = append(filters, f.Expr)
		} else {
			rest.Elements = append(rest.Elements, el)
		}
	}
	op, err := t.group(rest)
	return op, filters, err
}

// pattern translates any graph pattern node.
func (t *translator) pattern(p sparql.GraphPattern) (Operator, error) {
	switch x := p.(type) {
	case sparql.GroupPattern:
		return t.group(x)
	case sparql.BGP:
		return t.bgp(x)
	case sparql.UnionPattern:
		l, err := t.pattern(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := t.pattern(x.Right)
		if err != nil {
			return nil, err
		}
		return Union{Left: l, Right: r}, nil
	case sparql.SubSelect:
		return Translate(x.Query)
	default:
		return t.group(sparql.GroupPattern{Elements: []sparql.GraphPattern{p}})
	}
}

// bgp translates a basic graph pattern into a join chain of pattern scans,
// rewriting property paths where possible.
func (t *translator) bgp(b sparql.BGP) (Operator, error) {
	var op Operator = Unit{}
	for _, tp := range b.Patterns {
		one, err := t.triplePath(blankToVar(tp.S), tp.Path, blankToVar(tp.O))
		if err != nil {
			return nil, err
		}
		op = joinOp(op, one)
	}
	return op, nil
}

// blankToVar converts query blank nodes to internal (non-projectable)
// variables, per the SPARQL semantics of blank nodes in patterns.
func blankToVar(t rdf.Term) rdf.Term {
	if t.IsBlank() {
		return rdf.NewVar("__bn_" + t.Value)
	}
	return t
}

// triplePath rewrites one subject-path-object pattern.
func (t *translator) triplePath(s rdf.Term, path sparql.Path, o rdf.Term) (Operator, error) {
	switch p := path.(type) {
	case sparql.PathIRI:
		return Pattern{Triple: rdf.NewTriple(s, rdf.NewIRI(p.IRI), o), Graph: t.graph}, nil
	case sparql.PathVar:
		return Pattern{Triple: rdf.NewTriple(s, rdf.NewVar(p.Name), o), Graph: t.graph}, nil
	case sparql.PathInverse:
		return t.triplePath(o, p.Path, s)
	case sparql.PathSequence:
		if len(p.Parts) == 0 {
			return nil, fmt.Errorf("algebra: empty path sequence")
		}
		var op Operator = Unit{}
		cur := s
		for i, part := range p.Parts {
			var next rdf.Term
			if i == len(p.Parts)-1 {
				next = o
			} else {
				next = t.freshVar()
			}
			one, err := t.triplePath(cur, part, next)
			if err != nil {
				return nil, err
			}
			op = joinOp(op, one)
			cur = next
		}
		return op, nil
	case sparql.PathAlternative:
		if len(p.Parts) == 0 {
			return nil, fmt.Errorf("algebra: empty path alternative")
		}
		op, err := t.triplePath(s, p.Parts[0], o)
		if err != nil {
			return nil, err
		}
		for _, part := range p.Parts[1:] {
			right, err := t.triplePath(s, part, o)
			if err != nil {
				return nil, err
			}
			op = Union{Left: op, Right: right}
		}
		return op, nil
	case sparql.PathZeroOrMore, sparql.PathOneOrMore, sparql.PathZeroOrOne, sparql.PathNegated:
		return PathPattern{S: s, O: o, Path: path}, nil
	default:
		return nil, fmt.Errorf("algebra: unsupported path %T", path)
	}
}

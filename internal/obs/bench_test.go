package obs

import (
	"context"
	"testing"
)

// BenchmarkStartSpanUntraced measures the opt-out cost the hot paths pay
// when tracing is off: one context lookup, no allocation.
func BenchmarkStartSpanUntraced(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "deref")
		sp.End()
	}
}

// BenchmarkStartSpanTraced measures the per-span cost with tracing on.
func BenchmarkStartSpanTraced(b *testing.B) {
	ctx, _ := NewTrace(context.Background(), "query")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "deref")
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("x", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("x", "", DefaultLatencyBuckets)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}

func BenchmarkNilMetricsChain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		On(nil).DocumentsFetched.Inc()
	}
}

package obs

import (
	"strings"
	"testing"
)

func TestHistogramExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ltqp_query_duration_seconds", "", DefaultLatencyBuckets)
	h.Observe(0.002) // untraced observation: no exemplar
	h.ObserveExemplar(0.004, "4bf92f3577b34da6a3ce929d0e0e4736")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.004`) {
		t.Errorf("exemplar missing from exposition:\n%s", text)
	}
	// Exactly one bucket carries it — the one 0.004 fell into.
	if n := strings.Count(text, "# {trace_id="); n != 1 {
		t.Errorf("exemplar count = %d, want 1:\n%s", n, text)
	}
	if !strings.Contains(text, "ltqp_query_duration_seconds_count 2") {
		t.Errorf("count must include traced and untraced observations:\n%s", text)
	}
}

func TestHistogramExemplarEmptyTraceID(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "", DefaultLatencyBuckets)
	h.ObserveExemplar(0.004, "")
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "trace_id") {
		t.Errorf("empty trace id must not render an exemplar:\n%s", b.String())
	}
	if h.Count() != 1 {
		t.Errorf("observation lost: count = %d", h.Count())
	}
}

func TestHistogramExemplarNilSafe(t *testing.T) {
	var h *Histogram
	h.ObserveExemplar(1, "abc") // must not panic
}

func TestHistogramExemplarLatestWins(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "", []float64{1})
	h.ObserveExemplar(0.5, "first")
	h.ObserveExemplar(0.6, "second")
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "first") || !strings.Contains(b.String(), `{trace_id="second"} 0.6`) {
		t.Errorf("bucket exemplar must be the latest traced observation:\n%s", b.String())
	}
}

GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

# Tier-1: the gate every change must keep green.
test: build
	$(GO) test ./...

# Pre-merge verification: vet plus the full suite (including the chaos
# integration tests) under the race detector — the engine is heavily
# concurrent and must stay race-clean.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

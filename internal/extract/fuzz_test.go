package extract

import (
	"strings"
	"testing"

	"ltqp/internal/linkqueue"
	"ltqp/internal/rdf"
	"ltqp/internal/turtle"
)

// FuzzLinkExtraction feeds hostile Turtle through every extractor and checks
// the invariants traversal safety rests on: no panics, only fragment-free
// absolute http(s) link URLs, and URL normalization (the dedup key) stays
// idempotent — a document cannot mint links that dodge deduplication or
// smuggle non-dereferenceable schemes into the queue.
func FuzzLinkExtraction(f *testing.F) {
	f.Add("<http://pod/a> <http://www.w3.org/2000/01/rdf-schema#seeAlso> <http://pod/b> .")
	f.Add(`<http://pod/> <http://www.w3.org/ns/ldp#contains> <http://pod/x>, <HTTP://POD:80/y> .`)
	f.Add(`<http://pod/card#me> <http://www.w3.org/ns/pim/space#storage> </root/> .`)
	f.Add(`<http://pod/i> a <http://www.w3.org/ns/solid/terms#TypeRegistration> ;
	 <http://www.w3.org/ns/solid/terms#forClass> <http://ex/C> ;
	 <http://www.w3.org/ns/solid/terms#instance> <javascript:alert(1)> .`)
	f.Add("<urn:x> <urn:p> \"lit\"@en .\n<mailto:a@b> <urn:q> <ftp://h/z> .")
	f.Add(`@prefix : <http://pod/#> . :a :b :c#frag .`)
	f.Add(strings.Repeat("<http://pod/s> <http://pod/p> <http://pod/o> .\n", 50))

	shape := &QueryShape{
		Predicates: map[string]bool{"http://pod/p": true},
		Classes:    map[string]bool{"http://ex/C": true},
		IRIs:       map[string]bool{"http://pod/a": true},
	}
	extractors := append(DefaultSolidSet(shape), CAll{})

	f.Fuzz(func(t *testing.T, body string) {
		triples, err := turtle.Parse(body, turtle.Options{Base: "http://fuzz.example/doc"})
		if err != nil {
			return // unparseable bodies never reach extractors
		}
		g := rdf.NewGraph()
		g.AddAll(triples)
		doc := Document{IRI: "http://fuzz.example/doc", Graph: g}
		for _, ex := range extractors {
			for _, l := range ex.Extract(doc) {
				if !strings.HasPrefix(l.URL, "http://") && !strings.HasPrefix(l.URL, "https://") {
					t.Fatalf("%s extracted non-http link %q", ex.Name(), l.URL)
				}
				if strings.Contains(l.URL, "#") {
					t.Fatalf("%s extracted link with fragment %q", ex.Name(), l.URL)
				}
				if l.URL == "" || l.Reason == "" || l.Extractor == "" {
					t.Fatalf("%s extracted incomplete link %+v", ex.Name(), l)
				}
				n := linkqueue.Normalize(l.URL)
				if linkqueue.Normalize(n) != n {
					t.Fatalf("normalization not idempotent for %q: %q -> %q",
						l.URL, n, linkqueue.Normalize(n))
				}
				if linkqueue.Origin(l.URL) == "invalid://" {
					t.Fatalf("%s extracted unparseable link %q", ex.Name(), l.URL)
				}
			}
		}
	})
}

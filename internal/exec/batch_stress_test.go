package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ltqp/internal/algebra"
	"ltqp/internal/plan"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
)

// Stress suite for the vectorized pipeline, meant to run under -race: the
// morsel workers, the store's batch iterator, and traversal's concurrent
// AddDocument all interleave here.

func stressPlan(t *testing.T, query string) algebra.Operator {
	t.Helper()
	q, err := sparql.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan.New(nil).Optimize(op)
}

// TestConcurrentAddDocumentAndQuery runs a vectorized DISTINCT join while
// documents are still being added — the traversal engine's normal mode. The
// final multiset must be exactly one row per document: a row pairing o_i
// with w_j (i != j) would be a torn tuple, a duplicate or missing row a
// DISTINCT bug under concurrency.
func TestConcurrentAddDocumentAndQuery(t *testing.T) {
	const docs = 300
	op := stressPlan(t, `SELECT DISTINCT ?s ?o ?w WHERE {
  ?s <http://v/p> ?o .
  ?s <http://v/q> ?w .
}`)
	for iter := 0; iter < 3; iter++ {
		s := store.New()
		env := NewEnv(s)
		env.Workers = 4
		ctx := context.Background()

		type row struct{ s, o, w string }
		results := make(chan []rdf.Binding, 1)
		go func() {
			var got []rdf.Binding
			for b := range Eval(ctx, op, env) {
				got = append(got, b)
			}
			results <- got
		}()

		for i := 0; i < docs; i++ {
			subj := rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", i))
			s.AddDocument(fmt.Sprintf("http://example.org/doc%d", i), []rdf.Triple{
				rdf.NewTriple(subj, rdf.NewIRI("http://v/p"), rdf.NewLiteral(fmt.Sprintf("o%d", i))),
				rdf.NewTriple(subj, rdf.NewIRI("http://v/q"), rdf.NewLiteral(fmt.Sprintf("w%d", i))),
			})
		}
		s.Close()

		got := <-results
		if len(got) != docs {
			t.Fatalf("iter %d: %d DISTINCT rows, want %d", iter, len(got), docs)
		}
		seen := map[row]bool{}
		for _, b := range got {
			r := row{b["s"].Value, b["o"].Value, b["w"].Value}
			want := row{
				s: r.s,
				o: "o" + r.s[len("http://example.org/s"):],
				w: "w" + r.s[len("http://example.org/s"):],
			}
			if r != want {
				t.Fatalf("iter %d: torn tuple %+v (want %+v)", iter, r, want)
			}
			if seen[r] {
				t.Fatalf("iter %d: duplicate DISTINCT row %+v", iter, r)
			}
			seen[r] = true
		}
	}
}

// stressStore builds a deterministic store with enough rows that join
// probes and grouping run morsel-parallel.
func stressStore() *store.Store {
	r := rand.New(rand.NewSource(7))
	s := store.New()
	doc := rdf.NewIRI("http://example.org/doc")
	for i := 0; i < 4000; i++ {
		msg := rdf.NewIRI(fmt.Sprintf("http://example.org/m%d", i))
		creator := rdf.NewIRI(fmt.Sprintf("http://example.org/u%d", r.Intn(17)))
		s.Add(rdf.NewTriple(msg, rdf.NewIRI("http://v/hasCreator"), creator), doc)
		s.Add(rdf.NewTriple(msg, rdf.NewIRI("http://v/content"),
			rdf.NewLiteral(fmt.Sprintf("content %d %c", i, 'a'+rune(r.Intn(26))))), doc)
		if r.Intn(3) > 0 {
			s.Add(rdf.NewTriple(msg, rdf.NewIRI("http://v/id"), rdf.Long(int64(r.Intn(500)))), doc)
		}
	}
	s.Close()
	return s
}

// TestResultsDeterministicAcrossWorkerCounts pins the acceptance criterion
// that morsel scheduling never leaks into results: the same query over the
// same store yields the same solution multiset for every worker-pool size,
// including the GOMAXPROCS default (so `go test -cpu 1,4,8` sweeps it too).
func TestResultsDeterministicAcrossWorkerCounts(t *testing.T) {
	s := stressStore()
	queries := []string{
		`SELECT ?m ?c ?id WHERE {
  ?m <http://v/hasCreator> <http://example.org/u3> .
  ?m <http://v/content> ?c .
  ?m <http://v/id> ?id .
  FILTER(CONTAINS(?c, "a"))
}`,
		`SELECT DISTINCT ?u ?id WHERE {
  { ?m <http://v/hasCreator> ?u . ?m <http://v/id> ?id . }
  UNION
  { ?m <http://v/hasCreator> ?u . ?m <http://v/id> ?id . }
}`,
		`SELECT ?u (COUNT(?m) AS ?n) (MIN(?id) AS ?lo) WHERE {
  ?m <http://v/hasCreator> ?u .
  ?m <http://v/id> ?id .
} GROUP BY ?u`,
	}
	ctx := context.Background()
	for qi, query := range queries {
		op := stressPlan(t, query)
		vars := op.Vars()
		var base []string
		for _, workers := range []int{1, 0, 2, 4, 8} {
			env := NewEnv(s)
			env.Workers = workers
			got := canon(vars, collect(Eval(ctx, op, env)))
			if len(got) == 0 {
				t.Fatalf("query %d produced no rows; store shape regressed", qi)
			}
			if base == nil {
				base = got
				continue
			}
			if len(got) != len(base) {
				t.Fatalf("query %d workers=%d: %d rows vs %d at workers=1", qi, workers, len(got), len(base))
			}
			for i := range got {
				if got[i] != base[i] {
					t.Fatalf("query %d workers=%d: row %d differs\ngot:  %s\nwant: %s",
						qi, workers, i, got[i], base[i])
				}
			}
		}
	}
}

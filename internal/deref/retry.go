package deref

// Resilient dereferencing. Live Solid pods on the open Web fail, stall and
// rate-limit routinely — the paper's CLI ships a --lenient flag for exactly
// this reason — so the dereferencer distinguishes transient failures
// (transport errors, 429/5xx, per-attempt timeouts) from terminal ones
// (other 4xx, unparseable documents) and retries the former with capped
// exponential backoff. Jitter is derived deterministically from a seed, the
// URL and the attempt number, so that chaos runs are reproducible.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"time"
)

// RetryPolicy configures resilient dereferencing. The zero value of each
// field selects the documented default; a nil *RetryPolicy disables
// retrying entirely (single attempt, no per-attempt timeout).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 4, i.e. up to 3 retries). 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 5s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// JitterFrac adds up to this fraction of the delay as deterministic
	// jitter (default 0.2; negative disables jitter).
	JitterFrac float64
	// Seed drives the deterministic jitter. Two policies with the same
	// seed produce identical backoff schedules for the same URLs.
	Seed int64
	// AttemptTimeout bounds each individual fetch attempt (default 30s;
	// negative disables). Distinct from any deadline on the caller's
	// context, which always terminates the whole dereference.
	AttemptTimeout time.Duration
	// MaxRetryAfter caps how long a server-sent Retry-After header is
	// honored on 429/503 (default 30s). A server demanding more than the
	// cap is treated as terminally unavailable.
	MaxRetryAfter time.Duration

	// sleep is a test hook; nil means a context-aware real sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy returns the policy used by the CLI's resilience flags.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{}
}

const (
	defaultMaxAttempts    = 4
	defaultBaseDelay      = 100 * time.Millisecond
	defaultMaxDelay       = 5 * time.Second
	defaultMultiplier     = 2.0
	defaultJitterFrac     = 0.2
	defaultAttemptTimeout = 30 * time.Second
	defaultMaxRetryAfter  = 30 * time.Second
)

func (p *RetryPolicy) maxAttempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		if p == nil {
			return 1
		}
		return defaultMaxAttempts
	}
	return p.MaxAttempts
}

func (p *RetryPolicy) attemptTimeout() time.Duration {
	if p == nil || p.AttemptTimeout < 0 {
		return 0
	}
	if p.AttemptTimeout == 0 {
		return defaultAttemptTimeout
	}
	return p.AttemptTimeout
}

func (p *RetryPolicy) maxRetryAfter() time.Duration {
	if p == nil || p.MaxRetryAfter <= 0 {
		return defaultMaxRetryAfter
	}
	return p.MaxRetryAfter
}

// Backoff returns the delay before retry number attempt (1 = the first
// retry) of the given URL. The schedule is exponential with a cap, plus
// deterministic jitter: the same (seed, url, attempt) triple always yields
// the same delay, so concurrent chaos runs reproduce exactly.
func (p *RetryPolicy) Backoff(url string, attempt int) time.Duration {
	base := defaultBaseDelay
	maxd := defaultMaxDelay
	mult := defaultMultiplier
	jfrac := defaultJitterFrac
	if p != nil {
		if p.BaseDelay > 0 {
			base = p.BaseDelay
		}
		if p.MaxDelay > 0 {
			maxd = p.MaxDelay
		}
		if p.Multiplier > 1 {
			mult = p.Multiplier
		}
		if p.JitterFrac != 0 {
			jfrac = p.JitterFrac
		}
	}
	if attempt < 1 {
		attempt = 1
	}
	delay := float64(base)
	for i := 1; i < attempt; i++ {
		delay *= mult
		if delay >= float64(maxd) {
			delay = float64(maxd)
			break
		}
	}
	if delay > float64(maxd) {
		delay = float64(maxd)
	}
	if jfrac > 0 {
		var seed int64
		if p != nil {
			seed = p.Seed
		}
		delay += delay * jfrac * unitHash(seed, url, attempt)
	}
	return time.Duration(delay)
}

// unitHash maps (seed, url, n) to a uniform float in [0, 1) via FNV-1a.
func unitHash(seed int64, url string, n int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(url))
	for i := 0; i < 8; i++ {
		buf[i] = byte(n >> (8 * i))
	}
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func (p *RetryPolicy) doSleep(ctx context.Context, d time.Duration) error {
	if p != nil && p.sleep != nil {
		return p.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Error is a classified dereference failure: Retryable marks transient
// conditions (transport errors, 429/5xx, attempt timeouts) worth another
// attempt, as opposed to terminal ones (other 4xx, unparseable or oversized
// documents). RetryAfter carries a server-sent Retry-After hint.
type Error struct {
	URL        string
	Status     int // 0 on transport errors
	Retryable  bool
	RetryAfter time.Duration // 0 when the server sent no hint
	Err        error
}

// Error implements error.
func (e *Error) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("deref %s: %v", e.URL, e.Err)
	}
	return fmt.Sprintf("deref %s: status %d", e.URL, e.Status)
}

// Unwrap exposes the underlying cause.
func (e *Error) Unwrap() error { return e.Err }

// IsRetryable reports whether err is a dereference failure classified as
// transient. Errors from other sources are conservatively terminal.
func IsRetryable(err error) bool {
	var de *Error
	if errors.As(err, &de) {
		return de.Retryable
	}
	return false
}

// RetryableStatus classifies an HTTP status code: 429 (rate limit), 408
// (request timeout) and 5xx except 501 (not implemented) are transient;
// everything else — including the remaining 4xx — is terminal.
func RetryableStatus(code int) bool {
	switch {
	case code == http.StatusTooManyRequests, code == http.StatusRequestTimeout:
		return true
	case code >= 500 && code != http.StatusNotImplemented:
		return true
	}
	return false
}

// classifyTransport classifies a transport-level error from the HTTP
// client. Cancellation of the caller's context is terminal; everything
// else (connection resets, refused connections, attempt timeouts, truncated
// reads) is transient.
func classifyTransport(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		// The caller gave up; retrying would be disobedient.
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	// context.DeadlineExceeded here means the per-attempt timeout fired
	// (the parent context is still live): a stalled server, retryable.
	return true
}

// ParseRetryAfter parses a Retry-After header value: either delay-seconds
// or an HTTP-date. ok is false for absent or malformed values.
func ParseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

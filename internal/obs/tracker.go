package obs

import (
	"sync"
	"time"

	"ltqp/internal/resource"
)

// QueryTracker remembers in-flight and recently finished queries for the
// /debug/queries endpoint: what is running right now, what just ran, how
// long it took, how many solutions it produced, and (when tracing is on)
// the full span tree. All methods are nil-safe.
type QueryTracker struct {
	capacity int

	mu       sync.Mutex
	inflight map[int64]*QueryRecord
	recent   []*QueryRecord // newest first, bounded by capacity
}

// QueryRecord is one tracked query execution.
type QueryRecord struct {
	ID    int64
	Query string
	Seeds []string
	Start time.Time
	Trace *Trace

	mu      sync.Mutex
	end     time.Time
	results int
	errMsg  string
	topo    *Topology
	contrib []DocMatches
	tenant  string
	ledger  *resource.Ledger
}

// DocMatches is one document's contribution to a query's results: how many
// pattern matches used a triple sourced from it.
type DocMatches struct {
	Document string `json:"document"`
	Matches  int    `json:"matches"`
}

// NewQueryTracker returns a tracker remembering the given number of
// finished queries (minimum 1).
func NewQueryTracker(capacity int) *QueryTracker {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryTracker{capacity: capacity, inflight: map[int64]*QueryRecord{}}
}

// Start registers a query execution under the given correlation id (from
// NextQueryID; id <= 0 allocates a fresh one) and returns its record. The
// same id appears on the query's events, logs and journal lines. Nil-safe:
// a nil tracker returns a nil record whose methods no-op.
func (t *QueryTracker) Start(id int64, query string, seeds []string, trace *Trace) *QueryRecord {
	if t == nil {
		return nil
	}
	if id <= 0 {
		id = NextQueryID()
	}
	rec := &QueryRecord{
		ID:    id,
		Query: query,
		Seeds: append([]string(nil), seeds...),
		Start: time.Now(),
		Trace: trace,
	}
	t.mu.Lock()
	t.inflight[rec.ID] = rec
	t.mu.Unlock()
	return rec
}

// SetTenant records which tenant (API key / client address) the query is
// charged to, shown as the tenant column of /debug/queries.
func (r *QueryRecord) SetTenant(tenant string) {
	if r == nil || tenant == "" {
		return
	}
	r.mu.Lock()
	r.tenant = tenant
	r.mu.Unlock()
}

// Tenant returns the tenant the query was charged to ("" when untracked).
func (r *QueryRecord) Tenant() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenant
}

// AttachLedger associates the query's resource ledger with the record,
// making live and peak memory visible on /debug/queries and
// /debug/resources.
func (r *QueryRecord) AttachLedger(l *resource.Ledger) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ledger = l
	r.mu.Unlock()
}

// Ledger returns the attached resource ledger (nil when the query ran
// without accounting; a nil ledger reads as zero usage).
func (r *QueryRecord) Ledger() *resource.Ledger {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ledger
}

// AddResult notes one delivered solution.
func (r *QueryRecord) AddResult() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.results++
	r.mu.Unlock()
}

// Results returns the number of solutions delivered so far.
func (r *QueryRecord) Results() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.results
}

// AttachTopology associates the traversal topology recorded during this
// query with the record, making it visible on /debug/topology.
func (r *QueryRecord) AttachTopology(t *Topology) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.topo = t
	r.mu.Unlock()
}

// Topology returns the attached traversal topology (nil when the query ran
// without explain recording).
func (r *QueryRecord) Topology() *Topology {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.topo
}

// SetContributions records the per-document provenance tallies (how many
// pattern matches each document's triples fed).
func (r *QueryRecord) SetContributions(c []DocMatches) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.contrib = c
	r.mu.Unlock()
}

// Contributions returns the per-document provenance tallies (nil when the
// query ran without provenance).
func (r *QueryRecord) Contributions() []DocMatches {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.contrib
}

// Err returns the recorded failure message ("" when none).
func (r *QueryRecord) Err() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errMsg
}

// Duration returns the query's wall time (elapsed-so-far while running).
func (r *QueryRecord) Duration() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.end.IsZero() {
		return time.Since(r.Start)
	}
	return r.end.Sub(r.Start)
}

// Done reports whether the query has finished.
func (r *QueryRecord) Done() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.end.IsZero()
}

// Finish moves the record from in-flight to recent, noting the outcome.
func (t *QueryTracker) Finish(rec *QueryRecord, err error) {
	if t == nil || rec == nil {
		return
	}
	rec.mu.Lock()
	if rec.end.IsZero() {
		rec.end = time.Now()
	}
	if err != nil {
		rec.errMsg = err.Error()
	}
	rec.mu.Unlock()
	t.mu.Lock()
	delete(t.inflight, rec.ID)
	t.recent = append([]*QueryRecord{rec}, t.recent...)
	if len(t.recent) > t.capacity {
		t.recent = t.recent[:t.capacity]
	}
	t.mu.Unlock()
}

// InFlight returns the currently executing queries, oldest first.
func (t *QueryTracker) InFlight() []*QueryRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*QueryRecord, 0, len(t.inflight))
	for _, r := range t.inflight {
		out = append(out, r)
	}
	sortRecords(out)
	return out
}

// Recent returns finished queries, newest first.
func (t *QueryTracker) Recent() []*QueryRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*QueryRecord, len(t.recent))
	copy(out, t.recent)
	return out
}

func sortRecords(rs []*QueryRecord) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].ID < rs[j-1].ID; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

package store

import (
	"context"
	"fmt"
	"testing"

	"ltqp/internal/rdf"
)

func benchTriples(n int) []rdf.Triple {
	out := make([]rdf.Triple, n)
	for i := range out {
		out[i] = rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", i%1000)),
			rdf.NewIRI(fmt.Sprintf("http://example.org/p%d", i%10)),
			rdf.NewIRI(fmt.Sprintf("http://example.org/o%d", i)),
		)
	}
	return out
}

func BenchmarkAddThroughput(b *testing.B) {
	triples := benchTriples(10000)
	doc := rdf.NewIRI("http://example.org/doc")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, t := range triples {
			s.Add(t, doc)
		}
	}
	b.ReportMetric(float64(len(triples)), "triples/op")
}

func BenchmarkMatchNowByPredicate(b *testing.B) {
	s := New()
	doc := rdf.NewIRI("http://example.org/doc")
	for _, t := range benchTriples(10000) {
		s.Add(t, doc)
	}
	s.Close()
	pattern := rdf.NewTriple(rdf.NewVar("s"), rdf.NewIRI("http://example.org/p3"), rdf.NewVar("o"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.MatchNow(pattern); len(got) != 1000 {
			b.Fatalf("matches = %d", len(got))
		}
	}
}

func BenchmarkLiveIteratorDrain(b *testing.B) {
	s := New()
	doc := rdf.NewIRI("http://example.org/doc")
	for _, t := range benchTriples(10000) {
		s.Add(t, doc)
	}
	s.Close()
	pattern := rdf.NewTriple(rdf.NewVar("s"), rdf.NewIRI("http://example.org/p3"), rdf.NewVar("o"))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s.Match(pattern)
		n := 0
		for {
			if _, ok := it.Next(ctx); !ok {
				break
			}
			n++
		}
		it.Close()
		if n != 1000 {
			b.Fatalf("drained = %d", n)
		}
	}
}

func BenchmarkConcurrentAddAndMatch(b *testing.B) {
	// The LTQP workload: one writer (traversal) and live readers (joins).
	triples := benchTriples(5000)
	doc := rdf.NewIRI("http://example.org/doc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		pattern := rdf.NewTriple(rdf.NewVar("s"), rdf.NewIRI("http://example.org/p3"), rdf.NewVar("o"))
		done := make(chan int)
		go func() {
			it := s.Match(pattern)
			defer it.Close()
			n := 0
			for {
				if _, ok := it.Next(context.Background()); !ok {
					break
				}
				n++
			}
			done <- n
		}()
		for _, t := range triples {
			s.Add(t, doc)
		}
		s.Close()
		if n := <-done; n != 500 {
			b.Fatalf("reader saw %d", n)
		}
	}
}

package exec

import (
	"sort"
	"strings"
	"testing"
)

// conformanceCase is one table-driven evaluation check in the spirit of the
// W3C SPARQL test suite: Turtle data, a query, and the expected solutions
// rendered canonically ("?v=<term>" pairs sorted within a row, rows
// sorted).
type conformanceCase struct {
	name  string
	data  string
	query string
	want  []string // canonical rows; nil means no solutions
}

// canonicalRows renders bindings canonically for comparison.
func canonicalRows(t *testing.T, data, query string) []string {
	t.Helper()
	got := runQuery(t, data, query)
	rows := make([]string, 0, len(got))
	for _, b := range got {
		parts := make([]string, 0, b.Len())
		for _, v := range b.Vars() {
			parts = append(parts, "?"+v+"="+b[v].String())
		}
		sort.Strings(parts)
		rows = append(rows, strings.Join(parts, " "))
	}
	sort.Strings(rows)
	return rows
}

const confData = `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s1 ex:p ex:o1 ; ex:q "1"^^xsd:integer .
ex:s2 ex:p ex:o2 ; ex:q "2"^^xsd:integer ; ex:label "two"@en .
ex:s3 ex:p ex:o1 .
`

func TestConformanceSuite(t *testing.T) {
	ex := func(l string) string { return "<http://example.org/" + l + ">" }
	intLit := func(s string) string {
		return `"` + s + `"^^<http://www.w3.org/2001/XMLSchema#integer>`
	}
	cases := []conformanceCase{
		{
			name: "basic match",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ex:o1 }`,
			want: []string{"?s=" + ex("s1"), "?s=" + ex("s3")},
		},
		{
			name: "join two patterns",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s ?n WHERE { ?s ex:p ex:o1 . ?s ex:q ?n }`,
			want: []string{"?n=" + intLit("1") + " ?s=" + ex("s1")},
		},
		{
			name: "optional keeps bare row",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s ?n WHERE { ?s ex:p ex:o1 OPTIONAL { ?s ex:q ?n } }`,
			want: []string{"?n=" + intLit("1") + " ?s=" + ex("s1"), "?s=" + ex("s3")},
		},
		{
			name: "filter bound",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ex:o1 OPTIONAL { ?s ex:q ?n } FILTER(!BOUND(?n)) }`,
			want: []string{"?s=" + ex("s3")},
		},
		{
			name: "union",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { { ?s ex:p ex:o2 } UNION { ?s ex:p ex:o1 . ?s ex:q ?n } }`,
			want: []string{"?s=" + ex("s1"), "?s=" + ex("s2")},
		},
		{
			name: "lang tag preserved",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?l WHERE { ?s ex:label ?l FILTER(LANG(?l) = "en") }`,
			want: []string{`?l="two"@en`},
		},
		{
			name: "numeric filter on typed literal",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:q ?n FILTER(?n > 1) }`,
			want: []string{"?s=" + ex("s2")},
		},
		{
			name: "bind arithmetic",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?m WHERE { ex:s1 ex:q ?n BIND(?n + 10 AS ?m) }`,
			want: []string{"?m=" + intLit("11")},
		},
		{
			name: "values restricts",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { VALUES ?s { ex:s2 ex:s3 } ?s ex:p ?o }`,
			want: []string{"?s=" + ex("s2"), "?s=" + ex("s3")},
		},
		{
			name: "minus removes compatible",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ?o MINUS { ?s ex:q ?n } }`,
			want: []string{"?s=" + ex("s3")},
		},
		{
			name: "distinct collapses",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT DISTINCT ?o WHERE { ?s ex:p ?o }`,
			want: []string{"?o=" + ex("o1"), "?o=" + ex("o2")},
		},
		{
			name: "order and limit",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?n WHERE { ?s ex:q ?n } ORDER BY DESC(?n) LIMIT 1`,
			want: []string{"?n=" + intLit("2")},
		},
		{
			name: "count group",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?o (COUNT(?s) AS ?c) WHERE { ?s ex:p ?o } GROUP BY ?o`,
			want: []string{
				"?c=" + intLit("1") + " ?o=" + ex("o2"),
				"?c=" + intLit("2") + " ?o=" + ex("o1"),
			},
		},
		{
			name: "if and coalesce in projection",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT (IF(BOUND(?n), "has", "none") AS ?flag) WHERE {
  ?s ex:p ex:o1 OPTIONAL { ?s ex:q ?n }
}`,
			want: []string{`?flag="has"`, `?flag="none"`},
		},
		{
			name: "nested subquery max",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE {
  ?s ex:q ?n .
  { SELECT (MAX(?m) AS ?n) WHERE { ?x ex:q ?m } }
}`,
			want: []string{"?s=" + ex("s2")},
		},
		{
			name: "str comparison of iri",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ?o FILTER(STRENDS(STR(?o), "o2")) }`,
			want: []string{"?s=" + ex("s2")},
		},
		{
			name: "sameterm vs equals for lang",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:label ?l FILTER(SAMETERM(?l, "two"@en)) }`,
			want: []string{"?s=" + ex("s2")},
		},
		{
			name: "in with iris",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ?o FILTER(?o IN (ex:o2)) }`,
			want: []string{"?s=" + ex("s2")},
		},
		{
			name: "empty result",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ex:nothing }`,
			want: nil,
		},
		{
			name: "offset skips",
			data: confData,
			query: `PREFIX ex: <http://example.org/>
SELECT ?n WHERE { ?s ex:q ?n } ORDER BY ?n OFFSET 1`,
			want: []string{"?n=" + intLit("2")},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := canonicalRows(t, c.data, c.query)
			if len(got) != len(c.want) {
				t.Fatalf("rows = %d, want %d\ngot:  %v\nwant: %v", len(got), len(c.want), got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("row %d:\ngot:  %s\nwant: %s", i, got[i], c.want[i])
				}
			}
		})
	}
}

// TestConformanceTermIdentityVsValueEquality pins the distinction SPARQL
// draws between *term* equality (joins, DISTINCT, pattern matching — the
// boundary the dictionary encodes as ID equality) and *value* equality
// (FILTER =, comparisons). "1"^^xsd:integer and "01"^^xsd:integer denote
// the same value but are different RDF terms; "x"@EN and "x"@en are the
// same term (language tags compare case-insensitively); a plain literal and
// its xsd:string-typed spelling are the same term in RDF 1.1.
func TestConformanceTermIdentityVsValueEquality(t *testing.T) {
	ex := func(l string) string { return "<http://example.org/" + l + ">" }
	intLit := func(s string) string {
		return `"` + s + `"^^<http://www.w3.org/2001/XMLSchema#integer>`
	}
	const data = `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:q "1"^^xsd:integer .
ex:b ex:q "01"^^xsd:integer .
ex:c ex:q "1"^^xsd:integer .
ex:d ex:label "two"@EN .
ex:e ex:label "two"@en .
ex:f ex:name "x" .
ex:g ex:name "x"^^xsd:string .
ex:h ex:name "x"@en .
`
	cases := []conformanceCase{
		{
			// Joins use term equality: "1" and "01" do NOT join even though
			// they are numerically equal values.
			name: "join is term-equality not value-equality",
			data: data,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s ?t WHERE { ?s ex:q ?n . ?t ex:q ?n . FILTER(STR(?s) < STR(?t)) }`,
			want: []string{"?s=" + ex("a") + " ?t=" + ex("c")},
		},
		{
			// FILTER = uses value equality: "1" = "01" is true for
			// xsd:integer operands.
			name: "filter equals is value-equality",
			data: data,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s ?t WHERE { ?s ex:q ?m . ?t ex:q ?n .
  FILTER(?m = ?n && STR(?s) < STR(?t)) }`,
			want: []string{
				"?s=" + ex("a") + " ?t=" + ex("b"),
				"?s=" + ex("a") + " ?t=" + ex("c"),
				"?s=" + ex("b") + " ?t=" + ex("c"),
			},
		},
		{
			// DISTINCT dedupes on terms: "1" and "01" stay distinct rows.
			name: "distinct keeps lexically distinct numerals",
			data: data,
			query: `PREFIX ex: <http://example.org/>
SELECT DISTINCT ?n WHERE { ?s ex:q ?n }`,
			want: []string{"?n=" + intLit("01"), "?n=" + intLit("1")},
		},
		{
			// Language tags are case-insensitive: "two"@EN in the data and
			// "two"@en in the query are the same term, so ex:d and ex:e both
			// match a query written with the lowercase tag.
			name: "language tag case-insensitive match",
			data: data,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:label "two"@en }`,
			want: []string{"?s=" + ex("d"), "?s=" + ex("e")},
		},
		{
			name: "language tag case-insensitive join and distinct",
			data: data,
			query: `PREFIX ex: <http://example.org/>
SELECT DISTINCT ?l WHERE { ?s ex:label ?l }`,
			want: []string{`?l="two"@en`},
		},
		{
			// RDF 1.1: a plain literal IS an xsd:string literal. A pattern
			// spelled with the explicit datatype matches data spelled plain,
			// and vice versa; the @en-tagged literal stays distinct.
			name: "plain and xsd:string are one term",
			data: data,
			query: `PREFIX ex: <http://example.org/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?s WHERE { ?s ex:name "x"^^xsd:string }`,
			want: []string{"?s=" + ex("f"), "?s=" + ex("g")},
		},
		{
			name: "plain vs xsd:string distinct collapses",
			data: data,
			query: `PREFIX ex: <http://example.org/>
SELECT DISTINCT ?n WHERE { ?s ex:name ?n }`,
			want: []string{`?n="x"`, `?n="x"@en`},
		},
		{
			// Mixed-numeral ORDER BY is by value; the tie between "1" and
			// "01" keeps both rows.
			name: "order by value across lexical forms",
			data: data,
			query: `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:q ?n } ORDER BY ?n STR(?s) LIMIT 2`,
			want: []string{"?s=" + ex("a"), "?s=" + ex("b")},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := canonicalRows(t, c.data, c.query)
			if len(got) != len(c.want) {
				t.Fatalf("rows = %d, want %d\ngot:  %v\nwant: %v", len(got), len(c.want), got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("row %d:\ngot:  %s\nwant: %s", i, got[i], c.want[i])
				}
			}
		})
	}
}

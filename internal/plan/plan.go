// Package plan implements zero-knowledge query planning for link traversal
// query processing, after Hartig (ESWC 2011). Because LTQP has no prior
// statistics about the data it will discover, join orders are chosen purely
// from the syntactic shape of the query and the seed URLs:
//
//   - seed-directed: patterns mentioning a seed document are scheduled
//     first, since their matches arrive earliest during traversal;
//   - filtering: patterns with more constant positions are considered more
//     selective (subject constants strongest, then objects, then
//     predicates);
//   - dependency-respecting: each subsequent pattern must share a variable
//     with the already-planned prefix whenever possible, avoiding Cartesian
//     products;
//   - vocabulary-aware: rdf:type patterns with a constant class are
//     deprioritized — class extensions are large and unselective.
package plan

import (
	"sort"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
)

// Planner reorders join chains in a logical plan.
type Planner struct {
	// seedDocs holds the documents of the seed URLs for seed-directed
	// scoring.
	seedDocs map[string]bool
	// counts, when set (OptimizeWithCounts), overrides pattern scoring
	// with observed cardinalities.
	counts CountSource
}

// New returns a planner aware of the given seed URLs.
func New(seeds []string) *Planner {
	docs := make(map[string]bool, len(seeds))
	for _, s := range seeds {
		docs[stripFragment(s)] = true
	}
	return &Planner{seedDocs: docs}
}

func stripFragment(iri string) string {
	for i := 0; i < len(iri); i++ {
		if iri[i] == '#' {
			return iri[:i]
		}
	}
	return iri
}

// Optimize rewrites the operator tree, reordering every maximal join chain
// by the zero-knowledge heuristics. The tree is otherwise preserved.
func (p *Planner) Optimize(op algebra.Operator) algebra.Operator {
	switch x := op.(type) {
	case algebra.Join:
		leaves := collectJoinLeaves(x)
		for i, l := range leaves {
			leaves[i] = p.Optimize(l)
		}
		return p.order(leaves)
	case algebra.LeftJoin:
		return algebra.LeftJoin{Left: p.Optimize(x.Left), Right: p.Optimize(x.Right), Filters: x.Filters}
	case algebra.Union:
		return algebra.Union{Left: p.Optimize(x.Left), Right: p.Optimize(x.Right)}
	case algebra.Minus:
		return algebra.Minus{Left: p.Optimize(x.Left), Right: p.Optimize(x.Right)}
	case algebra.Filter:
		return algebra.Filter{Input: p.Optimize(x.Input), Expr: x.Expr}
	case algebra.Extend:
		return algebra.Extend{Input: p.Optimize(x.Input), Var: x.Var, Expr: x.Expr}
	case algebra.Project:
		return algebra.Project{Input: p.Optimize(x.Input), Items: x.Items}
	case algebra.Distinct:
		return algebra.Distinct{Input: p.Optimize(x.Input)}
	case algebra.Reduced:
		return algebra.Reduced{Input: p.Optimize(x.Input)}
	case algebra.OrderBy:
		return algebra.OrderBy{Input: p.Optimize(x.Input), Conds: x.Conds}
	case algebra.Slice:
		return algebra.Slice{Input: p.Optimize(x.Input), Offset: x.Offset, Limit: x.Limit}
	case algebra.Group:
		return algebra.Group{Input: p.Optimize(x.Input), By: x.By, Items: x.Items, Having: x.Having}
	default:
		return op
	}
}

// collectJoinLeaves flattens a left-deep (or arbitrary) join tree into its
// conjunctive operands.
func collectJoinLeaves(op algebra.Operator) []algebra.Operator {
	if j, ok := op.(algebra.Join); ok {
		return append(collectJoinLeaves(j.Left), collectJoinLeaves(j.Right)...)
	}
	return []algebra.Operator{op}
}

// order greedily builds a left-deep join tree: highest-scoring operand
// first, then repeatedly the highest-scoring operand connected to the
// planned prefix.
func (p *Planner) order(leaves []algebra.Operator) algebra.Operator {
	if len(leaves) == 0 {
		return algebra.Unit{}
	}
	if len(leaves) == 1 {
		return leaves[0]
	}
	type scored struct {
		op    algebra.Operator
		score int
		idx   int
	}
	remaining := make([]scored, len(leaves))
	for i, l := range leaves {
		remaining[i] = scored{op: l, score: p.score(l), idx: i}
	}
	// Stable order: by score descending, original position ascending.
	sort.SliceStable(remaining, func(i, j int) bool {
		if remaining[i].score != remaining[j].score {
			return remaining[i].score > remaining[j].score
		}
		return remaining[i].idx < remaining[j].idx
	})

	bound := map[string]bool{}
	take := func(k int) algebra.Operator {
		s := remaining[k]
		remaining = append(remaining[:k], remaining[k+1:]...)
		for _, v := range s.op.Vars() {
			bound[v] = true
		}
		return s.op
	}
	connected := func(op algebra.Operator) bool {
		for _, v := range op.Vars() {
			if bound[v] {
				return true
			}
		}
		return false
	}

	result := take(0)
	for len(remaining) > 0 {
		pick := -1
		for k := range remaining {
			if connected(remaining[k].op) {
				pick = k
				break
			}
		}
		if pick < 0 {
			// No connected operand: unavoidable Cartesian product; take the
			// best remaining.
			pick = 0
		}
		result = algebra.Join{Left: result, Right: take(pick)}
	}
	return result
}

// score rates an operand; higher runs earlier.
func (p *Planner) score(op algebra.Operator) int {
	switch x := op.(type) {
	case algebra.Values:
		// Inline data is tiny and fully bound: schedule first.
		return 100
	case algebra.Pattern:
		if p.counts != nil {
			// Adaptive scoring: fewer current matches → more selective →
			// earlier. Scores are negated counts so the greedy order
			// picks the smallest extension first.
			return -p.counts.CountNow(x.Triple)
		}
		return p.scorePattern(x.Triple)
	case algebra.PathPattern:
		s := 0
		if !x.S.IsVar() {
			s += 4
		}
		if !x.O.IsVar() {
			s += 2
		}
		// Transitive paths are expensive; nudge later.
		return s - 2
	default:
		// Complex operands (unions, subqueries) run after seed-anchored
		// patterns but participate in connectivity ordering.
		return 0
	}
}

// scorePattern applies the zero-knowledge heuristics to one triple pattern.
func (p *Planner) scorePattern(t rdf.Triple) int {
	score := 0
	if t.S.Kind == rdf.TermIRI {
		score += 4
		if p.seedDocs[stripFragment(t.S.Value)] {
			score += 8
		}
	}
	if t.O.Kind != rdf.TermVar {
		score += 3
		if t.O.Kind == rdf.TermIRI && p.seedDocs[stripFragment(t.O.Value)] {
			score += 8
		}
	}
	if t.P.Kind != rdf.TermVar {
		score++
		// Class-membership patterns are unselective: a constant-object
		// rdf:type pattern matches every instance of the class.
		if t.P.Value == rdf.RDFType && t.O.Kind != rdf.TermVar {
			score -= 4
		}
	}
	return score
}

package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("x_total", "other") != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("x_depth", "help")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", DefaultLatencyBuckets)
	c.Inc()
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must be inert")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile must be NaN")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
	m := On(nil)
	m.QueriesStarted.Inc()
	m.DerefDuration.Observe(0.1)
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-56.05) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
	// Median falls in the (0.1, 1] bucket.
	if q := h.Quantile(0.5); q < 0.1 || q > 1 {
		t.Fatalf("p50 = %v", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", DefaultLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ltqp_queries_total", "Queries started.").Add(3)
	r.Gauge("ltqp_queries_in_flight", "Now running.").Set(1)
	h := r.Histogram("ltqp_deref_duration_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ltqp_queries_total counter",
		"ltqp_queries_total 3",
		"# TYPE ltqp_queries_in_flight gauge",
		"ltqp_queries_in_flight 1",
		"# TYPE ltqp_deref_duration_seconds histogram",
		`ltqp_deref_duration_seconds_bucket{le="0.1"} 1`,
		`ltqp_deref_duration_seconds_bucket{le="1"} 2`,
		`ltqp_deref_duration_seconds_bucket{le="+Inf"} 3`,
		"ltqp_deref_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be monotone and end at _count.
	if strings.Index(out, `le="0.1"`) > strings.Index(out, `le="+Inf"`) {
		t.Error("buckets out of order")
	}
}

func TestStandardMetricsRegister(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	m.QueriesStarted.Inc()
	m.DocumentsFetched.Add(2)
	m.CacheHits.Inc()
	m.DerefDuration.Observe(0.01)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"ltqp_queries_total 1",
		"ltqp_documents_fetched_total 2",
		"ltqp_cache_hits_total 1",
		"ltqp_deref_duration_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestCounterVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ltqp_links_accepted_total", "Links by extractor.", "extractor")
	v.With("type-index").Add(3)
	v.With("ldp-container").Inc()
	// Hostile label values: quotes, backslashes, and newlines must be
	// escaped per the Prometheus text exposition format.
	v.With("weird\"quote").Inc()
	v.With(`back\slash`).Inc()
	v.With("new\nline").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ltqp_links_accepted_total counter",
		`ltqp_links_accepted_total{extractor="type-index"} 3`,
		`ltqp_links_accepted_total{extractor="ldp-container"} 1`,
		`ltqp_links_accepted_total{extractor="weird\"quote"} 1`,
		`ltqp_links_accepted_total{extractor="back\\slash"} 1`,
		`ltqp_links_accepted_total{extractor="new\nline"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE ltqp_links_accepted_total") != 1 {
		t.Error("family header repeated per child")
	}
	// A raw (unescaped) newline inside a label value would split the line.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "line\"}") {
			t.Errorf("unescaped newline leaked into exposition:\n%s", out)
		}
	}
}

func TestCounterVecNilSafe(t *testing.T) {
	var r *Registry
	v := r.CounterVec("x", "", "l")
	if v != nil {
		t.Fatal("nil registry returned non-nil vec")
	}
	v.With("a").Inc() // must not panic
	if v.With("a").Value() != 0 {
		t.Error("nil vec child counted")
	}
	// The nilMetrics path: a zero Metrics has nil vec fields.
	On(nil).LinksByExtractor.With("seed").Inc()
	On(nil).DocumentsByStatus.With("200").Inc()
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":       "plain",
		`a\b`:         `a\\b`,
		`say "hi"`:    `say \"hi\"`,
		"multi\nline": `multi\nline`,
	}
	for in, want := range cases {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

package exec

import (
	"context"
	"sync"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

// vectorizableOp reports whether an operator has a vectorized physical
// implementation. It is the single routing predicate shared by Eval and
// EvalBatch: Eval decodes the batch pipeline of a vectorizable root back
// into bindings, EvalBatch bridges a non-vectorizable child through
// rowsToBatches — the predicate being shared is what makes that mutual
// recursion terminate.
func vectorizableOp(op algebra.Operator) bool {
	switch x := op.(type) {
	case algebra.Pattern:
		// GRAPH-constrained scans consult per-triple sources through the
		// row path.
		return x.Graph.IsZero()
	case algebra.Join, algebra.Union, algebra.Distinct, algebra.Reduced, algebra.Extend:
		return true
	case algebra.Filter:
		// EXISTS gates on store completion; it stays on the row path.
		return !exprContainsExists(x.Expr)
	case algebra.Project:
		for _, item := range x.Items {
			if item.Expr != nil {
				return false
			}
		}
		return true
	}
	return false
}

// EvalBatch evaluates a logical operator into a stream of ID batches.
// Operators without a vectorized implementation (blocking operators, paths,
// VALUES, GRAPH scans) are evaluated on the row path and bridged in, so any
// plan shape runs end to end with the vectorized operators covering the
// monotonic core.
func EvalBatch(ctx context.Context, op algebra.Operator, env *Env) BatchStream {
	if env.NoVectorize || !vectorizableOp(op) {
		return rowsToBatches(ctx, env, Eval(ctx, op, env))
	}
	switch x := op.(type) {
	case algebra.Pattern:
		return tracedBatch(ctx, env, "scan", opAttrs(algebra.String(x)), func(ctx context.Context) BatchStream {
			return batchScan(ctx, x, env)
		})
	case algebra.Join:
		return tracedBatch(ctx, env, "join", nil, func(ctx context.Context) BatchStream {
			return batchJoin(ctx, env, x.Vars(), algebra.SharedVars(x.Left, x.Right),
				EvalBatch(ctx, x.Left, env), EvalBatch(ctx, x.Right, env))
		})
	case algebra.Union:
		return tracedBatch(ctx, env, "union", nil, func(ctx context.Context) BatchStream {
			return batchUnion(ctx, EvalBatch(ctx, x.Left, env), EvalBatch(ctx, x.Right, env))
		})
	case algebra.Filter:
		return batchFilter(ctx, env, x.Expr, EvalBatch(ctx, x.Input, env))
	case algebra.Extend:
		return batchExtend(ctx, env, x.Var, x.Expr, EvalBatch(ctx, x.Input, env))
	case algebra.Project:
		if len(x.Items) == 0 {
			return EvalBatch(ctx, x.Input, env)
		}
		vars := make([]string, len(x.Items))
		for i, item := range x.Items {
			vars[i] = item.Var
		}
		return batchProject(ctx, env, vars, EvalBatch(ctx, x.Input, env))
	case algebra.Distinct:
		return tracedBatch(ctx, env, "distinct", nil, func(ctx context.Context) BatchStream {
			return batchDedup(ctx, env, x.Input.Vars(), true, EvalBatch(ctx, x.Input, env))
		})
	case algebra.Reduced:
		return batchDedup(ctx, env, x.Input.Vars(), false, EvalBatch(ctx, x.Input, env))
	}
	return rowsToBatches(ctx, env, Eval(ctx, op, env))
}

// idKeyOf builds the identity key of a row from its IDs in key-variable
// order — the exact layout idKeyer.key produces from a binding, so batch
// DISTINCT/join keys and row-path keys agree.
func idKeyOf(ids []rdf.TermID) idKey {
	var out idKey
	n := len(ids)
	if n > 0 {
		out.packed = uint64(ids[0]) << 32
	}
	if n > 1 {
		out.packed |= uint64(ids[1])
	}
	if n > 2 {
		buf := make([]byte, 0, (n-2)*4)
		for _, id := range ids[2:] {
			buf = append(buf, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
		}
		out.rest = string(buf)
	}
	return out
}

// batchScan emits matches of a triple pattern as ID batches straight out of
// the store postings: no term is decoded. Each NextBatch call drains
// whatever the store holds (up to batchCap), so first results keep row
// latency while steady-state flow is batch-granular.
func batchScan(ctx context.Context, p algebra.Pattern, env *Env) BatchStream {
	out := make(chan *Batch, batchChanCap)
	vars := p.Triple.Vars()
	// pos[c] is the triple position (0=S,1=P,2=O) the c-th variable reads
	// from (its first occurrence; the store already enforced repeated-
	// variable equality).
	pos := make([]int, len(vars))
	pats := [3]rdf.Term{p.Triple.S, p.Triple.P, p.Triple.O}
	for c, v := range vars {
		for i, t := range pats {
			if t.Kind == rdf.TermVar && t.Value == v {
				pos[c] = i
				break
			}
		}
	}
	go func() {
		defer close(out)
		it := env.Store.Match(p.Triple)
		defer it.Close()
		withProv := env.Prov != nil
		ids := make([]rdf.IDTriple, batchCap)
		var srcs []rdf.TermID
		if withProv {
			srcs = make([]rdf.TermID, batchCap)
		}
		for {
			n, ok := it.NextBatch(ctx, ids, srcs)
			if !ok {
				return
			}
			b := env.getBatch(vars, withProv)
			for c := range b.cols {
				col := b.cols[c]
				switch pos[c] {
				case 0:
					for i := 0; i < n; i++ {
						col = append(col, ids[i].S)
					}
				case 1:
					for i := 0; i < n; i++ {
						col = append(col, ids[i].P)
					}
				default:
					for i := 0; i < n; i++ {
						col = append(col, ids[i].O)
					}
				}
				b.cols[c] = col
			}
			if withProv {
				for i := 0; i < n; i++ {
					src := srcs[i]
					b.prov = append(b.prov, []rdf.TermID{src})
					env.Prov.add(env.dict.Decode(src).Value)
				}
			}
			b.n = n
			if !sendBatch(ctx, out, b) {
				return
			}
		}
	}()
	return out
}

// rowReader decodes the columns an expression needs from a batch into a
// reusable scratch binding, so vectorized FILTER/BIND evaluate expressions
// without allocating a binding per row.
type rowReader struct {
	scratch rdf.Binding
	// cols/names are the schema columns the expression reads, resolved
	// against the current batch schema by bind().
	cols  []int
	names []string
	need  map[string]bool
	vars  []string // schema the cols/names resolution is valid for
}

func newRowReader(exprs ...sparql.Expression) *rowReader {
	need := map[string]bool{}
	for _, e := range exprs {
		sparql.ExprVars(e, need)
	}
	return &rowReader{scratch: make(rdf.Binding, len(need)), need: need}
}

// bind resolves the needed variables against a batch schema.
func (rr *rowReader) bind(b *Batch) {
	if sameVars(rr.vars, b.vars) {
		return
	}
	rr.vars = b.vars
	rr.cols = rr.cols[:0]
	rr.names = rr.names[:0]
	for c, v := range b.vars {
		if rr.need[v] {
			rr.cols = append(rr.cols, c)
			rr.names = append(rr.names, v)
		}
	}
}

// row materializes physical row r into the scratch binding.
func (rr *rowReader) row(env *Env, b *Batch, r int32) rdf.Binding {
	clear(rr.scratch)
	for i, c := range rr.cols {
		if id := b.cols[c][r]; id != rdf.NoTerm {
			rr.scratch[rr.names[i]] = env.dict.Decode(id)
		}
	}
	return rr.scratch
}

// compactSel narrows a batch to the rows for which keep returns true,
// rewriting the selection vector in place (reads of sel[i] always precede
// the write of slot j <= i, so aliasing the slab is safe).
func compactSel(b *Batch, keep func(r int32) bool) {
	if b.sel == nil {
		b.sel = b.selSlab()
		for r := int32(0); int(r) < b.n; r++ {
			if keep(r) {
				b.sel = append(b.sel, r)
			}
		}
		return
	}
	kept := b.sel[:0]
	for _, r := range b.sel {
		if keep(r) {
			kept = append(kept, r)
		}
	}
	b.sel = kept
}

// batchFilter applies a FILTER vectorized: per batch it evaluates the
// expression over the live rows and narrows the selection vector; the batch
// itself (columns, provenance) is forwarded untouched. Error semantics
// match the row path exactly — an evaluation error drops the row, never the
// stream.
func batchFilter(ctx context.Context, env *Env, expr sparql.Expression, in BatchStream) BatchStream {
	out := make(chan *Batch, batchChanCap)
	go func() {
		defer close(out)
		rr := newRowReader(expr)
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				rr.bind(b)
				compactSel(b, func(r int32) bool {
					v, err := evalExpr(env, expr, rr.row(env, b, r))
					if err != nil {
						return false
					}
					ok, err := v.EffectiveBooleanValue()
					return err == nil && ok
				})
				if b.Len() == 0 {
					putBatch(b)
					continue
				}
				if !sendBatch(ctx, out, b) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// batchExtend applies BIND vectorized: it appends (or updates) the target
// column in place. Row-path semantics are preserved — an evaluation error
// leaves the variable as it was, a conflicting rebind drops the row.
func batchExtend(ctx context.Context, env *Env, name string, expr sparql.Expression, in BatchStream) BatchStream {
	out := make(chan *Batch, batchChanCap)
	go func() {
		defer close(out)
		rr := newRowReader(expr)
		var extVars []string // cached extended schema, keyed by input schema
		var forVars []string
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				rr.bind(b)
				c := b.col(name)
				if c < 0 {
					// Fresh variable: extend the schema by one column.
					if !sameVars(forVars, b.vars) {
						forVars = b.vars
						extVars = append(append(make([]string, 0, len(b.vars)+1), b.vars...), name)
					}
					b.vars = extVars
					c = len(b.cols)
					b.cols = append(b.cols, b.colSlab())
					col := b.cols[c]
					for r := 0; r < b.n; r++ {
						col = append(col, rdf.NoTerm)
					}
					b.cols[c] = col
					for i := 0; i < b.Len(); i++ {
						r := b.Row(i)
						if v, err := evalExpr(env, expr, rr.row(env, b, r)); err == nil {
							col[r] = env.dict.Intern(v)
						}
					}
				} else {
					// Variable may already be bound: equal value keeps the
					// row, different value drops it, unbound gets set;
					// evaluation errors keep the row unchanged.
					col := b.cols[c]
					compactSel(b, func(r int32) bool {
						v, err := evalExpr(env, expr, rr.row(env, b, r))
						if err != nil {
							return true
						}
						id := env.dict.Intern(v)
						switch col[r] {
						case rdf.NoTerm:
							col[r] = id
							return true
						case id:
							return true
						default:
							return false
						}
					})
				}
				if b.Len() == 0 {
					putBatch(b)
					continue
				}
				if !sendBatch(ctx, out, b) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// batchProject narrows batches to the projected variables by gathering the
// kept columns into a fresh batch (whole-slab copies when no selection
// vector is set). SELECT * is a passthrough, as on the row path.
func batchProject(ctx context.Context, env *Env, vars []string, in BatchStream) BatchStream {
	out := make(chan *Batch, batchChanCap)
	go func() {
		defer close(out)
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				src := schemaMap(b.vars, vars)
				nb := env.getBatch(vars, b.prov != nil)
				if b.sel == nil {
					for c, j := range src {
						if j >= 0 {
							nb.cols[c] = append(nb.cols[c], b.cols[j]...)
						} else {
							for r := 0; r < b.n; r++ {
								nb.cols[c] = append(nb.cols[c], rdf.NoTerm)
							}
						}
					}
					if nb.prov != nil {
						nb.prov = append(nb.prov, b.prov[:b.n]...)
					}
					nb.n = b.n
				} else {
					for c, j := range src {
						col := nb.cols[c]
						for _, r := range b.sel {
							if j >= 0 {
								col = append(col, b.cols[j][r])
							} else {
								col = append(col, rdf.NoTerm)
							}
						}
						nb.cols[c] = col
					}
					if nb.prov != nil {
						for _, r := range b.sel {
							nb.prov = append(nb.prov, b.prov[r])
						}
					}
					nb.n = len(b.sel)
				}
				putBatch(b)
				if nb.Len() == 0 {
					putBatch(nb)
					continue
				}
				if !sendBatch(ctx, out, nb) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// batchDedup implements DISTINCT (global seen-set) and REDUCED (consecutive
// duplicates only) over batches by narrowing the selection vector; rows are
// keyed by their IDs over the input operator's variable set, matching the
// row-path keyer layout bit for bit.
func batchDedup(ctx context.Context, env *Env, keyVars []string, distinct bool, in BatchStream) BatchStream {
	out := make(chan *Batch, batchChanCap)
	go func() {
		defer close(out)
		var seen map[idKey]bool
		if distinct {
			seen = map[idKey]bool{}
		}
		var last idKey
		first := true
		ids := make([]rdf.TermID, len(keyVars))
		var cols []int
		var forVars []string
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				if !sameVars(forVars, b.vars) {
					forVars = b.vars
					cols = schemaMap(b.vars, keyVars)
				}
				compactSel(b, func(r int32) bool {
					for i, c := range cols {
						if c >= 0 {
							ids[i] = b.cols[c][r]
						} else {
							ids[i] = rdf.NoTerm
						}
					}
					key := idKeyOf(ids)
					if distinct {
						if seen[key] {
							return false
						}
						seen[key] = true
						return true
					}
					if !first && key == last {
						return false
					}
					first = false
					last = key
					return true
				})
				if b.Len() == 0 {
					putBatch(b)
					continue
				}
				if !sendBatch(ctx, out, b) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// batchUnion forwards the batches of both operands into one stream. Batches
// keep their own schemas; downstream operators resolve schemas per batch.
func batchUnion(ctx context.Context, left, right BatchStream) BatchStream {
	out := make(chan *Batch, batchChanCap)
	var wg sync.WaitGroup
	forward := func(in BatchStream) {
		defer wg.Done()
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				if !sendBatch(ctx, out, b) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}
	wg.Add(2)
	go forward(left)
	go forward(right)
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

package serve

import (
	"fmt"
	"testing"
)

func TestResultKeyNormalizesWhitespace(t *testing.T) {
	a := ResultKey("SELECT ?s WHERE { ?s ?p ?o }", nil, 0)
	b := ResultKey("  SELECT   ?s\n WHERE {\t?s ?p ?o }  ", nil, 0)
	if a != b {
		t.Fatal("whitespace variants must share a key")
	}
	if a == ResultKey("SELECT ?x WHERE { ?x ?p ?o }", nil, 0) {
		t.Fatal("different queries must not collide")
	}
}

func TestResultKeySeedOrderInsensitive(t *testing.T) {
	a := ResultKey("q", []string{"http://a", "http://b"}, 0)
	b := ResultKey("q", []string{"http://b", "http://a"}, 0)
	if a != b {
		t.Fatal("seed order must not matter")
	}
	if a == ResultKey("q", []string{"http://a"}, 0) {
		t.Fatal("different seed sets must not collide")
	}
}

func TestResultKeyEpochInvalidates(t *testing.T) {
	if ResultKey("q", nil, 0) == ResultKey("q", nil, 1) {
		t.Fatal("epoch bump must change the key")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := NewResultCache(2, nil)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // refresh a
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry survived past capacity")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestResultCacheNilSafe(t *testing.T) {
	var c *ResultCache
	c.Put("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache must miss")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache must be empty")
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := NewResultCache(32, nil)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*i)%48)
				c.Put(key, i)
				c.Get(key)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 32 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}

package linkqueue

// Concurrency tests for the link queue disciplines. The traversal loop has
// up to MaxConcurrent workers pushing freshly extracted links while the
// dispatcher pops — these tests drive both queues from many producers and
// consumers at once and are meant to run under -race.

import (
	"fmt"
	"sync"
	"testing"
)

// hammer drives the queue with producers pushes and consumers pops running
// concurrently, returning every link the consumers saw.
func hammer(t *testing.T, q Queue, producers, perProducer, consumers int) []Link {
	t.Helper()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(Link{
					URL:    fmt.Sprintf("http://h/p%d/doc%d", p, i),
					Reason: "seed",
				})
				// Duplicate pushes from a racing producer must be
				// dropped exactly once overall.
				q.Push(Link{URL: fmt.Sprintf("http://h/shared/doc%d", i), Reason: "ldp-container"})
			}
		}()
	}

	var mu sync.Mutex
	var popped []Link
	done := make(chan struct{})
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				l, ok := q.Pop()
				if !ok {
					select {
					case <-done:
						if l, ok := q.Pop(); ok { // drain stragglers
							mu.Lock()
							popped = append(popped, l)
							mu.Unlock()
							continue
						}
						return
					default:
						continue
					}
				}
				mu.Lock()
				popped = append(popped, l)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	return popped
}

func checkHammer(t *testing.T, q Queue, popped []Link, producers, perProducer int) {
	t.Helper()
	want := producers*perProducer + perProducer // distinct URLs: per-producer + shared
	if len(popped) != want {
		t.Fatalf("popped %d links, want %d", len(popped), want)
	}
	seen := map[string]bool{}
	for _, l := range popped {
		if seen[l.URL] {
			t.Fatalf("URL %s popped twice", l.URL)
		}
		seen[l.URL] = true
	}
	if q.Seen() != want {
		t.Errorf("Seen() = %d, want %d", q.Seen(), want)
	}
	if q.Len() != 0 {
		t.Errorf("Len() = %d after drain", q.Len())
	}
}

func TestFIFOConcurrent(t *testing.T) {
	q := NewFIFO()
	popped := hammer(t, q, 8, 200, 4)
	checkHammer(t, q, popped, 8, 200)
}

func TestPriorityConcurrent(t *testing.T) {
	q := NewPriority(nil)
	popped := hammer(t, q, 8, 200, 4)
	checkHammer(t, q, popped, 8, 200)
}

func TestConcurrentPushUniqueAcceptance(t *testing.T) {
	// Many goroutines race to push the same URL: exactly one Push may
	// report acceptance.
	for name, q := range map[string]Queue{"fifo": NewFIFO(), "priority": NewPriority(nil)} {
		q := q
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			accepted := make(chan bool, 64)
			for i := 0; i < 64; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					accepted <- q.Push(Link{URL: "http://h/contended", Reason: "match"})
				}()
			}
			wg.Wait()
			close(accepted)
			n := 0
			for ok := range accepted {
				if ok {
					n++
				}
			}
			if n != 1 {
				t.Errorf("accepted %d times, want exactly 1", n)
			}
		})
	}
}

package rdf

import (
	"math/rand"
	"reflect"
)

// randomTerm generates a random term for property-based tests. It is shared
// by the quick.Config generators in this package.
func randomTerm(r *rand.Rand) Term {
	letters := func(n int) string {
		b := make([]byte, 1+r.Intn(n))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return string(b)
	}
	switch r.Intn(4) {
	case 0:
		return NewIRI("http://example.org/" + letters(8))
	case 1:
		switch r.Intn(3) {
		case 0:
			return NewLiteral(letters(10))
		case 1:
			return Integer(int64(r.Intn(1000) - 500))
		default:
			return NewLangLiteral(letters(6), []string{"en", "fr", "nl"}[r.Intn(3)])
		}
	case 2:
		return NewBlank("b" + letters(4))
	default:
		return NewVar(letters(3))
	}
}

// randomGroundTerm generates a random non-variable term.
func randomGroundTerm(r *rand.Rand) Term {
	for {
		t := randomTerm(r)
		if t.Kind != TermVar {
			return t
		}
	}
}

// randomTermPair fills two Term values for quick.Check functions of
// signature func(a, b Term) bool.
func randomTermPair(values []reflect.Value, r *rand.Rand) {
	values[0] = reflect.ValueOf(randomTerm(r))
	values[1] = reflect.ValueOf(randomTerm(r))
}

// randomTriple generates a random ground triple.
func randomTriple(r *rand.Rand) Triple {
	return Triple{S: randomGroundTerm(r), P: NewIRI("http://example.org/p" + string(rune('a'+r.Intn(5)))), O: randomGroundTerm(r)}
}

package sparql

import (
	"strings"
	"testing"

	"ltqp/internal/rdf"
)

func TestParseDescribeForms(t *testing.T) {
	q := mustParseQuery(t, `DESCRIBE <http://a> <http://b>`)
	if q.Form != FormDescribe || len(q.Describe) != 2 {
		t.Errorf("describe = %#v", q.Describe)
	}
	q = mustParseQuery(t, `PREFIX ex: <http://example.org/>
DESCRIBE ex:thing`)
	if q.Describe[0] != rdf.NewIRI("http://example.org/thing") {
		t.Errorf("prefixed describe = %v", q.Describe[0])
	}
	q = mustParseQuery(t, `DESCRIBE ?x WHERE { ?x a <http://C> }`)
	if len(q.Describe) != 1 || !q.Describe[0].IsVar() {
		t.Errorf("var describe = %#v", q.Describe)
	}
	q = mustParseQuery(t, `DESCRIBE * WHERE { ?x ?p ?o }`)
	if len(q.Describe) != 0 {
		t.Errorf("DESCRIBE * should have empty list: %#v", q.Describe)
	}
	if _, err := ParseQuery(`DESCRIBE`); err == nil {
		t.Error("bare DESCRIBE should fail")
	}
}

func TestParseDollarVariables(t *testing.T) {
	q := mustParseQuery(t, `SELECT $x WHERE { $x ?p ?o }`)
	if q.Projection[0].Var != "x" {
		t.Errorf("projection = %#v", q.Projection)
	}
}

func TestParseLongStringsAndEscapes(t *testing.T) {
	q := mustParseQuery(t, `SELECT ?x WHERE {
  ?x ?p """multi
line with "quotes" inside""" .
  ?x ?q 'single' .
  ?x ?r "tab\tnewline\nunicodeé\U0001F600" .
}`)
	bgp := firstBGP(t, q)
	if o := bgp.Patterns[0].O; !strings.Contains(o.Value, "\"quotes\"") {
		t.Errorf("long string = %q", o.Value)
	}
	if o := bgp.Patterns[2].O; !strings.Contains(o.Value, "\t") || !strings.Contains(o.Value, "é") || !strings.Contains(o.Value, "😀") {
		t.Errorf("escapes = %q", o.Value)
	}
}

func TestParseNumericLiteralForms(t *testing.T) {
	q := mustParseQuery(t, `SELECT ?x WHERE { ?x ?p ?o FILTER(?o IN (3, 3.25, 4e2, -7, +8, -2.5)) }`)
	var in ExprIn
	for _, e := range q.Where.Elements {
		if f, ok := e.(FilterPattern); ok {
			in = f.Expr.(ExprIn)
		}
	}
	dts := []string{rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble}
	for i, want := range dts {
		term := in.List[i].(ExprTerm).Term
		if term.Datatype != want {
			t.Errorf("item %d datatype = %s, want %s", i, term.Datatype, want)
		}
	}
	// Signed numbers arrive as unary expressions or signed literals.
	if len(in.List) != 6 {
		t.Errorf("list = %d", len(in.List))
	}
}

func TestParseCommentsInQuery(t *testing.T) {
	q := mustParseQuery(t, `
# leading comment
SELECT ?x # trailing
WHERE {
  ?x ?p ?o . # in group
}`)
	if len(q.Projection) != 1 {
		t.Error("comment handling broke the query")
	}
}

func TestParseGroupByExprAs(t *testing.T) {
	q := mustParseQuery(t, `
SELECT ?y (COUNT(*) AS ?n) WHERE { ?x ?p ?o }
GROUP BY (STRLEN(STR(?x)) AS ?y)`)
	if len(q.GroupBy) != 1 || q.GroupBy[0].Var != "y" || q.GroupBy[0].Expr == nil {
		t.Errorf("group by = %#v", q.GroupBy)
	}
}

func TestParseOrderByBuiltinCall(t *testing.T) {
	q := mustParseQuery(t, `SELECT ?x WHERE { ?x ?p ?o } ORDER BY STRLEN(STR(?x)) DESC(?x)`)
	if len(q.OrderBy) != 2 {
		t.Fatalf("order by = %#v", q.OrderBy)
	}
	if _, ok := q.OrderBy[0].Expr.(ExprCall); !ok {
		t.Errorf("first cond = %#v", q.OrderBy[0])
	}
}

func TestParseNegatedSingleIRI(t *testing.T) {
	q := mustParseQuery(t, `PREFIX ex: <http://example.org/>
SELECT ?o WHERE { ?s !ex:p ?o }`)
	bgp := firstBGP(t, q)
	neg, ok := bgp.Patterns[0].Path.(PathNegated)
	if !ok || len(neg.Forward) != 1 || neg.Forward[0] != "http://example.org/p" {
		t.Errorf("negated = %#v", bgp.Patterns[0].Path)
	}
	// 'a' inside a negated set.
	q = mustParseQuery(t, `SELECT ?o WHERE { ?s !(a) ?o }`)
	neg = firstBGP(t, q).Patterns[0].Path.(PathNegated)
	if neg.Forward[0] != rdf.RDFType {
		t.Errorf("negated a = %#v", neg)
	}
}

func TestParseCollectionSubject(t *testing.T) {
	q := mustParseQuery(t, `PREFIX ex: <http://example.org/>
SELECT * WHERE { (1 2) ex:p ?o }`)
	bgp := firstBGP(t, q)
	// 4 list triples + the main pattern.
	if len(bgp.Patterns) != 5 {
		t.Errorf("patterns = %d", len(bgp.Patterns))
	}
}

func TestParseEmptyGroupAndNestedGroups(t *testing.T) {
	q := mustParseQuery(t, `ASK {}`)
	if len(q.Where.Elements) != 0 {
		t.Errorf("empty group = %#v", q.Where.Elements)
	}
	q = mustParseQuery(t, `SELECT * WHERE { { ?a ?b ?c } { ?c ?d ?e } }`)
	if len(q.Where.Elements) != 2 {
		t.Errorf("nested groups = %d", len(q.Where.Elements))
	}
}

func TestParseAnonBlankInPattern(t *testing.T) {
	q := mustParseQuery(t, `PREFIX ex: <http://example.org/>
SELECT ?n WHERE { [] ex:name ?n . [ ex:age 5 ] ex:name ?m . }`)
	bgp := firstBGP(t, q)
	if len(bgp.Patterns) != 3 {
		t.Fatalf("patterns = %d", len(bgp.Patterns))
	}
	if !bgp.Patterns[0].S.IsBlank() {
		t.Errorf("anon subject = %v", bgp.Patterns[0].S)
	}
}

func TestParseFilterBareBuiltin(t *testing.T) {
	// FILTER EXISTS / FILTER REGEX(...) without outer parens.
	q := mustParseQuery(t, `PREFIX ex: <http://example.org/>
SELECT ?x WHERE {
  ?x ex:p ?o
  FILTER REGEX(STR(?o), "a")
  FILTER EXISTS { ?x ex:q ?z }
}`)
	n := 0
	for _, e := range q.Where.Elements {
		if _, ok := e.(FilterPattern); ok {
			n++
		}
	}
	if n != 2 {
		t.Errorf("filters = %d", n)
	}
}

func TestParseSameSubjectContinuation(t *testing.T) {
	// Semicolon-separated predicates where a later verb is a path.
	q := mustParseQuery(t, `PREFIX ex: <http://example.org/>
SELECT * WHERE { ?x ex:a ?b ; ex:c/ex:d ?e ; ^ex:f ?g . }`)
	bgp := firstBGP(t, q)
	if len(bgp.Patterns) != 3 {
		t.Fatalf("patterns = %d", len(bgp.Patterns))
	}
	if _, ok := bgp.Patterns[1].Path.(PathSequence); !ok {
		t.Errorf("path = %#v", bgp.Patterns[1].Path)
	}
	if _, ok := bgp.Patterns[2].Path.(PathInverse); !ok {
		t.Errorf("inverse = %#v", bgp.Patterns[2].Path)
	}
}

func TestParseMoreErrors(t *testing.T) {
	cases := []string{
		`SELECT ?x WHERE { ?x ?p "unterminated }`,
		`SELECT ?x WHERE { ?x ?p ?o } GROUP BY`,
		`SELECT ?x WHERE { ?x ?p ?o } HAVING`,
		`SELECT ?x WHERE { ?x ?p ?o } ORDER BY`,
		`SELECT ?x WHERE { ?x ?p ?o } LIMIT abc`,
		`SELECT ?x WHERE { ?x ?p ?o FILTER(?x IN 3) }`,
		`SELECT (COUNT(?x) AS) WHERE { ?x ?p ?o }`,
		`SELECT ?x WHERE { ?x <http://p>^^ ?o }`,
		`SELECT ?x WHERE { ?x !(<http://p> ?o }`,
		`PREFIX SELECT ?x WHERE {}`,
		`BASE SELECT ?x WHERE {}`,
		`SELECT ?x WHERE { GRAPH { ?s ?p ?o } }`,
		`SELECT ?x WHERE { BIND(1 AS 2) }`,
		`SELECT ?x WHERE { VALUES ?x { "a" `,
		`SELECT ?x WHERE { ?x ?p "lit"^^"notiri" }`,
		`CONSTRUCT { ?x ?p } WHERE { ?x ?p ?o }`,
	}
	for _, c := range cases {
		if _, err := ParseQuery(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestParseStringEscapeErrors(t *testing.T) {
	cases := []string{
		`SELECT ?x WHERE { ?x ?p "bad\qescape" }`,
		`SELECT ?x WHERE { ?x ?p "trunc\u00" }`,
		`SELECT ?x WHERE { ?x ?p "badhex\u00zz" }`,
		"SELECT ?x WHERE { ?x ?p \"newline\nin short\" }",
	}
	for _, c := range cases {
		if _, err := ParseQuery(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestParseProjectionExprWithoutParens(t *testing.T) {
	// (expr AS ?v) requires parens; a bare expression fails.
	if _, err := ParseQuery(`SELECT COUNT(?x) WHERE { ?x ?p ?o }`); err == nil {
		t.Error("bare aggregate in projection should fail")
	}
}

func TestParseFromClauses(t *testing.T) {
	q := mustParseQuery(t, `
SELECT ?s FROM <https://pods.example/alice/profile/card>
FROM NAMED <https://pods.example/bob/profile/card>
WHERE { ?s ?p ?o }`)
	if len(q.From) != 2 {
		t.Fatalf("From = %v", q.From)
	}
	seeds := q.MentionedIRIs()
	found := 0
	for _, s := range seeds {
		if strings.HasSuffix(s, "/profile/card") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("FROM documents should become seeds: %v", seeds)
	}
	// ASK and CONSTRUCT forms too.
	q = mustParseQuery(t, `ASK FROM <https://x.example/doc> { ?s ?p ?o }`)
	if len(q.From) != 1 {
		t.Errorf("ASK From = %v", q.From)
	}
	q = mustParseQuery(t, `CONSTRUCT { ?s ?p ?o } FROM <https://x.example/doc> WHERE { ?s ?p ?o }`)
	if len(q.From) != 1 {
		t.Errorf("CONSTRUCT From = %v", q.From)
	}
	if _, err := ParseQuery(`SELECT ?s FROM ?var WHERE { ?s ?p ?o }`); err == nil {
		t.Error("FROM with a variable should fail")
	}
}

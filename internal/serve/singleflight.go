package serve

import (
	"context"
	"errors"

	"ltqp/internal/deref"
	"ltqp/internal/obs"
)

// flight is one in-progress upstream fetch that concurrent callers of the
// same key share. The leader runs fn and closes done; followers block on
// done (or their own context) and read the outcome.
type flight struct {
	done chan struct{}
	res  *deref.Result
	err  error
	// live asserts the singleflight invariant: at most one flight per key
	// executes its fetch at any moment (see SharedCache.duplicateInflight).
	live bool
}

// do runs fn under singleflight for key. The second return reports whether
// this caller shared another flight's outcome (joined as a follower) —
// those count as dedups and, on success, as cache hits for the caller's
// accounting, since no network request of their own was issued.
//
// A follower never inherits its leader's context: if the follower's own ctx
// dies while waiting, it returns that error; if the leader died of context
// cancellation while the follower is still alive, the caller (Dereference)
// retries the key so the follower becomes the new leader.
func (c *SharedCache) do(ctx context.Context, key string, fn func() (*deref.Result, error)) (*deref.Result, bool, error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		if f.live {
			// invariant holds: we join rather than fetch
			c.mu.Unlock()
			c.dedups.Add(1)
			obs.On(c.obs).SingleflightDedups.Inc()
			select {
			case <-f.done:
				return f.res, true, f.err
			case <-ctx.Done():
				return nil, true, ctx.Err()
			}
		}
		// A completed flight still in the map is a bookkeeping bug; count
		// it rather than fetch twice silently.
		c.duplicateInflight.Add(1)
	}
	f := &flight{done: make(chan struct{}), live: true}
	c.flights[key] = f
	c.mu.Unlock()

	f.res, f.err = fn()

	c.mu.Lock()
	f.live = false
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)

	return f.res, false, f.err
}

// isContextErr reports whether err is context cancellation or deadline
// expiry — the one class of leader failure a still-alive follower should
// not inherit.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

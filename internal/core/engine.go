// Package core implements the paper's primary contribution: a link
// traversal SPARQL query engine for the Solid decentralized environment.
//
// The engine wires together the components of the paper's Fig. 1: a link
// queue initialized with seed URLs, a pool of dereferencers that fetch and
// parse documents, link extractors that append newly discovered links to
// the queue, and a continuously growing internal triple source over which a
// pipelined iterator network evaluates the query — producing results while
// traversal is still in flight. Query planning uses the zero-knowledge
// technique (no prior statistics), and seed URLs may be user-provided or
// derived from IRIs mentioned in the query ("query-based seed selection").
package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"ltqp/internal/algebra"
	"ltqp/internal/deref"
	"ltqp/internal/exec"
	"ltqp/internal/extract"
	"ltqp/internal/linkqueue"
	"ltqp/internal/metrics"
	"ltqp/internal/obs"
	"ltqp/internal/plan"
	"ltqp/internal/rdf"
	"ltqp/internal/resource"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
)

// DefaultMaxConcurrent mirrors a browser's per-host connection budget, the
// environment the paper demonstrates in.
const DefaultMaxConcurrent = 6

// Options configures an Engine.
type Options struct {
	// Client is the HTTP client used for dereferencing; nil means
	// http.DefaultClient. Tests and the simulated environment inject the
	// pod server's client here.
	Client *http.Client
	// Auth, when non-nil, makes the engine query on behalf of an agent:
	// its credentials accompany every dereference, unlocking documents
	// behind access control.
	Auth *deref.Credentials
	// Extractors builds the link extraction strategy for a query shape.
	// Nil means extract.DefaultSolidSet (the paper's configuration).
	Extractors func(shape *extract.QueryShape) []extract.Extractor
	// NewQueue constructs the link queue; nil means QueuePolicy decides.
	// Takes precedence over QueuePolicy when set (tests inject custom
	// disciplines here).
	NewQueue func() linkqueue.Queue
	// QueuePolicy selects the link-queue discipline: FIFO (the default and
	// the differential-testing oracle), reason-ranked, or guided (query-
	// relevance scoring with per-origin round-robin fairness). Ordering
	// never changes the answer set — only how soon answers arrive and how
	// many documents are dereferenced on the way.
	QueuePolicy linkqueue.Policy
	// Limits configures the traversal defenses: per-origin budgets, the
	// scope allowlist, fanout/queue caps, and oversized/slow-body
	// cutoffs. The zero value disables all of them.
	Limits Limits
	// Cache, when non-nil, is a document cache shared by all queries of
	// this engine: repeated dereferences of a pod document are served
	// locally, like the browser disk cache visible in the paper's Fig. 4.
	Cache *deref.Cache
	// MaxConcurrent bounds parallel dereferences (default 6).
	MaxConcurrent int
	// MaxDocuments caps traversal (0 = unbounded). A safety valve for
	// exhaustive strategies such as cAll.
	MaxDocuments int
	// MaxDepth caps traversal depth: links discovered more than MaxDepth
	// hops from a seed are not followed (0 = unbounded). Depth-bounded
	// reachability is a classic LTQP completeness/cost trade-off.
	MaxDepth int
	// Lenient makes traversal tolerate fetch/parse failures, mirroring
	// the --lenient flag of the paper's CLI (Fig. 2). Non-lenient
	// traversal aborts the query on the first failure. Degradation()
	// reports what a lenient execution ran without.
	Lenient bool
	// Retry, when non-nil, retries transient dereference failures
	// (transport errors, 429/5xx, stalled responses) with capped
	// exponential backoff before giving up on a document. Nil means a
	// single attempt — every failure is immediately terminal.
	Retry *deref.RetryPolicy
	// Adaptive enables restart-based adaptive re-planning (the paper's
	// §5 future-work direction): once AdaptiveWarmupDocs documents have
	// been traversed, the join order is re-derived from observed pattern
	// cardinalities and the pipeline restarted if it changed. Queries
	// with LIMIT/OFFSET always run non-adaptively.
	Adaptive bool
	// AdaptiveWarmupDocs is the warmup document count (default 12).
	AdaptiveWarmupDocs int
	// Obs, when non-nil, aggregates process-level metrics across every
	// query of this engine (counters, gauges, latency histograms with
	// Prometheus exposition) and registers executions with the query
	// tracker behind /debug/queries. Nil disables all of it at zero
	// cost on the hot paths.
	Obs *obs.Observer
	// Trace records a span tree per query (parse → plan → per-document
	// dereference attempts → link extraction → join/iterator stages)
	// even without an Observer; Execution.Trace returns it. Tracing is
	// also enabled when Obs.TraceQueries is set.
	Trace bool
	// Events, when non-nil, publishes the engine's ordered event stream —
	// query lifecycle, pipeline stages, dereferences, link discovery and
	// pruning, retries, result arrival — to whoever subscribes (the SSE
	// feed, the slog adapter, the JSONL journal). With no subscriber
	// attached, publishing is a nil check plus one atomic load: the hot
	// path performs zero allocations (benchmarked in internal/obs).
	Events *obs.Bus
	// Shared, when non-nil, layers a cross-engine shared document cache
	// (internal/serve.SharedCache) under every dereference: fresh entries
	// skip the network, stale entries revalidate with conditional GETs,
	// and concurrent fetches of one IRI collapse to a single flight. It
	// takes precedence over Cache.
	Shared deref.SharedCache
	// ExecWorkers sizes the executor's morsel worker pool (parallel join
	// probes and grouping); 0 means GOMAXPROCS.
	ExecWorkers int
	// Explain enables the per-query explain layer: every solution is
	// annotated with the exact set of documents whose triples produced it
	// (result provenance), and traversal records its link-discovery
	// topology — a node per dereferenced document, an edge per discovered
	// link labeled with the extractor that found it and whether it was
	// followed, deduplicated, or pruned — plus the result-arrival
	// timeline. Execution.Explain exports the report; when an Observer is
	// attached, the topology also appears on /debug/topology. Off by
	// default: the disabled path adds one nil check per pattern match and
	// zero allocations.
	Explain bool
	// MemBudget caps one query's ledger-accounted memory in bytes (0 =
	// unlimited). A query whose live charges cross the budget is cancelled
	// with a *resource.BudgetExceededError carrying the full per-layer
	// breakdown; sibling queries on the same engine are unaffected. A
	// positive budget enables the resource ledger even without an Observer.
	MemBudget int64
}

// Engine executes SPARQL queries over Solid pods by link traversal.
type Engine struct {
	opts Options
	// dict is the engine-scoped term dictionary: parsers, the document
	// cache, and every per-query store intern into it, so term IDs are
	// stable across queries and repeated documents cost no new string
	// allocations.
	dict *rdf.Dict
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = DefaultMaxConcurrent
	}
	return &Engine{opts: opts, dict: rdf.NewDict()}
}

// Execution is a running query. Results stream on Results while traversal
// and execution proceed concurrently; the channel closes when the query
// completes (or the context is cancelled). After the channel closes, Err
// reports a traversal failure (always nil under Lenient).
type Execution struct {
	// Query is the parsed query.
	Query *sparql.Query
	// Vars are the projected variable names, in projection order.
	Vars []string
	// Results streams the solutions.
	Results <-chan rdf.Binding
	// Recorder captures the HTTP waterfall and result timings.
	Recorder *metrics.Recorder
	// Seeds are the seed URLs traversal started from.
	Seeds []string
	// Plan is the optimized logical plan (for EXPLAIN-style output).
	Plan algebra.Operator

	cancel      context.CancelFunc
	id          int64
	mu          sync.Mutex
	err         error
	store       *store.Store
	adaptedPlan algebra.Operator
	trace       *obs.Trace
	prov        *exec.Prov
	topo        *obs.Topology
	ledger      *resource.Ledger
	queryStr    string
	start       time.Time
	queuePolicy linkqueue.Policy
}

// ID returns the query's correlation id: the same id appears on the
// query's events, journal lines, structured log records and the
// /debug/queries tracker, so one execution can be followed across every
// observability surface.
func (x *Execution) ID() int64 { return x.id }

// Trace returns the execution's span tree, or nil when tracing is off. The
// tree is complete once Results has closed.
func (x *Execution) Trace() *obs.Trace { return x.trace }

// Topology returns the traversal topology recorder, or nil when the engine
// ran without Options.Explain. Complete once Results has closed.
func (x *Execution) Topology() *obs.Topology { return x.topo }

// Prov returns the provenance sink, or nil when the engine ran without
// Options.Explain.
func (x *Execution) Prov() *exec.Prov { return x.prov }

// Resources returns the query's resource-ledger snapshot — live and peak
// bytes per layer, budget state — or nil when the engine ran without
// accounting (no Observer and no MemBudget). Final once Results has closed;
// calling earlier returns the in-flight state.
func (x *Execution) Resources() *resource.Snapshot { return x.ledger.Snapshot() }

// Err returns the traversal error, if any. Valid after Results closes.
func (x *Execution) Err() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.err
}

func (x *Execution) setErr(err error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.err == nil {
		x.err = err
	}
}

// Close aborts the execution. It is safe to call multiple times.
func (x *Execution) Close() { x.cancel() }

// StoreSize reports how many triples traversal has accumulated so far.
func (x *Execution) StoreSize() int { return x.store.Len() }

// Degradation reports how far the execution ran short of the fault-free
// ideal: documents abandoned after exhausting their retries, and the retry
// count. Under Lenient these losses are otherwise silent — a caller that
// cares whether results are partial should inspect this after Results
// closes.
func (x *Execution) Degradation() metrics.Degradation {
	return x.Recorder.Degradation()
}

// CriticalPath attributes the execution's latency to its gating
// dereference chains; nil before any request was recorded. When the query
// ran with Explain, the first result's provenance pins the gating document
// exactly; otherwise the latest-finishing successful fetch before the
// first result stands in.
func (x *Execution) CriticalPath() *obs.CritPath {
	reqs := x.Recorder.Requests()
	if len(reqs) == 0 {
		return nil
	}
	var firstSources []string
	if x.topo != nil {
		firstSources = x.topo.FirstResultSources()
	}
	return obs.ComputeCritPath(reqs, x.Recorder.Epoch(), x.Recorder.ResultTimes(), firstSources)
}

// Query parses and starts a query. Seed URLs are taken from seeds; when
// empty, they are derived from IRIs mentioned in the query.
func (e *Engine) Query(ctx context.Context, queryStr string, seeds []string) (*Execution, error) {
	qid := obs.NextQueryID()
	qctx := obs.ContextWithQueryID(ctx, qid)
	emitter := e.opts.Events.ForQuery(qid)
	var trace *obs.Trace
	if e.opts.Trace || (e.opts.Obs != nil && e.opts.Obs.TraceQueries) {
		qctx, trace = obs.NewTrace(qctx, "query", obs.Str("query", compactQuery(queryStr)))
	}

	stage := func(name string) func() {
		emitter.Emit(obs.Event{Kind: obs.EventStageStarted, Stage: name})
		start := time.Now()
		return func() {
			emitter.Emit(obs.Event{Kind: obs.EventStageFinished, Stage: name,
				DurationUS: time.Since(start).Microseconds()})
		}
	}

	t0 := time.Now()
	_, parseSpan := obs.StartSpan(qctx, "parse")
	q, err := sparql.ParseQuery(queryStr)
	if err != nil {
		parseSpan.End()
		return nil, err
	}
	if len(seeds) == 0 {
		seeds = q.MentionedIRIs()
	}
	parseSpan.End()
	parseDur := time.Since(t0)
	if len(seeds) == 0 {
		return nil, errors.New("core: no seed URLs: provide seeds or mention IRIs in the query")
	}
	// query_started is always a query's first event; the parse stage pair
	// is emitted retroactively (with explicit timestamps) once the seeds
	// it produced are known. A query that fails before this point emits
	// nothing: no started event without a matching finished one.
	if emitter.Active() {
		emitter.Emit(obs.Event{Kind: obs.EventQueryStarted, Time: t0,
			Detail: compactQuery(queryStr), Seeds: seeds})
		emitter.Emit(obs.Event{Kind: obs.EventStageStarted, Stage: "parse", Time: t0})
		emitter.Emit(obs.Event{Kind: obs.EventStageFinished, Stage: "parse",
			Time: t0.Add(parseDur), DurationUS: parseDur.Microseconds()})
	}

	planDone := stage("plan")
	_, planSpan := obs.StartSpan(qctx, "plan")
	op, err := algebra.Translate(q)
	if err != nil {
		planSpan.End()
		planDone()
		return nil, err
	}
	op = plan.New(seeds).Optimize(op)
	planSpan.End()
	planDone()

	src := store.NewWithDict(e.dict)
	recorder := metrics.NewRecorder()
	runCtx, cancel := context.WithCancel(qctx)

	x := &Execution{
		Query:    q,
		Vars:     q.ProjectedVars(),
		Recorder: recorder,
		Seeds:    seeds,
		Plan:     op,
		cancel:   cancel,
		id:       qid,
		store:    src,
		trace:    trace,
		queryStr: queryStr,
	}
	x.queuePolicy = e.opts.QueuePolicy
	if e.opts.NewQueue != nil {
		x.queuePolicy = "custom"
	} else if x.queuePolicy == "" {
		x.queuePolicy = linkqueue.PolicyFIFO
	}

	m := obs.On(e.opts.Obs.M())
	m.QueriesStarted.Inc()
	m.QueriesInFlight.Inc()
	var rec *obs.QueryRecord
	if e.opts.Obs != nil {
		rec = e.opts.Obs.Tracker.Start(qid, queryStr, seeds, trace)
		rec.SetTenant(obs.TenantFromContext(ctx))
	}
	queryStart := time.Now()
	x.start = queryStart
	if e.opts.Explain {
		x.prov = exec.NewProv()
		x.topo = obs.NewTopology(queryStart)
		rec.AttachTopology(x.topo)
	}

	// The resource ledger accounts every layer's memory against this query:
	// deref charges fetched documents, the store its triples and indexes,
	// exec its batches and arenas, serve its pinned cache entries. Enabled
	// whenever an Observer is attached (live cost attribution) or a budget
	// is set (enforcement); otherwise nil, and every charge site no-ops.
	var ledger *resource.Ledger
	if e.opts.MemBudget > 0 || e.opts.Obs != nil {
		ledger = resource.New(qid, obs.TenantFromContext(ctx), e.opts.MemBudget)
		ledger.OnExceeded(func(berr *resource.BudgetExceededError) {
			x.setErr(berr)
			m.MemBudgetExceeded.Inc()
			if emitter.Active() {
				emitter.Emit(obs.Event{Kind: obs.EventResourceSnapshot,
					MemBytes: berr.Attempted, MemPeak: berr.Breakdown.Peak,
					Detail: berr.Breakdown.BreakdownString(), Err: berr.Error()})
			}
			cancel()
		})
		x.ledger = ledger
		src.SetLedger(ledger)
		rec.AttachLedger(ledger)
	}

	shape := ShapeOf(q)
	extractors := extract.DefaultSolidSet(shape)
	if e.opts.Extractors != nil {
		extractors = e.opts.Extractors(shape)
	}

	// Traversal feeds the store; closing the store ends the pipeline.
	go func() {
		traverseDone := stage("traverse")
		tctx, tspan := obs.StartSpan(runCtx, "traverse")
		err := e.traverse(tctx, seeds, extractors, shape, src, recorder, x.topo, emitter, ledger)
		tspan.End()
		traverseDone()
		if err != nil && !e.opts.Lenient {
			x.setErr(err)
			cancel()
		}
		src.Close()
	}()

	// The executor pipeline drains into the public results channel, where
	// result timestamps are recorded.
	env := exec.NewEnv(src)
	env.Prov = x.prov
	env.Events = emitter
	env.Workers = e.opts.ExecWorkers
	env.Ledger = ledger
	out := make(chan rdf.Binding)
	go func() {
		defer close(out)
		first := true
		row := 0
		defer func() {
			err := x.Err()
			if err != nil {
				m.QueriesFailed.Inc()
			} else {
				m.QueriesSucceeded.Inc()
			}
			m.QueriesInFlight.Dec()
			dur := time.Since(queryStart)
			if ledger != nil {
				m.QueryMemPeak.Observe(float64(ledger.Peak()))
				if charged := ledger.Charged(); charged > 0 {
					tenant := ledger.Tenant()
					if tenant == "" {
						tenant = "default"
					}
					m.TenantMemCharged.With(tenant).Add(charged)
				}
				e.opts.Obs.Res().Record(ledger)
				if emitter.Active() {
					emitter.Emit(obs.Event{Kind: obs.EventResourceSnapshot,
						MemBytes: ledger.Current(), MemPeak: ledger.Peak(),
						Detail: ledger.Snapshot().BreakdownString()})
				}
			}
			trace.End()
			// Tail-sampling keep decision: now that the outcome is known,
			// offer the trace to the store. The span tree, request timeline
			// and critical path are materialized only when kept; the trace
			// ID stamps the query-duration bucket as an exemplar so a slow
			// bucket on /metrics points at a retained trace.
			var keptTrace string
			if ts := e.opts.Obs.TraceStore(); ts != nil && trace != nil {
				o := obs.TraceOutcome{
					TraceID:  trace.ID(),
					QueryID:  qid,
					Query:    compactQuery(queryStr),
					Tenant:   obs.TenantFromContext(ctx),
					Start:    queryStart,
					Duration: dur,
					Results:  row,
					Degraded: recorder.Degradation().Degraded(),
				}
				if t, ok := recorder.TimeToFirstResult(); ok {
					o.TTFR = t
				}
				if err != nil {
					o.Err = err.Error()
					var berr *resource.BudgetExceededError
					o.BudgetExceeded = errors.As(err, &berr)
				}
				if kept, _ := ts.Offer(o, func(tr *obs.TraceRecord) {
					tr.Root = trace.Snapshot()
					tr.Requests = obs.RequestsJSON(recorder.Requests(), recorder.Epoch())
					tr.CriticalPath = x.CriticalPath()
				}); kept {
					keptTrace = o.TraceID
				}
			}
			m.QueryDuration.ObserveExemplar(dur.Seconds(), keptTrace)
			if x.prov != nil {
				rec.SetContributions(docMatches(x.prov.Contributions()))
			}
			if e.opts.Obs != nil {
				e.opts.Obs.Tracker.Finish(rec, err)
			}
			// Emitted before the deferred close(out) above runs (LIFO), so
			// the journal's query_finished always precedes the caller
			// observing the end of the result stream.
			if emitter.Active() {
				ev := obs.Event{Kind: obs.EventQueryFinished, Rows: row,
					DurationUS: time.Since(queryStart).Microseconds()}
				if err != nil {
					ev.Err = err.Error()
				}
				emitter.Emit(ev)
			}
		}()
		// A finished pipeline normally aborts any remaining traversal; a
		// DESCRIBE query still needs the full traversed store for its
		// concise bounded descriptions, so traversal runs to completion.
		if q.Form != sparql.FormDescribe {
			defer cancel()
		}
		execDone := stage("exec")
		defer execDone()
		ectx, espan := obs.StartSpan(runCtx, "exec")
		defer espan.End()
		emit := func(b rdf.Binding) bool {
			select {
			case out <- b:
				if first {
					first = false
					m.TimeToFirstResult.Observe(time.Since(queryStart).Seconds())
				}
				m.ResultsEmitted.Inc()
				rec.AddResult()
				if x.topo != nil {
					x.topo.Result(row, b.Sources())
				}
				row++
				emitter.Emit(obs.Event{Kind: obs.EventResultEmitted, Row: row})
				return true
			case <-ctx.Done():
				return false
			}
		}
		if e.opts.Adaptive && !containsSlice(op) {
			final := e.runAdaptive(ectx, op, env, src, recorder, seeds, emit)
			x.setAdaptedPlan(final)
			return
		}
		for b := range exec.Eval(ectx, op, env) {
			recorder.RecordResult()
			if !emit(b) {
				return
			}
		}
	}()
	x.Results = out
	return x, nil
}

// compactQuery collapses a query's whitespace for span/tracker annotation.
func compactQuery(q string) string {
	fields := strings.Fields(q)
	s := strings.Join(fields, " ")
	if len(s) > 200 {
		s = s[:197] + "..."
	}
	return s
}

// setAdaptedPlan records the plan that finished an adaptive execution.
func (x *Execution) setAdaptedPlan(op algebra.Operator) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.adaptedPlan = op
}

// AdaptedPlan returns the plan an adaptive execution finished under (the
// initial plan when no re-planning occurred or adaptivity is off).
func (x *Execution) AdaptedPlan() algebra.Operator {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.adaptedPlan != nil {
		return x.adaptedPlan
	}
	return x.Plan
}

// Select runs a SELECT query to completion and returns all solutions.
func (e *Engine) Select(ctx context.Context, queryStr string, seeds []string) ([]rdf.Binding, *Execution, error) {
	x, err := e.Query(ctx, queryStr, seeds)
	if err != nil {
		return nil, nil, err
	}
	var all []rdf.Binding
	for b := range x.Results {
		all = append(all, b)
	}
	if err := x.Err(); err != nil {
		return all, x, err
	}
	if err := ctx.Err(); err != nil {
		return all, x, err
	}
	return all, x, nil
}

// Ask runs an ASK query.
func (e *Engine) Ask(ctx context.Context, queryStr string, seeds []string) (bool, error) {
	x, err := e.Query(ctx, queryStr, seeds)
	if err != nil {
		return false, err
	}
	if x.Query.Form != sparql.FormAsk {
		x.Close()
		return false, errors.New("core: Ask requires an ASK query")
	}
	found := false
	for range x.Results {
		found = true
	}
	return found, x.Err()
}

// Construct runs a CONSTRUCT query and returns the built graph.
func (e *Engine) Construct(ctx context.Context, queryStr string, seeds []string) ([]rdf.Triple, error) {
	x, err := e.Query(ctx, queryStr, seeds)
	if err != nil {
		return nil, err
	}
	if x.Query.Form != sparql.FormConstruct {
		x.Close()
		return nil, errors.New("core: Construct requires a CONSTRUCT query")
	}
	g := rdf.NewGraph()
	bnodeN := 0
	for b := range x.Results {
		bnodeN++
		for _, tp := range x.Query.Template {
			tr, ok := instantiate(tp, b, bnodeN)
			if ok {
				g.Add(tr)
			}
		}
	}
	return g.Triples(), x.Err()
}

// instantiate fills a CONSTRUCT template pattern from a solution; blank
// nodes in the template are scoped per solution.
func instantiate(tp sparql.TriplePattern, b rdf.Binding, scope int) (rdf.Triple, bool) {
	simple, ok := tp.IsSimple()
	if !ok {
		return rdf.Triple{}, false
	}
	fill := func(t rdf.Term) (rdf.Term, bool) {
		switch t.Kind {
		case rdf.TermVar:
			v, ok := b.Get(t.Value)
			return v, ok
		case rdf.TermBlank:
			return rdf.NewBlank(fmt.Sprintf("%s.r%d", t.Value, scope)), true
		default:
			return t, true
		}
	}
	s, ok1 := fill(simple.S)
	p, ok2 := fill(simple.P)
	o, ok3 := fill(simple.O)
	if !ok1 || !ok2 || !ok3 || !rdf.NewTriple(s, p, o).IsGround() {
		return rdf.Triple{}, false
	}
	return rdf.NewTriple(s, p, o), true
}

// traverse runs the link traversal loop: pop a link, dereference it, add
// its triples to the source, extract further links, repeat — with up to
// MaxConcurrent dereferences in flight. When topo is non-nil, the traversal
// records its discovery topology: every dereference becomes a node, every
// extracted link an edge labeled with its extractor and fate. The
// configured Limits are enforced throughout: out-of-scope links and links
// beyond the fanout/queue caps are pruned at discovery, origins over their
// document/byte budget stop being fetched, and each defense firing is
// recorded as a LimitTrip (a typed TraversalLimitError for non-lenient
// traversals).
func (e *Engine) traverse(ctx context.Context, seeds []string, extractors []extract.Extractor,
	shape *extract.QueryShape, src *store.Store, recorder *metrics.Recorder, topo *obs.Topology,
	events *obs.Emitter, ledger *resource.Ledger) error {

	m := obs.On(e.opts.Obs.M())
	var queue linkqueue.Queue
	switch {
	case e.opts.NewQueue != nil:
		queue = e.opts.NewQueue()
	default:
		queue = e.opts.QueuePolicy.New(relevanceOf(shape))
	}
	// The guided queue learns from traversal: capture the discipline's
	// feedback hook before the instrumentation wrappers hide it.
	feedback, _ := queue.(linkqueue.Feedback)
	guard := newLimitGuard(e.opts.Limits, seeds)
	if mset := e.opts.Obs.M(); mset != nil {
		iq := linkqueue.Instrument(queue, mset.LinksQueued, mset.LinkQueueDepth)
		// Whatever is still queued when traversal ends (cancellation,
		// document cap) must not linger in the process-wide depth gauge.
		defer iq.Abandon()
		queue = iq
	}
	queue = linkqueue.WithEvents(queue, events)

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		inflight int
		fetched  int
		firstErr error
	)
	// tripFired reports one deduplicated defense firing on every surface:
	// the per-query degradation report, the limit_tripped event, and the
	// process-wide trip counter. Non-lenient traversals also fail with the
	// typed error.
	tripFired := func(trip *metrics.LimitTrip) {
		if trip == nil {
			return
		}
		recorder.RecordLimitTrip(*trip)
		m.LimitTrips.With(trip.Kind).Inc()
		if events.Active() {
			events.Emit(obs.Event{Kind: obs.EventLimitTripped, URL: trip.URL,
				Reason: trip.Kind, Detail: trip.String()})
		}
		if !e.opts.Lenient {
			mu.Lock()
			if firstErr == nil {
				firstErr = &TraversalLimitError{Trip: *trip}
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}

	for _, s := range seeds {
		topo.Seed(s)
		queue.Push(linkqueue.Link{URL: s, Reason: "seed", Extractor: "seed"})
	}

	d := &deref.Dereferencer{
		Client:       e.opts.Client,
		Auth:         e.opts.Auth,
		Recorder:     recorder,
		Cache:        e.opts.Cache,
		Shared:       e.opts.Shared,
		Retry:        e.opts.Retry,
		Obs:          e.opts.Obs.M(),
		Events:       events,
		UserAgent:    "ltqp-go/1.0 (link-traversal SPARQL engine)",
		Dict:         e.dict,
		Ledger:       ledger,
		MaxBodyBytes: e.opts.Limits.MaxDocBytes,
		BodyTimeout:  e.opts.Limits.BodyTimeout,
	}

	sem := make(chan struct{}, e.opts.MaxConcurrent)

	worker := func(l linkqueue.Link) {
		defer func() {
			<-sem
			mu.Lock()
			inflight--
			cond.Broadcast()
			mu.Unlock()
		}()
		// Hold a per-origin slot for the duration of the fetch, so one slow
		// or hostile origin cannot absorb the whole global concurrency
		// budget.
		if slot := guard.originSlot(l.URL); slot != nil {
			select {
			case slot <- struct{}{}:
				defer func() { <-slot }()
			case <-ctx.Done():
				return
			}
		}
		wctx, dspan := obs.StartSpan(ctx, "document",
			obs.Str("url", l.URL), obs.Str("reason", l.Reason), obs.Int("depth", l.Depth))
		fetchStart := time.Now()
		res, derefCat, err := d.DereferenceTracked(wctx, l.URL, l.Via, l.Reason)
		if err != nil {
			topo.DocumentError(l.URL, l.Depth, err.Error(), fetchStart, time.Since(fetchStart))
			if events.Active() {
				events.Emit(obs.Event{Kind: obs.EventDocumentDereferenced,
					URL: l.URL, Via: l.Via, Depth: l.Depth, Err: err.Error(),
					DurationUS: time.Since(fetchStart).Microseconds()})
			}
			dspan.SetAttr(obs.Str("error", err.Error()))
			dspan.End()
			// An oversized or slow-loris body is a contained defense trip,
			// not a generic fetch failure: report it on the trip surfaces
			// (and in lenient mode keep traversing without the document).
			if guard != nil {
				switch {
				case errors.Is(err, deref.ErrBodyLimit):
					tripFired(guard.record(LimitDocBytes, linkqueue.Origin(l.URL), l.URL, d.BodyLimit(), 0))
					return
				case errors.Is(err, deref.ErrSlowBody):
					tripFired(guard.record(LimitSlowBody, linkqueue.Origin(l.URL), l.URL, int64(d.BodyTimeout/time.Millisecond), 0))
					return
				}
			}
			if !e.opts.Lenient {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				cond.Broadcast()
				mu.Unlock()
			}
			return
		}
		// The dereference charged the document's bytes to the ledger (the
		// in-flight parse); released once it is ingested into the store —
		// which takes over accounting for the retained triples — and its
		// links are extracted.
		if ledger != nil && !res.NotModified {
			defer ledger.Release(derefCat, res.Bytes)
		}
		guard.addBytes(res.FinalURL, res.Bytes)
		src.AddDocument(res.FinalURL, res.Triples)
		if feedback != nil {
			feedback.DocumentIngested(res.FinalURL, relevantTriples(res.Triples, shape), len(res.Triples))
		}
		topo.Document(res.FinalURL, l.Depth, res.Status, len(res.Triples), res.Bytes, fetchStart, time.Since(fetchStart))
		events.Emit(obs.Event{Kind: obs.EventDocumentDereferenced,
			URL: res.FinalURL, Via: l.Via, Depth: l.Depth, Status: res.Status,
			Triples: len(res.Triples), Bytes: res.Bytes,
			DurationUS: time.Since(fetchStart).Microseconds()})
		g := rdf.NewGraph()
		g.AddAll(res.Triples)
		doc := extract.Document{IRI: res.FinalURL, Graph: g}
		_, xspan := obs.StartSpan(wctx, "extract")
		accepted := 0
		for _, ex := range extractors {
			for _, link := range ex.Extract(doc) {
				events.Emit(obs.Event{Kind: obs.EventLinkDiscovered,
					URL: link.URL, Via: res.FinalURL, Extractor: link.Extractor, Reason: link.Reason})
				if link.URL == res.FinalURL || link.URL == l.URL {
					topo.Link(res.FinalURL, link.URL, link.Extractor, link.Reason, obs.EdgeSelf)
					events.Emit(obs.Event{Kind: obs.EventLinkPruned,
						URL: link.URL, Via: res.FinalURL, Extractor: link.Extractor, Detail: "self"})
					continue
				}
				if e.opts.MaxDepth > 0 && l.Depth+1 > e.opts.MaxDepth {
					topo.Link(res.FinalURL, link.URL, link.Extractor, link.Reason, obs.EdgeDepthPruned)
					events.Emit(obs.Event{Kind: obs.EventLinkPruned,
						URL: link.URL, Via: res.FinalURL, Extractor: link.Extractor,
						Depth: l.Depth + 1, Detail: "depth-pruned"})
					continue
				}
				if !guard.inScope(link.URL) {
					topo.Link(res.FinalURL, link.URL, link.Extractor, link.Reason, obs.EdgeScopePruned)
					m.LinksOutOfScope.Inc()
					events.Emit(obs.Event{Kind: obs.EventLinkPruned,
						URL: link.URL, Via: res.FinalURL, Extractor: link.Extractor, Detail: "scope-pruned"})
					tripFired(guard.record(LimitScope, linkqueue.Origin(link.URL), link.URL, 0, 0))
					continue
				}
				if guard != nil && guard.limits.MaxLinksPerDoc > 0 && accepted >= guard.limits.MaxLinksPerDoc {
					topo.Link(res.FinalURL, link.URL, link.Extractor, link.Reason, obs.EdgeLimitPruned)
					events.Emit(obs.Event{Kind: obs.EventLinkPruned,
						URL: link.URL, Via: res.FinalURL, Extractor: link.Extractor, Detail: "fanout-pruned"})
					tripFired(guard.record(LimitFanout, "", res.FinalURL,
						int64(guard.limits.MaxLinksPerDoc), int64(accepted+1)))
					continue
				}
				if guard != nil && guard.limits.MaxQueuedLinks > 0 && queue.Seen() >= guard.limits.MaxQueuedLinks {
					topo.Link(res.FinalURL, link.URL, link.Extractor, link.Reason, obs.EdgeLimitPruned)
					events.Emit(obs.Event{Kind: obs.EventLinkPruned,
						URL: link.URL, Via: res.FinalURL, Extractor: link.Extractor, Detail: "queue-cap-pruned"})
					// Dedup on a fixed subject: the cap is global to the
					// traversal, one report covers every pruned link.
					tripFired(guard.record(LimitQueueCap, "traversal", link.URL,
						int64(guard.limits.MaxQueuedLinks), int64(queue.Seen()+1)))
					continue
				}
				if queue.Push(linkqueue.Link{URL: link.URL, Via: res.FinalURL, Reason: link.Reason, Extractor: link.Extractor, Depth: l.Depth + 1}) {
					topo.Link(res.FinalURL, link.URL, link.Extractor, link.Reason, obs.EdgeFollowed)
					m.LinksByExtractor.With(link.Extractor).Inc()
					accepted++
					mu.Lock()
					cond.Broadcast()
					mu.Unlock()
				} else {
					topo.Link(res.FinalURL, link.URL, link.Extractor, link.Reason, obs.EdgeDuplicate)
					events.Emit(obs.Event{Kind: obs.EventLinkPruned,
						URL: link.URL, Via: res.FinalURL, Extractor: link.Extractor, Detail: "duplicate"})
				}
			}
		}
		xspan.SetAttr(obs.Int("links", accepted))
		xspan.End()
		dspan.SetAttr(obs.Int("triples", len(res.Triples)))
		dspan.End()
	}

	// Wake the dispatcher when the context dies.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			mu.Lock()
			cond.Broadcast()
			mu.Unlock()
		case <-stopWatch:
		}
	}()

	for {
		if ctx.Err() != nil {
			// Wait for workers to drain before returning.
			mu.Lock()
			for inflight > 0 {
				cond.Wait()
			}
			mu.Unlock()
			return ctx.Err()
		}
		mu.Lock()
		if firstErr != nil {
			for inflight > 0 {
				cond.Wait()
			}
			err := firstErr
			mu.Unlock()
			return err
		}
		mu.Unlock()

		l, ok := queue.Pop()
		if ok {
			// Track the link queue's evolution over the execution [34].
			recorder.RecordQueueSample(queue.Len(), queue.Seen())
		}
		if !ok {
			mu.Lock()
			if inflight == 0 && queue.Len() == 0 {
				mu.Unlock()
				return nil // traversal complete
			}
			cond.Wait()
			mu.Unlock()
			continue
		}
		if e.opts.MaxDocuments > 0 && fetched >= e.opts.MaxDocuments {
			// Cap reached: drain without fetching.
			continue
		}
		if ok, trip := guard.admitFetch(l.URL); !ok {
			// Origin over its document or byte budget: drain without
			// fetching (lenient), or fail typed (strict, via tripFired).
			topo.Link(l.Via, l.URL, l.Extractor, l.Reason, obs.EdgeLimitPruned)
			tripFired(trip)
			continue
		}
		fetched++
		mu.Lock()
		inflight++
		mu.Unlock()
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			mu.Lock()
			inflight--
			cond.Broadcast()
			mu.Unlock()
			continue
		}
		go worker(l)
	}
}

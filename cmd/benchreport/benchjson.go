package main

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed `go test -bench` result line.
type BenchResult struct {
	Package string `json:"package,omitempty"`
	Name    string `json:"name"`
	// Path is the "/"-separated name split into segments: the benchmark
	// function first, then each subtest level ("BenchmarkJoin/stars=4"
	// → ["BenchmarkJoin", "stars=4"]). Omitted for non-subtest names.
	Path       []string `json:"path,omitempty"`
	Iterations int64    `json:"iterations"`
	NsPerOp    float64  `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom units (triples/op, MB/s, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// BenchReport is the JSON document emitted by --parse-bench.
type BenchReport struct {
	Generated  time.Time     `json:"generated"`
	GoOS       string        `json:"goos,omitempty"`
	GoArch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// writeBenchJSON converts `go test -bench` text output into an indented
// JSON BenchReport.
func writeBenchJSON(r io.Reader, w io.Writer) error {
	report := BenchReport{Generated: time.Now().UTC(), Benchmarks: []BenchResult{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Package = pkg
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8  1808  314750 ns/op  581200 B/op  12 allocs/op
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return BenchResult{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix. For subtest names it sits on the last
	// "/" segment ("BenchmarkJoin/stars=4-8"), so look only after the
	// final slash — a plain "-N" inside an earlier segment is part of the
	// subtest's own name.
	if i := strings.LastIndexByte(name, '-'); i > strings.LastIndexByte(name, '/') {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	b := BenchResult{Name: name, Iterations: iters}
	if strings.ContainsRune(name, '/') {
		b.Path = strings.Split(name, "/")
	}
	// The rest come in "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}

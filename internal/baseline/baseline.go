// Package baseline provides the comparison systems used by the paper's
// positioning (§1): a *centralized oracle* that assumes all pod data has
// been accumulated into one local store beforehand (the trust-requiring
// index approach of systems like ESPRESSO), against which the traversal
// engine's no-prior-index execution is compared; and helpers to run
// queries directly over a closed store.
package baseline

import (
	"context"

	"ltqp/internal/algebra"
	"ltqp/internal/exec"
	"ltqp/internal/plan"
	"ltqp/internal/rdf"
	"ltqp/internal/solid"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
)

// CentralizedStore ingests all documents of all pods into a single closed
// store — the "accumulated index" a centralized system would maintain. The
// returned store is ready for querying; building it is the (large) upfront
// cost the traversal engine avoids.
func CentralizedStore(pods []*solid.Pod) *store.Store {
	st := store.New()
	for _, p := range pods {
		for path, d := range p.Materialize() {
			st.AddDocument(p.IRI(path), d.Graph.Triples())
		}
	}
	st.Close()
	return st
}

// RunQuery evaluates a SPARQL query over a closed store (no traversal) and
// returns all solutions.
func RunQuery(ctx context.Context, st *store.Store, query string) ([]rdf.Binding, error) {
	q, err := sparql.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	op, err := algebra.Translate(q)
	if err != nil {
		return nil, err
	}
	op = plan.New(q.MentionedIRIs()).Optimize(op)
	env := exec.NewEnv(st)
	// The oracle is pinned to the row-at-a-time operators: differential
	// runs compare the vectorized pipeline against these semantics, so the
	// reference side must never route through the code under test.
	env.NoVectorize = true
	var out []rdf.Binding
	for b := range exec.Eval(ctx, op, env) {
		out = append(out, b)
	}
	return out, ctx.Err()
}

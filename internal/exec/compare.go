package exec

import (
	"strings"

	"ltqp/internal/rdf"
)

// termsEqual implements the SPARQL "=" operator: value equality for
// comparable literal types, term equality otherwise; incomparable distinct
// literals raise a type error.
func termsEqual(l, r rdf.Term) (bool, error) {
	if l == r {
		return true, nil
	}
	if l.Kind != r.Kind {
		return false, nil
	}
	if l.Kind != rdf.TermLiteral {
		return false, nil
	}
	// Numeric value equality.
	if l.IsNumeric() && r.IsNumeric() {
		a, err1 := l.Float()
		b, err2 := r.Float()
		if err1 != nil || err2 != nil {
			return false, typeErrf("invalid numeric literal")
		}
		return a == b, nil
	}
	// Boolean value equality.
	if l.Datatype == rdf.XSDBoolean && r.Datatype == rdf.XSDBoolean {
		a, err1 := l.Bool()
		b, err2 := r.Bool()
		if err1 != nil || err2 != nil {
			return false, typeErrf("invalid boolean literal")
		}
		return a == b, nil
	}
	// dateTime value equality.
	if isDateTime(l) && isDateTime(r) {
		a, err1 := l.Time()
		b, err2 := r.Time()
		if err1 != nil || err2 != nil {
			return false, typeErrf("invalid dateTime literal")
		}
		return a.Equal(b), nil
	}
	// Plain/string literals: already covered by l == r above; different
	// lexical forms of strings are unequal.
	if isStringy(l) && isStringy(r) {
		return false, nil
	}
	// Distinct literals of unknown datatypes: cannot decide value equality.
	if l.Datatype == r.Datatype && l.Value != r.Value {
		return false, typeErrf("cannot compare literals of datatype %s by value", l.Datatype)
	}
	return false, nil
}

func isStringy(t rdf.Term) bool {
	return t.Kind == rdf.TermLiteral && (t.Datatype == "" || t.Datatype == rdf.XSDString || t.Language != "")
}

func isDateTime(t rdf.Term) bool {
	return t.Kind == rdf.TermLiteral && (t.Datatype == rdf.XSDDateTime || t.Datatype == rdf.XSDDate)
}

// compareValues implements the SPARQL ordering operators (<, >, <=, >=)
// over comparable types.
func compareValues(l, r rdf.Term) (int, error) {
	if l.Kind != rdf.TermLiteral || r.Kind != rdf.TermLiteral {
		return 0, typeErrf("cannot order %s and %s", l, r)
	}
	switch {
	case l.IsNumeric() && r.IsNumeric():
		a, err1 := l.Float()
		b, err2 := r.Float()
		if err1 != nil || err2 != nil {
			return 0, typeErrf("invalid numeric literal")
		}
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	case isStringy(l) && isStringy(r):
		return strings.Compare(l.Value, r.Value), nil
	case isDateTime(l) && isDateTime(r):
		a, err1 := l.Time()
		b, err2 := r.Time()
		if err1 != nil || err2 != nil {
			return 0, typeErrf("invalid dateTime literal")
		}
		switch {
		case a.Before(b):
			return -1, nil
		case a.After(b):
			return 1, nil
		default:
			return 0, nil
		}
	case l.Datatype == rdf.XSDBoolean && r.Datatype == rdf.XSDBoolean:
		a, err1 := l.Bool()
		b, err2 := r.Bool()
		if err1 != nil || err2 != nil {
			return 0, typeErrf("invalid boolean literal")
		}
		switch {
		case !a && b:
			return -1, nil
		case a && !b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, typeErrf("incomparable literals %s and %s", l, r)
}

// orderCompare is the total order used by ORDER BY (SPARQL §15.1 extended
// to a total order): unbound < blank nodes < IRIs < literals; literals
// compare by value when comparable, falling back to syntactic order.
func orderCompare(a, b rdf.Term) int {
	if a.Kind == rdf.TermLiteral && b.Kind == rdf.TermLiteral {
		if cmp, err := compareValues(a, b); err == nil && cmp != 0 {
			return cmp
		}
		if eq, err := termsEqual(a, b); err == nil && eq {
			return 0
		}
	}
	return a.Compare(b)
}

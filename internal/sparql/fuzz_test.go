package sparql_test

import (
	"testing"

	"ltqp/internal/algebra"
	"ltqp/internal/sparql"
)

// FuzzParseQuery feeds arbitrary inputs to the SPARQL parser (mirroring the
// Turtle parser's FuzzParse): parsing must never panic, and any query the
// parser accepts must survive the rest of the front half of the engine —
// projected-variable extraction, seed-IRI extraction, and translation to
// the algebra — without panicking. The committed seed corpus under
// testdata/fuzz covers the paper's demonstration query shapes (star BGPs,
// DISTINCT, OPTIONAL, UNION, FILTER, aggregation, property paths).
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`SELECT ?s WHERE { ?s ?p ?o }`,
		`PREFIX snvoc: <http://example.org/voc#>
SELECT ?messageId ?messageCreationDate ?messageContent WHERE {
  ?message snvoc:hasCreator <http://example.org/pods/0/profile/card#me>;
    snvoc:content ?messageContent;
    snvoc:creationDate ?messageCreationDate;
    snvoc:id ?messageId.
}`,
		`PREFIX snvoc: <http://example.org/voc#>
SELECT DISTINCT ?locationIp WHERE {
  ?message snvoc:hasCreator <http://example.org/card#me> ;
    snvoc:locationIP ?locationIp .
}`,
		`SELECT ?tag (COUNT(?message) AS ?messages) WHERE {
  ?message <http://example.org/hasTag> ?tag .
} GROUP BY ?tag ORDER BY DESC(?messages)`,
		`SELECT ?a ?b WHERE { ?a <http://p> ?x . OPTIONAL { ?x <http://q> ?b FILTER(?b > 3) } }`,
		`SELECT * WHERE { { ?s <http://p> ?o } UNION { ?o <http://q> ?s } } LIMIT 10`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE { ?me foaf:knows+/foaf:name ?name FILTER(REGEX(?name, "^A", "i")) }`,
		`ASK { ?s ?p ?o }`,
		`SELECT ?s WHERE { VALUES ?s { <http://a> <http://b> } ?s ?p ?o } ORDER BY ?s OFFSET 1`,
		`SELECT (IF(BOUND(?x), STR(?x), "none") AS ?v) WHERE { OPTIONAL { ?s ?p ?x } }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := sparql.ParseQuery(input)
		if err != nil {
			return // rejected input is fine
		}
		if q == nil {
			t.Fatalf("ParseQuery returned nil query and nil error for %q", input)
		}
		// Everything the engine does with an accepted query before
		// execution must be total.
		_ = q.ProjectedVars()
		_ = q.MentionedIRIs()
		if _, err := algebra.Translate(q); err != nil {
			return // translation may reject, but must not panic
		}
	})
}

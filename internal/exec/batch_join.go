package exec

import (
	"context"
	"sync/atomic"

	"ltqp/internal/rdf"
	"ltqp/internal/resource"
)

// Vectorized symmetric hash join. A sequential coordinator alternates
// between the two input batch streams; each arriving batch is first
// inserted into its side's columnar arena, then probed against the other
// side's arena — insert-before-probe per batch gives exactly-once pair
// emission, the same invariant as the row join's insert-then-candidates
// protocol. The probe phase is morsel-driven: workers steal fixed-size row
// ranges of the just-inserted batch and probe concurrently, which is safe
// because both arenas are read-only between coordinator steps.

// joinArena is one side's accumulated rows, stored column-wise over the
// join's output schema (absent variables are NoTerm).
type joinArena struct {
	cols [][]rdf.TermID
	prov [][]rdf.TermID // nil without provenance
	n    int32
	// exact buckets rows binding all shared variables by their shared-var
	// key; rows leaving a shared variable unbound (below OPTIONAL/VALUES)
	// go to partial and are probed linearly — mirroring joinState.
	exact   map[idKey][]int32
	partial []int32
}

func newJoinArena(width int, withProv bool) *joinArena {
	a := &joinArena{cols: make([][]rdf.TermID, width), exact: map[idKey][]int32{}}
	if withProv {
		a.prov = [][]rdf.TermID{}
	}
	return a
}

// insertBatch appends the live rows of b (mapped through cmap onto the out
// schema) and files each into exact or partial. It returns the arena index
// of the first inserted row and, via keys/full (caller-owned scratch,
// resliced), each row's shared key and fullness.
func (a *joinArena) insertBatch(b *Batch, cmap []int, sharedIdx []int, keys []idKey, full []bool) (int32, []idKey, []bool) {
	start := a.n
	keys, full = keys[:0], full[:0]
	ids := make([]rdf.TermID, len(sharedIdx))
	for i := 0; i < b.Len(); i++ {
		r := b.Row(i)
		for c, j := range cmap {
			if j >= 0 {
				a.cols[c] = append(a.cols[c], b.cols[j][r])
			} else {
				a.cols[c] = append(a.cols[c], rdf.NoTerm)
			}
		}
		if a.prov != nil {
			if b.prov != nil {
				a.prov = append(a.prov, b.prov[r])
			} else {
				a.prov = append(a.prov, nil)
			}
		}
		row := a.n
		a.n++
		isFull := true
		for k, c := range sharedIdx {
			ids[k] = a.cols[c][row]
			if ids[k] == rdf.NoTerm {
				isFull = false
			}
		}
		key := idKeyOf(ids)
		if isFull {
			a.exact[key] = append(a.exact[key], row)
		} else {
			a.partial = append(a.partial, row)
		}
		keys = append(keys, key)
		full = append(full, isFull)
	}
	return start, keys, full
}

func batchJoin(ctx context.Context, env *Env, outVars, shared []string, left, right BatchStream) BatchStream {
	out := make(chan *Batch, batchChanCap)
	sharedIdx := make([]int, len(shared))
	for i, v := range shared {
		for c, w := range outVars {
			if w == v {
				sharedIdx[i] = c
				break
			}
		}
	}
	go func() {
		defer close(out)
		withProv := env.Prov != nil
		la := newJoinArena(len(outVars), withProv)
		ra := newJoinArena(len(outVars), withProv)

		// The arenas grow for the lifetime of the join; every inserted row
		// is charged to the ledger as it lands and the whole spend is
		// released when the join ends. One column cell per output variable,
		// a hash posting, and a provenance reference when enabled.
		arenaRowBytes := int64(len(outVars))*termIDBytes + 4
		if withProv {
			arenaRowBytes += provRefBytes
		}
		var arenaBytes int64
		defer func() { env.Ledger.Release(resource.Exec, arenaBytes) }()

		// Per-worker probe state: an output batch under construction and a
		// scratch row. Workers send full batches themselves; leftovers are
		// flushed by the coordinator at stream end.
		nw := env.workerCount()
		outs := make([]*Batch, nw)
		scratch := make([][]rdf.TermID, nw)
		for w := range scratch {
			scratch[w] = make([]rdf.TermID, len(outVars))
		}
		var aborted atomic.Bool

		// tryPair merges arena rows (mr of mine, or of other) into worker
		// w's output batch; incompatible rows (both bind a variable to
		// different terms) emit nothing.
		tryPair := func(w int, mine, other *joinArena, mr, or int32) {
			ids := scratch[w]
			for c := range ids {
				v := mine.cols[c][mr]
				if ov := other.cols[c][or]; ov != rdf.NoTerm {
					if v == rdf.NoTerm {
						v = ov
					} else if v != ov {
						return
					}
				}
				ids[c] = v
			}
			b := outs[w]
			if b == nil {
				b = env.getBatch(outVars, withProv)
				outs[w] = b
			}
			var prov []rdf.TermID
			if withProv {
				mp, op := mine.prov[mr], other.prov[or]
				prov = make([]rdf.TermID, 0, len(mp)+len(op))
				prov = append(append(prov, mp...), op...)
			}
			b.appendRow(ids, prov)
			if b.n >= batchCap {
				outs[w] = nil
				if !sendBatch(ctx, out, b) {
					aborted.Store(true)
				}
			}
		}

		var keys []idKey
		var full []bool
		// processBatch inserts b into mine, then probes other over the
		// inserted rows, morsel-parallel.
		processBatch := func(b *Batch, mine, other *joinArena) {
			cmap := schemaMap(b.vars, outVars)
			var first int32
			first, keys, full = mine.insertBatch(b, cmap, sharedIdx, keys, full)
			putBatch(b)
			if env.Ledger != nil && len(keys) > 0 {
				delta := int64(len(keys)) * arenaRowBytes
				env.Ledger.Charge(resource.Exec, delta)
				arenaBytes += delta
			}
			runMorsels(env, len(keys), func(w, lo, hi int) {
				for k := lo; k < hi && !aborted.Load(); k++ {
					mr := first + int32(k)
					if full[k] {
						for _, or := range other.exact[keys[k]] {
							tryPair(w, mine, other, mr, or)
						}
						for _, or := range other.partial {
							tryPair(w, mine, other, mr, or)
						}
					} else {
						for or := int32(0); or < other.n; or++ {
							tryPair(w, mine, other, mr, or)
						}
					}
				}
			})
		}

		// flush forwards every worker's partial output batch. Called by
		// the coordinator between batches (keeping the pipeline
		// incremental: results never wait for a batch to fill across
		// input batches) and at stream end.
		flush := func() bool {
			for w, b := range outs {
				if b == nil {
					continue
				}
				outs[w] = nil
				if b.Len() == 0 {
					putBatch(b)
					continue
				}
				if !sendBatch(ctx, out, b) {
					return false
				}
			}
			return true
		}

		l, r := left, right
		for (l != nil || r != nil) && !aborted.Load() {
			select {
			case b, ok := <-l:
				if !ok {
					l = nil
					continue
				}
				processBatch(b, la, ra)
			case b, ok := <-r:
				if !ok {
					r = nil
					continue
				}
				processBatch(b, ra, la)
			case <-ctx.Done():
				return
			}
			if !flush() {
				return
			}
		}
		flush()
	}()
	return out
}

package linkqueue

import "ltqp/internal/obs"

// Instrumented wraps a Queue and mirrors its activity into process-level
// metrics: a counter of links ever accepted and a gauge of the current
// depth, aggregated across every traversal sharing the instruments. The
// obs instruments are nil-safe, so a partially wired Instrumented still
// behaves correctly.
type Instrumented struct {
	Queue
	queued *obs.Counter
	depth  *obs.Gauge
}

// Instrument wraps q so accepted pushes bump queued and the depth gauge,
// and pops decrement the gauge.
func Instrument(q Queue, queued *obs.Counter, depth *obs.Gauge) *Instrumented {
	return &Instrumented{Queue: q, queued: queued, depth: depth}
}

// Push implements Queue.
func (q *Instrumented) Push(l Link) bool {
	accepted := q.Queue.Push(l)
	if accepted {
		q.queued.Inc()
		q.depth.Inc()
	}
	return accepted
}

// Pop implements Queue.
func (q *Instrumented) Pop() (Link, bool) {
	l, ok := q.Queue.Pop()
	if ok {
		q.depth.Dec()
	}
	return l, ok
}

// Abandon removes the still-queued links from the depth gauge; call it
// when a traversal ends with links left in its queue (cancellation, or a
// MaxDocuments cap), so the process-wide depth does not drift upward.
func (q *Instrumented) Abandon() {
	q.depth.Add(-int64(q.Queue.Len()))
}

// Evented wraps a Queue and publishes a link_queued event for every link
// the underlying queue accepts, correlated to the owning query. Rejected
// (already-seen) pushes emit nothing — the traversal loop reports those as
// link_pruned with their reason. When the wrapped discipline ranks links
// (implements Scorer), the event carries the link's score, making
// queue-policy decisions observable on the event stream and journal.
type Evented struct {
	Queue
	events *obs.Emitter
	scorer Scorer
}

// WithEvents wraps q so accepted pushes are announced on the emitter. A
// nil emitter returns q unchanged — the wrapper costs nothing when events
// are disabled.
func WithEvents(q Queue, events *obs.Emitter) Queue {
	if events == nil {
		return q
	}
	e := &Evented{Queue: q, events: events}
	e.scorer, _ = q.(Scorer)
	return e
}

// Push implements Queue.
func (q *Evented) Push(l Link) bool {
	accepted := q.Queue.Push(l)
	if accepted {
		ev := obs.Event{Kind: obs.EventLinkQueued, URL: l.URL,
			Via: l.Via, Extractor: l.Extractor, Reason: l.Reason, Depth: l.Depth}
		if q.scorer != nil && q.events.Active() {
			ev.Score = q.scorer.Score(l)
		}
		q.events.Emit(ev)
	}
	return accepted
}

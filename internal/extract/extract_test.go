package extract

import (
	"sort"
	"testing"

	"ltqp/internal/rdf"
	"ltqp/internal/turtle"
)

func doc(t *testing.T, iri, body string) Document {
	t.Helper()
	triples, err := turtle.Parse(body, turtle.Options{Base: iri})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := rdf.NewGraph()
	g.AddAll(triples)
	return Document{IRI: iri, Graph: g}
}

func urls(links []Link) []string {
	out := make([]string, len(links))
	for i, l := range links {
		out[i] = l.URL
	}
	sort.Strings(out)
	return out
}

func TestLDPContainer(t *testing.T) {
	d := doc(t, "https://pod.example/", `
PREFIX ldp: <http://www.w3.org/ns/ldp#>
<> a ldp:Container, ldp:BasicContainer, ldp:Resource;
  ldp:contains <file.ttl>, <posts/>, <profile/>.
`)
	links := LDPContainer{}.Extract(d)
	got := urls(links)
	want := []string{
		"https://pod.example/file.ttl",
		"https://pod.example/posts/",
		"https://pod.example/profile/",
	}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("links = %v", got)
	}
	for _, l := range links {
		if l.Reason != "ldp-container" {
			t.Errorf("reason = %s", l.Reason)
		}
	}
}

func TestSolidProfile(t *testing.T) {
	d := doc(t, "https://pod.example/profile/card", `
PREFIX pim: <http://www.w3.org/ns/pim/space#>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX solid: <http://www.w3.org/ns/solid/terms#>
<#me> foaf:name "Zulma";
  pim:storage </>;
  solid:oidcIssuer <https://solidcommunity.net/>;
  solid:publicTypeIndex </publicTypeIndex.ttl>.
`)
	links := SolidProfile{}.Extract(d)
	got := urls(links)
	if len(got) != 2 {
		t.Fatalf("links = %v", got)
	}
	if got[0] != "https://pod.example/" || got[1] != "https://pod.example/publicTypeIndex.ttl" {
		t.Errorf("links = %v", got)
	}
	// The OIDC issuer must NOT be followed (it is infrastructure).
	for _, u := range got {
		if u == "https://solidcommunity.net/" {
			t.Error("oidcIssuer should not be traversed")
		}
	}
}

const typeIndexDoc = `
PREFIX solid: <http://www.w3.org/ns/solid/terms#>
<> a solid:TypeIndex ; a solid:ListedDocument.
<#r1> a solid:TypeRegistration;
  solid:forClass <http://example.org/Post>;
  solid:instance </posts.ttl>.
<#r2> a solid:TypeRegistration;
  solid:forClass <http://example.org/Comment>;
  solid:instanceContainer </comments/>.
`

func TestTypeIndexUnfiltered(t *testing.T) {
	d := doc(t, "https://pod.example/publicTypeIndex.ttl", typeIndexDoc)
	links := TypeIndex{}.Extract(d)
	if got := urls(links); len(got) != 2 {
		t.Errorf("links = %v", got)
	}
}

func TestTypeIndexClassFiltered(t *testing.T) {
	d := doc(t, "https://pod.example/publicTypeIndex.ttl", typeIndexDoc)
	shape := &QueryShape{Classes: map[string]bool{"http://example.org/Post": true}}
	links := TypeIndex{Shape: shape}.Extract(d)
	got := urls(links)
	if len(got) != 1 || got[0] != "https://pod.example/posts.ttl" {
		t.Errorf("filtered links = %v (the Comment registration must be pruned)", got)
	}
	// Reasons distinguish instances from containers.
	d2 := doc(t, "https://pod.example/publicTypeIndex.ttl", typeIndexDoc)
	links2 := TypeIndex{Shape: &QueryShape{Classes: map[string]bool{"http://example.org/Comment": true}}}.Extract(d2)
	if len(links2) != 1 || links2[0].Reason != "type-index-container" {
		t.Errorf("container registration = %v", links2)
	}
}

func TestCMatchFollowsOnlyRelevant(t *testing.T) {
	d := doc(t, "https://pod.example/data", `
PREFIX ex: <http://example.org/>
<https://pods.example/a#m> ex:hasCreator <https://pods.example/u1/profile/card#me>.
<https://pods.example/b#x> ex:unrelated <https://pods.example/u2/profile/card#me>.
<https://pods.example/c#y> a ex:Post.
`)
	shape := &QueryShape{
		Predicates: map[string]bool{"http://example.org/hasCreator": true},
		Classes:    map[string]bool{"http://example.org/Post": true},
	}
	got := urls(CMatch{Shape: shape}.Extract(d))
	want := map[string]bool{
		"https://pods.example/a":               true,
		"https://pods.example/u1/profile/card": true,
		"https://pods.example/c":               true,
		"http://example.org/Post":              true,
	}
	for _, u := range got {
		if !want[u] {
			t.Errorf("unexpected link %s", u)
		}
	}
	for u := range want {
		found := false
		for _, g := range got {
			if g == u {
				found = true
			}
		}
		if !found {
			t.Errorf("missing link %s", u)
		}
	}
	// u2 must not be followed: its triple's predicate is irrelevant.
	for _, u := range got {
		if u == "https://pods.example/u2/profile/card" {
			t.Error("cMatch followed an irrelevant triple")
		}
	}
}

func TestCMatchNilShape(t *testing.T) {
	d := doc(t, "https://pod.example/data", `<http://a> <http://p> <http://b>.`)
	if got := (CMatch{}).Extract(d); got != nil {
		t.Errorf("nil shape should extract nothing, got %v", got)
	}
}

func TestCAllFollowsEverything(t *testing.T) {
	d := doc(t, "https://pod.example/data", `
PREFIX ex: <http://example.org/>
<http://s1> ex:p <http://o1>.
<http://s2> ex:q "literal".
`)
	got := urls(CAll{}.Extract(d))
	// s1, o1, s2, and the two predicates ex:p, ex:q.
	if len(got) != 5 {
		t.Errorf("links = %v", got)
	}
}

func TestSeeAlso(t *testing.T) {
	d := doc(t, "https://pod.example/data", `
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
<http://a> rdfs:seeAlso <http://more/data>.
<http://a> owl:sameAs <http://same/entity>.
`)
	got := urls(SeeAlso{}.Extract(d))
	if len(got) != 2 {
		t.Errorf("links = %v", got)
	}
}

func TestFragmentsAreStripped(t *testing.T) {
	d := doc(t, "https://pod.example/ti", `
PREFIX solid: <http://www.w3.org/ns/solid/terms#>
<#r> a solid:TypeRegistration;
  solid:forClass <http://example.org/Post>;
  solid:instance <https://pod.example/posts#section>.
`)
	links := TypeIndex{}.Extract(d)
	if len(links) != 1 || links[0].URL != "https://pod.example/posts" {
		t.Errorf("links = %v (fragment must be stripped)", links)
	}
}

func TestDefaultSolidSetAndNames(t *testing.T) {
	set := DefaultSolidSet(&QueryShape{})
	names := Names(set)
	want := []string{"ldp-container", "match", "see-also", "solid-profile", "type-index"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names = %v, want %v", names, want)
		}
	}
}

func TestNonHTTPIRIsIgnored(t *testing.T) {
	d := doc(t, "https://pod.example/data", `
PREFIX ldp: <http://www.w3.org/ns/ldp#>
<> ldp:contains <mailto:user@example.org>, <urn:uuid:123>, <https://ok.example/x>.
`)
	got := urls(LDPContainer{}.Extract(d))
	if len(got) != 1 || got[0] != "https://ok.example/x" {
		t.Errorf("links = %v", got)
	}
}

func TestTypeIndexScopedFollowsOnlyRegisteredContainers(t *testing.T) {
	e := &TypeIndexScoped{Shape: &QueryShape{Classes: map[string]bool{"http://example.org/Post": true}}}

	// Step 1: the type index registers posts/ for Post; comments/ is for
	// a class the query does not ask about.
	ti := doc(t, "https://pod.example/settings/ti", `
PREFIX solid: <http://www.w3.org/ns/solid/terms#>
<#r1> a solid:TypeRegistration;
  solid:forClass <http://example.org/Post>;
  solid:instanceContainer </posts/>.
<#r2> a solid:TypeRegistration;
  solid:forClass <http://example.org/Comment>;
  solid:instanceContainer </comments/>.
`)
	links := e.Extract(ti)
	if len(links) != 1 || links[0].URL != "https://pod.example/posts/" {
		t.Fatalf("registrations = %v", links)
	}

	// Step 2: the registered container's members are followed...
	posts := doc(t, "https://pod.example/posts/", `
PREFIX ldp: <http://www.w3.org/ns/ldp#>
<> ldp:contains </posts/2010-01-01>, </posts/sub/>.
`)
	links = e.Extract(posts)
	if len(links) != 2 {
		t.Fatalf("container members = %v", links)
	}

	// ...including nested sub-containers, transitively.
	sub := doc(t, "https://pod.example/posts/sub/", `
PREFIX ldp: <http://www.w3.org/ns/ldp#>
<> ldp:contains </posts/sub/doc>.
`)
	links = e.Extract(sub)
	if len(links) != 1 || links[0].URL != "https://pod.example/posts/sub/doc" {
		t.Fatalf("nested members = %v", links)
	}

	// Step 3: an unregistered container's members are NOT followed.
	noise := doc(t, "https://pod.example/noise/", `
PREFIX ldp: <http://www.w3.org/ns/ldp#>
<> ldp:contains </noise/n1>.
`)
	if links = e.Extract(noise); len(links) != 0 {
		t.Errorf("unregistered container followed: %v", links)
	}
}

func TestTypeIndexScopedName(t *testing.T) {
	if (&TypeIndexScoped{}).Name() != "type-index" {
		t.Error("name")
	}
}

func TestTypeIndexScopedInstanceLinks(t *testing.T) {
	e := &TypeIndexScoped{}
	ti := doc(t, "https://pod.example/ti", `
PREFIX solid: <http://www.w3.org/ns/solid/terms#>
<#r> a solid:TypeRegistration;
  solid:forClass <http://example.org/Post>;
  solid:instance </posts.ttl>.
`)
	links := e.Extract(ti)
	if len(links) != 1 || links[0].Reason != "type-index" {
		t.Errorf("instance links = %v", links)
	}
}

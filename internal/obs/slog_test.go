package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestNewLoggerRejectsBadArgs(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "xml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "text", "loud"); err == nil {
		t.Error("bad level accepted")
	}
	for _, format := range []string{"", "text", "json"} {
		for _, level := range []string{"", "debug", "info", "warn", "warning", "error"} {
			if _, err := NewLogger(&bytes.Buffer{}, format, level); err != nil {
				t.Errorf("format=%q level=%q: %v", format, level, err)
			}
		}
	}
}

// TestLoggerQueryIDCorrelation: a logger built by NewLogger stamps every
// record with the query correlation id carried by the context — the same id
// events, journal lines and /debug/queries use.
func TestLoggerQueryIDCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithQueryID(context.Background(), 42)
	logger.InfoContext(ctx, "with id")
	logger.Info("without id")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"query_id":42`) {
		t.Errorf("correlated line missing query_id: %s", lines[0])
	}
	if strings.Contains(lines[1], "query_id") {
		t.Errorf("uncorrelated line has query_id: %s", lines[1])
	}

	// The wrapper survives WithAttrs/WithGroup derivation.
	derived := logger.With("component", "test").WithGroup("g")
	buf.Reset()
	derived.InfoContext(ctx, "derived")
	if out := buf.String(); !strings.Contains(out, `"query_id":42`) {
		t.Errorf("derived logger lost query_id: %s", out)
	}
}

// TestEventLoggerLevels: the bus consumer maps event kinds to levels —
// lifecycle at Info, degradation at Warn/Error, traversal detail at Debug —
// so an info-level logger yields an operational narrative while debug
// replays everything.
func TestEventLoggerLevels(t *testing.T) {
	events := []Event{
		{Kind: EventQueryStarted, Query: 7, Detail: "SELECT *", Seeds: []string{"http://pod/a"}},
		{Kind: EventLinkDiscovered, Query: 7, URL: "http://pod/b", Via: "http://pod/a", Extractor: "match"},
		{Kind: EventDocumentDereferenced, Query: 7, URL: "http://pod/b", Err: "boom"},
		{Kind: EventRetryScheduled, Query: 7, URL: "http://pod/b", Attempt: 1, Err: "boom"},
		{Kind: EventQueryFinished, Query: 7, Rows: 0, Err: "traversal failed"},
	}
	run := func(level string) string {
		var buf bytes.Buffer
		logger, err := NewLogger(&buf, "json", level)
		if err != nil {
			t.Fatal(err)
		}
		bus := NewBus()
		el := LogEvents(logger, bus)
		for _, ev := range events {
			bus.Publish(ev)
		}
		el.Close()
		return buf.String()
	}

	info := run("info")
	for _, want := range []string{
		`"msg":"query started"`,
		`"level":"WARN","msg":"dereference failed"`,
		`"msg":"retry scheduled"`,
		`"level":"ERROR","msg":"query finished"`,
		`"query_id":7`,
	} {
		if !strings.Contains(info, want) {
			t.Errorf("info log missing %q:\n%s", want, info)
		}
	}
	if strings.Contains(info, "link discovered") {
		t.Errorf("info log leaks debug detail:\n%s", info)
	}
	if got := strings.Count(strings.TrimSpace(info), "\n") + 1; got != 4 {
		t.Errorf("info log lines = %d, want 4:\n%s", got, info)
	}

	debug := run("debug")
	if !strings.Contains(debug, "link discovered") {
		t.Errorf("debug log missing traversal detail:\n%s", debug)
	}
}

// TestEventLoggerNilSafe: closing a nil logger is a no-op.
func TestEventLoggerNilSafe(t *testing.T) {
	var el *EventLogger
	el.Close()
}

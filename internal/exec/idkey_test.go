package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/store"
)

// keyVarNames returns w distinct variable names.
func keyVarNames(w int) []string {
	vars := make([]string, w)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
	}
	return vars
}

// TestIDKeyExhaustiveWidths exhaustively checks, for key widths 0..6, that
// idKeyer.key separates every pair of distinct rows and unifies every pair
// of equal rows over a small term universe — including unbound slots, which
// must key exactly like the NoTerm sentinel and nothing else.
func TestIDKeyExhaustiveWidths(t *testing.T) {
	s := store.New()
	d := s.Dict()
	// Universe per slot: unbound, or one of three terms.
	terms := []rdf.Term{
		rdf.NewIRI("http://example.org/a"),
		rdf.NewLiteral("a"),
		rdf.NewTypedLiteral("1", rdf.XSDInteger),
	}
	for width := 0; width <= 6; width++ {
		vars := keyVarNames(width)
		keyer := newIDKeyer(d, vars)
		// Enumerate all (len(terms)+1)^width rows.
		total := 1
		for i := 0; i < width; i++ {
			total *= len(terms) + 1
		}
		keys := make(map[idKey]int, total) // key -> row encoding
		for enc := 0; enc < total; enc++ {
			b := rdf.Binding{}
			ids := make([]rdf.TermID, width)
			rem := enc
			for i := 0; i < width; i++ {
				choice := rem % (len(terms) + 1)
				rem /= len(terms) + 1
				if choice > 0 {
					b[vars[i]] = terms[choice-1]
					ids[i] = d.Intern(terms[choice-1])
				}
			}
			k := keyer.key(b)
			if prev, dup := keys[k]; dup {
				t.Fatalf("width %d: rows %d and %d collide on key %+v", width, prev, enc, k)
			}
			keys[k] = enc
			// The batch path must produce the bit-identical key from the
			// same IDs in the same variable order.
			if bk := idKeyOf(ids); bk != k {
				t.Fatalf("width %d row %d: idKeyOf %+v != idKeyer.key %+v", width, enc, bk, k)
			}
			// Keys are deterministic: recomputing gives the same key.
			if again := keyer.key(b); again != k {
				t.Fatalf("width %d row %d: key not deterministic", width, enc)
			}
		}
		if len(keys) != total {
			t.Fatalf("width %d: %d distinct keys for %d distinct rows", width, len(keys), total)
		}
	}
}

// TestIDKeyCollisionFreedomRandom hammers collision-freedom: 10k random
// bindings over 6 variables — any two that render differently must key
// differently, any two equal rows must share a key.
func TestIDKeyCollisionFreedomRandom(t *testing.T) {
	s := store.New()
	d := s.Dict()
	r := rand.New(rand.NewSource(11))
	vars := keyVarNames(6)
	keyer := newIDKeyer(d, vars)

	var pool []rdf.Term
	for i := 0; i < 50; i++ {
		pool = append(pool, rdf.NewIRI(fmt.Sprintf("http://example.org/r%d", i)))
		pool = append(pool, rdf.NewLiteral(fmt.Sprintf("lit%d", i)))
		pool = append(pool, rdf.NewTypedLiteral(fmt.Sprintf("%d", i), rdf.XSDInteger))
	}

	canonRow := func(b rdf.Binding) string {
		out := ""
		for _, v := range vars {
			if t, ok := b[v]; ok {
				out += t.String() + "|"
			} else {
				out += "UNDEF|"
			}
		}
		return out
	}

	byKey := map[idKey]string{}
	byRow := map[string]idKey{}
	for i := 0; i < 10000; i++ {
		b := rdf.Binding{}
		for _, v := range vars {
			if r.Intn(4) > 0 {
				b[v] = pool[r.Intn(len(pool))]
			}
		}
		k := keyer.key(b)
		row := canonRow(b)
		if prevRow, ok := byKey[k]; ok && prevRow != row {
			t.Fatalf("collision: rows %q and %q share key %+v", prevRow, row, k)
		}
		if prevKey, ok := byRow[row]; ok && prevKey != k {
			t.Fatalf("instability: row %q keyed %+v then %+v", row, prevKey, k)
		}
		byKey[k] = row
		byRow[row] = k
	}
}

// TestUnboundRoundTripsThroughBatchJoin is the UNDEF regression: a variable
// absent from one join side enters the batch pipeline as NoTerm, must not
// match any bound value group, and must decode back out as an absent
// binding entry — not a phantom term.
func TestUnboundRoundTripsThroughBatchJoin(t *testing.T) {
	rig := newPropRig(42)
	ctx := context.Background()

	// Left rows over {a, b}: b sometimes unbound (NoTerm holes).
	// Right rows over {b, c}: joined on ?b; an unbound left ?b is
	// compatible with every right row (SPARQL merge semantics).
	schemaL := []string{"a", "b"}
	schemaR := []string{"b", "c"}
	left := getBatch(schemaL, false)
	right := getBatch(schemaR, false)
	b1 := rig.pool[0]
	b2 := rig.pool[1]
	cv := rig.pool[2]
	left.cols[0] = append(left.cols[0], rig.pool[3], rig.pool[4], rig.pool[5])
	left.cols[1] = append(left.cols[1], b1, rdf.NoTerm, b2)
	left.n = 3
	right.cols[0] = append(right.cols[0], b1, rdf.NoTerm)
	right.cols[1] = append(right.cols[1], cv, cv)
	right.n = 2

	leftRows := rig.flatten([]*Batch{left})
	rightRows := rig.flatten([]*Batch{right})
	for _, rows := range [][]rdf.Binding{leftRows, rightRows} {
		for _, r := range rows {
			for v, term := range r {
				if term == (rdf.Term{}) {
					t.Fatalf("NoTerm decoded into a phantom term for ?%s in %v", v, r)
				}
			}
		}
	}
	if _, bound := leftRows[1]["b"]; bound {
		t.Fatalf("unbound ?b decoded as bound: %v", leftRows[1])
	}

	valuesL := algebra.Values{Variables: schemaL, Rows: leftRows}
	valuesR := algebra.Values{Variables: schemaR, Rows: rightRows}
	join := algebra.Join{Left: valuesL, Right: valuesR}
	outVars := join.Vars()
	want := canon(outVars, collect(Eval(ctx, join, rig.ref)))

	lb := getBatch(schemaL, false)
	rb := getBatch(schemaR, false)
	for c := range left.cols {
		lb.cols[c] = append(lb.cols[c], left.cols[c]...)
	}
	lb.n = left.n
	for c := range right.cols {
		rb.cols[c] = append(rb.cols[c], right.cols[c]...)
	}
	rb.n = right.n
	one := func(b *Batch) BatchStream {
		ch := make(chan *Batch, 1)
		ch <- b
		close(ch)
		return ch
	}
	got := canon(outVars, collect(batchesToRows(ctx, rig.env,
		batchJoin(ctx, rig.env, outVars, algebra.SharedVars(valuesL, valuesR), one(lb), one(rb)))))

	if len(got) != len(want) {
		t.Fatalf("join through batches: %d solutions, reference %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("solution %d differs\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
	// The unbound-row pairings must be present: left row 2 (?b unbound)
	// joins both right rows, and right row 2 (?b unbound) joins all left
	// rows — 3 + 2 extra solutions beyond the exact b1 match.
	if len(got) < 5 {
		t.Fatalf("partial-row probe lost unbound pairings: only %d solutions: %v", len(got), got)
	}
}

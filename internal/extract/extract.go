// Package extract implements link extraction strategies: given a freshly
// dereferenced document, each extractor proposes further documents to
// traverse. The engine combines Solid-aware extractors (LDP containers,
// WebID profiles with pim:storage, Solid Type Indexes filtered by the
// query's classes — the structural assumptions of the paper's approach
// [14]) with Solid-agnostic reachability criteria (cMatch and cAll,
// Hartig & Freytag [19]).
package extract

import (
	"net/url"
	"sort"

	"ltqp/internal/rdf"
)

// Document is a dereferenced document handed to extractors.
type Document struct {
	// IRI is the document's (final) URL.
	IRI string
	// Graph holds the parsed triples.
	Graph *rdf.Graph
}

// Link is a proposed traversal step.
type Link struct {
	// URL of the document to dereference (fragments stripped).
	URL string
	// Reason names the link's discovery label (stable identifiers used for
	// queue prioritization and the metrics waterfall). One extractor may
	// emit several labels — SolidProfile emits "solid-profile" and
	// "storage" links.
	Reason string
	// Extractor is the Name() of the extractor that produced the link,
	// used to label discovery edges in the traversal topology.
	Extractor string
}

// Extractor proposes links from a document.
type Extractor interface {
	// Name returns the extractor's stable identifier.
	Name() string
	// Extract returns proposed links; duplicates across extractors are
	// fine — the link queue deduplicates.
	Extract(doc Document) []Link
}

// QueryShape is what extractors know about the running query: the constant
// predicates, classes, and IRIs mentioned in its patterns. Query-driven
// extractors use it to prune traversal.
type QueryShape struct {
	// Predicates are the constant predicate IRIs of the query patterns.
	Predicates map[string]bool
	// Classes are the constant objects of rdf:type patterns.
	Classes map[string]bool
	// IRIs are all constant subject/object IRIs.
	IRIs map[string]bool
}

// link builds a Link from an IRI term, stripping the fragment; it returns
// false for non-HTTP terms and for http(s) IRIs that do not parse or have
// no host ("http://", "http://%"), which can never dereference — hostile
// documents use such IRIs to clog the queue with guaranteed-dead fetches.
func link(t rdf.Term, extractor, reason string) (Link, bool) {
	if t.Kind != rdf.TermIRI || !rdf.IsHTTPIRI(t.Value) {
		return Link{}, false
	}
	u := rdf.DocumentIRI(t)
	if parsed, err := url.Parse(u); err != nil || parsed.Host == "" {
		return Link{}, false
	}
	return Link{URL: u, Reason: reason, Extractor: extractor}, true
}

// dedup removes duplicate URLs preserving order.
func dedup(links []Link) []Link {
	seen := map[string]bool{}
	out := links[:0]
	for _, l := range links {
		if !seen[l.URL] {
			seen[l.URL] = true
			out = append(out, l)
		}
	}
	return out
}

// LDPContainer follows ldp:contains membership links, walking the document
// hierarchy of a pod (paper Listing 1).
type LDPContainer struct{}

// Name implements Extractor.
func (LDPContainer) Name() string { return "ldp-container" }

// Extract implements Extractor.
func (LDPContainer) Extract(doc Document) []Link {
	var out []Link
	for _, t := range doc.Graph.Triples() {
		if t.P.Kind == rdf.TermIRI && t.P.Value == rdf.LDPContains {
			if l, ok := link(t.O, "ldp-container", "ldp-container"); ok {
				out = append(out, l)
			}
		}
	}
	return dedup(out)
}

// SolidProfile follows the pod discovery links of a WebID profile document
// (paper Listing 2): pim:storage to the pod root and
// solid:publicTypeIndex to the type index.
type SolidProfile struct{}

// Name implements Extractor.
func (SolidProfile) Name() string { return "solid-profile" }

// Extract implements Extractor.
func (SolidProfile) Extract(doc Document) []Link {
	var out []Link
	for _, t := range doc.Graph.Triples() {
		if t.P.Kind != rdf.TermIRI {
			continue
		}
		switch t.P.Value {
		case rdf.SolidPublicTypeIndex:
			if l, ok := link(t.O, "solid-profile", "solid-profile"); ok {
				out = append(out, l)
			}
		case rdf.PIMStorage:
			if l, ok := link(t.O, "solid-profile", "storage"); ok {
				out = append(out, l)
			}
		}
	}
	return dedup(out)
}

// TypeIndex follows solid:instance and solid:instanceContainer links from
// Solid Type Index registrations (paper Listing 3). When the query mentions
// constant classes, only registrations for those classes are followed —
// this is the class-pruning optimization of [14]; without class knowledge
// every registration is followed.
type TypeIndex struct {
	// Shape carries the query's classes; nil follows all registrations.
	Shape *QueryShape
}

// Name implements Extractor.
func (TypeIndex) Name() string { return "type-index" }

// Extract implements Extractor.
func (e TypeIndex) Extract(doc Document) []Link {
	g := doc.Graph
	var out []Link
	for _, reg := range g.Subjects(rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.SolidTypeRegistration)) {
		if e.Shape != nil && len(e.Shape.Classes) > 0 {
			forClass := g.FirstObject(reg, rdf.NewIRI(rdf.SolidForClass))
			if forClass.Kind == rdf.TermIRI && !e.Shape.Classes[forClass.Value] {
				continue
			}
		}
		for _, inst := range g.Objects(reg, rdf.NewIRI(rdf.SolidInstance)) {
			if l, ok := link(inst, "type-index", "type-index"); ok {
				out = append(out, l)
			}
		}
		for _, c := range g.Objects(reg, rdf.NewIRI(rdf.SolidInstanceContainer)) {
			if l, ok := link(c, "type-index", "type-index-container"); ok {
				out = append(out, l)
			}
		}
	}
	return dedup(out)
}

// SeeAlso follows rdfs:seeAlso and owl:sameAs data links.
type SeeAlso struct{}

// Name implements Extractor.
func (SeeAlso) Name() string { return "see-also" }

const owlSameAs = "http://www.w3.org/2002/07/owl#sameAs"

// Extract implements Extractor.
func (SeeAlso) Extract(doc Document) []Link {
	var out []Link
	for _, t := range doc.Graph.Triples() {
		if t.P.Kind != rdf.TermIRI {
			continue
		}
		if t.P.Value == rdf.RDFSSeeAlso || t.P.Value == owlSameAs {
			if l, ok := link(t.O, "see-also", "see-also"); ok {
				out = append(out, l)
			}
		}
	}
	return dedup(out)
}

// CMatch is Hartig's cMatch reachability criterion: follow IRIs occurring
// in triples that could contribute to the query — i.e. triples whose
// predicate (or class, for rdf:type) is mentioned in the query.
type CMatch struct {
	Shape *QueryShape
}

// Name implements Extractor.
func (CMatch) Name() string { return "match" }

// Extract implements Extractor.
func (e CMatch) Extract(doc Document) []Link {
	if e.Shape == nil {
		return nil
	}
	var out []Link
	for _, t := range doc.Graph.Triples() {
		if t.P.Kind != rdf.TermIRI {
			continue
		}
		relevant := e.Shape.Predicates[t.P.Value]
		if !relevant && t.P.Value == rdf.RDFType && t.O.Kind == rdf.TermIRI && e.Shape.Classes[t.O.Value] {
			relevant = true
		}
		if !relevant {
			continue
		}
		if l, ok := link(t.S, "match", "match"); ok {
			out = append(out, l)
		}
		if l, ok := link(t.O, "match", "match"); ok {
			out = append(out, l)
		}
	}
	return dedup(out)
}

// CAll is the cAll reachability criterion: follow every IRI in every
// position. It is the exhaustive baseline traversal; on an unbounded Web
// it does not terminate, so it is only usable against closed simulated
// environments (the extractor ablation benchmarks).
type CAll struct{}

// Name implements Extractor.
func (CAll) Name() string { return "all" }

// Extract implements Extractor.
func (CAll) Extract(doc Document) []Link {
	var out []Link
	for _, t := range doc.Graph.Triples() {
		for _, term := range [3]rdf.Term{t.S, t.P, t.O} {
			if l, ok := link(term, "all", "all"); ok {
				out = append(out, l)
			}
		}
	}
	return dedup(out)
}

// DefaultSolidSet is the paper's configuration: Solid-aware structural
// extractors, the cMatch criterion, and rdfs:seeAlso/owl:sameAs data links
// (Comunica's default link extraction actors).
func DefaultSolidSet(shape *QueryShape) []Extractor {
	return []Extractor{
		SolidProfile{},
		TypeIndex{Shape: shape},
		LDPContainer{},
		CMatch{Shape: shape},
		SeeAlso{},
	}
}

// Names lists extractor names, for configuration display.
func Names(es []Extractor) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name()
	}
	sort.Strings(out)
	return out
}

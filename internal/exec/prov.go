package exec

import (
	"sort"
	"sync"

	"ltqp/internal/rdf"
	"ltqp/internal/store"
)

// Prov is the per-execution provenance sink. When attached to an Env,
// pattern scans annotate every solution with the document the matched
// triple was first contributed by (see rdf prov pseudo-variables); joins
// then accumulate the union of both sides' documents, so every final result
// carries the exact set of documents whose triples produced it.
//
// A nil *Prov disables everything: the hot path pays one pointer comparison
// and zero allocations, the same opt-out pattern as the no-op spans.
type Prov struct {
	mu   sync.Mutex
	docs map[string]int // document IRI -> pattern matches it contributed
}

// NewProv returns an empty provenance sink.
func NewProv() *Prov {
	return &Prov{docs: map[string]int{}}
}

// Annotate extends a pattern-match solution with the source document of the
// matched triple, tallying the contribution. Nil-safe: a nil sink returns b
// untouched.
func (p *Prov) Annotate(s *store.Store, b rdf.Binding, t rdf.Triple) rdf.Binding {
	if p == nil {
		return b
	}
	src, ok := s.Source(t)
	if !ok {
		return b
	}
	p.mu.Lock()
	p.docs[src.Value]++
	p.mu.Unlock()
	return b.WithSource(src)
}

// add tallies one pattern match contributed by the document. Batch scans
// use it directly: they carry source IDs in the batch provenance column
// instead of binding entries, but the contribution ledger is the same.
func (p *Prov) add(doc string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.docs[doc]++
	p.mu.Unlock()
}

// Contributions returns, per document IRI, how many pattern matches the
// document's triples fed into the pipeline, sorted by IRI.
func (p *Prov) Contributions() []DocContribution {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]DocContribution, 0, len(p.docs))
	for doc, n := range p.docs {
		out = append(out, DocContribution{Document: doc, Matches: n})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Document < out[j].Document })
	return out
}

// DocContribution is one document's share of the pattern matches that
// entered the pipeline.
type DocContribution struct {
	Document string `json:"document"`
	Matches  int    `json:"matches"`
}

package serve

import (
	"net"
	"net/http"
)

// TenantHeader is the request header carrying an explicit tenant identity.
const TenantHeader = "X-API-Key"

// TenantFromRequest derives the admission-quota bucket for an HTTP request:
// the X-API-Key header when present, otherwise the client IP (port
// stripped). Every request maps to some bucket, so anonymous floods from
// one address are throttled like any other tenant.
func TenantFromRequest(r *http.Request) string {
	if key := r.Header.Get(TenantHeader); key != "" {
		return "key:" + key
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		host = r.RemoteAddr
	}
	if host == "" {
		return "anon"
	}
	return "ip:" + host
}

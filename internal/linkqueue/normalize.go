package linkqueue

import (
	"net/url"
	"strings"
)

// Normalize canonicalizes a link URL for deduplication. RFC 3986 §6.2.2-3
// syntax-based normalization: the scheme and host are case-insensitive, and
// the default port of a scheme is equivalent to no port at all — so
// "HTTP://Host:80/x" and "http://host/x" name the same document. Without
// this, an adversarial pod can re-trigger a fetch of an already-visited
// document arbitrarily often by emitting spoofed case/port variants of its
// URL (the IRI-spoofing attack class of the LTQP security analysis), and a
// traversal loop through such variants never terminates.
//
// Only the scheme, host case and default ports are touched: paths stay
// byte-exact (they are case-sensitive on most servers), and anything that
// does not parse as a URL is returned unchanged — normalization must never
// make two genuinely distinct documents collide.
func Normalize(raw string) string {
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return raw
	}
	u.Scheme = strings.ToLower(u.Scheme) // Parse lowercases it already; keep explicit
	host := strings.ToLower(u.Host)
	switch {
	case u.Scheme == "http" && strings.HasSuffix(host, ":80"):
		host = strings.TrimSuffix(host, ":80")
	case u.Scheme == "https" && strings.HasSuffix(host, ":443"):
		host = strings.TrimSuffix(host, ":443")
	}
	u.Host = host
	if n := u.String(); n != raw {
		return n
	}
	return raw
}

// Origin extracts a URL's origin (scheme://host, normalized, default ports
// stripped) — the unit of the traversal engine's per-origin budgets and
// queue fairness. URLs that do not parse share the synthetic origin
// "invalid://", so malformed links cannot dodge origin accounting by being
// unparseable.
func Origin(raw string) string {
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return "invalid://"
	}
	scheme := strings.ToLower(u.Scheme)
	host := strings.ToLower(u.Host)
	switch {
	case scheme == "http" && strings.HasSuffix(host, ":80"):
		host = strings.TrimSuffix(host, ":80")
	case scheme == "https" && strings.HasSuffix(host, ":443"):
		host = strings.TrimSuffix(host, ":443")
	}
	return scheme + "://" + host
}

package solidbench

import (
	"fmt"
	"time"
)

// rng is a small deterministic xorshift64* generator so datasets are
// reproducible across runs and platforms.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng {
	state := uint64(seed)
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	return &rng{state: state}
}

func (r *rng) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// around returns a value near mean (±50%).
func (r *rng) around(mean int) int {
	if mean <= 1 {
		return mean
	}
	return mean/2 + r.intn(mean+1)
}

func (r *rng) pick(list []string) string { return list[r.intn(len(list))] }

var (
	firstNames = []string{
		"Eli", "Zulma", "Ana", "Bram", "Chen", "Divya", "Emeka", "Fatima",
		"Gustav", "Hana", "Ivan", "Jun", "Karla", "Lucas", "Mahinda", "Noor",
		"Otto", "Priya", "Quentin", "Rosa", "Sven", "Tomoko", "Umar", "Vera",
		"Wei", "Ximena", "Yusuf", "Zanele",
	}
	lastNames = []string{
		"Peretz", "Vermeulen", "Garcia", "Li", "Kumar", "Okafor", "Haddad",
		"Johansson", "Sato", "Novak", "Silva", "Kimura", "Ahmed", "Petrov",
		"Mbeki", "Rossi", "Dubois", "Hansen", "Yilmaz", "Costa",
	}
	cities = []string{
		"Ghent", "Antwerp", "Rotterdam", "Berlin", "Porto", "Nairobi",
		"Kyoto", "Mumbai", "Bogota", "Oslo",
	}
	countries = []string{
		"Belgium", "Netherlands", "Germany", "Portugal", "Kenya", "Japan",
		"India", "Colombia", "Norway", "Brazil",
	}
	browsers  = []string{"Firefox", "Chrome", "Safari", "Internet Explorer", "Opera"}
	languages = []string{"en", "nl", "fr", "de", "pt", "ja", "hi", "es"}
	tagNames  = []string{
		"Alanis_Morissette", "Kevin_Rudd", "Hamid_Karzai", "Augustine_of_Hippo",
		"Freddie_Mercury", "Nelson_Mandela", "Marie_Curie", "Alan_Turing",
		"Miles_Davis", "Frida_Kahlo", "Ada_Lovelace", "Jorge_Luis_Borges",
	}
	contentWords = []string{
		"About", "the", "world", "of", "music", "and", "photos", "from",
		"yesterday", "good", "maybe", "fine", "right", "thanks", "new",
		"album", "trip", "mountain", "city", "friends", "concert", "stadium",
	}
)

// Person is one SNB person (and Solid pod owner).
type Person struct {
	Index     int
	ID        int64
	FirstName string
	LastName  string
	Gender    string
	Birthday  time.Time
	Browser   string
	IP        string
	City      string
	Languages []string
	Creation  time.Time
	Friends   []int // indexes into Dataset.Persons
}

// PodID is the zero-padded pod identifier (SolidBench style, e.g.
// "00000006597069767117").
func (p Person) PodID() string { return fmt.Sprintf("%020d", p.ID) }

// Forum is a wall or album forum.
type Forum struct {
	ID        int64
	Title     string
	Moderator int // person index
	Wall      bool
	// Posts are indexes into Dataset.Posts contained in this forum.
	Posts []int
}

// Post is one SNB post.
type Post struct {
	ID       int64
	Creator  int // person index
	Forum    int // forum index
	Creation time.Time
	Content  string
	Image    string // image posts have an imageFile instead of content
	Browser  string
	IP       string
	Country  string
	Tags     []string
}

// Comment is a reply to a post.
type Comment struct {
	ID       int64
	Creator  int
	ReplyOf  int // post index
	Creation time.Time
	Content  string
	Browser  string
	Country  string
}

// Like is a person liking a post or comment.
type Like struct {
	Person   int
	Post     int // post index, or -1
	Comment  int // comment index, or -1
	Creation time.Time
}

// Dataset is a fully generated social network.
type Dataset struct {
	Config   Config
	Persons  []Person
	Forums   []Forum
	Posts    []Post
	Comments []Comment
	Likes    []Like
}

// epoch is the start of the simulated activity window (as in SNB's
// 2010–2012 window).
var epoch = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

// Generate builds the deterministic dataset for a configuration.
func Generate(cfg Config) *Dataset {
	r := newRNG(cfg.Seed)
	ds := &Dataset{Config: cfg}

	// Persons.
	for i := 0; i < cfg.Persons; i++ {
		id := int64(i+1)*65970697671 + int64(r.intn(999))
		gender := "female"
		if r.intn(2) == 0 {
			gender = "male"
		}
		p := Person{
			Index:     i,
			ID:        id,
			FirstName: r.pick(firstNames),
			LastName:  r.pick(lastNames),
			Gender:    gender,
			Birthday:  epoch.AddDate(-40+r.intn(25), r.intn(12), r.intn(28)),
			Browser:   r.pick(browsers),
			IP:        fmt.Sprintf("%d.%d.%d.%d", 1+r.intn(223), r.intn(256), r.intn(256), 1+r.intn(254)),
			City:      r.pick(cities),
			Languages: []string{r.pick(languages), "en"},
			Creation:  epoch.AddDate(0, 0, r.intn(200)),
		}
		ds.Persons = append(ds.Persons, p)
	}

	// Friendships: preferential, symmetric.
	for i := range ds.Persons {
		want := r.around(cfg.FriendsPerPerson)
		for len(ds.Persons[i].Friends) < want && cfg.Persons > 1 {
			j := r.intn(cfg.Persons)
			if j == i || contains(ds.Persons[i].Friends, j) {
				// Try the next person to keep termination simple.
				j = (j + 1) % cfg.Persons
				if j == i || contains(ds.Persons[i].Friends, j) {
					break
				}
			}
			ds.Persons[i].Friends = append(ds.Persons[i].Friends, j)
			if !contains(ds.Persons[j].Friends, i) {
				ds.Persons[j].Friends = append(ds.Persons[j].Friends, i)
			}
		}
	}

	// Forums: a wall per person plus albums.
	for i, p := range ds.Persons {
		wall := Forum{
			ID:        int64(i)*1099511627776 + 47,
			Title:     fmt.Sprintf("Wall of %s %s", p.FirstName, p.LastName),
			Moderator: i,
			Wall:      true,
		}
		ds.Forums = append(ds.Forums, wall)
		for a := 0; a < cfg.AlbumsPerPerson; a++ {
			ds.Forums = append(ds.Forums, Forum{
				ID:        int64(i)*1099511627776 + int64(a+1)*68719476736 + int64(r.intn(999)),
				Title:     fmt.Sprintf("Album %d of %s %s", a+1, p.FirstName, p.LastName),
				Moderator: i,
			})
		}
	}
	forumsOf := func(person int) []int {
		base := person * (cfg.AlbumsPerPerson + 1)
		out := make([]int, cfg.AlbumsPerPerson+1)
		for k := range out {
			out[k] = base + k
		}
		return out
	}

	// Posts: each person posts into their own forums and friends' walls.
	for i, p := range ds.Persons {
		n := r.around(cfg.PostsPerPerson)
		for k := 0; k < n; k++ {
			var forum int
			own := forumsOf(i)
			if len(p.Friends) > 0 && r.intn(4) == 0 {
				// A quarter of posts land on a friend's wall.
				forum = forumsOf(p.Friends[r.intn(len(p.Friends))])[0]
			} else {
				forum = own[r.intn(len(own))]
			}
			// Posts of one bucket share a calendar day so that each pod's
			// posts/ directory holds at most PostDateBuckets documents,
			// matching SolidBench's date fragmentation.
			day := r.intn(cfg.PostDateBuckets)
			post := Post{
				ID:       int64(len(ds.Posts)+1)*137438953472 + int64(r.intn(999)),
				Creator:  i,
				Forum:    forum,
				Creation: epoch.AddDate(0, 0, day*7).Add(time.Duration(r.intn(86400)) * time.Second),
				Browser:  p.Browser,
				IP:       p.IP,
				Country:  r.pick(countries),
			}
			if r.intn(3) == 0 {
				post.Image = fmt.Sprintf("photo%d.jpg", post.ID%100000)
			} else {
				post.Content = sentence(r, 5+r.intn(12))
			}
			for t := 0; t < 1+r.intn(3); t++ {
				post.Tags = append(post.Tags, r.pick(tagNames))
			}
			ds.Forums[forum].Posts = append(ds.Forums[forum].Posts, len(ds.Posts))
			ds.Posts = append(ds.Posts, post)
		}
	}

	// Comments: replies to random posts (biased to friends' posts).
	for i, p := range ds.Persons {
		n := r.around(cfg.CommentsPerPerson)
		for k := 0; k < n && len(ds.Posts) > 0; k++ {
			target := r.intn(len(ds.Posts))
			if len(p.Friends) > 0 && r.intn(2) == 0 {
				// Prefer posts created by friends when any exist.
				f := p.Friends[r.intn(len(p.Friends))]
				for probe := 0; probe < 5; probe++ {
					cand := r.intn(len(ds.Posts))
					if ds.Posts[cand].Creator == f {
						target = cand
						break
					}
				}
			}
			// Comments land within a day of their post, so comments/
			// fragments track the post buckets (bounded file count).
			ds.Comments = append(ds.Comments, Comment{
				ID:       int64(len(ds.Comments)+1)*274877906944 + int64(r.intn(999)),
				Creator:  i,
				ReplyOf:  target,
				Creation: ds.Posts[target].Creation.Add(time.Duration(1+r.intn(59)) * time.Minute),
				Content:  sentence(r, 3+r.intn(8)),
				Browser:  p.Browser,
				Country:  r.pick(countries),
			})
		}
	}

	// Likes: posts and comments by friends.
	for i, p := range ds.Persons {
		n := r.around(cfg.LikesPerPerson)
		for k := 0; k < n && len(ds.Posts) > 0; k++ {
			like := Like{Person: i, Post: -1, Comment: -1}
			if len(ds.Comments) > 0 && r.intn(4) == 0 {
				like.Comment = r.intn(len(ds.Comments))
				like.Creation = ds.Comments[like.Comment].Creation.Add(time.Hour)
			} else {
				target := r.intn(len(ds.Posts))
				if len(p.Friends) > 0 {
					f := p.Friends[r.intn(len(p.Friends))]
					for probe := 0; probe < 5; probe++ {
						cand := r.intn(len(ds.Posts))
						if ds.Posts[cand].Creator == f {
							target = cand
							break
						}
					}
				}
				like.Post = target
				like.Creation = ds.Posts[target].Creation.Add(30 * time.Minute)
			}
			ds.Likes = append(ds.Likes, like)
		}
	}
	return ds
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sentence(r *rng, words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		out += r.pick(contentWords)
	}
	return out + "."
}

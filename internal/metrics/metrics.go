// Package metrics records the HTTP request timeline of a traversal-based
// query execution and renders it as a "resource waterfall", reproducing the
// browser network-inspector views of the paper's Figs. 4 and 5: which
// documents were fetched, which fetch caused which (via links), how deep
// the dependency chains run, and how much ran in parallel.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ltqp/internal/timeline"
)

// Request is one recorded HTTP dereference.
type Request struct {
	// URL is the dereferenced document.
	URL string
	// Parent is the document whose links caused this fetch ("" for seeds).
	Parent string
	// Reason names the link extractor that discovered the URL.
	Reason string
	// Start and End bracket the fetch.
	Start, End time.Time
	// Status is the HTTP status code (0 on transport error).
	Status int
	// Bytes is the response body size.
	Bytes int64
	// Triples is the number of triples parsed from the document.
	Triples int
	// Cached marks requests served from the engine's document cache
	// rather than the network (the "(disk cache)" rows of Fig. 4).
	Cached bool
	// Attempt is the 1-based fetch attempt for this URL within one
	// dereference; values above 1 are retries after transient failures.
	// 0 is treated as 1 (recorders predating retry support).
	Attempt int
	// Server is the server-reported share of the fetch (the sum of the
	// response's Server-Timing dur= entries): handler time plus any
	// configured or fault-injected delay. Duration()-Server approximates
	// network cost. Zero when the server sent no Server-Timing header.
	Server time.Duration
	// Err records a fetch or parse failure.
	Err string
}

// Duration returns the wall time of the request.
func (r Request) Duration() time.Duration { return r.End.Sub(r.Start) }

// QueueSample is one observation of the link queue's state, following the
// queue-evolution analysis of Eschauzier et al. [34] that the paper cites
// as a direction for link-queue enhancements.
type QueueSample struct {
	// At is the sample offset from the recorder epoch.
	At time.Duration
	// Length is the number of links queued at the sample time.
	Length int
	// Seen is the number of distinct URLs ever accepted by the queue.
	Seen int
}

// LimitTrip records one firing of a traversal defense: which limit, where,
// and the limit-vs-observed accounting. Trips ride in the degradation
// report, so a contained attack (or an overly tight budget) is visible to
// the caller instead of silently shrinking the answer set.
type LimitTrip struct {
	// Kind names the defense ("max-docs-per-origin", "max-bytes-per-origin",
	// "scope", "fanout", "queue-cap", "doc-bytes", "slow-body").
	Kind string
	// Origin is the origin whose budget tripped (empty for global caps).
	Origin string
	// URL is the link or document that crossed the limit.
	URL string
	// Limit and Observed give the configured bound and the value that
	// crossed it.
	Limit    int64
	Observed int64
}

// String renders the trip for logs and --stats output.
func (t LimitTrip) String() string {
	where := t.Origin
	if where == "" {
		where = t.URL
	}
	return fmt.Sprintf("%s at %s (%d > limit %d)", t.Kind, where, t.Observed, t.Limit)
}

// Recorder collects request events and result timestamps. It is safe for
// concurrent use.
type Recorder struct {
	mu       sync.Mutex
	started  time.Time
	requests []Request
	results  []time.Time
	queue    []QueueSample
	trips    []LimitTrip
}

// NewRecorder returns a recorder with its epoch set to now.
func NewRecorder() *Recorder {
	return &Recorder{started: time.Now()}
}

// Epoch returns the recorder's start time.
func (r *Recorder) Epoch() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.started
}

// Record appends one request event.
func (r *Recorder) Record(req Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests = append(r.requests, req)
}

// RecordResult notes that a query result was delivered at time now.
func (r *Recorder) RecordResult() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results = append(r.results, time.Now())
}

// RecordQueueSample notes the link queue's length and total accepted URLs
// at time now.
func (r *Recorder) RecordQueueSample(length, seen int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queue = append(r.queue, QueueSample{At: time.Since(r.started), Length: length, Seen: seen})
}

// RecordLimitTrip notes a traversal defense firing.
func (r *Recorder) RecordLimitTrip(t LimitTrip) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trips = append(r.trips, t)
}

// LimitTrips returns the recorded defense firings in trip order.
func (r *Recorder) LimitTrips() []LimitTrip {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]LimitTrip, len(r.trips))
	copy(out, r.trips)
	return out
}

// QueueEvolution returns the recorded link-queue samples in time order.
func (r *Recorder) QueueEvolution() []QueueSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueueSample, len(r.queue))
	copy(out, r.queue)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// PeakQueueLength returns the maximum observed queue length.
func (r *Recorder) PeakQueueLength() int {
	peak := 0
	for _, s := range r.QueueEvolution() {
		if s.Length > peak {
			peak = s.Length
		}
	}
	return peak
}

// Requests returns a copy of the recorded requests sorted by start time.
func (r *Recorder) Requests() []Request {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Request, len(r.requests))
	copy(out, r.requests)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// ResultTimes returns the recorded result delivery offsets from the epoch.
func (r *Recorder) ResultTimes() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]time.Duration, len(r.results))
	for i, t := range r.results {
		out[i] = t.Sub(r.started)
	}
	return out
}

// TimeToFirstResult returns the delay from epoch to the first result, and
// false when no result was recorded.
func (r *Recorder) TimeToFirstResult() (time.Duration, bool) {
	times := r.ResultTimes()
	if len(times) == 0 {
		return 0, false
	}
	return times[0], true
}

// Stats are aggregate traversal statistics.
type Stats struct {
	Requests      int
	Failed        int
	TotalBytes    int64
	TotalTriples  int
	MaxDepth      int
	MaxParallel   int
	WallTime      time.Duration
	DistinctHosts int
	// Retries counts retry attempts (request events with Attempt > 1).
	Retries int
	// FailedDocuments counts distinct URLs that never yielded a
	// successful fetch — the documents a lenient traversal ran without.
	FailedDocuments int
	// CacheHits counts requests served from the engine's document cache
	// rather than the network (the "(disk cache)" rows of Fig. 4).
	CacheHits int
}

// Stats aggregates the recorded events.
func (r *Recorder) Stats() Stats {
	reqs := r.Requests()
	s := Stats{Requests: len(reqs)}
	depth := map[string]int{}
	hosts := map[string]bool{}
	succeeded := map[string]bool{}
	attempted := map[string]bool{}
	var minStart, maxEnd time.Time
	for i, q := range reqs {
		if q.Status == 0 || q.Status >= 400 || q.Err != "" {
			s.Failed++
		} else {
			succeeded[q.URL] = true
		}
		attempted[q.URL] = true
		if q.Attempt > 1 {
			s.Retries++
		}
		if q.Cached {
			s.CacheHits++
		}
		s.TotalBytes += q.Bytes
		s.TotalTriples += q.Triples
		d := 0
		if q.Parent != "" {
			d = depth[q.Parent] + 1
		}
		depth[q.URL] = d
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
		hosts[hostAndPod(q.URL)] = true
		if i == 0 || q.Start.Before(minStart) {
			minStart = q.Start
		}
		if q.End.After(maxEnd) {
			maxEnd = q.End
		}
	}
	s.DistinctHosts = len(hosts)
	for u := range attempted {
		if !succeeded[u] {
			s.FailedDocuments++
		}
	}
	if !minStart.IsZero() {
		s.WallTime = maxEnd.Sub(minStart)
	}
	// Max parallelism: sweep over start/end events.
	type ev struct {
		t     time.Time
		delta int
	}
	var evs []ev
	for _, q := range reqs {
		evs = append(evs, ev{q.Start, 1}, ev{q.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t.Equal(evs[j].t) {
			return evs[i].delta < evs[j].delta
		}
		return evs[i].t.Before(evs[j].t)
	})
	cur := 0
	for _, e := range evs {
		cur += e.delta
		if cur > s.MaxParallel {
			s.MaxParallel = cur
		}
	}
	return s
}

// Degradation summarizes how far a lenient execution ran short of the
// fault-free ideal: which documents were abandoned after exhausting their
// retries, and how many retry attempts the traversal absorbed. It makes
// partial results observable rather than silent — a lenient engine can
// report "answered from all but these N documents".
type Degradation struct {
	// FailedDocuments are the distinct URLs that never yielded a
	// successful fetch, ordered by first attempt.
	FailedDocuments []string
	// Retries counts retry attempts (request events with Attempt > 1),
	// including those that eventually succeeded.
	Retries int
	// LimitTrips are the traversal defenses that fired during the
	// execution (per-origin budgets, scope allowlist, fanout/queue caps,
	// oversized/slow-body cutoffs) — each one a place the traversal
	// deliberately stopped short of exhaustive.
	LimitTrips []LimitTrip
}

// Degraded reports whether any document was lost, retried, or cut off by a
// traversal defense.
func (d Degradation) Degraded() bool {
	return len(d.FailedDocuments) > 0 || d.Retries > 0 || len(d.LimitTrips) > 0
}

// Degradation computes the degradation summary from the recorded events.
func (r *Recorder) Degradation() Degradation {
	var d Degradation
	succeeded := map[string]bool{}
	for _, q := range r.Requests() {
		if q.Attempt > 1 {
			d.Retries++
		}
		if q.Status == 0 || q.Status >= 400 || q.Err != "" {
			continue
		}
		succeeded[q.URL] = true
	}
	seen := map[string]bool{}
	for _, q := range r.Requests() {
		if succeeded[q.URL] || seen[q.URL] {
			continue
		}
		seen[q.URL] = true
		d.FailedDocuments = append(d.FailedDocuments, q.URL)
	}
	d.LimitTrips = r.LimitTrips()
	return d
}

// hostAndPod extracts "host/pods/<id>" style prefixes so that multi-pod
// traversal on a single simulated host still counts distinct pods.
func hostAndPod(u string) string {
	rest := u
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	parts := strings.Split(rest, "/")
	if len(parts) >= 3 && parts[1] == "pods" {
		return parts[0] + "/pods/" + parts[2]
	}
	if len(parts) > 0 {
		return parts[0]
	}
	return rest
}

// PodsTouched counts the distinct simulated pods among the requests.
func (r *Recorder) PodsTouched() int {
	pods := map[string]bool{}
	for _, q := range r.Requests() {
		key := hostAndPod(q.URL)
		if strings.Contains(key, "/pods/") {
			pods[key] = true
		}
	}
	return len(pods)
}

// Waterfall renders an ASCII resource waterfall like the browser network
// tab of Figs. 4 and 5: one row per request in start order, bars on a
// common time axis, with status, size and the discovery reason.
func (r *Recorder) Waterfall(width int) string {
	reqs := r.Requests()
	if len(reqs) == 0 {
		return "(no requests)\n"
	}
	epoch := reqs[0].Start
	var b strings.Builder
	b.WriteString(timeline.Render(WaterfallRows(reqs, epoch, nil), timeline.Options{Width: width}))
	s := r.Stats()
	fmt.Fprintf(&b, "\n%d requests (%d failed, %d retries), %d triples, %d bytes, max depth %d, max parallel %d, wall %s\n",
		s.Requests, s.Failed, s.Retries, s.TotalTriples, s.TotalBytes, s.MaxDepth, s.MaxParallel, s.WallTime.Round(time.Microsecond))
	if s.FailedDocuments > 0 {
		fmt.Fprintf(&b, "%d documents abandoned after exhausting retries\n", s.FailedDocuments)
	}
	return b.String()
}

// shorten abbreviates long URLs for display, keeping the tail.
func shorten(u string, max int) string { return timeline.Shorten(u, max) }

// WaterfallRows converts requests to timeline rows against the given epoch:
// status/cache/error columns, retry annotation in the note, and rows whose
// URL appears in mark drawn highlighted (the critical-path rendering in
// /debug/traces). Shared by Waterfall and the obs trace views.
func WaterfallRows(reqs []Request, epoch time.Time, mark map[string]bool) []timeline.Row {
	rows := make([]timeline.Row, 0, len(reqs))
	for _, q := range reqs {
		status := fmt.Sprintf("%d", q.Status)
		if q.Err != "" {
			status = "ERR"
		}
		if q.Cached {
			status = "cache"
		}
		note := q.Reason
		if q.Attempt > 1 {
			note += fmt.Sprintf(" (retry %d)", q.Attempt-1)
		}
		rows = append(rows, timeline.Row{
			Label:  q.URL,
			Status: status,
			Bytes:  q.Bytes,
			Start:  q.Start.Sub(epoch),
			End:    q.End.Sub(epoch),
			Note:   note,
			Mark:   mark[q.URL],
		})
	}
	return rows
}

// DependencyEdges returns parent→child fetch dependencies, reproducing the
// "some HTTP requests depend on other requests due to links between them"
// aspect of the demo (Fig. 4).
func (r *Recorder) DependencyEdges() [][2]string {
	var out [][2]string
	for _, q := range r.Requests() {
		if q.Parent != "" {
			out = append(out, [2]string{q.Parent, q.URL})
		}
	}
	return out
}

// Package results serializes SPARQL query solutions in the standard W3C
// interchange formats — SPARQL 1.1 Query Results JSON, CSV, and TSV — so
// that the engine's output can feed any downstream SPARQL tooling, and in
// the newline-delimited JSON format of the paper's CLI (Fig. 2).
package results

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ltqp/internal/rdf"
)

// jsonTerm is the SPARQL 1.1 Results JSON encoding of one RDF term.
type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

// encodeTerm maps an RDF term to its Results-JSON form.
func encodeTerm(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.TermIRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.TermBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	case rdf.TermLiteral:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Language, Datatype: t.Datatype}
	default:
		return jsonTerm{Type: "literal", Value: ""}
	}
}

// WriteJSON writes solutions in the application/sparql-results+json
// format (SPARQL 1.1 Query Results JSON).
func WriteJSON(w io.Writer, vars []string, bindings []rdf.Binding) error {
	type body struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]jsonTerm `json:"bindings"`
		} `json:"results"`
	}
	var out body
	out.Head.Vars = vars
	out.Results.Bindings = make([]map[string]jsonTerm, 0, len(bindings))
	for _, b := range bindings {
		row := map[string]jsonTerm{}
		for _, v := range vars {
			if t, ok := b.Get(v); ok {
				row[v] = encodeTerm(t)
			}
		}
		out.Results.Bindings = append(out.Results.Bindings, row)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteBooleanJSON writes an ASK result in Results JSON.
func WriteBooleanJSON(w io.Writer, value bool) error {
	_, err := fmt.Fprintf(w, `{"head":{},"boolean":%v}`+"\n", value)
	return err
}

// WriteCSV writes solutions in the text/csv results format (SPARQL 1.1
// Query Results CSV): plain lexical values, RFC 4180 quoting.
func WriteCSV(w io.Writer, vars []string, bindings []rdf.Binding) error {
	if _, err := fmt.Fprintln(w, strings.Join(vars, ",")); err != nil {
		return err
	}
	for _, b := range bindings {
		cells := make([]string, len(vars))
		for i, v := range vars {
			if t, ok := b.Get(v); ok {
				cells[i] = csvEscape(t.Value)
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a cell per RFC 4180 when needed.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteTSV writes solutions in the text/tab-separated-values results
// format: full SPARQL term syntax, tab separated.
func WriteTSV(w io.Writer, vars []string, bindings []rdf.Binding) error {
	heads := make([]string, len(vars))
	for i, v := range vars {
		heads[i] = "?" + v
	}
	if _, err := fmt.Fprintln(w, strings.Join(heads, "\t")); err != nil {
		return err
	}
	for _, b := range bindings {
		cells := make([]string, len(vars))
		for i, v := range vars {
			if t, ok := b.Get(v); ok {
				cells[i] = t.String()
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// StreamNDJSON writes each binding as one JSON object per line — the
// format of the paper's command-line tool (Fig. 2). It returns the number
// of solutions written.
func StreamNDJSON(w io.Writer, vars []string, in <-chan rdf.Binding) (int, error) {
	n := 0
	for b := range in {
		obj := map[string]string{}
		for _, v := range vars {
			t, ok := b.Get(v)
			if !ok {
				continue
			}
			switch t.Kind {
			case rdf.TermLiteral:
				s := `"` + t.Value + `"`
				if t.Language != "" {
					s += "@" + t.Language
				} else if t.Datatype != "" {
					s += "^^" + t.Datatype
				}
				obj[v] = s
			default:
				obj[v] = t.Value
			}
		}
		data, err := json.Marshal(obj)
		if err != nil {
			return n, err
		}
		if _, err := fmt.Fprintln(w, string(data)); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

package sparql

import (
	"strings"

	"ltqp/internal/rdf"
)

// QueryForm identifies the query form.
type QueryForm uint8

const (
	// FormSelect is a SELECT query.
	FormSelect QueryForm = iota
	// FormAsk is an ASK query.
	FormAsk
	// FormConstruct is a CONSTRUCT query.
	FormConstruct
	// FormDescribe is a DESCRIBE query (evaluated as CBD of the resources).
	FormDescribe
)

// Query is a parsed SPARQL query.
type Query struct {
	Form     QueryForm
	Base     string
	Prefixes map[string]string

	// SELECT components.
	Distinct bool
	Reduced  bool
	// Projection lists the projected items; empty means SELECT *.
	Projection []SelectItem

	// CONSTRUCT template (also used for DESCRIBE resources via Describe).
	Template []TriplePattern
	// Describe lists the terms/variables to describe for DESCRIBE queries.
	Describe []rdf.Term

	// From lists the dataset IRIs of FROM / FROM NAMED clauses. The
	// traversal engine treats them as additional seed documents.
	From []string

	// Where is the query pattern.
	Where *GroupPattern

	GroupBy []GroupCondition
	Having  []Expression
	OrderBy []OrderCondition
	Limit   int // -1 when absent
	Offset  int

	// Values is the trailing VALUES block, if any.
	Values *ValuesPattern
}

// SelectItem is one projection item: a plain variable or (expr AS ?var).
type SelectItem struct {
	Var  string
	Expr Expression // nil for a plain variable
}

// GroupCondition is one GROUP BY condition: a variable, or expr (AS var).
type GroupCondition struct {
	Var  string
	Expr Expression // nil when grouping on a plain variable
}

// OrderCondition is one ORDER BY condition.
type OrderCondition struct {
	Expr Expression
	Desc bool
}

// TriplePattern is a subject-path-object pattern. For simple predicates the
// path is a PathIRI; richer paths come from the property-path grammar.
type TriplePattern struct {
	S    rdf.Term
	Path Path
	O    rdf.Term
}

// IsSimple reports whether the pattern's path is a plain predicate IRI.
func (tp TriplePattern) IsSimple() (rdf.Triple, bool) {
	if p, ok := tp.Path.(PathIRI); ok {
		return rdf.NewTriple(tp.S, rdf.NewIRI(p.IRI), tp.O), true
	}
	return rdf.Triple{}, false
}

// Path is a SPARQL 1.1 property path.
type Path interface{ isPath() }

// PathIRI is a plain predicate.
type PathIRI struct{ IRI string }

// PathInverse is ^path.
type PathInverse struct{ Path Path }

// PathSequence is path1/path2/...
type PathSequence struct{ Parts []Path }

// PathAlternative is path1|path2|...
type PathAlternative struct{ Parts []Path }

// PathZeroOrMore is path*.
type PathZeroOrMore struct{ Path Path }

// PathOneOrMore is path+.
type PathOneOrMore struct{ Path Path }

// PathZeroOrOne is path?.
type PathZeroOrOne struct{ Path Path }

// PathNegated is !(iri1|^iri2|...), a negated property set.
type PathNegated struct {
	// Forward lists forbidden forward predicates, Inverse forbidden inverse
	// predicates.
	Forward []string
	Inverse []string
}

func (PathIRI) isPath()         {}
func (PathInverse) isPath()     {}
func (PathSequence) isPath()    {}
func (PathAlternative) isPath() {}
func (PathZeroOrMore) isPath()  {}
func (PathOneOrMore) isPath()   {}
func (PathZeroOrOne) isPath()   {}
func (PathNegated) isPath()     {}

// GraphPattern is a node of the WHERE-clause pattern tree.
type GraphPattern interface{ isPattern() }

// BGP is a basic graph pattern: a conjunction of triple patterns.
type BGP struct{ Patterns []TriplePattern }

// GroupPattern is a `{ ... }` group: the join of its elements in order.
type GroupPattern struct{ Elements []GraphPattern }

// OptionalPattern is OPTIONAL { ... }. Filters syntactically inside the
// optional group become part of the left-join condition during algebra
// translation, per the SPARQL semantics.
type OptionalPattern struct {
	Pattern GraphPattern
}

// UnionPattern is { A } UNION { B }.
type UnionPattern struct{ Left, Right GraphPattern }

// MinusPattern is MINUS { ... }.
type MinusPattern struct{ Pattern GraphPattern }

// FilterPattern is FILTER(expr); it scopes over its enclosing group.
type FilterPattern struct{ Expr Expression }

// BindPattern is BIND(expr AS ?var).
type BindPattern struct {
	Expr Expression
	Var  string
}

// ValuesPattern is an inline VALUES data block.
type ValuesPattern struct {
	Vars []string
	// Rows holds one binding per row; unbound positions are absent.
	Rows []rdf.Binding
}

// GraphGraphPattern is GRAPH term { ... }. The traversal engine queries
// the union of all dereferenced documents and retains each triple's
// provenance: a constant graph term restricts matches to triples from that
// document, a variable graph term binds to the source document.
type GraphGraphPattern struct {
	Graph   rdf.Term
	Pattern GraphPattern
}

// SubSelect is a nested SELECT query inside a group.
type SubSelect struct{ Query *Query }

func (BGP) isPattern()               {}
func (GroupPattern) isPattern()      {}
func (OptionalPattern) isPattern()   {}
func (UnionPattern) isPattern()      {}
func (MinusPattern) isPattern()      {}
func (FilterPattern) isPattern()     {}
func (BindPattern) isPattern()       {}
func (ValuesPattern) isPattern()     {}
func (GraphGraphPattern) isPattern() {}
func (SubSelect) isPattern()         {}

// Expression is a SPARQL expression tree node.
type Expression interface{ isExpr() }

// ExprVar references a variable.
type ExprVar struct{ Name string }

// ExprTerm is a constant RDF term.
type ExprTerm struct{ Term rdf.Term }

// ExprBinary is a binary operation: || && = != < > <= >= + - * / .
type ExprBinary struct {
	Op   string
	L, R Expression
}

// ExprUnary is a unary operation: ! - + .
type ExprUnary struct {
	Op string
	X  Expression
}

// ExprCall is a builtin function call or aggregate.
type ExprCall struct {
	Func     string // upper-cased
	Args     []Expression
	Distinct bool   // aggregates: COUNT(DISTINCT ...)
	Star     bool   // COUNT(*)
	Sep      string // GROUP_CONCAT separator
}

// ExprExists is EXISTS { ... } / NOT EXISTS { ... }.
type ExprExists struct {
	Not     bool
	Pattern GraphPattern
}

// ExprIn is `expr IN (e1, e2, ...)` / NOT IN.
type ExprIn struct {
	Not  bool
	X    Expression
	List []Expression
}

func (ExprVar) isExpr()    {}
func (ExprTerm) isExpr()   {}
func (ExprBinary) isExpr() {}
func (ExprUnary) isExpr()  {}
func (ExprCall) isExpr()   {}
func (ExprExists) isExpr() {}
func (ExprIn) isExpr()     {}

// aggregateFuncs enumerates the SPARQL aggregate function names.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true,
	"AVG": true, "SAMPLE": true, "GROUP_CONCAT": true,
}

// IsAggregate reports whether the call is an aggregate function.
func (c ExprCall) IsAggregate() bool { return aggregateFuncs[c.Func] }

// HasAggregates reports whether the expression contains any aggregate call.
func HasAggregates(e Expression) bool {
	switch x := e.(type) {
	case ExprCall:
		if x.IsAggregate() {
			return true
		}
		for _, a := range x.Args {
			if HasAggregates(a) {
				return true
			}
		}
	case ExprBinary:
		return HasAggregates(x.L) || HasAggregates(x.R)
	case ExprUnary:
		return HasAggregates(x.X)
	case ExprIn:
		if HasAggregates(x.X) {
			return true
		}
		for _, a := range x.List {
			if HasAggregates(a) {
				return true
			}
		}
	}
	return false
}

// ExprVars appends the variables referenced by the expression to out.
func ExprVars(e Expression, out map[string]bool) {
	switch x := e.(type) {
	case ExprVar:
		out[x.Name] = true
	case ExprBinary:
		ExprVars(x.L, out)
		ExprVars(x.R, out)
	case ExprUnary:
		ExprVars(x.X, out)
	case ExprCall:
		for _, a := range x.Args {
			ExprVars(a, out)
		}
	case ExprIn:
		ExprVars(x.X, out)
		for _, a := range x.List {
			ExprVars(a, out)
		}
	case ExprExists:
		PatternVars(x.Pattern, out)
	}
}

// PatternVars collects all variables mentioned in a pattern tree.
func PatternVars(p GraphPattern, out map[string]bool) {
	switch x := p.(type) {
	case BGP:
		for _, tp := range x.Patterns {
			for _, t := range []rdf.Term{tp.S, tp.O} {
				if t.IsVar() {
					out[t.Value] = true
				}
			}
			if pv, ok := tp.Path.(PathVar); ok {
				out[pv.Name] = true
			}
		}
	case *GroupPattern:
		for _, e := range x.Elements {
			PatternVars(e, out)
		}
	case GroupPattern:
		for _, e := range x.Elements {
			PatternVars(e, out)
		}
	case OptionalPattern:
		PatternVars(x.Pattern, out)
	case UnionPattern:
		PatternVars(x.Left, out)
		PatternVars(x.Right, out)
	case MinusPattern:
		PatternVars(x.Pattern, out)
	case FilterPattern:
		ExprVars(x.Expr, out)
	case BindPattern:
		out[x.Var] = true
		ExprVars(x.Expr, out)
	case ValuesPattern:
		for _, v := range x.Vars {
			out[v] = true
		}
	case GraphGraphPattern:
		if x.Graph.IsVar() {
			out[x.Graph.Value] = true
		}
		PatternVars(x.Pattern, out)
	case SubSelect:
		for _, item := range x.Query.Projection {
			out[item.Var] = true
		}
	}
}

// MentionedIRIs collects the IRIs that occur in subject or object position
// of the query pattern. The engine uses them as fallback seed URLs when no
// explicit seeds are supplied ("query-based seed URL selection", §4.1).
func (q *Query) MentionedIRIs() []string {
	seen := map[string]bool{}
	var out []string
	add := func(t rdf.Term) {
		if t.Kind == rdf.TermIRI && rdf.IsHTTPIRI(t.Value) {
			doc := rdf.DocumentIRI(t)
			if !seen[doc] {
				seen[doc] = true
				out = append(out, doc)
			}
		}
	}
	var walk func(p GraphPattern)
	walk = func(p GraphPattern) {
		switch x := p.(type) {
		case BGP:
			for _, tp := range x.Patterns {
				add(tp.S)
				// Class IRIs in rdf:type objects are vocabulary, not data
				// documents; they make poor seeds.
				if pi, ok := tp.Path.(PathIRI); ok && pi.IRI == rdf.RDFType {
					continue
				}
				add(tp.O)
			}
		case *GroupPattern:
			for _, e := range x.Elements {
				walk(e)
			}
		case GroupPattern:
			for _, e := range x.Elements {
				walk(e)
			}
		case OptionalPattern:
			walk(x.Pattern)
		case UnionPattern:
			walk(x.Left)
			walk(x.Right)
		case MinusPattern:
			walk(x.Pattern)
		case GraphGraphPattern:
			walk(x.Pattern)
		case SubSelect:
			if x.Query.Where != nil {
				walk(*x.Query.Where)
			}
		case ValuesPattern:
			for _, row := range x.Rows {
				for _, t := range row {
					add(t)
				}
			}
		}
	}
	if q.Where != nil {
		walk(*q.Where)
	}
	if q.Values != nil {
		walk(*q.Values)
	}
	// DESCRIBE <iri> queries mention their resources outside the pattern.
	for _, d := range q.Describe {
		add(d)
	}
	// FROM clauses name data documents explicitly.
	for _, f := range q.From {
		add(rdf.NewIRI(f))
	}
	return out
}

// ProjectedVars returns the output variable names of the query in
// projection order. For SELECT * it computes the visible pattern variables
// in sorted order.
func (q *Query) ProjectedVars() []string {
	if len(q.Projection) > 0 {
		vars := make([]string, len(q.Projection))
		for i, item := range q.Projection {
			vars[i] = item.Var
		}
		return vars
	}
	set := map[string]bool{}
	if q.Where != nil {
		PatternVars(*q.Where, set)
	}
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	// Sorted for determinism.
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && strings.Compare(vars[j], vars[j-1]) < 0; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	return vars
}

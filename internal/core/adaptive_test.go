package core

import (
	"context"
	"sort"
	"testing"
	"time"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

// resultKeys runs a query and returns the sorted solution keys.
func resultKeys(t *testing.T, e *Engine, query string) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	results, x, err := e.Select(ctx, query, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(results))
	for _, b := range results {
		keys = append(keys, b.Key(x.Vars))
	}
	sort.Strings(keys)
	return keys
}

func TestAdaptiveMatchesNonAdaptive(t *testing.T) {
	env := newTestEnv(t)
	for shape := 1; shape <= 8; shape++ {
		q := env.Dataset.Discover(shape, 1)
		plain := New(Options{Client: env.Client(), Lenient: true})
		adaptive := New(Options{Client: env.Client(), Lenient: true, Adaptive: true, AdaptiveWarmupDocs: 5})
		a := resultKeys(t, plain, q.Text)
		b := resultKeys(t, adaptive, q.Text)
		if len(a) != len(b) {
			t.Errorf("shape %d: plain=%d adaptive=%d results", shape, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("shape %d: result %d differs", shape, i)
				break
			}
		}
	}
}

func TestAdaptiveReplansUnderObservedCardinalities(t *testing.T) {
	env := newTestEnv(t)
	e := New(Options{Client: env.Client(), Lenient: true, Adaptive: true, AdaptiveWarmupDocs: 3})
	q := env.Dataset.Discover(6, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	x, err := e.Query(ctx, q.Text, nil)
	if err != nil {
		t.Fatal(err)
	}
	for range x.Results {
	}
	// The adapted plan must exist and still contain all four patterns.
	final := algebra.String(x.AdaptedPlan())
	if count := countSubstr(final, "pattern("); count != 4 {
		t.Errorf("adapted plan patterns = %d:\n%s", count, final)
	}
}

func countSubstr(s, sub string) int {
	n := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			n++
		}
	}
	return n
}

func TestAdaptiveSkipsLimitQueries(t *testing.T) {
	env := newTestEnv(t)
	e := New(Options{Client: env.Client(), Lenient: true, Adaptive: true, AdaptiveWarmupDocs: 1})
	q := env.Dataset.Catalog()[35] // Short 4 uses ORDER BY ... LIMIT 10
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	results, x, err := e.Select(ctx, q.Text, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) > 10 {
		t.Errorf("LIMIT 10 violated: %d results", len(results))
	}
	// No re-planning for sliced queries: adapted == initial.
	if algebra.String(x.AdaptedPlan()) != algebra.String(x.Plan) {
		t.Error("sliced query was re-planned")
	}
}

func TestContainsSlice(t *testing.T) {
	q, err := sparql.ParseQuery(`SELECT ?x WHERE { ?x ?p ?o } LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !containsSlice(op) {
		t.Error("LIMIT plan should contain a slice")
	}
	q2, _ := sparql.ParseQuery(`SELECT ?x WHERE { ?x ?p ?o }`)
	op2, _ := algebra.Translate(q2)
	if containsSlice(op2) {
		t.Error("plain plan should not contain a slice")
	}
	pattern := algebra.Pattern{Triple: rdf.NewTriple(rdf.NewVar("s"), rdf.NewVar("p"), rdf.NewVar("o"))}
	if containsSlice(algebra.Union{Left: pattern, Right: pattern}) {
		t.Error("union of patterns has no slice")
	}
}

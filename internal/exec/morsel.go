package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ltqp/internal/obs"
)

// Morsel-driven parallelism: phases that process an index range of rows
// (join probes, grouping partitions) split the range into fixed-size morsels
// that a small worker pool claims off a shared atomic cursor. Workers that
// finish their morsel steal the next one, so skewed per-row cost (a probe
// that hits a huge bucket) does not serialize the phase behind one worker.

// workerCount returns the number of morsel workers for this execution:
// Env.Workers when set, otherwise GOMAXPROCS.
func (e *Env) workerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runMorsels processes the index range [0, total) by fn, morsel-parallel
// when both the range and the worker budget warrant it. fn is called with a
// worker id in [0, workers) and a half-open row range; calls with the same
// worker id never overlap, so fn may keep per-worker state indexed by id.
// It returns the number of workers used (1 when the phase ran sequentially).
func runMorsels(env *Env, total int, fn func(worker, lo, hi int)) int {
	workers := env.workerCount()
	if total < morselMinRows || workers <= 1 {
		if total > 0 {
			fn(0, 0, total)
		}
		return 1
	}
	if max := (total + morselSize - 1) / morselSize; workers > max {
		workers = max
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(morselSize)) - morselSize
				if lo >= total {
					return
				}
				hi := lo + morselSize
				if hi > total {
					hi = total
				}
				fn(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	return workers
}

// tracedBatch mirrors traced for batch streams: it wraps a vectorized
// operator in an obs span and stage_started/stage_finished events carrying
// the live row count, plus one morsel_processed event per forwarded batch
// (Rows = live rows of that batch) so subscribers see the batch granularity
// of the pipeline. Unobserved executions get the inner stream back
// untouched.
func tracedBatch(ctx0 context.Context, env *Env, name string, attrs []obs.Attr, inner func(context.Context) BatchStream) BatchStream {
	ctx, sp := obs.StartSpan(ctx0, name, attrs...)
	s := inner(ctx)
	ev := env.Events
	if sp == nil && !ev.Active() {
		return s
	}
	ev.Emit(obs.Event{Kind: obs.EventStageStarted, Stage: name, Detail: attrDetail(attrs)})
	start := time.Now()
	out := make(chan *Batch, batchChanCap)
	go func() {
		defer close(out)
		rows, batches := 0, 0
		for b := range s {
			n := b.Len()
			if !sendBatch(ctx, out, b) {
				break
			}
			rows += n
			batches++
			ev.Emit(obs.Event{Kind: obs.EventMorselProcessed, Stage: name, Rows: n, Row: batches})
		}
		sp.SetAttr(obs.Int("rows", rows))
		sp.End()
		ev.Emit(obs.Event{Kind: obs.EventStageFinished, Stage: name, Rows: rows,
			DurationUS: time.Since(start).Microseconds(), Detail: attrDetail(attrs)})
	}()
	return out
}

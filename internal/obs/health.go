package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"time"
)

// DefaultDegradedThreshold is the recent dereference failure ratio above
// which /healthz reports degraded.
const DefaultDegradedThreshold = 0.5

// DefaultHealthWindow is the sliding window over which the recent failure
// ratio is computed.
const DefaultHealthWindow = time.Minute

// HealthChecker turns the cumulative fetch counters into a liveness
// verdict: ok while the recent dereference failure ratio stays at or below
// Threshold, degraded above it. Degraded is an operational warning, not an
// outage — the endpoint still answers queries (possibly partially, under
// lenient mode) — so the probe stays HTTP 200 either way and the JSON body
// carries the distinction.
type HealthChecker struct {
	// Metrics supplies the cumulative fetch counters; nil means always ok.
	Metrics *Metrics
	// Threshold is the failure ratio above which status turns degraded
	// (default DefaultDegradedThreshold).
	Threshold float64
	// Window is the sliding window width (default DefaultHealthWindow).
	Window time.Duration
	// Serving, when set, contributes the shared serving subsystem's state
	// (shared-cache hit ratio and occupancy, singleflight dedup count,
	// admission pressure) to the /healthz body.
	Serving func() *ServingHealth

	mu      sync.Mutex
	samples []healthSample
}

// ServingHealth is the serving-subsystem section of the /healthz body.
type ServingHealth struct {
	// CacheHitRatio is shared-cache hits / (hits + misses), 0 when idle.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	// CacheBytes / CacheDocuments are the cache's current occupancy.
	CacheBytes     int64 `json:"cache_bytes"`
	CacheDocuments int   `json:"cache_documents"`
	// Revalidations counts conditional refetches of stale entries;
	// NotModified the share answered 304.
	Revalidations int64 `json:"revalidations"`
	NotModified   int64 `json:"not_modified"`
	// SingleflightDedups counts dereferences that joined another caller's
	// in-flight fetch instead of issuing their own.
	SingleflightDedups int64 `json:"singleflight_dedups"`
	// CacheEpoch is the current invalidation epoch.
	CacheEpoch uint64 `json:"cache_epoch"`
	// Admitted / Rejected / Queued describe admission-control pressure.
	Admitted int64 `json:"admitted,omitempty"`
	Rejected int64 `json:"rejected,omitempty"`
	InFlight int   `json:"in_flight,omitempty"`
	Queued   int   `json:"queued,omitempty"`
}

type healthSample struct {
	at       time.Time
	failures int64
	attempts int64
}

// HealthStatus is the /healthz response body.
type HealthStatus struct {
	Status string    `json:"status"` // "ok" or "degraded"
	Time   time.Time `json:"time"`
	// FailureRatio is failed dereference attempts / all attempts within
	// the window (0 when no attempts happened).
	FailureRatio float64 `json:"failure_ratio"`
	// WindowFailures / WindowAttempts are the raw deltas behind the ratio.
	WindowFailures int64   `json:"window_failures"`
	WindowAttempts int64   `json:"window_attempts"`
	WindowSeconds  float64 `json:"window_seconds"`
	Goroutines     int     `json:"goroutines"`
	// Serving reports the shared serving subsystem (shared cache,
	// singleflight, admission) when the endpoint runs one.
	Serving *ServingHealth `json:"serving,omitempty"`
}

// Check computes the current verdict at the given time.
func (h *HealthChecker) Check(now time.Time) HealthStatus {
	st := HealthStatus{Status: "ok", Time: now.UTC(), Goroutines: runtime.NumGoroutine()}
	if h == nil {
		return st
	}
	if h.Serving != nil {
		st.Serving = h.Serving()
	}
	if h.Metrics == nil {
		return st
	}
	threshold := h.Threshold
	if threshold <= 0 {
		threshold = DefaultDegradedThreshold
	}
	window := h.Window
	if window <= 0 {
		window = DefaultHealthWindow
	}
	st.WindowSeconds = window.Seconds()

	failures := h.Metrics.FetchFailures.Value()
	attempts := failures + h.Metrics.DocumentsFetched.Value()

	h.mu.Lock()
	h.samples = append(h.samples, healthSample{at: now, failures: failures, attempts: attempts})
	// Evict everything older than the window except the newest such
	// sample, which serves as the baseline the deltas are measured from.
	cut := 0
	for i, s := range h.samples {
		if now.Sub(s.at) <= window {
			break
		}
		cut = i
	}
	h.samples = h.samples[cut:]
	base := h.samples[0]
	h.mu.Unlock()

	st.WindowFailures = failures - base.failures
	st.WindowAttempts = attempts - base.attempts
	if st.WindowAttempts > 0 {
		st.FailureRatio = float64(st.WindowFailures) / float64(st.WindowAttempts)
	}
	if st.FailureRatio > threshold {
		st.Status = "degraded"
	}
	return st
}

// HealthCheckHandler serves the checker's verdict as JSON. Always HTTP 200:
// the process is alive; "degraded" is carried in the body for alerting.
// A nil checker behaves like the pre-health-tracking probe (always ok).
func HealthCheckHandler(h *HealthChecker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.Encode(h.Check(time.Now()))
	})
}

// StampBuildInfo registers the ltqp_build_info info metric (version +
// toolchain labels, constant 1) and the ltqp_uptime_seconds computed gauge,
// anchored at the given start time. Call it once at process start.
func StampBuildInfo(r *Registry, version string, start time.Time) {
	if version == "" {
		version = "dev"
	}
	r.Info("ltqp_build_info", "Engine build metadata (value is always 1).",
		Label{Name: "version", Value: version},
		Label{Name: "go_version", Value: runtime.Version()})
	r.GaugeFunc("ltqp_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(start).Seconds() })
}

// Command podserver hosts simulated Solid pods over HTTP, either from a
// dataset directory written by solidbench-gen or generated in memory,
// reproducing the hosted environment of the paper's demonstration
// (solidbench.linkeddatafragments.org).
//
//	podserver --addr :8080 --dir ./dataset
//	podserver --addr :8080 --generate --persons 32 --latency 5ms
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"ltqp/internal/podserver"
	"ltqp/internal/solidbench"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "listen address")
		dir      = flag.String("dir", "", "dataset directory written by solidbench-gen")
		generate = flag.Bool("generate", false, "generate the dataset in memory instead of loading --dir")
		persons  = flag.Int("persons", 32, "pods to generate with --generate")
		seed     = flag.Int64("seed", 42, "generator seed with --generate")
		latency  = flag.Duration("latency", 0, "artificial per-request latency")
		scheme   = flag.String("scheme", "http", "public scheme of this server")
	)
	flag.Parse()

	host := *scheme + "://" + *addr
	ps := podserver.New()
	ps.Latency = *latency

	switch {
	case *generate:
		cfg := solidbench.DefaultConfig()
		cfg.Persons = *persons
		cfg.Seed = *seed
		cfg.Host = host
		ds := solidbench.Generate(cfg)
		for _, p := range ds.BuildPods() {
			ps.AddPod(p)
		}
		fmt.Fprintf(os.Stderr, "generated %d pods in memory\n", *persons)
		// Print a few example seeds/queries for convenience.
		q := ds.Discover(1, 1)
		fmt.Fprintf(os.Stderr, "example seed:  %s\n", ds.PodBase(q.Person)+"profile/card")
		fmt.Fprintf(os.Stderr, "example query: %s\n", q.Name)
	case *dir != "":
		stored, err := ps.LoadDir(*dir, host)
		if err != nil {
			fmt.Fprintln(os.Stderr, "podserver:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loaded %d documents from %s (rebased %s -> %s)\n",
			ps.DocumentCount(), *dir, stored, host)
	default:
		fmt.Fprintln(os.Stderr, "podserver: need --dir or --generate")
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "serving %d documents on %s\n", ps.DocumentCount(), host)
	if err := http.ListenAndServe(*addr, ps); err != nil {
		fmt.Fprintln(os.Stderr, "podserver:", err)
		os.Exit(1)
	}
}

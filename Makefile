GO ?= go

.PHONY: build test verify bench fuzz-smoke differential loadgen-smoke bench-loadgen trace-smoke adversarial-smoke bench-guided

build:
	$(GO) build ./...

# Tier-1: the gate every change must keep green.
test: build
	$(GO) test ./...

# Pre-merge verification: vet plus the full suite (including the chaos
# integration tests and the traversal-vs-oracle differential harness) under
# the race detector — the engine is heavily concurrent and must stay
# race-clean.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# Differential harness on its own: 150 generated SELECT queries over the
# widened grammar (ORDER BY, GROUP BY/aggregates, MINUS, property paths),
# each run through the live traversal engine and the centralized oracle,
# multisets compared (internal/baseline/differential_test.go). The default
# 50-query subset rides in `make verify` via the package tests.
differential:
	LTQP_DIFF_QUERIES=150 $(GO) test -race -run TestDifferentialTraversalVsCentralized -v ./internal/baseline

# Short coverage-guided fuzzing of every fuzz target (Go native fuzzing
# only supports one -fuzz target per invocation). CI runs this on every
# change; longer local runs just need a bigger FUZZTIME.
FUZZTIME ?= 20s

fuzz-smoke: build
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/turtle
	$(GO) test -run '^$$' -fuzz '^FuzzParseQuery$$' -fuzztime $(FUZZTIME) ./internal/sparql
	$(GO) test -run '^$$' -fuzz '^FuzzDictRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/rdf
	$(GO) test -run '^$$' -fuzz '^FuzzBatchSelection$$' -fuzztime $(FUZZTIME) ./internal/exec
	$(GO) test -run '^$$' -fuzz '^FuzzTraceparent$$' -fuzztime $(FUZZTIME) ./internal/obs
	$(GO) test -run '^$$' -fuzz '^FuzzLinkExtraction$$' -fuzztime $(FUZZTIME) ./internal/extract

# Performance trajectory: run the micro-benchmarks and archive them as a
# dated JSON report (see cmd/benchreport --parse-bench). Compare two
# reports to catch regressions, e.g. the <5% tracing-overhead budget.
BENCH_PKGS ?= ./internal/rdf ./internal/store ./internal/turtle ./internal/sparql ./internal/obs ./internal/exec
BENCH_OUT  ?= BENCH_$(shell date +%Y-%m-%d).json

bench: build
	$(GO) test -bench . -benchmem -run '^$$' $(BENCH_PKGS) \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchreport --parse-bench > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# Multi-tenant serving smoke (CI): a short multi-client load run that must
# finish with zero errors, nonzero shared-cache hits, and zero duplicate
# in-flight fetches (the singleflight invariant).
loadgen-smoke: build
	$(GO) run ./cmd/loadgen --clients 8 --duration 5s --persons 4 --check \
		--heap-profile loadgen-heap.pprof --metrics-out loadgen-metrics.prom > /dev/null
	@grep -q '^ltqp_query_mem_bytes_count' loadgen-metrics.prom \
		|| { echo "loadgen-smoke: ltqp_query_mem_bytes missing from /metrics"; exit 1; }

# Distributed-tracing smoke (CI): the 3-hop pod-server query under the race
# detector, asserting client and server span counts match the document
# count, and exporting the merged client+server trace as a JSON artifact.
trace-smoke: build
	LTQP_TRACE_ARTIFACT=$(CURDIR)/trace-smoke.json \
		$(GO) test -race -run 'TestCriticalPathThreeHop|TestTraceSmokeThreeHop' -v .
	@test -s trace-smoke.json \
		|| { echo "trace-smoke: trace artifact missing or empty"; exit 1; }

# Adversarial-pod smoke (CI): every attack class (link bomb, alias loop,
# cross-origin spoofing, slow-loris, oversized documents) against a defended
# engine under the race detector, archiving the degradation report — which
# limits tripped and how many fetches each attacker extracted.
adversarial-smoke: build
	LTQP_ADVERSARIAL_ARTIFACT=$(CURDIR)/adversarial-report.json \
		$(GO) test -race -run 'TestAdversarial' -v .
	@test -s adversarial-report.json \
		|| { echo "adversarial-smoke: degradation report missing or empty"; exit 1; }

# Guided-vs-FIFO queue comparison (EXPERIMENTS.md E20): the solidbench
# Discover mix under both queue policies, archived as a dated artifact —
# identical result multisets, fewer dereferences before the last result.
GUIDED_OUT ?= bench/BENCH_$(shell date +%Y-%m-%d)_guided.json

bench-guided: build
	LTQP_GUIDED_ARTIFACT=$(CURDIR)/$(GUIDED_OUT) \
		$(GO) test -run TestGuidedVsFIFODereferenceBench -v .
	@echo "wrote $(GUIDED_OUT)"

# Full load benchmark: baseline (no shared cache) vs shared-cache run at
# 256 concurrent clients, archived as a dated artifact in bench/.
LOADGEN_OUT ?= bench/BENCH_$(shell date +%Y-%m-%d)_loadgen.json

bench-loadgen: build
	$(GO) run ./cmd/loadgen --clients 256 --tenants 32 --duration 15s \
		--persons 8 --compare --out $(LOADGEN_OUT) > /dev/null
	$(GO) run ./cmd/benchreport --loadgen $(LOADGEN_OUT)
	@echo "wrote $(LOADGEN_OUT)"

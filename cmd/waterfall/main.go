// Command waterfall reproduces the resource-waterfall demonstrations of
// the paper's Figs. 4 and 5: it spins up a simulated Solid environment,
// executes a catalog query (e.g. "Discover 1.5" or "Discover 8.5"), and
// prints the HTTP request timeline — which fetches depended on which, what
// ran in parallel, and how results streamed in while traversal was still
// running.
//
//	waterfall --query "Discover 1.5"
//	waterfall --query "Discover 8.5" --persons 24 --latency 4ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ltqp"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

func main() {
	var (
		queryName = flag.String("query", "Discover 1.5", "catalog query name")
		persons   = flag.Int("persons", 16, "pods in the simulated environment")
		seed      = flag.Int64("seed", 42, "generator seed")
		latency   = flag.Duration("latency", 2*time.Millisecond, "simulated network latency per request")
		width     = flag.Int("width", 60, "waterfall chart width")
		timeout   = flag.Duration("timeout", 5*time.Minute, "query timeout")
	)
	flag.Parse()

	cfg := solidbench.DefaultConfig()
	cfg.Persons = *persons
	cfg.Seed = *seed
	env := simenv.New(cfg)
	defer env.Close()
	env.PodServer.Latency = *latency

	q, ok := env.Dataset.FindQuery(*queryName)
	if !ok {
		fmt.Fprintf(os.Stderr, "waterfall: unknown query %q; available:\n", *queryName)
		for _, c := range env.Dataset.Catalog() {
			fmt.Fprintln(os.Stderr, "  ", c.Name)
		}
		os.Exit(2)
	}

	// Explain enables provenance, which pins the critical path's gating
	// document to the first result's actual sources.
	engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true, Explain: true})
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	fmt.Printf("== %s ==\n%s\n\n", q.Name, q.Text)
	start := time.Now()
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waterfall:", err)
		os.Exit(1)
	}
	n := 0
	var firstAt time.Duration
	for range res.Results {
		if n == 0 {
			firstAt = time.Since(start)
		}
		n++
	}
	total := time.Since(start)

	fmt.Print(res.Metrics().Waterfall(*width))
	if ex := res.Explain(); ex != nil && ex.CriticalPath != nil {
		fmt.Println()
		fmt.Print(ex.CriticalPath.Render(*width))
	}
	fmt.Printf("\n%d results in %s (first after %s); pods touched: %d; peak link queue: %d\n",
		n, total.Round(time.Millisecond), firstAt.Round(time.Millisecond),
		res.Metrics().PodsTouched(), res.Metrics().PeakQueueLength())

	// Queue evolution sparkline (Eschauzier et al. [34]).
	samples := res.Metrics().QueueEvolution()
	if len(samples) > 1 {
		fmt.Print("link queue evolution: ")
		peak := res.Metrics().PeakQueueLength()
		if peak == 0 {
			peak = 1
		}
		bars := []rune("▁▂▃▄▅▆▇█")
		step := len(samples) / 60
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(samples); i += step {
			idx := samples[i].Length * (len(bars) - 1) / peak
			fmt.Print(string(bars[idx]))
		}
		fmt.Println()
	}
	if q.MultiPod && res.Metrics().PodsTouched() < 2 {
		fmt.Println("note: expected multi-pod traversal, but only one pod was reached")
	}
}

package core

import (
	"context"
	"time"

	"ltqp/internal/algebra"
	"ltqp/internal/exec"
	"ltqp/internal/metrics"
	"ltqp/internal/plan"
	"ltqp/internal/rdf"
	"ltqp/internal/store"
)

// defaultAdaptiveWarmup is the number of dereferenced documents after
// which the adaptive engine revisits its plan.
const defaultAdaptiveWarmup = 12

// containsSlice reports whether the plan contains a Slice (LIMIT/OFFSET)
// operator. Restart-based re-planning is disabled for such plans: a limit
// interacts with the restart's duplicate accounting.
func containsSlice(op algebra.Operator) bool {
	switch x := op.(type) {
	case algebra.Slice:
		return true
	case algebra.Join:
		return containsSlice(x.Left) || containsSlice(x.Right)
	case algebra.LeftJoin:
		return containsSlice(x.Left) || containsSlice(x.Right)
	case algebra.Union:
		return containsSlice(x.Left) || containsSlice(x.Right)
	case algebra.Minus:
		return containsSlice(x.Left) || containsSlice(x.Right)
	case algebra.Filter:
		return containsSlice(x.Input)
	case algebra.Extend:
		return containsSlice(x.Input)
	case algebra.Project:
		return containsSlice(x.Input)
	case algebra.Distinct:
		return containsSlice(x.Input)
	case algebra.Reduced:
		return containsSlice(x.Input)
	case algebra.OrderBy:
		return containsSlice(x.Input)
	case algebra.Group:
		return containsSlice(x.Input)
	default:
		return false
	}
}

// runAdaptive implements restart-based adaptive re-planning, the future-
// work direction the paper closes with (§5, adaptive query planning
// [29,30]): execution starts under the zero-knowledge plan; once traversal
// has dereferenced a warmup number of documents, the join order is
// re-derived from the *observed* pattern cardinalities, and if it changed,
// the pipeline is restarted under the new plan over the same (still
// growing) store. Results already delivered are not re-delivered: the
// restarted pipeline re-derives the full multiset and the previously
// emitted solutions are subtracted by key count.
//
// It reports the plan that finished the execution.
func (e *Engine) runAdaptive(ctx context.Context, op algebra.Operator, env *exec.Env,
	src *store.Store, recorder *metrics.Recorder, seeds []string,
	emit func(rdf.Binding) bool) algebra.Operator {

	vars := op.Vars()
	emitted := map[string]int{}
	deliver := func(b rdf.Binding) bool {
		emitted[b.Key(vars)]++
		recorder.RecordResult()
		return emit(b)
	}

	warmup := e.opts.AdaptiveWarmupDocs
	if warmup <= 0 {
		warmup = defaultAdaptiveWarmup
	}
	trigger := make(chan struct{})
	go func() {
		defer close(trigger)
		for {
			if src.Closed() || src.DocumentCount() >= warmup {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()

	// Phase 1: zero-knowledge plan.
	ctx1, cancel1 := context.WithCancel(ctx)
	defer cancel1()
	p1 := exec.Eval(ctx1, op, env)
	fired := false
	for !fired {
		select {
		case b, ok := <-p1:
			if !ok {
				// Finished before warmup: nothing to adapt.
				return op
			}
			if !deliver(b) {
				return op
			}
		case <-trigger:
			fired = true
		case <-ctx.Done():
			return op
		}
	}
	if src.Closed() && src.DocumentCount() < warmup {
		// Trigger fired because traversal ended early; drain phase 1.
		for b := range p1 {
			if !deliver(b) {
				return op
			}
		}
		return op
	}

	// Re-plan with observed cardinalities.
	adapted := plan.New(seeds).OptimizeWithCounts(op, src)
	if algebra.String(adapted) == algebra.String(op) {
		// Same plan: keep the running pipeline.
		for b := range p1 {
			if !deliver(b) {
				return op
			}
		}
		return op
	}

	// Restart: stop phase 1, subtract its deliveries, run phase 2.
	cancel1()
	for range p1 {
		// Drain without delivering: phase 2 re-derives everything.
	}
	skip := make(map[string]int, len(emitted))
	for k, n := range emitted {
		skip[k] = n
	}
	p2 := exec.Eval(ctx, adapted, env)
	for b := range p2 {
		k := b.Key(vars)
		if skip[k] > 0 {
			skip[k]--
			continue
		}
		if !deliver(b) {
			return adapted
		}
	}
	return adapted
}

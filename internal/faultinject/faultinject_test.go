package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// driveDecisions replays a fixed request multiset against an injector and
// returns its canonical event schedule.
func driveDecisions(in *Injector, urls []string, repeats int) []Event {
	var wg sync.WaitGroup
	for _, u := range urls {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < repeats; i++ {
				in.decide(u)
			}
		}()
	}
	wg.Wait()
	return in.Events()
}

func TestDeterministicSchedule(t *testing.T) {
	urls := []string{"http://h/a", "http://h/b", "http://h/c", "http://h/d", "http://h/e"}
	rule := Rule{Probability: 0.5, Kind: Status, Status: 503}

	a := driveDecisions(New(42, rule), urls, 20)
	b := driveDecisions(New(42, rule), urls, 20)
	if len(a) == 0 {
		t.Fatal("no faults injected at p=0.5 over 100 requests")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different schedules:\n%v\n%v", a, b)
	}

	c := driveDecisions(New(7, rule), urls, 20)
	if reflect.DeepEqual(a, c) {
		t.Errorf("different seeds produced identical schedules")
	}
}

func TestProbabilityBounds(t *testing.T) {
	in := New(1, Rule{Probability: 1, Kind: Status, Status: 500})
	for i := 0; i < 10; i++ {
		if d := in.decide("http://h/x"); d.kind != Status {
			t.Fatalf("p=1 request %d not faulted", i)
		}
	}
	in = New(1, Rule{Probability: 0, Kind: Status, Status: 500})
	for i := 0; i < 10; i++ {
		if d := in.decide("http://h/x"); d.kind != None {
			t.Fatalf("p=0 request %d faulted", i)
		}
	}
}

func TestMaxFaultsPerURL(t *testing.T) {
	in := New(3, Rule{Probability: 1, Kind: Status, Status: 503, MaxFaultsPerURL: 2})
	faulted := 0
	for i := 0; i < 6; i++ {
		if d := in.decide("http://h/doc"); d.kind == Status {
			faulted++
		}
	}
	if faulted != 2 {
		t.Errorf("faulted = %d, want 2 (then eventual success)", faulted)
	}
}

func TestPatternSelectsRule(t *testing.T) {
	in := New(9,
		Rule{Pattern: "/posts/", Probability: 1, Kind: Status, Status: 500},
		Rule{Probability: 1, Kind: Status, Status: 429},
	)
	if d := in.decide("http://h/pods/1/posts/2024"); d.status != 500 {
		t.Errorf("posts rule not matched: %+v", d)
	}
	if d := in.decide("http://h/pods/1/profile/card"); d.status != 429 {
		t.Errorf("fallback rule not matched: %+v", d)
	}
}

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte(`<http://s> <http://p> "a fairly long literal to survive halving" .`))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestTransportStatusAndRetryAfter(t *testing.T) {
	ts := newBackend(t)
	client := New(5, Rule{Probability: 1, Kind: Status, Status: 429, RetryAfter: 3 * time.Second}).Client(ts.Client())
	resp, err := client.Get(ts.URL + "/doc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q", ra)
	}
}

func TestTransportConnReset(t *testing.T) {
	ts := newBackend(t)
	client := New(5, Rule{Probability: 1, Kind: ConnReset}).Client(ts.Client())
	_, err := client.Get(ts.URL + "/doc")
	if err == nil || !strings.Contains(err.Error(), "reset") {
		t.Errorf("err = %v, want connection reset", err)
	}
}

func TestTransportTruncateAndCorrupt(t *testing.T) {
	ts := newBackend(t)
	trunc := New(5, Rule{Probability: 1, Kind: Truncate}).Client(ts.Client())
	resp, err := trunc.Get(ts.URL + "/doc")
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated read err = %v", err)
	}

	corrupt := New(5, Rule{Probability: 1, Kind: Corrupt}).Client(ts.Client())
	resp, err = corrupt.Get(ts.URL + "/doc")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "corrupt") {
		t.Errorf("body not corrupted: %q", body)
	}
}

func TestMiddlewareFaults(t *testing.T) {
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte(`<http://s> <http://p> "a fairly long literal to survive halving" .`))
	})

	in := New(11,
		Rule{Pattern: "/status", Probability: 1, Kind: Status, Status: 503, RetryAfter: 2 * time.Second},
		Rule{Pattern: "/reset", Probability: 1, Kind: ConnReset},
		Rule{Pattern: "/trunc", Probability: 1, Kind: Truncate},
		Rule{Pattern: "/corrupt", Probability: 1, Kind: Corrupt},
	)
	ts := httptest.NewServer(in.Middleware(backend))
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") != "2" {
		t.Errorf("status fault: %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	if _, err := client.Get(ts.URL + "/reset"); err == nil {
		t.Error("reset fault: want transport error")
	}

	resp, err = client.Get(ts.URL + "/trunc")
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Error("truncate fault: want read error")
	}

	resp, err = client.Get(ts.URL + "/corrupt")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "corrupt") {
		t.Errorf("corrupt fault: body %q", body)
	}

	if in.FaultCount() != 4 {
		t.Errorf("fault count = %d, want 4", in.FaultCount())
	}
}

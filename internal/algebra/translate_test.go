package algebra

import (
	"strings"
	"testing"

	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

func translate(t *testing.T, q string) Operator {
	t.Helper()
	parsed, err := sparql.ParseQuery(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	op, err := Translate(parsed)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return op
}

func TestTranslateBGPToJoinChain(t *testing.T) {
	op := translate(t, `
PREFIX ex: <http://example.org/>
SELECT ?a ?b WHERE { ?a ex:p ?x . ?x ex:q ?b . ?b ex:r ex:c . }`)
	s := String(op)
	if strings.Count(s, "pattern(") != 3 {
		t.Errorf("expected 3 patterns: %s", s)
	}
	if strings.Count(s, "join(") != 2 {
		t.Errorf("expected 2 joins: %s", s)
	}
	if !strings.HasPrefix(s, "project(") {
		t.Errorf("projection missing: %s", s)
	}
}

func TestTranslateFiltersScopeOverGroup(t *testing.T) {
	// The filter appears before the pattern textually but must apply to
	// the whole group.
	op := translate(t, `
PREFIX ex: <http://example.org/>
SELECT ?a WHERE { FILTER(?b > 3) ?a ex:p ?b . }`)
	s := String(op)
	if !strings.Contains(s, "filter(") {
		t.Fatalf("filter missing: %s", s)
	}
	if strings.Index(s, "filter(") > strings.Index(s, "pattern(") {
		t.Errorf("filter should wrap the pattern: %s", s)
	}
}

func TestTranslateOptionalWithFilters(t *testing.T) {
	q, err := sparql.ParseQuery(`
PREFIX ex: <http://example.org/>
SELECT * WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c FILTER(?c != ?a) } }`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	var lj *LeftJoin
	var find func(Operator)
	find = func(o Operator) {
		switch x := o.(type) {
		case LeftJoin:
			lj = &x
		case Project:
			find(x.Input)
		case Slice:
			find(x.Input)
		case Distinct:
			find(x.Input)
		}
	}
	find(op)
	if lj == nil {
		t.Fatalf("no leftjoin: %s", String(op))
	}
	if len(lj.Filters) != 1 {
		t.Errorf("optional filters = %d, want 1 (part of the join condition)", len(lj.Filters))
	}
}

func TestTranslatePathRewrites(t *testing.T) {
	// Sequence becomes a join with a fresh variable.
	op := translate(t, `
PREFIX ex: <http://example.org/>
SELECT ?a ?b WHERE { ?a ex:p/ex:q ?b }`)
	s := String(op)
	if strings.Count(s, "pattern(") != 2 || !strings.Contains(s, "__path") {
		t.Errorf("sequence rewrite: %s", s)
	}
	// Alternative becomes a union.
	op = translate(t, `
PREFIX ex: <http://example.org/>
SELECT ?a ?b WHERE { ?a (ex:p|ex:q) ?b }`)
	s = String(op)
	if !strings.Contains(s, "union(") {
		t.Errorf("alternative rewrite: %s", s)
	}
	// Inverse swaps subject and object.
	op = translate(t, `
PREFIX ex: <http://example.org/>
SELECT ?a WHERE { ?a ^ex:p ex:b }`)
	s = String(op)
	if !strings.Contains(s, "pattern(<http://example.org/b> <http://example.org/p> ?a)") {
		t.Errorf("inverse rewrite: %s", s)
	}
	// Transitive stays a path operator.
	op = translate(t, `
PREFIX ex: <http://example.org/>
SELECT ?a WHERE { ?a ex:p+ ex:b }`)
	if !strings.Contains(String(op), "path(") {
		t.Errorf("transitive: %s", String(op))
	}
}

func TestTranslateBlankNodesBecomeVars(t *testing.T) {
	op := translate(t, `
PREFIX ex: <http://example.org/>
SELECT ?m WHERE { ex:me ex:likes _:g0 . _:g0 ex:hasPost ?m . }`)
	s := String(op)
	if !strings.Contains(s, "?__bn_q.g0") {
		t.Errorf("blank node not converted: %s", s)
	}
}

func TestTranslateModifierStack(t *testing.T) {
	op := translate(t, `
PREFIX ex: <http://example.org/>
SELECT DISTINCT ?a WHERE { ?a ex:p ?b } ORDER BY ?b LIMIT 5 OFFSET 2`)
	s := String(op)
	// slice(distinct(project(orderby(...)))) outermost-first.
	wantOrder := []string{"slice(2, 5", "distinct(", "project(", "orderby("}
	pos := -1
	for _, w := range wantOrder {
		i := strings.Index(s, w)
		if i < 0 {
			t.Fatalf("missing %q in %s", w, s)
		}
		if i < pos {
			t.Errorf("modifier order wrong: %s", s)
		}
		pos = i
	}
}

func TestTranslateAggregates(t *testing.T) {
	op := translate(t, `
PREFIX ex: <http://example.org/>
SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a ex:p ?b } GROUP BY ?a HAVING(COUNT(?b) > 1)`)
	s := String(op)
	if !strings.Contains(s, "group(") {
		t.Errorf("group missing: %s", s)
	}
	vars := op.Vars()
	if len(vars) != 2 || vars[0] != "a" || vars[1] != "n" {
		t.Errorf("vars = %v", vars)
	}
}

func TestTranslateImplicitGroup(t *testing.T) {
	// Aggregates without GROUP BY still introduce a Group operator.
	op := translate(t, `
PREFIX ex: <http://example.org/>
SELECT (COUNT(*) AS ?n) WHERE { ?a ex:p ?b }`)
	if !strings.Contains(String(op), "group(") {
		t.Errorf("implicit group missing: %s", String(op))
	}
}

func TestTranslateAskAddsLimit(t *testing.T) {
	op := translate(t, `ASK { ?a ?p ?b }`)
	if !strings.Contains(String(op), "slice(0, 1") {
		t.Errorf("ASK should slice to 1: %s", String(op))
	}
}

func TestTranslateOrderByAggregateRejected(t *testing.T) {
	q, err := sparql.ParseQuery(`
PREFIX ex: <http://example.org/>
SELECT ?a WHERE { ?a ex:p ?b } GROUP BY ?a ORDER BY DESC(COUNT(?b))`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(q); err == nil {
		t.Error("aggregate in ORDER BY should be rejected with a helpful error")
	}
}

func TestVarsComputation(t *testing.T) {
	p1 := Pattern{Triple: rdf.NewTriple(rdf.NewVar("a"), rdf.NewIRI("http://p"), rdf.NewVar("b"))}
	p2 := Pattern{Triple: rdf.NewTriple(rdf.NewVar("b"), rdf.NewIRI("http://q"), rdf.NewVar("c"))}
	j := Join{Left: p1, Right: p2}
	if got := j.Vars(); len(got) != 3 {
		t.Errorf("join vars = %v", got)
	}
	if got := SharedVars(p1, p2); len(got) != 1 || got[0] != "b" {
		t.Errorf("shared vars = %v", got)
	}
	e := Extend{Input: p1, Var: "x"}
	if got := e.Vars(); len(got) != 3 {
		t.Errorf("extend vars = %v", got)
	}
	m := Minus{Left: p1, Right: p2}
	if got := m.Vars(); len(got) != 2 {
		t.Errorf("minus vars = %v (right side must not leak)", got)
	}
}

func TestTranslateValuesAndSubselect(t *testing.T) {
	op := translate(t, `
PREFIX ex: <http://example.org/>
SELECT ?a ?n WHERE {
  VALUES ?a { ex:x ex:y }
  { SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a ex:p ?b } GROUP BY ?a }
}`)
	s := String(op)
	if !strings.Contains(s, "values(2 rows)") || !strings.Contains(s, "group(") {
		t.Errorf("plan = %s", s)
	}
}

func TestTranslateUnionOfGroups(t *testing.T) {
	op := translate(t, `
PREFIX ex: <http://example.org/>
SELECT ?a WHERE { { ?a ex:p ?b } UNION { ?a ex:q ?b . FILTER(?b > 1) } }`)
	s := String(op)
	if !strings.Contains(s, "union(") || !strings.Contains(s, "filter(") {
		t.Errorf("plan = %s", s)
	}
}

func TestStringCoversAllOperators(t *testing.T) {
	p := Pattern{Triple: rdf.NewTriple(rdf.NewVar("s"), rdf.NewIRI("http://p"), rdf.NewVar("o"))}
	pp := PathPattern{S: rdf.NewVar("s"), O: rdf.NewIRI("http://o")}
	ops := []Operator{
		Unit{}, p, pp,
		Join{Left: p, Right: p},
		LeftJoin{Left: p, Right: p},
		Union{Left: p, Right: p},
		Minus{Left: p, Right: p},
		Filter{Input: p},
		Extend{Input: p, Var: "x"},
		Values{Variables: []string{"v"}},
		Project{Input: p},
		Distinct{Input: p},
		Reduced{Input: p},
		OrderBy{Input: p},
		Slice{Input: p, Offset: 1, Limit: 2},
		Group{Input: p},
	}
	seen := map[string]bool{}
	for _, op := range ops {
		s := String(op)
		if s == "" {
			t.Errorf("empty String for %T", op)
		}
		if seen[s] {
			t.Errorf("ambiguous rendering %q", s)
		}
		seen[s] = true
		_ = op.Vars() // must not panic
	}
	if got := pp.Vars(); len(got) != 1 || got[0] != "s" {
		t.Errorf("path vars = %v", got)
	}
	if got := (Values{Variables: []string{"a", "b"}}).Vars(); len(got) != 2 {
		t.Errorf("values vars = %v", got)
	}
	if got := (Reduced{Input: p}).Vars(); len(got) != 2 {
		t.Errorf("reduced vars = %v", got)
	}
	if got := (OrderBy{Input: p}).Vars(); len(got) != 2 {
		t.Errorf("orderby vars = %v", got)
	}
	if got := (Slice{Input: p}).Vars(); len(got) != 2 {
		t.Errorf("slice vars = %v", got)
	}
	g := Group{Input: p, By: []sparql.GroupCondition{{Var: "s"}},
		Items: []sparql.SelectItem{{Var: "n", Expr: sparql.ExprCall{Func: "COUNT", Star: true}}}}
	if got := g.Vars(); len(got) != 2 {
		t.Errorf("group vars = %v", got)
	}
}

func TestTranslateEmptyQuery(t *testing.T) {
	op := translate(t, `ASK {}`)
	if !strings.Contains(String(op), "unit") {
		t.Errorf("empty where = %s", String(op))
	}
}

func TestTranslateGraphPattern(t *testing.T) {
	op := translate(t, `SELECT * WHERE { GRAPH <http://g> { ?s ?p ?o } }`)
	if !strings.Contains(String(op), "pattern(") {
		t.Errorf("graph translation = %s", String(op))
	}
}

func TestTranslateDescribeNoWhere(t *testing.T) {
	q, err := sparql.ParseQuery(`DESCRIBE <http://a>`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(String(op), "unit") {
		t.Errorf("describe plan = %s", String(op))
	}
}

package rdf

import (
	"reflect"
	"testing"
)

func TestWithSourceAndSources(t *testing.T) {
	b := NewBinding()
	b["x"] = NewIRI("http://example.org/x")

	b2 := b.WithSource(NewIRI("http://pod/b.ttl"))
	b2 = b2.WithSource(NewIRI("http://pod/a.ttl"))
	b2 = b2.WithSource(NewIRI("http://pod/a.ttl")) // duplicate is idempotent

	want := []string{"http://pod/a.ttl", "http://pod/b.ttl"}
	if got := b2.Sources(); !reflect.DeepEqual(got, want) {
		t.Errorf("Sources = %v, want %v", got, want)
	}
	if !b2.HasSources() {
		t.Error("HasSources = false after WithSource")
	}
	// The original binding is untouched (copy-on-write).
	if b.HasSources() {
		t.Error("WithSource mutated its receiver")
	}
}

func TestProvInvisibleToVars(t *testing.T) {
	b := NewBinding()
	b["x"] = NewIRI("http://example.org/x")
	b = b.WithSource(NewIRI("http://pod/a.ttl"))

	if got := b.Vars(); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("Vars = %v, want [x] — provenance keys must stay invisible", got)
	}
	if !IsProvVar(string(provMark) + "http://pod/a.ttl") {
		t.Error("IsProvVar false for a provenance key")
	}
	if IsProvVar("x") || IsProvVar("") {
		t.Error("IsProvVar true for a plain variable or empty name")
	}
}

func TestMergeUnionsProvenance(t *testing.T) {
	l := NewBinding()
	l["x"] = NewIRI("http://example.org/x")
	l = l.WithSource(NewIRI("http://pod/a.ttl"))

	r := NewBinding()
	r["x"] = NewIRI("http://example.org/x") // compatible shared var
	r["y"] = NewIRI("http://example.org/y")
	r = r.WithSource(NewIRI("http://pod/b.ttl"))

	m, ok := l.Merge(r)
	if !ok {
		t.Fatal("compatible bindings failed to merge")
	}
	want := []string{"http://pod/a.ttl", "http://pod/b.ttl"}
	if got := m.Sources(); !reflect.DeepEqual(got, want) {
		t.Errorf("merged Sources = %v, want %v", got, want)
	}
}

func TestWithoutProvAndWithProvFrom(t *testing.T) {
	b := NewBinding()
	b["x"] = NewIRI("http://example.org/x")
	b = b.WithSource(NewIRI("http://pod/a.ttl"))

	clean := b.WithoutProv()
	if clean.HasSources() {
		t.Error("WithoutProv left provenance keys")
	}
	if _, ok := clean.Get("x"); !ok {
		t.Error("WithoutProv dropped a plain variable")
	}

	projected := NewBinding()
	projected["y"] = NewIRI("http://example.org/y")
	projected = projected.WithProvFrom(b)
	if got := projected.Sources(); !reflect.DeepEqual(got, []string{"http://pod/a.ttl"}) {
		t.Errorf("WithProvFrom Sources = %v", got)
	}
	// No provenance on the source → no copy, same map.
	same := NewBinding()
	same["z"] = NewIRI("http://example.org/z")
	if got := same.WithProvFrom(clean); len(got) != 1 {
		t.Errorf("WithProvFrom over clean source changed the binding: %v", got)
	}
}

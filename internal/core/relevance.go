package core

import (
	"ltqp/internal/extract"
	"ltqp/internal/linkqueue"
	"ltqp/internal/rdf"
)

// relevanceOf turns a query shape into the guided queue's relevance model:
// the set of constant subject/object IRIs the query mentions. Links into
// documents the query names directly are the ones most likely to bind a
// pattern, so the guided discipline boosts them ahead of reachability-only
// discoveries.
func relevanceOf(shape *extract.QueryShape) *linkqueue.Relevance {
	if shape == nil {
		return nil
	}
	iris := make([]string, 0, len(shape.IRIs))
	for iri := range shape.IRIs {
		iris = append(iris, iri)
	}
	return linkqueue.NewRelevance(iris)
}

// relevantTriples counts how many of a document's triples could contribute
// to the query: their predicate is one of the query's constant predicates,
// or they type an entity into one of the query's classes. The ratio
// relevant/total is the productivity signal the guided queue feeds back
// into scoring links discovered in that document.
func relevantTriples(triples []rdf.Triple, shape *extract.QueryShape) int {
	if shape == nil {
		return 0
	}
	n := 0
	for _, t := range triples {
		if shape.Predicates[t.P.Value] {
			n++
			continue
		}
		if t.P.Value == rdf.RDFType && t.O.Kind == rdf.TermIRI && shape.Classes[t.O.Value] {
			n++
		}
	}
	return n
}

package deref

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ltqp/internal/metrics"
)

// fastPolicy returns a retry policy with no real sleeping, recording the
// delays it would have waited.
func fastPolicy(maxAttempts int, slept *[]time.Duration) *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts:    maxAttempts,
		AttemptTimeout: -1,
		sleep: func(ctx context.Context, d time.Duration) error {
			*slept = append(*slept, d)
			return ctx.Err()
		},
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	p := &RetryPolicy{Seed: 42}
	q := &RetryPolicy{Seed: 42}
	for attempt := 1; attempt <= 6; attempt++ {
		if p.Backoff("http://h/doc", attempt) != q.Backoff("http://h/doc", attempt) {
			t.Errorf("attempt %d: same seed, different delays", attempt)
		}
	}
	other := &RetryPolicy{Seed: 7}
	same := 0
	for attempt := 1; attempt <= 6; attempt++ {
		if p.Backoff("http://h/doc", attempt) == other.Backoff("http://h/doc", attempt) {
			same++
		}
	}
	if same == 6 {
		t.Error("different seeds produced identical schedules")
	}
}

func TestBackoffShape(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, JitterFrac: -1}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, time.Second, time.Second}
	for i, w := range want {
		if got := p.Backoff("u", i+1); got != w {
			t.Errorf("attempt %d: delay = %v, want %v", i+1, got, w)
		}
	}
	// Jitter stays within its fraction of the base delay.
	j := &RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, JitterFrac: 0.2}
	for attempt := 1; attempt <= 4; attempt++ {
		lo := p.Backoff("u", attempt)
		hi := lo + lo/5
		if got := j.Backoff("u", attempt); got < lo || got > hi {
			t.Errorf("attempt %d: jittered delay %v outside [%v, %v]", attempt, got, lo, hi)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"5", 5 * time.Second, true},
		{"0", 0, true},
		{"-3", 0, false},
		{"soon", 0, false},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Hour).Format(http.TimeFormat), 0, true}, // past date: retry now
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.in, now)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseRetryAfter(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestRetryableStatusTable(t *testing.T) {
	cases := map[int]bool{
		200: false, 301: false, 400: false, 401: false, 403: false,
		404: false, 408: true, 410: false, 429: true,
		500: true, 501: false, 502: true, 503: true, 504: true,
	}
	for code, want := range cases {
		if got := RetryableStatus(code); got != want {
			t.Errorf("RetryableStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

// flakyHandler fails the first n requests with the given behaviour, then
// serves valid Turtle.
func flakyHandler(n *atomic.Int32, fail func(w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if n.Add(-1) >= 0 {
			fail(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte(`<http://s> <http://p> "v" .`))
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	for _, tc := range []struct {
		name string
		fail func(w http.ResponseWriter, r *http.Request)
	}{
		{"429", func(w http.ResponseWriter, r *http.Request) { http.Error(w, "rate limited", 429) }},
		{"500", func(w http.ResponseWriter, r *http.Request) { http.Error(w, "boom", 500) }},
		{"503", func(w http.ResponseWriter, r *http.Request) { http.Error(w, "unavailable", 503) }},
		{"conn-reset", func(w http.ResponseWriter, r *http.Request) { panic(http.ErrAbortHandler) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var failures atomic.Int32
			failures.Store(2)
			ts := newServer(t, flakyHandler(&failures, tc.fail))
			var slept []time.Duration
			rec := metrics.NewRecorder()
			d := &Dereferencer{Client: ts.Client(), Recorder: rec, Retry: fastPolicy(4, &slept)}
			res, err := d.Dereference(context.Background(), ts.URL+"/doc", "", "seed")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Triples) != 1 {
				t.Fatalf("triples = %d", len(res.Triples))
			}
			if len(slept) != 2 {
				t.Errorf("backoff sleeps = %d, want 2", len(slept))
			}
			// Per-attempt events land in the waterfall; the stats count
			// the retries and report no document as lost.
			reqs := rec.Requests()
			if len(reqs) != 3 {
				t.Fatalf("recorded events = %d, want 3", len(reqs))
			}
			for i, q := range reqs {
				if q.Attempt != i+1 {
					t.Errorf("event %d: attempt = %d", i, q.Attempt)
				}
			}
			s := rec.Stats()
			if s.Retries != 2 || s.FailedDocuments != 0 {
				t.Errorf("stats = %d retries, %d failed docs; want 2, 0", s.Retries, s.FailedDocuments)
			}
		})
	}
}

func TestRetryTerminalFailures(t *testing.T) {
	for _, tc := range []struct {
		name    string
		handler http.HandlerFunc
	}{
		{"404", func(w http.ResponseWriter, r *http.Request) { http.Error(w, "gone", 404) }},
		{"403", func(w http.ResponseWriter, r *http.Request) { http.Error(w, "forbidden", 403) }},
		{"malformed-turtle", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/turtle")
			w.Write([]byte("@@\x00 this is not turtle"))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hits := 0
			ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
				hits++
				tc.handler(w, r)
			})
			var slept []time.Duration
			d := &Dereferencer{Client: ts.Client(), Retry: fastPolicy(4, &slept)}
			_, err := d.Dereference(context.Background(), ts.URL+"/doc", "", "seed")
			if err == nil {
				t.Fatal("want error")
			}
			if IsRetryable(err) {
				t.Errorf("terminal failure classified retryable: %v", err)
			}
			if hits != 1 || len(slept) != 0 {
				t.Errorf("hits = %d, sleeps = %d; terminal failures must not retry", hits, len(slept))
			}
		})
	}
}

func TestRetryExhaustion(t *testing.T) {
	hits := 0
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "unavailable", 503)
	})
	var slept []time.Duration
	rec := metrics.NewRecorder()
	d := &Dereferencer{Client: ts.Client(), Recorder: rec, Retry: fastPolicy(3, &slept)}
	_, err := d.Dereference(context.Background(), ts.URL+"/doc", "", "seed")
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("err = %v", err)
	}
	if hits != 3 {
		t.Errorf("attempts = %d, want 3", hits)
	}
	deg := rec.Degradation()
	if len(deg.FailedDocuments) != 1 || deg.Retries != 2 {
		t.Errorf("degradation = %+v", deg)
	}
}

func TestRetryAfterHonored(t *testing.T) {
	var failures atomic.Int32
	failures.Store(1)
	ts := newServer(t, flakyHandler(&failures, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		http.Error(w, "unavailable", 503)
	}))
	var slept []time.Duration
	d := &Dereferencer{Client: ts.Client(), Retry: fastPolicy(4, &slept)}
	if _, err := d.Dereference(context.Background(), ts.URL+"/doc", "", "seed"); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Errorf("slept = %v, want [2s] (server's Retry-After)", slept)
	}
}

func TestRetryAfterOverCapIsTerminal(t *testing.T) {
	hits := 0
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Retry-After", "3600")
		http.Error(w, "down for maintenance", 503)
	})
	var slept []time.Duration
	p := fastPolicy(4, &slept)
	p.MaxRetryAfter = 5 * time.Second
	d := &Dereferencer{Client: ts.Client(), Retry: p}
	if _, err := d.Dereference(context.Background(), ts.URL+"/doc", "", "seed"); err == nil {
		t.Fatal("want error")
	}
	if hits != 1 || len(slept) != 0 {
		t.Errorf("hits = %d, sleeps = %d; an hour-long Retry-After must not be waited out", hits, len(slept))
	}
}

func TestAttemptTimeoutRetries(t *testing.T) {
	var stalls atomic.Int32
	stalls.Store(1)
	ts := newServer(t, flakyHandler(&stalls, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	}))
	var slept []time.Duration
	p := fastPolicy(3, &slept)
	p.AttemptTimeout = 50 * time.Millisecond
	d := &Dereferencer{Client: ts.Client(), Retry: p}
	res, err := d.Dereference(context.Background(), ts.URL+"/doc", "", "seed")
	if err != nil {
		t.Fatalf("stalled first attempt should be retried: %v", err)
	}
	if len(res.Triples) != 1 || len(slept) != 1 {
		t.Errorf("triples = %d, sleeps = %d", len(res.Triples), len(slept))
	}
}

func TestParentCancellationIsTerminal(t *testing.T) {
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	var slept []time.Duration
	d := &Dereferencer{Client: ts.Client(), Retry: fastPolicy(4, &slept)}
	_, err := d.Dereference(ctx, ts.URL+"/doc", "", "seed")
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") {
		t.Errorf("err = %v", err)
	}
	if len(slept) != 0 {
		t.Errorf("caller's deadline must not be retried through (slept %v)", slept)
	}
}

func TestBodyOverflowIsError(t *testing.T) {
	old := maxBodyBytes
	maxBodyBytes = 64
	defer func() { maxBodyBytes = old }()

	big := fmt.Sprintf(`<http://s> <http://p> "%s" .`, strings.Repeat("x", 200))
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte(big))
	})
	d := &Dereferencer{Client: ts.Client()}
	_, err := d.Dereference(context.Background(), ts.URL+"/big", "", "seed")
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized body must error, not parse truncated: %v", err)
	}
	if IsRetryable(err) {
		t.Error("oversized body is terminal")
	}
}

func TestBodyAtLimitStillParses(t *testing.T) {
	old := maxBodyBytes
	defer func() { maxBodyBytes = old }()
	doc := `<http://s> <http://p> "v" .`
	maxBodyBytes = int64(len(doc))
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte(doc))
	})
	d := &Dereferencer{Client: ts.Client()}
	res, err := d.Dereference(context.Background(), ts.URL+"/exact", "", "seed")
	if err != nil {
		t.Fatalf("body exactly at the cap is complete: %v", err)
	}
	if len(res.Triples) != 1 {
		t.Errorf("triples = %d", len(res.Triples))
	}
}

func TestCacheStoresRetriedSuccess(t *testing.T) {
	var failures atomic.Int32
	failures.Store(2)
	hits := 0
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		hits++
		flakyHandler(&failures, func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "unavailable", 503)
		})(w, r)
	})
	var slept []time.Duration
	cache := NewCache(10)
	d := &Dereferencer{Client: ts.Client(), Cache: cache, Retry: fastPolicy(4, &slept)}

	// First dereference: two 503s, then success — cached.
	res, err := d.Dereference(context.Background(), ts.URL+"/doc", "", "seed")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != 1 || hits != 3 {
		t.Fatalf("triples = %d, hits = %d", len(res.Triples), hits)
	}
	if h, m := cache.Stats(); h != 0 || m != 1 {
		t.Errorf("cache stats after retried fetch = %d hits, %d misses", h, m)
	}

	// Second dereference: served from cache, no further requests.
	if _, err := d.Dereference(context.Background(), ts.URL+"/doc", "", "seed"); err != nil {
		t.Fatal(err)
	}
	if hits != 3 {
		t.Errorf("server hits = %d, want 3 (cache hit)", hits)
	}
	if h, _ := cache.Stats(); h != 1 {
		t.Errorf("cache hits = %d, want 1", h)
	}
}

func TestNilPolicySingleAttempt(t *testing.T) {
	hits := 0
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "unavailable", 503)
	})
	d := &Dereferencer{Client: ts.Client()}
	if _, err := d.Dereference(context.Background(), ts.URL+"/doc", "", "seed"); err == nil {
		t.Fatal("want error")
	}
	if hits != 1 {
		t.Errorf("nil policy hits = %d, want 1", hits)
	}
}

package rdf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func tr(s, p, o string) Triple {
	return NewTriple(NewIRI(s), NewIRI(p), NewIRI(o))
}

func TestTripleGroundAndVars(t *testing.T) {
	data := tr("http://a", "http://p", "http://b")
	if !data.IsGround() {
		t.Error("data triple should be ground")
	}
	pat := NewTriple(NewVar("s"), NewIRI("http://p"), NewVar("o"))
	if pat.IsGround() {
		t.Error("pattern with vars should not be ground")
	}
	if got := pat.Vars(); len(got) != 2 || got[0] != "s" || got[1] != "o" {
		t.Errorf("Vars() = %v", got)
	}
	dup := NewTriple(NewVar("x"), NewVar("x"), NewVar("y"))
	if got := dup.Vars(); len(got) != 2 {
		t.Errorf("Vars() with repeats = %v", got)
	}
}

func TestTripleMatches(t *testing.T) {
	data := tr("http://a", "http://p", "http://b")
	cases := []struct {
		pat  Triple
		want bool
	}{
		{NewTriple(NewVar("s"), NewVar("p"), NewVar("o")), true},
		{NewTriple(NewIRI("http://a"), NewVar("p"), NewVar("o")), true},
		{NewTriple(NewIRI("http://z"), NewVar("p"), NewVar("o")), false},
		{data, true},
		{NewTriple(NewVar("x"), NewVar("p"), NewVar("x")), false}, // a != b
	}
	for _, c := range cases {
		if got := c.pat.Matches(data); got != c.want {
			t.Errorf("%v Matches %v = %v, want %v", c.pat, data, got, c.want)
		}
	}
	// Repeated variable matching identical terms.
	self := tr("http://a", "http://p", "http://a")
	pat := NewTriple(NewVar("x"), NewVar("p"), NewVar("x"))
	if !pat.Matches(self) {
		t.Error("repeated var should match identical terms")
	}
}

func TestTripleBind(t *testing.T) {
	pat := NewTriple(NewVar("s"), NewIRI("http://p"), NewVar("o"))
	b := Binding{"s": NewIRI("http://a")}
	got := pat.Bind(b)
	if got.S != NewIRI("http://a") {
		t.Errorf("Bind S = %v", got.S)
	}
	if !got.O.IsVar() {
		t.Errorf("unbound var should remain: %v", got.O)
	}
}

func TestQuadString(t *testing.T) {
	q := NewQuad(NewIRI("http://a"), NewIRI("http://p"), NewLiteral("x"), NewIRI("http://g"))
	want := `<http://a> <http://p> "x" <http://g>`
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	q.G = Term{}
	if got := q.String(); got != `<http://a> <http://p> "x"` {
		t.Errorf("default graph String() = %q", got)
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	t1 := tr("http://a", "http://p", "http://b")
	t2 := tr("http://a", "http://p", "http://c")
	if !g.Add(t1) {
		t.Error("first Add should report new")
	}
	if g.Add(t1) {
		t.Error("duplicate Add should report existing")
	}
	g.AddAll([]Triple{t2})
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}
	if !g.Has(t1) || g.Has(tr("http://x", "http://p", "http://b")) {
		t.Error("Has misbehaves")
	}
	if got := g.Match(NewTriple(NewIRI("http://a"), NewVar("p"), NewVar("o"))); len(got) != 2 {
		t.Errorf("Match = %v", got)
	}
	if got := g.Objects(NewIRI("http://a"), NewIRI("http://p")); len(got) != 2 {
		t.Errorf("Objects = %v", got)
	}
	if got := g.FirstObject(NewIRI("http://a"), NewIRI("http://p")); got != NewIRI("http://b") {
		t.Errorf("FirstObject = %v (insertion order should win)", got)
	}
	if got := g.FirstObject(NewIRI("http://z"), NewIRI("http://p")); !got.IsZero() {
		t.Errorf("FirstObject missing = %v, want zero", got)
	}
	if got := g.Subjects(NewIRI("http://p"), NewIRI("http://b")); len(got) != 1 || got[0] != NewIRI("http://a") {
		t.Errorf("Subjects = %v", got)
	}
}

func TestGraphIsA(t *testing.T) {
	g := NewGraph()
	g.Add(NewTriple(NewIRI("http://a"), NewIRI(RDFType), NewIRI(LDPContainer)))
	if !g.IsA(NewIRI("http://a"), LDPContainer) {
		t.Error("IsA should find the type")
	}
	if g.IsA(NewIRI("http://a"), LDPResource) {
		t.Error("IsA should not find an absent type")
	}
}

func TestGraphSetSemantics(t *testing.T) {
	// Property: adding the same random triples twice yields the same Len.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		var ts []Triple
		for i := 0; i < 50; i++ {
			ts = append(ts, randomTriple(r))
		}
		g.AddAll(ts)
		n := g.Len()
		g.AddAll(ts)
		return g.Len() == n && n <= 50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBindingExtendMerge(t *testing.T) {
	b := NewBinding()
	b1, ok := b.Extend("x", NewIRI("http://a"))
	if !ok || b1.Len() != 1 {
		t.Fatal("Extend failed")
	}
	if b.Len() != 0 {
		t.Error("Extend must not mutate the receiver")
	}
	if _, ok := b1.Extend("x", NewIRI("http://b")); ok {
		t.Error("conflicting Extend should fail")
	}
	if same, ok := b1.Extend("x", NewIRI("http://a")); !ok || !same.Equal(b1) {
		t.Error("idempotent Extend should succeed")
	}

	c := Binding{"x": NewIRI("http://a"), "y": NewLiteral("v")}
	d := Binding{"y": NewLiteral("v"), "z": Integer(1)}
	m, ok := c.Merge(d)
	if !ok || m.Len() != 3 {
		t.Fatalf("Merge = %v, %v", m, ok)
	}
	e := Binding{"y": NewLiteral("other")}
	if _, ok := c.Merge(e); ok {
		t.Error("incompatible Merge should fail")
	}
	if c.Compatible(e) {
		t.Error("Compatible should be false on conflict")
	}
	if !c.Compatible(d) {
		t.Error("Compatible should be true when shared vars agree")
	}
}

func TestBindingMergeProperties(t *testing.T) {
	// Merge is commutative when it succeeds.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Binding {
			b := Binding{}
			for i := 0; i < r.Intn(5); i++ {
				b[string(rune('a'+r.Intn(4)))] = randomGroundTerm(r)
			}
			return b
		}
		x, y := mk(), mk()
		m1, ok1 := x.Merge(y)
		m2, ok2 := y.Merge(x)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || m1.Equal(m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBindingMatchPattern(t *testing.T) {
	pat := NewTriple(NewVar("s"), NewIRI("http://p"), NewVar("o"))
	data := tr("http://a", "http://p", "http://b")
	b, ok := NewBinding().MatchPattern(pat, data)
	if !ok || b["s"] != NewIRI("http://a") || b["o"] != NewIRI("http://b") {
		t.Fatalf("MatchPattern = %v, %v", b, ok)
	}
	// With a conflicting prior binding.
	prior := Binding{"s": NewIRI("http://z")}
	if _, ok := prior.MatchPattern(pat, data); ok {
		t.Error("conflicting prior binding should fail")
	}
	// Constant mismatch.
	pat2 := NewTriple(NewVar("s"), NewIRI("http://other"), NewVar("o"))
	if _, ok := NewBinding().MatchPattern(pat2, data); ok {
		t.Error("constant mismatch should fail")
	}
}

func TestBindingKeyProjectVars(t *testing.T) {
	b := Binding{"x": NewIRI("http://a"), "y": NewLiteral("v")}
	if b.Key([]string{"x", "y"}) == b.Key([]string{"y", "x"}) {
		t.Error("Key must be order-sensitive to its vars argument")
	}
	other := Binding{"x": NewIRI("http://a"), "y": NewLiteral("v"), "z": Integer(9)}
	if b.Key([]string{"x", "y"}) != other.Key([]string{"x", "y"}) {
		t.Error("Key over same projection should match")
	}
	p := other.Project([]string{"x", "z"})
	if p.Len() != 2 || p.Has("y") {
		t.Errorf("Project = %v", p)
	}
	if got := b.Vars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Vars = %v", got)
	}
	if s := b.String(); s != `{?x -> <http://a>, ?y -> "v"}` {
		t.Errorf("String = %s", s)
	}
}

func TestBindingKeyUnbound(t *testing.T) {
	a := Binding{"x": NewIRI("http://a")}
	b := Binding{}
	if a.Key([]string{"x"}) == b.Key([]string{"x"}) {
		t.Error("bound vs unbound should produce different keys")
	}
}

func TestMatchesConsistentWithMatchPattern(t *testing.T) {
	// Property: pattern.Matches(data) agrees with MatchPattern success from
	// an empty binding.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := randomTriple(r)
		pat := data
		// Randomly replace positions with variables.
		if r.Intn(2) == 0 {
			pat.S = NewVar("s")
		}
		if r.Intn(2) == 0 {
			pat.P = NewVar("p")
		}
		if r.Intn(2) == 0 {
			pat.O = NewVar("o")
		}
		_, ok := NewBinding().MatchPattern(pat, data)
		return ok == pat.Matches(data)
	}
	cfg := &quick.Config{MaxCount: 300, Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(r.Int63())
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// emitSyntheticQuery publishes a plausible single-query event sequence with
// fixed timestamps, returning its id.
func emitSyntheticQuery(b *Bus, id int64) time.Time {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }
	e := b.ForQuery(id)
	e.Emit(Event{Kind: EventQueryStarted, Time: t0, Detail: "SELECT ?x WHERE { ?x ?p ?o }",
		Seeds: []string{"http://pod/a"}})
	e.Emit(Event{Kind: EventStageStarted, Stage: "parse", Time: t0})
	e.Emit(Event{Kind: EventStageFinished, Stage: "parse", Time: at(1), DurationUS: 1000})
	e.Emit(Event{Kind: EventStageStarted, Stage: "plan", Time: at(1)})
	e.Emit(Event{Kind: EventStageFinished, Stage: "plan", Time: at(2), DurationUS: 1000})
	e.Emit(Event{Kind: EventStageStarted, Stage: "traverse", Time: at(2)})
	// Two overlapping dereferences: a [2,12], b [4,10] → max 2 in flight.
	e.Emit(Event{Kind: EventDocumentDereferenced, URL: "http://pod/a", Status: 200,
		Triples: 10, Bytes: 500, Time: at(12), DurationUS: 10000})
	e.Emit(Event{Kind: EventLinkDiscovered, URL: "http://pod/b", Via: "http://pod/a", Extractor: "ldp"})
	e.Emit(Event{Kind: EventLinkQueued, URL: "http://pod/b", Via: "http://pod/a", Depth: 1})
	e.Emit(Event{Kind: EventLinkDiscovered, URL: "http://pod/a", Via: "http://pod/a", Extractor: "ldp"})
	e.Emit(Event{Kind: EventLinkPruned, URL: "http://pod/a", Via: "http://pod/a", Detail: "self"})
	e.Emit(Event{Kind: EventRetryScheduled, URL: "http://pod/b", Attempt: 1, DelayUS: 2000, Err: "status 503"})
	e.Emit(Event{Kind: EventDocumentDereferenced, URL: "http://pod/b", Status: 200,
		Triples: 5, Bytes: 200, Time: at(10), DurationUS: 6000})
	e.Emit(Event{Kind: EventResultEmitted, Row: 1, Time: at(15)})
	e.Emit(Event{Kind: EventStageFinished, Stage: "traverse", Time: at(16), DurationUS: 14000})
	e.Emit(Event{Kind: EventStageStarted, Stage: "exec", Time: at(2)})
	e.Emit(Event{Kind: EventResultEmitted, Row: 2, Time: at(17)})
	e.Emit(Event{Kind: EventStageFinished, Stage: "exec", Time: at(18), DurationUS: 16000})
	e.Emit(Event{Kind: EventQueryFinished, Rows: 2, Time: at(18), DurationUS: 18000})
	return t0
}

func TestJournalRoundTrip(t *testing.T) {
	bus := NewBus()
	var buf bytes.Buffer
	j, err := NewJournal(&buf, bus)
	if err != nil {
		t.Fatal(err)
	}
	emitSyntheticQuery(bus, 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var hdr JournalHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	if hdr.Kind != "journal_header" || hdr.Schema != EventSchemaVersion || hdr.GoVersion == "" {
		t.Fatalf("header = %+v", hdr)
	}
	var foot JournalFooter
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &foot); err != nil {
		t.Fatalf("footer: %v", err)
	}
	if foot.Kind != "journal_footer" || foot.Events != 19 || foot.Dropped != 0 {
		t.Fatalf("footer = %+v", foot)
	}

	s, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 19 || !s.HasFooter || len(s.Queries) != 1 {
		t.Fatalf("summary = %+v", s)
	}
	q := s.Replay(1)
	if q == nil {
		t.Fatal("no replay for query 1")
	}
	if !q.Finished || q.Results != 2 || q.Err != "" {
		t.Fatalf("replay outcome = %+v", q)
	}
	if q.Duration != 18*time.Millisecond {
		t.Fatalf("duration = %v", q.Duration)
	}
	if !q.HasTTFR || q.TTFR != 15*time.Millisecond {
		t.Fatalf("ttfr = %v (has=%v)", q.TTFR, q.HasTTFR)
	}
	if len(q.Phases) != 4 {
		t.Fatalf("phases = %+v", q.Phases)
	}
	if q.Phases[0].Name != "parse" || q.Phases[0].Duration != time.Millisecond {
		t.Fatalf("parse phase = %+v", q.Phases[0])
	}
	if len(q.Docs) != 2 || q.FailedDocs() != 0 {
		t.Fatalf("docs = %+v", q.Docs)
	}
	if q.LinksDiscovered != 2 || q.LinksQueued != 1 || q.LinksPruned != 1 || q.Retries != 1 {
		t.Fatalf("link tallies = %+v", q)
	}
	if q.MaxConcurrency != 2 {
		t.Fatalf("max concurrency = %d, want 2", q.MaxConcurrency)
	}
	slow := q.SlowestDocs(1)
	if len(slow) != 1 || slow[0].URL != "http://pod/a" {
		t.Fatalf("slowest = %+v", slow)
	}
}

func TestJournalMultipleQueries(t *testing.T) {
	bus := NewBus()
	var buf bytes.Buffer
	j, err := NewJournal(&buf, bus)
	if err != nil {
		t.Fatal(err)
	}
	emitSyntheticQuery(bus, 1)
	emitSyntheticQuery(bus, 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Queries) != 2 || s.Replay(2) == nil {
		t.Fatalf("queries = %+v", s.Queries)
	}
}

func TestReadJournalRejectsBadInput(t *testing.T) {
	if _, err := ReadJournal(strings.NewReader(`{"kind":"query_started"}`)); err == nil {
		t.Fatal("journal without header must be rejected")
	}
	bad := `{"kind":"journal_header","schema":99}`
	if _, err := ReadJournal(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
	if _, err := ReadJournal(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage line must be rejected")
	}
}

// TestReadJournalTornFinalLine: a writer killed mid-write leaves a partial
// JSON line at the tail; the reader treats it as truncation (the torn line
// is dropped) while malformed JSON mid-file is still rejected as corruption.
func TestReadJournalTornFinalLine(t *testing.T) {
	bus := NewBus()
	var buf bytes.Buffer
	j, err := NewJournal(&buf, bus)
	if err != nil {
		t.Fatal(err)
	}
	emitSyntheticQuery(bus, 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final line mid-JSON.
	full := strings.TrimSpace(buf.String())
	torn := full[:len(full)-10]
	s, err := ReadJournal(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail must read as truncation: %v", err)
	}
	if s.HasFooter {
		t.Fatal("torn journal must report a missing footer")
	}
	if s.Replay(1) == nil {
		t.Fatal("torn journal lost its query")
	}

	// The same tear mid-file is corruption.
	lines := strings.Split(full, "\n")
	lines[2] = lines[2][:len(lines[2])/2]
	if _, err := ReadJournal(strings.NewReader(strings.Join(lines, "\n"))); err == nil {
		t.Fatal("mid-file corruption must be rejected")
	}
}

func TestReadJournalTruncated(t *testing.T) {
	bus := NewBus()
	var buf bytes.Buffer
	j, err := NewJournal(&buf, bus)
	if err != nil {
		t.Fatal(err)
	}
	emitSyntheticQuery(bus, 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Cut the footer and the final query_finished line.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	cut := strings.Join(lines[:len(lines)-2], "\n")
	s, err := ReadJournal(strings.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if s.HasFooter {
		t.Fatal("truncated journal must report a missing footer")
	}
	q := s.Replay(1)
	if q == nil || q.Finished {
		t.Fatalf("truncated query must be unfinished: %+v", q)
	}
	// The per-event tally still counts the results that did land.
	if q.Results != 2 {
		t.Fatalf("results = %d, want 2 from result_emitted tally", q.Results)
	}
	var report strings.Builder
	s.WriteReport(&report, 3)
	if !strings.Contains(report.String(), "truncated") {
		t.Fatalf("report must flag truncation:\n%s", report.String())
	}
}

func TestJournalReport(t *testing.T) {
	bus := NewBus()
	var buf bytes.Buffer
	j, err := NewJournal(&buf, bus)
	if err != nil {
		t.Fatal(err)
	}
	emitSyntheticQuery(bus, 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	s.WriteReport(&out, 2)
	text := out.String()
	for _, want := range []string{
		"1 queries", "query #1", "seeds: http://pod/a",
		"2 results", "first after 15.0ms",
		"parse 1.0ms", "traverse 14.0ms",
		"2 documents (0 failed)", "2 links discovered (1 queued, 1 pruned), 1 retries",
		"max 2 in flight", "slowest documents", "http://pod/a",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

package extract

import (
	"strings"
	"sync"

	"ltqp/internal/rdf"
)

// TypeIndexScoped is a stateful variant of TypeIndex that also follows the
// *contents* of type-index-registered instance containers — but only
// those. It reproduces the cooperation of Comunica's type-index and
// container-listing actors without enabling blind LDP traversal of the
// whole pod: documents under noise/ or other unregistered containers are
// never fetched.
//
// The extractor is per-query state: traversal reaches a registered
// container only through the type index, so registrations are always
// observed before their containers are dereferenced.
type TypeIndexScoped struct {
	// Shape carries the query's classes; when non-empty only matching
	// registrations are followed.
	Shape *QueryShape

	mu         sync.Mutex
	containers map[string]bool
}

// Name implements Extractor.
func (*TypeIndexScoped) Name() string { return "type-index" }

// Extract implements Extractor.
func (e *TypeIndexScoped) Extract(doc Document) []Link {
	g := doc.Graph
	var out []Link

	// Type index registrations (same logic as TypeIndex), recording
	// registered container URLs.
	for _, reg := range g.Subjects(rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.SolidTypeRegistration)) {
		if e.Shape != nil && len(e.Shape.Classes) > 0 {
			forClass := g.FirstObject(reg, rdf.NewIRI(rdf.SolidForClass))
			if forClass.Kind == rdf.TermIRI && !e.Shape.Classes[forClass.Value] {
				continue
			}
		}
		for _, inst := range g.Objects(reg, rdf.NewIRI(rdf.SolidInstance)) {
			if l, ok := link(inst, "type-index", "type-index"); ok {
				out = append(out, l)
			}
		}
		for _, c := range g.Objects(reg, rdf.NewIRI(rdf.SolidInstanceContainer)) {
			if l, ok := link(c, "type-index", "type-index-container"); ok {
				e.mu.Lock()
				if e.containers == nil {
					e.containers = map[string]bool{}
				}
				e.containers[l.URL] = true
				e.mu.Unlock()
				out = append(out, l)
			}
		}
	}

	// Container membership, but only for registered containers (or their
	// sub-containers).
	if e.isRegistered(doc.IRI) {
		for _, t := range g.Triples() {
			if t.P.Kind == rdf.TermIRI && t.P.Value == rdf.LDPContains {
				if l, ok := link(t.O, "type-index", "type-index-container"); ok {
					if strings.HasSuffix(l.URL, "/") {
						e.mu.Lock()
						e.containers[l.URL] = true
						e.mu.Unlock()
					}
					out = append(out, l)
				}
			}
		}
	}
	return dedup(out)
}

// isRegistered reports whether url is a registered container (normalizing
// the trailing slash).
func (e *TypeIndexScoped) isRegistered(url string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.containers[url] || e.containers[url+"/"]
}

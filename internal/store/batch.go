package store

import (
	"context"

	"ltqp/internal/rdf"
)

// Batch iteration: the vectorized executor pulls matches out of the store as
// slabs of dictionary-encoded ID triples instead of one decoded rdf.Triple
// per call. NextBatch preserves the live-iterator contract of Next — stream
// everything currently known, then block until new triples arrive or the
// store closes — but amortizes the store lock and the channel send over up
// to a full batch, and never decodes: terms stay integers until the
// pipeline's projection boundary.

// scanLockedIdx advances the cursor to the next match and additionally
// returns the triple's index into the store's triples/sources arrays, so
// batch scans can attach provenance without a seen-map lookup. Caller holds
// store.mu.
func (it *Iterator) scanLockedIdx() (rdf.IDTriple, int32, bool) {
	s := it.store
	if it.scan {
		for it.next < len(s.triples) {
			i := int32(it.next)
			t := s.triples[i]
			it.next++
			if it.pattern.matches(t) {
				return t, i, true
			}
		}
		return rdf.IDTriple{}, 0, false
	}
	list := s.candidates(&it.pattern)
	for it.next < len(list) {
		i := list[it.next]
		t := s.triples[i]
		it.next++
		if it.pattern.matches(t) {
			return t, i, true
		}
	}
	return rdf.IDTriple{}, 0, false
}

// NextBatch fills ids (and, when srcs is non-nil, the parallel srcs slice
// with each triple's source-document ID) with as many matches as are
// available without blocking, up to len(ids). When no match is available it
// blocks like Next until new triples arrive, the store closes, the iterator
// is closed, or the context is cancelled. It returns the number of matches
// written and ok=false only when the stream has ended.
func (it *Iterator) NextBatch(ctx context.Context, ids []rdf.IDTriple, srcs []rdf.TermID) (int, bool) {
	if len(ids) == 0 {
		return 0, false
	}
	s := it.store
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if it.isClosed() || ctx.Err() != nil {
			return 0, false
		}
		n := 0
		for n < len(ids) {
			t, idx, ok := it.scanLockedIdx()
			if !ok {
				break
			}
			ids[n] = t
			if srcs != nil {
				srcs[n] = s.sources[idx]
			}
			n++
		}
		if n > 0 {
			return n, true
		}
		if s.closed {
			return 0, false
		}
		// Block until new triples arrive or the store closes; a helper
		// goroutine turns context cancellation into a broadcast (same
		// pattern as Next).
		stop := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			case <-stop:
			}
		}()
		s.cond.Wait()
		close(stop)
	}
}

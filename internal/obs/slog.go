package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"
)

// NewLogger builds a slog.Logger writing to w with the given handler format
// ("text" or "json") and minimum level ("debug", "info", "warn", "error").
// The handler is wrapped so records carry a query_id attribute whenever the
// logging context holds one (ContextWithQueryID) — the same correlation id
// stamped on events, journal lines and /debug/queries.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(&queryIDHandler{Handler: h}), nil
}

// queryIDHandler decorates records with the context's query correlation id.
type queryIDHandler struct{ slog.Handler }

func (h *queryIDHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := QueryIDFromContext(ctx); id != 0 {
		r.AddAttrs(slog.Int64("query_id", id))
	}
	return h.Handler.Handle(ctx, r)
}

func (h *queryIDHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &queryIDHandler{Handler: h.Handler.WithAttrs(attrs)}
}

func (h *queryIDHandler) WithGroup(name string) slog.Handler {
	return &queryIDHandler{Handler: h.Handler.WithGroup(name)}
}

// EventLogger is the structured-logging consumer of the event bus: it
// subscribes and renders every engine event as one slog record, each tagged
// with its query correlation id. Lifecycle events log at Info, degradations
// (retries, failed dereferences) at Warn, and the high-volume traversal
// detail (links, stages, per-result events) at Debug — so `--log-level
// info` gives an operational narrative while `debug` replays everything.
type EventLogger struct {
	sub  *Subscription
	done chan struct{}
}

// eventLoggerBuffer absorbs traversal bursts so logging a slow sink does
// not force event drops in the common case.
const eventLoggerBuffer = 4096

// LogEvents attaches a logging consumer to the bus. Close it to detach.
func LogEvents(logger *slog.Logger, bus *Bus) *EventLogger {
	l := &EventLogger{sub: bus.SubscribeNamed("slog", 0, eventLoggerBuffer), done: make(chan struct{})}
	go func() {
		defer close(l.done)
		for ev := range l.sub.C {
			logEvent(logger, ev)
		}
	}()
	return l
}

// Close detaches from the bus and logs the buffered tail before returning.
func (l *EventLogger) Close() {
	if l == nil {
		return
	}
	l.sub.Close()
	close(l.sub.ch) // ends the range in the consumer goroutine
	<-l.done
}

// logEvent renders one engine event as a slog record.
func logEvent(logger *slog.Logger, ev Event) {
	ctx := ContextWithQueryID(context.Background(), ev.Query)
	dur := func() slog.Attr {
		return slog.Duration("duration", time.Duration(ev.DurationUS)*time.Microsecond)
	}
	switch ev.Kind {
	case EventQueryStarted:
		logger.LogAttrs(ctx, slog.LevelInfo, "query started",
			slog.String("query", ev.Detail), slog.Any("seeds", ev.Seeds))
	case EventQueryFinished:
		lvl := slog.LevelInfo
		attrs := []slog.Attr{slog.Int("results", ev.Rows), dur()}
		if ev.Err != "" {
			lvl = slog.LevelError
			attrs = append(attrs, slog.String("error", ev.Err))
		}
		logger.LogAttrs(ctx, lvl, "query finished", attrs...)
	case EventDocumentDereferenced:
		if ev.Err != "" {
			logger.LogAttrs(ctx, slog.LevelWarn, "dereference failed",
				slog.String("url", ev.URL), slog.String("error", ev.Err), dur())
			return
		}
		logger.LogAttrs(ctx, slog.LevelDebug, "document dereferenced",
			slog.String("url", ev.URL), slog.Int("status", ev.Status),
			slog.Int("triples", ev.Triples), slog.Int64("bytes", ev.Bytes), dur())
	case EventRetryScheduled:
		logger.LogAttrs(ctx, slog.LevelWarn, "retry scheduled",
			slog.String("url", ev.URL), slog.Int("attempt", ev.Attempt),
			slog.Duration("delay", time.Duration(ev.DelayUS)*time.Microsecond),
			slog.String("error", ev.Err))
	case EventLinkDiscovered:
		logger.LogAttrs(ctx, slog.LevelDebug, "link discovered",
			slog.String("url", ev.URL), slog.String("via", ev.Via),
			slog.String("extractor", ev.Extractor))
	case EventLinkQueued:
		logger.LogAttrs(ctx, slog.LevelDebug, "link queued",
			slog.String("url", ev.URL), slog.Int("depth", ev.Depth))
	case EventLinkPruned:
		logger.LogAttrs(ctx, slog.LevelDebug, "link pruned",
			slog.String("url", ev.URL), slog.String("reason", ev.Detail))
	case EventStageStarted:
		logger.LogAttrs(ctx, slog.LevelDebug, "stage started",
			slog.String("stage", ev.Stage))
	case EventStageFinished:
		logger.LogAttrs(ctx, slog.LevelDebug, "stage finished",
			slog.String("stage", ev.Stage), slog.Int("rows", ev.Rows), dur())
	case EventResultEmitted:
		logger.LogAttrs(ctx, slog.LevelDebug, "result emitted",
			slog.Int("row", ev.Row))
	case EventResourceSnapshot:
		lvl := slog.LevelDebug
		attrs := []slog.Attr{
			slog.Int64("mem_bytes", ev.MemBytes),
			slog.Int64("mem_peak", ev.MemPeak),
			slog.String("breakdown", ev.Detail),
		}
		if ev.Err != "" { // budget exceeded
			lvl = slog.LevelWarn
			attrs = append(attrs, slog.String("error", ev.Err))
		}
		logger.LogAttrs(ctx, lvl, "resource snapshot", attrs...)
	default:
		logger.LogAttrs(ctx, slog.LevelDebug, string(ev.Kind),
			slog.String("url", ev.URL), slog.String("stage", ev.Stage))
	}
}

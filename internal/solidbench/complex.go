package solidbench

import "fmt"

// ComplexQueries returns the harder workload class of the benchmark —
// queries combining multi-pod joins with OPTIONAL, aggregation, and
// ordering, in the spirit of SolidBench's complex class (derived from the
// LDBC SNB interactive complex reads). The paper notes that "for more
// complex queries in terms of the number of triple patterns ... more
// fundamental optimization work is needed"; these queries are the
// regression workload for that frontier (and for the adaptive planner).
func (d *Dataset) ComplexQueries() []Query {
	v := NewVocab(d.Config.Host)
	prefix := fmt.Sprintf("PREFIX snvoc: <%s>\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\n", v.NS())
	p1 := d.variantPerson(1)
	p2 := d.variantPerson(3)
	return []Query{
		{
			Name:     "Complex 1: recent messages of friends",
			Person:   p1,
			MultiPod: true,
			// SNB IC2: recent messages by friends, newest first.
			Text: prefix + fmt.Sprintf(`SELECT ?friend ?messageId ?date WHERE {
  <%s> foaf:knows ?friend.
  ?message snvoc:hasCreator ?friend;
    snvoc:id ?messageId;
    snvoc:creationDate ?date.
} ORDER BY DESC(?date) ?messageId LIMIT 20`, d.WebID(p1)),
		},
		{
			Name:     "Complex 2: top commenters on my posts",
			Person:   p1,
			MultiPod: true,
			// SNB IC-style: who replies to my posts most?
			Text: prefix + fmt.Sprintf(`SELECT ?commenter (COUNT(?comment) AS ?replies) WHERE {
  ?post snvoc:hasCreator <%s>.
  ?comment snvoc:replyOf ?post;
    snvoc:hasCreator ?commenter.
  FILTER(?commenter != <%s>)
} GROUP BY ?commenter ORDER BY DESC(?replies) ?commenter LIMIT 10`, d.WebID(p1), d.WebID(p1)),
		},
		{
			Name:     "Complex 3: friends and their optional latest activity",
			Person:   p2,
			MultiPod: true,
			// Left join with aggregation underneath: friends with a count
			// of their messages (0 rows for silent friends).
			Text: prefix + fmt.Sprintf(`SELECT ?friend ?name ?messages WHERE {
  <%s> foaf:knows ?friend.
  OPTIONAL { ?friend foaf:name ?name }
  OPTIONAL {
    { SELECT ?friend (COUNT(?m) AS ?messages) WHERE {
        ?m snvoc:hasCreator ?friend.
      } GROUP BY ?friend }
  }
} ORDER BY ?friend`, d.WebID(p2)),
		},
	}
}

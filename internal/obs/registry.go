package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-level metrics registry. Registration takes a lock;
// the metric instruments themselves are lock-free (atomics) so hot paths
// (per-dereference, per-result) stay cheap under concurrency. All
// instrument methods are safe on nil receivers, so call sites need no
// "is observability enabled?" branches.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	histograms  map[string]*Histogram
	counterVecs map[string]*CounterVec
	infos       map[string]*Info
	gaugeFuncs  map[string]*GaugeFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		histograms:  map[string]*Histogram{},
		counterVecs: map[string]*CounterVec{},
		infos:       map[string]*Info{},
		gaugeFuncs:  map[string]*GaugeFunc{},
	}
}

// Label is one name="value" pair of an Info metric.
type Label struct {
	Name  string
	Value string
}

// Info is a constant gauge of value 1 whose labels carry the payload —
// the Prometheus idiom for build/version metadata (foo_build_info{...} 1).
type Info struct {
	name, help string
	labels     []Label
}

// Info registers (or replaces) a constant info metric with the given
// labels, rendered as name{labels...} 1.
func (r *Registry) Info(name, help string, labels ...Label) *Info {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := &Info{name: name, help: help, labels: append([]Label(nil), labels...)}
	r.infos[name] = i
	return i
}

// GaugeFunc is a gauge whose value is computed at exposition time — for
// values that derive from the clock or other live state (uptime).
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// GaugeFunc registers (or replaces) a computed gauge. fn is called on every
// scrape; it must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.gaugeFuncs[name] = g
	return g
}

// Counter registers (or returns the existing) monotonically increasing
// counter with the given name. Nil-safe: a nil registry returns nil, whose
// methods no-op.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
// Buckets are upper bounds in ascending order; a +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	h := &Histogram{
		name:      name,
		help:      help,
		bounds:    bounds,
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// CounterVec registers (or returns the existing) family of counters keyed
// by one label. Children are created on first With and rendered as
// name{label="value"} rows; label values are escaped per the Prometheus
// text-exposition rules, so arbitrary strings (document URLs, error
// messages) are safe.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.counterVecs[name]; ok {
		return v
	}
	v := &CounterVec{name: name, help: help, label: label, children: map[string]*Counter{}}
	r.counterVecs[name] = v
	return v
}

// CounterVec is a family of counters distinguished by one label value.
type CounterVec struct {
	name, help, label string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label value, creating it on
// first use. Nil-safe: a nil vec returns a nil counter whose methods no-op.
func (v *CounterVec) With(labelValue string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[labelValue]; ok {
		return c
	}
	c := &Counter{name: v.name}
	v.children[labelValue] = c
	return c
}

// Counter is a lock-free monotonically increasing counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a lock-free instantaneous value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with lock-free observation. The
// sum is kept as atomic float bits (CAS loop), counts as atomics.
type Histogram struct {
	name, help string
	bounds     []float64      // ascending upper bounds
	counts     []atomic.Int64 // len(bounds)+1; last is +Inf
	count      atomic.Int64
	sumBits    atomic.Uint64
	// exemplars holds the most recent traced observation per bucket
	// (len(bounds)+1, last is +Inf), rendered in OpenMetrics exemplar
	// syntax so a slow bucket points at a kept trace. Written only by
	// ObserveExemplar with a nonempty trace ID; plain Observe never
	// touches it.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar ties one observed value to the trace that produced it.
type exemplar struct {
	traceID string
	value   float64
	atUnix  float64 // seconds since epoch, OpenMetrics exemplar timestamp
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(h.bucketIndex(v), v)
}

// ObserveExemplar records one value and, when traceID is nonempty, stamps
// the value's bucket with a {trace_id=...} exemplar. With an empty traceID
// it is exactly Observe — zero extra cost on the untraced path.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.bucketIndex(v)
	h.observe(i, v)
	if traceID == "" {
		return
	}
	h.exemplars[i].Store(&exemplar{traceID: traceID, value: v, atUnix: float64(time.Now().UnixMicro()) / 1e6})
}

// bucketIndex returns the index of the first bound >= v (the +Inf bucket
// when v exceeds every bound).
func (h *Histogram) bucketIndex(v float64) int {
	return sort.SearchFloat64s(h.bounds, v)
}

func (h *Histogram) observe(i int, v float64) {
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0..1) by linear interpolation within
// buckets, the same estimate Prometheus' histogram_quantile computes.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count.Load() == 0 {
		return math.NaN()
	}
	rank := q * float64(h.count.Load())
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if i == len(h.bounds) { // +Inf bucket: clamp to the last bound
				return lower
			}
			upper := h.bounds[i]
			if c == 0 {
				return upper
			}
			return lower + (upper-lower)*((rank-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// DefaultLatencyBuckets covers sub-millisecond cache hits through
// multi-second degraded fetches (seconds).
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// DefaultMemBuckets covers per-query memory peaks from a few KiB (one
// cached document) through 1 GiB (a runaway traversal), in powers of four
// (bytes).
var DefaultMemBuckets = []float64{
	4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	histograms := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		histograms = append(histograms, h)
	}
	counterVecs := make([]*CounterVec, 0, len(r.counterVecs))
	for _, v := range r.counterVecs {
		counterVecs = append(counterVecs, v)
	}
	infos := make([]*Info, 0, len(r.infos))
	for _, i := range r.infos {
		infos = append(infos, i)
	}
	gaugeFuncs := make([]*GaugeFunc, 0, len(r.gaugeFuncs))
	for _, g := range r.gaugeFuncs {
		gaugeFuncs = append(gaugeFuncs, g)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(histograms, func(i, j int) bool { return histograms[i].name < histograms[j].name })
	sort.Slice(counterVecs, func(i, j int) bool { return counterVecs[i].name < counterVecs[j].name })
	sort.Slice(infos, func(i, j int) bool { return infos[i].name < infos[j].name })
	sort.Slice(gaugeFuncs, func(i, j int) bool { return gaugeFuncs[i].name < gaugeFuncs[j].name })

	var b strings.Builder
	for _, c := range counters {
		writeHeader(&b, c.name, c.help, "counter")
		fmt.Fprintf(&b, "%s %d\n", c.name, c.Value())
	}
	for _, v := range counterVecs {
		writeHeader(&b, v.name, v.help, "counter")
		v.mu.Lock()
		values := make([]string, 0, len(v.children))
		for lv := range v.children {
			values = append(values, lv)
		}
		sort.Strings(values)
		for _, lv := range values {
			fmt.Fprintf(&b, "%s{%s=\"%s\"} %d\n", v.name, v.label, escapeLabelValue(lv), v.children[lv].Value())
		}
		v.mu.Unlock()
	}
	for _, g := range gauges {
		writeHeader(&b, g.name, g.help, "gauge")
		fmt.Fprintf(&b, "%s %d\n", g.name, g.Value())
	}
	for _, g := range gaugeFuncs {
		writeHeader(&b, g.name, g.help, "gauge")
		fmt.Fprintf(&b, "%s %s\n", g.name, strconv.FormatFloat(g.fn(), 'g', -1, 64))
	}
	for _, i := range infos {
		writeHeader(&b, i.name, i.help, "gauge")
		parts := make([]string, 0, len(i.labels))
		for _, l := range i.labels {
			parts = append(parts, fmt.Sprintf("%s=\"%s\"", l.Name, escapeLabelValue(l.Value)))
		}
		fmt.Fprintf(&b, "%s{%s} 1\n", i.name, strings.Join(parts, ","))
	}
	for _, h := range histograms {
		writeHeader(&b, h.name, h.help, "histogram")
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d%s\n", h.name, formatBound(bound), cum, h.exemplarSuffix(i))
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d%s\n", h.name, cum, h.exemplarSuffix(len(h.bounds)))
		fmt.Fprintf(&b, "%s_sum %s\n", h.name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
		fmt.Fprintf(&b, "%s_count %d\n", h.name, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// exemplarSuffix renders the bucket's exemplar in OpenMetrics syntax
// (` # {trace_id="..."} value timestamp`), or "" when the bucket never saw
// a traced observation. Prometheus ingests these when scraping with
// OpenMetrics negotiation and ignores them otherwise.
func (h *Histogram) exemplarSuffix(i int) string {
	ex := h.exemplars[i].Load()
	if ex == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %s",
		escapeLabelValue(ex.traceID),
		strconv.FormatFloat(ex.value, 'g', -1, 64),
		strconv.FormatFloat(ex.atUnix, 'f', 3, 64))
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the Prometheus text exposition
// format (version 0.0.4): backslash, double-quote and newline must be
// backslash-escaped inside the double-quoted label value.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(s string) string {
	return labelEscaper.Replace(s)
}

// Package faultinject deterministically injects network faults into the
// traversal engine's HTTP path, so the resilience layer (retry/backoff,
// lenient degradation) can be exercised by reproducible chaos tests.
//
// An Injector holds an ordered list of per-URL-pattern Rules. It can sit on
// either side of the wire: as an http.RoundTripper wrapping the client's
// transport, or as middleware wrapping the pod server's handler. Faults
// include added latency, 429/500/503 responses (optionally with a
// Retry-After header), connection resets, and truncated or corrupted Turtle
// bodies — the failure modes live Solid pods on the open Web exhibit.
//
// Every fault decision is a pure function of (seed, URL, per-URL request
// number), so two runs with the same seed over the same request multiset
// produce identical fault schedules regardless of goroutine interleaving.
package faultinject

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ltqp/internal/obs"
)

// Kind enumerates the injectable fault types.
type Kind int

const (
	// None injects nothing (latency from the matched rule still applies).
	None Kind = iota
	// Status replaces the response with Rule.Status (e.g. 429/500/503).
	Status
	// ConnReset simulates a TCP connection reset: the transport returns
	// ECONNRESET; the middleware aborts the connection mid-response.
	ConnReset
	// Truncate serves only the first half of the body, then fails the
	// read — a dropped connection mid-transfer.
	Truncate
	// Corrupt mangles the body into syntactically invalid Turtle.
	Corrupt
	// Bloat appends Rule.BloatTriples distinct synthetic triples to a
	// successful Turtle body — the document stays valid but balloons in
	// bytes and parsed triples, driving per-query memory budgets over the
	// line without breaking traversal.
	Bloat
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case Status:
		return "status"
	case ConnReset:
		return "conn-reset"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	case Bloat:
		return "bloat"
	default:
		return "none"
	}
}

// Rule schedules one fault type for matching requests. Rules are evaluated
// in order; the first rule whose Pattern matches decides the request.
type Rule struct {
	// Pattern is matched as a substring of the request URL; "" matches
	// every request.
	Pattern string
	// Probability is the chance a matching request is faulted, in [0, 1].
	Probability float64
	// Kind is the fault to inject.
	Kind Kind
	// Status is the response code for Kind Status (default 503).
	Status int
	// RetryAfter, when > 0, is sent as a Retry-After header (seconds)
	// with Status faults.
	RetryAfter time.Duration
	// Latency is added to every matching request, faulted or not.
	Latency time.Duration
	// MaxFaultsPerURL, when > 0, stops faulting a URL after that many
	// injections — the request "eventually succeeds". Keeping the cap
	// per-URL (not global) preserves schedule determinism under
	// concurrency.
	MaxFaultsPerURL int
	// BloatTriples is how many synthetic triples a Bloat fault appends
	// (default 1024). Subjects are scoped to the request URL, so every
	// bloated document adds distinct triples — store deduplication cannot
	// shrink the injected weight.
	BloatTriples int
}

// Event records one injected fault.
type Event struct {
	// URL is the faulted request URL.
	URL string
	// Seq is the per-URL request number (0-based) at injection time.
	Seq int
	// Kind and Status describe the injected fault.
	Kind   Kind
	Status int
}

// Injector applies fault rules to HTTP traffic. Safe for concurrent use.
type Injector struct {
	seed  int64
	rules []Rule

	mu     sync.Mutex
	perURL map[string]int // requests seen per URL
	faults map[string]int // faults injected per URL
	events []Event
}

// New returns an injector with the given deterministic seed and rules.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		seed:   seed,
		rules:  rules,
		perURL: map[string]int{},
		faults: map[string]int{},
	}
}

// Events returns the injected faults so far, sorted by URL then sequence
// number — a canonical order, so schedules from two runs compare equal even
// though goroutine interleaving differs.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	sort.Slice(out, func(i, j int) bool {
		if out[i].URL != out[j].URL {
			return out[i].URL < out[j].URL
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// FaultCount returns the number of faults injected so far.
func (in *Injector) FaultCount() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.events)
}

// decision is the resolved outcome for one request.
type decision struct {
	kind       Kind
	status     int
	retryAfter time.Duration
	latency    time.Duration
	bloat      int
}

// decide resolves the fault decision for the next request to url.
func (in *Injector) decide(url string) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.perURL[url]
	in.perURL[url] = n + 1
	for _, r := range in.rules {
		if r.Pattern != "" && !strings.Contains(url, r.Pattern) {
			continue
		}
		d := decision{latency: r.Latency}
		fault := r.Probability > 0 && unitHash(in.seed, url, n) < r.Probability
		if fault && r.MaxFaultsPerURL > 0 && in.faults[url] >= r.MaxFaultsPerURL {
			fault = false
		}
		if fault && r.Kind != None {
			in.faults[url]++
			d.kind = r.Kind
			d.status = r.Status
			if d.kind == Status && d.status == 0 {
				d.status = http.StatusServiceUnavailable
			}
			d.retryAfter = r.RetryAfter
			if d.kind == Bloat {
				d.bloat = r.BloatTriples
				if d.bloat <= 0 {
					d.bloat = 1024
				}
			}
			in.events = append(in.events, Event{URL: url, Seq: n, Kind: d.kind, Status: d.status})
		}
		return d // first matching rule decides, faulted or not
	}
	return decision{}
}

// unitHash maps (seed, url, n) to a uniform float in [0, 1) via FNV-1a.
func unitHash(seed int64, url string, n int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(url))
	for i := 0; i < 8; i++ {
		buf[i] = byte(n >> (8 * i))
	}
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Transport wraps an http.RoundTripper with fault injection. A nil inner
// transport means http.DefaultTransport.
func (in *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{in: in, inner: inner}
}

// Client returns a copy of base (nil means a zero client) whose transport
// injects faults.
func (in *Injector) Client(base *http.Client) *http.Client {
	c := http.Client{}
	if base != nil {
		c = *base
	}
	c.Transport = in.Transport(c.Transport)
	return &c
}

type transport struct {
	in    *Injector
	inner http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.in.decide(req.URL.String())
	if d.latency > 0 {
		timer := time.NewTimer(d.latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	switch d.kind {
	case Status:
		return syntheticResponse(req, d), nil
	case ConnReset:
		return nil, &net.OpError{Op: "read", Net: "tcp",
			Err: fmt.Errorf("injected: %w", syscall.ECONNRESET)}
	case Truncate, Corrupt:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		return mangleBody(resp, d.kind)
	case Bloat:
		resp, err := t.inner.RoundTrip(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			return resp, err
		}
		return bloatBody(resp, req.URL.String(), d.bloat)
	default:
		return t.inner.RoundTrip(req)
	}
}

// syntheticResponse fabricates an error response without touching the
// network, the way a rate-limiting proxy would.
func syntheticResponse(req *http.Request, d decision) *http.Response {
	h := http.Header{"Content-Type": []string{"text/plain"}}
	if d.retryAfter > 0 {
		h.Set("Retry-After", strconv.Itoa(int(d.retryAfter.Round(time.Second)/time.Second)))
	}
	body := fmt.Sprintf("injected fault: status %d", d.status)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", d.status, http.StatusText(d.status)),
		StatusCode:    d.status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// mangleBody rewrites a successful response's body: Truncate serves half
// and then fails the read (dropped connection); Corrupt prepends bytes that
// cannot be valid Turtle.
func mangleBody(resp *http.Response, kind Kind) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	switch kind {
	case Truncate:
		resp.Body = &truncatedBody{data: data[:len(data)/2]}
	case Corrupt:
		resp.Body = io.NopCloser(bytes.NewReader(append([]byte("@@\x00corrupt<<< "), data...)))
	}
	return resp, nil
}

// bloatBody appends n synthetic triples to a successful Turtle response.
// Subjects embed an FNV hash of the request URL, so triples from different
// bloated documents never collide — the store's per-triple deduplication
// keeps every injected triple, and the query's memory footprint grows by
// the full injected weight.
func bloatBody(resp *http.Response, url string, n int) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(url))
	tag := h.Sum64()
	var buf bytes.Buffer
	buf.Write(data)
	if len(data) > 0 && data[len(data)-1] != '\n' {
		buf.WriteByte('\n')
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "<urn:bloat:%016x:%d> <urn:bloat:weight> \"padding-payload-%016x-%d\" .\n", tag, i, tag, i)
	}
	resp.Body = io.NopCloser(bytes.NewReader(buf.Bytes()))
	resp.ContentLength = int64(buf.Len())
	resp.Header.Set("Content-Length", strconv.Itoa(buf.Len()))
	return resp, nil
}

// truncatedBody yields its data and then fails like a dropped connection.
type truncatedBody struct {
	data []byte
	off  int
}

// Read implements io.Reader.
func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

// Close implements io.Closer.
func (b *truncatedBody) Close() error { return nil }

// Middleware wraps an http.Handler (e.g. the pod server) with fault
// injection on the server side of the wire.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := in.decide(requestURL(r))
		if d.latency > 0 {
			time.Sleep(d.latency)
			// Announce the injected delay so client spans can attribute
			// it to the server side rather than the network.
			w.Header().Add(obs.ServerTimingHeader, obs.FormatServerTiming("fault", d.latency))
		}
		switch d.kind {
		case Status:
			if d.retryAfter > 0 {
				w.Header().Set("Retry-After",
					strconv.Itoa(int(d.retryAfter.Round(time.Second)/time.Second)))
			}
			http.Error(w, "injected fault", d.status)
		case ConnReset:
			// ErrAbortHandler makes the server drop the connection
			// without a response — the client sees a reset/EOF.
			panic(http.ErrAbortHandler)
		case Truncate:
			rec := capture(next, r)
			rec.copyHeaders(w, true)
			w.Write(rec.body.Bytes()[:rec.body.Len()/2])
			// Announced Content-Length exceeds what was written; the
			// server closes the connection and the client's read fails.
			panic(http.ErrAbortHandler)
		case Corrupt:
			rec := capture(next, r)
			rec.copyHeaders(w, false)
			w.Write([]byte("@@\x00corrupt<<< "))
			w.Write(rec.body.Bytes())
		case Bloat:
			rec := capture(next, r)
			rec.copyHeaders(w, false)
			w.Write(rec.body.Bytes())
			h := fnv.New64a()
			h.Write([]byte(requestURL(r)))
			tag := h.Sum64()
			if rec.body.Len() > 0 && rec.body.Bytes()[rec.body.Len()-1] != '\n' {
				w.Write([]byte("\n"))
			}
			for i := 0; i < d.bloat; i++ {
				fmt.Fprintf(w, "<urn:bloat:%016x:%d> <urn:bloat:weight> \"padding-payload-%016x-%d\" .\n", tag, i, tag, i)
			}
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// recorder captures a downstream handler's response for mangling.
type recorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func capture(next http.Handler, r *http.Request) *recorder {
	rec := &recorder{header: http.Header{}, status: http.StatusOK}
	next.ServeHTTP(rec, r)
	return rec
}

// Header implements http.ResponseWriter.
func (r *recorder) Header() http.Header { return r.header }

// Write implements http.ResponseWriter.
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// WriteHeader implements http.ResponseWriter.
func (r *recorder) WriteHeader(status int) { r.status = status }

// copyHeaders replays the captured status and headers onto w. With
// announceFullLength, the original body length is declared even though
// less will be written.
func (r *recorder) copyHeaders(w http.ResponseWriter, announceFullLength bool) {
	for k, vs := range r.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if announceFullLength {
		w.Header().Set("Content-Length", strconv.Itoa(r.body.Len()))
	}
	w.WriteHeader(r.status)
}

// requestURL reconstructs the absolute URL of a server-side request.
func requestURL(r *http.Request) string {
	scheme := "http"
	if r.TLS != nil {
		scheme = "https"
	}
	u := url.URL{Scheme: scheme, Host: r.Host, Path: r.URL.Path}
	return u.String()
}

package turtle

import (
	"sort"
	"strings"

	"ltqp/internal/rdf"
)

// WriteOptions configures Turtle serialization.
type WriteOptions struct {
	// Base, when set, emits an @base directive and relativizes IRIs that
	// are direct children of it.
	Base string
	// Prefixes maps prefix labels to namespaces; only prefixes that are
	// actually used are emitted.
	Prefixes map[string]string
}

// Write serializes triples as Turtle, grouping by subject and predicate to
// produce the compact `;`/`,` form that Solid servers emit (paper Listings
// 1–3).
func Write(triples []rdf.Triple, opts WriteOptions) string {
	w := &writer{opts: opts, used: map[string]bool{}}
	return w.write(triples)
}

// WriteNTriples serializes triples in canonical N-Triples, one per line.
func WriteNTriples(triples []rdf.Triple) string {
	var b strings.Builder
	for _, t := range triples {
		b.WriteString(t.S.String())
		b.WriteByte(' ')
		b.WriteString(t.P.String())
		b.WriteByte(' ')
		b.WriteString(t.O.String())
		b.WriteString(" .\n")
	}
	return b.String()
}

// WriteNQuads serializes quads in N-Quads, one per line.
func WriteNQuads(quads []rdf.Quad) string {
	var b strings.Builder
	for _, q := range quads {
		b.WriteString(q.S.String())
		b.WriteByte(' ')
		b.WriteString(q.P.String())
		b.WriteByte(' ')
		b.WriteString(q.O.String())
		if !q.G.IsZero() {
			b.WriteByte(' ')
			b.WriteString(q.G.String())
		}
		b.WriteString(" .\n")
	}
	return b.String()
}

type writer struct {
	opts WriteOptions
	used map[string]bool
	body strings.Builder
}

func (w *writer) write(triples []rdf.Triple) string {
	// Group triples by subject preserving first-appearance order.
	type group struct {
		subject rdf.Term
		triples []rdf.Triple
	}
	var order []rdf.Term
	groups := map[rdf.Term]*group{}
	for _, t := range triples {
		g, ok := groups[t.S]
		if !ok {
			g = &group{subject: t.S}
			groups[t.S] = g
			order = append(order, t.S)
		}
		g.triples = append(g.triples, t)
	}

	for gi, s := range order {
		g := groups[s]
		if gi > 0 {
			w.body.WriteByte('\n')
		}
		w.body.WriteString(w.term(g.subject))
		// Group by predicate preserving order.
		var porder []rdf.Term
		byPred := map[rdf.Term][]rdf.Term{}
		for _, t := range g.triples {
			if _, ok := byPred[t.P]; !ok {
				porder = append(porder, t.P)
			}
			byPred[t.P] = append(byPred[t.P], t.O)
		}
		for pi, p := range porder {
			if pi == 0 {
				w.body.WriteByte(' ')
			} else {
				w.body.WriteString(";\n    ")
			}
			w.body.WriteString(w.predicate(p))
			w.body.WriteByte(' ')
			for oi, o := range byPred[p] {
				if oi > 0 {
					w.body.WriteString(", ")
				}
				w.body.WriteString(w.term(o))
			}
		}
		w.body.WriteString(".\n")
	}

	// Emit header with only the used prefixes, sorted for determinism.
	var head strings.Builder
	if w.opts.Base != "" {
		head.WriteString("@base <")
		head.WriteString(w.opts.Base)
		head.WriteString(">.\n")
	}
	var labels []string
	for l := range w.used {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		head.WriteString("@prefix ")
		head.WriteString(l)
		head.WriteString(": <")
		head.WriteString(w.opts.Prefixes[l])
		head.WriteString(">.\n")
	}
	if head.Len() > 0 {
		head.WriteByte('\n')
	}
	return head.String() + w.body.String()
}

// predicate renders a predicate, using `a` for rdf:type.
func (w *writer) predicate(p rdf.Term) string {
	if p.Kind == rdf.TermIRI && p.Value == rdf.RDFType {
		return "a"
	}
	return w.term(p)
}

// term renders any term, preferring prefixed names and relative IRIs.
func (w *writer) term(t rdf.Term) string {
	switch t.Kind {
	case rdf.TermIRI:
		return w.iri(t.Value)
	case rdf.TermLiteral:
		if t.Language == "" && t.Datatype != "" {
			// Try to shorten the datatype too.
			lex := rdf.NewLiteral(t.Value).String()
			return lex + "^^" + w.iri(t.Datatype)
		}
		return t.String()
	default:
		return t.String()
	}
}

// iri renders an IRI with prefix compaction or base-relativization.
func (w *writer) iri(iri string) string {
	best, bestNS := "", ""
	for label, ns := range w.opts.Prefixes {
		if strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) {
			local := iri[len(ns):]
			if validLocalPart(local) {
				best, bestNS = label, ns
			}
		}
	}
	if bestNS != "" {
		w.used[best] = true
		return best + ":" + iri[len(bestNS):]
	}
	if w.opts.Base != "" {
		if iri == w.opts.Base {
			return "<>"
		}
		if strings.HasPrefix(iri, w.opts.Base) {
			rel := iri[len(w.opts.Base):]
			if !strings.ContainsAny(rel, "<>\"{}|^`\\ ") {
				return "<" + rel + ">"
			}
		}
	}
	return "<" + escapeIRI(iri) + ">"
}

// validLocalPart reports whether a local name can be written unescaped.
func validLocalPart(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '_' || c == '-':
		case c == '.' && i > 0 && i < len(s)-1:
		default:
			return false
		}
	}
	return true
}

// escapeIRI escapes characters disallowed inside <...>.
func escapeIRI(iri string) string {
	if !strings.ContainsAny(iri, " <>\"{}|^`\\") {
		return iri
	}
	var b strings.Builder
	for _, r := range iri {
		switch r {
		case ' ':
			b.WriteString("%20")
		case '<':
			b.WriteString("%3C")
		case '>':
			b.WriteString("%3E")
		case '"':
			b.WriteString("%22")
		case '\\':
			b.WriteString("%5C")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

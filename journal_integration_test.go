package ltqp_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/obs"
	"ltqp/internal/podserver"
	"ltqp/internal/solid"
)

// journalEnv is the 3-hop chain of explainEnv with an event bus attached,
// so a query's full event stream can be journaled and replayed.
func journalEnv(t *testing.T, bus *ltqp.EventBus) (base string, engine *ltqp.Engine) {
	t.Helper()
	ps := podserver.New()
	srv := httptest.NewServer(ps)
	t.Cleanup(srv.Close)
	base = srv.URL
	ps.AddDocument(base+"/a.ttl", fmt.Sprintf(
		"<%s/a.ttl#alice> <http://v/friend> <%s/b.ttl#bob>.", base, base), solid.PublicAccess)
	ps.AddDocument(base+"/b.ttl", fmt.Sprintf(
		"<%s/b.ttl#bob> <http://v/post> <%s/c.ttl#p1>.", base, base), solid.PublicAccess)
	ps.AddDocument(base+"/c.ttl", fmt.Sprintf(
		"<%s/c.ttl#p1> <http://v/title> \"hello\".", base), solid.PublicAccess)
	engine = ltqp.New(ltqp.Config{
		Client:   srv.Client(),
		Strategy: ltqp.StrategyCMatch,
		Events:   bus,
	})
	return base, engine
}

// TestJournalReplayMatchesLiveRun is the acceptance test for the journal:
// capture a query over the 3-hop podserver fixture to a JSONL journal, then
// replay it offline and check the reconstruction reproduces the live run —
// same result count, a TTFR bounded by the recorded timestamps, all three
// documents, and the full phase set.
func TestJournalReplayMatchesLiveRun(t *testing.T) {
	bus := ltqp.NewEventBus()
	var buf bytes.Buffer
	journal, err := ltqp.NewJournal(&buf, bus)
	if err != nil {
		t.Fatal(err)
	}
	base, engine := journalEnv(t, bus)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.Query(ctx, explainQuery(base))
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for range res.Results {
		live++
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if live != 1 {
		t.Fatalf("live results = %d, want 1", live)
	}
	liveTTFR, ok := res.Metrics().TimeToFirstResult()
	if !ok {
		t.Fatal("live run has no TTFR")
	}
	if err := journal.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	summary, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !summary.HasFooter || summary.Dropped != 0 {
		t.Fatalf("journal footer=%v dropped=%d", summary.HasFooter, summary.Dropped)
	}
	if len(summary.Queries) != 1 {
		t.Fatalf("replayed queries = %d", len(summary.Queries))
	}
	q := summary.Queries[0]
	if q.ID != res.ID() {
		t.Errorf("replay id = %d, want %d", q.ID, res.ID())
	}
	if !q.Finished || q.Err != "" {
		t.Errorf("replay finished=%v err=%q", q.Finished, q.Err)
	}
	if q.Results != live {
		t.Errorf("replay results = %d, live = %d", q.Results, live)
	}

	// TTFR is reconstructed purely from recorded timestamps: it must exist
	// and sit inside the query's replayed duration. Compare against the live
	// recorder loosely — both clocks watched the same run.
	if !q.HasTTFR {
		t.Fatal("replay has no TTFR")
	}
	if q.TTFR <= 0 || q.TTFR > q.Duration {
		t.Errorf("replay TTFR = %v outside (0, %v]", q.TTFR, q.Duration)
	}
	if diff := (q.TTFR - liveTTFR).Abs(); diff > 250*time.Millisecond {
		t.Errorf("replay TTFR %v vs live %v (diff %v)", q.TTFR, liveTTFR, diff)
	}

	// All three documents of the chain, each successfully dereferenced.
	if len(q.Docs) != 3 {
		t.Fatalf("replay docs = %+v, want 3", q.Docs)
	}
	for _, d := range q.Docs {
		if d.Failed || d.Status != 200 || d.Triples == 0 {
			t.Errorf("doc %s = %+v", d.URL, d)
		}
	}
	if q.MaxConcurrency < 1 {
		t.Errorf("max concurrency = %d", q.MaxConcurrency)
	}

	// The core phase set is reconstructed in order.
	var phases []string
	for _, p := range q.Phases {
		phases = append(phases, p.Name)
	}
	for _, want := range []string{"parse", "plan", "traverse", "exec"} {
		found := false
		for _, p := range phases {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("phases = %v, missing %q", phases, want)
		}
	}

	// The human-readable report (what benchreport --replay-journal prints)
	// reflects the same reconstruction.
	var report strings.Builder
	summary.WriteReport(&report, 5)
	for _, want := range []string{
		fmt.Sprintf("query #%d", q.ID),
		"1 result",
		base + "/a.ttl",
	} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}
}

// Command ltqp-sparql executes a SPARQL query over Solid pods using link
// traversal, reproducing the paper's command-line interface (Fig. 2):
//
//	ltqp-sparql [flags] [seed ...] 'SPARQL query'
//
// Each result is printed as a JSON object as it is produced, while
// traversal is still running. Examples:
//
//	ltqp-sparql --lenient \
//	  https://host/pods/0000.../profile/card \
//	  'PREFIX snvoc: <...> SELECT ?forumId ?forumTitle WHERE { ... }'
//
//	ltqp-sparql --lenient --waterfall 'SELECT ... { <seed-iri> ... }'
//
// The query may also be read from a file with --query-file, or from stdin
// when the query argument is "-".
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ltqp"
	"ltqp/internal/obs"
	"ltqp/internal/results"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ltqp-sparql", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		lenient    = fs.Bool("lenient", true, "tolerate failing or unparseable documents")
		strategy   = fs.String("strategy", "solid", "link extraction strategy: solid, solid-no-ldp, ldp-only, cmatch, call")
		idp        = fs.String("idp", "", "identity provider hint (informational; use --webid/--token to authenticate)")
		webid      = fs.String("webid", "", "WebID to query on behalf of")
		token      = fs.String("token", "", "bearer token for the WebID (defaults to the simulated IdP signature)")
		timeout    = fs.Duration("timeout", 5*time.Minute, "overall query timeout")
		limitDocs  = fs.Int("max-documents", 0, "cap on dereferenced documents (0 = unlimited)")
		waterfall  = fs.Bool("waterfall", false, "print the HTTP resource waterfall after the query")
		stats      = fs.Bool("stats", false, "print traversal statistics after the query")
		plan       = fs.Bool("plan", false, "print the optimized logical plan before executing")
		explainOut = fs.String("explain", "", "write the explain report (traversal topology + result provenance) as JSON to this file (\"-\" for stderr)")
		explainDot = fs.String("explain-dot", "", "write the traversal topology as a Graphviz digraph to this file (\"-\" for stderr)")
		provenance = fs.Bool("provenance", false, "annotate each ndjson result with a \"_sources\" list of its source documents")
		prioritize = fs.Bool("prioritize", false, "use the priority link queue instead of FIFO")
		queryFile  = fs.String("query-file", "", "read the query from this file")
		format     = fs.String("format", "ndjson", "result format: ndjson (streaming, as in the paper), json, csv, tsv")
		adaptive   = fs.Bool("adaptive", false, "re-plan from observed cardinalities after a traversal warmup")
		maxDepth   = fs.Int("max-depth", 0, "cap traversal depth in hops from the seeds (0 = unbounded)")
		cacheDocs  = fs.Int("cache", 0, "enable an engine-wide document cache of this many documents")
		sharedMB   = fs.Int64("shared-cache", 0, "enable a shared revalidating document cache with this byte budget in MiB (singleflight dedup included)")
		retries    = fs.Int("max-retries", 3, "retries per document on transient failures (429/5xx, transport errors); 0 disables")
		retryBase  = fs.Duration("retry-base", 100*time.Millisecond, "initial retry backoff (doubles per retry, with deterministic jitter)")
		reqTimeout = fs.Duration("request-timeout", 30*time.Second, "per-attempt HTTP timeout (0 = none)")
		retrySeed  = fs.Int64("retry-seed", 0, "seed for deterministic backoff jitter (reproducible schedules)")
		traceOut   = fs.String("trace", "", "write the query's span tree as JSON to this file (\"-\" for stderr)")
		journalOut = fs.String("journal", "", "write the engine event journal (JSONL, one event per line) to this file; replay with benchreport --replay-journal")
		logFormat  = fs.String("log", "", "enable structured logging to stderr: text or json")
		logLevel   = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
		memBudget  = fs.Int64("mem-budget-per-query", 0, "ledger-accounted memory the query may hold in bytes; crossing it aborts with the per-layer breakdown (0 = unlimited)")

		queuePolicy   = fs.String("queue-policy", "", "link queue discipline: fifo (default), reason, or guided (query-relevance scoring with per-origin fairness); overrides --prioritize")
		maxDocsOrigin = fs.Int("max-docs-per-origin", 0, "cap dereferenced documents per origin (0 = unbounded)")
		maxBytesOrig  = fs.Int64("max-bytes-per-origin", 0, "cap body bytes read per origin (0 = unbounded)")
		maxInflight   = fs.Int("max-inflight-per-origin", 0, "cap concurrent dereferences per origin (0 = global limit only)")
		maxLinksDoc   = fs.Int("max-links-per-doc", 0, "cap links one document may add to the queue — link-bomb containment (0 = unbounded)")
		maxQueued     = fs.Int("max-queued-links", 0, "cap total distinct links one traversal accepts (0 = unbounded)")
		allowlist     = fs.String("traversal-allowlist", "", "comma-separated URL prefixes traversal may follow; seeds are always in scope (empty = unrestricted)")
		scopeSeeds    = fs.Bool("scope-to-seeds", false, "restrict traversal to the origins of the seed URLs")
		maxDocBytes   = fs.Int64("max-doc-bytes", 0, "cap one response body's size in bytes (0 = 64 MiB default)")
		bodyTimeout   = fs.Duration("body-timeout", 0, "abort a response body slower than this in total — slow-loris cutoff (0 = per-attempt timeout only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()

	var query string
	switch {
	case *queryFile != "":
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fmt.Fprintln(stderr, "ltqp-sparql:", err)
			return 1
		}
		query = string(data)
	case len(rest) > 0:
		query = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if query == "-" {
			data, err := io.ReadAll(os.Stdin)
			if err != nil {
				fmt.Fprintln(stderr, "ltqp-sparql:", err)
				return 1
			}
			query = string(data)
		}
	default:
		fmt.Fprintln(stderr, "usage: ltqp-sparql [flags] [seed ...] 'SPARQL query'")
		fs.PrintDefaults()
		return 2
	}
	seeds := rest

	policy, perr := ltqp.ParseQueuePolicy(*queuePolicy)
	if perr != nil {
		fmt.Fprintln(stderr, "ltqp-sparql:", perr)
		return 2
	}
	if *queuePolicy == "" {
		// No explicit policy: leave it empty so --prioritize (the legacy
		// spelling of the reason queue) still decides.
		policy = ""
	}

	cfg := ltqp.Config{
		Lenient:          *lenient,
		MaxDocuments:     *limitDocs,
		MaxDepth:         *maxDepth,
		PrioritizedQueue: *prioritize,
		QueuePolicy:      policy,
		Adaptive:         *adaptive,
		CacheDocuments:   *cacheDocs,
		Trace:            *traceOut != "",
		Explain:          *explainOut != "" || *explainDot != "" || *provenance,
		MemBudget:        *memBudget,
		Limits: ltqp.TraversalLimits{
			MaxDocsPerOrigin:     *maxDocsOrigin,
			MaxBytesPerOrigin:    *maxBytesOrig,
			MaxInFlightPerOrigin: *maxInflight,
			MaxLinksPerDoc:       *maxLinksDoc,
			MaxQueuedLinks:       *maxQueued,
			ScopeToSeeds:         *scopeSeeds,
			MaxDocBytes:          *maxDocBytes,
			BodyTimeout:          *bodyTimeout,
		},
	}
	if *allowlist != "" {
		for _, p := range strings.Split(*allowlist, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Limits.Allowlist = append(cfg.Limits.Allowlist, p)
			}
		}
	}
	if *sharedMB > 0 {
		cfg.SharedCache = ltqp.NewSharedCache(ltqp.SharedCacheOptions{MaxBytes: *sharedMB << 20})
	}
	if *retries > 0 {
		cfg.Retry = &ltqp.RetryPolicy{
			MaxAttempts:    *retries + 1,
			BaseDelay:      *retryBase,
			AttemptTimeout: *reqTimeout,
			Seed:           *retrySeed,
		}
		if *reqTimeout == 0 {
			cfg.Retry.AttemptTimeout = -1
		}
	}
	switch *strategy {
	case "solid":
		cfg.Strategy = ltqp.StrategySolid
	case "solid-no-ldp":
		cfg.Strategy = ltqp.StrategySolidNoLDP
	case "ldp-only":
		cfg.Strategy = ltqp.StrategyLDPOnly
	case "cmatch":
		cfg.Strategy = ltqp.StrategyCMatch
	case "call":
		cfg.Strategy = ltqp.StrategyCAll
	default:
		fmt.Fprintf(stderr, "ltqp-sparql: unknown strategy %q\n", *strategy)
		return 2
	}
	if *webid != "" {
		tok := *token
		if tok == "" {
			tok = "sig:" + *webid
		}
		cfg.Auth = &ltqp.Credentials{WebID: *webid, Token: tok}
		if *idp != "" {
			fmt.Fprintf(stderr, "logged in via %s as %s\n", *idp, *webid)
		}
	}

	// The event bus feeds both opt-in consumers; without either flag no
	// bus is attached and the engine skips event construction entirely.
	if *journalOut != "" || *logFormat != "" {
		cfg.Events = ltqp.NewEventBus()
	}
	if *logFormat != "" {
		logger, lerr := obs.NewLogger(stderr, *logFormat, *logLevel)
		if lerr != nil {
			fmt.Fprintln(stderr, "ltqp-sparql:", lerr)
			return 2
		}
		eventLog := obs.LogEvents(logger, cfg.Events)
		defer eventLog.Close()
	}
	if *journalOut != "" {
		f, ferr := os.Create(*journalOut)
		if ferr != nil {
			fmt.Fprintln(stderr, "ltqp-sparql: journal:", ferr)
			return 1
		}
		journal, jerr := ltqp.NewJournal(f, cfg.Events)
		if jerr != nil {
			fmt.Fprintln(stderr, "ltqp-sparql: journal:", jerr)
			return 1
		}
		defer func() {
			if cerr := journal.Close(); cerr != nil {
				fmt.Fprintln(stderr, "ltqp-sparql: journal:", cerr)
			}
			f.Close()
		}()
	}

	engine := ltqp.New(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	res, err := engine.QueryWithSeeds(ctx, query, seeds)
	if err != nil {
		fmt.Fprintln(stderr, "ltqp-sparql:", err)
		return 1
	}
	if *plan {
		fmt.Fprintln(stderr, "plan:", res.PlanString())
	}

	n := 0
	switch *format {
	case "ndjson":
		// Stream each result as it is produced (paper Fig. 2).
		for b := range res.Results {
			if *provenance {
				fmt.Fprintln(stdout, ltqp.BindingJSONWithSources(b))
			} else {
				fmt.Fprintln(stdout, ltqp.BindingJSON(b))
			}
			n++
		}
	case "json", "csv", "tsv":
		var all []ltqp.Binding
		for b := range res.Results {
			all = append(all, b)
		}
		n = len(all)
		var werr error
		switch *format {
		case "json":
			werr = results.WriteJSON(stdout, res.Vars, all)
		case "csv":
			werr = results.WriteCSV(stdout, res.Vars, all)
		case "tsv":
			werr = results.WriteTSV(stdout, res.Vars, all)
		}
		if werr != nil {
			fmt.Fprintln(stderr, "ltqp-sparql:", werr)
			return 1
		}
	default:
		fmt.Fprintf(stderr, "ltqp-sparql: unknown format %q\n", *format)
		return 2
	}
	if err := res.Err(); err != nil {
		fmt.Fprintln(stderr, "ltqp-sparql:", err)
		return 1
	}
	elapsed := time.Since(start)

	if *waterfall {
		fmt.Fprint(stderr, "\n"+res.Metrics().Waterfall(60))
	}
	if *stats {
		s := res.Stats()
		ttfr := "-"
		if d, ok := res.Metrics().TimeToFirstResult(); ok {
			ttfr = d.Round(time.Millisecond).String()
		}
		fmt.Fprintf(stderr, "\n%d results in %s (first result after %s)\n",
			n, elapsed.Round(time.Millisecond), ttfr)
		fmt.Fprintf(stderr, "%d HTTP requests (%d failed), %d triples from %d documents, max depth %d\n",
			s.Requests, s.Failed, s.TotalTriples, s.Requests-s.Failed, s.MaxDepth)
		if hits, misses, enabled := res.CacheStats(); enabled {
			fmt.Fprintf(stderr, "document cache: %d hits this run; engine-wide %d hits / %d misses\n",
				s.CacheHits, hits, misses)
		}
		if sc, enabled := engine.SharedCacheStats(); enabled {
			fmt.Fprintf(stderr, "shared cache: %.0f%% hit ratio (%d hits / %d misses), %d docs / %d bytes held, %d revalidations (%d answered 304), %d singleflight dedups\n",
				sc.HitRatio()*100, sc.Hits, sc.Misses, sc.Documents, sc.Bytes,
				sc.Revalidations, sc.NotModified, sc.Dedups)
		}
		if deg := res.Degradation(); deg.Degraded() {
			fmt.Fprintf(stderr, "degraded: %d retries, %d documents abandoned (results may be partial)\n",
				deg.Retries, len(deg.FailedDocuments))
			for _, trip := range deg.LimitTrips {
				fmt.Fprintf(stderr, "  limit tripped: %s\n", trip)
			}
		}
		if snap := res.Resources(); snap != nil {
			line := fmt.Sprintf("memory: peak %d bytes (%s)", snap.Peak, snap.BreakdownString())
			if snap.Budget > 0 {
				line += fmt.Sprintf(", budget %d bytes", snap.Budget)
				if snap.Exceeded {
					line += " EXCEEDED"
				}
			}
			fmt.Fprintln(stderr, line)
		}
		fmt.Fprintf(stderr, "seeds: %s\n", strings.Join(res.Seeds, " "))
	}
	if *traceOut != "" {
		data, jerr := res.Trace().JSON()
		if jerr != nil {
			fmt.Fprintln(stderr, "ltqp-sparql: trace:", jerr)
			return 1
		}
		if werr := writeOut(*traceOut, data, stderr); werr != nil {
			fmt.Fprintln(stderr, "ltqp-sparql: trace:", werr)
			return 1
		}
	}
	if *explainOut != "" {
		data, jerr := res.Explain().JSON()
		if jerr != nil {
			fmt.Fprintln(stderr, "ltqp-sparql: explain:", jerr)
			return 1
		}
		if werr := writeOut(*explainOut, data, stderr); werr != nil {
			fmt.Fprintln(stderr, "ltqp-sparql: explain:", werr)
			return 1
		}
	}
	if *explainDot != "" {
		if werr := writeOut(*explainDot, []byte(strings.TrimRight(res.TopologyDOT(), "\n")), stderr); werr != nil {
			fmt.Fprintln(stderr, "ltqp-sparql: explain-dot:", werr)
			return 1
		}
	}
	return 0
}

// writeOut writes data (plus a trailing newline) to path, or to stderr when
// path is "-".
func writeOut(path string, data []byte, stderr io.Writer) error {
	if path == "-" {
		fmt.Fprintln(stderr, string(data))
		return nil
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// DefaultKeepAlive is how often an idle SSE stream emits a `: keepalive`
// comment so intermediaries do not reap the connection.
const DefaultKeepAlive = 15 * time.Second

// sseBuffer is the per-client subscription depth of /debug/events. A
// client slower than the engine loses events (counted, reported in the
// stream's final comment) rather than stalling the engine.
const sseBuffer = 4096

// EventStream serves the engine event bus as a live Server-Sent-Events
// feed (`/debug/events`). Each event is framed as `event: <kind>` with the
// JSON event as data; `?id=N` filters to one query's correlation id.
// Keepalive comments flow while the engine is idle, a disconnecting client
// detaches its subscription promptly, and Shutdown ends every open stream
// so http.Server.Shutdown is never held hostage by a long-lived feed.
type EventStream struct {
	bus *Bus
	// KeepAlive overrides DefaultKeepAlive when positive.
	KeepAlive time.Duration

	mu     sync.Mutex
	done   chan struct{}
	closed bool
}

// NewEventStream returns an SSE handler over the bus.
func NewEventStream(bus *Bus) *EventStream {
	return &EventStream{bus: bus, done: make(chan struct{})}
}

// Shutdown ends all open event streams (idempotent). Wire it via
// srv.RegisterOnShutdown so graceful drain closes feeds instead of waiting
// out their clients.
func (s *EventStream) Shutdown() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
}

func (s *EventStream) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var queryID int64
	if idParam := req.URL.Query().Get("id"); idParam != "" {
		id, err := strconv.ParseInt(idParam, 10, 64)
		if err != nil || id <= 0 {
			http.Error(w, "invalid query id", http.StatusBadRequest)
			return
		}
		queryID = id
	}

	sub := s.bus.SubscribeNamed("sse", queryID, sseBuffer)
	if sub == nil {
		http.Error(w, "event stream disabled", http.StatusNotFound)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// The handshake names the subscriber and its drop accounting so a
	// client knows lossiness is visible (ltqp_events_dropped_total and the
	// stream's closing comment) rather than silent.
	fmt.Fprintf(w, ": ltqp event stream, schema %d, subscriber %q (drops counted in ltqp_events_dropped_total{subscriber=%q}; %d dropped across attached sse feeds so far)\n\n",
		EventSchemaVersion, sub.Name(), sub.Name(), s.bus.DropCount("sse"))
	flusher.Flush()

	keepAlive := s.KeepAlive
	if keepAlive <= 0 {
		keepAlive = DefaultKeepAlive
	}
	ticker := time.NewTicker(keepAlive)
	defer ticker.Stop()

	enc := json.NewEncoder(w)
	for {
		select {
		case ev := <-sub.C:
			fmt.Fprintf(w, "event: %s\ndata: ", ev.Kind)
			if err := enc.Encode(ev); err != nil {
				return
			}
			fmt.Fprint(w, "\n")
			flusher.Flush()
		case <-ticker.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-req.Context().Done():
			return
		case <-s.done:
			if n := sub.Dropped(); n > 0 {
				fmt.Fprintf(w, ": closing, %d events dropped\n\n", n)
			} else {
				fmt.Fprint(w, ": closing\n\n")
			}
			flusher.Flush()
			return
		}
	}
}

package exec

import (
	"ltqp/internal/rdf"
)

// idKey is a compact comparable identity key for a binding row over a fixed
// variable list, built from dictionary term IDs instead of rendered lexical
// forms. Up to two variables pack into the uint64 (zero-allocation — the
// overwhelmingly common join arity); wider rows append 4 bytes per extra
// variable to rest. Unbound variables key as NoTerm (ID 0), matching the
// pre-dictionary "UNDEF" sentinel semantics exactly.
type idKey struct {
	packed uint64
	rest   string
}

// idKeyer renders binding rows over vars into idKeys using the engine
// dictionary.
type idKeyer struct {
	dict *rdf.Dict
	vars []string
}

func newIDKeyer(dict *rdf.Dict, vars []string) idKeyer {
	return idKeyer{dict: dict, vars: vars}
}

// key computes the identity key of b over the keyer's variable list. Two
// rows receive the same key if and only if they bind equal terms (or are
// both unbound) for every variable in the list: Intern gives equal terms
// equal IDs and distinct terms distinct IDs, and the fixed 4-bytes-per-ID
// layout of rest cannot collide across positions.
func (k idKeyer) key(b rdf.Binding) idKey {
	var out idKey
	n := len(k.vars)
	if n > 0 {
		out.packed = uint64(k.id(b, k.vars[0])) << 32
	}
	if n > 1 {
		out.packed |= uint64(k.id(b, k.vars[1]))
	}
	if n > 2 {
		buf := make([]byte, 0, (n-2)*4)
		for _, v := range k.vars[2:] {
			id := k.id(b, v)
			buf = append(buf, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
		}
		out.rest = string(buf)
	}
	return out
}

// id returns the dictionary ID of the term bound to v, or NoTerm when v is
// unbound. Interning (not looking up) keeps keys total: a term produced by
// an expression (BIND, VALUES) that never occurred in any document still
// gets a stable ID.
func (k idKeyer) id(b rdf.Binding, v string) rdf.TermID {
	t, ok := b[v]
	if !ok {
		return rdf.NoTerm
	}
	return k.dict.Intern(t)
}

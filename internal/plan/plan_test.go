package plan

import (
	"strings"
	"testing"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

func pattern(s, p, o rdf.Term) algebra.Pattern {
	return algebra.Pattern{Triple: rdf.NewTriple(s, p, o)}
}

func v(n string) rdf.Term   { return rdf.NewVar(n) }
func iri(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }

// firstLeaf returns the leftmost leaf of a join tree.
func firstLeaf(op algebra.Operator) algebra.Operator {
	for {
		j, ok := op.(algebra.Join)
		if !ok {
			return op
		}
		op = j.Left
	}
}

func TestSeedAnchoredPatternFirst(t *testing.T) {
	seed := "http://example.org/alice/card"
	p := New([]string{seed})
	// Discover-6 shape: (?m hasCreator <card#me>) . (?f containerOf ?m) .
	// (?f id ?id) . (?f title ?t)
	creator := pattern(v("m"), iri("hasCreator"), rdf.NewIRI(seed+"#me"))
	container := pattern(v("f"), iri("containerOf"), v("m"))
	id := pattern(v("f"), iri("id"), v("id"))
	title := pattern(v("f"), iri("title"), v("t"))
	join := algebra.Join{
		Left:  algebra.Join{Left: algebra.Join{Left: title, Right: id}, Right: container},
		Right: creator,
	}
	got := p.Optimize(join)
	if fl := firstLeaf(got); fl != algebra.Operator(creator) {
		t.Errorf("first leaf = %s, want the seed-anchored pattern", algebra.String(fl))
	}
}

func TestDependencyRespectingOrder(t *testing.T) {
	p := New(nil)
	// a--b--c chain given in worst order plus a disconnected pattern d.
	ab := pattern(iri("a"), iri("p"), v("b"))
	bc := pattern(v("b"), iri("q"), v("c"))
	cd := pattern(v("c"), iri("r"), v("d"))
	disconnected := pattern(v("x"), iri("s"), v("y"))
	join := algebra.Join{
		Left:  algebra.Join{Left: disconnected, Right: cd},
		Right: algebra.Join{Left: bc, Right: ab},
	}
	got := p.Optimize(join)
	// Walk the left-deep tree collecting leaves in execution order.
	var order []string
	var walk func(algebra.Operator)
	walk = func(op algebra.Operator) {
		if j, ok := op.(algebra.Join); ok {
			walk(j.Left)
			walk(j.Right)
			return
		}
		order = append(order, algebra.String(op))
	}
	walk(got)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	// ab has a constant subject → first; then bc (shares b), then cd
	// (shares c); the disconnected pattern must come last.
	if !strings.Contains(order[0], "<http://example.org/a>") {
		t.Errorf("first = %s", order[0])
	}
	if !strings.Contains(order[1], "?b") || !strings.Contains(order[2], "?c") {
		t.Errorf("chain order = %v", order)
	}
	if !strings.Contains(order[3], "?x") {
		t.Errorf("disconnected pattern should be last: %v", order)
	}
}

func TestRdfTypePenalty(t *testing.T) {
	p := New(nil)
	typ := pattern(v("m"), rdf.NewIRI(rdf.RDFType), iri("Post"))
	content := pattern(v("m"), iri("content"), v("c"))
	anchored := pattern(v("m"), iri("hasCreator"), iri("me"))
	got := p.Optimize(algebra.Join{Left: algebra.Join{Left: typ, Right: content}, Right: anchored})
	if fl := firstLeaf(got); fl != algebra.Operator(anchored) {
		t.Errorf("first leaf = %s; rdf:type patterns must be deprioritized", algebra.String(fl))
	}
}

func TestValuesScheduledFirst(t *testing.T) {
	p := New(nil)
	vals := algebra.Values{Variables: []string{"m"}, Rows: []rdf.Binding{{"m": iri("x")}}}
	pat := pattern(v("m"), iri("p"), v("o"))
	got := p.Optimize(algebra.Join{Left: pat, Right: vals})
	if _, ok := firstLeaf(got).(algebra.Values); !ok {
		t.Errorf("VALUES should run first: %s", algebra.String(got))
	}
}

func TestOptimizePreservesTreeShape(t *testing.T) {
	// Non-join operators must be preserved and recursed into.
	q, err := sparql.ParseQuery(`
PREFIX ex: <http://example.org/>
SELECT DISTINCT ?a WHERE {
  ?a ex:p ?b .
  OPTIONAL { ?b ex:q ?c }
  FILTER(?b != ex:z)
} ORDER BY ?a LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	before := algebra.String(op)
	after := algebra.String(New(nil).Optimize(op))
	for _, kind := range []string{"slice(", "distinct(", "project(", "orderby(", "filter(", "leftjoin("} {
		if strings.Count(before, kind) != strings.Count(after, kind) {
			t.Errorf("operator %s count changed:\nbefore %s\nafter  %s", kind, before, after)
		}
	}
}

func TestOptimizeSingleAndEmpty(t *testing.T) {
	p := New(nil)
	single := pattern(v("a"), iri("p"), v("b"))
	if got := p.Optimize(single); got != algebra.Operator(single) {
		t.Errorf("single pattern changed: %v", got)
	}
	unit := algebra.Unit{}
	if got := p.Optimize(unit); got != algebra.Operator(unit) {
		t.Errorf("unit changed: %v", got)
	}
}

func TestScoreOrdering(t *testing.T) {
	p := New([]string{"http://example.org/seed"})
	cases := []struct {
		name   string
		better rdf.Triple
		worse  rdf.Triple
	}{
		{
			"seed beats plain constant",
			rdf.NewTriple(rdf.NewIRI("http://example.org/seed#me"), iri("p"), v("o")),
			rdf.NewTriple(iri("other"), iri("p"), v("o")),
		},
		{
			"subject constant beats object constant",
			rdf.NewTriple(iri("s"), iri("p"), v("o")),
			rdf.NewTriple(v("s"), iri("p"), iri("o")),
		},
		{
			"object constant beats all-var",
			rdf.NewTriple(v("s"), iri("p"), iri("o")),
			rdf.NewTriple(v("s"), v("p"), v("o")),
		},
	}
	for _, c := range cases {
		if p.scorePattern(c.better) <= p.scorePattern(c.worse) {
			t.Errorf("%s: %d <= %d", c.name, p.scorePattern(c.better), p.scorePattern(c.worse))
		}
	}
}

// fakeCounts is a static CountSource for adaptive-planning tests.
type fakeCounts map[string]int

func (f fakeCounts) CountNow(pattern rdf.Triple) int {
	return f[pattern.P.Value]
}

func TestOptimizeWithCountsPrefersSmallExtensions(t *testing.T) {
	p := New(nil)
	// Zero-knowledge would put the constant-subject pattern first; the
	// observed counts say the other pattern is far more selective.
	big := pattern(iri("s"), iri("pBig"), v("x"))   // constant subject, huge extension
	small := pattern(v("x"), iri("pSmall"), v("y")) // all-var but tiny extension
	counts := fakeCounts{
		"http://example.org/pBig":   10000,
		"http://example.org/pSmall": 2,
	}
	got := p.OptimizeWithCounts(algebra.Join{Left: big, Right: small}, counts)
	if fl := firstLeaf(got); fl != algebra.Operator(small) {
		t.Errorf("first leaf = %s, want the low-cardinality pattern", algebra.String(fl))
	}
	// Without counts, the static heuristics pick the constant subject.
	got = p.Optimize(algebra.Join{Left: small, Right: big})
	if fl := firstLeaf(got); fl != algebra.Operator(big) {
		t.Errorf("static first leaf = %s, want the constant-subject pattern", algebra.String(fl))
	}
}

func TestOptimizeWithCountsRestoresStaticScoring(t *testing.T) {
	p := New(nil)
	big := pattern(iri("s"), iri("pBig"), v("x"))
	small := pattern(v("x"), iri("pSmall"), v("y"))
	_ = p.OptimizeWithCounts(algebra.Join{Left: big, Right: small}, fakeCounts{})
	// After an adaptive call the planner must be back to static scoring.
	got := p.Optimize(algebra.Join{Left: small, Right: big})
	if fl := firstLeaf(got); fl != algebra.Operator(big) {
		t.Errorf("planner state leaked: first leaf = %s", algebra.String(fl))
	}
}

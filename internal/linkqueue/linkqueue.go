// Package linkqueue provides the link queue at the heart of link traversal
// query processing (paper Fig. 1): traversal is initialized with seed URLs,
// and every dereferenced document contributes newly discovered links that
// are appended for later dereferencing.
//
// Two disciplines are provided: a plain FIFO queue (breadth-first traversal,
// the Comunica default) and a priority queue that ranks links by how they
// were discovered — type-index instances, which are known to contain query-
// relevant data, ahead of blind container members — one of the link-queue
// enhancements the paper points to as future work [34].
package linkqueue

import (
	"container/heap"
	"sync"
)

// Link is one queued dereferencing task.
type Link struct {
	// URL is the document to dereference (no fragment).
	URL string
	// Via is the document in which the link was discovered; empty for
	// seeds.
	Via string
	// Reason names the link's discovery label ("seed", "type-index",
	// "ldp-container", "storage", ...). Priority queues rank on it.
	Reason string
	// Extractor is the Name() of the link extractor that produced the
	// link ("seed" for seeds). The traversal topology labels discovery
	// edges with it.
	Extractor string
	// Depth is the traversal depth (seeds are 0).
	Depth int
}

// Queue is the interface shared by queue disciplines. Implementations are
// safe for concurrent use.
type Queue interface {
	// Push enqueues a link; a URL already seen (queued or popped) is
	// silently dropped, and Push reports whether the link was accepted.
	Push(l Link) bool
	// Pop dequeues the next link; ok is false when the queue is empty.
	Pop() (Link, bool)
	// Len returns the number of currently queued links.
	Len() int
	// Seen reports how many distinct URLs were ever accepted.
	Seen() int
}

// FIFO is the breadth-first link queue.
type FIFO struct {
	mu    sync.Mutex
	items []Link
	seen  map[string]bool
}

// NewFIFO returns an empty FIFO queue.
func NewFIFO() *FIFO {
	return &FIFO{seen: map[string]bool{}}
}

// Push implements Queue. Deduplication is on the normalized URL (scheme and
// host case, default ports), so spoofed variants of a visited document —
// "HTTP://Host:80/x" for a visited "http://host/x" — are rejected rather
// than re-fetched.
func (q *FIFO) Push(l Link) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	key := Normalize(l.URL)
	if q.seen[key] {
		return false
	}
	q.seen[key] = true
	q.items = append(q.items, l)
	return true
}

// Pop implements Queue.
func (q *FIFO) Pop() (Link, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return Link{}, false
	}
	l := q.items[0]
	q.items = q.items[1:]
	return l, true
}

// Len implements Queue.
func (q *FIFO) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Seen implements Queue.
func (q *FIFO) Seen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.seen)
}

// DefaultPriorities ranks discovery reasons: smaller runs earlier. Links
// found through the Solid type index are most likely to contain instances
// of the classes a query asks for, so they jump ahead of blind traversal.
var DefaultPriorities = map[string]int{
	"seed":                 0,
	"type-index":           1,
	"type-index-container": 1,
	"solid-profile":        2,
	"storage":              2,
	"match":                3,
	"ldp-container":        4,
	"see-also":             5,
	"all":                  6,
}

// Priority is a priority link queue ordered by reason rank, then FIFO
// within a rank.
type Priority struct {
	mu    sync.Mutex
	h     linkHeap
	seen  map[string]bool
	ranks map[string]int
	seq   int
}

// NewPriority returns an empty priority queue with the given reason ranks;
// nil means DefaultPriorities.
func NewPriority(ranks map[string]int) *Priority {
	if ranks == nil {
		ranks = DefaultPriorities
	}
	return &Priority{seen: map[string]bool{}, ranks: ranks}
}

type heapItem struct {
	link Link
	rank int
	seq  int
}

type linkHeap []heapItem

func (h linkHeap) Len() int { return len(h) }
func (h linkHeap) Less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank < h[j].rank
	}
	return h[i].seq < h[j].seq
}
func (h linkHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *linkHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *linkHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Push implements Queue. Like FIFO.Push, deduplication is on the
// normalized URL, so case/port-spoofed variants of a visited document are
// rejected.
func (q *Priority) Push(l Link) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	key := Normalize(l.URL)
	if q.seen[key] {
		return false
	}
	q.seen[key] = true
	rank, ok := q.ranks[l.Reason]
	if !ok {
		rank = 10
	}
	q.seq++
	heap.Push(&q.h, heapItem{link: l, rank: rank, seq: q.seq})
	return true
}

// Pop implements Queue.
func (q *Priority) Pop() (Link, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.h.Len() == 0 {
		return Link{}, false
	}
	it := heap.Pop(&q.h).(heapItem)
	return it.link, true
}

// Len implements Queue.
func (q *Priority) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.h.Len()
}

// Seen implements Queue.
func (q *Priority) Seen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.seen)
}

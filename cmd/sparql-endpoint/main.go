// Command sparql-endpoint exposes the link-traversal engine through the
// SPARQL 1.1 Protocol, so any SPARQL client can query Decentralized
// Knowledge Graphs without knowing about traversal: a query arrives over
// HTTP, the engine traverses the relevant Solid pods live, and the results
// return in the negotiated standard format (SPARQL Results JSON, CSV, TSV;
// Turtle or N-Triples for CONSTRUCT/DESCRIBE).
//
//	sparql-endpoint --addr localhost:8096
//	curl 'http://localhost:8096/sparql?query=SELECT...' \
//	     -H 'Accept: application/sparql-results+json'
//
// With --simulate the endpoint also hosts an in-process simulated Solid
// environment to traverse (handy for demos); otherwise it dereferences
// whatever the queries point at.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ltqp"
	"ltqp/internal/obs"
	"ltqp/internal/results"
	"ltqp/internal/serve"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
	"ltqp/internal/sparql"
	"ltqp/internal/turtle"
)

// version identifies the build in ltqp_build_info (override with
// -ldflags "-X main.version=v1.2.3").
var version = "dev"

func main() {
	var (
		addr      = flag.String("addr", "localhost:8096", "listen address")
		debugAddr = flag.String("debug-addr", "", "extra listener for net/http/pprof + observability endpoints (e.g. localhost:6060)")
		simulate  = flag.Bool("simulate", false, "host a simulated Solid environment in-process")
		persons   = flag.Int("persons", 16, "pods for --simulate")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-query timeout")
		cacheDocs = flag.Int("cache", 1024, "engine-wide document cache size (0 disables)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight queries")
		logFormat = flag.String("log", "", "enable structured logging to stderr: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		degraded  = flag.Float64("degraded-threshold", obs.DefaultDegradedThreshold, "recent deref failure ratio above which /healthz reports degraded")

		sharedBytes = flag.Int64("shared-cache-bytes", serve.DefaultMaxBytes, "shared document cache byte budget (0 disables the shared cache)")
		sharedTTL   = flag.Duration("shared-cache-ttl", serve.DefaultTTL, "shared-cache freshness lifetime before conditional revalidation")
		resultCache = flag.Int("result-cache", serve.DefaultResultCacheEntries, "result cache entries for repeated SELECT queries (0 disables)")
		maxInflight = flag.Int("max-inflight", serve.DefaultMaxInFlight, "queries executing at once across all tenants (0 disables admission control)")
		queueDepth  = flag.Int("queue-depth", serve.DefaultQueueDepth, "queries allowed to wait for an execution slot; beyond it requests get 429")
		tenantQuota = flag.Int("tenant-quota", 4, "in-flight queries per tenant (X-API-Key or client IP; 0 = no per-tenant limit)")
		retryAfter  = flag.Duration("retry-after", serve.DefaultRetryAfter, "Retry-After hint attached to 429 rejections")
		maxDocs     = flag.Int("max-docs-per-query", 0, "documents one query may dereference (0 = unbounded)")
		maxRows     = flag.Int("max-result-rows", 0, "rows one SELECT may return; excess is truncated (0 = unbounded)")
		memBudget   = flag.Int64("mem-budget-per-query", 0, "ledger-accounted memory one query may hold in bytes; over-budget queries are cancelled with 507 (0 = unlimited)")

		queuePolicy   = flag.String("queue-policy", "", "link queue discipline: fifo (default), reason, or guided")
		maxDocsOrigin = flag.Int("max-docs-per-origin", 0, "documents one query may dereference per origin (0 = unbounded)")
		maxBytesOrig  = flag.Int64("max-bytes-per-origin", 0, "body bytes one query may read per origin (0 = unbounded)")
		maxInflOrigin = flag.Int("max-inflight-per-origin", 0, "concurrent dereferences per origin within one query (0 = global limit only)")
		maxLinksDoc   = flag.Int("max-links-per-doc", 0, "links one document may add to a query's traversal queue (0 = unbounded)")
		maxQueued     = flag.Int("max-queued-links", 0, "total distinct links one query's traversal accepts (0 = unbounded)")
		allowlist     = flag.String("traversal-allowlist", "", "comma-separated URL prefixes traversal may follow; seeds always in scope (empty = unrestricted)")
		scopeSeeds    = flag.Bool("scope-to-seeds", false, "restrict each query's traversal to the origins of its seed URLs")
		maxDocBytes   = flag.Int64("max-doc-bytes", 0, "response body size cap in bytes (0 = 64 MiB default)")
		bodyTimeout   = flag.Duration("body-timeout", 0, "abort response bodies slower than this in total (0 = per-attempt timeout only)")
	)
	flag.Parse()

	policy, perr := ltqp.ParseQueuePolicy(*queuePolicy)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "sparql-endpoint:", perr)
		os.Exit(2)
	}

	observer := ltqp.NewObserver()
	observer.Health.Threshold = *degraded
	obs.StampBuildInfo(observer.Registry, version, time.Now())
	if *logFormat != "" {
		logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sparql-endpoint:", err)
			os.Exit(2)
		}
		eventLog := obs.LogEvents(logger, observer.Events)
		defer eventLog.Close()
	}
	// Explain makes every query record its traversal topology and result
	// provenance, served live on /debug/topology and in /debug/queries.
	cfg := ltqp.Config{Lenient: true, Obs: observer, CacheDocuments: *cacheDocs,
		Explain: true, MaxDocuments: *maxDocs, MemBudget: *memBudget,
		QueuePolicy: policy,
		Limits: ltqp.TraversalLimits{
			MaxDocsPerOrigin:     *maxDocsOrigin,
			MaxBytesPerOrigin:    *maxBytesOrig,
			MaxInFlightPerOrigin: *maxInflOrigin,
			MaxLinksPerDoc:       *maxLinksDoc,
			MaxQueuedLinks:       *maxQueued,
			ScopeToSeeds:         *scopeSeeds,
			MaxDocBytes:          *maxDocBytes,
			BodyTimeout:          *bodyTimeout,
		}}
	if *allowlist != "" {
		for _, p := range strings.Split(*allowlist, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Limits.Allowlist = append(cfg.Limits.Allowlist, p)
			}
		}
	}
	var env *simenv.Env
	if *simulate {
		scfg := solidbench.DefaultConfig()
		scfg.Persons = *persons
		env = simenv.New(scfg)
		cfg.Client = env.Client()
		q := env.Dataset.Discover(1, 1)
		fmt.Fprintf(os.Stderr, "simulated pods at %s\nexample query name: %s\n", env.Server.URL, q.Name)
	}

	// Serving subsystem: shared document cache, admission control, result
	// cache. Each piece is individually optional via its flag.
	var serving Serving
	if *sharedBytes > 0 {
		serving.Shared = serve.NewSharedCache(serve.SharedCacheOptions{
			MaxBytes: *sharedBytes, TTL: *sharedTTL,
			Obs: observer.Metrics, Events: observer.Events,
		})
		cfg.SharedCache = serving.Shared
	}
	if *maxInflight > 0 {
		qd := *queueDepth
		if qd <= 0 {
			qd = serve.QueueDepthNone
		}
		serving.Admission = serve.NewAdmission(serve.AdmissionOptions{
			MaxInFlight: *maxInflight, QueueDepth: qd, TenantQuota: *tenantQuota,
			RetryAfter: *retryAfter, Obs: observer.Metrics, Events: observer.Events,
		})
	}
	if *resultCache > 0 {
		serving.ResultCache = serve.NewResultCache(*resultCache, observer.Metrics)
	}
	serving.MaxResultRows = *maxRows
	observer.Health.Serving = servingHealth(observer, serving)

	h := NewServingHandler(ltqp.New(cfg), *timeout, serving)
	mux := buildMux(h, observer)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// Long-lived /debug/events feeds would otherwise hold Shutdown open for
	// the full drain budget; close them as soon as draining starts.
	srv.RegisterOnShutdown(observer.Stream.Shutdown)

	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		observer.Register(dmux)
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/debug/pprof/\n", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "sparql-endpoint: debug:", err)
			}
		}()
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// drain in-flight queries within the --drain budget, then close the
	// simulated environment.
	stop, stopCancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopCancel()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "SPARQL endpoint on http://%s/sparql (metrics on /metrics, health on /healthz, queries on /debug/queries, traversal graphs on /debug/topology, live events on /debug/events)\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	exit := 0
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "sparql-endpoint:", err)
			exit = 1
		}
	case <-stop.Done():
		fmt.Fprintln(os.Stderr, "sparql-endpoint: shutting down, draining in-flight queries...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		if serving.Admission != nil {
			// Reject queued and new queries immediately (429 draining)
			// while in-flight ones finish under the same budget.
			go serving.Admission.Drain(shutdownCtx)
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "sparql-endpoint: shutdown:", err)
			exit = 1
		}
		if debugSrv != nil {
			debugSrv.Shutdown(shutdownCtx)
		}
		cancel()
	}
	if env != nil {
		env.Close()
	}
	os.Exit(exit)
}

// buildMux assembles the endpoint's HTTP surface: the SPARQL protocol on
// /sparql, POST /admin/invalidate (bump the shared-cache epoch), plus the
// observer's endpoints (/metrics, /healthz, /debug/queries, /debug/topology,
// /debug/events).
func buildMux(h *Handler, observer *ltqp.Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/sparql", h)
	if h.serving.Shared != nil {
		mux.HandleFunc("/admin/invalidate", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			epoch := h.serving.Shared.Invalidate()
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"epoch\":%d}\n", epoch)
		})
	}
	observer.Register(mux)
	return mux
}

// servingHealth builds the /healthz serving section from the subsystem's
// live counters.
func servingHealth(observer *ltqp.Observer, s Serving) func() *obs.ServingHealth {
	if s.Shared == nil && s.Admission == nil {
		return nil
	}
	return func() *obs.ServingHealth {
		st := s.Shared.Stats() // nil-safe: zero stats without a shared cache
		h := &obs.ServingHealth{
			CacheHitRatio:      st.HitRatio(),
			CacheHits:          st.Hits,
			CacheMisses:        st.Misses,
			CacheBytes:         st.Bytes,
			CacheDocuments:     st.Documents,
			Revalidations:      st.Revalidations,
			NotModified:        st.NotModified,
			SingleflightDedups: st.Dedups,
			CacheEpoch:         st.Epoch,
		}
		if s.Admission != nil {
			h.Admitted = s.Admission.Admitted()
			h.Rejected = s.Admission.Rejected()
			h.InFlight = s.Admission.InFlight()
			h.Queued = s.Admission.Queued()
		}
		return h
	}
}

// Serving bundles the optional multi-tenant serving pieces of a Handler.
type Serving struct {
	// Shared is the process-wide document cache (epoch source for the
	// result cache and target of /admin/invalidate). May be nil.
	Shared *serve.SharedCache
	// Admission gates queries; nil admits everything unconditionally.
	Admission *serve.Admission
	// ResultCache memoizes SELECT results; nil disables.
	ResultCache *serve.ResultCache
	// MaxResultRows truncates SELECT responses (0 = unbounded).
	MaxResultRows int
}

// Handler implements the SPARQL 1.1 Protocol over the traversal engine.
type Handler struct {
	engine  *ltqp.Engine
	timeout time.Duration
	serving Serving
}

// NewHandler builds a protocol handler around an engine, with no admission
// control or caching layers.
func NewHandler(engine *ltqp.Engine, timeout time.Duration) *Handler {
	return &Handler{engine: engine, timeout: timeout}
}

// NewServingHandler builds a protocol handler with the multi-tenant serving
// pieces attached.
func NewServingHandler(engine *ltqp.Engine, timeout time.Duration, s Serving) *Handler {
	return &Handler{engine: engine, timeout: timeout, serving: s}
}

// cachedSelect is one memoized SELECT result (rows are immutable once
// stored; every response re-renders them in the negotiated format).
type cachedSelect struct {
	vars []string
	rows []ltqp.Binding
}

// ServeHTTP handles SPARQL Protocol query operations (GET with ?query=,
// POST with form or application/sparql-query body). With admission control
// attached, overload answers 429 Too Many Requests plus a Retry-After hint.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	query, err := extractQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tenant := serve.TenantFromRequest(r)
	ctx, cancel := context.WithTimeout(obs.ContextWithTenant(r.Context(), tenant), h.timeout)
	defer cancel()

	parsed, err := sparql.ParseQuery(query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	if h.serving.Admission != nil {
		release, err := h.serving.Admission.Admit(ctx, tenant)
		if err != nil {
			var rej *serve.RejectionError
			if errors.As(err, &rej) {
				w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(rej.RetryAfter.Seconds()))))
				http.Error(w, "too many requests: "+rej.Reason, http.StatusTooManyRequests)
				return
			}
			// The client gave up (or timed out) while queued.
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		defer release()
	}

	accept := r.Header.Get("Accept")
	switch parsed.Form {
	case sparql.FormAsk:
		ok, err := h.engine.Ask(ctx, query)
		if err != nil {
			http.Error(w, err.Error(), queryErrorStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		results.WriteBooleanJSON(w, ok)

	case sparql.FormConstruct, sparql.FormDescribe:
		var triples []ltqp.Triple
		if parsed.Form == sparql.FormConstruct {
			triples, err = h.engine.Construct(ctx, query)
		} else {
			triples, err = h.engine.Describe(ctx, query)
		}
		if err != nil {
			http.Error(w, err.Error(), queryErrorStatus(err))
			return
		}
		if strings.Contains(accept, "application/n-triples") {
			w.Header().Set("Content-Type", "application/n-triples")
			io.WriteString(w, turtle.WriteNTriples(triples))
			return
		}
		w.Header().Set("Content-Type", "text/turtle")
		io.WriteString(w, turtle.Write(triples, turtle.WriteOptions{Prefixes: ltqp.CommonPrefixes()}))

	default: // SELECT
		// The result cache is keyed on the normalized query, the seed set,
		// and the shared cache's invalidation epoch — so POST
		// /admin/invalidate expires cached results and cached documents in
		// one stroke.
		var key string
		if h.serving.ResultCache != nil {
			key = serve.ResultKey(query, nil, h.serving.Shared.Epoch())
			if v, ok := h.serving.ResultCache.Get(key); ok {
				cached := v.(*cachedSelect)
				w.Header().Set("X-Result-Cache", "hit")
				writeSelect(w, accept, cached.vars, cached.rows)
				return
			}
		}
		res, err := h.engine.Query(ctx, query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// ?trace=1 exposes the query's trace id so the caller can follow up
		// on /debug/traces/<id> (404 there means tail sampling dropped it).
		if r.URL.Query().Get("trace") == "1" {
			if tid := res.TraceID(); tid != "" {
				w.Header().Set("X-Trace-Id", tid)
			}
		}
		var all []ltqp.Binding
		truncated := false
		for b := range res.Results {
			if h.serving.MaxResultRows > 0 && len(all) >= h.serving.MaxResultRows {
				truncated = true
				res.Close()
				break
			}
			all = append(all, b)
		}
		if err := res.Err(); err != nil {
			http.Error(w, err.Error(), queryErrorStatus(err))
			return
		}
		if key != "" && !truncated && ctx.Err() == nil {
			h.serving.ResultCache.Put(key, &cachedSelect{vars: res.Vars, rows: all})
		}
		if truncated {
			w.Header().Set("X-Results-Truncated", strconv.Itoa(h.serving.MaxResultRows))
		}
		writeSelect(w, accept, res.Vars, all)
	}
}

// writeSelect renders SELECT rows in the negotiated format.
// queryErrorStatus maps an execution failure to its HTTP status: a query
// cancelled for crossing --mem-budget-per-query answers 507 Insufficient
// Storage (the error text carries the per-layer ledger breakdown);
// everything else stays a 500.
func queryErrorStatus(err error) int {
	var be *ltqp.BudgetExceededError
	if errors.As(err, &be) {
		return http.StatusInsufficientStorage
	}
	return http.StatusInternalServerError
}

func writeSelect(w http.ResponseWriter, accept string, vars []string, rows []ltqp.Binding) {
	switch {
	case strings.Contains(accept, "text/csv"):
		w.Header().Set("Content-Type", "text/csv")
		results.WriteCSV(w, vars, rows)
	case strings.Contains(accept, "text/tab-separated-values"):
		w.Header().Set("Content-Type", "text/tab-separated-values")
		results.WriteTSV(w, vars, rows)
	default:
		w.Header().Set("Content-Type", "application/sparql-results+json")
		results.WriteJSON(w, vars, rows)
	}
}

// extractQuery pulls the query string out of a protocol request.
func extractQuery(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", fmt.Errorf("missing query parameter")
		}
		return q, nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				return "", err
			}
			return string(body), nil
		}
		if err := r.ParseForm(); err != nil {
			return "", err
		}
		q := r.PostForm.Get("query")
		if q == "" {
			return "", fmt.Errorf("missing query form field")
		}
		return q, nil
	default:
		return "", fmt.Errorf("method %s not allowed", r.Method)
	}
}
